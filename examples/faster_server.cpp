// faster_server: a pipelined RESP2 server over FasterKv (DESIGN.md §11).
//
// Speaks enough of the Redis protocol for redis-cli and any pipelining
// Redis client to talk to the paper's count store:
//
//   ./faster_server --port 6379 --threads 4 --export-port 9464
//   redis-cli -p 6379 SET 17 5
//   redis-cli -p 6379 INCR 17
//   (printf 'PING\r\nINCR k\r\nINCR k\r\nGET k\r\n'; sleep 0.2) | nc 127.0.0.1 6379
//
// --export-port serves Prometheus text (/metrics), JSON (/vars), a
// liveness probe (/healthz), and the live inspectors (/debug/slowlog,
// /debug/index, /debug/log, /debug/epochs, /debug/connections),
// combining the store's metrics with the server's "net.*" family.
// SIGTERM/SIGINT trigger a clean drain: stop accepting, flush buffered
// replies, complete pending store work, unprotect every worker's epoch
// slot, exit 0.
//
// Logging: --log-level debug|info|warn|error|off (default warn; also
// FASTER_LOG_LEVEL), --log-file PATH appends structured records to a
// file. --slowlog-threshold-us N arms the slow-op log (SLOWLOG GET).
//
// --memory-budget-mb N caps the HybridLog in-memory buffer (cold keys
// spill and GETs of them take the pending-I/O path); --io-path polling
// serves that path with completion-polling queue pairs instead of the
// I/O thread pool (DESIGN.md §13).

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "net/server.h"
#include "obs/exporter.h"
#include "obs/log.h"
#include "obs/slowlog.h"
#include "obs/stats.h"

namespace {

struct Options {
  faster::net::ServerOptions server;
  uint16_t export_port = 0;
  bool print_port = false;  // machine-readable "PORT <n>" line on stdout
  std::string log_level;    // empty: keep env/default
  std::string log_file;
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--bind ADDR] [--threads N]\n"
               "          [--max-pipeline N] [--export-port P] [--print-port]\n"
               "          [--log-level debug|info|warn|error|off]\n"
               "          [--log-file PATH] [--slowlog-threshold-us N]\n"
               "          [--memory-budget-mb N] [--io-path pool|polling]\n"
               "  --port 0 binds an ephemeral port (printed with "
               "--print-port)\n",
               argv0);
}

bool ParseArgs(int argc, char** argv, Options* o) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&](long long lo, long long hi, long long* out) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      long long v = std::strtoll(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || v < lo || v > hi) return false;
      *out = v;
      return true;
    };
    long long v = 0;
    if (a == "--port" && next(0, 65535, &v)) {
      o->server.port = static_cast<uint16_t>(v);
    } else if (a == "--bind" && i + 1 < argc) {
      o->server.bind_address = argv[++i];
    } else if (a == "--threads" && next(1, 64, &v)) {
      o->server.threads = static_cast<uint32_t>(v);
    } else if (a == "--max-pipeline" && next(1, 1 << 20, &v)) {
      o->server.max_pipeline = static_cast<size_t>(v);
    } else if (a == "--export-port" && next(0, 65535, &v)) {
      o->export_port = static_cast<uint16_t>(v);
    } else if (a == "--print-port") {
      o->print_port = true;
    } else if (a == "--log-level" && i + 1 < argc) {
      o->log_level = argv[++i];
    } else if (a == "--log-file" && i + 1 < argc) {
      o->log_file = argv[++i];
    } else if (a == "--slowlog-threshold-us" && next(0, 1LL << 40, &v)) {
      o->server.slowlog_threshold_us = static_cast<uint64_t>(v);
    } else if (a == "--memory-budget-mb" && next(1, 1 << 20, &v)) {
      o->server.log_memory_bytes = static_cast<uint64_t>(v) << 20;
    } else if (a == "--io-path" && i + 1 < argc) {
      std::string mode = argv[++i];
      if (mode == "pool") {
        o->server.io_path = faster::IoPathMode::kThreadPool;
      } else if (mode == "polling") {
        o->server.io_path = faster::IoPathMode::kPolling;
      } else {
        std::fprintf(stderr, "faster_server: bad --io-path %s\n",
                     mode.c_str());
        return false;
      }
    } else {
      Usage(argv[0]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!ParseArgs(argc, argv, &o)) return 2;

  // Flags override the FASTER_LOG_* environment defaults read by the
  // logger's first use.
  faster::obs::Logger& logger = faster::obs::Logger::Global();
  if (!o.log_level.empty()) {
    faster::obs::LogLevel level;
    if (!faster::obs::ParseLogLevel(o.log_level.c_str(), &level)) {
      std::fprintf(stderr, "faster_server: bad --log-level %s\n",
                   o.log_level.c_str());
      return 2;
    }
    logger.set_level(level);
  }
  if (!o.log_file.empty() && !logger.OpenFile(o.log_file)) {
    std::fprintf(stderr, "faster_server: cannot open --log-file %s\n",
                 o.log_file.c_str());
    return 2;
  }

  // Block the shutdown signals in every thread (workers inherit the
  // mask), then claim them below with sigwait: signal handling happens on
  // the main thread as ordinary code, so Shutdown() can take locks, join
  // threads and drain epochs without async-signal-safety contortions.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  faster::net::FasterServer server{o.server};
  if (!server.ok()) {
    std::fprintf(stderr, "faster_server: %s\n", server.error().c_str());
    return 1;
  }

  std::unique_ptr<faster::obs::MetricsExporter> exporter;
  if (o.export_port != 0) {
    faster::obs::ExporterOptions eo;
    eo.port = o.export_port;
    auto collect = [&server] {
      faster::obs::StatRegistry reg;
      server.store().CollectStats(reg);
      server.CollectStats(reg);
      return reg;
    };
    faster::obs::MetricsExporter::Handlers handlers{
        [collect] { return collect().Prometheus(); },
        [collect] { return collect().Json(); }};
    handlers
        .AddRoute("/debug/slowlog",
                  [] { return faster::obs::GlobalSlowLog().Json(); })
        .AddRoute("/debug/index",
                  [&server] { return server.store().DebugIndexJson(); })
        .AddRoute("/debug/log",
                  [&server] { return server.store().DebugLogJson(); })
        .AddRoute("/debug/epochs",
                  [&server] { return server.store().DebugEpochsJson(); })
        .AddRoute("/debug/connections",
                  [&server] { return server.DebugConnectionsJson(); });
    exporter = std::make_unique<faster::obs::MetricsExporter>(
        eo, std::move(handlers));
    if (!exporter->ok()) {
      std::fprintf(stderr, "faster_server: exporter failed to bind %u\n",
                   static_cast<unsigned>(o.export_port));
      return 1;
    }
    std::fprintf(stderr, "metrics on http://127.0.0.1:%u/metrics\n",
                 static_cast<unsigned>(exporter->port()));
  }

  std::fprintf(stderr, "faster_server listening on %s:%u (%u threads)\n",
               o.server.bind_address.c_str(),
               static_cast<unsigned>(server.port()), o.server.threads);
  if (o.print_port) {
    std::printf("PORT %u\n", static_cast<unsigned>(server.port()));
    std::fflush(stdout);
  }

  int sig = 0;
  while (sigwait(&sigs, &sig) != 0) {
  }
  std::fprintf(stderr, "faster_server: signal %d, draining\n", sig);
  server.Shutdown();
  std::fprintf(stderr, "faster_server: drained %llu commands, bye\n",
               static_cast<unsigned long long>(server.commands_processed()));
  return 0;
}
