// Log analytics (Appendix F): HybridLog is record-oriented and
// approximately time-ordered, so the record log doubles as an input for
// scan-based analytics. This example feeds a simulated click stream into
// a FASTER count store and then runs two "offline" analyses directly over
// the log, without touching the index:
//
//   1. an hourly-dashboard style report: which keys were updated most in
//      the most recent segment of the log (the hot set right now), and
//   2. a historical query: the version history of one key, following the
//      time order of the log.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"
#include "workload/keygen.h"

using faster::Address;
using faster::CountStoreFunctions;
using faster::FasterKv;
using faster::HotSetKeyGenerator;
using faster::MemoryDevice;

int main() {
  MemoryDevice device;
  FasterKv<CountStoreFunctions>::Config config;
  config.table_size = 1 << 15;
  config.log.memory_size_bytes = 8ull << 20;
  // Run the log append-only (the Sec. 5 mode): every update creates a new
  // version record, so the log retains the full history (Appendix F notes
  // the region sizes / update mode control how much history the log
  // keeps; in-place updates overwrite versions).
  config.log.mutable_fraction = 0.0;
  config.force_rcu = true;
  FasterKv<CountStoreFunctions> store{config, &device};
  store.StartSession();

  constexpr uint64_t kKeys = 50000;
  constexpr uint64_t kClicks = 2'000'000;
  HotSetKeyGenerator keys{kKeys, /*seed=*/3, 0.1, 0.9};
  Address session_start = store.hlog().tail_address();
  for (uint64_t i = 0; i < kClicks; ++i) {
    store.Rmw(keys.Next(), 1);
    if (i % 65536 == 0) store.CompletePending(false);
  }
  store.CompletePending(true);

  // --- Analysis 1: hottest keys in the latest log segment. -------------
  Address tail = store.hlog().tail_address();
  Address window_start{session_start.control() +
                       (tail - session_start) * 3 / 4};
  std::map<uint64_t, uint64_t> update_counts;
  uint64_t scanned = 0;
  store.ScanLog(window_start, tail, [&](Address, const auto& rec) {
    if (rec.info().invalid()) return;
    ++update_counts[rec.key];
    ++scanned;
  });
  std::vector<std::pair<uint64_t, uint64_t>> top(update_counts.begin(),
                                                 update_counts.end());
  std::sort(top.begin(), top.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("scanned %llu records in the latest quarter of the log\n",
              static_cast<unsigned long long>(scanned));
  std::printf("hottest keys (by log records, i.e. RCU copies):\n");
  for (size_t i = 0; i < std::min<size_t>(5, top.size()); ++i) {
    std::printf("  key %-8llu  %llu versions\n",
                static_cast<unsigned long long>(top[i].first),
                static_cast<unsigned long long>(top[i].second));
  }

  // --- Analysis 2: version history of the hottest key. -----------------
  if (!top.empty()) {
    uint64_t key = top[0].first;
    std::vector<std::pair<uint64_t, uint64_t>> history;  // (address, value)
    store.ScanLog(session_start, tail, [&](Address a, const auto& rec) {
      if (!rec.info().invalid() && rec.key == key) {
        history.emplace_back(a.control(), rec.value);
      }
    });
    std::printf("history of key %llu (%zu versions, log order):\n",
                static_cast<unsigned long long>(key), history.size());
    size_t step = std::max<size_t>(1, history.size() / 5);
    for (size_t i = 0; i < history.size(); i += step) {
      std::printf("  @%-12llu count=%llu\n",
                  static_cast<unsigned long long>(history[i].first),
                  static_cast<unsigned long long>(history[i].second));
    }
    // Versions must be non-decreasing in log order (counts only grow).
    bool monotone = std::is_sorted(
        history.begin(), history.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    std::printf("version counts non-decreasing in log order: %s\n",
                monotone ? "yes" : "NO");
  }

  store.StopSession();
  return 0;
}
