// A configurable YCSB driver over FASTER — the command-line analogue of
// the paper's evaluation harness (Sec. 7.1). Lets a user reproduce any
// point of the Fig. 8-13 parameter space by hand:
//
//   ycsb_cli [--keys N] [--threads T] [--seconds S] [--dist uniform|zipf|hotset]
//            [--reads F] [--rmws F] [--memory-mb M] [--mutable F]
//            [--batch N] [--append-only] [--read-cache]
//            [--stats [--stats-interval S]] [--stats-json]
//            [--export-port P] [--trace FILE] [--trace-sample N]
//
// Prints throughput, log growth, fuzzy-op and storage-read percentages.
// With --stats (requires a -DFASTER_STATS=ON build to be useful), also dumps
// the full store metric registry periodically during the run and once at
// the end; --stats-json switches the final dump to JSON.
//
// --export-port P serves live Prometheus text on http://127.0.0.1:P/metrics
// (plus /vars JSON and /healthz) for the duration of the process.
// --trace FILE writes operation lifecycle spans as Chrome trace-event JSON
// after the run (load it in Perfetto, or convert/inspect it with
// tools/trace2perfetto.py); --trace-sample N samples 1-in-N operations.
// The crash flight recorder is always armed: a fatal signal or epoch-check
// abort dumps the black box to stderr (and $FASTER_FLIGHT_DIR if set).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"
#include "obs/exporter.h"
#include "workload/ycsb.h"

using namespace faster;

namespace {

struct Options {
  uint64_t keys = 1 << 20;
  uint32_t threads = 2;
  double seconds = 2.0;
  Distribution dist = Distribution::kZipfian;
  double reads = 0.5;
  double rmws = 0.0;
  uint64_t memory_mb = 64;
  double mutable_fraction = 0.9;
  uint32_t batch = 1;
  bool append_only = false;
  bool read_cache = false;
  bool stats = false;
  bool stats_json = false;
  double stats_interval = 1.0;
  bool export_enabled = false;
  uint16_t export_port = 0;
  std::string trace_file;
  uint32_t trace_sample = 0;  // 0: keep the library default
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--keys N] [--threads T] [--seconds S]\n"
      "          [--dist uniform|zipf|hotset] [--reads F] [--rmws F]\n"
      "          [--memory-mb M] [--mutable F] [--batch N] [--append-only] "
      "[--read-cache]\n"
      "          [--stats] [--stats-interval S] [--stats-json]\n"
      "          [--export-port P] [--trace FILE] [--trace-sample N]\n",
      argv0);
  std::exit(2);
}

Options Parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (a == "--keys") o.keys = std::strtoull(next(), nullptr, 10);
    else if (a == "--threads") o.threads = std::atoi(next());
    else if (a == "--seconds") o.seconds = std::atof(next());
    else if (a == "--reads") o.reads = std::atof(next());
    else if (a == "--rmws") o.rmws = std::atof(next());
    else if (a == "--memory-mb") o.memory_mb = std::strtoull(next(), nullptr, 10);
    else if (a == "--mutable") o.mutable_fraction = std::atof(next());
    else if (a == "--batch") {
      long b = std::atol(next());
      if (b < 1 || b > 256) Usage(argv[0]);
      o.batch = static_cast<uint32_t>(b);
    }
    else if (a == "--append-only") o.append_only = true;
    else if (a == "--read-cache") o.read_cache = true;
    else if (a == "--stats") o.stats = true;
    else if (a == "--stats-json") { o.stats = true; o.stats_json = true; }
    else if (a == "--stats-interval") {
      o.stats_interval = std::atof(next());
      if (!(o.stats_interval > 0)) Usage(argv[0]);
      o.stats = true;
    }
    else if (a == "--export-port") {
      long p = std::atol(next());
      if (p < 0 || p > 65535) Usage(argv[0]);
      o.export_enabled = true;
      o.export_port = static_cast<uint16_t>(p);
    }
    else if (a == "--trace") o.trace_file = next();
    else if (a == "--trace-sample") {
      long s = std::atol(next());
      if (s < 1) Usage(argv[0]);
      o.trace_sample = static_cast<uint32_t>(s);
    }
    else if (a == "--dist") {
      std::string d = next();
      if (d == "uniform") o.dist = Distribution::kUniform;
      else if (d == "zipf") o.dist = Distribution::kZipfian;
      else if (d == "hotset") o.dist = Distribution::kHotSet;
      else Usage(argv[0]);
    } else {
      Usage(argv[0]);
    }
  }
  return o;
}

struct Adapter {
  using Store = FasterKv<CountStoreFunctions>;
  Store& store;
  void Begin() { store.StartSession(); }
  void End() { store.StopSession(); }
  void DoRead(uint64_t key) {
    thread_local uint64_t out;
    store.Read(key, 1, &out);
  }
  void DoUpsert(uint64_t key, uint64_t seq) { store.Upsert(key, seq); }
  void DoRmw(uint64_t key) { store.Rmw(key, 1); }
  void DoBatch(const OpGenerator::Op* ops, size_t n) {
    // Outputs live in a thread_local so pending reads still have a valid
    // destination when they complete in a later Idle() (bench semantics,
    // same as DoRead's thread_local out).
    thread_local std::vector<uint64_t> outs(256);
    thread_local uint64_t seq = 0;
    Store::BatchOp b[256];
    if (outs.size() < n) outs.resize(n);
    for (size_t i = 0; i < n; ++i) {
      switch (ops[i].kind) {
        case OpKind::kRead:
          b[i].kind = Store::BatchOp::Kind::kRead;
          b[i].key = ops[i].key;
          b[i].input = 1;
          b[i].output = &outs[i];
          break;
        case OpKind::kUpsert:
          b[i].kind = Store::BatchOp::Kind::kUpsert;
          b[i].key = ops[i].key;
          b[i].value = seq++;
          break;
        case OpKind::kRmw:
          b[i].kind = Store::BatchOp::Kind::kRmw;
          b[i].key = ops[i].key;
          b[i].input = 1;
          break;
      }
    }
    store.ExecuteBatch(b, n);
  }
  void Idle() { store.CompletePending(false); }
};

}  // namespace

int main(int argc, char** argv) {
  Options o = Parse(argc, argv);

  MemoryDevice device;
  FasterKv<CountStoreFunctions>::Config cfg;
  cfg.table_size = std::max<uint64_t>(o.keys / 2, 1024);
  cfg.log.memory_size_bytes = o.memory_mb << 20;
  cfg.log.mutable_fraction = o.append_only ? 0.0 : o.mutable_fraction;
  cfg.force_rcu = o.append_only;
  cfg.enable_read_cache = o.read_cache;
  cfg.read_cache.memory_size_bytes = (o.memory_mb / 4 + 8) << 20;
  FasterKv<CountStoreFunctions> store{cfg, &device};
  // Arm the crash black box: any fatal signal or FASTER_EPOCH_CHECK abort
  // from here on dumps recent events, spans, metrics, and the epoch table.
  store.AttachFlightRecorder();

  if (o.trace_sample > 0) {
    if (!obs::kStatsEnabled) {
      std::fprintf(stderr,
                   "warning: --trace-sample requested but this binary was "
                   "built without -DFASTER_STATS=ON\n");
    }
    obs::SetSpanSampleEvery(o.trace_sample);
  }

  std::unique_ptr<obs::MetricsExporter> exporter;
  if (o.export_enabled) {
    if (!obs::kStatsEnabled) {
      std::fprintf(stderr,
                   "warning: --export-port requested but this binary was "
                   "built without -DFASTER_STATS=ON; /metrics will carry a "
                   "notice only\n");
    }
    obs::ExporterOptions eo;
    eo.port = o.export_port;
    exporter = std::make_unique<obs::MetricsExporter>(
        eo, obs::MetricsExporter::Handlers{
                [&store] { return store.DumpPrometheus(); },
                [&store] { return store.DumpStats(/*json=*/true); }});
    if (!exporter->ok()) {
      std::fprintf(stderr, "error: could not bind exporter to port %u\n",
                   static_cast<unsigned>(o.export_port));
      return 1;
    }
    std::printf("exporter:       http://127.0.0.1:%u/metrics (also /vars, "
                "/healthz)\n",
                static_cast<unsigned>(exporter->port()));
  }

  std::printf("loading %llu keys...\n",
              static_cast<unsigned long long>(o.keys));
  store.StartSession();
  for (uint64_t k = 0; k < o.keys; ++k) store.Upsert(k, k);
  store.StopSession();

  auto spec = WorkloadSpec::Ycsb(o.reads, o.rmws, o.dist, o.keys);
  std::printf("running %s with %u threads (batch %u) for %.1fs...\n",
              spec.Name().c_str(), o.threads, o.batch, o.seconds);
  Address tail_before = store.hlog().tail_address();
  Adapter adapter{store};

  // Optional periodic stats dumps while the workload runs.
  std::atomic<bool> monitor_stop{false};
  std::thread monitor;
  if (o.stats) {
    if (!obs::kStatsEnabled) {
      std::fprintf(stderr,
                   "warning: --stats requested but this binary was built "
                   "without -DFASTER_STATS=ON\n");
    }
    monitor = std::thread([&] {
      auto interval = std::chrono::duration<double>(o.stats_interval);
      auto start = std::chrono::steady_clock::now();
      uint64_t tick = 1;
      while (!monitor_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        auto now = std::chrono::steady_clock::now();
        if (now < start + tick * interval) continue;
        double elapsed = std::chrono::duration<double>(now - start).count();
        std::printf("--- stats @ %.1fs ---\n%s", elapsed,
                    store.DumpStats().c_str());
        std::fflush(stdout);
        // Schedule every dump against the absolute start time so the time
        // spent formatting a dump never accumulates into drift; when a dump
        // overruns one or more intervals, skip the missed ticks instead of
        // bursting to catch up.
        tick = static_cast<uint64_t>(
                   std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count() /
                   o.stats_interval) +
               1;
      }
    });
  }

  auto r = RunWorkload(adapter, spec, o.threads, o.seconds, /*seed=*/1,
                       o.batch);
  if (monitor.joinable()) {
    monitor_stop.store(true, std::memory_order_relaxed);
    monitor.join();
  }

  auto stats = store.GetStats();
  uint64_t user_ops = stats.reads + stats.upserts + stats.rmws;
  double log_mb =
      static_cast<double>(store.hlog().tail_address() - tail_before) /
      (1 << 20);
  std::printf("throughput:     %.2f Mops/s (%llu ops in %.2fs)\n", r.mops,
              static_cast<unsigned long long>(r.total_ops), r.seconds);
  std::printf("log growth:     %.1f MB (%.1f MB/s)\n", log_mb,
              log_mb / r.seconds);
  std::printf("storage reads:  %.3f%%\n",
              user_ops ? 100.0 * static_cast<double>(stats.pending_ios) /
                             static_cast<double>(user_ops)
                       : 0.0);
  std::printf("fuzzy RMWs:     %.3f%%\n",
              stats.rmws ? 100.0 * static_cast<double>(stats.fuzzy_rmws) /
                               static_cast<double>(stats.rmws)
                         : 0.0);
  if (o.read_cache) {
    std::printf("cache hits:     %.3f%% of reads\n",
                stats.reads ? 100.0 * static_cast<double>(stats.read_cache_hits) /
                                  static_cast<double>(stats.reads)
                            : 0.0);
  }
  if (r.latency_samples > 0) {
    std::printf("op latency:     p50=%.1fus p99=%.1fus p999=%.1fus "
                "(%llu samples)\n",
                static_cast<double>(r.p50_ns) / 1e3,
                static_cast<double>(r.p99_ns) / 1e3,
                static_cast<double>(r.p999_ns) / 1e3,
                static_cast<unsigned long long>(r.latency_samples));
  }
  if (o.stats) {
    std::printf("--- final stats ---\n%s",
                store.DumpStats(o.stats_json).c_str());
  }
  if (!o.trace_file.empty()) {
    if (!obs::kStatsEnabled) {
      std::fprintf(stderr,
                   "warning: --trace requested but this binary was built "
                   "without -DFASTER_STATS=ON; the trace will be empty\n");
    }
    std::ofstream out{o.trace_file};
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", o.trace_file.c_str());
      return 1;
    }
    store.DumpTrace(out);
    std::printf("trace:          %s (Chrome trace-event JSON; open in "
                "Perfetto or run tools/trace2perfetto.py)\n",
                o.trace_file.c_str());
  }
  return 0;
}
