// Quickstart: open a FASTER store, do the four operations (Upsert, Read,
// RMW, Delete), and handle operations that go asynchronous.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/faster.h"
#include "core/functions.h"
#include "device/file_device.h"

using faster::Address;
using faster::CountStoreFunctions;
using faster::FasterKv;
using faster::FileDevice;
using faster::Status;

int main() {
  // The log spills to this file once it outgrows the in-memory buffer.
  FileDevice device{"/tmp/faster_quickstart.log"};

  // A store is configured with a hash-index size (paper guidance: half the
  // expected key count), an in-memory log budget, and the fraction of that
  // budget kept mutable for in-place updates (paper default: 90%).
  FasterKv<CountStoreFunctions>::Config config;
  config.table_size = 1 << 16;
  config.log.memory_size_bytes = 64ull << 20;
  config.log.mutable_fraction = 0.9;
  FasterKv<CountStoreFunctions> store{config, &device};

  // Every thread brackets its work in a session (epoch protection).
  store.StartSession();

  // Blind upsert: set key 42 to 100.
  Status s = store.Upsert(42, 100);
  std::printf("Upsert(42, 100)        -> %s\n", faster::StatusName(s));

  // Read it back.
  uint64_t value = 0;
  s = store.Read(42, /*input=*/0, &value);
  std::printf("Read(42)               -> %s, value=%lu\n",
              faster::StatusName(s), static_cast<unsigned long>(value));

  // Read-modify-write: add 5 to the value, atomically per key.
  s = store.Rmw(42, 5);
  std::printf("Rmw(42, +5)            -> %s\n", faster::StatusName(s));
  store.Read(42, 0, &value);
  std::printf("Read(42)               -> value=%lu (expected 105)\n",
              static_cast<unsigned long>(value));

  // RMW of an absent key initializes it from the input.
  store.Rmw(7, 3);
  store.Read(7, 0, &value);
  std::printf("Rmw(7, +3) then Read   -> value=%lu (expected 3)\n",
              static_cast<unsigned long>(value));

  // Delete.
  s = store.Delete(42);
  std::printf("Delete(42)             -> %s\n", faster::StatusName(s));
  s = store.Read(42, 0, &value);
  std::printf("Read(42)               -> %s (expected NotFound)\n",
              faster::StatusName(s));

  // Operations may return kPending when the record lives on storage (or,
  // for RMW, in the fuzzy region). Process them with CompletePending.
  // Here everything fits in memory, so this is a no-op — but a correct
  // application calls it periodically (the paper suggests every ~64K ops).
  bool drained = store.CompletePending(/*wait=*/true);
  std::printf("CompletePending        -> drained=%s\n",
              drained ? "true" : "false");

  store.StopSession();
  std::printf("Done.\n");
  return 0;
}
