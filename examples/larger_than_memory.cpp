// Larger-than-memory state with a drifting hot set (the paper's Sec. 1
// motivating scenario: billions of users "alive", a small shifting
// fraction active). The in-memory HybridLog buffer is deliberately much
// smaller than the dataset; the mutable region keeps the hot set cached
// and updates it in place, while cold records live on storage and are
// fetched through the asynchronous I/O path.
//
// Also demonstrates checkpoint + recovery (Sec. 6.5): the store is
// checkpointed, torn down, recovered from the checkpoint, and re-queried.

#include <cstdio>
#include <filesystem>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"
#include "workload/keygen.h"

using faster::CountStoreFunctions;
using faster::FasterKv;
using faster::HotSetKeyGenerator;
using faster::MemoryDevice;
using faster::Status;

namespace {
constexpr uint64_t kUsers = 2'000'000;          // ~48 MB of records
constexpr uint64_t kMemoryBudget = 16ull << 20;  // 16 MB in-memory buffer
constexpr uint64_t kOps = 3'000'000;
const char* kCheckpointDir = "/tmp/faster_ltm_example_ckpt";
}  // namespace

int main() {
  MemoryDevice device;  // stand-in for the SSD log file
  FasterKv<CountStoreFunctions>::Config config;
  config.table_size = kUsers / 2;
  config.log.memory_size_bytes = kMemoryBudget;
  config.log.mutable_fraction = 0.9;

  uint64_t checkpointed_user = 0;
  uint64_t checkpointed_value = 0;
  {
    FasterKv<CountStoreFunctions> store{config, &device};
    store.StartSession();

    // Load: one record per user.
    for (uint64_t u = 0; u < kUsers; ++u) {
      store.Upsert(u, 1);
    }
    std::printf("loaded %llu users; head=%llu tail=%llu (spilled %.1f MB)\n",
                static_cast<unsigned long long>(kUsers),
                static_cast<unsigned long long>(
                    store.hlog().head_address().control()),
                static_cast<unsigned long long>(
                    store.hlog().tail_address().control()),
                static_cast<double>(store.hlog().head_address().control()) /
                    (1 << 20));

    // Update-heavy traffic with a drifting hot set: 20% of users get 90%
    // of the traffic, and the hot window slides over time.
    HotSetKeyGenerator keys{kUsers, /*seed=*/7, 0.2, 0.9};
    for (uint64_t i = 0; i < kOps; ++i) {
      Status s = store.Rmw(keys.Next(), 1);
      if (s != Status::kOk && s != Status::kPending) {
        std::fprintf(stderr, "op failed: %s\n", faster::StatusName(s));
        return 1;
      }
      if (i % 65536 == 0) store.CompletePending(false);
    }
    store.CompletePending(/*wait=*/true);

    auto stats = store.GetStats();
    std::printf("ops=%llu  storage reads=%llu (%.2f%%)  fuzzy retries=%llu\n",
                static_cast<unsigned long long>(stats.rmws),
                static_cast<unsigned long long>(stats.pending_ios),
                100.0 * static_cast<double>(stats.pending_ios) /
                    static_cast<double>(stats.rmws),
                static_cast<unsigned long long>(stats.fuzzy_rmws));

    // Checkpoint, remembering one user's value to verify after recovery.
    checkpointed_user = kUsers / 3;
    Status s = store.Read(checkpointed_user, 0, &checkpointed_value);
    if (s == Status::kPending) {
      store.CompletePending(true);
    }
    std::filesystem::remove_all(kCheckpointDir);
    s = store.Checkpoint(kCheckpointDir);
    std::printf("checkpoint -> %s\n", faster::StatusName(s));
    store.StopSession();
  }

  // Recover into a fresh store instance over the same device.
  {
    FasterKv<CountStoreFunctions> store{config, &device};
    Status s = store.Recover(kCheckpointDir);
    std::printf("recover    -> %s\n", faster::StatusName(s));
    if (s != Status::kOk) return 1;
    store.StartSession();
    uint64_t value = 0;
    s = store.Read(checkpointed_user, 0, &value);
    if (s == Status::kPending) {
      store.CompletePending(true);
      s = Status::kOk;
    }
    std::printf("user %llu: value=%llu (expected %llu) -> %s\n",
                static_cast<unsigned long long>(checkpointed_user),
                static_cast<unsigned long long>(value),
                static_cast<unsigned long long>(checkpointed_value),
                value == checkpointed_value ? "match" : "MISMATCH");
    store.StopSession();
  }
  std::filesystem::remove_all(kCheckpointDir);
  return 0;
}
