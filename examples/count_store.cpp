// The paper's running example (Sec. 2.5): a count store. A monitoring
// application receives millions of CPU readings per second from devices
// and maintains a per-device running sum with RMW operations, issued
// concurrently from several threads.
//
// Demonstrates: multi-threaded sessions, periodic Refresh/CompletePending
// (the Sec. 2.5 thread lifecycle), in-place fetch-and-add updates, and the
// CRDT (mergeable) variant that never blocks on the fuzzy region
// (Sec. 6.3).

#include <atomic>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"

using faster::CountStoreFunctions;
using faster::FasterKv;
using faster::MemoryDevice;
using faster::MergeableCountFunctions;
using faster::Status;

namespace {

constexpr uint64_t kDevices = 100000;
constexpr uint64_t kReadingsPerThread = 500000;
constexpr int kThreads = 4;

template <class Functions>
uint64_t RunCountStore(const char* label) {
  MemoryDevice device;
  typename FasterKv<Functions>::Config config;
  config.table_size = kDevices / 2;
  config.log.memory_size_bytes = 32ull << 20;
  FasterKv<Functions> store{config, &device};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      // Sec. 2.5 lifecycle: Acquire, operate with periodic Refresh (done
      // automatically by the store every 256 ops) and CompletePending,
      // then Release.
      store.StartSession();
      std::mt19937_64 rng(t + 1);
      for (uint64_t i = 0; i < kReadingsPerThread; ++i) {
        uint64_t device_id = rng() % kDevices;
        uint64_t cpu_reading = rng() % 100;
        Status s = store.Rmw(device_id, cpu_reading);
        if (s != Status::kOk && s != Status::kPending) {
          std::fprintf(stderr, "unexpected status %s\n",
                       faster::StatusName(s));
        }
        if (i % 65536 == 0) store.CompletePending(false);
      }
      store.StopSession();
    });
  }
  for (auto& t : threads) t.join();

  // Sum all per-device counters.
  store.StartSession();
  uint64_t grand_total = 0;
  for (uint64_t d = 0; d < kDevices; ++d) {
    uint64_t sum = 0;
    Status s = store.Read(d, 0, &sum);
    if (s == Status::kPending) {
      store.CompletePending(/*wait=*/true);
      s = Status::kOk;
    }
    if (s == Status::kOk) grand_total += sum;
  }
  auto stats = store.GetStats();
  std::printf(
      "%-10s total=%llu rmws=%llu fuzzy_rmws=%llu pending_ios=%llu\n", label,
      static_cast<unsigned long long>(grand_total),
      static_cast<unsigned long long>(stats.rmws),
      static_cast<unsigned long long>(stats.fuzzy_rmws),
      static_cast<unsigned long long>(stats.pending_ios));
  store.StopSession();
  return grand_total;
}

}  // namespace

int main() {
  std::printf("Count store: %d threads x %llu readings over %llu devices\n",
              kThreads, static_cast<unsigned long long>(kReadingsPerThread),
              static_cast<unsigned long long>(kDevices));
  // Standard RMW count store: in-place adds in the mutable region,
  // read-copy-updates below it, deferred retries in the fuzzy region.
  uint64_t a = RunCountStore<CountStoreFunctions>("rmw");
  // CRDT count store (Sec. 6.3): sums are mergeable, so fuzzy-region and
  // on-storage updates append delta records instead of waiting; reads
  // reconcile the deltas.
  uint64_t b = RunCountStore<MergeableCountFunctions>("crdt");
  // Both must account for every reading exactly once (sum of uniform
  // readings differs run to run; totals are per-variant).
  std::printf("ok (totals: rmw=%llu crdt=%llu)\n",
              static_cast<unsigned long long>(a),
              static_cast<unsigned long long>(b));
  return 0;
}
