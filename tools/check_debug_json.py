#!/usr/bin/env python3
"""Validate the /debug/* inspector endpoints' JSON bodies.

Usage: check_debug_json.py ENDPOINT [FILE]     (stdin when no file)

ENDPOINT is one of: slowlog, index, log, epochs, connections — matching
the exporter route the body was scraped from (/debug/<ENDPOINT>).

Beyond "is it JSON", this asserts the shape and the internal invariants
each inspector promises (DESIGN.md §12):

  slowlog      threshold_ns null-or-int; len == len(entries); every entry
               carries all six stages and stage sums equal total_ns
  index        when not resizing: histogram totals match sampled_buckets /
               sampled_entries; table_size is a power of two; tag_bits is
               in the configured 1..15 range
  log          begin <= head <= safe_read_only <= read_only <= tail plus
               the in-memory / mutable / flush-backlog byte arithmetic;
               same checks for the read_cache region if present
  epochs       every thread's local_epoch <= current_epoch, lag matches,
               safe_epoch <= current_epoch, protected_threads ==
               len(threads)
  connections  open == len(connections); counters are non-negative

Exit status 0 when the body validates, 1 otherwise (message on stderr).
Used by the CI networked lane on live scrapes; the stress exporter test
exercises the same endpoints in-process.
"""

import json
import sys

SLOW_STAGES = ("hash", "resolve", "execute", "io_queue", "io_exec",
               "io_complete")


class CheckError(Exception):
    pass


def need(doc, key, types):
    if key not in doc:
        raise CheckError(f"missing key {key!r}")
    v = doc[key]
    if not isinstance(v, types) or isinstance(v, bool) and bool not in (
            types if isinstance(types, tuple) else (types,)):
        raise CheckError(f"{key!r} has type {type(v).__name__}")
    return v


def need_u64(doc, key):
    v = need(doc, key, int)
    if v < 0:
        raise CheckError(f"{key!r} is negative: {v}")
    return v


def check_slowlog(doc):
    t = doc.get("threshold_ns")
    if t is not None and (not isinstance(t, int) or t < 0):
        raise CheckError(f"threshold_ns must be null or uint: {t!r}")
    entries = need(doc, "entries", list)
    if need_u64(doc, "len") != len(entries):
        raise CheckError(f"len={doc['len']} but {len(entries)} entries")
    if need_u64(doc, "total_recorded") < len(entries):
        raise CheckError("total_recorded < len(entries)")
    for i, e in enumerate(entries):
        total = need_u64(e, "total_ns")
        need_u64(e, "id")
        need_u64(e, "wall_ns")
        need(e, "op", str)
        need(e, "key_hash", str)
        need(e, "pending", bool)
        stages = need(e, "stages_ns", dict)
        for s in SLOW_STAGES:
            need_u64(stages, s)
        if sum(stages[s] for s in SLOW_STAGES) != total:
            raise CheckError(f"entries[{i}]: stage sum != total_ns")
        if t is not None and total < t:
            raise CheckError(f"entries[{i}]: total_ns below threshold")


def check_index(doc):
    table_size = need_u64(doc, "table_size")
    if table_size == 0 or table_size & (table_size - 1):
        raise CheckError(f"table_size not a power of two: {table_size}")
    tag_bits = need_u64(doc, "tag_bits")
    if not 1 <= tag_bits <= 15:
        raise CheckError(f"tag_bits out of range 1..15: {tag_bits}")
    if need(doc, "resizing", bool):
        return  # histograms are not sampled mid-resize
    sampled_buckets = need_u64(doc, "sampled_buckets")
    sampled_entries = need_u64(doc, "sampled_entries")
    if sampled_buckets > table_size:
        raise CheckError("sampled_buckets > table_size")
    occupancy = need(doc, "bucket_occupancy", list)
    if sum(occupancy) != sampled_buckets:
        raise CheckError(f"bucket_occupancy sums to {sum(occupancy)}, "
                         f"expected sampled_buckets={sampled_buckets}")
    chains = need(doc, "chain_length", list)
    if sum(chains) != sampled_entries:
        raise CheckError(f"chain_length sums to {sum(chains)}, "
                         f"expected sampled_entries={sampled_entries}")
    need_u64(doc, "overflow_buckets")
    need_u64(doc, "chains_truncated")


def check_region(region, what):
    begin = need_u64(region, "begin")
    head = need_u64(region, "head")
    safe_ro = need_u64(region, "safe_read_only")
    flushed = need_u64(region, "flushed_until")
    ro = need_u64(region, "read_only")
    tail = need_u64(region, "tail")
    if not begin <= head <= safe_ro <= ro <= tail:
        raise CheckError(
            f"{what}: region markers out of order: "
            f"begin={begin} head={head} safe_read_only={safe_ro} "
            f"read_only={ro} tail={tail}")
    page_size = need_u64(region, "page_size")
    if need_u64(region, "tail_page") != tail // page_size:
        raise CheckError(f"{what}: tail_page does not match tail")
    if need_u64(region, "in_memory_bytes") != tail - head:
        raise CheckError(f"{what}: in_memory_bytes != tail - head")
    if need_u64(region, "mutable_bytes") != tail - ro:
        raise CheckError(f"{what}: mutable_bytes != tail - read_only")
    backlog = need_u64(region, "flush_backlog_bytes")
    if backlog != max(ro - flushed, 0):
        raise CheckError(f"{what}: flush_backlog_bytes={backlog}, expected "
                         f"max(read_only - flushed_until, 0)")
    need_u64(region, "buffer_pages")
    need(region, "io_error", bool)


def check_log(doc):
    check_region(need(doc, "log", dict), "log")
    if "read_cache" in doc:
        check_region(need(doc, "read_cache", dict), "read_cache")


def check_epochs(doc):
    current = need_u64(doc, "current_epoch")
    safe = need_u64(doc, "safe_epoch")
    if safe > current:
        raise CheckError(f"safe_epoch={safe} > current_epoch={current}")
    need_u64(doc, "outstanding_actions")
    threads = need(doc, "threads", list)
    if need_u64(doc, "protected_threads") != len(threads):
        raise CheckError("protected_threads != len(threads)")
    for i, t in enumerate(threads):
        need_u64(t, "tid")
        local = need_u64(t, "local_epoch")
        lag = need_u64(t, "lag")
        # A thread may Protect (bumping its local epoch to one the scan's
        # earlier current_epoch read predates) mid-scan; only flag lag
        # inconsistency when the snapshot was orderly.
        if local <= current and lag != current - local:
            raise CheckError(f"threads[{i}]: lag={lag}, expected "
                             f"{current - local}")


def check_connections(doc):
    conns = need(doc, "connections", list)
    if need_u64(doc, "open") != len(conns):
        raise CheckError("open != len(connections)")
    for i, c in enumerate(conns):
        need_u64(c, "fd")
        need_u64(c, "worker")
        need_u64(c, "age_ms")
        need_u64(c, "bytes_in")
        need_u64(c, "bytes_out")
        need_u64(c, "commands")


CHECKERS = {
    "slowlog": check_slowlog,
    "index": check_index,
    "log": check_log,
    "epochs": check_epochs,
    "connections": check_connections,
}


def main():
    if len(sys.argv) < 2 or sys.argv[1] not in CHECKERS:
        print(__doc__, file=sys.stderr)
        return 2
    endpoint = sys.argv[1]
    if len(sys.argv) > 2:
        with open(sys.argv[2]) as f:
            body = f.read()
    else:
        body = sys.stdin.read()
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as e:
        print(f"check_debug_json: {endpoint}: not JSON: {e}", file=sys.stderr)
        return 1
    if not isinstance(doc, dict):
        print(f"check_debug_json: {endpoint}: body is not a JSON object",
              file=sys.stderr)
        return 1
    try:
        CHECKERS[endpoint](doc)
    except CheckError as e:
        print(f"check_debug_json: {endpoint}: {e}", file=sys.stderr)
        return 1
    print(f"check_debug_json: {endpoint}: ok "
          f"({len(body)} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
