#!/usr/bin/env bash
# clang-tidy over the library sources with the checked-in .clang-tidy
# (bugprone / concurrency / performance / readability-container subset).
# The baseline is zero warnings; WarningsAsErrors in .clang-tidy makes any
# finding fail the run.
#
# Usage: tools/run_tidy.sh [build-dir] [files...]
#   build-dir: directory containing compile_commands.json (default: build)
#   files:     restrict to these sources (default: all of src/**/*.cc)
#
# Skips (exit 0, loudly) when clang-tidy is unavailable; CI installs it.
set -u

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift || true

TIDY="${CLANG_TIDY:-}"
if [[ -z "${TIDY}" ]]; then
  for c in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18; do
    if command -v "$c" > /dev/null 2>&1; then
      TIDY="$c"
      break
    fi
  done
fi
if [[ -z "${TIDY}" ]]; then
  echo "run_tidy: SKIP (no clang-tidy found; set CLANG_TIDY=...)"
  exit 0
fi
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "run_tidy: no ${BUILD_DIR}/compile_commands.json — configure first:"
  echo "  cmake -B ${BUILD_DIR} -S .   (CMAKE_EXPORT_COMPILE_COMMANDS is on)"
  exit 1
fi

if [[ $# -gt 0 ]]; then
  FILES=("$@")
else
  mapfile -t FILES < <(find src -name '*.cc' | sort)
fi

echo "run_tidy: ${TIDY} over ${#FILES[@]} file(s)"
status=0
for f in "${FILES[@]}"; do
  if ! "${TIDY}" -p "${BUILD_DIR}" --quiet "$f"; then
    status=1
  fi
done
if [[ $status -ne 0 ]]; then
  echo "run_tidy: FAIL (warnings above; baseline is zero)"
else
  echo "run_tidy: OK"
fi
exit $status
