#!/usr/bin/env bash
# Local mirror of the CI matrix (.github/workflows/ci.yml): builds and runs
# ctest in the three configurations the project gates on.
#
#   release   -O2, -Werror, full ctest suite (including long-labeled tests)
#   tsan      FASTER_SANITIZE=thread, ctest minus long-labeled tests
#   asan      FASTER_SANITIZE=address,undefined, ctest minus long tests
#
# Usage:
#   tools/run_matrix.sh            # run all three configurations
#   tools/run_matrix.sh tsan       # run a single configuration
#   JOBS=4 tools/run_matrix.sh     # bound build/test parallelism
#
# Build trees live in build-<config>/ (gitignored). ccache is used when
# available. Exits non-zero on the first failing configuration.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
CONFIGS=("${@:-release tsan asan}")
# Word-split a possible single "release tsan asan" default.
read -r -a CONFIGS <<< "${CONFIGS[*]}"

LAUNCHER_ARGS=()
if command -v ccache > /dev/null 2>&1; then
  LAUNCHER_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

run_config() {
  local config="$1"
  local build_dir="build-${config}"
  local cmake_args=(-DFASTER_WERROR=ON "${LAUNCHER_ARGS[@]}")
  local ctest_args=(--output-on-failure -j "${JOBS}")
  local -a env_prefix=(env)

  case "${config}" in
    release)
      cmake_args+=(-DCMAKE_BUILD_TYPE=Release -DFASTER_SANITIZE=off)
      ;;
    tsan)
      cmake_args+=(-DCMAKE_BUILD_TYPE=Release -DFASTER_SANITIZE=thread)
      # halt_on_error: fail the test, not just print. suppressions: the
      # checked-in list of justified benign races.
      env_prefix+=("TSAN_OPTIONS=halt_on_error=1 second_deadlock_stack=1 \
suppressions=$(pwd)/tsan.supp history_size=7")
      ctest_args+=(-LE long)
      ;;
    asan)
      cmake_args+=(-DCMAKE_BUILD_TYPE=Release "-DFASTER_SANITIZE=address,undefined")
      env_prefix+=("ASAN_OPTIONS=detect_stack_use_after_return=1" \
                   "UBSAN_OPTIONS=print_stacktrace=1")
      ctest_args+=(-LE long)
      ;;
    *)
      echo "unknown config '${config}' (expected release|tsan|asan)" >&2
      return 2
      ;;
  esac

  echo "=== [${config}] configure ==="
  cmake -B "${build_dir}" -S . "${cmake_args[@]}"
  echo "=== [${config}] build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== [${config}] test ==="
  (cd "${build_dir}" && "${env_prefix[@]}" ctest "${ctest_args[@]}")
  echo "=== [${config}] OK ==="
}

for config in "${CONFIGS[@]}"; do
  run_config "${config}"
done
echo "=== matrix complete: ${CONFIGS[*]} ==="
