#!/usr/bin/env bash
# Local mirror of the CI matrix (.github/workflows/ci.yml): builds and runs
# ctest in the three configurations the project gates on.
#
#   release     -O2, -Werror, full ctest suite (including long-labeled tests)
#   tsan        FASTER_SANITIZE=thread, ctest minus long-labeled tests
#   asan        FASTER_SANITIZE=address,undefined, ctest minus long tests
#   epochcheck  FASTER_EPOCH_CHECK=ON — runtime epoch/region verifier,
#               full suite incl. the epoch_check_test death tests
#   threadsafety  clang build of faster_core with -Wthread-safety -Werror
#               plus tools/check_thread_safety.sh (SKIPs without clang)
#   static      lint_atomics + clang-tidy + diff clang-format (the clang
#               tools SKIP when not installed; the linter always runs)
#
# Usage:
#   tools/run_matrix.sh            # run every configuration
#   tools/run_matrix.sh tsan       # run a single configuration
#   JOBS=4 tools/run_matrix.sh     # bound build/test parallelism
#
# Build trees live in build-<config>/ (gitignored). ccache is used when
# available. Exits non-zero on the first failing configuration.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
CONFIGS=("${@:-release tsan asan epochcheck threadsafety static}")
# Word-split a possible single "release tsan asan" default.
read -r -a CONFIGS <<< "${CONFIGS[*]}"

LAUNCHER_ARGS=()
if command -v ccache > /dev/null 2>&1; then
  LAUNCHER_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

# Prints the ccache hit rate for the work since `ccache -z` (no-op when
# ccache is absent). CI mirrors this into the job summary.
ccache_report() {
  local config="$1"
  if command -v ccache > /dev/null 2>&1; then
    echo "=== [${config}] ccache ==="
    ccache -s | grep -Ei 'hit|miss|cache size' || ccache -s
  fi
}

run_config() {
  local config="$1"
  local build_dir="build-${config}"
  local cmake_args=(-DFASTER_WERROR=ON "${LAUNCHER_ARGS[@]}")
  local ctest_args=(--output-on-failure -j "${JOBS}")
  local -a env_prefix=(env)

  # Tool configurations that are not a build+ctest cycle.
  case "${config}" in
    threadsafety)
      local clangxx="${CLANGXX:-clang++}"
      if ! command -v "${clangxx}" > /dev/null 2>&1; then
        echo "=== [${config}] SKIP (no ${clangxx}; set CLANGXX=...) ==="
        return 0
      fi
      echo "=== [${config}] configure (clang, -Wthread-safety) ==="
      cmake -B "${build_dir}" -S . "${cmake_args[@]}" \
        -DCMAKE_BUILD_TYPE=Release -DCMAKE_CXX_COMPILER="${clangxx}" \
        -DFASTER_THREAD_SAFETY=ON
      echo "=== [${config}] build faster_core ==="
      cmake --build "${build_dir}" -j "${JOBS}" --target faster_core
      echo "=== [${config}] harness / violation TUs ==="
      CLANGXX="${clangxx}" tools/check_thread_safety.sh
      ccache_report "${config}"
      echo "=== [${config}] OK ==="
      return 0
      ;;
    static)
      echo "=== [${config}] lint_atomics self-test ==="
      python3 tools/lint_atomics.py --self-test
      echo "=== [${config}] lint_atomics (src) ==="
      python3 tools/lint_atomics.py --mode regex src
      # clang-tidy wants a compilation database; configuring is enough
      # (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
      if command -v clang-tidy > /dev/null 2>&1; then
        cmake -B "${build_dir}" -S . "${cmake_args[@]}" \
          -DCMAKE_BUILD_TYPE=Release > /dev/null
        echo "=== [${config}] clang-tidy ==="
        tools/run_tidy.sh "${build_dir}"
      else
        echo "=== [${config}] clang-tidy SKIP (not installed) ==="
      fi
      echo "=== [${config}] clang-format (diff-only) ==="
      tools/check_format.sh "${FORMAT_BASE:-HEAD~1}"
      echo "=== [${config}] OK ==="
      return 0
      ;;
  esac

  case "${config}" in
    release)
      cmake_args+=(-DCMAKE_BUILD_TYPE=Release -DFASTER_SANITIZE=off)
      ;;
    tsan)
      cmake_args+=(-DCMAKE_BUILD_TYPE=Release -DFASTER_SANITIZE=thread)
      # halt_on_error: fail the test, not just print. suppressions: the
      # checked-in list of justified benign races.
      env_prefix+=("TSAN_OPTIONS=halt_on_error=1 second_deadlock_stack=1 \
suppressions=$(pwd)/tsan.supp history_size=7")
      ctest_args+=(-LE long)
      ;;
    asan)
      cmake_args+=(-DCMAKE_BUILD_TYPE=Release "-DFASTER_SANITIZE=address,undefined")
      env_prefix+=("ASAN_OPTIONS=detect_stack_use_after_return=1" \
                   "UBSAN_OPTIONS=print_stacktrace=1")
      ctest_args+=(-LE long)
      ;;
    epochcheck)
      # Full suite — the verifier must not misfire on any legal path, and
      # epoch_check_test's death tests only run in this configuration.
      cmake_args+=(-DCMAKE_BUILD_TYPE=Release -DFASTER_SANITIZE=off
                   -DFASTER_EPOCH_CHECK=ON)
      ;;
    *)
      echo "unknown config '${config}'" \
           "(expected release|tsan|asan|epochcheck|threadsafety|static)" >&2
      return 2
      ;;
  esac

  echo "=== [${config}] configure ==="
  cmake -B "${build_dir}" -S . "${cmake_args[@]}"
  echo "=== [${config}] build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== [${config}] test ==="
  (cd "${build_dir}" && "${env_prefix[@]}" ctest "${ctest_args[@]}")
  ccache_report "${config}"
  echo "=== [${config}] OK ==="
}

for config in "${CONFIGS[@]}"; do
  run_config "${config}"
done
echo "=== matrix complete: ${CONFIGS[*]} ==="
