// Thread-safety-analysis harness TU (see tools/check_thread_safety.sh).
//
// The library's annotated surface is mostly header templates, which the
// faster_core -Wthread-safety build never instantiates. This TU
// instantiates the two stores and drives every annotated entry point with
// a correctly bracketed session, so `clang++ -Wthread-safety -Werror` over
// this file proves the epoch-capability contracts are self-consistent.
// tools/ts_violation.cc is the negative control: the same build must fail
// on it.
#include <cstdint>

#include "core/faster.h"
#include "core/functions.h"
#include "memstore/inmem_kv.h"
#include "device/memory_device.h"

namespace {

using Store = faster::FasterKv<faster::CountStoreFunctions>;

void DriveFaster() {
  faster::MemoryDevice device{1};
  Store::Config cfg;
  cfg.table_size = 64;
  cfg.log.memory_size_bytes = 4ull << faster::Address::kOffsetBits;
  Store store{cfg, &device};

  store.StartSession();
  uint64_t out = 0;
  store.Read(1, 0, &out);
  store.Upsert(1, 7);
  store.Rmw(1, 3);
  store.Delete(1);

  Store::BatchOp ops[2];
  ops[0].kind = Store::BatchOp::Kind::kUpsert;
  ops[0].key = 2;
  ops[0].value = 5;
  ops[1].kind = Store::BatchOp::Kind::kRead;
  ops[1].key = 2;
  ops[1].output = &out;
  store.ExecuteBatch(ops, 2);

  store.CompletePending(/*wait=*/true);
  store.Checkpoint("/tmp/ts_harness_ckpt");
  store.GrowIndex();
  store.CompactLog(store.hlog().safe_read_only_address());
  store.ScanLog(store.hlog().begin_address(), store.hlog().tail_address(),
                [](faster::Address, const Store::RecordT&) {});
  store.Refresh();
  store.StopSession();

  // Recover is annotated as requiring *no* session.
  Store store2{cfg, &device};
  store2.Recover("/tmp/ts_harness_ckpt");

  // The scoped RAII holder (used by net/server.cc worker threads) must
  // satisfy the same capability contracts as the explicit bracketing.
  {
    Store::Session session{store};
    store.Upsert(3, 1);
    store.Read(3, 0, &out);
    store.CompletePending(/*wait=*/true);
  }
}

void DriveInMem() {
  faster::InMemKv<faster::CountStoreFunctions> kv{64};
  kv.StartSession();
  uint64_t out = 0;
  kv.Read(1, 0, &out);
  kv.Upsert(1, 7);
  kv.Rmw(1, 3);
  kv.Delete(1);
  kv.Refresh();
  kv.StopSession();
}

void DriveEpoch() {
  faster::LightEpoch epoch;
  epoch.Protect();
  epoch.Refresh();
  epoch.BumpCurrentEpoch([] {});
  epoch.SpinWaitForSafety(epoch.CurrentEpoch() - 1);
  epoch.Unprotect();
}

}  // namespace

int main() {
  DriveFaster();
  DriveInMem();
  DriveEpoch();
  return 0;
}
