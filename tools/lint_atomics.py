#!/usr/bin/env python3
"""Memory-order contract linter (DESIGN.md §5).

Enforces three rules over the C++ sources:

  [missing-contract]  Every `std::atomic` variable declaration must carry an
                      adjacent `// order:` comment (same line or the comment
                      block immediately above) stating which memory orders
                      are used and why.
  [implicit-order]    Every atomic operation (.load/.store/.exchange/
                      .fetch_*/.compare_exchange_*) must pass its memory
                      order explicitly; relying on the seq_cst default is an
                      error (it silences the author's intent and costs a
                      fence on ARM).
  [contract]          The order an operation passes must be one of the
                      orders listed in the variable's `// order:` contract,
                      matched by variable name.

Primary implementation is a deterministic regex/token scan so the linter
runs anywhere (no clang needed). When libclang is importable and a
compile_commands.json is present, `--mode clang` cross-checks declarations
against the AST; `--mode auto` (default) tries clang and silently falls
back to the regex scan. CI pins `--mode regex` for reproducibility.

Exit status: 0 when no violations, 1 otherwise (2 on usage errors).
"""

import argparse
import os
import re
import sys

ATOMIC_OPS = (
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange_weak",
    "compare_exchange_strong",
)

ORDER_TOKENS = ("seq_cst", "acq_rel", "acquire", "release", "relaxed",
                "consume")

DECL_RE = re.compile(r"std\s*::\s*atomic\s*<")
OP_RE = re.compile(
    r"([A-Za-z_]\w*)\s*(?:\.|->)\s*(" + "|".join(ATOMIC_OPS) + r")\s*\(")
ORDER_USE_RE = re.compile(
    r"memory_order(?:_|\s*::\s*)(" + "|".join(ORDER_TOKENS) + r")\b")
ORDER_DECL_RE = re.compile(r"\b(" + "|".join(ORDER_TOKENS) + r")\b")
ALIGNAS_RE = re.compile(r"\balignas\s*\([^)]*\)\s*")
LINE_COMMENT_RE = re.compile(r"//.*$")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_strings(line):
    """Blank out string/char literals so tokens inside them are ignored."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def declarator_name(code):
    """Extract the declared variable name from an atomic declaration line
    (comments and strings already stripped, `;`-terminated)."""
    code = code.rstrip().rstrip(";").rstrip()
    # Drop initializers: `{...}` or `= ...`.
    brace = code.find("{")
    if brace != -1:
        code = code[:brace]
    eq = code.find("=")
    if eq != -1:
        code = code[:eq]
    # Drop array extents.
    bracket = code.find("[")
    if bracket != -1:
        code = code[:bracket]
    names = re.findall(r"[A-Za-z_]\w*", code)
    return names[-1] if names else None


def out_of_class_definition(code):
    """True for `std::atomic<T> Class::member...;` — the contract belongs on
    the in-class declaration, not the definition."""
    m = re.search(r">\s*((?:[A-Za-z_]\w*\s*::\s*)+)[A-Za-z_]\w*\s*[\[;{=]",
                  code)
    return m is not None


def collect_contract(lines, idx):
    """Return the `// order:` contract text adjacent to line `idx`
    (0-based), or None. Looks at the trailing comment on the declaration
    line(s) and the contiguous `//` comment block immediately above."""
    texts = []
    m = re.search(r"//(.*)$", lines[idx])
    if m:
        texts.append(m.group(1))
    j = idx - 1
    block = []
    while j >= 0:
        stripped = lines[j].strip()
        if stripped.startswith("//"):
            block.append(stripped[2:])
            j -= 1
            continue
        break
    block.reverse()
    texts = block + texts
    joined = "\n".join(texts)
    if "order:" not in joined:
        return None
    return joined[joined.index("order:") + len("order:"):]


def parse_allowed_orders(contract_text):
    return set(ORDER_DECL_RE.findall(contract_text))


def scan_declarations(path, lines, contracts, violations, allow):
    """Find atomic declarations; record name -> allowed orders; flag
    declarations lacking an `// order:` contract."""
    for idx, raw in enumerate(lines):
        code = strip_strings(raw)
        code_nc = LINE_COMMENT_RE.sub("", code)
        if not DECL_RE.search(code_nc):
            continue
        code_nc = ALIGNAS_RE.sub("", code_nc)
        stripped = code_nc.strip()
        # Function signatures / calls / lambdas: not a plain declaration.
        if "(" in stripped:
            continue
        # Pointers/references to atomics: the pointee's declaration carries
        # the contract.
        if re.search(r">\s*[*&]", stripped):
            continue
        if not stripped.endswith(";"):
            continue
        # `using`/`typedef` aliases declare no variable.
        if stripped.startswith(("using ", "typedef ")):
            continue
        if out_of_class_definition(stripped):
            continue
        name = declarator_name(stripped)
        if name is None:
            continue
        contract = collect_contract(lines, idx)
        if contract is None:
            if f"{path}:{name}" not in allow:
                violations.append(Violation(
                    path, idx + 1, "missing-contract",
                    f"std::atomic `{name}` has no adjacent `// order:` "
                    "contract comment (DESIGN.md §5)"))
            continue
        orders = parse_allowed_orders(contract)
        if not orders:
            if f"{path}:{name}" not in allow:
                violations.append(Violation(
                    path, idx + 1, "missing-contract",
                    f"`// order:` contract for `{name}` names no memory "
                    f"orders ({', '.join(ORDER_TOKENS)})"))
            continue
        if name in contracts:
            contracts[name] |= orders  # same name in several files: merge
        else:
            contracts[name] = set(orders)


def balanced_args(text, open_paren):
    """Return the argument text between text[open_paren] == '(' and its
    matching ')', or None if unbalanced (truncated file)."""
    depth = 0
    for i in range(open_paren, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:i]
    return None


def scan_operations(path, text, line_starts, contracts, violations, allow):
    for m in OP_RE.finditer(text):
        base, op = m.group(1), m.group(2)
        line = text.count("\n", 0, m.start()) + 1
        open_paren = text.index("(", m.end() - 1)
        args = balanced_args(text, open_paren)
        if args is None:
            continue
        used = set(ORDER_USE_RE.findall(args))
        key = f"{path}:{base}"
        if not used:
            if key not in allow:
                violations.append(Violation(
                    path, line, "implicit-order",
                    f"`{base}.{op}(...)` relies on the implicit seq_cst "
                    "default; pass the memory order explicitly"))
            continue
        if base in contracts:
            extra = used - contracts[base]
            if extra and key not in allow:
                violations.append(Violation(
                    path, line, "contract",
                    f"`{base}.{op}(...)` uses memory_order_"
                    f"{'/'.join(sorted(extra))} but the `// order:` "
                    f"contract for `{base}` permits only "
                    f"{', '.join(sorted(contracts[base]))}"))


def strip_block_comments(text):
    """Blank out /* ... */ comments (preserving newlines) so ops inside
    them are ignored. Line comments are kept: contracts live there."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                end = n - 2
            chunk = text[i:end + 2]
            out.append("".join(c if c == "\n" else " " for c in chunk))
            i = end + 2
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def lint_file(path, contracts, violations, allow):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        violations.append(Violation(path, 0, "io", str(e)))
        return
    text = strip_block_comments(text)
    lines = text.split("\n")
    scan_declarations(path, lines, contracts, violations, allow)


def lint_ops(path, contracts, violations, allow):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    text = strip_block_comments(text)
    # Remove line comments for the op scan only (ops never live in them).
    no_comments = "\n".join(
        LINE_COMMENT_RE.sub("", strip_strings(l)) for l in text.split("\n"))
    scan_operations(path, no_comments, None, contracts, violations, allow)


def gather_files(paths):
    exts = (".h", ".hpp", ".cc", ".cpp", ".cxx")
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
            continue
        for root, dirs, names in os.walk(p):
            dirs[:] = sorted(d for d in dirs if not d.startswith("."))
            for n in sorted(names):
                if n.endswith(exts):
                    files.append(os.path.join(root, n))
    return files


def load_allowlist(path):
    allow = set()
    if path is None or not os.path.exists(path):
        return allow
    with open(path, "r", encoding="utf-8") as f:
        for raw in f:
            entry = raw.split("#", 1)[0].strip()
            if entry:
                allow.add(entry)
    return allow


def run_regex(paths, allow, contracts_out=None):
    files = gather_files(paths)
    contracts = {} if contracts_out is None else contracts_out
    violations = []
    # Pass 1: declarations (builds the global name -> orders map, so a
    # contract in a header governs uses in any .cc).
    for f in files:
        lint_file(f, contracts, violations, allow)
    # Pass 2: operations.
    for f in files:
        lint_ops(f, contracts, violations, allow)
    return violations


def run_clang(paths, allow, compile_commands):
    """AST cross-check on top of the regex scan: any field or variable of
    atomic type the AST sees that the regex declaration scan did not
    (e.g. a declaration split across lines in a way the token scan cannot
    follow) is reported as missing-contract. Raises when libclang or the
    compilation database is unavailable; the caller falls back."""
    from clang import cindex  # noqa: raises ImportError when absent

    index = cindex.Index.create()
    db = cindex.CompilationDatabase.fromDirectory(compile_commands)
    files = gather_files(paths)
    file_set = {os.path.abspath(f) for f in files}
    contracts = {}
    violations = run_regex(paths, allow, contracts_out=contracts)
    parsed_any = False
    for f in files:
        if not f.endswith((".cc", ".cpp", ".cxx")):
            continue
        cmds = db.getCompileCommands(os.path.abspath(f))
        if not cmds:
            continue
        args = [a for a in list(cmds[0].arguments)[1:-1]
                if a not in ("-c", "-o")]
        tu = index.parse(f, args=args)
        parsed_any = True
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind not in (cindex.CursorKind.FIELD_DECL,
                                   cindex.CursorKind.VAR_DECL):
                continue
            loc = cursor.location
            if loc.file is None:
                continue
            if os.path.abspath(loc.file.name) not in file_set:
                continue
            spelling = cursor.type.get_canonical().spelling
            if not re.search(r"\bstd::atomic<", spelling):
                continue
            if re.search(r">\s*[*&]", spelling):
                continue
            name = cursor.spelling
            lf = os.path.relpath(loc.file.name)
            if name in contracts or f"{lf}:{name}" in allow:
                continue
            comment = cursor.raw_comment or ""
            if "order:" in comment:
                continue
            violations.append(Violation(
                lf, loc.line, "missing-contract",
                f"std::atomic `{name}` (AST) has no `// order:` contract "
                "and was not seen by the token scan"))
    if not parsed_any:
        raise RuntimeError("compilation database matched no linted file")
    return violations


SELF_TEST_EXPECT = {
    "implicit_seq_cst.cc": {"implicit-order"},
    "contract_violation.cc": {"contract"},
    "missing_contract.cc": {"missing-contract"},
    "clean.cc": set(),
}


def self_test(fixtures_dir):
    ok = True
    for name, expected in sorted(SELF_TEST_EXPECT.items()):
        path = os.path.join(fixtures_dir, name)
        if not os.path.exists(path):
            print(f"self-test: FIXTURE MISSING {path}")
            ok = False
            continue
        violations = run_regex([path], allow=set())
        rules = {v.rule for v in violations}
        if expected and not expected <= rules:
            print(f"self-test: {name}: expected rules {sorted(expected)}, "
                  f"got {sorted(rules)}")
            for v in violations:
                print(f"  {v}")
            ok = False
        elif not expected and violations:
            print(f"self-test: {name}: expected clean, got:")
            for v in violations:
                print(f"  {v}")
            ok = False
        else:
            print(f"self-test: {name}: OK "
                  f"({len(violations)} violation(s), rules {sorted(rules)})")
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to lint (default: src)")
    ap.add_argument("--mode", choices=("auto", "regex", "clang"),
                    default="auto")
    ap.add_argument("--allowlist", default=None,
                    help="allowlist file (default: tools/"
                         "lint_atomics_allow.txt next to this script)")
    ap.add_argument("--compile-commands", default="build",
                    help="directory holding compile_commands.json "
                         "(clang mode)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the planted-violation fixture suite and exit")
    args = ap.parse_args()

    script_dir = os.path.dirname(os.path.abspath(__file__))
    if args.self_test:
        return self_test(os.path.join(script_dir, "lint_fixtures"))

    paths = args.paths or [os.path.join(os.path.dirname(script_dir), "src")]
    allow_path = args.allowlist or os.path.join(script_dir,
                                                "lint_atomics_allow.txt")
    allow = load_allowlist(allow_path)

    violations = None
    if args.mode in ("auto", "clang"):
        try:
            violations = run_clang(paths, allow, args.compile_commands)
        except Exception as e:  # libclang absent or DB missing
            if args.mode == "clang":
                print(f"lint_atomics: clang mode unavailable: {e}",
                      file=sys.stderr)
                return 2
            violations = None
    if violations is None:
        violations = run_regex(paths, allow)

    for v in violations:
        print(v)
    if violations:
        print(f"lint_atomics: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("lint_atomics: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
