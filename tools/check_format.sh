#!/usr/bin/env bash
# Diff-only clang-format check: verifies that files *changed since a base
# ref* conform to the checked-in .clang-format. Deliberately not a mass
# reformat — the existing tree keeps its hand-tuned layout; only lines an
# author touches are held to the tool.
#
# Usage: tools/check_format.sh [base-ref]
#   base-ref: git ref to diff against (default: HEAD~1)
#
# Skips (exit 0, loudly) when clang-format is unavailable; CI installs it.
set -u

cd "$(dirname "$0")/.."

BASE="${1:-HEAD~1}"

CFMT="${CLANG_FORMAT:-}"
if [[ -z "${CFMT}" ]]; then
  for c in clang-format clang-format-20 clang-format-19 clang-format-18; do
    if command -v "$c" > /dev/null 2>&1; then
      CFMT="$c"
      break
    fi
  done
fi
if [[ -z "${CFMT}" ]]; then
  echo "check_format: SKIP (no clang-format found; set CLANG_FORMAT=...)"
  exit 0
fi
if ! git rev-parse --verify --quiet "${BASE}" > /dev/null; then
  echo "check_format: SKIP (base ref '${BASE}' not found — shallow clone?)"
  exit 0
fi

mapfile -t FILES < <(git diff --name-only --diff-filter=ACMR "${BASE}" -- \
  'src/*.h' 'src/*.cc' 'tests/*.h' 'tests/*.cc' 'tools/*.cc' | sort)
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "check_format: no C++ files changed since ${BASE}"
  exit 0
fi

# git-clang-format checks only the changed *lines*; fall back to whole-file
# --dry-run when the helper is not installed alongside clang-format.
GCF="${GIT_CLANG_FORMAT:-}"
if [[ -z "${GCF}" ]]; then
  for c in git-clang-format "git-clang-format-${CFMT##*-}"; do
    if command -v "$c" > /dev/null 2>&1; then
      GCF="$c"
      break
    fi
  done
fi

if [[ -n "${GCF}" ]]; then
  echo "check_format: ${GCF} --diff ${BASE} (${#FILES[@]} file(s))"
  out=$("${GCF}" --binary "$(command -v "${CFMT}")" --diff "${BASE}" -- \
        "${FILES[@]}")
  if [[ -n "${out}" && "${out}" != *"no modified files to format"* && \
        "${out}" != *"did not modify any files"* ]]; then
    echo "${out}"
    echo "check_format: FAIL (run: ${GCF} ${BASE} to fix)"
    exit 1
  fi
else
  echo "check_format: git-clang-format not found; whole-file check on" \
       "${#FILES[@]} changed file(s)"
  if ! "${CFMT}" --dry-run --Werror "${FILES[@]}"; then
    echo "check_format: FAIL (run: ${CFMT} -i <files> to fix)"
    exit 1
  fi
fi

echo "check_format: OK"
