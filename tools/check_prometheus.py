#!/usr/bin/env python3
"""Validate Prometheus text exposition format 0.0.4 (promtool-style).

Usage: check_prometheus.py [FILE ...]        (stdin when no files)

Checks, per input:
  * every line is a comment (# TYPE / # HELP / # ...) or a sample
    `name[{labels}] value [timestamp]`
  * metric and label names match the Prometheus grammar
  * sample values parse as numbers (or +Inf/-Inf/NaN)
  * a family's # TYPE line precedes its samples, and is not repeated
  * histogram families are complete and coherent: cumulative `_bucket`
    counts are non-decreasing in `le` order, an `le="+Inf"` bucket is
    present, and `_count` equals the +Inf bucket's value; `_sum` exists

Exit status 0 when every input validates, 1 otherwise. Used by CI on the
exporter's /metrics scrape; tests/exporter_test.cc mirrors the grammar
subset in-process.
"""

import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<type>counter|gauge|histogram|summary|untyped)$"
)
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_value(text):
    if text in ("+Inf", "-Inf", "NaN", "Inf"):
        return float(text.replace("Inf", "inf").replace("+", ""))
    try:
        return float(text)
    except ValueError:
        return None


def parse_labels(text):
    """Returns {name: value} or None on malformed labels."""
    labels = {}
    if not text:
        return labels
    # The exporter never emits ',' or '"' inside label values, so a simple
    # split is exact here; escaped values would need a real lexer.
    for part in text.split(","):
        if not part:
            continue
        m = re.match(r'^([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"$', part)
        if m is None:
            return None
        labels[m.group(1)] = m.group(2)
    return labels


def family_of(name):
    """Strips histogram sample suffixes back to the declared family name."""
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_histogram(family, samples, errors):
    buckets = []
    has_sum = False
    count_value = None
    for name, labels, value in samples:
        if name == family + "_bucket":
            if "le" not in labels:
                errors.append(f"{name}: bucket sample without le label")
                continue
            le = labels["le"]
            bound = float("inf") if le == "+Inf" else parse_value(le)
            if bound is None:
                errors.append(f"{name}: unparseable le={le!r}")
                continue
            buckets.append((bound, value))
        elif name == family + "_sum":
            has_sum = True
        elif name == family + "_count":
            count_value = value
    if not buckets:
        errors.append(f"{family}: histogram with no _bucket samples")
        return
    buckets.sort(key=lambda b: b[0])
    if buckets[-1][0] != float("inf"):
        errors.append(f"{family}: missing le=\"+Inf\" bucket")
    last = -1.0
    for bound, value in buckets:
        if value < last:
            errors.append(
                f"{family}: cumulative bucket count decreases at le={bound}"
            )
        last = value
    if not has_sum:
        errors.append(f"{family}: missing _sum sample")
    if count_value is None:
        errors.append(f"{family}: missing _count sample")
    elif buckets[-1][0] == float("inf") and count_value != buckets[-1][1]:
        errors.append(
            f"{family}: _count {count_value} != +Inf bucket {buckets[-1][1]}"
        )


def check(text, source):
    errors = []
    types = {}  # family -> declared type
    samples = {}  # family -> [(name, labels, value)]
    sample_count = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE "):
                m = TYPE_RE.match(line)
                if m is None:
                    errors.append(f"line {lineno}: malformed TYPE: {line!r}")
                    continue
                family = m.group("name")
                if family in types:
                    errors.append(f"line {lineno}: duplicate TYPE for {family}")
                if family in samples:
                    errors.append(
                        f"line {lineno}: TYPE for {family} after its samples"
                    )
                types[family] = m.group("type")
            # # HELP and other comments are legal and unchecked.
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        if not METRIC_NAME_RE.match(name):
            errors.append(f"line {lineno}: bad metric name: {name!r}")
            continue
        labels = parse_labels(m.group("labels") or "")
        if labels is None:
            errors.append(f"line {lineno}: malformed labels: {line!r}")
            continue
        for label in labels:
            if not LABEL_NAME_RE.match(label):
                errors.append(f"line {lineno}: bad label name: {label!r}")
        value = parse_value(m.group("value"))
        if value is None:
            errors.append(
                f"line {lineno}: unparseable value: {m.group('value')!r}"
            )
            continue
        family = family_of(name)
        if family not in types and name not in types:
            errors.append(f"line {lineno}: sample {name} has no TYPE line")
        samples.setdefault(family, []).append((name, labels, value))
        sample_count += 1

    for family, declared in types.items():
        if family not in samples:
            errors.append(f"{family}: TYPE declared but no samples")
        elif declared == "histogram":
            check_histogram(family, samples[family], errors)

    if sample_count == 0 and not errors:
        errors.append("no samples found")
    for e in errors:
        print(f"{source}: {e}", file=sys.stderr)
    if not errors:
        print(
            f"{source}: OK ({sample_count} samples, "
            f"{len(types)} families)"
        )
    return not errors


def main(argv):
    paths = argv[1:]
    ok = True
    if not paths:
        ok = check(sys.stdin.read(), "<stdin>")
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            ok = check(f.read(), path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
