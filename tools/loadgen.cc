// loadgen: closed-loop RESP pipeline load generator for faster_server.
//
//   ./loadgen --port P [--host H] [--connections N] [--pipeline D]
//             [--seconds S] [--keys K] [--get-ratio R] [--read-heavy]
//             [--memory-budget MB] [--check]
//
// --read-heavy is shorthand for --get-ratio 0.95 (the cold-read smoke
// profile). --memory-budget MB sizes the key space, when --keys is not
// given explicitly, to ~4x the record capacity of a server running with
// that HybridLog budget — so GETs of the key tail hit storage and
// exercise the server's pending-I/O path rather than pure in-memory hits.
//
// Each of N connection threads keeps D commands in flight: it writes a
// batch of D requests, reads until D replies are framed (net::SkipReply),
// and repeats — so D is both the pipeline depth on the wire and the batch
// fill the server can coalesce. The workload is R GETs : (1-R) INCRs over
// K decimal keys. Per-batch round-trip latencies are sampled; the summary
// line reports throughput and p50/p95/p99 per-command latency.
//
// Exit code: 0 only if every connection finished without socket errors,
// protocol-framing errors, or -ERR replies (--check also verifies reply
// counts match request counts exactly).
//
// Like the bench binaries, a machine-readable sidecar
// ($FASTER_BENCH_JSON_DIR/loadgen.stats.json, schema faster-bench-v1)
// records throughput and latency percentiles for
// tools/summarize_bench.py.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/resp.h"
#include "net/socket.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 6379;
  uint32_t connections = 4;
  uint32_t pipeline = 16;
  double seconds = 5.0;
  uint64_t keys = 100000;
  bool keys_explicit = false;
  double get_ratio = 0.5;
  uint64_t memory_budget_mb = 0;  // 0 = don't derive keys from a budget
  bool check = false;
};

struct WorkerResult {
  uint64_t commands = 0;
  uint64_t replies = 0;
  uint64_t errors = 0;         // -ERR replies
  uint64_t socket_errors = 0;  // connect/read/write failures
  uint64_t framing_errors = 0; // unparseable reply stream
  std::vector<double> batch_rtt_us;
};

void RunConnection(const Options& o, uint32_t seed, WorkerResult* r) {
  faster::net::UniqueFd fd = faster::net::ConnectTcp(o.host, o.port);
  if (!fd) {
    r->socket_errors++;
    return;
  }
  faster::net::SetNoDelay(fd.get());

  std::mt19937_64 rng{seed};
  std::uniform_int_distribution<uint64_t> key_dist{0, o.keys - 1};
  std::uniform_real_distribution<double> op_dist{0.0, 1.0};

  std::string req;
  std::string rbuf;
  char tmp[1 << 16];
  auto deadline =
      Clock::now() + std::chrono::duration<double>(o.seconds);
  while (Clock::now() < deadline) {
    req.clear();
    for (uint32_t i = 0; i < o.pipeline; ++i) {
      char line[64];
      uint64_t key = key_dist(rng);
      int n;
      if (op_dist(rng) < o.get_ratio) {
        n = std::snprintf(line, sizeof(line), "GET %llu\r\n",
                          static_cast<unsigned long long>(key));
      } else {
        n = std::snprintf(line, sizeof(line), "INCR %llu\r\n",
                          static_cast<unsigned long long>(key));
      }
      req.append(line, static_cast<size_t>(n));
    }
    auto t0 = Clock::now();
    if (!faster::net::WriteAllFd(fd.get(), req.data(), req.size())) {
      r->socket_errors++;
      return;
    }
    r->commands += o.pipeline;
    // Read until this batch's replies are all framed.
    uint32_t seen = 0;
    size_t pos = 0;
    while (seen < o.pipeline) {
      ssize_t got = faster::net::ReadSomeFd(fd.get(), tmp, sizeof(tmp));
      if (got <= 0) {
        r->socket_errors++;
        return;
      }
      rbuf.append(tmp, static_cast<size_t>(got));
      for (;;) {
        char type = 0;
        size_t next = faster::net::SkipReply(rbuf, pos, &type);
        if (next == std::string::npos) break;
        if (type == '-') r->errors++;
        pos = next;
        r->replies++;
        if (++seen == o.pipeline) break;
      }
    }
    rbuf.erase(0, pos);
    pos = 0;
    auto t1 = Clock::now();
    r->batch_rtt_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
}

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  std::nth_element(v->begin(), v->begin() + static_cast<ptrdiff_t>(idx),
                   v->end());
  return (*v)[idx];
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next_ll = [&](long long lo, long long hi, long long* out) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      long long v = std::strtoll(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || v < lo || v > hi) return false;
      *out = v;
      return true;
    };
    long long v = 0;
    if (a == "--host" && i + 1 < argc) {
      o.host = argv[++i];
    } else if (a == "--port" && next_ll(1, 65535, &v)) {
      o.port = static_cast<uint16_t>(v);
    } else if (a == "--connections" && next_ll(1, 1024, &v)) {
      o.connections = static_cast<uint32_t>(v);
    } else if (a == "--pipeline" && next_ll(1, 1 << 16, &v)) {
      o.pipeline = static_cast<uint32_t>(v);
    } else if (a == "--seconds" && i + 1 < argc) {
      o.seconds = std::atof(argv[++i]);
    } else if (a == "--keys" && next_ll(1, 1ll << 40, &v)) {
      o.keys = static_cast<uint64_t>(v);
      o.keys_explicit = true;
    } else if (a == "--get-ratio" && i + 1 < argc) {
      o.get_ratio = std::atof(argv[++i]);
    } else if (a == "--read-heavy") {
      o.get_ratio = 0.95;
    } else if (a == "--memory-budget" && next_ll(1, 1 << 20, &v)) {
      o.memory_budget_mb = static_cast<uint64_t>(v);
    } else if (a == "--check") {
      o.check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s --port P [--host H] [--connections N] "
                   "[--pipeline D] [--seconds S] [--keys K] "
                   "[--get-ratio R] [--read-heavy] [--memory-budget MB] "
                   "[--check]\n",
                   argv[0]);
      return 2;
    }
  }
  if (o.memory_budget_mb != 0 && !o.keys_explicit) {
    // ~4x the number of 32-byte records a HybridLog of this budget holds
    // in memory, so the uniform key tail spills to storage server-side.
    o.keys = (o.memory_budget_mb << 20) / 32 * 4;
  }

  std::vector<WorkerResult> results(o.connections);
  std::vector<std::thread> threads;
  auto t0 = Clock::now();
  for (uint32_t c = 0; c < o.connections; ++c) {
    threads.emplace_back(RunConnection, std::cref(o), 0x9e3779b9u + c,
                         &results[c]);
  }
  for (auto& t : threads) t.join();
  double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();

  WorkerResult total;
  std::vector<double> rtts;
  for (auto& r : results) {
    total.commands += r.commands;
    total.replies += r.replies;
    total.errors += r.errors;
    total.socket_errors += r.socket_errors;
    total.framing_errors += r.framing_errors;
    rtts.insert(rtts.end(), r.batch_rtt_us.begin(), r.batch_rtt_us.end());
  }
  // Per-command latency: a batch RTT covers `pipeline` commands.
  double p50 = Percentile(&rtts, 0.50) / o.pipeline;
  double p95 = Percentile(&rtts, 0.95) / o.pipeline;
  double p99 = Percentile(&rtts, 0.99) / o.pipeline;
  double ops = elapsed > 0 ? static_cast<double>(total.replies) / elapsed
                           : 0.0;

  // Sidecar for summarize_bench.py (same schema the bench binaries
  // emit via bench/common.h's BenchSidecar).
  {
    const char* dir = std::getenv("FASTER_BENCH_JSON_DIR");
    std::string path =
        std::string(dir != nullptr ? dir : ".") + "/loadgen.stats.json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(
          f,
          "{\"schema\": \"faster-bench-v1\", \"bench\": \"loadgen\","
          " \"cases\": [\n"
          "  {\"name\": \"loadgen/conns:%u/pipeline:%u\", \"counters\": "
          "{\"Mops\": %.17g, \"total_ops\": %.17g, \"p50_us\": %.17g, "
          "\"p95_us\": %.17g, \"p99_us\": %.17g, \"elapsed_s\": %.17g}}\n"
          "]}\n",
          o.connections, o.pipeline, ops / 1e6,
          static_cast<double>(total.replies), p50, p95, p99, elapsed);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "loadgen: cannot write sidecar %s\n",
                   path.c_str());
    }
  }

  std::printf(
      "loadgen: conns=%u pipeline=%u elapsed=%.2fs commands=%llu "
      "replies=%llu throughput=%.0f ops/s p50=%.1fus p95=%.1fus "
      "p99=%.1fus errors=%llu socket_errors=%llu framing_errors=%llu\n",
      o.connections, o.pipeline, elapsed,
      static_cast<unsigned long long>(total.commands),
      static_cast<unsigned long long>(total.replies), ops, p50, p95, p99,
      static_cast<unsigned long long>(total.errors),
      static_cast<unsigned long long>(total.socket_errors),
      static_cast<unsigned long long>(total.framing_errors));

  if (total.errors != 0 || total.socket_errors != 0 ||
      total.framing_errors != 0) {
    return 1;
  }
  if (o.check && total.replies != total.commands) {
    std::fprintf(stderr, "loadgen: reply count mismatch\n");
    return 1;
  }
  return 0;
}
