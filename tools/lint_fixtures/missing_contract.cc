// Planted violation: an atomic member with no adjacent `// order:`
// contract comment. The only findings must be [missing-contract].
#include <atomic>
#include <cstdint>

struct Flags {
  std::atomic<bool> ready{false};  // BAD: no order contract
};

bool Check(const Flags& f) {
  return f.ready.load(std::memory_order_acquire);
}
