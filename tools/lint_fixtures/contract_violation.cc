// Planted violation: the operation passes an explicit memory order that
// the declaration's `// order:` contract does not permit. The only
// findings must be [contract].
#include <atomic>
#include <cstdint>

struct Counter {
  // order: relaxed fetch_add/load — statistics counter, publishes no data.
  std::atomic<uint64_t> ticks{0};
};

uint64_t Bump(Counter& c) {
  c.ticks.fetch_add(1, std::memory_order_acq_rel);  // BAD: not in contract
  return c.ticks.load(std::memory_order_relaxed);   // OK
}
