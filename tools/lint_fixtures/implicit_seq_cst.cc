// Planted violation: operations relying on the implicit seq_cst default.
// The declaration itself is correctly documented, so the only findings
// must be [implicit-order].
#include <atomic>
#include <cstdint>

struct Counter {
  // order: relaxed fetch_add/load — statistics counter, publishes no data.
  std::atomic<uint64_t> hits{0};
};

uint64_t Bump(Counter& c) {
  c.hits.fetch_add(1);  // BAD: implicit seq_cst
  return c.hits.load();  // BAD: implicit seq_cst
}
