// Control fixture: fully contracted and explicit; the linter must report
// nothing here.
#include <atomic>
#include <cstdint>

struct Publisher {
  // order: release store publishes `payload` writes; acquire load pairs
  // with it on the consumer side; relaxed load for the owner's re-check.
  std::atomic<uint64_t> seq{0};
  uint64_t payload = 0;
};

void Publish(Publisher& p, uint64_t value) {
  p.payload = value;
  p.seq.store(p.seq.load(std::memory_order_relaxed) + 1,
              std::memory_order_release);
}

uint64_t Consume(const Publisher& p) {
  while (p.seq.load(std::memory_order_acquire) == 0) {
  }
  return p.payload;
}
