#!/usr/bin/env python3
"""Validate, summarize, and post-process FasterKv Chrome trace dumps.

The store's DumpTrace() (and ycsb_cli --trace FILE) emits Chrome
trace-event JSON, which Perfetto (https://ui.perfetto.dev) and
chrome://tracing load directly — no conversion is required. This tool
checks a dump before you ship it to a UI, prints a span-level summary,
and can rewrite the trace with spans re-linked to their parents for
tools that understand flow events.

Usage:
  trace2perfetto.py validate  TRACE.json      # structure + span links
  trace2perfetto.py summarize TRACE.json      # per-kind/trace statistics
  trace2perfetto.py convert   TRACE.json OUT  # sorted + flow-linked copy

Exit status 0 on success; 1 when validation fails.
"""

import collections
import json
import sys

SPAN_PHASE = "X"
INSTANT_PHASE = "i"
METADATA_PHASE = "M"


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def spans_of(trace):
    return [
        e
        for e in trace.get("traceEvents", [])
        if e.get("ph") == SPAN_PHASE and e.get("cat") == "span"
    ]


def validate(trace, source):
    errors = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return [f"{source}: traceEvents missing or not a list"]
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in (SPAN_PHASE, INSTANT_PHASE, METADATA_PHASE):
            errors.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == METADATA_PHASE:
            continue
        for field in ("name", "pid", "tid", "ts"):
            if field not in e:
                errors.append(f"event {i}: missing {field}")
        if ph == SPAN_PHASE:
            if "dur" not in e:
                errors.append(f"event {i}: X event without dur")
            args = e.get("args", {})
            for field in ("trace_id", "span_id", "parent_span_id"):
                if field not in args:
                    errors.append(f"event {i}: span without args.{field}")

    # Span-link coherence: every non-root parent points at a span that
    # exists within the same trace id.
    spans = spans_of(trace)
    by_trace = collections.defaultdict(set)
    for e in spans:
        by_trace[e["args"]["trace_id"]].add(e["args"]["span_id"])
    for e in spans:
        parent = e["args"]["parent_span_id"]
        if parent == 0:
            continue
        if parent not in by_trace[e["args"]["trace_id"]]:
            errors.append(
                f"span {e['args']['span_id']} ({e['name']}): orphan parent "
                f"{parent} in trace {e['args']['trace_id']}"
            )
    return errors


def summarize(trace):
    spans = spans_of(trace)
    by_kind = collections.Counter(e["name"] for e in spans)
    traces = collections.defaultdict(list)
    for e in spans:
        traces[e["args"]["trace_id"]].append(e)
    cross_thread = sum(
        1 for group in traces.values() if len({e["tid"] for e in group}) > 1
    )
    print(f"spans:  {len(spans)}")
    print(f"traces: {len(traces)} ({cross_thread} crossing threads)")
    for kind, count in sorted(by_kind.items(), key=lambda kv: -kv[1]):
        durs = sorted(e["dur"] for e in spans if e["name"] == kind)
        p50 = durs[len(durs) // 2]
        print(f"  {kind:<16} n={count:<8} p50={p50}us max={durs[-1]}us")
    instants = [
        e for e in trace.get("traceEvents", []) if e.get("ph") == INSTANT_PHASE
    ]
    if instants:
        by_event = collections.Counter(e["name"] for e in instants)
        print(f"events: {len(instants)}")
        for name, count in sorted(by_event.items(), key=lambda kv: -kv[1]):
            print(f"  {name:<16} n={count}")


def convert(trace, out_path):
    """Writes a sorted copy with flow events binding children to parents,
    so Perfetto draws arrows across the pending-I/O thread hops."""
    events = list(trace.get("traceEvents", []))
    flows = []
    spans = spans_of(trace)
    by_id = {e["args"]["span_id"]: e for e in spans}
    for e in spans:
        parent = by_id.get(e["args"]["parent_span_id"])
        if parent is None:
            continue
        flow_id = e["args"]["span_id"]
        flows.append(
            {
                "name": "span_link",
                "cat": "span",
                "ph": "s",
                "id": flow_id,
                "pid": parent["pid"],
                "tid": parent["tid"],
                "ts": parent["ts"],
            }
        )
        flows.append(
            {
                "name": "span_link",
                "cat": "span",
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "pid": e["pid"],
                "tid": e["tid"],
                "ts": e["ts"],
            }
        )
    events.extend(flows)
    events.sort(key=lambda e: (e.get("ts", 0), e.get("ph") != METADATA_PHASE))
    out = dict(trace)
    out["traceEvents"] = events
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(out, f)
    print(f"wrote {out_path}: {len(events)} events ({len(flows)} flow links)")


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    command, path = argv[1], argv[2]
    trace = load(path)
    if command == "validate":
        errors = validate(trace, path)
        for e in errors:
            print(f"{path}: {e}", file=sys.stderr)
        if errors:
            return 1
        print(f"{path}: OK ({len(spans_of(trace))} spans)")
        return 0
    if command == "summarize":
        errors = validate(trace, path)
        for e in errors:
            print(f"{path}: {e}", file=sys.stderr)
        summarize(trace)
        return 1 if errors else 0
    if command == "convert":
        if len(argv) < 4:
            print("convert needs an output path", file=sys.stderr)
            return 2
        convert(trace, argv[3])
        return 0
    print(f"unknown command {command!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
