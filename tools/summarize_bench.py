#!/usr/bin/env python3
"""Summarize bench/ results into per-figure markdown tables, for building
EXPERIMENTS.md or eyeballing a run.

Accepts any mix of:
  - JSON sidecars (*.stats.json) that every bench binary emits (schema
    "faster-bench-v1"; destination controlled by $FASTER_BENCH_JSON_DIR)
  - google-benchmark console logs (scraped with a regex, best-effort)

Usage:
  mkdir -p bench-json
  for b in build/bench/*; do FASTER_BENCH_JSON_DIR=bench-json $b; done
  tools/summarize_bench.py bench-json/*.stats.json

  # or the legacy console-log path:
  for b in build/bench/*; do $b; done 2>&1 | tee bench.log
  tools/summarize_bench.py bench.log

Exits non-zero (with a message on stderr) if any sidecar is missing,
unreadable, or does not match the expected schema.
"""

import json
import re
import sys
from collections import defaultdict


LINE = re.compile(r"^(\S+)/iterations:1\s+\d+ ms\s+[\d.]+ ms\s+1\s+(.*)$")
COUNTER = re.compile(r"(\w+)=([\d.]+[kMG]?(?:/s)?)")

SIDECAR_SCHEMA = "faster-bench-v1"

# Counters worth a table column, in display order.
INTERESTING = (
    "B", "P", "Mops", "miss_ratio", "log_growth_MBps", "fuzzy_pct",
    "log_bw_MBps", "cache_hit_pct", "storage_reads_pct", "p50_us", "p95_us",
    "p99_us", "p999_us",
)


class InputError(Exception):
    pass


def parse_log(path):
    """Scrapes google-benchmark console output. Best-effort: unmatched lines
    are skipped, but a log with no benchmark lines at all is an error."""
    rows = []
    with open(path) as f:
        for line in f:
            m = LINE.match(line.strip())
            if not m:
                continue
            name, counters_str = m.groups()
            counters = dict(COUNTER.findall(counters_str))
            rows.append((name, counters))
    if not rows:
        raise InputError(f"{path}: no benchmark result lines found")
    return rows


def fmt(value):
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def parse_sidecar(path):
    """Loads and validates a faster-bench-v1 JSON sidecar. Any structural
    problem raises InputError (the caller turns that into exit code 1)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise InputError(f"{path}: {e}")
    if not isinstance(doc, dict):
        raise InputError(f"{path}: top-level JSON value is not an object")
    schema = doc.get("schema")
    if schema != SIDECAR_SCHEMA:
        raise InputError(
            f"{path}: schema {schema!r}, expected {SIDECAR_SCHEMA!r}")
    if not isinstance(doc.get("bench"), str):
        raise InputError(f"{path}: missing/invalid 'bench' name")
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        raise InputError(f"{path}: 'cases' must be a non-empty list")
    rows = []
    for i, case in enumerate(cases):
        if not isinstance(case, dict) or not isinstance(
                case.get("name"), str):
            raise InputError(f"{path}: cases[{i}] missing string 'name'")
        counters = case.get("counters")
        if not isinstance(counters, dict):
            raise InputError(f"{path}: cases[{i}] missing 'counters' object")
        for k, v in counters.items():
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                raise InputError(
                    f"{path}: cases[{i}].counters[{k!r}] is not a number")
        rows.append((case["name"], {k: fmt(v) for k, v in counters.items()}))
    return rows


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    rows = []
    for path in sys.argv[1:]:
        if path.endswith(".stats.json") or path.endswith(".json"):
            rows.extend(parse_sidecar(path))
        else:
            rows.extend(parse_log(path))

    groups = defaultdict(list)
    for name, counters in rows:
        # group by the leading figure tag (before the first '/')
        groups[name.split("/")[0]].append((name, counters))

    for fig in sorted(groups):
        print(f"\n## {fig}\n")
        # choose interesting counters present in this group
        keys = []
        for _, c in groups[fig]:
            for k in INTERESTING:
                if k in c and k not in keys:
                    keys.append(k)
        keys.sort(key=INTERESTING.index)
        header = "| case | " + " | ".join(keys) + " |"
        print(header)
        print("|" + "---|" * (len(keys) + 1))
        for name, c in groups[fig]:
            # strip the figure prefix and trailing arg echo google-benchmark
            # appends (the numeric /a/b/c tail duplicates the name)
            case = "/".join(name.split("/")[1:])
            case = re.sub(r"(/-?\d+)+(/iterations:\d+)?$", "", case)
            case = re.sub(r"(/-?\d+)+$", "", case)
            cells = [c.get(k, "") for k in keys]
            print("| " + case + " | " + " | ".join(cells) + " |")
        report_batch_speedup(groups[fig])
        report_depth_speedup(groups[fig])
        report_server_vs_baseline(groups[fig])
        report_io_path_speedup(groups[fig])
    return 0


def report_batch_speedup(group):
    """For batch-size sweeps (cases carrying a B counter), prints the
    best-B throughput speedup over the B=1 baseline per sweep case."""
    sweeps = defaultdict(dict)  # case-minus-B -> {B: Mops}
    for name, c in group:
        if "B" not in c or "Mops" not in c:
            continue
        case = "/".join(name.split("/")[1:])
        case = re.sub(r"(/-?\d+)+(/iterations:\d+)?$", "", case)
        case = re.sub(r"/B:\d+", "", case)
        try:
            sweeps[case][int(float(c["B"]))] = float(c["Mops"])
        except ValueError:
            continue
    for case, by_b in sorted(sweeps.items()):
        if 1 not in by_b or by_b[1] <= 0 or len(by_b) < 2:
            continue
        best_b = max(by_b, key=lambda b: by_b[b])
        speedup = by_b[best_b] / by_b[1]
        print(f"\nbatch speedup ({case}): B=1 {by_b[1]:.3g} Mops -> "
              f"B={best_b} {by_b[best_b]:.3g} Mops ({speedup:.2f}x)")


def _depth_sweeps(group):
    """case-minus-P -> {P: Mops} for cases carrying a P (pipeline depth)
    counter."""
    sweeps = defaultdict(dict)
    for name, c in group:
        if "P" not in c or "Mops" not in c:
            continue
        case = "/".join(name.split("/")[1:])
        case = re.sub(r"(/-?\d+)+(/iterations:\d+)?$", "", case)
        case = re.sub(r"/P:\d+", "", case)
        try:
            sweeps[case][int(float(c["P"]))] = float(c["Mops"])
        except ValueError:
            continue
    return sweeps


def report_depth_speedup(group):
    """For pipeline-depth sweeps (cases carrying a P counter), prints the
    best-P throughput speedup over the P=1 (unpipelined) baseline."""
    for case, by_p in sorted(_depth_sweeps(group).items()):
        if 1 not in by_p or by_p[1] <= 0 or len(by_p) < 2:
            continue
        best_p = max(by_p, key=lambda p: by_p[p])
        speedup = by_p[best_p] / by_p[1]
        print(f"\npipeline speedup ({case}): P=1 {by_p[1]:.3g} Mops -> "
              f"P={best_p} {by_p[best_p]:.3g} Mops ({speedup:.2f}x)")


def report_io_path_speedup(group):
    """For the io_path bench (cases named <fig>/<mode>/budgetMB:N), prints
    per-budget speedup of each completion-polling mode over the thread-pool
    baseline ('pool')."""
    sweeps = defaultdict(dict)  # budget -> {mode: Mops}
    for name, c in group:
        parts = name.split("/")
        if len(parts) < 3 or not parts[0].startswith("io_path"):
            continue
        if "Mops" not in c:
            continue
        m = re.match(r"budgetMB:(\d+)", parts[2])
        if not m:
            continue
        try:
            sweeps[int(m.group(1))][parts[1]] = float(c["Mops"])
        except ValueError:
            continue
    for budget, by_mode in sorted(sweeps.items()):
        pool = by_mode.get("pool")
        if not pool or pool <= 0:
            continue
        for mode in sorted(m for m in by_mode if m != "pool"):
            speedup = by_mode[mode] / pool
            print(f"\npolling-vs-pool (budgetMB:{budget}, {mode}): pool "
                  f"{pool:.3g} Mops -> {mode} {by_mode[mode]:.3g} Mops "
                  f"({speedup:.2f}x)")


def report_server_vs_baseline(group):
    """For the networked sweep, compares faster_server against the
    remote_baseline stand-in at each common pipeline depth."""
    sweeps = _depth_sweeps(group)
    server = sweeps.get("faster_server")
    baseline = sweeps.get("remote_baseline")
    if not server or not baseline:
        return
    for p in sorted(set(server) & set(baseline)):
        if baseline[p] <= 0:
            continue
        ratio = server[p] / baseline[p]
        print(f"\nserver-vs-remote-baseline (P={p}): server "
              f"{server[p]:.3g} Mops vs baseline {baseline[p]:.3g} Mops "
              f"({ratio:.2f}x)")


if __name__ == "__main__":
    try:
        sys.exit(main())
    except InputError as e:
        print(f"summarize_bench: error: {e}", file=sys.stderr)
        sys.exit(1)
    except BrokenPipeError:
        sys.exit(0)
