#!/usr/bin/env python3
"""Summarize google-benchmark console output from the bench/ binaries into
per-figure tables (markdown), for building EXPERIMENTS.md or eyeballing a
run.

Usage:
  for b in build/bench/*; do $b; done 2>&1 | tee bench.log
  tools/summarize_bench.py bench.log
"""

import re
import sys
from collections import defaultdict


LINE = re.compile(r"^(\S+)/iterations:1\s+\d+ ms\s+[\d.]+ ms\s+1\s+(.*)$")
COUNTER = re.compile(r"(\w+)=([\d.]+[kMG]?(?:/s)?)")


def parse(path):
    rows = []
    for line in open(path):
        m = LINE.match(line.strip())
        if not m:
            continue
        name, counters_str = m.groups()
        counters = dict(COUNTER.findall(counters_str))
        rows.append((name, counters))
    return rows


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    rows = parse(sys.argv[1])
    groups = defaultdict(list)
    for name, counters in rows:
        # group by the leading figure tag (before the first '/')
        groups[name.split("/")[0]].append((name, counters))

    for fig in sorted(groups):
        print(f"\n## {fig}\n")
        # choose interesting counters present in this group
        keys = []
        for _, c in groups[fig]:
            for k in ("Mops", "miss_ratio", "log_growth_MBps", "fuzzy_pct",
                      "log_bw_MBps", "cache_hit_pct", "storage_reads_pct"):
                if k in c and k not in keys:
                    keys.append(k)
        header = "| case | " + " | ".join(keys) + " |"
        print(header)
        print("|" + "---|" * (len(keys) + 1))
        for name, c in groups[fig]:
            # strip the figure prefix and trailing arg echo google-benchmark
            # appends (the numeric /a/b/c tail duplicates the name)
            case = "/".join(name.split("/")[1:])
            case = re.sub(r"(/-?\d+)+$", "", case)
            cells = [c.get(k, "") for k in keys]
            print("| " + case + " | " + " | ".join(cells) + " |")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
