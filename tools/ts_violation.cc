// Negative control for tools/check_thread_safety.sh: every call below
// uses the epoch-protected API without a session (or leaks one), so
// `clang++ -Wthread-safety -Werror=thread-safety` MUST reject this TU.
// If it ever compiles cleanly, the capability annotations have regressed.
#include <cstdint>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"

namespace {

using Store = faster::FasterKv<faster::CountStoreFunctions>;

void UnprotectedOps() {
  faster::MemoryDevice device{1};
  Store::Config cfg;
  cfg.table_size = 64;
  Store store{cfg, &device};
  // BAD: no StartSession() — requires the epoch capability.
  store.Upsert(1, 7);
  uint64_t out = 0;
  store.Read(1, 0, &out);
}

void LeakedSession() {
  faster::LightEpoch epoch;
  epoch.Protect();
  // BAD: returns while still holding the epoch capability.
}

void DoubleUnprotect() {
  faster::LightEpoch epoch;
  epoch.Protect();
  epoch.Unprotect();
  // BAD: releases a capability that is no longer held.
  epoch.Unprotect();
}

}  // namespace

int main() {
  UnprotectedOps();
  LeakedSession();
  DoubleUnprotect();
  return 0;
}
