#!/usr/bin/env bash
# Clang thread-safety analysis gate for the epoch capability annotations
# (src/core/annotations.h).
#
#   1. tools/ts_harness.cc — instantiates both stores and drives every
#      annotated entry point with correct session bracketing; must compile
#      with -Wthread-safety -Werror=thread-safety with NO diagnostics.
#   2. tools/ts_violation.cc — deliberately unprotected calls; the same
#      flags MUST reject it (proves the analysis has teeth).
#
# Skips (exit 0, loudly) when no clang is available — the annotations are
# no-ops on GCC, so there is nothing to check locally; CI installs clang.
set -u

cd "$(dirname "$0")/.."

CLANGXX="${CLANGXX:-}"
if [[ -z "${CLANGXX}" ]]; then
  for c in clang++ clang++-20 clang++-19 clang++-18 clang++-17; do
    if command -v "$c" > /dev/null 2>&1; then
      CLANGXX="$c"
      break
    fi
  done
fi
if [[ -z "${CLANGXX}" ]]; then
  echo "check_thread_safety: SKIP (no clang++ found; set CLANGXX=...)"
  exit 0
fi

FLAGS=(-std=c++20 -fsyntax-only -Isrc -Wthread-safety
       -Werror=thread-safety -Wno-unused-result)

echo "check_thread_safety: using ${CLANGXX}"

echo "check_thread_safety: [1/2] harness must be clean"
if ! "${CLANGXX}" "${FLAGS[@]}" tools/ts_harness.cc; then
  echo "check_thread_safety: FAIL — annotated API does not analyze cleanly"
  exit 1
fi

echo "check_thread_safety: [2/2] violation TU must be rejected"
if "${CLANGXX}" "${FLAGS[@]}" tools/ts_violation.cc 2> /tmp/ts_violation.log
then
  echo "check_thread_safety: FAIL — unprotected calls compiled cleanly;"
  echo "  the capability annotations have regressed."
  exit 1
fi
if ! grep -q "thread-safety" /tmp/ts_violation.log; then
  echo "check_thread_safety: FAIL — ts_violation.cc failed for a reason"
  echo "  other than thread-safety analysis:"
  cat /tmp/ts_violation.log
  exit 1
fi

echo "check_thread_safety: OK"
