#ifndef FASTER_MEMSTORE_INMEM_KV_H_
#define FASTER_MEMSTORE_INMEM_KV_H_

#include <cstdlib>
#include <vector>

#include "core/annotations.h"
#include "core/epoch.h"
#include "core/functions.h"
#include "core/hash_index.h"
#include "core/key_hash.h"
#include "core/record.h"
#include "core/status.h"
#include "core/thread.h"

namespace faster {

/// The Sec. 4 configuration of FASTER: the latch-free hash index paired
/// with a plain in-memory allocator (the paper suggests jemalloc; we use
/// the system allocator). Records live at their malloc'd physical
/// addresses — the index stores the pointer bits directly in its 48-bit
/// address field — and are updated in place. Handles neither
/// larger-than-memory data nor recovery (see Fig. 1's capability table);
/// it exists as the stepping stone between the index and the log-based
/// stores, and as the "pure in-memory FASTER" ablation point.
///
/// Deletion marks the record's tombstone bit and physically unlinks
/// records from the head of a hash chain; unlinked records are returned to
/// the allocator only when their retirement epoch becomes safe (Sec. 4's
/// thread-local free list of (epoch, address) pairs).
template <class F, class Hasher = DefaultKeyHasher<typename F::Key>>
class InMemKv {
 public:
  using Key = typename F::Key;
  using Value = typename F::Value;
  using Input = typename F::Input;
  using Output = typename F::Output;
  using RecordT = Record<Key, Value>;

  explicit InMemKv(uint64_t table_size)
      : epoch_{}, index_{table_size, &epoch_},
        free_lists_(Thread::kMaxThreads) {}

  ~InMemKv() {
    // Free all reachable records and everything on the retire lists.
    for (auto& fl : free_lists_) {
      for (auto& [epoch, rec] : fl.retired) std::free(rec);
    }
    FreeAllChains();
  }

  InMemKv(const InMemKv&) = delete;
  InMemKv& operator=(const InMemKv&) = delete;

  void StartSession() FASTER_ACQUIRES_EPOCH() { epoch_.Protect(); }
  void StopSession() FASTER_RELEASES_EPOCH() { epoch_.Unprotect(); }
  void Refresh() FASTER_REQUIRES_EPOCH() {
    epoch_.Refresh();
    DrainFreeList();
  }

  /// Reads the value for `key` (always via ConcurrentReader: every
  /// in-memory record may race with in-place updates).
  Status Read(const Key& key, const Input& input, Output* output)
      FASTER_REQUIRES_EPOCH() {
    AutoRefresh();
    KeyHash hash = Hasher{}(key);
    typename HashIndex::OpScope scope{index_, hash};
    HashIndex::FindResult fr;
    if (!index_.FindEntry(scope, hash, &fr)) return Status::kNotFound;
    RecordT* rec = FindInChain(key, fr.entry.address());
    if (rec == nullptr || rec->info().tombstone()) return Status::kNotFound;
    F::ConcurrentReader(key, input, rec->value, *output);
    return Status::kOk;
  }

  /// Blind update: in place when the key exists, else insert at the head
  /// of the chain.
  Status Upsert(const Key& key, const Value& value) FASTER_REQUIRES_EPOCH() {
    AutoRefresh();
    KeyHash hash = Hasher{}(key);
    for (;;) {
      typename HashIndex::OpScope scope{index_, hash};
      HashIndex::FindResult fr;
      index_.FindOrCreateEntry(scope, hash, &fr);
      TryCollectChainHead(&fr);
      RecordT* rec = FindInChain(key, fr.entry.address());
      if (rec != nullptr && !rec->info().tombstone()) {
        F::ConcurrentWriter(key, value, rec->value);
        return Status::kOk;
      }
      RecordT* fresh = AllocateRecord(key, fr.entry.address());
      F::SingleWriter(key, value, fresh->value);
      if (index_.TryUpdateEntry(&fr, PointerToAddress(fresh))) {
        return Status::kOk;
      }
      std::free(fresh);
    }
  }

  /// RMW: in place when the key exists (the paper's count-store example
  /// uses fetch-and-increment here), else insert the initial value.
  Status Rmw(const Key& key, const Input& input) FASTER_REQUIRES_EPOCH() {
    AutoRefresh();
    KeyHash hash = Hasher{}(key);
    for (;;) {
      typename HashIndex::OpScope scope{index_, hash};
      HashIndex::FindResult fr;
      index_.FindOrCreateEntry(scope, hash, &fr);
      TryCollectChainHead(&fr);
      RecordT* rec = FindInChain(key, fr.entry.address());
      if (rec != nullptr && !rec->info().tombstone()) {
        F::InPlaceUpdater(key, input, rec->value);
        return Status::kOk;
      }
      RecordT* fresh = AllocateRecord(key, fr.entry.address());
      fresh->value = Value{};
      F::InitialUpdater(key, input, fresh->value);
      if (index_.TryUpdateEntry(&fr, PointerToAddress(fresh))) {
        return Status::kOk;
      }
      std::free(fresh);
    }
  }

  /// Delete: tombstone the record; if it heads its chain, unlink it (CAS
  /// on the hash bucket entry — the singleton case resets the entry to 0,
  /// freeing the slot for future inserts) and retire the memory under
  /// epoch protection.
  Status Delete(const Key& key) FASTER_REQUIRES_EPOCH() {
    AutoRefresh();
    KeyHash hash = Hasher{}(key);
    typename HashIndex::OpScope scope{index_, hash};
    HashIndex::FindResult fr;
    if (!index_.FindEntry(scope, hash, &fr)) return Status::kNotFound;
    RecordT* rec = FindInChain(key, fr.entry.address());
    if (rec == nullptr || rec->info().tombstone()) return Status::kNotFound;
    rec->SetTombstone();
    TryCollectChainHead(&fr);
    return Status::kOk;
  }

  LightEpoch& epoch() { return epoch_; }
  HashIndex& index() { return index_; }

  /// Number of retired-but-not-yet-freed records (tests).
  uint64_t RetiredCount() const {
    uint64_t n = 0;
    for (const auto& fl : free_lists_) n += fl.retired.size();
    return n;
  }

 private:
  struct alignas(64) FreeList {
    std::vector<std::pair<uint64_t, RecordT*>> retired;
    uint32_t ops_since_refresh = 0;
  };

  static Address PointerToAddress(RecordT* rec) {
    return Address{reinterpret_cast<uint64_t>(rec)};
  }
  static RecordT* AddressToPointer(Address addr) {
    return reinterpret_cast<RecordT*>(addr.control());
  }

  void AutoRefresh() FASTER_REQUIRES_EPOCH() {
    FreeList& fl = free_lists_[Thread::Id()];
    if (++fl.ops_since_refresh >= 256) {
      fl.ops_since_refresh = 0;
      Refresh();
    }
  }

  RecordT* FindInChain(const Key& key, Address head) const {
    Address addr = head;
    while (addr.IsValid()) {
      RecordT* rec = AddressToPointer(addr);
      if (rec->key == key) return rec;
      addr = rec->info().previous_address();
    }
    return nullptr;
  }

  RecordT* AllocateRecord(const Key& key, Address prev) {
    void* mem = std::aligned_alloc(8, RecordT::size());
    auto* rec = static_cast<RecordT*>(mem);
    rec->key = key;
    rec->set_info(RecordInfo{prev, false, false});
    return rec;
  }

  /// Physically unlinks tombstoned records from the head of the chain
  /// (progressive reclamation; mid-chain tombstones surface as their
  /// predecessors are removed). Updates `fr` to the new chain head.
  void TryCollectChainHead(HashIndex::FindResult* fr)
      FASTER_REQUIRES_EPOCH() {
    while (fr->entry.address().IsValid()) {
      RecordT* head = AddressToPointer(fr->entry.address());
      if (!head->info().tombstone()) return;
      Address next = head->info().previous_address();
      bool ok = next.IsValid() ? index_.TryUpdateEntry(fr, next)
                               : index_.TryDeleteEntry(fr);
      if (!ok) return;  // someone else raced; they own the cleanup
      Retire(head);
      if (!next.IsValid()) return;
    }
  }

  /// Defer the free until every thread has moved past the current epoch
  /// (no thread can still hold a pointer into the record).
  void Retire(RecordT* rec) {
    FreeList& fl = free_lists_[Thread::Id()];
    fl.retired.emplace_back(epoch_.CurrentEpoch(), rec);
  }

  void DrainFreeList() FASTER_REQUIRES_EPOCH() {
    FreeList& fl = free_lists_[Thread::Id()];
    if (fl.retired.empty()) return;
    uint64_t safe = epoch_.SafeToReclaimEpoch();
    if (fl.retired.front().first > safe) {
      // The retirement epoch cannot become safe until the current epoch
      // advances past it; nudge it along (threads' refreshes do the rest).
      epoch_.BumpCurrentEpoch();
    }
    auto it = fl.retired.begin();
    while (it != fl.retired.end() && it->first <= safe) {
      std::free(it->second);
      ++it;
    }
    fl.retired.erase(fl.retired.begin(), it);
  }

  void FreeAllChains() {
    // Destructor-only: walk every chain reachable from the index and free
    // its records.
    index_.ForEachEntry([](HashBucketEntry entry) {
      Address addr = entry.address();
      while (addr.IsValid()) {
        RecordT* rec = AddressToPointer(addr);
        addr = rec->info().previous_address();
        std::free(rec);
      }
    });
  }

  LightEpoch epoch_;
  HashIndex index_;
  std::vector<FreeList> free_lists_;
};

}  // namespace faster

#endif  // FASTER_MEMSTORE_INMEM_KV_H_
