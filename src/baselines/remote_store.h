#ifndef FASTER_BASELINES_REMOTE_STORE_H_
#define FASTER_BASELINES_REMOTE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "net/socket.h"

namespace faster {

/// Baseline: a single-threaded, network-accessed cache — the stand-in for
/// Redis in the paper's evaluation (Sec. 7.2.4). The three properties the
/// paper calls out are reproduced:
///
///  1. Not concurrent: one server thread executes all commands in order.
///  2. In-memory only: a plain hash table, no storage tier.
///  3. Accessed over a (local) transport: commands are serialized into a
///     byte protocol, shipped over a Unix socketpair, parsed, executed,
///     and the responses shipped back — so per-operation cost is dominated
///     by the message hop, amortizable by pipelining (the `-P` flag of
///     redis-benchmark that Sec. 7.2.4 sweeps).
///
/// Protocol: RESP-style inline text commands, as Redis itself accepts —
/// requests are `SET <key> <value>\r\n` / `GET <key>\r\n`; responses are
/// `+OK\r\n`, `:<value>\r\n`, or `$-1\r\n` (miss). Commands are parsed
/// and responses formatted per operation, reproducing the serialization
/// cost that dominates Redis' per-op time (Sec. 7.2.4).
class RemoteStore {
 public:
  RemoteStore();
  ~RemoteStore();

  RemoteStore(const RemoteStore&) = delete;
  RemoteStore& operator=(const RemoteStore&) = delete;

  /// A client connection with its own socketpair to the server.
  class Client {
   public:
    ~Client();
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /// Executes a pipelined batch: all requests are written before any
    /// response is read (depth = ops.size()).
    struct Op {
      bool is_set;
      uint64_t key;
      uint64_t value;      // SET payload
      uint64_t out = 0;    // GET result
      bool found = false;  // GET hit
    };
    Status ExecuteBatch(std::vector<Op>* ops);

   private:
    friend class RemoteStore;
    explicit Client(net::UniqueFd fd) : fd_{std::move(fd)} {}
    net::UniqueFd fd_;
  };

  /// Opens a new client connection.
  std::unique_ptr<Client> Connect();

  uint64_t commands_processed() const {
    return commands_.load(std::memory_order_relaxed);
  }

 private:
  void ServerLoop();

  /// Like Redis, the store is string-keyed and string-valued (values are
  /// decimal text); conversions happen per command.
  std::unordered_map<std::string, std::string> table_;
  std::thread server_;
  // order: release store requests shutdown; acquire load in the server
  // loop pairs with it so the loop's final pass sees all prior writes.
  std::atomic<bool> stop_{false};
  // order: relaxed fetch_add/load — a monotone command counter for stats;
  // no data is published through it.
  std::atomic<uint64_t> commands_{0};
  net::UniqueFd epoll_fd_;
  net::UniqueFd wake_read_, wake_write_;
  std::vector<net::UniqueFd> pending_clients_;
  std::mutex clients_mutex_;
};

}  // namespace faster

#endif  // FASTER_BASELINES_REMOTE_STORE_H_
