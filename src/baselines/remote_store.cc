#include "baselines/remote_store.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "obs/log.h"

namespace faster {

namespace {

// Formats "SET <key> <value>\r\n" / "GET <key>\r\n" into `out`.
void FormatRequest(std::string* out, bool is_set, uint64_t key,
                   uint64_t value) {
  char buf[64];
  int n = is_set ? std::snprintf(buf, sizeof(buf),
                                 "SET %" PRIu64 " %" PRIu64 "\r\n", key,
                                 value)
                 : std::snprintf(buf, sizeof(buf), "GET %" PRIu64 "\r\n",
                                 key);
  out->append(buf, static_cast<size_t>(n));
}

}  // namespace

RemoteStore::RemoteStore() {
  epoll_fd_.reset(::epoll_create1(EPOLL_CLOEXEC));
  int wake[2];
  if (::pipe(wake) == 0) {
    wake_read_.reset(wake[0]);
    wake_write_.reset(wake[1]);
  }
  if (!epoll_fd_ || !wake_read_) {
    // Construction failed; leave the server thread unstarted (Connect()
    // then returns nullptr). The UniqueFd members release whichever
    // descriptors were created.
    obs::StatLog(obs::LogLevel::kError, "remote_store",
                 "construction failed: epoll/pipe setup",
                 obs::LogField{"errno", errno});
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_read_.get();
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_read_.get(), &ev);
  server_ = std::thread([this] { ServerLoop(); });
}

RemoteStore::~RemoteStore() {
  stop_.store(true, std::memory_order_release);
  if (server_.joinable()) {
    char b = 1;
    (void)!::write(wake_write_.get(), &b, 1);
    server_.join();
  }
}

std::unique_ptr<RemoteStore::Client> RemoteStore::Connect() {
  if (!server_.joinable()) return nullptr;  // construction failed
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    obs::StatLog(obs::LogLevel::kError, "remote_store",
                 "socketpair failed", obs::LogField{"errno", errno});
    return nullptr;
  }
  net::UniqueFd client_fd{fds[0]};
  net::UniqueFd server_fd{fds[1]};
  {
    std::lock_guard<std::mutex> lock{clients_mutex_};
    pending_clients_.push_back(std::move(server_fd));
  }
  char b = 1;
  (void)!::write(wake_write_.get(), &b, 1);
  return std::unique_ptr<Client>(new Client(std::move(client_fd)));
}

RemoteStore::Client::~Client() = default;

Status RemoteStore::Client::ExecuteBatch(std::vector<Op>* ops) {
  // Pipelined: serialize and send every request, then parse every
  // response. Responses are one CRLF-terminated line each.
  std::string out;
  out.reserve(ops->size() * 24);
  for (const Op& op : *ops) {
    FormatRequest(&out, op.is_set, op.key, op.value);
  }
  if (!net::WriteAllFd(fd_.get(), out.data(), out.size())) {
    return Status::kIoError;
  }

  std::string in;
  size_t lines = 0;
  size_t parsed_to = 0;
  char buf[4096];
  size_t next_op = 0;
  while (lines < ops->size()) {
    ssize_t n = net::ReadSomeFd(fd_.get(), buf, sizeof(buf));
    if (n <= 0) return Status::kIoError;
    in.append(buf, static_cast<size_t>(n));
    // Parse complete responses. "+OK" and "$-1" are one line; a bulk
    // value "$<len>\r\n<value>\r\n" spans two.
    for (;;) {
      size_t eol = in.find("\r\n", parsed_to);
      if (eol == std::string::npos) break;
      const char* line = in.data() + parsed_to;
      Op& op = (*ops)[next_op];
      if (line[0] == '$') {
        long len = std::strtol(line + 1, nullptr, 10);
        if (len < 0) {
          op.found = false;
          op.out = 0;
          parsed_to = eol + 2;
        } else {
          size_t data_eol = in.find("\r\n", eol + 2);
          if (data_eol == std::string::npos) break;  // value not here yet
          op.found = true;
          op.out = std::strtoull(in.data() + eol + 2, nullptr, 10);
          parsed_to = data_eol + 2;
        }
      } else {
        op.found = true;  // +OK (or an error line; callers never send bad
        parsed_to = eol + 2;  // commands through this API)
      }
      ++next_op;
      ++lines;
      if (lines == ops->size()) break;
    }
  }
  return Status::kOk;
}

void RemoteStore::ServerLoop() {
  // Per-connection input buffers (commands can straddle reads). The map
  // also owns the connection fds: erasing an entry closes it.
  struct Conn {
    net::UniqueFd fd;
    std::string buf;
  };
  std::unordered_map<int, Conn> conns;
  epoll_event events[64];
  std::vector<char> scratch(1 << 16);
  std::string responses;
  char reply[48];
  while (!stop_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_.get(), events, 64, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_read_.get()) {
        char drain[64];
        (void)!net::ReadSomeFd(wake_read_.get(), drain, sizeof(drain));
        std::lock_guard<std::mutex> lock{clients_mutex_};
        for (net::UniqueFd& cfd : pending_clients_) {
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = cfd.get();
          if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, cfd.get(),
                          &ev) == 0) {
            int key = cfd.get();
            conns.emplace(key, Conn{std::move(cfd), std::string{}});
          }
          // On epoll_ctl failure cfd stays owned and closes when the
          // pending list is cleared — no leak, the client sees EOF.
        }
        pending_clients_.clear();
        continue;
      }
      auto conn_it = conns.find(fd);
      if (conn_it == conns.end()) continue;
      ssize_t got = net::ReadSomeFd(fd, scratch.data(), scratch.size());
      if (got <= 0) {
        ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
        conns.erase(conn_it);  // UniqueFd closes the descriptor
        continue;
      }
      std::string& buf = conn_it->second.buf;
      buf.append(scratch.data(), static_cast<size_t>(got));
      responses.clear();
      size_t parsed_to = 0;
      for (;;) {
        size_t eol = buf.find("\r\n", parsed_to);
        if (eol == std::string::npos) break;
        // Parse "SET <key> <value>" / "GET <key>" (inline command form).
        // Keys and values are strings, as in Redis itself; per-command
        // string construction mirrors Redis' sds/robj handling.
        const char* line = buf.data() + parsed_to;
        size_t line_len = eol - parsed_to;
        if (std::strncmp(line, "SET ", 4) == 0) {
          const char* key_begin = line + 4;
          const char* space = static_cast<const char*>(
              std::memchr(key_begin, ' ', line_len - 4));
          if (space != nullptr) {
            std::string key{key_begin, static_cast<size_t>(space - key_begin)};
            std::string value{space + 1,
                              static_cast<size_t>(line + line_len - space - 1)};
            table_[std::move(key)] = std::move(value);
            responses.append("+OK\r\n");
          } else {
            responses.append("-ERR syntax\r\n");
          }
        } else if (std::strncmp(line, "GET ", 4) == 0) {
          std::string key{line + 4, line_len - 4};
          auto it = table_.find(key);
          if (it == table_.end()) {
            responses.append("$-1\r\n");
          } else {
            int len = std::snprintf(reply, sizeof(reply), "$%zu\r\n",
                                    it->second.size());
            responses.append(reply, static_cast<size_t>(len));
            responses.append(it->second);
            responses.append("\r\n");
          }
        } else {
          responses.append("-ERR unknown command\r\n");
        }
        commands_.fetch_add(1, std::memory_order_relaxed);
        parsed_to = eol + 2;
      }
      buf.erase(0, parsed_to);
      if (!responses.empty()) {
        net::WriteAllFd(fd, responses.data(), responses.size());
      }
    }
  }
  // conns' UniqueFds close every remaining connection.
}

}  // namespace faster
