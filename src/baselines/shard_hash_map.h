#ifndef FASTER_BASELINES_SHARD_HASH_MAP_H_
#define FASTER_BASELINES_SHARD_HASH_MAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/key_hash.h"

namespace faster {

/// Baseline: a pure in-memory concurrent hash map with in-place updates —
/// the stand-in for the Intel TBB `concurrent_hash_map` used in the
/// paper's evaluation (Sec. 7.1). It mirrors TBB's cost structure:
/// per-bucket reader-writer spinlocks guarding chains of heap-allocated
/// nodes, values stored in-line in the node and updated in place under
/// the bucket's write lock (a TBB `accessor`), reads under the shared
/// lock (a `const_accessor`).
///
/// Like TBB under the Zipf workload (Sec. 7.2.2-7.2.3), a skewed key
/// distribution concentrates traffic on a few bucket locks; the map
/// "falls over" under cross-socket contention exactly because every
/// update serializes on the hot bucket's lock — the behaviour Fig. 9a
/// shows.
template <class Key, class Value, class Hasher = DefaultKeyHasher<Key>>
class ShardHashMap {
 public:
  /// `expected_keys` sizes the bucket array (chains grow without bound, so
  /// this is a performance knob only).
  explicit ShardHashMap(uint64_t expected_keys, uint64_t num_buckets = 0) {
    uint64_t want = num_buckets != 0 ? num_buckets : expected_keys;
    uint64_t cap = 64;
    while (cap < want) cap <<= 1;
    buckets_ = std::make_unique<Bucket[]>(cap);
    mask_ = cap - 1;
  }

  ~ShardHashMap() {
    for (uint64_t i = 0; i <= mask_; ++i) {
      Node* n = buckets_[i].head;
      while (n != nullptr) {
        Node* next = n->next;
        delete n;
        n = next;
      }
    }
  }

  ShardHashMap(const ShardHashMap&) = delete;
  ShardHashMap& operator=(const ShardHashMap&) = delete;

  /// Returns true and fills `*out` if the key is present (shared lock).
  bool Get(const Key& key, Value* out) {
    uint64_t h = Hasher{}(key).control();
    Bucket& b = buckets_[h & mask_];
    b.lock.LockShared();
    for (Node* n = b.head; n != nullptr; n = n->next) {
      if (n->key == key) {
        *out = n->value;
        b.lock.UnlockShared();
        return true;
      }
    }
    b.lock.UnlockShared();
    return false;
  }

  /// Blind in-place update / insert (exclusive lock).
  void Put(const Key& key, const Value& value) {
    Rmw(key, [&](Value& v, bool) { v = value; });
  }

  /// Read-modify-write in place. `update(value, fresh)` receives
  /// `fresh == true` when the key was just inserted.
  template <class Fn>
  void Rmw(const Key& key, Fn&& update) {
    uint64_t h = Hasher{}(key).control();
    Bucket& b = buckets_[h & mask_];
    b.lock.Lock();
    for (Node* n = b.head; n != nullptr; n = n->next) {
      if (n->key == key) {
        update(n->value, /*fresh=*/false);
        b.lock.Unlock();
        return;
      }
    }
    Node* fresh = new Node{key, Value{}, b.head};
    b.head = fresh;
    update(fresh->value, /*fresh=*/true);
    b.lock.Unlock();
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Removes the key; returns true if it was present.
  bool Erase(const Key& key) {
    uint64_t h = Hasher{}(key).control();
    Bucket& b = buckets_[h & mask_];
    b.lock.Lock();
    Node** link = &b.head;
    while (*link != nullptr) {
      if ((*link)->key == key) {
        Node* victim = *link;
        *link = victim->next;
        b.lock.Unlock();
        delete victim;
        size_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
      link = &(*link)->next;
    }
    b.lock.Unlock();
    return false;
  }

  uint64_t Size() const { return size_.load(std::memory_order_relaxed); }

 private:
  /// Reader-writer spinlock (TBB's spin_rw_mutex design point):
  /// state == -1 writer held; state >= 0 count of readers.
  struct RwSpin {
    // order: acquire CAS takes the lock in Lock/LockShared (the critical
    // section's reads see prior writers); release store/fetch_sub in
    // Unlock/UnlockShared publishes the critical section; relaxed loads
    // only spin/probe before retrying the CAS.
    std::atomic<int32_t> state{0};
    void Lock() {
      for (;;) {
        int32_t expected = 0;
        if (state.compare_exchange_weak(expected, -1,
                                        std::memory_order_acquire)) {
          return;
        }
        while (state.load(std::memory_order_relaxed) != 0) {
        }
      }
    }
    void Unlock() { state.store(0, std::memory_order_release); }
    void LockShared() {
      for (;;) {
        int32_t s = state.load(std::memory_order_relaxed);
        if (s >= 0 &&
            state.compare_exchange_weak(s, s + 1,
                                        std::memory_order_acquire)) {
          return;
        }
      }
    }
    void UnlockShared() { state.fetch_sub(1, std::memory_order_release); }
  };

  struct Node {
    Key key;
    Value value;
    Node* next;
  };

  struct alignas(64) Bucket {
    RwSpin lock;
    Node* head = nullptr;
  };

  std::unique_ptr<Bucket[]> buckets_;
  uint64_t mask_;
  // order: relaxed fetch_add/fetch_sub/load — element counter for stats;
  // no data is published through it.
  std::atomic<uint64_t> size_{0};
};

}  // namespace faster

#endif  // FASTER_BASELINES_SHARD_HASH_MAP_H_
