#ifndef FASTER_BASELINES_ORDERED_STORE_H_
#define FASTER_BASELINES_ORDERED_STORE_H_

#include <cstdint>
#include <algorithm>
#include <map>
#include <mutex>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "core/key_hash.h"

namespace faster {

/// Baseline: a pure in-memory *range index* — the stand-in for Masstree in
/// the paper's evaluation (Sec. 7.1). Same design point: an ordered
/// in-memory structure that supports point and range operations, pays the
/// comparison/ordering overhead on every point access, updates in place,
/// and has no larger-than-memory story.
///
/// Keys are hash-partitioned across shards, each an ordered map behind a
/// reader-writer lock; range scans lock all shards in shared mode and
/// merge. (Masstree itself is a trie of B+-trees with optimistic
/// concurrency; the substitution preserves the workload-visible shape —
/// ordered point ops are several times more expensive than hashed ones —
/// which is what Figs. 8-9 measure.)
template <class Key, class Value, class Hasher = DefaultKeyHasher<Key>>
class OrderedStore {
 public:
  explicit OrderedStore(uint64_t num_shards = 256) {
    shards_.resize(num_shards);
    for (auto& s : shards_) s = std::make_unique<Shard>();
  }

  bool Get(const Key& key, Value* out) const {
    const Shard& shard = ShardFor(key);
    std::shared_lock lock{shard.mutex};
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    *out = it->second;
    return true;
  }

  void Put(const Key& key, const Value& value) {
    Shard& shard = ShardFor(key);
    std::unique_lock lock{shard.mutex};
    shard.map[key] = value;
  }

  template <class Fn>
  void Rmw(const Key& key, Fn&& update) {
    Shard& shard = ShardFor(key);
    std::unique_lock lock{shard.mutex};
    auto [it, fresh] = shard.map.try_emplace(key, Value{});
    update(it->second, fresh);
  }

  bool Erase(const Key& key) {
    Shard& shard = ShardFor(key);
    std::unique_lock lock{shard.mutex};
    return shard.map.erase(key) > 0;
  }

  /// Range scan: visits every (key, value) with lo <= key < hi in key
  /// order. `fn(key, value)`.
  template <class Fn>
  void Scan(const Key& lo, const Key& hi, Fn&& fn) const {
    // Collect per shard (each shard is ordered but shards interleave), then
    // merge. Point-lookup-optimized stores would not need this; the paper
    // notes range indices pay complexity for exactly this capability.
    std::vector<std::pair<Key, Value>> merged;
    for (const auto& shard : shards_) {
      std::shared_lock lock{shard->mutex};
      for (auto it = shard->map.lower_bound(lo);
           it != shard->map.end() && it->first < hi; ++it) {
        merged.emplace_back(it->first, it->second);
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [k, v] : merged) fn(k, v);
  }

  uint64_t Size() const {
    uint64_t n = 0;
    for (const auto& s : shards_) {
      std::shared_lock lock{s->mutex};
      n += s->map.size();
    }
    return n;
  }

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    std::map<Key, Value> map;
  };

  Shard& ShardFor(const Key& key) {
    return *shards_[Hasher{}(key).control() % shards_.size()];
  }
  const Shard& ShardFor(const Key& key) const {
    return *shards_[Hasher{}(key).control() % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace faster

#endif  // FASTER_BASELINES_ORDERED_STORE_H_
