#include "baselines/minilsm/memtable.h"

#include <mutex>

namespace faster {
namespace minilsm {

namespace {
constexpr uint64_t kEntryOverhead = 48;  // map node + key bookkeeping
}

uint64_t MemTable::Put(uint64_t key, const void* value, uint32_t value_size) {
  std::unique_lock lock{mutex_};
  LsmEntry& e = map_[key];
  if (e.value.empty() && !e.tombstone) bytes_ += kEntryOverhead + value_size;
  e.value.assign(static_cast<const char*>(value), value_size);
  e.tombstone = false;
  return bytes_;
}

uint64_t MemTable::Delete(uint64_t key) {
  std::unique_lock lock{mutex_};
  LsmEntry& e = map_[key];
  if (e.value.empty() && !e.tombstone) bytes_ += kEntryOverhead;
  e.value.clear();
  e.tombstone = true;
  return bytes_;
}

bool MemTable::Get(uint64_t key, LsmEntry* out) const {
  std::shared_lock lock{mutex_};
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  *out = it->second;
  return true;
}

std::vector<std::pair<uint64_t, LsmEntry>> MemTable::Snapshot() const {
  std::shared_lock lock{mutex_};
  return {map_.begin(), map_.end()};
}

}  // namespace minilsm
}  // namespace faster
