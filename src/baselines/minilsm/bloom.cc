#include "baselines/minilsm/bloom.h"

#include <algorithm>

namespace faster {
namespace minilsm {

BloomFilter::BloomFilter(uint64_t expected_keys, uint32_t bits_per_key) {
  uint64_t bits = std::max<uint64_t>(64, expected_keys * bits_per_key);
  bits_.assign((bits + 7) / 8, 0);
  // Optimal probe count ~= bits_per_key * ln(2).
  num_probes_ = std::max<uint32_t>(
      1, static_cast<uint32_t>(bits_per_key * 0.69));
}

BloomFilter::BloomFilter(std::vector<uint8_t> bytes, uint32_t num_probes)
    : bits_{std::move(bytes)}, num_probes_{num_probes} {}

void BloomFilter::Add(uint64_t hash) {
  uint64_t nbits = bits_.size() * 8;
  uint64_t h1 = hash;
  uint64_t h2 = (hash >> 33) | (hash << 31);
  for (uint32_t i = 0; i < num_probes_; ++i) {
    uint64_t bit = (h1 + i * h2) % nbits;
    bits_[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
  }
}

bool BloomFilter::MayContain(uint64_t hash) const {
  uint64_t nbits = bits_.size() * 8;
  uint64_t h1 = hash;
  uint64_t h2 = (hash >> 33) | (hash << 31);
  for (uint32_t i = 0; i < num_probes_; ++i) {
    uint64_t bit = (h1 + i * h2) % nbits;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

}  // namespace minilsm
}  // namespace faster
