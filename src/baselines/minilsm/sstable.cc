#include "baselines/minilsm/sstable.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "core/key_hash.h"

namespace faster {
namespace minilsm {

namespace {

constexpr uint64_t kSsTableMagic = 0x4C534D5461626CULL;

struct TableHeader {
  uint64_t magic;
  uint64_t count;
  uint32_t value_size;
  uint32_t bloom_probes;
  uint64_t bloom_bytes;
  uint64_t min_key;
  uint64_t max_key;
};

bool PWriteAll(int fd, const void* data, size_t len, uint64_t offset) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::pwrite(fd, p, len, static_cast<off_t>(offset));
    if (n <= 0) return false;
    p += n;
    offset += static_cast<uint64_t>(n);
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool PReadAll(int fd, void* data, size_t len, uint64_t offset) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    ssize_t n = ::pread(fd, p, len, static_cast<off_t>(offset));
    if (n <= 0) return false;
    p += n;
    offset += static_cast<uint64_t>(n);
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

SsTable::~SsTable() {
  if (fd_ >= 0) ::close(fd_);
}

Status SsTable::Write(
    const std::string& path,
    const std::vector<std::pair<uint64_t, LsmEntry>>& entries,
    uint32_t value_size, std::unique_ptr<SsTable>* out) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::kIoError;

  auto table = std::unique_ptr<SsTable>(new SsTable());
  table->path_ = path;
  table->fd_ = fd;
  table->count_ = entries.size();
  table->value_size_ = value_size;
  table->bloom_ = std::make_unique<BloomFilter>(entries.size());
  table->min_key_ = entries.empty() ? 0 : entries.front().first;
  table->max_key_ = entries.empty() ? 0 : entries.back().first;

  TableHeader header{kSsTableMagic,
                     entries.size(),
                     value_size,
                     table->bloom_->num_probes(),
                     0,  // patched below
                     table->min_key_,
                     table->max_key_};

  const uint32_t entry_size = table->EntrySize();
  table->entries_offset_ = sizeof(TableHeader);
  std::vector<uint8_t> buf(entry_size);
  // Stream entries through a modest write buffer.
  std::vector<uint8_t> block;
  block.reserve(1 << 20);
  uint64_t offset = table->entries_offset_;
  for (const auto& [key, entry] : entries) {
    std::memset(buf.data(), 0, entry_size);
    std::memcpy(buf.data(), &key, 8);
    uint64_t tomb = entry.tombstone ? 1 : 0;
    std::memcpy(buf.data() + 8, &tomb, 8);
    if (!entry.tombstone) {
      std::memcpy(buf.data() + 16, entry.value.data(),
                  std::min<size_t>(entry.value.size(), value_size));
    }
    block.insert(block.end(), buf.begin(), buf.end());
    if (block.size() >= (1 << 20)) {
      if (!PWriteAll(fd, block.data(), block.size(), offset)) {
        return Status::kIoError;
      }
      offset += block.size();
      block.clear();
    }
    table->bloom_->Add(Mix64(key));
  }
  if (!block.empty()) {
    if (!PWriteAll(fd, block.data(), block.size(), offset)) {
      return Status::kIoError;
    }
    offset += block.size();
  }
  header.bloom_bytes = table->bloom_->bytes().size();
  if (!PWriteAll(fd, table->bloom_->bytes().data(), header.bloom_bytes,
                 offset)) {
    return Status::kIoError;
  }
  if (!PWriteAll(fd, &header, sizeof(header), 0)) return Status::kIoError;
  table->file_bytes_ = offset + header.bloom_bytes;
  *out = std::move(table);
  return Status::kOk;
}

Status SsTable::Open(const std::string& path, std::unique_ptr<SsTable>* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::kIoError;
  TableHeader header;
  if (!PReadAll(fd, &header, sizeof(header), 0) ||
      header.magic != kSsTableMagic) {
    ::close(fd);
    return Status::kCorruption;
  }
  auto table = std::unique_ptr<SsTable>(new SsTable());
  table->path_ = path;
  table->fd_ = fd;
  table->count_ = header.count;
  table->value_size_ = header.value_size;
  table->entries_offset_ = sizeof(TableHeader);
  table->min_key_ = header.min_key;
  table->max_key_ = header.max_key;
  std::vector<uint8_t> bloom_bytes(header.bloom_bytes);
  uint64_t bloom_offset =
      table->entries_offset_ + header.count * table->EntrySize();
  if (!PReadAll(fd, bloom_bytes.data(), bloom_bytes.size(), bloom_offset)) {
    return Status::kCorruption;
  }
  table->bloom_ = std::make_unique<BloomFilter>(std::move(bloom_bytes),
                                                header.bloom_probes);
  table->file_bytes_ = bloom_offset + header.bloom_bytes;
  *out = std::move(table);
  return Status::kOk;
}

Status SsTable::Get(uint64_t key, LsmEntry* out) const {
  if (count_ == 0 || key < min_key_ || key > max_key_) {
    return Status::kNotFound;
  }
  if (!bloom_->MayContain(Mix64(key))) return Status::kNotFound;
  // Binary search over fixed-size entries.
  uint64_t lo = 0, hi = count_;
  const uint32_t entry_size = EntrySize();
  uint64_t probe_key = 0;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (!PReadAll(fd_, &probe_key, 8, entries_offset_ + mid * entry_size)) {
      return Status::kIoError;
    }
    if (probe_key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= count_) return Status::kNotFound;
  uint64_t found_key = 0;
  return ReadEntry(lo, &found_key, out) == Status::kOk && found_key == key
             ? Status::kOk
             : Status::kNotFound;
}

Status SsTable::ReadEntry(uint64_t i, uint64_t* key, LsmEntry* out) const {
  const uint32_t entry_size = EntrySize();
  std::vector<uint8_t> buf(entry_size);
  if (!PReadAll(fd_, buf.data(), entry_size, entries_offset_ + i * entry_size)) {
    return Status::kIoError;
  }
  std::memcpy(key, buf.data(), 8);
  uint64_t tomb = 0;
  std::memcpy(&tomb, buf.data() + 8, 8);
  out->tombstone = tomb != 0;
  if (out->tombstone) {
    out->value.clear();
  } else {
    out->value.assign(reinterpret_cast<const char*>(buf.data()) + 16,
                      value_size_);
  }
  return Status::kOk;
}

void SsTable::UnlinkFile() { ::unlink(path_.c_str()); }

void SsTable::Destroy() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ::unlink(path_.c_str());
}

}  // namespace minilsm
}  // namespace faster
