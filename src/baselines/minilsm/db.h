#ifndef FASTER_BASELINES_MINILSM_DB_H_
#define FASTER_BASELINES_MINILSM_DB_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "baselines/minilsm/memtable.h"
#include "baselines/minilsm/sstable.h"
#include "core/status.h"

namespace faster {
namespace minilsm {

struct LsmConfig {
  /// Directory for SSTable and WAL files.
  std::string dir = "/tmp/minilsm";
  /// Fixed value size in bytes.
  uint32_t value_size = 8;
  /// Memtable rotation threshold.
  uint64_t memtable_bytes = 8ull << 20;
  /// Number of L0 runs that triggers a full compaction into L1.
  uint32_t l0_compaction_trigger = 4;
  /// Write-ahead logging (the paper's RocksDB configuration disables it;
  /// kept for completeness and crash-recovery tests).
  bool enable_wal = false;
  /// fsync the WAL on every write (off = buffered, like the paper setup).
  bool sync_wal = false;
};

/// MiniLsm: a log-structured merge-tree key-value store — the stand-in
/// for RocksDB in the paper's evaluation (Sec. 7.1, Figs. 8-10).
///
/// Same design point as RocksDB for the paper's purposes: key-ordered,
/// write-optimized via an in-memory memtable flushed to sorted runs,
/// read-copy-update only (no in-place updates outside the memtable),
/// larger-than-memory by construction, point reads pay bloom-filter +
/// binary-search + file I/O across levels, and RMW ("merge") is
/// read-then-write and therefore expensive — the behaviours Figs. 8-10
/// contrast FASTER against.
///
/// Structure: active memtable -> immutable memtables -> L0 sorted runs
/// (overlapping, searched newest-first) -> L1 (one merged run). Flush
/// happens inline at rotation; compaction merges all runs when L0 reaches
/// the trigger.
class MiniLsm {
 public:
  explicit MiniLsm(const LsmConfig& config);
  ~MiniLsm();

  MiniLsm(const MiniLsm&) = delete;
  MiniLsm& operator=(const MiniLsm&) = delete;

  /// Blind write of `value` (config.value_size bytes).
  Status Put(uint64_t key, const void* value);
  /// Point lookup into `out` (config.value_size bytes).
  Status Get(uint64_t key, void* out);
  /// Deletes via tombstone.
  Status Delete(uint64_t key);
  /// Read-modify-write (RocksDB "merge" analogue): `update(value, fresh)`
  /// mutates a value_size buffer; fresh means the key was absent.
  Status Rmw(uint64_t key, const std::function<void(void*, bool)>& update);

  struct Stats {
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    uint64_t l0_tables = 0;
    uint64_t l1_tables = 0;
    uint64_t bytes_flushed = 0;
  };
  Stats GetStats() const;

 private:
  class Wal;

  Status PutEntry(uint64_t key, const void* value, bool tombstone);
  /// Rotates + flushes the active memtable if over threshold.
  Status MaybeRotateAndFlush();
  Status FlushMemtable(const std::shared_ptr<MemTable>& mem);
  Status MaybeCompact();
  std::string NextTablePath();

  LsmConfig config_;
  mutable std::shared_mutex tables_mutex_;
  std::shared_ptr<MemTable> active_;
  // Rotated-but-not-yet-flushed memtable; readers consult it so its data
  // stays visible during the window before the SSTable lands in l0_.
  std::shared_ptr<MemTable> imm_;
  std::vector<std::shared_ptr<SsTable>> l0_;  // newest at the back
  std::vector<std::shared_ptr<SsTable>> l1_;
  std::mutex maintenance_mutex_;  // serializes flush/compaction
  std::unique_ptr<Wal> wal_;
  std::array<std::mutex, 64> rmw_stripes_;
  // order: relaxed fetch_add — a unique-id allocator; file creation is
  // serialized by maintenance_mutex_, not by this counter.
  std::atomic<uint64_t> next_file_{0};
  // order: relaxed fetch_add/load — stats counter.
  std::atomic<uint64_t> flushes_{0};
  // order: relaxed fetch_add/load — stats counter.
  std::atomic<uint64_t> compactions_{0};
  // order: relaxed fetch_add/load — stats counter.
  std::atomic<uint64_t> bytes_flushed_{0};
};

}  // namespace minilsm
}  // namespace faster

#endif  // FASTER_BASELINES_MINILSM_DB_H_
