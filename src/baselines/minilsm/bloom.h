#ifndef FASTER_BASELINES_MINILSM_BLOOM_H_
#define FASTER_BASELINES_MINILSM_BLOOM_H_

#include <cstdint>
#include <vector>

namespace faster {
namespace minilsm {

/// A standard Bloom filter over 64-bit key hashes, used by SSTables to
/// skip files that cannot contain a key (as RocksDB does). Uses double
/// hashing (Kirsch-Mitzenmacher) to derive k probe positions from one
/// 64-bit hash.
class BloomFilter {
 public:
  /// Builds an empty filter sized for `expected_keys` at `bits_per_key`
  /// (10 bits/key gives ~1% false positives).
  explicit BloomFilter(uint64_t expected_keys, uint32_t bits_per_key = 10);
  /// Reconstructs a filter from serialized bytes.
  explicit BloomFilter(std::vector<uint8_t> bytes, uint32_t num_probes);

  void Add(uint64_t hash);
  bool MayContain(uint64_t hash) const;

  const std::vector<uint8_t>& bytes() const { return bits_; }
  uint32_t num_probes() const { return num_probes_; }

 private:
  std::vector<uint8_t> bits_;
  uint32_t num_probes_;
};

}  // namespace minilsm
}  // namespace faster

#endif  // FASTER_BASELINES_MINILSM_BLOOM_H_
