#ifndef FASTER_BASELINES_MINILSM_SSTABLE_H_
#define FASTER_BASELINES_MINILSM_SSTABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/minilsm/bloom.h"
#include "baselines/minilsm/memtable.h"
#include "core/status.h"

namespace faster {
namespace minilsm {

/// An immutable sorted run on disk (RocksDB SSTable analogue).
///
/// On-disk layout (fixed-size values, so no per-block index is needed —
/// point lookups binary-search the entry array directly with pread):
///
///   [Header]  magic, count, value_size, bloom_bytes, bloom_probes
///   [Entries] count x { key:8, tombstone:8, value:value_size (8-aligned) }
///   [Bloom]   bloom_bytes of filter bits
///
/// The bloom filter and the key range [min_key, max_key] are held in
/// memory; entry lookups hit the file.
class SsTable {
 public:
  ~SsTable();

  SsTable(const SsTable&) = delete;
  SsTable& operator=(const SsTable&) = delete;

  /// Writes `entries` (sorted by key, deduplicated) to `path`.
  static Status Write(const std::string& path,
                      const std::vector<std::pair<uint64_t, LsmEntry>>& entries,
                      uint32_t value_size,
                      std::unique_ptr<SsTable>* out);

  /// Opens an existing table file (reads header + bloom).
  static Status Open(const std::string& path, std::unique_ptr<SsTable>* out);

  /// Point lookup. Returns kOk (entry filled, possibly a tombstone),
  /// kNotFound, or kIoError.
  Status Get(uint64_t key, LsmEntry* out) const;

  /// Reads entry `i` (for compaction iteration).
  Status ReadEntry(uint64_t i, uint64_t* key, LsmEntry* out) const;

  uint64_t count() const { return count_; }
  uint64_t min_key() const { return min_key_; }
  uint64_t max_key() const { return max_key_; }
  uint64_t file_bytes() const { return file_bytes_; }
  const std::string& path() const { return path_; }

  /// Closes and deletes the underlying file.
  void Destroy();

  /// Unlinks the file but keeps the descriptor open: concurrent readers
  /// holding this table keep working (POSIX semantics); space is freed
  /// when the last reference drops.
  void UnlinkFile();

 private:
  SsTable() = default;

  uint32_t EntrySize() const { return 16 + ((value_size_ + 7) / 8) * 8; }

  std::string path_;
  int fd_ = -1;
  uint64_t count_ = 0;
  uint32_t value_size_ = 0;
  uint64_t entries_offset_ = 0;
  uint64_t min_key_ = 0;
  uint64_t max_key_ = 0;
  uint64_t file_bytes_ = 0;
  std::unique_ptr<BloomFilter> bloom_;
};

}  // namespace minilsm
}  // namespace faster

#endif  // FASTER_BASELINES_MINILSM_SSTABLE_H_
