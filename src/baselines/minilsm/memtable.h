#ifndef FASTER_BASELINES_MINILSM_MEMTABLE_H_
#define FASTER_BASELINES_MINILSM_MEMTABLE_H_

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

namespace faster {
namespace minilsm {

/// One entry in a memtable or SSTable: a value or a tombstone.
struct LsmEntry {
  std::string value;
  bool tombstone = false;
};

/// The in-memory write buffer of MiniLsm (RocksDB's level-0-in-memory
/// component): an ordered map behind a reader-writer lock. Updates are
/// read-copy-update into the map (the paper notes RocksDB supports
/// in-place updates here but cannot exploit them for performance; our
/// stand-in keeps the same ordered-structure cost on the write path).
class MemTable {
 public:
  /// Inserts or overwrites; returns the table's approximate byte size
  /// after the write.
  uint64_t Put(uint64_t key, const void* value, uint32_t value_size);
  /// Inserts a tombstone; returns approximate byte size after.
  uint64_t Delete(uint64_t key);
  /// Looks up `key`. Returns true if present (entry copied to `*out`,
  /// including tombstones — the caller distinguishes).
  bool Get(uint64_t key, LsmEntry* out) const;

  uint64_t ApproximateBytes() const {
    std::shared_lock lock{mutex_};
    return bytes_;
  }
  uint64_t Count() const {
    std::shared_lock lock{mutex_};
    return map_.size();
  }

  /// Snapshots the contents in key order (used by flush).
  std::vector<std::pair<uint64_t, LsmEntry>> Snapshot() const;

 private:
  mutable std::shared_mutex mutex_;
  std::map<uint64_t, LsmEntry> map_;
  uint64_t bytes_ = 0;
};

}  // namespace minilsm
}  // namespace faster

#endif  // FASTER_BASELINES_MINILSM_MEMTABLE_H_
