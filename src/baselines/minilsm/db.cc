#include "baselines/minilsm/db.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <queue>

#include "core/key_hash.h"

namespace faster {
namespace minilsm {

// ---------------------------------------------------------------------------
// Write-ahead log: a single append-only file of fixed-size records,
// truncated whenever everything it covers has been flushed to SSTables.
// ---------------------------------------------------------------------------

class MiniLsm::Wal {
 public:
  Wal(const std::string& path, uint32_t value_size, bool sync)
      : path_{path}, value_size_{value_size}, sync_{sync} {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  }
  ~Wal() {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(uint64_t key, const void* value, bool tombstone) {
    std::vector<uint8_t> buf(16 + value_size_, 0);
    std::memcpy(buf.data(), &key, 8);
    uint64_t tomb = tombstone ? 1 : 0;
    std::memcpy(buf.data() + 8, &tomb, 8);
    if (!tombstone) std::memcpy(buf.data() + 16, value, value_size_);
    std::lock_guard<std::mutex> lock{mutex_};
    if (::write(fd_, buf.data(), buf.size()) !=
        static_cast<ssize_t>(buf.size())) {
      return Status::kIoError;
    }
    if (sync_) ::fsync(fd_);
    return Status::kOk;
  }

  /// Replays every record into `fn(key, value_or_null, tombstone)`.
  void Replay(const std::function<void(uint64_t, const void*, bool)>& fn) {
    ::lseek(fd_, 0, SEEK_SET);
    std::vector<uint8_t> buf(16 + value_size_);
    while (::read(fd_, buf.data(), buf.size()) ==
           static_cast<ssize_t>(buf.size())) {
      uint64_t key, tomb;
      std::memcpy(&key, buf.data(), 8);
      std::memcpy(&tomb, buf.data() + 8, 8);
      fn(key, buf.data() + 16, tomb != 0);
    }
    ::lseek(fd_, 0, SEEK_END);
  }

  void Truncate() {
    std::lock_guard<std::mutex> lock{mutex_};
    if (::ftruncate(fd_, 0) != 0) return;
    ::lseek(fd_, 0, SEEK_SET);
  }

 private:
  std::string path_;
  uint32_t value_size_;
  bool sync_;
  int fd_ = -1;
  std::mutex mutex_;
};

// ---------------------------------------------------------------------------

MiniLsm::MiniLsm(const LsmConfig& config)
    : config_{config}, active_{std::make_shared<MemTable>()} {
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (config_.enable_wal) {
    wal_ = std::make_unique<Wal>(config_.dir + "/wal.log", config_.value_size,
                                 config_.sync_wal);
    // Crash recovery: replay unflushed writes into the memtable.
    wal_->Replay([this](uint64_t key, const void* value, bool tombstone) {
      if (tombstone) {
        active_->Delete(key);
      } else {
        active_->Put(key, value, config_.value_size);
      }
    });
  }
}

MiniLsm::~MiniLsm() = default;

std::string MiniLsm::NextTablePath() {
  return config_.dir + "/sst_" +
         std::to_string(next_file_.fetch_add(1, std::memory_order_relaxed)) +
         ".tbl";
}

Status MiniLsm::PutEntry(uint64_t key, const void* value, bool tombstone) {
  if (wal_ != nullptr) {
    Status s = wal_->Append(key, value, tombstone);
    if (s != Status::kOk) return s;
  }
  uint64_t bytes;
  {
    std::shared_lock lock{tables_mutex_};
    bytes = tombstone ? active_->Delete(key)
                      : active_->Put(key, value, config_.value_size);
  }
  if (bytes >= config_.memtable_bytes) {
    return MaybeRotateAndFlush();
  }
  return Status::kOk;
}

Status MiniLsm::Put(uint64_t key, const void* value) {
  return PutEntry(key, value, /*tombstone=*/false);
}

Status MiniLsm::Delete(uint64_t key) {
  return PutEntry(key, nullptr, /*tombstone=*/true);
}

Status MiniLsm::Get(uint64_t key, void* out) {
  // Memtable, then the rotating (immutable) memtable, then L0
  // newest-first, then L1.
  std::shared_ptr<MemTable> mem, imm;
  std::vector<std::shared_ptr<SsTable>> l0, l1;
  {
    std::shared_lock lock{tables_mutex_};
    mem = active_;
    imm = imm_;
    l0 = l0_;
    l1 = l1_;
  }
  LsmEntry entry;
  if (mem->Get(key, &entry) || (imm != nullptr && imm->Get(key, &entry))) {
    if (entry.tombstone) return Status::kNotFound;
    std::memcpy(out, entry.value.data(), config_.value_size);
    return Status::kOk;
  }
  for (auto it = l0.rbegin(); it != l0.rend(); ++it) {
    Status s = (*it)->Get(key, &entry);
    if (s == Status::kOk) {
      if (entry.tombstone) return Status::kNotFound;
      std::memcpy(out, entry.value.data(), config_.value_size);
      return Status::kOk;
    }
    if (s == Status::kIoError) return s;
  }
  for (const auto& table : l1) {
    Status s = table->Get(key, &entry);
    if (s == Status::kOk) {
      if (entry.tombstone) return Status::kNotFound;
      std::memcpy(out, entry.value.data(), config_.value_size);
      return Status::kOk;
    }
    if (s == Status::kIoError) return s;
  }
  return Status::kNotFound;
}

Status MiniLsm::Rmw(uint64_t key,
                    const std::function<void(void*, bool)>& update) {
  // RocksDB's merge is read-then-write; a striped lock provides the
  // per-key atomicity the benchmark semantics require.
  std::lock_guard<std::mutex> stripe{
      rmw_stripes_[Mix64(key) % rmw_stripes_.size()]};
  std::vector<uint8_t> buf(config_.value_size, 0);
  Status s = Get(key, buf.data());
  if (s == Status::kIoError) return s;
  update(buf.data(), /*fresh=*/s == Status::kNotFound);
  return Put(key, buf.data());
}

Status MiniLsm::MaybeRotateAndFlush() {
  std::lock_guard<std::mutex> maintenance{maintenance_mutex_};
  std::shared_ptr<MemTable> full;
  {
    std::unique_lock lock{tables_mutex_};
    if (active_->ApproximateBytes() < config_.memtable_bytes) {
      return Status::kOk;  // another thread already rotated
    }
    full = active_;
    active_ = std::make_shared<MemTable>();
    // Readers keep finding the rotated data here until FlushMemtable has
    // installed the SSTable in l0_ (otherwise writes would vanish for the
    // duration of the flush).
    imm_ = full;
  }
  Status s = FlushMemtable(full);
  if (s != Status::kOk) return s;
  if (wal_ != nullptr) wal_->Truncate();
  return MaybeCompact();
}

Status MiniLsm::FlushMemtable(const std::shared_ptr<MemTable>& mem) {
  auto entries = mem->Snapshot();
  if (entries.empty()) {
    std::unique_lock lock{tables_mutex_};
    if (imm_ == mem) imm_.reset();
    return Status::kOk;
  }
  std::unique_ptr<SsTable> table;
  Status s = SsTable::Write(NextTablePath(), entries, config_.value_size,
                            &table);
  if (s != Status::kOk) return s;  // imm_ stays readable on failure
  flushes_.fetch_add(1, std::memory_order_relaxed);
  bytes_flushed_.fetch_add(table->file_bytes(), std::memory_order_relaxed);
  std::unique_lock lock{tables_mutex_};
  l0_.push_back(std::move(table));
  if (imm_ == mem) imm_.reset();
  return Status::kOk;
}

Status MiniLsm::MaybeCompact() {
  // Caller holds maintenance_mutex_.
  std::vector<std::shared_ptr<SsTable>> l0, l1;
  {
    std::shared_lock lock{tables_mutex_};
    if (l0_.size() < config_.l0_compaction_trigger) return Status::kOk;
    l0 = l0_;
    l1 = l1_;
  }
  // K-way merge of all runs, newest run wins per key; tombstones can be
  // dropped because the result is the bottom level.
  struct Cursor {
    SsTable* table;
    uint64_t index = 0;
    uint64_t key = 0;
    LsmEntry entry;
    int priority;  // higher = newer
    bool Load() {
      if (index >= table->count()) return false;
      return table->ReadEntry(index, &key, &entry) == Status::kOk;
    }
  };
  std::vector<Cursor> cursors;
  int priority = 0;
  for (const auto& t : l1) cursors.push_back({t.get(), 0, 0, {}, priority++});
  for (const auto& t : l0) cursors.push_back({t.get(), 0, 0, {}, priority++});
  auto cmp = [](const Cursor* a, const Cursor* b) {
    if (a->key != b->key) return a->key > b->key;   // min-heap by key
    return a->priority < b->priority;               // newest first
  };
  std::priority_queue<Cursor*, std::vector<Cursor*>, decltype(cmp)> heap{cmp};
  for (auto& c : cursors) {
    if (c.Load()) heap.push(&c);
  }
  std::vector<std::pair<uint64_t, LsmEntry>> merged;
  uint64_t last_key = 0;
  bool have_last = false;
  while (!heap.empty()) {
    Cursor* c = heap.top();
    heap.pop();
    if (!have_last || c->key != last_key) {
      // Newest version of this key (heap orders newer runs first).
      if (!c->entry.tombstone) merged.emplace_back(c->key, c->entry);
      last_key = c->key;
      have_last = true;
    }
    ++c->index;
    if (c->Load()) heap.push(c);
  }
  std::unique_ptr<SsTable> big;
  if (!merged.empty()) {
    Status s = SsTable::Write(NextTablePath(), merged, config_.value_size,
                              &big);
    if (s != Status::kOk) return s;
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
  {
    std::unique_lock lock{tables_mutex_};
    // Remove exactly the runs we merged (new L0 runs may have appeared).
    l0_.erase(l0_.begin(), l0_.begin() + l0.size());
    l1_.clear();
    if (big != nullptr) l1_.push_back(std::move(big));
  }
  // Unlink merged inputs; readers that still hold a shared_ptr keep their
  // open descriptor (POSIX), and the space is reclaimed when the last
  // reference drops and the destructor closes the fd.
  for (const auto& t : l0) t->UnlinkFile();
  for (const auto& t : l1) t->UnlinkFile();
  return Status::kOk;
}

MiniLsm::Stats MiniLsm::GetStats() const {
  Stats s;
  s.flushes = flushes_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  s.bytes_flushed = bytes_flushed_.load(std::memory_order_relaxed);
  std::shared_lock lock{tables_mutex_};
  s.l0_tables = l0_.size();
  s.l1_tables = l1_.size();
  return s;
}

}  // namespace minilsm
}  // namespace faster
