#ifndef FASTER_DEVICE_URING_DEVICE_H_
#define FASTER_DEVICE_URING_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "core/thread.h"
#include "device/device.h"
#include "device/io_queue_pair.h"

/// Linux io_uring backend for FileDevice (IoPathMode::kUring; DESIGN.md
/// §13). Each submitting thread owns a kernel ring: submission fills SQEs
/// and makes one io_uring_enter syscall per batch (no wakeup, no pool
/// thread), and completions are reaped in pure userspace by polling the
/// CQ ring — the same no-handoff protocol as the software IoQueuePair,
/// with the kernel as the executor.
///
/// Deliberately liburing-free: raw io_uring_setup/io_uring_enter syscalls
/// against <linux/io_uring.h>, so the build grows no dependency. Compiled
/// to a stub (Supported() == false) when the header is unavailable
/// (CMake flag FASTER_IO_URING); FileDevice then degrades kUring to
/// kPolling. Runtime availability is probed too — sandboxes and old
/// kernels fail the probe (ENOSYS/EPERM) and degrade the same way.

namespace faster {

class UringIo {
 public:
  /// Probes the kernel once (io_uring_setup + io_uring_enter on a scratch
  /// ring). False when the build is a stub or the syscalls are
  /// unavailable/blocked.
  static bool Supported();

  /// `fd` is the target file; `inline_exec` executes an op synchronously
  /// when a ring has no free slot (backpressure never blocks and never
  /// drops a callback).
  UringIo(int fd, IoOpExecutor& inline_exec, DeviceObsStats* dev_stats);
  ~UringIo();

  UringIo(const UringIo&) = delete;
  UringIo& operator=(const UringIo&) = delete;

  /// Submits `ops[0..n)` from the calling thread's ring as one
  /// io_uring_enter. Ops that cannot get a ring slot are executed and
  /// completed inline on the calling thread.
  void Submit(const IoOp* ops, uint32_t n);

  /// Reaps the calling thread's completion ring, invoking callbacks on
  /// this thread. Returns callbacks delivered.
  uint32_t Poll();

  /// Reaps every thread's ring (kernel completions outlive their
  /// submitting thread; any thread may deliver them).
  uint32_t PollAll();

  /// Blocks (polling) until every submitted op has completed.
  void Drain();

  bool AllIdle() const;

  void RegisterStats(obs::StatRegistry& registry,
                     const std::string& prefix) const {
    stats_.Register(registry, prefix);
  }

 private:
  struct Ring;

  Ring* RingFor(uint32_t tid, bool create);
  uint32_t Reap(Ring& ring);
  /// Computes final status/bytes for one reaped CQE, synchronously
  /// completing short transfers via inline_exec_. `counted` reports
  /// whether inline_exec_ already recorded device stats for this op.
  Status Finish(const IoOp& op, int res, uint32_t* bytes, bool* counted);
  void Deliver(const IoOp& op, Status status, uint32_t bytes);
  void InlineFallback(const IoOp& op);

  int fd_ = -1;
  IoOpExecutor& inline_exec_;
  DeviceObsStats* dev_stats_;
  // order: release store publishes a lazily created ring (CAS, acq_rel);
  // acquire loads let foreign reapers observe a fully constructed ring.
  std::atomic<Ring*> rings_[Thread::kMaxThreads] = {};
  mutable IoPollStats stats_;
};

}  // namespace faster

#endif  // FASTER_DEVICE_URING_DEVICE_H_
