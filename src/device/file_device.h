#ifndef FASTER_DEVICE_FILE_DEVICE_H_
#define FASTER_DEVICE_FILE_DEVICE_H_

#include <atomic>
#include <memory>
#include <string>

#include "device/device.h"
#include "device/io_thread_pool.h"

namespace faster {

/// Log device backed by a POSIX file, with asynchronous reads/writes
/// executed on an I/O thread pool (pread/pwrite at absolute offsets).
/// The paper points FASTER at a file on an NVMe SSD; this is the same
/// arrangement on whatever filesystem hosts `path`.
class FileDevice : public IDevice {
 public:
  /// Opens (creating if needed) `path`. `num_io_threads` pool threads
  /// service requests.
  FileDevice(const std::string& path, uint32_t num_io_threads = 2);
  ~FileDevice() override;

  Status WriteAsync(const void* src, uint64_t offset, uint32_t len,
                    IoCallback callback, void* context) override;
  Status ReadAsync(uint64_t offset, void* dst, uint32_t len,
                   IoCallback callback, void* context) override;
  Status ReadBatchAsync(const IoReadRequest* requests, uint32_t n) override;
  void Drain() override;
  uint64_t bytes_written() const override {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  const std::string& path() const { return path_; }

  void RegisterStats(obs::StatRegistry& registry,
                     const std::string& prefix) const override {
    obs_stats_.Register(registry, prefix);
    pool_->RegisterStats(registry, prefix + ".pool");
  }

 private:
  IoJob MakeReadJob(uint64_t offset, void* dst, uint32_t len,
                    IoCallback callback, void* context, uint64_t t0);

  std::string path_;
  int fd_;
  std::unique_ptr<IoThreadPool> pool_;
  // order: relaxed fetch_add/load — a monotonically increasing byte
  // counter for stats and tests; no data is published through it.
  std::atomic<uint64_t> bytes_written_{0};
  mutable DeviceObsStats obs_stats_;
};

}  // namespace faster

#endif  // FASTER_DEVICE_FILE_DEVICE_H_
