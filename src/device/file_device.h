#ifndef FASTER_DEVICE_FILE_DEVICE_H_
#define FASTER_DEVICE_FILE_DEVICE_H_

#include <atomic>
#include <memory>
#include <string>

#include "device/device.h"
#include "device/io_queue_pair.h"
#include "device/io_thread_pool.h"
#include "device/uring_device.h"

namespace faster {

/// Log device backed by a POSIX file (pread/pwrite at absolute offsets).
/// The paper points FASTER at a file on an NVMe SSD; this is the same
/// arrangement on whatever filesystem hosts `path`.
///
/// `mode` selects the I/O path (DESIGN.md §13): kThreadPool executes on
/// an IoThreadPool (callbacks on pool threads); kPolling queues on the
/// calling thread's IoQueuePair, executed when a thread polls; kUring
/// submits to a per-thread Linux io_uring and reaps completions in
/// userspace — feature-detected at build (FASTER_IO_URING) and probed at
/// runtime, degrading to kPolling when unavailable (check mode()).
class FileDevice : public IDevice, private IoOpExecutor {
 public:
  /// Opens (creating if needed) `path`. `num_io_threads` pool threads
  /// service requests in kThreadPool mode (unused otherwise).
  FileDevice(const std::string& path, uint32_t num_io_threads = 2,
             IoPathMode mode = IoPathMode::kThreadPool);
  ~FileDevice() override;

  Status WriteAsync(const void* src, uint64_t offset, uint32_t len,
                    IoCallback callback, void* context) override;
  Status ReadAsync(uint64_t offset, void* dst, uint32_t len,
                   IoCallback callback, void* context) override;
  Status ReadBatchAsync(const IoReadRequest* requests, uint32_t n,
                        uint32_t* accepted = nullptr) override;
  uint32_t Poll() override;
  uint32_t PollAll() override;
  void Drain() override;
  uint64_t bytes_written() const override {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  const std::string& path() const { return path_; }

  /// The effective I/O path after feature detection (a kUring request
  /// reports kPolling when io_uring is unavailable).
  IoPathMode mode() const { return mode_; }

  void RegisterStats(obs::StatRegistry& registry,
                     const std::string& prefix) const override {
    obs_stats_.Register(registry, prefix);
    if (pool_ != nullptr) pool_->RegisterStats(registry, prefix + ".pool");
    if (queues_ != nullptr) queues_->RegisterStats(registry, prefix + ".io");
    if (uring_ != nullptr) uring_->RegisterStats(registry, prefix + ".io");
  }

 private:
  IoJob MakeReadJob(uint64_t offset, void* dst, uint32_t len,
                    IoCallback callback, void* context, uint64_t t0);

  /// IoOpExecutor (polling path + io_uring inline fallback): runs one op
  /// synchronously via the pread/pwrite loop.
  Status ExecuteOp(const IoOp& op, uint32_t* bytes) override;

  std::string path_;
  int fd_;
  IoPathMode mode_;
  std::unique_ptr<IoThreadPool> pool_;      // kThreadPool only
  std::unique_ptr<IoQueuePairSet> queues_;  // kPolling only
  std::unique_ptr<UringIo> uring_;          // kUring only
  // order: relaxed fetch_add/load — a monotonically increasing byte
  // counter for stats and tests; no data is published through it.
  std::atomic<uint64_t> bytes_written_{0};
  mutable DeviceObsStats obs_stats_;
};

}  // namespace faster

#endif  // FASTER_DEVICE_FILE_DEVICE_H_
