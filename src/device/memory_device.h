#ifndef FASTER_DEVICE_MEMORY_DEVICE_H_
#define FASTER_DEVICE_MEMORY_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "device/device.h"
#include "device/io_queue_pair.h"
#include "device/io_thread_pool.h"

namespace faster {

/// In-RAM device: stores flushed pages in heap segments keyed by offset.
///
/// Substitution note (see DESIGN.md §2): the paper's evaluation ran the log
/// on a FusionIO NVMe SSD. In this container we cannot reproduce that
/// hardware; `MemoryDevice` preserves the entire asynchronous software path
/// (request contexts, pending queues, completion callbacks, thread-pool
/// hand-off) while giving deterministic I/O latency, so larger-than-memory
/// experiments measure FASTER's code paths rather than container disk
/// noise. `simulated_latency_us` can add per-operation latency to model a
/// slower device.
///
/// `mode` selects the I/O path (DESIGN.md §13): kThreadPool hands
/// operations to an IoThreadPool (callbacks on pool threads); kPolling
/// queues them on the calling thread's IoQueuePair and executes them when
/// a thread polls — note that simulated latency is then paid inline by the
/// polling thread. kUring has no meaning for an in-RAM device and is
/// treated as kPolling.
class MemoryDevice : public IDevice, private IoOpExecutor {
 public:
  explicit MemoryDevice(uint32_t num_io_threads = 2,
                        uint32_t simulated_latency_us = 0,
                        IoPathMode mode = IoPathMode::kThreadPool);
  ~MemoryDevice() override;

  Status WriteAsync(const void* src, uint64_t offset, uint32_t len,
                    IoCallback callback, void* context) override;
  Status ReadAsync(uint64_t offset, void* dst, uint32_t len,
                   IoCallback callback, void* context) override;
  Status ReadBatchAsync(const IoReadRequest* requests, uint32_t n,
                        uint32_t* accepted = nullptr) override;
  uint32_t Poll() override;
  uint32_t PollAll() override;
  void Drain() override;
  uint64_t bytes_written() const override {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  /// The effective I/O path (kUring degrades to kPolling here).
  IoPathMode mode() const { return mode_; }

  /// Synchronous read used by recovery and the log-scan iterator.
  Status ReadSync(uint64_t offset, void* dst, uint32_t len);

  void RegisterStats(obs::StatRegistry& registry,
                     const std::string& prefix) const override {
    obs_stats_.Register(registry, prefix);
    if (pool_ != nullptr) pool_->RegisterStats(registry, prefix + ".pool");
    if (queues_ != nullptr) queues_->RegisterStats(registry, prefix + ".io");
  }

 private:
  static constexpr uint64_t kSegmentBits = 22;  // 4 MB segments
  static constexpr uint64_t kSegmentSize = uint64_t{1} << kSegmentBits;

  uint8_t* SegmentFor(uint64_t offset, bool create);
  IoJob MakeReadJob(uint64_t offset, void* dst, uint32_t len,
                    IoCallback callback, void* context, uint64_t t0);
  Status WriteSync(const void* src, uint64_t offset, uint32_t len);

  /// IoOpExecutor (polling path): runs one queued op synchronously.
  Status ExecuteOp(const IoOp& op, uint32_t* bytes) override;

  IoPathMode mode_;
  std::unique_ptr<IoThreadPool> pool_;     // kThreadPool only
  std::unique_ptr<IoQueuePairSet> queues_; // kPolling only
  uint32_t latency_us_;
  std::mutex segments_mutex_;
  std::vector<std::unique_ptr<uint8_t[]>> segments_;
  // order: relaxed fetch_add/load — a monotonically increasing byte
  // counter for stats and tests; no data is published through it.
  std::atomic<uint64_t> bytes_written_{0};
  mutable DeviceObsStats obs_stats_;
};

/// Device that discards writes and fails reads; models "no storage" for
/// pure in-memory configurations where the log never spills.
class NullDevice : public IDevice {
 public:
  Status WriteAsync(const void* /*src*/, uint64_t /*offset*/, uint32_t len,
                    IoCallback callback, void* context) override {
    bytes_written_.fetch_add(len, std::memory_order_relaxed);
    callback(context, Status::kOk, len);
    return Status::kOk;
  }
  Status ReadAsync(uint64_t /*offset*/, void* /*dst*/, uint32_t /*len*/,
                   IoCallback callback, void* context) override {
    callback(context, Status::kIoError, 0);
    return Status::kOk;
  }
  void Drain() override {}
  uint64_t bytes_written() const override {
    return bytes_written_.load(std::memory_order_relaxed);
  }

 private:
  // order: relaxed fetch_add/load — a monotonically increasing byte
  // counter for stats and tests; no data is published through it.
  std::atomic<uint64_t> bytes_written_{0};
};

}  // namespace faster

#endif  // FASTER_DEVICE_MEMORY_DEVICE_H_
