#ifndef FASTER_DEVICE_DEVICE_H_
#define FASTER_DEVICE_DEVICE_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "obs/stats.h"

namespace faster {

/// Completion callback for asynchronous device I/O. Invoked exactly once
/// per issued operation, possibly on an internal I/O thread; `context` is
/// the caller's opaque pointer, `result` the outcome, `bytes` the number of
/// bytes transferred.
using IoCallback = void (*)(void* context, Status result, uint32_t bytes);

/// One read in a coalesced batch submission (see ReadBatchAsync). Plain
/// aggregate so callers can build an array on the stack.
struct IoReadRequest {
  uint64_t offset = 0;
  void* dst = nullptr;
  uint32_t len = 0;
  IoCallback callback = nullptr;
  void* context = nullptr;
};

/// How a device executes and completes asynchronous I/O (DESIGN.md §13).
enum class IoPathMode : uint8_t {
  /// Portable fallback: an IoThreadPool executes operations and invokes
  /// callbacks on its own threads (cross-thread completion handoff).
  kThreadPool,
  /// Completion polling: submissions go to the calling thread's
  /// IoQueuePair; operations execute and their callbacks fire on whichever
  /// thread polls (normally the submitter, via IDevice::Poll()). No
  /// internal threads, no wakeups.
  kPolling,
  /// Linux io_uring (FileDevice only): per-thread kernel rings, reaped by
  /// polling the completion queue in userspace. Falls back to kPolling
  /// when the kernel or build lacks io_uring support.
  kUring,
};

/// Abstract block device backing the HybridLog's stable region (Sec. 5.2).
///
/// The log issues sector-aligned page flushes (write) and record-sized
/// random reads (read). Both are asynchronous: the call returns after
/// enqueueing and the callback fires on completion. Implementations:
/// `FileDevice` (POSIX file + I/O thread pool), `MemoryDevice` (in-RAM,
/// deterministic latency, used for tests and scaled-down benchmarks), and
/// `NullDevice` (discards writes, for pure in-memory experiments).
class IDevice {
 public:
  virtual ~IDevice() = default;

  /// Asynchronously writes `[src, src+len)` to device offset `offset`.
  virtual Status WriteAsync(const void* src, uint64_t offset, uint32_t len,
                            IoCallback callback, void* context) = 0;

  /// Asynchronously reads `len` bytes from device offset `offset` into
  /// `dst` (caller-owned, must outlive the operation).
  virtual Status ReadAsync(uint64_t offset, void* dst, uint32_t len,
                           IoCallback callback, void* context) = 0;

  /// Issues `n` reads as one group. Returns kOk if every request was
  /// accepted; otherwise the status of the first rejected request, with
  /// `*accepted` (when non-null) set to its index. Requests `[0,
  /// *accepted)` were accepted and their callbacks fire exactly once, as
  /// with ReadAsync; requests `[*accepted, n)` were NOT issued and never
  /// fire — the caller owns completing or failing them. The default stops
  /// at the first rejection so the accepted set is always a prefix;
  /// pool-backed devices override this to enqueue the whole group under a
  /// single lock acquisition.
  virtual Status ReadBatchAsync(const IoReadRequest* requests, uint32_t n,
                                uint32_t* accepted = nullptr) {
    for (uint32_t i = 0; i < n; ++i) {
      const IoReadRequest& r = requests[i];
      Status s = ReadAsync(r.offset, r.dst, r.len, r.callback, r.context);
      if (s != Status::kOk) {
        if (accepted != nullptr) *accepted = i;
        return s;
      }
    }
    if (accepted != nullptr) *accepted = n;
    return Status::kOk;
  }

  /// Completion polling (IoPathMode::kPolling / kUring): executes and/or
  /// reaps the calling thread's queued operations, invoking their
  /// callbacks on this thread. Returns the number of callbacks delivered.
  /// Devices on the thread-pool path complete I/O on their own threads
  /// and return 0 here.
  virtual uint32_t Poll() { return 0; }

  /// Poll(), plus steals other threads' queued work — used by stall loops
  /// (e.g. waiting on a flush another thread submitted) and Drain so
  /// progress never depends on the submitting thread polling again.
  virtual uint32_t PollAll() { return Poll(); }

  /// Blocks until every operation issued before this call has completed.
  /// On polling paths this executes the work on the calling thread.
  virtual void Drain() = 0;

  /// Total bytes ever written (monotonic; used to measure log growth).
  virtual uint64_t bytes_written() const = 0;

  /// Registers this device's metrics (if any) under `prefix.` names.
  /// Compiled out unless FASTER_STATS; the default exposes nothing.
  virtual void RegisterStats(obs::StatRegistry& /*registry*/,
                             const std::string& /*prefix*/) const {}
};

/// Metrics shared by the concrete async devices: operation counts and
/// submit-to-completion latency (includes I/O pool queueing time).
struct DeviceObsStats {
  obs::StatCounter reads;
  obs::StatCounter writes;
  obs::StatHistogram read_ns;
  obs::StatHistogram write_ns;

  void Register(obs::StatRegistry& registry, const std::string& prefix) const {
    registry.Add(prefix + ".reads", &reads);
    registry.Add(prefix + ".writes", &writes);
    registry.Add(prefix + ".read_ns", &read_ns);
    registry.Add(prefix + ".write_ns", &write_ns);
  }
};

}  // namespace faster

#endif  // FASTER_DEVICE_DEVICE_H_
