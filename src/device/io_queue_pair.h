#ifndef FASTER_DEVICE_IO_QUEUE_PAIR_H_
#define FASTER_DEVICE_IO_QUEUE_PAIR_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "core/thread.h"
#include "device/device.h"
#include "obs/stats.h"

/// Per-thread I/O submission/completion queues for the completion-polling
/// path (DESIGN.md §13).
///
/// The classic path hands every I/O to an IoThreadPool (mutex + condvar
/// enqueue, execution on a pool thread, completion pushed back across
/// threads) — the stall-and-switch tax Lomet & Wang identify as the
/// dominant residual cost in FASTER-style stores. The polling path removes
/// both hops: each submitting thread owns an `IoQueuePair` (a lock-free
/// SPSC submission ring plus an MPSC completion ring), submissions are a
/// ring push with no wakeup, and the *submitting* thread executes and
/// reaps its own operations when it polls (`IDevice::Poll()`, driven from
/// `FasterKv::CompletePending` and the HybridLog stall loops). Foreign
/// threads may steal a pair's queued work (`PollAll`/`Drain`) so progress
/// never depends on the owner polling again — consumers serialize through
/// a per-pair flag; producers never block.
///
/// The same descriptors feed the io_uring backend (uring_device.h), where
/// the kernel's own SQ/CQ replace the software rings.

namespace faster {

/// One queued device operation (submission-ring descriptor).
struct IoOp {
  enum class Kind : uint8_t { kRead, kWrite };
  Kind kind = Kind::kRead;
  uint64_t offset = 0;
  void* buf = nullptr;  // destination (read) or source (write)
  uint32_t len = 0;
  IoCallback callback = nullptr;
  void* context = nullptr;
  /// Submit-time stamp + ambient trace, captured by Submit (stats builds
  /// only): the executor emits the io_queue span / slowlog stage from it.
  uint64_t submit_ns = 0;
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};

/// One completed operation (completion-ring record).
struct IoCompletion {
  IoCallback callback = nullptr;
  void* context = nullptr;
  Status status = Status::kOk;
  uint32_t bytes = 0;
  uint64_t submit_ns = 0;      // from the IoOp
  uint64_t exec_start_ns = 0;  // when an executor picked the op up
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};

/// Bounded lock-free single-producer/single-consumer ring. The producer is
/// always the pair's owning thread; "single consumer" is enforced outside
/// (IoQueuePair::TryLockConsumer), which lets a foreign thread drain an
/// abandoned queue without the ring itself paying for multi-consumer CAS.
template <typename T, uint32_t kCapacity>
class SpscRing {
  static_assert((kCapacity & (kCapacity - 1)) == 0,
                "ring capacity must be a power of two");

 public:
  /// Producer side. Returns false when the ring is full (backpressure —
  /// the caller executes inline instead of blocking).
  bool TryPush(const T& v) {
    uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) >= kCapacity) {
      return false;
    }
    slots_[t & (kCapacity - 1)] = v;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side (serialized externally). Returns false when empty.
  bool TryPop(T* out) {
    uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) {
      return false;
    }
    *out = slots_[h & (kCapacity - 1)];
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  // order: release store in TryPush publishes the slot write; acquire load
  // in TryPop pairs with it. Relaxed self-reads on the producer side.
  alignas(64) std::atomic<uint64_t> tail_{0};
  // order: release store in TryPop returns the slot to the producer;
  // acquire load in TryPush pairs with it (slot reuse after consumption).
  alignas(64) std::atomic<uint64_t> head_{0};
  T slots_[kCapacity];
};

/// Bounded multi-producer/single-consumer ring (Vyukov-style sequence
/// tags). Producers claim slots with a CAS on the tail and publish each
/// slot independently, so a slow producer never blocks the consumer on
/// slots committed after its claim.
template <typename T, uint32_t kCapacity>
class MpscRing {
  static_assert((kCapacity & (kCapacity - 1)) == 0,
                "ring capacity must be a power of two");

 public:
  MpscRing() {
    for (uint32_t i = 0; i < kCapacity; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  /// Any thread. Returns false when the ring is full.
  bool TryPush(const T& v) {
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & (kCapacity - 1)];
      uint64_t seq = s.seq.load(std::memory_order_acquire);
      int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          s.value = v;
          s.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full: an uncommitted wrap-around claim is ahead
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer side (serialized externally). Returns false when empty.
  bool TryPop(T* out) {
    uint64_t pos = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[pos & (kCapacity - 1)];
    uint64_t seq = s.seq.load(std::memory_order_acquire);
    if (static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1) < 0) {
      return false;  // slot not committed yet
    }
    *out = s.value;
    s.seq.store(pos + kCapacity, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  bool Empty() const {
    uint64_t pos = head_.load(std::memory_order_relaxed);
    const Slot& s = slots_[pos & (kCapacity - 1)];
    return static_cast<int64_t>(s.seq.load(std::memory_order_acquire)) -
               static_cast<int64_t>(pos + 1) <
           0;
  }

 private:
  struct Slot {
    // order: release store of pos+1 publishes `value` to the consumer
    // (acquire load in TryPop); release store of pos+kCapacity returns the
    // slot to producers (acquire load in TryPush).
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  // order: relaxed CAS claims a slot index; publication happens through
  // the claimed slot's `seq` tag, never through the tail itself.
  alignas(64) std::atomic<uint64_t> tail_{0};
  // order: relaxed; single consumer at a time (external exclusion flag
  // provides the cross-consumer happens-before).
  alignas(64) std::atomic<uint64_t> head_{0};
  Slot slots_[kCapacity];
};

/// One thread's submission/completion queue pair.
class IoQueuePair {
 public:
  static constexpr uint32_t kSubmissionEntries = 256;
  static constexpr uint32_t kCompletionEntries = 512;

  SpscRing<IoOp, kSubmissionEntries> sq;
  MpscRing<IoCompletion, kCompletionEntries> cq;

  /// Consumer exclusion: the owner polling its own pair and a foreign
  /// drainer stealing abandoned work must not consume concurrently.
  bool TryLockConsumer() {
    bool expected = false;
    return consuming_.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire);
  }
  void UnlockConsumer() { consuming_.store(false, std::memory_order_release); }

 private:
  // order: acq_rel CAS takes the consumer role (observing the previous
  // consumer's ring positions; acquire on CAS failure is enough to see
  // who holds it); release store hands it back.
  std::atomic<bool> consuming_{false};
};

/// How a polled device executes one operation synchronously. Implemented
/// privately by FileDevice (pread/pwrite loops) and MemoryDevice (segment
/// memcpy); also the inline-fallback executor for the io_uring backend.
class IoOpExecutor {
 public:
  virtual ~IoOpExecutor() = default;
  /// Executes `op` to completion on the calling thread; `*bytes` receives
  /// the bytes transferred.
  virtual Status ExecuteOp(const IoOp& op, uint32_t* bytes) = 0;
};

/// Polling-path metrics ("io.poll_*" family; compiled out unless
/// FASTER_STATS like every obs counter).
struct IoPollStats {
  obs::StatCounter submits;           // ops accepted into a submission ring
  obs::StatCounter poll_calls;        // Poll()/PollAll() invocations
  obs::StatCounter poll_empty;        // polls that found nothing
  obs::StatCounter poll_completions;  // callbacks delivered by polling
  obs::StatCounter sq_full_inline;    // backpressure: executed at submit
  obs::StatCounter cq_full_inline;    // completion delivered sans CQ hop
  obs::StatCounter foreign_execs;     // ops executed by a stealing thread

  void Register(obs::StatRegistry& registry, const std::string& prefix) const {
    registry.Add(prefix + ".poll_submits", &submits);
    registry.Add(prefix + ".poll_calls", &poll_calls);
    registry.Add(prefix + ".poll_empty", &poll_empty);
    registry.Add(prefix + ".poll_completions", &poll_completions);
    registry.Add(prefix + ".poll_sq_full_inline", &sq_full_inline);
    registry.Add(prefix + ".poll_cq_full_inline", &cq_full_inline);
    registry.Add(prefix + ".poll_foreign_execs", &foreign_execs);
  }
};

/// The set of per-thread queue pairs behind one device, plus the polling
/// protocol (see the file comment and DESIGN.md §13 for the memory-order
/// contract walk-through).
class IoQueuePairSet {
 public:
  IoQueuePairSet() = default;
  ~IoQueuePairSet();

  IoQueuePairSet(const IoQueuePairSet&) = delete;
  IoQueuePairSet& operator=(const IoQueuePairSet&) = delete;

  /// Queues `op` on the calling thread's submission ring; stamps the
  /// submit time / ambient trace (stats builds). If the ring is full the
  /// op is executed and completed inline — submission never blocks and
  /// the callback still fires exactly once.
  void Submit(IoOp op, IoOpExecutor& exec);

  /// Runs queued submissions and delivers queued completions for the
  /// calling thread's pair. Returns callbacks delivered.
  uint32_t Poll(IoOpExecutor& exec);

  /// Poll(), then steals every other pair's queued work (abandoned
  /// sessions, cross-thread flush waits). Returns callbacks delivered.
  uint32_t PollAll(IoOpExecutor& exec);

  /// Blocks (polling) until every submitted op has completed.
  void Drain(IoOpExecutor& exec);

  /// True when no submitted op is outstanding.
  bool AllIdle() const {
    return in_flight_.load(std::memory_order_acquire) == 0;
  }

  const IoPollStats& stats() const { return stats_; }
  void RegisterStats(obs::StatRegistry& registry,
                     const std::string& prefix) const {
    stats_.Register(registry, prefix);
  }

 private:
  IoQueuePair* PairFor(uint32_t tid, bool create);
  /// Executes a pair's submission ring and delivers its completion ring
  /// under the pair's consumer lock. Returns callbacks delivered.
  uint32_t RunPair(IoQueuePair& pair, IoOpExecutor& exec, bool foreign);
  /// Executes one op and enqueues its completion (or delivers it inline:
  /// submit-side backpressure, or a full completion ring).
  void ExecuteOne(IoQueuePair& pair, const IoOp& op, IoOpExecutor& exec,
                  bool foreign, bool deliver_inline);
  /// Invokes one completion callback with slowlog/span stage attribution.
  void Deliver(const IoCompletion& c);

  // order: release store publishes a lazily created pair (CAS, acq_rel);
  // acquire loads let pollers observe a fully constructed pair.
  std::atomic<IoQueuePair*> pairs_[Thread::kMaxThreads] = {};
  // order: relaxed increment before the ring push (the push's release
  // publishes the op); release decrement after the callback returns pairs
  // with the acquire load in AllIdle — a zero count implies every
  // callback's effects are visible to the drainer.
  std::atomic<uint64_t> in_flight_{0};
  mutable IoPollStats stats_;
};

}  // namespace faster

#endif  // FASTER_DEVICE_IO_QUEUE_PAIR_H_
