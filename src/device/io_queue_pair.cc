#include "device/io_queue_pair.h"

#include <thread>

#include "obs/slowlog.h"
#include "obs/span.h"

namespace faster {

IoQueuePairSet::~IoQueuePairSet() {
  for (auto& slot : pairs_) {
    delete slot.load(std::memory_order_acquire);
  }
}

IoQueuePair* IoQueuePairSet::PairFor(uint32_t tid, bool create) {
  IoQueuePair* pair = pairs_[tid].load(std::memory_order_acquire);
  if (pair == nullptr && create) {
    auto* fresh = new IoQueuePair();
    // Only `tid`'s own thread creates its pair (Submit), but a CAS keeps
    // this safe even if thread-id recycling ever overlaps a create.
    if (pairs_[tid].compare_exchange_strong(pair, fresh,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      pair = fresh;
    } else {
      delete fresh;
    }
  }
  return pair;
}

void IoQueuePairSet::Submit(IoOp op, IoOpExecutor& exec) {
  if constexpr (obs::kStatsEnabled) {
    obs::TraceContext tc = obs::CurrentTrace();
    op.trace_id = tc.trace_id;
    op.parent_span = tc.span_id;
    // Submit time always (not just for sampled traces): the slowlog's
    // io_queue stage needs the queueing delay of every op.
    op.submit_ns = obs::NowNs();
  }
  stats_.submits.Inc();
  IoQueuePair& pair = *PairFor(Thread::Id(), /*create=*/true);
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (!pair.sq.TryPush(op)) {
    // Backpressure: the submission ring is full, so pay the execution and
    // the callback here instead of blocking. Exactly-once still holds.
    stats_.sq_full_inline.Inc();
    ExecuteOne(pair, op, exec, /*foreign=*/false, /*deliver_inline=*/true);
  }
}

void IoQueuePairSet::ExecuteOne(IoQueuePair& pair, const IoOp& op,
                                IoOpExecutor& exec, bool foreign,
                                bool deliver_inline) {
  if (foreign) stats_.foreign_execs.Inc();
  IoCompletion c;
  c.callback = op.callback;
  c.context = op.context;
  c.submit_ns = op.submit_ns;
  c.trace_id = op.trace_id;
  c.parent_span = op.parent_span;
  uint32_t bytes = 0;
  if constexpr (obs::kStatsEnabled) {
    c.exec_start_ns = obs::NowNs();
    if (op.trace_id != 0) {
      // Queueing-delay span (submit -> execution pickup), mirroring the
      // thread-pool worker loop so trace trees look the same either way.
      obs::GlobalSpanRing().Record(op.trace_id, obs::NewSpanId(),
                                   op.parent_span, op.submit_ns,
                                   c.exec_start_ns, 0,
                                   obs::SpanKind::kIoQueue);
    }
    obs::StatResumedSpan exec_span{obs::SpanKind::kIoExec, op.trace_id,
                                   op.parent_span};
    c.status = exec.ExecuteOp(op, &bytes);
  } else {
    c.status = exec.ExecuteOp(op, &bytes);
  }
  c.bytes = bytes;
  if (deliver_inline || !pair.cq.TryPush(c)) {
    // Deliver directly (submit-side backpressure, or completion ring
    // full). Safe — the thread-pool path always ran callbacks on an
    // arbitrary pool thread, so every callback is already thread-agnostic.
    if (!deliver_inline) stats_.cq_full_inline.Inc();
    Deliver(c);
    in_flight_.fetch_sub(1, std::memory_order_release);
  }
}

void IoQueuePairSet::Deliver(const IoCompletion& c) {
  if constexpr (obs::kStatsEnabled) {
    // Publish queue/exec timing for the callback (slowlog io_queue /
    // io_exec stages); cleared after so a later inline callback on this
    // thread never reads stale data. The io_exec stage measured by the
    // callback spans exec start -> delivery, i.e. execution plus
    // completion-ring residence.
    obs::IoStageInfo& io_stage = obs::CurrentIoStage();
    io_stage.queue_ns =
        c.submit_ns != 0 && c.exec_start_ns > c.submit_ns
            ? c.exec_start_ns - c.submit_ns
            : 0;
    io_stage.exec_start_ns = c.exec_start_ns;
    c.callback(c.context, c.status, c.bytes);
    io_stage.queue_ns = 0;
    io_stage.exec_start_ns = 0;
  } else {
    c.callback(c.context, c.status, c.bytes);
  }
  stats_.poll_completions.Inc();
}

uint32_t IoQueuePairSet::RunPair(IoQueuePair& pair, IoOpExecutor& exec,
                                 bool foreign) {
  if (!pair.TryLockConsumer()) {
    return 0;  // another thread is consuming this pair right now
  }
  uint64_t sweep_start = 0;
  uint64_t first_trace = 0;
  uint64_t first_parent = 0;
  if constexpr (obs::kStatsEnabled) sweep_start = obs::NowNs();
  // Execute queued submissions; completions land in the CQ (or deliver
  // inline on overflow).
  IoOp op;
  while (pair.sq.TryPop(&op)) {
    ExecuteOne(pair, op, exec, foreign, /*deliver_inline=*/false);
  }
  // Deliver queued completions (possibly pushed by a previous consumer).
  uint32_t delivered = 0;
  IoCompletion c;
  while (pair.cq.TryPop(&c)) {
    if (delivered == 0) {
      first_trace = c.trace_id;
      first_parent = c.parent_span;
    }
    Deliver(c);
    in_flight_.fetch_sub(1, std::memory_order_release);
    ++delivered;
  }
  pair.UnlockConsumer();
  if constexpr (obs::kStatsEnabled) {
    if (delivered > 0 && first_trace != 0) {
      // One span per non-empty sweep (arg = completions reaped) so traces
      // show the reap batching rather than a per-op forest.
      obs::GlobalSpanRing().Record(first_trace, obs::NewSpanId(),
                                   first_parent, sweep_start, obs::NowNs(),
                                   delivered, obs::SpanKind::kIoPoll);
    }
  }
  return delivered;
}

uint32_t IoQueuePairSet::Poll(IoOpExecutor& exec) {
  stats_.poll_calls.Inc();
  IoQueuePair* pair = PairFor(Thread::Id(), /*create=*/false);
  uint32_t delivered =
      pair != nullptr ? RunPair(*pair, exec, /*foreign=*/false) : 0;
  if (delivered == 0) stats_.poll_empty.Inc();
  return delivered;
}

uint32_t IoQueuePairSet::PollAll(IoOpExecutor& exec) {
  stats_.poll_calls.Inc();
  uint32_t own = Thread::Id();
  uint32_t delivered = 0;
  for (uint32_t tid = 0; tid < Thread::kMaxThreads; ++tid) {
    IoQueuePair* pair = PairFor(tid, /*create=*/false);
    if (pair == nullptr) continue;
    delivered += RunPair(*pair, exec, /*foreign=*/tid != own);
  }
  if (delivered == 0) stats_.poll_empty.Inc();
  return delivered;
}

void IoQueuePairSet::Drain(IoOpExecutor& exec) {
  // PollAll makes progress on every pair (stealing from threads that are
  // stalled or gone); in_flight_ reaching zero means every callback ran.
  while (!AllIdle()) {
    if (PollAll(exec) == 0) {
      // Ops were claimed by a concurrent consumer (or a submit is still
      // between its counter increment and ring push) — yield, re-poll.
      std::this_thread::yield();
    }
  }
}

}  // namespace faster
