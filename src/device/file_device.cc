#include "device/file_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace faster {

FileDevice::FileDevice(const std::string& path, uint32_t num_io_threads,
                       IoPathMode mode)
    : path_{path},
      fd_{::open(path.c_str(), O_RDWR | O_CREAT, 0644)},
      mode_{mode} {
  if (fd_ < 0) {
    throw std::runtime_error("FileDevice: cannot open " + path);
  }
  if (mode_ == IoPathMode::kUring && !UringIo::Supported()) {
    mode_ = IoPathMode::kPolling;  // stub build, old kernel, or seccomp
  }
  switch (mode_) {
    case IoPathMode::kThreadPool:
      pool_ = std::make_unique<IoThreadPool>(num_io_threads);
      break;
    case IoPathMode::kPolling:
      queues_ = std::make_unique<IoQueuePairSet>();
      break;
    case IoPathMode::kUring:
      // Explicit upcast: the conversion must happen here, where the
      // private base is accessible, not inside make_unique.
      uring_ = std::make_unique<UringIo>(
          fd_, static_cast<IoOpExecutor&>(*this), &obs_stats_);
      break;
  }
}

FileDevice::~FileDevice() {
  Drain();
  pool_.reset();
  queues_.reset();
  uring_.reset();
  ::close(fd_);
}

Status FileDevice::ExecuteOp(const IoOp& op, uint32_t* bytes) {
  auto* p = static_cast<char*>(op.buf);
  uint64_t off = op.offset;
  uint32_t remaining = op.len;
  while (remaining > 0) {
    ssize_t n = op.kind == IoOp::Kind::kWrite
                    ? ::pwrite(fd_, p, remaining, static_cast<off_t>(off))
                    : ::pread(fd_, p, remaining, static_cast<off_t>(off));
    if (n <= 0) {
      *bytes = op.len - remaining;
      return Status::kIoError;
    }
    p += n;
    off += static_cast<uint64_t>(n);
    remaining -= static_cast<uint32_t>(n);
  }
  if (op.kind == IoOp::Kind::kWrite) {
    bytes_written_.fetch_add(op.len, std::memory_order_relaxed);
    obs_stats_.writes.Inc();
    if constexpr (obs::kStatsEnabled) {
      obs_stats_.write_ns.Record(obs::NowNs() - op.submit_ns);
    }
  } else {
    obs_stats_.reads.Inc();
    if constexpr (obs::kStatsEnabled) {
      obs_stats_.read_ns.Record(obs::NowNs() - op.submit_ns);
    }
  }
  *bytes = op.len;
  return Status::kOk;
}

Status FileDevice::WriteAsync(const void* src, uint64_t offset, uint32_t len,
                              IoCallback callback, void* context) {
  if (mode_ != IoPathMode::kThreadPool) {
    IoOp op;
    op.kind = IoOp::Kind::kWrite;
    op.offset = offset;
    op.buf = const_cast<void*>(src);
    op.len = len;
    op.callback = callback;
    op.context = context;
    if (uring_ != nullptr) {
      uring_->Submit(&op, 1);
    } else {
      queues_->Submit(op, *this);
    }
    return Status::kOk;
  }
  uint64_t t0 = 0;
  if constexpr (obs::kStatsEnabled) t0 = obs::NowNs();
  pool_->Submit([this, src, offset, len, callback, context, t0] {
    const char* p = static_cast<const char*>(src);
    uint64_t off = offset;
    uint32_t remaining = len;
    while (remaining > 0) {
      ssize_t n = ::pwrite(fd_, p, remaining, static_cast<off_t>(off));
      if (n <= 0) {
        callback(context, Status::kIoError, len - remaining);
        return;
      }
      p += n;
      off += static_cast<uint64_t>(n);
      remaining -= static_cast<uint32_t>(n);
    }
    bytes_written_.fetch_add(len, std::memory_order_relaxed);
    obs_stats_.writes.Inc();
    if constexpr (obs::kStatsEnabled) {
      obs_stats_.write_ns.Record(obs::NowNs() - t0);
    }
    callback(context, Status::kOk, len);
  });
  return Status::kOk;
}

IoJob FileDevice::MakeReadJob(uint64_t offset, void* dst, uint32_t len,
                              IoCallback callback, void* context,
                              uint64_t t0) {
  return IoJob{[this, dst, offset, len, callback, context, t0] {
    char* p = static_cast<char*>(dst);
    uint64_t off = offset;
    uint32_t remaining = len;
    while (remaining > 0) {
      ssize_t n = ::pread(fd_, p, remaining, static_cast<off_t>(off));
      if (n <= 0) {
        callback(context, Status::kIoError, len - remaining);
        return;
      }
      p += n;
      off += static_cast<uint64_t>(n);
      remaining -= static_cast<uint32_t>(n);
    }
    obs_stats_.reads.Inc();
    if constexpr (obs::kStatsEnabled) {
      obs_stats_.read_ns.Record(obs::NowNs() - t0);
    }
    callback(context, Status::kOk, len);
  }};
}

Status FileDevice::ReadAsync(uint64_t offset, void* dst, uint32_t len,
                             IoCallback callback, void* context) {
  if (mode_ != IoPathMode::kThreadPool) {
    IoOp op;
    op.offset = offset;
    op.buf = dst;
    op.len = len;
    op.callback = callback;
    op.context = context;
    if (uring_ != nullptr) {
      uring_->Submit(&op, 1);
    } else {
      queues_->Submit(op, *this);
    }
    return Status::kOk;
  }
  uint64_t t0 = 0;
  if constexpr (obs::kStatsEnabled) t0 = obs::NowNs();
  pool_->Submit(MakeReadJob(offset, dst, len, callback, context, t0));
  return Status::kOk;
}

Status FileDevice::ReadBatchAsync(const IoReadRequest* requests, uint32_t n,
                                  uint32_t* accepted) {
  if (mode_ != IoPathMode::kThreadPool) {
    constexpr uint32_t kChunk = 64;
    IoOp ops[kChunk];
    uint32_t i = 0;
    while (i < n) {
      uint32_t m = std::min(n - i, kChunk);
      for (uint32_t j = 0; j < m; ++j) {
        const IoReadRequest& r = requests[i + j];
        ops[j].offset = r.offset;
        ops[j].buf = r.dst;
        ops[j].len = r.len;
        ops[j].callback = r.callback;
        ops[j].context = r.context;
      }
      if (uring_ != nullptr) {
        // One io_uring_enter per chunk — the coalesced-submission analog
        // of the pool path's single-lock SubmitBatch.
        uring_->Submit(ops, m);
      } else {
        for (uint32_t j = 0; j < m; ++j) queues_->Submit(ops[j], *this);
      }
      i += m;
    }
    if (accepted != nullptr) *accepted = n;
    return Status::kOk;
  }
  uint64_t t0 = 0;
  if constexpr (obs::kStatsEnabled) t0 = obs::NowNs();
  constexpr uint32_t kChunk = 64;
  IoJob jobs[kChunk];
  uint32_t i = 0;
  while (i < n) {
    uint32_t m = std::min(n - i, kChunk);
    for (uint32_t j = 0; j < m; ++j) {
      const IoReadRequest& r = requests[i + j];
      jobs[j] = MakeReadJob(r.offset, r.dst, r.len, r.callback, r.context, t0);
    }
    pool_->SubmitBatch(jobs, m);
    i += m;
  }
  if (accepted != nullptr) *accepted = n;
  return Status::kOk;
}

uint32_t FileDevice::Poll() {
  if (uring_ != nullptr) return uring_->Poll();
  if (queues_ != nullptr) return queues_->Poll(*this);
  return 0;
}

uint32_t FileDevice::PollAll() {
  if (uring_ != nullptr) return uring_->PollAll();
  if (queues_ != nullptr) return queues_->PollAll(*this);
  return 0;
}

void FileDevice::Drain() {
  if (uring_ != nullptr) {
    uring_->Drain();
  } else if (queues_ != nullptr) {
    queues_->Drain(*this);
  } else {
    pool_->Drain();
  }
}

}  // namespace faster
