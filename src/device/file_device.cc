#include "device/file_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace faster {

FileDevice::FileDevice(const std::string& path, uint32_t num_io_threads)
    : path_{path},
      fd_{::open(path.c_str(), O_RDWR | O_CREAT, 0644)},
      pool_{std::make_unique<IoThreadPool>(num_io_threads)} {
  if (fd_ < 0) {
    throw std::runtime_error("FileDevice: cannot open " + path);
  }
}

FileDevice::~FileDevice() {
  pool_->Drain();
  pool_.reset();
  ::close(fd_);
}

Status FileDevice::WriteAsync(const void* src, uint64_t offset, uint32_t len,
                              IoCallback callback, void* context) {
  uint64_t t0 = 0;
  if constexpr (obs::kStatsEnabled) t0 = obs::NowNs();
  pool_->Submit([this, src, offset, len, callback, context, t0] {
    const char* p = static_cast<const char*>(src);
    uint64_t off = offset;
    uint32_t remaining = len;
    while (remaining > 0) {
      ssize_t n = ::pwrite(fd_, p, remaining, static_cast<off_t>(off));
      if (n <= 0) {
        callback(context, Status::kIoError, len - remaining);
        return;
      }
      p += n;
      off += static_cast<uint64_t>(n);
      remaining -= static_cast<uint32_t>(n);
    }
    bytes_written_.fetch_add(len, std::memory_order_relaxed);
    obs_stats_.writes.Inc();
    if constexpr (obs::kStatsEnabled) {
      obs_stats_.write_ns.Record(obs::NowNs() - t0);
    }
    callback(context, Status::kOk, len);
  });
  return Status::kOk;
}

IoJob FileDevice::MakeReadJob(uint64_t offset, void* dst, uint32_t len,
                              IoCallback callback, void* context,
                              uint64_t t0) {
  return IoJob{[this, dst, offset, len, callback, context, t0] {
    char* p = static_cast<char*>(dst);
    uint64_t off = offset;
    uint32_t remaining = len;
    while (remaining > 0) {
      ssize_t n = ::pread(fd_, p, remaining, static_cast<off_t>(off));
      if (n <= 0) {
        callback(context, Status::kIoError, len - remaining);
        return;
      }
      p += n;
      off += static_cast<uint64_t>(n);
      remaining -= static_cast<uint32_t>(n);
    }
    obs_stats_.reads.Inc();
    if constexpr (obs::kStatsEnabled) {
      obs_stats_.read_ns.Record(obs::NowNs() - t0);
    }
    callback(context, Status::kOk, len);
  }};
}

Status FileDevice::ReadAsync(uint64_t offset, void* dst, uint32_t len,
                             IoCallback callback, void* context) {
  uint64_t t0 = 0;
  if constexpr (obs::kStatsEnabled) t0 = obs::NowNs();
  pool_->Submit(MakeReadJob(offset, dst, len, callback, context, t0));
  return Status::kOk;
}

Status FileDevice::ReadBatchAsync(const IoReadRequest* requests, uint32_t n) {
  uint64_t t0 = 0;
  if constexpr (obs::kStatsEnabled) t0 = obs::NowNs();
  constexpr uint32_t kChunk = 64;
  IoJob jobs[kChunk];
  uint32_t i = 0;
  while (i < n) {
    uint32_t m = std::min(n - i, kChunk);
    for (uint32_t j = 0; j < m; ++j) {
      const IoReadRequest& r = requests[i + j];
      jobs[j] = MakeReadJob(r.offset, r.dst, r.len, r.callback, r.context, t0);
    }
    pool_->SubmitBatch(jobs, m);
    i += m;
  }
  return Status::kOk;
}

void FileDevice::Drain() { pool_->Drain(); }

}  // namespace faster
