#include "device/memory_device.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace faster {

MemoryDevice::MemoryDevice(uint32_t num_io_threads,
                           uint32_t simulated_latency_us, IoPathMode mode)
    : mode_{mode == IoPathMode::kUring ? IoPathMode::kPolling : mode},
      latency_us_{simulated_latency_us} {
  if (mode_ == IoPathMode::kThreadPool) {
    pool_ = std::make_unique<IoThreadPool>(num_io_threads);
  } else {
    queues_ = std::make_unique<IoQueuePairSet>();
  }
}

MemoryDevice::~MemoryDevice() { Drain(); }

uint8_t* MemoryDevice::SegmentFor(uint64_t offset, bool create) {
  uint64_t idx = offset >> kSegmentBits;
  std::lock_guard<std::mutex> lock{segments_mutex_};
  if (idx >= segments_.size()) {
    if (!create) return nullptr;
    segments_.resize(idx + 1);
  }
  if (segments_[idx] == nullptr) {
    if (!create) return nullptr;
    segments_[idx] = std::make_unique<uint8_t[]>(kSegmentSize);
  }
  return segments_[idx].get();
}

Status MemoryDevice::WriteSync(const void* src, uint64_t offset,
                               uint32_t len) {
  const auto* p = static_cast<const uint8_t*>(src);
  uint64_t off = offset;
  uint32_t remaining = len;
  while (remaining > 0) {
    uint8_t* seg = SegmentFor(off, /*create=*/true);
    uint64_t seg_off = off & (kSegmentSize - 1);
    uint32_t chunk = static_cast<uint32_t>(
        std::min<uint64_t>(remaining, kSegmentSize - seg_off));
    std::memcpy(seg + seg_off, p, chunk);
    p += chunk;
    off += chunk;
    remaining -= chunk;
  }
  bytes_written_.fetch_add(len, std::memory_order_relaxed);
  return Status::kOk;
}

Status MemoryDevice::ExecuteOp(const IoOp& op, uint32_t* bytes) {
  if (latency_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
  }
  Status s;
  if (op.kind == IoOp::Kind::kWrite) {
    s = WriteSync(op.buf, op.offset, op.len);
    obs_stats_.writes.Inc();
    if constexpr (obs::kStatsEnabled) {
      obs_stats_.write_ns.Record(obs::NowNs() - op.submit_ns);
    }
  } else {
    s = ReadSync(op.offset, op.buf, op.len);
    obs_stats_.reads.Inc();
    if constexpr (obs::kStatsEnabled) {
      obs_stats_.read_ns.Record(obs::NowNs() - op.submit_ns);
    }
  }
  *bytes = s == Status::kOk ? op.len : 0;
  return s;
}

Status MemoryDevice::WriteAsync(const void* src, uint64_t offset, uint32_t len,
                                IoCallback callback, void* context) {
  if (queues_ != nullptr) {
    IoOp op;
    op.kind = IoOp::Kind::kWrite;
    op.offset = offset;
    op.buf = const_cast<void*>(src);
    op.len = len;
    op.callback = callback;
    op.context = context;
    queues_->Submit(op, *this);
    return Status::kOk;
  }
  uint64_t t0 = 0;
  if constexpr (obs::kStatsEnabled) t0 = obs::NowNs();
  pool_->Submit([this, src, offset, len, callback, context, t0] {
    if (latency_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
    }
    WriteSync(src, offset, len);
    obs_stats_.writes.Inc();
    if constexpr (obs::kStatsEnabled) {
      obs_stats_.write_ns.Record(obs::NowNs() - t0);
    }
    callback(context, Status::kOk, len);
  });
  return Status::kOk;
}

Status MemoryDevice::ReadSync(uint64_t offset, void* dst, uint32_t len) {
  auto* p = static_cast<uint8_t*>(dst);
  uint64_t off = offset;
  uint32_t remaining = len;
  while (remaining > 0) {
    uint8_t* seg = SegmentFor(off, /*create=*/false);
    if (seg == nullptr) return Status::kIoError;
    uint64_t seg_off = off & (kSegmentSize - 1);
    uint32_t chunk = static_cast<uint32_t>(
        std::min<uint64_t>(remaining, kSegmentSize - seg_off));
    std::memcpy(p, seg + seg_off, chunk);
    p += chunk;
    off += chunk;
    remaining -= chunk;
  }
  return Status::kOk;
}

IoJob MemoryDevice::MakeReadJob(uint64_t offset, void* dst, uint32_t len,
                                IoCallback callback, void* context,
                                uint64_t t0) {
  return IoJob{[this, dst, offset, len, callback, context, t0] {
    if (latency_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
    }
    Status s = ReadSync(offset, dst, len);
    obs_stats_.reads.Inc();
    if constexpr (obs::kStatsEnabled) {
      obs_stats_.read_ns.Record(obs::NowNs() - t0);
    }
    callback(context, s, s == Status::kOk ? len : 0);
  }};
}

Status MemoryDevice::ReadAsync(uint64_t offset, void* dst, uint32_t len,
                               IoCallback callback, void* context) {
  if (queues_ != nullptr) {
    IoOp op;
    op.offset = offset;
    op.buf = dst;
    op.len = len;
    op.callback = callback;
    op.context = context;
    queues_->Submit(op, *this);
    return Status::kOk;
  }
  uint64_t t0 = 0;
  if constexpr (obs::kStatsEnabled) t0 = obs::NowNs();
  pool_->Submit(MakeReadJob(offset, dst, len, callback, context, t0));
  return Status::kOk;
}

Status MemoryDevice::ReadBatchAsync(const IoReadRequest* requests, uint32_t n,
                                    uint32_t* accepted) {
  if (queues_ != nullptr) {
    for (uint32_t i = 0; i < n; ++i) {
      const IoReadRequest& r = requests[i];
      IoOp op;
      op.offset = r.offset;
      op.buf = r.dst;
      op.len = r.len;
      op.callback = r.callback;
      op.context = r.context;
      queues_->Submit(op, *this);
    }
    if (accepted != nullptr) *accepted = n;
    return Status::kOk;
  }
  uint64_t t0 = 0;
  if constexpr (obs::kStatsEnabled) t0 = obs::NowNs();
  constexpr uint32_t kChunk = 64;
  IoJob jobs[kChunk];
  uint32_t i = 0;
  while (i < n) {
    uint32_t m = std::min(n - i, kChunk);
    for (uint32_t j = 0; j < m; ++j) {
      const IoReadRequest& r = requests[i + j];
      jobs[j] = MakeReadJob(r.offset, r.dst, r.len, r.callback, r.context, t0);
    }
    pool_->SubmitBatch(jobs, m);
    i += m;
  }
  if (accepted != nullptr) *accepted = n;
  return Status::kOk;
}

uint32_t MemoryDevice::Poll() {
  return queues_ != nullptr ? queues_->Poll(*this) : 0;
}

uint32_t MemoryDevice::PollAll() {
  return queues_ != nullptr ? queues_->PollAll(*this) : 0;
}

void MemoryDevice::Drain() {
  if (queues_ != nullptr) {
    queues_->Drain(*this);
  } else {
    pool_->Drain();
  }
}

}  // namespace faster
