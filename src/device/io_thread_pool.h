#ifndef FASTER_DEVICE_IO_THREAD_POOL_H_
#define FASTER_DEVICE_IO_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace faster {

/// A small worker pool that executes queued I/O jobs off the store's
/// operation threads, emulating the asynchronous I/O stack (Windows
/// overlapped I/O in the paper's implementation) on plain POSIX calls.
class IoThreadPool {
 public:
  explicit IoThreadPool(uint32_t num_threads);
  ~IoThreadPool();

  IoThreadPool(const IoThreadPool&) = delete;
  IoThreadPool& operator=(const IoThreadPool&) = delete;

  /// Enqueue a job; runs on some pool thread.
  void Submit(std::function<void()> job);

  /// Blocks until the queue is empty and all workers are idle.
  void Drain();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  uint32_t active_ = 0;
  bool stop_ = false;
};

}  // namespace faster

#endif  // FASTER_DEVICE_IO_THREAD_POOL_H_
