#ifndef FASTER_DEVICE_IO_THREAD_POOL_H_
#define FASTER_DEVICE_IO_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/stats.h"

namespace faster {

/// A small worker pool that executes queued I/O jobs off the store's
/// operation threads, emulating the asynchronous I/O stack (Windows
/// overlapped I/O in the paper's implementation) on plain POSIX calls.
class IoThreadPool {
 public:
  explicit IoThreadPool(uint32_t num_threads);
  ~IoThreadPool();

  IoThreadPool(const IoThreadPool&) = delete;
  IoThreadPool& operator=(const IoThreadPool&) = delete;

  /// Enqueue a job; runs on some pool thread.
  void Submit(std::function<void()> job);

  /// Blocks until the queue is empty and all workers are idle.
  void Drain();

  /// Observability (compiled out unless FASTER_STATS): queue pressure.
  struct ObsStats {
    obs::StatCounter jobs;               // jobs submitted
    obs::StatGauge queue_depth;          // jobs queued, not yet started
    obs::StatHistogram depth_at_submit;  // queue length seen by Submit
  };
  const ObsStats& obs_stats() const { return obs_stats_; }

  /// Registers this pool's metrics under `prefix.` names.
  void RegisterStats(obs::StatRegistry& registry,
                     const std::string& prefix) const {
    registry.Add(prefix + ".jobs", &obs_stats_.jobs);
    registry.Add(prefix + ".queue_depth", &obs_stats_.queue_depth);
    registry.Add(prefix + ".depth_at_submit", &obs_stats_.depth_at_submit);
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  uint32_t active_ = 0;
  bool stop_ = false;
  mutable ObsStats obs_stats_;
};

}  // namespace faster

#endif  // FASTER_DEVICE_IO_THREAD_POOL_H_
