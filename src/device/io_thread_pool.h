#ifndef FASTER_DEVICE_IO_THREAD_POOL_H_
#define FASTER_DEVICE_IO_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/span.h"
#include "obs/stats.h"

namespace faster {

/// A move-only type-erased callable for I/O jobs. std::function requires
/// copyability and (for our capture sizes) heap-allocates each job; IoJob
/// keeps captures up to 64 bytes inline and moves — never copies — through
/// the queue, so the per-I/O allocation and copy disappear from the hot
/// path. (std::move_only_function is C++23; this toolchain is C++20.)
class IoJob {
 public:
  static constexpr size_t kInlineSize = 64;

  IoJob() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, IoJob>>>
  IoJob(F&& f) {  // NOLINT(google-explicit-constructor): callable adapter
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>);
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vtable_ = &InlineVtable<Fn>();
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      vtable_ = &HeapVtable<Fn>();
    }
  }

  IoJob(IoJob&& other) noexcept
      : vtable_{other.vtable_},
        trace_id_{other.trace_id_},
        parent_span_{other.parent_span_},
        submit_ns_{other.submit_ns_} {
    if (vtable_) {
      vtable_->move(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  IoJob& operator=(IoJob&& other) noexcept {
    if (this != &other) {
      Reset();
      vtable_ = other.vtable_;
      trace_id_ = other.trace_id_;
      parent_span_ = other.parent_span_;
      submit_ns_ = other.submit_ns_;
      if (vtable_) {
        vtable_->move(storage_, other.storage_);
        other.vtable_ = nullptr;
      }
    }
    return *this;
  }

  IoJob(const IoJob&) = delete;
  IoJob& operator=(const IoJob&) = delete;

  ~IoJob() { Reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  void operator()() {
    vtable_->invoke(storage_);
  }

  /// Captures the submitting thread's ambient span context (and the
  /// submit time) so the pool worker can emit a queueing-delay span and
  /// run the job under the originating trace. Called by the pool at
  /// enqueue; compiled out with stats.
  void CaptureTraceContext() {
    if constexpr (obs::kStatsEnabled) {
      obs::TraceContext tc = obs::CurrentTrace();
      trace_id_ = tc.trace_id;
      parent_span_ = tc.span_id;
      // Submit time always (not just for sampled traces): the slowlog's
      // io_queue stage needs the queueing delay of every job.
      submit_ns_ = obs::NowNs();
    }
  }
  uint64_t trace_id() const { return trace_id_; }
  uint64_t parent_span() const { return parent_span_; }
  uint64_t submit_ns() const { return submit_ns_; }

 private:
  struct Vtable {
    void (*invoke)(unsigned char* storage);
    void (*move)(unsigned char* dst, unsigned char* src);
    void (*destroy)(unsigned char* storage);
  };

  template <typename Fn>
  static const Vtable& InlineVtable() {
    static constexpr Vtable vt{
        [](unsigned char* s) { (*reinterpret_cast<Fn*>(s))(); },
        [](unsigned char* dst, unsigned char* src) {
          ::new (static_cast<void*>(dst)) Fn(std::move(*reinterpret_cast<Fn*>(src)));
          reinterpret_cast<Fn*>(src)->~Fn();
        },
        [](unsigned char* s) { reinterpret_cast<Fn*>(s)->~Fn(); }};
    return vt;
  }

  template <typename Fn>
  static const Vtable& HeapVtable() {
    static constexpr Vtable vt{
        [](unsigned char* s) { (**reinterpret_cast<Fn**>(s))(); },
        [](unsigned char* dst, unsigned char* src) {
          *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
        },
        [](unsigned char* s) { delete *reinterpret_cast<Fn**>(s); }};
    return vt;
  }

  void Reset() {
    if (vtable_) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Vtable* vtable_ = nullptr;
  // Span context riding along with the job (see CaptureTraceContext).
  // Plain fields: handed off through the queue under the pool mutex.
  uint64_t trace_id_ = 0;
  uint64_t parent_span_ = 0;
  uint64_t submit_ns_ = 0;
};

/// A small worker pool that executes queued I/O jobs off the store's
/// operation threads, emulating the asynchronous I/O stack (Windows
/// overlapped I/O in the paper's implementation) on plain POSIX calls.
class IoThreadPool {
 public:
  explicit IoThreadPool(uint32_t num_threads);
  ~IoThreadPool();

  IoThreadPool(const IoThreadPool&) = delete;
  IoThreadPool& operator=(const IoThreadPool&) = delete;

  /// Enqueue a job; runs on some pool thread.
  void Submit(IoJob job);

  /// Enqueue `n` jobs under one lock acquisition, waking all workers once.
  /// Used to coalesce a batch's pending reads into a single submission.
  void SubmitBatch(IoJob* jobs, uint32_t n);

  /// Blocks until the queue is empty and all workers are idle.
  void Drain();

  /// Observability (compiled out unless FASTER_STATS): queue pressure.
  struct ObsStats {
    obs::StatCounter jobs;               // jobs submitted
    obs::StatGauge queue_depth;          // jobs queued, not yet started
    obs::StatHistogram depth_at_submit;  // queue length seen by Submit
  };
  const ObsStats& obs_stats() const { return obs_stats_; }

  /// Registers this pool's metrics under `prefix.` names.
  void RegisterStats(obs::StatRegistry& registry,
                     const std::string& prefix) const {
    registry.Add(prefix + ".jobs", &obs_stats_.jobs);
    registry.Add(prefix + ".queue_depth", &obs_stats_.queue_depth);
    registry.Add(prefix + ".depth_at_submit", &obs_stats_.depth_at_submit);
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<IoJob> queue_;
  uint32_t active_ = 0;
  // Bumped (under mutex_) each time the pool transitions busy -> idle, so
  // Drain waits for one generation change instead of re-evaluating
  // "empty and nobody active" on every job completion under contention.
  uint64_t idle_generation_ = 0;
  bool stop_ = false;
  mutable ObsStats obs_stats_;
};

}  // namespace faster

#endif  // FASTER_DEVICE_IO_THREAD_POOL_H_
