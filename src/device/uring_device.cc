#include "device/uring_device.h"

#if defined(FASTER_HAVE_IO_URING)

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "obs/slowlog.h"
#include "obs/span.h"

namespace faster {

namespace {

int IoUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int IoUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                 unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

}  // namespace

/// One thread's kernel ring plus the userspace op-slot pool that carries
/// callback/trace context across the kernel boundary (user_data = slot
/// index). kEntries slots bound in-flight ops, so the kernel CQ (sized
/// 2x SQ by default) can never overflow and IORING_ENTER_GETEVENTS is
/// never needed on the hot path.
struct UringIo::Ring {
  static constexpr uint32_t kEntries = 64;

  int ring_fd = -1;
  // mmap'd regions (sq/cq may share one mapping: IORING_FEAT_SINGLE_MMAP).
  void* sq_mmap = nullptr;
  size_t sq_mmap_len = 0;
  void* cq_mmap = nullptr;
  size_t cq_mmap_len = 0;
  io_uring_sqe* sqes = nullptr;
  size_t sqes_len = 0;

  // Kernel-shared ring fields. Plain pointers into the shared mappings;
  // accessed with __atomic builtins (acquire on the side the kernel
  // writes, release on the side we publish) exactly as liburing does.
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_mask = nullptr;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned* cq_mask = nullptr;
  io_uring_cqe* cqes = nullptr;

  struct OpSlot {
    IoOp op;
    struct iovec iov {};
    // order: acq_rel CAS claims a free slot at submit (owner thread);
    // release store frees it at reap (possibly a foreign drainer), making
    // the slot's prior contents safe to overwrite after an acquire claim.
    std::atomic<bool> busy{false};
  };
  OpSlot slots[kEntries];

  // order: acq_rel CAS takes the reaper role for this ring (observing
  // the previous reaper's cq_head progress; acquire on CAS failure is
  // enough to see who holds it); release store hands it back.
  std::atomic<bool> consuming{false};
  // order: relaxed increment at submit (the enter syscall orders the op
  // itself); release decrement after the callback pairs with the acquire
  // load in AllIdle so a zero count implies completed effects are visible.
  std::atomic<uint32_t> in_flight{0};

  ~Ring() {
    if (sqes != nullptr) ::munmap(sqes, sqes_len);
    if (cq_mmap != nullptr && cq_mmap != sq_mmap) ::munmap(cq_mmap, cq_mmap_len);
    if (sq_mmap != nullptr) ::munmap(sq_mmap, sq_mmap_len);
    if (ring_fd >= 0) ::close(ring_fd);
  }

  static Ring* Create() {
    io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    int rfd = IoUringSetup(kEntries, &p);
    if (rfd < 0) return nullptr;
    auto* ring = new Ring();
    ring->ring_fd = rfd;
    size_t sq_len = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    size_t cq_len = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    bool single = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single && cq_len > sq_len) sq_len = cq_len;
    ring->sq_mmap_len = sq_len;
    ring->sq_mmap = ::mmap(nullptr, sq_len, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_POPULATE, rfd, IORING_OFF_SQ_RING);
    if (ring->sq_mmap == MAP_FAILED) {
      ring->sq_mmap = nullptr;
      delete ring;
      return nullptr;
    }
    if (single) {
      ring->cq_mmap = ring->sq_mmap;
      ring->cq_mmap_len = sq_len;
    } else {
      ring->cq_mmap_len = cq_len;
      ring->cq_mmap =
          ::mmap(nullptr, cq_len, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, rfd, IORING_OFF_CQ_RING);
      if (ring->cq_mmap == MAP_FAILED) {
        ring->cq_mmap = nullptr;
        delete ring;
        return nullptr;
      }
    }
    ring->sqes_len = p.sq_entries * sizeof(io_uring_sqe);
    ring->sqes = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, ring->sqes_len, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, rfd, IORING_OFF_SQES));
    if (ring->sqes == MAP_FAILED) {
      ring->sqes = nullptr;
      delete ring;
      return nullptr;
    }
    auto* sq = static_cast<uint8_t*>(ring->sq_mmap);
    ring->sq_head = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    ring->sq_tail = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    ring->sq_mask = reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    ring->sq_array = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    auto* cq = static_cast<uint8_t*>(ring->cq_mmap);
    ring->cq_head = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    ring->cq_tail = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    ring->cq_mask = reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    ring->cqes = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
    return ring;
  }
};

bool UringIo::Supported() {
  static const bool supported = [] {
    io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    int fd = IoUringSetup(4, &p);
    if (fd < 0) return false;  // ENOSYS / EPERM (seccomp) / old kernel
    bool enter_ok = IoUringEnter(fd, 0, 0, 0) == 0;
    ::close(fd);
    return enter_ok;
  }();
  return supported;
}

UringIo::UringIo(int fd, IoOpExecutor& inline_exec, DeviceObsStats* dev_stats)
    : fd_{fd}, inline_exec_{inline_exec}, dev_stats_{dev_stats} {}

UringIo::~UringIo() {
  Drain();
  for (auto& slot : rings_) {
    delete slot.load(std::memory_order_acquire);
  }
}

UringIo::Ring* UringIo::RingFor(uint32_t tid, bool create) {
  Ring* ring = rings_[tid].load(std::memory_order_acquire);
  if (ring == nullptr && create) {
    Ring* fresh = Ring::Create();
    if (fresh == nullptr) return nullptr;  // caller falls back inline
    if (rings_[tid].compare_exchange_strong(ring, fresh,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      ring = fresh;
    } else {
      delete fresh;
    }
  }
  return ring;
}

void UringIo::InlineFallback(const IoOp& op) {
  stats_.sq_full_inline.Inc();
  uint32_t bytes = 0;
  Status s;
  if constexpr (obs::kStatsEnabled) {
    obs::StatResumedSpan exec_span{obs::SpanKind::kIoExec, op.trace_id,
                                   op.parent_span};
    s = inline_exec_.ExecuteOp(op, &bytes);
  } else {
    s = inline_exec_.ExecuteOp(op, &bytes);
  }
  if constexpr (obs::kStatsEnabled) {
    obs::IoStageInfo& io_stage = obs::CurrentIoStage();
    io_stage.queue_ns = 0;
    io_stage.exec_start_ns = op.submit_ns;
    op.callback(op.context, s, bytes);
    io_stage.queue_ns = 0;
    io_stage.exec_start_ns = 0;
  } else {
    op.callback(op.context, s, bytes);
  }
}

void UringIo::Submit(const IoOp* ops, uint32_t n) {
  Ring* ring = RingFor(Thread::Id(), /*create=*/true);
  if (ring == nullptr) {
    // Ring creation failed (fd limits, mmap): stay correct, go sync.
    for (uint32_t i = 0; i < n; ++i) InlineFallback(ops[i]);
    return;
  }
  uint32_t queued = 0;
  unsigned tail = __atomic_load_n(ring->sq_tail, __ATOMIC_RELAXED);
  for (uint32_t i = 0; i < n; ++i) {
    IoOp op = ops[i];
    if constexpr (obs::kStatsEnabled) {
      obs::TraceContext tc = obs::CurrentTrace();
      op.trace_id = tc.trace_id;
      op.parent_span = tc.span_id;
      op.submit_ns = obs::NowNs();
    }
    // Claim an op slot; the slot count == SQ entries, so a free slot
    // implies SQ space (the kernel consumes SQEs inside io_uring_enter).
    uint32_t slot_idx = Ring::kEntries;
    for (uint32_t s = 0; s < Ring::kEntries; ++s) {
      bool expected = false;
      if (ring->slots[s].busy.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        slot_idx = s;
        break;
      }
    }
    unsigned head = __atomic_load_n(ring->sq_head, __ATOMIC_ACQUIRE);
    if (slot_idx == Ring::kEntries || tail - head >= Ring::kEntries) {
      if (slot_idx != Ring::kEntries) {
        ring->slots[slot_idx].busy.store(false, std::memory_order_release);
      }
      InlineFallback(op);
      continue;
    }
    Ring::OpSlot& slot = ring->slots[slot_idx];
    slot.op = op;
    slot.iov.iov_base = op.buf;
    slot.iov.iov_len = op.len;
    unsigned idx = tail & *ring->sq_mask;
    io_uring_sqe* sqe = &ring->sqes[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode =
        op.kind == IoOp::Kind::kWrite ? IORING_OP_WRITEV : IORING_OP_READV;
    sqe->fd = fd_;
    sqe->off = op.offset;
    sqe->addr = reinterpret_cast<uint64_t>(&slot.iov);
    sqe->len = 1;
    sqe->user_data = slot_idx;
    ring->sq_array[idx] = idx;
    ++tail;
    ++queued;
    ring->in_flight.fetch_add(1, std::memory_order_relaxed);
    stats_.submits.Inc();
  }
  if (queued == 0) return;
  __atomic_store_n(ring->sq_tail, tail, __ATOMIC_RELEASE);
  uint32_t submitted = 0;
  while (submitted < queued) {
    int r = IoUringEnter(ring->ring_fd, queued - submitted, 0, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      // EAGAIN/EBUSY: kernel backlogged — reap to make space, retry.
      Reap(*ring);
      std::this_thread::yield();
      continue;
    }
    submitted += static_cast<uint32_t>(r);
  }
}

Status UringIo::Finish(const IoOp& op, int res, uint32_t* bytes,
                       bool* counted) {
  *counted = false;
  if (res < 0) {
    *bytes = 0;
    return Status::kIoError;
  }
  auto done = static_cast<uint32_t>(res);
  if (done == op.len) {
    *bytes = op.len;
    return Status::kOk;
  }
  if (done == 0) {
    // EOF — e.g. a read of a never-written region (mirrors the pread
    // loop's kIoError-with-partial-count contract).
    *bytes = 0;
    return Status::kIoError;
  }
  // Short transfer: complete the remainder synchronously. Rare on regular
  // files; inline_exec_ records device stats for it.
  IoOp rest = op;
  rest.offset += done;
  rest.buf = static_cast<uint8_t*>(op.buf) + done;
  rest.len -= done;
  uint32_t rest_bytes = 0;
  Status s = inline_exec_.ExecuteOp(rest, &rest_bytes);
  *counted = true;
  *bytes = done + rest_bytes;
  return s;
}

void UringIo::Deliver(const IoOp& op, Status status, uint32_t bytes) {
  if constexpr (obs::kStatsEnabled) {
    uint64_t now = obs::NowNs();
    if (op.trace_id != 0) {
      // The kernel window (submit -> reap) is the execution span; there
      // is no separate queueing delay to attribute.
      obs::GlobalSpanRing().Record(op.trace_id, obs::NewSpanId(),
                                   op.parent_span, op.submit_ns, now, 0,
                                   obs::SpanKind::kIoExec);
    }
    obs::IoStageInfo& io_stage = obs::CurrentIoStage();
    io_stage.queue_ns = 0;
    io_stage.exec_start_ns = op.submit_ns;
    op.callback(op.context, status, bytes);
    io_stage.queue_ns = 0;
    io_stage.exec_start_ns = 0;
  } else {
    op.callback(op.context, status, bytes);
  }
  stats_.poll_completions.Inc();
}

uint32_t UringIo::Reap(Ring& ring) {
  bool expected = false;
  if (!ring.consuming.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
    return 0;  // another thread is reaping this ring right now
  }
  uint64_t sweep_start = 0;
  uint64_t first_trace = 0;
  uint64_t first_parent = 0;
  if constexpr (obs::kStatsEnabled) sweep_start = obs::NowNs();
  uint32_t delivered = 0;
  unsigned head = __atomic_load_n(ring.cq_head, __ATOMIC_RELAXED);
  for (;;) {
    unsigned tail = __atomic_load_n(ring.cq_tail, __ATOMIC_ACQUIRE);
    if (head == tail) break;
    io_uring_cqe* cqe = &ring.cqes[head & *ring.cq_mask];
    auto slot_idx = static_cast<uint32_t>(cqe->user_data);
    Ring::OpSlot& slot = ring.slots[slot_idx];
    IoOp op = slot.op;
    int res = cqe->res;
    ++head;
    __atomic_store_n(ring.cq_head, head, __ATOMIC_RELEASE);
    slot.busy.store(false, std::memory_order_release);
    uint32_t bytes = 0;
    bool counted = false;
    Status status = Finish(op, res, &bytes, &counted);
    if (!counted && dev_stats_ != nullptr) {
      if (op.kind == IoOp::Kind::kWrite) {
        dev_stats_->writes.Inc();
        if constexpr (obs::kStatsEnabled) {
          dev_stats_->write_ns.Record(obs::NowNs() - op.submit_ns);
        }
      } else {
        dev_stats_->reads.Inc();
        if constexpr (obs::kStatsEnabled) {
          dev_stats_->read_ns.Record(obs::NowNs() - op.submit_ns);
        }
      }
    }
    if (delivered == 0) {
      first_trace = op.trace_id;
      first_parent = op.parent_span;
    }
    Deliver(op, status, bytes);
    ring.in_flight.fetch_sub(1, std::memory_order_release);
    ++delivered;
  }
  ring.consuming.store(false, std::memory_order_release);
  if constexpr (obs::kStatsEnabled) {
    if (delivered > 0 && first_trace != 0) {
      obs::GlobalSpanRing().Record(first_trace, obs::NewSpanId(),
                                   first_parent, sweep_start, obs::NowNs(),
                                   delivered, obs::SpanKind::kIoPoll);
    }
  }
  return delivered;
}

uint32_t UringIo::Poll() {
  stats_.poll_calls.Inc();
  Ring* ring = RingFor(Thread::Id(), /*create=*/false);
  uint32_t delivered = ring != nullptr ? Reap(*ring) : 0;
  if (delivered == 0) stats_.poll_empty.Inc();
  return delivered;
}

uint32_t UringIo::PollAll() {
  stats_.poll_calls.Inc();
  uint32_t delivered = 0;
  for (uint32_t tid = 0; tid < Thread::kMaxThreads; ++tid) {
    Ring* ring = RingFor(tid, /*create=*/false);
    if (ring == nullptr) continue;
    uint32_t n = Reap(*ring);
    if (tid != Thread::Id()) stats_.foreign_execs.Add(n);
    delivered += n;
  }
  if (delivered == 0) stats_.poll_empty.Inc();
  return delivered;
}

bool UringIo::AllIdle() const {
  for (const auto& slot : rings_) {
    Ring* ring = slot.load(std::memory_order_acquire);
    if (ring != nullptr &&
        ring->in_flight.load(std::memory_order_acquire) != 0) {
      return false;
    }
  }
  return true;
}

void UringIo::Drain() {
  while (!AllIdle()) {
    if (PollAll() == 0) std::this_thread::yield();
  }
}

}  // namespace faster

#else  // !FASTER_HAVE_IO_URING

namespace faster {

// Stub build (no <linux/io_uring.h>): never supported, never constructed
// on a live path — FileDevice degrades kUring to kPolling up front.
struct UringIo::Ring {};

bool UringIo::Supported() { return false; }

UringIo::UringIo(int fd, IoOpExecutor& inline_exec, DeviceObsStats* dev_stats)
    : fd_{fd}, inline_exec_{inline_exec}, dev_stats_{dev_stats} {}

UringIo::~UringIo() = default;

void UringIo::Submit(const IoOp* ops, uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) InlineFallback(ops[i]);
}

void UringIo::InlineFallback(const IoOp& op) {
  uint32_t bytes = 0;
  Status s = inline_exec_.ExecuteOp(op, &bytes);
  op.callback(op.context, s, bytes);
}

uint32_t UringIo::Poll() { return 0; }
uint32_t UringIo::PollAll() { return 0; }
bool UringIo::AllIdle() const { return true; }
void UringIo::Drain() {}
UringIo::Ring* UringIo::RingFor(uint32_t, bool) { return nullptr; }
uint32_t UringIo::Reap(Ring&) { return 0; }
Status UringIo::Finish(const IoOp&, int, uint32_t*, bool*) {
  return Status::kOk;
}
void UringIo::Deliver(const IoOp&, Status, uint32_t) {}

}  // namespace faster

#endif  // FASTER_HAVE_IO_URING
