#include "device/io_thread_pool.h"

#include "obs/slowlog.h"

namespace faster {

IoThreadPool::IoThreadPool(uint32_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

IoThreadPool::~IoThreadPool() {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void IoThreadPool::Submit(IoJob job) {
  job.CaptureTraceContext();
  {
    std::lock_guard<std::mutex> lock{mutex_};
    queue_.push_back(std::move(job));
    obs_stats_.jobs.Inc();
    obs_stats_.queue_depth.Inc();
    obs_stats_.depth_at_submit.Record(queue_.size());
  }
  cv_.notify_one();
}

void IoThreadPool::SubmitBatch(IoJob* jobs, uint32_t n) {
  if (n == 0) return;
  for (uint32_t i = 0; i < n; ++i) jobs[i].CaptureTraceContext();
  {
    std::lock_guard<std::mutex> lock{mutex_};
    for (uint32_t i = 0; i < n; ++i) {
      queue_.push_back(std::move(jobs[i]));
      obs_stats_.jobs.Inc();
      obs_stats_.queue_depth.Inc();
    }
    obs_stats_.depth_at_submit.Record(queue_.size());
  }
  cv_.notify_all();
}

void IoThreadPool::Drain() {
  std::unique_lock<std::mutex> lock{mutex_};
  for (;;) {
    if (queue_.empty() && active_ == 0) return;
    // Wait for one busy->idle transition rather than re-checking the
    // queue per completed job: workers only notify on the transition, so
    // a drain under heavy churn wakes O(1) times per idle period instead
    // of O(queue).
    uint64_t gen = idle_generation_;
    idle_cv_.wait(lock, [this, gen] { return idle_generation_ != gen; });
  }
}

void IoThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock{mutex_};
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    IoJob job = std::move(queue_.front());
    queue_.pop_front();
    obs_stats_.queue_depth.Dec();
    ++active_;
    lock.unlock();
    if constexpr (obs::kStatsEnabled) {
      uint64_t dequeue_ns = obs::NowNs();
      if (job.trace_id() != 0) {
        // The queueing-delay span (submit -> dequeue) is recorded here in
        // one shot; the execution span wraps the job body below. Both are
        // siblings under the span that submitted the job.
        obs::GlobalSpanRing().Record(job.trace_id(), obs::NewSpanId(),
                                     job.parent_span(), job.submit_ns(),
                                     dequeue_ns, 0, obs::SpanKind::kIoQueue);
      }
      // Publish this job's queue/exec timing for the completion callback
      // running inside the body (slowlog io_queue / io_exec stages);
      // cleared after so a later inline callback never reads stale data.
      obs::IoStageInfo& io_stage = obs::CurrentIoStage();
      io_stage.queue_ns =
          job.submit_ns() != 0 && dequeue_ns > job.submit_ns()
              ? dequeue_ns - job.submit_ns()
              : 0;
      io_stage.exec_start_ns = dequeue_ns;
      obs::StatResumedSpan exec{obs::SpanKind::kIoExec, job.trace_id(),
                                job.parent_span()};
      job();
      io_stage.queue_ns = 0;
      io_stage.exec_start_ns = 0;
    } else {
      job();
    }
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) {
      ++idle_generation_;
      idle_cv_.notify_all();
    }
  }
}

}  // namespace faster
