#ifndef FASTER_CORE_FUNCTIONS_H_
#define FASTER_CORE_FUNCTIONS_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace faster {

/// FASTER's compile-time user interface (Appendix E).
///
/// The paper's C# implementation uses dynamic code generation to inline
/// user-defined read/update logic into the store. The C++ analogue is a
/// `Functions` policy type passed as a template parameter: all callbacks
/// below are static and resolved (and inlined) at compile time. A
/// `Functions` type must provide:
///
/// ```
/// struct MyFunctions {
///   using Key    = ...;  // trivially copyable, alignment <= 8
///   using Value  = ...;  // trivially copyable, alignment <= 8
///   using Input  = ...;  // update operand (RMW) / read selector
///   using Output = ...;  // read result
///
///   // Reads (Sec. 2.2 / Appendix E). SingleReader runs with guaranteed
///   // read-only access (stable or safe-read-only region, or a record
///   // retrieved from disk); ConcurrentReader may race with in-place
///   // updaters and must handle record-level concurrency itself (e.g.,
///   // atomics or a record-level lock).
///   static void SingleReader(const Key&, const Input&, const Value&,
///                            Output&);
///   static void ConcurrentReader(const Key&, const Input&, const Value&,
///                                Output&);
///
///   // Upserts. SingleWriter has exclusive access (fresh tail record);
///   // ConcurrentWriter may race with readers and other writers.
///   static void SingleWriter(const Key&, const Value& desired, Value& dst);
///   static void ConcurrentWriter(const Key&, const Value& desired,
///                                Value& dst);
///
///   // RMW. InitialUpdater populates the value for an absent key;
///   // InPlaceUpdater runs in the mutable region and may race with
///   // readers; CopyUpdater writes the updated value into a new tail
///   // record from the (immutable) old value.
///   static void InitialUpdater(const Key&, const Input&, Value&);
///   static void InPlaceUpdater(const Key&, const Input&, Value&);
///   static void CopyUpdater(const Key&, const Input&, const Value& old,
///                           Value& dst);
///
///   // Optional: mergeable (CRDT) RMW support (Sec. 6.3). When true, RMW
///   // never blocks on the fuzzy region or storage: it appends a delta
///   // record initialized by InitialUpdater, and reads reconcile all
///   // matching records with Merge.
///   static constexpr bool kMergeable = false;
///   static void Merge(Value& accumulator, const Value& delta);
/// };
/// ```
namespace detail {

template <class F, class = void>
struct MergeableTrait : std::false_type {};
template <class F>
struct MergeableTrait<F, std::void_t<decltype(F::kMergeable)>>
    : std::bool_constant<F::kMergeable> {};

}  // namespace detail

/// True if `F` declares `static constexpr bool kMergeable = true`.
template <class F>
inline constexpr bool IsMergeable = detail::MergeableTrait<F>::value;

/// The paper's running example (Sec. 2.5): a count store where RMW
/// increments a per-key counter by the input. Used by tests, examples, and
/// the YCSB RMW benchmarks. The value is read and bumped with 64-bit
/// atomic operations so concurrent in-place updates are linearizable
/// per key (fetch-and-add, as suggested in Sec. 4).
struct CountStoreFunctions {
  using Key = uint64_t;
  using Value = uint64_t;
  using Input = uint64_t;
  using Output = uint64_t;

  static void SingleReader(const Key&, const Input&, const Value& value,
                           Output& out) {
    out = value;
  }
  static void ConcurrentReader(const Key&, const Input&, const Value& value,
                               Output& out) {
    out = reinterpret_cast<const std::atomic<uint64_t>&>(value).load(
        std::memory_order_acquire);
  }
  static void SingleWriter(const Key&, const Value& desired, Value& dst) {
    dst = desired;
  }
  static void ConcurrentWriter(const Key&, const Value& desired, Value& dst) {
    reinterpret_cast<std::atomic<uint64_t>&>(dst).store(
        desired, std::memory_order_release);
  }
  static void InitialUpdater(const Key&, const Input& input, Value& value) {
    value = input;
  }
  static void InPlaceUpdater(const Key&, const Input& input, Value& value) {
    reinterpret_cast<std::atomic<uint64_t>&>(value).fetch_add(
        input, std::memory_order_acq_rel);
  }
  static void CopyUpdater(const Key&, const Input& input, const Value& old,
                          Value& dst) {
    dst = old + input;
  }
};

/// Fixed-size opaque payloads (the paper's YCSB experiments use 8-byte and
/// 100-byte values, Sec. 7.1). Reads and writes copy the whole blob; RMW
/// treats the first 8 bytes as a counter and adds the input (modelling the
/// per-key running "sum" the paper's RMW workload performs). Record-level
/// concurrency for multi-word values is the user's responsibility per the
/// Appendix E contract; like the paper's YCSB setup, concurrent blind
/// upserts of the same key tolerate racy byte copies.
template <uint32_t N>
struct BlobStoreFunctions {
  struct Blob {
    uint8_t bytes[N];
  };
  using Key = uint64_t;
  using Value = Blob;
  using Input = uint64_t;
  using Output = Blob;

  static uint64_t Counter(const Value& v) {
    uint64_t c;
    std::memcpy(&c, v.bytes, 8);
    return c;
  }
  static void SetCounter(Value& v, uint64_t c) {
    std::memcpy(v.bytes, &c, 8);
  }

  static void SingleReader(const Key&, const Input&, const Value& value,
                           Output& out) {
    out = value;
  }
  static void ConcurrentReader(const Key&, const Input&, const Value& value,
                               Output& out) {
    out = value;
  }
  static void SingleWriter(const Key&, const Value& desired, Value& dst) {
    dst = desired;
  }
  static void ConcurrentWriter(const Key&, const Value& desired, Value& dst) {
    dst = desired;
  }
  static void InitialUpdater(const Key&, const Input& input, Value& value) {
    value = Value{};
    SetCounter(value, input);
  }
  static void InPlaceUpdater(const Key&, const Input& input, Value& value) {
    reinterpret_cast<std::atomic<uint64_t>*>(value.bytes)->fetch_add(
        input, std::memory_order_acq_rel);
  }
  static void CopyUpdater(const Key&, const Input& input, const Value& old,
                          Value& dst) {
    dst = old;
    SetCounter(dst, Counter(old) + input);
  }
};

/// Mergeable (CRDT) variant of the count store: partial counts are summed
/// on read (Sec. 6.3's canonical example).
struct MergeableCountFunctions : CountStoreFunctions {
  static constexpr bool kMergeable = true;
  static void Merge(Value& accumulator, const Value& delta) {
    accumulator += delta;
  }
};

}  // namespace faster

#endif  // FASTER_CORE_FUNCTIONS_H_
