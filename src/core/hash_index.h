#ifndef FASTER_CORE_HASH_INDEX_H_
#define FASTER_CORE_HASH_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/annotations.h"
#include "core/epoch.h"
#include "core/epoch_check.h"
#include "core/hash_bucket.h"
#include "core/key_hash.h"
#include "core/status.h"
#include "obs/stats.h"

namespace faster {

/// The FASTER hash index (Sec. 3): a concurrent, latch-free, resizable
/// array of cache-line-sized hash buckets. The index stores no keys — only
/// 8-byte entries carrying a 15-bit tag and a 48-bit record address — so it
/// stays small enough to remain entirely in memory.
///
/// Invariant (Sec. 3.2): each (bucket, tag) pair has at most one
/// non-tentative entry. Inserts maintain this with the latch-free
/// two-phase algorithm using the tentative bit.
///
/// Resizing (Appendix B): the index can be grown (doubled) on-line. During
/// a grow, operations cooperate through a three-phase state machine
/// (stable → prepare-to-resize → resizing) coordinated by the epoch
/// framework, with a per-chunk pin array guarding migration. Every index
/// operation must therefore be bracketed by an `OpScope`, which resolves
/// the correct table version and holds the chunk pin for the duration of
/// the operation (find through CAS).
class HashIndex {
 public:
  /// Result of locating (or creating) an entry: the atomic slot (for later
  /// CAS) and the entry value observed.
  struct FindResult {
    std::atomic<uint64_t>* slot = nullptr;
    HashBucketEntry entry;
  };

  /// RAII bracket around one index operation. Resolves which table version
  /// the operation runs against and, during a resize, pins the bucket's
  /// chunk (prepare phase) or helps migrate it (resizing phase).
  class OpScope {
   public:
    OpScope(HashIndex& index, KeyHash hash) FASTER_REQUIRES_EPOCH();
    ~OpScope();
    OpScope(const OpScope&) = delete;
    OpScope& operator=(const OpScope&) = delete;

   private:
    friend class HashIndex;
    HashIndex& index_;
    HashBucket* table_;
    uint64_t table_size_;
    int64_t pinned_chunk_;  // -1 if not pinned
  };

  /// Creates an index with `table_size` buckets (rounded up to a power of
  /// two, minimum 64). `epoch` must outlive the index. `tag_bits` (1..15)
  /// controls how many tag bits entries carry — Sec. 7.2.2 measures the
  /// robustness of FASTER to smaller tags (larger address sizes).
  HashIndex(uint64_t table_size, LightEpoch* epoch, uint32_t tag_bits = 15);
  ~HashIndex();

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  /// Finds the non-tentative entry matching `hash`'s tag, if any.
  /// Returns false if no such entry exists.
  bool FindEntry(const OpScope& scope, KeyHash hash, FindResult* out) const
      FASTER_REQUIRES_EPOCH();

  /// Prefetches `hash`'s bucket cache line (batched pipeline stage 1).
  /// No-op while a resize is in flight (the batch falls back to single-op
  /// execution then anyway, and the bucket location is version-dependent).
  void PrefetchBucket(KeyHash hash) const FASTER_REQUIRES_EPOCH() {
    ResizeInfo info = resize_info();
    if (info.phase != Phase::kStable) return;
    const HashBucket* table =
        tables_[info.version].load(std::memory_order_acquire);
    uint64_t size = table_size_[info.version].load(std::memory_order_acquire);
    __builtin_prefetch(&table[hash.Bucket(size)], /*rw=*/0, /*locality=*/3);
  }

  /// Batched FindEntry for the stable (non-resizing) phase: resolves all
  /// `n` hashes against one table-version snapshot, without per-op
  /// OpScope/pin overhead, so stage 3 can reuse the FindResults instead of
  /// re-probing the (now warm) buckets. `skip[i]` (optional) marks ops the
  /// caller will route to the single-op path regardless; they are not
  /// probed. Returns false — with no probing done — if a resize is in
  /// flight.
  ///
  /// Safety: this elides the OpScope chunk pin. The caller must be
  /// epoch-protected and must discard every result if it refreshes its
  /// epoch afterwards (LightEpoch::BatchScope). Under that contract the
  /// snapshot stays valid: migration out of the observed table only starts
  /// in the resizing phase, which is entered by an epoch trigger action
  /// that cannot run until this thread refreshes; table retirement is
  /// likewise epoch-deferred.
  bool TryFindEntriesStable(const KeyHash* hashes, const bool* skip, size_t n,
                            FindResult* out, bool* found) const
      FASTER_REQUIRES_EPOCH();

  /// Finds the entry matching `hash`'s tag, creating one (with an invalid
  /// address) via the two-phase tentative insert if absent.
  void FindOrCreateEntry(const OpScope& scope, KeyHash hash, FindResult* out)
      FASTER_REQUIRES_EPOCH();

  /// CAS the slot in `result` from the observed entry to a new entry with
  /// `address` and the same tag. On success updates `result->entry`; on
  /// failure reloads the current value into `result->entry`. The slot
  /// pointer is only valid under the epoch protection it was found under.
  bool TryUpdateEntry(FindResult* result, Address address)
      FASTER_REQUIRES_EPOCH();

  /// CAS the slot in `result` from the observed entry to empty (0).
  bool TryDeleteEntry(FindResult* result) FASTER_REQUIRES_EPOCH();

  /// Number of buckets in the active version.
  uint64_t size() const {
    return table_size_[resize_info().version].load(std::memory_order_acquire);
  }

  /// Counts non-empty entries (O(table); for tests and stats).
  uint64_t NumUsedEntries() const;

  /// Calls `fn(HashBucketEntry)` for every non-tentative, non-empty entry
  /// in the active table. Not safe against concurrent resizing; intended
  /// for teardown, stats, and single-threaded maintenance.
  template <class Fn>
  void ForEachEntry(Fn&& fn) const {
    ResizeInfo info = resize_info();
    const HashBucket* table = tables_[info.version].load(std::memory_order_acquire);
    uint64_t size = table_size_[info.version].load(std::memory_order_acquire);
    for (uint64_t i = 0; i < size; ++i) {
      for (const HashBucket* b = &table[i]; b != nullptr;
           b = reinterpret_cast<const HashBucket*>(
               b->overflow.load(std::memory_order_acquire))) {
        for (uint32_t j = 0; j < HashBucket::kNumEntries; ++j) {
          HashBucketEntry e{b->entries[j].load(std::memory_order_acquire)};
          if (!e.IsUnused() && !e.tentative()) fn(e);
        }
      }
    }
  }

  /// Inspector sampling for /debug/index: visits the first
  /// `min(size, max_buckets)` buckets of the active table, calling
  /// `bucket_fn(live_entries, overflow_buckets)` once per bucket and
  /// `entry_fn(HashBucketEntry)` for each live (non-tentative) entry seen.
  /// Returns false without probing if a resize is in flight. The caller
  /// must be epoch-protected so entry addresses remain dereferenceable.
  template <class BucketFn, class EntryFn>
  bool SampleBuckets(uint64_t max_buckets, BucketFn&& bucket_fn,
                     EntryFn&& entry_fn) const FASTER_REQUIRES_EPOCH() {
    ResizeInfo info = resize_info();
    if (info.phase != Phase::kStable) return false;
    const HashBucket* table =
        tables_[info.version].load(std::memory_order_acquire);
    uint64_t size = table_size_[info.version].load(std::memory_order_acquire);
    uint64_t n = size < max_buckets ? size : max_buckets;
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t live = 0;
      uint32_t overflow = 0;
      for (const HashBucket* b = &table[i]; b != nullptr;
           b = reinterpret_cast<const HashBucket*>(
               b->overflow.load(std::memory_order_acquire))) {
        if (b != &table[i]) ++overflow;
        for (uint32_t j = 0; j < HashBucket::kNumEntries; ++j) {
          HashBucketEntry e{b->entries[j].load(std::memory_order_acquire)};
          if (e.IsUnused() || e.tentative()) continue;
          ++live;
          entry_fn(e);
        }
      }
      bucket_fn(live, overflow);
    }
    return true;
  }

  /// Configured tag width in bits (1..15).
  uint32_t tag_bits() const {
    return static_cast<uint32_t>(__builtin_popcount(tag_mask_));
  }

  /// Doubles the index on-line (Appendix B). Must be called from an
  /// epoch-protected thread; concurrent operations cooperate. Blocks until
  /// the grow completes.
  void Grow() FASTER_REQUIRES_EPOCH();

  /// True while a grow is in progress.
  bool IsResizing() const {
    return resize_info().phase != Phase::kStable;
  }

  /// Serializes the active table (fuzzy: entries are read atomically but
  /// the snapshot is not point-in-time consistent; see Sec. 6.5). Must not
  /// be called during a grow. `transform`, if provided, maps each slot to
  /// the entry value to persist (the read cache uses it to swing cached
  /// addresses back to the primary log, Appendix D); the default drops
  /// tentative entries and persists the rest verbatim.
  using EntryTransform =
      std::function<uint64_t(const std::atomic<uint64_t>&)>;
  Status WriteCheckpoint(int fd, const EntryTransform& transform = {}) const
      FASTER_REQUIRES_EPOCH();
  /// Restores a table written by WriteCheckpoint. The index must be
  /// otherwise idle.
  Status ReadCheckpoint(int fd);

  /// Observability (compiled out unless FASTER_STATS): probe depth, CAS
  /// contention, tentative-insert conflicts, and grow progress.
  struct ObsStats {
    obs::StatCounter finds;             // FindEntry calls
    obs::StatCounter find_hits;         // FindEntry tag matches
    obs::StatCounter cas_retries;       // failed TryUpdate/TryDelete CASes
    obs::StatCounter tentative_conflicts;  // two-phase insert back-offs
    obs::StatCounter overflow_allocs;   // overflow buckets allocated
    obs::StatCounter grow_chunks_migrated;
    obs::StatHistogram probe_len;       // entries examined per chain scan
  };
  const ObsStats& obs_stats() const { return obs_stats_; }

  /// Registers this index's metrics under `prefix.` names.
  void RegisterStats(obs::StatRegistry& registry,
                     const std::string& prefix) const {
    registry.Add(prefix + ".finds", &obs_stats_.finds);
    registry.Add(prefix + ".find_hits", &obs_stats_.find_hits);
    registry.Add(prefix + ".cas_retries", &obs_stats_.cas_retries);
    registry.Add(prefix + ".tentative_conflicts",
                 &obs_stats_.tentative_conflicts);
    registry.Add(prefix + ".overflow_allocs", &obs_stats_.overflow_allocs);
    registry.Add(prefix + ".grow_chunks_migrated",
                 &obs_stats_.grow_chunks_migrated);
    registry.Add(prefix + ".probe_len", &obs_stats_.probe_len);
  }

 private:
  enum class Phase : uint8_t { kStable = 0, kPrepare = 1, kResizing = 2 };

  /// Packed resize state: active version (0/1) and phase.
  struct ResizeInfo {
    Phase phase;
    uint8_t version;
  };

  static constexpr uint64_t kChunkSize = 4096;  // buckets per resize chunk

  ResizeInfo resize_info() const {
    uint16_t v = resize_state_.load(std::memory_order_acquire);
    return ResizeInfo{static_cast<Phase>(v & 0xff),
                      static_cast<uint8_t>(v >> 8)};
  }
  void set_resize_state(Phase phase, uint8_t version) {
    resize_state_.store(static_cast<uint16_t>(phase) |
                            (static_cast<uint16_t>(version) << 8),
                        std::memory_order_release);
  }

  /// Allocates a zeroed, cache-aligned bucket array.
  static HashBucket* AllocateTable(uint64_t num_buckets);

  /// Overflow-bucket allocation for table version `version`.
  HashBucket* AllocateOverflowBucket(uint8_t version);

  /// Walks a bucket chain looking for `tag`; returns slot/value of the
  /// non-tentative match, and optionally the first free slot seen.
  bool ScanChain(HashBucket* bucket, uint16_t tag, FindResult* match,
                 std::atomic<uint64_t>** free_slot, uint8_t version);

  /// Migrates chunk `chunk` from the old to the new table. Caller must
  /// have claimed the chunk via the pin array.
  void MigrateChunk(uint64_t chunk);
  /// Ensures `chunk` has been migrated, helping if necessary.
  void EnsureMigrated(uint64_t chunk);

  /// Masks KeyHash tags down to the configured width.
  uint16_t EffectiveTag(KeyHash hash) const {
    return static_cast<uint16_t>(hash.Tag() & tag_mask_);
  }

  LightEpoch* epoch_;
  uint16_t tag_mask_ = 0x7fff;
  // Atomic because OpScope resolves the active table concurrently with
  // Grow() swapping and retiring versions; the epoch protocol keeps the
  // *contents* alive, but the pointer/size reads themselves are racy.
  // order: release stores in Grow/checkpoint-restore (install or retire a
  // version, publishing the array it points to); acquire loads in
  // OpScope/MigrateChunk/stats; relaxed load only to free a retired
  // version no reader can reach (destructor, next Grow).
  std::atomic<HashBucket*> tables_[2] = {nullptr, nullptr};
  // order: release store paired with the tables_ install; acquire loads.
  std::atomic<uint64_t> table_size_[2] = {0, 0};
  // order: release store on every phase transition (writes to the new
  // version's arrays happen-before the announcement); acquire load in
  // resize_info().
  std::atomic<uint16_t> resize_state_;

  // Resize machinery (Appendix B).
  // order: acq_rel CAS pins a chunk (or claims it for migration with
  // kChunkLocked) and acq_rel fetch_sub unpins; acquire loads observe the
  // pin state before deciding.
  std::vector<std::unique_ptr<std::atomic<int64_t>>> pins_;
  // order: release store after MigrateChunk's writes land (publishes the
  // migrated buckets); acquire loads in EnsureMigrated's wait loops.
  std::vector<std::unique_ptr<std::atomic<bool>>> migrated_;
  // order: acq_rel fetch_add per migrated chunk; acquire load in Grow's
  // completion wait; release store resets the counter before the resize
  // phase is announced.
  std::atomic<uint64_t> num_migrated_chunks_{0};
  uint64_t num_chunks_ = 0;
  std::mutex grow_mutex_;  // serializes concurrent Grow() callers only

  // Overflow bucket pools, per version.
  mutable std::mutex overflow_mutex_;
  std::vector<HashBucket*> overflow_pool_[2];

  // Mutable: FindEntry is const but still counts probes.
  mutable ObsStats obs_stats_;
};

}  // namespace faster

#endif  // FASTER_CORE_HASH_INDEX_H_
