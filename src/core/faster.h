#ifndef FASTER_CORE_FASTER_H_
#define FASTER_CORE_FASTER_H_

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "core/address.h"
#include "core/annotations.h"
#include "core/epoch.h"
#include "core/epoch_check.h"
#include "core/functions.h"
#include "core/hash_index.h"
#include "core/hybrid_log.h"
#include "core/key_hash.h"
#include "core/record.h"
#include "core/status.h"
#include "core/thread.h"
#include "device/device.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/slowlog.h"
#include "obs/span.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace faster {

/// FasterKv: the FASTER concurrent key-value store (the paper's primary
/// contribution), combining the latch-free hash index (Sec. 3), the
/// HybridLog record allocator (Sec. 5-6), and the epoch protection
/// framework (Sec. 2.3) into a store supporting Read, Upsert (blind
/// update), RMW (read-modify-write), and Delete with data larger than
/// memory.
///
/// `F` is the user's Functions policy (see functions.h / Appendix E);
/// `Hasher` maps keys to 64-bit hashes.
///
/// Threading model (Sec. 2.5): each thread calls `StartSession()` before
/// issuing operations and `StopSession()` when done. Operations refresh
/// the thread's epoch automatically every `Config::refresh_interval` ops;
/// threads should call `CompletePending()` periodically to process
/// operations that returned `Status::kPending` (asynchronous storage reads
/// and fuzzy-region RMW retries, Sec. 6.2-6.3).
template <class F, class Hasher = DefaultKeyHasher<typename F::Key>>
class FasterKv {
 public:
  using Key = typename F::Key;
  using Value = typename F::Value;
  using Input = typename F::Input;
  using Output = typename F::Output;
  using RecordT = Record<Key, Value>;

  static constexpr bool kMergeable = IsMergeable<F>;

  /// Kinds of user operations, reported to the completion callback.
  enum class UserOp : uint8_t { kRead, kRmw };

  /// Appendix E: FASTER invokes CompletionCallback with the user-provided
  /// context associated with a pending operation, when completed. The
  /// callback runs on the issuing thread, inside CompletePending().
  using CompletionCallback = void (*)(UserOp op, Status result,
                                      void* user_context);

  struct Config {
    /// Number of hash buckets (rounded to a power of two). The paper sizes
    /// this at #keys/2 (each bucket holds 7 entries).
    uint64_t table_size = uint64_t{1} << 16;
    /// HybridLog sizing: in-memory buffer and mutable-region fraction.
    LogConfig log;
    /// If true, disable in-place updates entirely: every update appends to
    /// the tail (the Sec. 5 append-only strawman; used for Fig. 11).
    bool force_rcu = false;
    /// Refresh the epoch every this many operations (Sec. 2.5 uses 256).
    uint32_t refresh_interval = 256;
    /// Tag width in the hash index (1..15 bits; Sec. 7.2.2).
    uint32_t tag_bits = 15;
    /// Enable the read cache for read-hot records (Appendix D): a second
    /// HybridLog instance, never flushed, holding copies of records read
    /// from storage; index entries may point into it (high address bit).
    /// Not supported for mergeable (CRDT) stores.
    bool enable_read_cache = false;
    /// Sizing of the read-cache log (memory_size_bytes and the mutable /
    /// read-only split, which controls the cache's second-chance degree).
    LogConfig read_cache;
    /// Invoked when an operation that returned kPending completes
    /// (Appendix E's CompletionCallback). May be null.
    CompletionCallback completion_callback = nullptr;
  };

  /// `device` must outlive the store.
  FasterKv(const Config& config, IDevice* device)
      : config_{config},
        epoch_{},
        index_{config.table_size, &epoch_, config.tag_bits},
        hlog_{config.log, device, &epoch_},
        thread_states_(Thread::kMaxThreads) {
    if (config_.enable_read_cache && !kMergeable) {
      LogConfig rc_cfg = config_.read_cache;
      rc_cfg.read_cache_mode = true;  // evict without flushing
      rc_log_ = std::make_unique<HybridLog>(rc_cfg, device, &epoch_);
      rc_log_->SetEvictionCallback(
          [this](Address from, Address to) { RcEvict(from, to); });
    }
  }

  ~FasterKv() {
    if (flight_attached_) obs::FlightRecorder::Instance().Detach(this);
    // Outstanding epoch trigger actions (page flush/close, safe-read-only
    // propagation) reference the log and index; run them before members
    // are destroyed. All sessions must have stopped by now.
    epoch_.Protect();
    epoch_.SpinWaitForSafety(epoch_.CurrentEpoch() - 1);
    epoch_.Unprotect();
    // Make sure no device callback can touch thread_states_ afterwards.
    hlog_.device()->Drain();
  }

  FasterKv(const FasterKv&) = delete;
  FasterKv& operator=(const FasterKv&) = delete;

  // -------------------------------------------------------------------
  // Sessions (Sec. 2.5).
  // -------------------------------------------------------------------

  /// Registers the calling thread with the epoch protection framework.
  void StartSession() FASTER_ACQUIRES_EPOCH() { epoch_.Protect(); }

  /// Completes outstanding work for this thread and deregisters it.
  void StopSession() FASTER_RELEASES_EPOCH() {
    CompletePending(/*wait=*/true);
    epoch_.Unprotect();
  }

  /// Moves the calling thread to the current epoch and runs ready trigger
  /// actions. Called automatically every `refresh_interval` operations.
  void Refresh() FASTER_REQUIRES_EPOCH() { epoch_.Refresh(); }

  /// RAII session bracket: StartSession() on construction, StopSession()
  /// (which drains this thread's pending work) on destruction. The
  /// scoped-capability annotation lets `clang++ -Wthread-safety` verify
  /// epoch bracketing through long-lived holders — e.g. the network
  /// server's worker threads, which hold one Session for their lifetime
  /// and serve every connection mapped to them under it (net/server.cc).
  class FASTER_SCOPED_EPOCH Session {
   public:
    explicit Session(FasterKv& store) FASTER_ACQUIRES_EPOCH() : store_{store} {
      store_.StartSession();
    }
    ~Session() FASTER_RELEASES_EPOCH() { store_.StopSession(); }

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

   private:
    FasterKv& store_;
  };

  // -------------------------------------------------------------------
  // Operations (Sec. 2.2; Algorithms 2-4).
  // -------------------------------------------------------------------

  /// Reads the value for `key` into `*output` (via F::SingleReader or
  /// F::ConcurrentReader depending on the record's region, Alg. 2).
  /// Returns kPending if the record lives on storage; `output` must then
  /// stay valid until the operation completes via CompletePending(),
  /// which reports `user_context` through the completion callback
  /// (Appendix E).
  Status Read(const Key& key, const Input& input, Output* output,
              void* user_context = nullptr) FASTER_REQUIRES_EPOCH() {
    ThreadState& ts = AutoRefresh();
    ++ts.reads;
    obs::StatOpSpan span{obs::SpanKind::kRead};
    obs::StatSlowOpScope slow_scope{obs::SlowOpKind::kRead};
    KeyHash hash = Hasher{}(key);
    slow_scope.set_key_hash(hash.control());
    for (;;) {
      typename HashIndex::OpScope scope{index_, hash};
      HashIndex::FindResult fr;
      if (!index_.FindEntry(scope, hash, &fr)) {
        obs_stats_.read_miss.Inc();
        return Status::kNotFound;
      }
      Address addr;
      RecordT* rc_rec = nullptr;
      if (!ResolveEntry(fr, &addr, &rc_rec)) {
        // The cache page was evicted but the entry is not yet redirected;
        // drive the epoch and retry (Appendix D).
        epoch_.Refresh();
        continue;
      }
      if (rc_rec != nullptr && rc_rec->key == key) {
        // Read-cache hit. A hit in the cache's read-only region earns the
        // record a second chance at the cache tail (Appendix D).
        if (StripRc(fr.entry.address()) < rc_log_->read_only_address()) {
          RcSecondChance(key, rc_rec, fr);
        }
        F::SingleReader(key, input, rc_rec->value, *output);
        ++ts.rc_hits;
        obs_stats_.read_rc.Inc();
        return Status::kOk;
      }
      Address begin = hlog_.begin_address();
      if (!addr.IsValid() || addr < begin) {
        if (rc_rec == nullptr) {
          // Stale entry left behind by log truncation (Appendix C).
          index_.TryDeleteEntry(&fr);
        }
        obs_stats_.read_miss.Inc();
        return Status::kNotFound;
      }
      if constexpr (kMergeable) {
        return MergeableRead(ts, key, hash, addr, output);
      }
      Address head = hlog_.head_address();
      Address min_mem = std::max(head, begin);
      RecordT* rec = nullptr;
      addr = TraceBack(key, addr, min_mem, &rec);
      if (rec != nullptr) {
        if (rec->info().tombstone()) {
          obs_stats_.read_miss.Inc();
          return Status::kNotFound;
        }
        if (addr < hlog_.safe_read_only_address()) {
          obs_stats_.read_readonly.Inc();
          F::SingleReader(key, input, rec->value, *output);
        } else {
          if constexpr (obs::kStatsEnabled) {
            // Classification only; avoid the extra load when compiled out.
            if (addr >= hlog_.read_only_address()) {
              obs_stats_.read_mutable.Inc();
            } else {
              obs_stats_.read_fuzzy.Inc();
            }
          }
          F::ConcurrentReader(key, input, rec->value, *output);
        }
        return Status::kOk;
      }
      if (!addr.IsValid() || addr < begin) {
        // The index tag matched but no record carried the key: a tag
        // false positive (Sec. 3.2) or a truncated chain.
        obs_stats_.tag_false_positives.Inc();
        obs_stats_.read_miss.Inc();
        return Status::kNotFound;
      }
      // The chain continues on storage: go asynchronous (Sec. 5.3).
      obs_stats_.read_stable.Inc();
      return IssuePendingIo(ts, OpType::kRead, key, hash, input, output,
                            addr, user_context);
    }
  }

  /// Blind upsert (Alg. 3): replaces the value for `key`, in place if the
  /// newest record is in the mutable region, otherwise by appending a new
  /// record. Never performs storage reads. Always completes synchronously.
  Status Upsert(const Key& key, const Value& value) FASTER_REQUIRES_EPOCH() {
    ThreadState& ts = AutoRefresh();
    ++ts.upserts;
    obs::StatOpSpan span{obs::SpanKind::kUpsert};
    obs::StatSlowOpScope slow_scope{obs::SlowOpKind::kUpsert};
    KeyHash hash = Hasher{}(key);
    slow_scope.set_key_hash(hash.control());
    for (;;) {
      typename HashIndex::OpScope scope{index_, hash};
      HashIndex::FindResult fr;
      index_.FindOrCreateEntry(scope, hash, &fr);
      Address addr;
      RecordT* rc_rec = nullptr;
      if (!ResolveEntry(fr, &addr, &rc_rec)) {
        epoch_.Refresh();
        continue;
      }
      Address begin = hlog_.begin_address();
      Address head = hlog_.head_address();
      RecordT* rec = nullptr;
      if (rc_rec == nullptr && addr.IsValid() && addr >= begin &&
          addr >= head) {
        Address found = TraceBack(key, addr, std::max(head, begin), &rec);
        if (rec != nullptr && !rec->info().tombstone() && !config_.force_rcu &&
            found >= hlog_.read_only_address()) {
          // Mutable region: in-place update (Table 1 row 4).
          hlog_.VerifyMutableAddress(found);
          F::ConcurrentWriter(key, value, rec->value);
          obs_stats_.upsert_inplace.Inc();
          return Status::kOk;
        }
      }
      // Every other region (read-only, fuzzy, on disk, absent, or behind a
      // read-cache entry): append a new record — blind updates need not
      // read the old value (Table 2). The new record's chain skips any
      // cache record (its copy lives on the primary log already).
      Address new_addr = TryAllocateRecord();
      if (!new_addr.IsValid()) continue;  // Epoch refreshed; restart.
      RecordT* new_rec = RecordAt(new_addr);
      new_rec->key = key;
      F::SingleWriter(key, value, new_rec->value);
      new_rec->set_info(RecordInfo{addr, false, false});
      if (index_.TryUpdateEntry(&fr, new_addr)) {
        ++ts.appended_records;
        obs_stats_.upsert_append.Inc();
        // Appendix C: flag the superseded in-memory version for GC.
        if (rec != nullptr) rec->SetOverwritten();
        return Status::kOk;
      }
      new_rec->SetInvalid();  // Lost the CAS; record is garbage.
    }
  }

  /// Read-modify-write (Alg. 4): updates the value using F's updaters.
  /// May return kPending (storage read, or deferred retry when the record
  /// falls in the fuzzy region, Sec. 6.2-6.3); completion is reported via
  /// the completion callback with `user_context` (Appendix E).
  Status Rmw(const Key& key, const Input& input,
             void* user_context = nullptr) FASTER_REQUIRES_EPOCH() {
    ThreadState& ts = AutoRefresh();
    ++ts.rmws;
    obs::StatOpSpan span{obs::SpanKind::kRmw};
    obs::StatSlowOpScope slow_scope{obs::SlowOpKind::kRmw};
    KeyHash hash = Hasher{}(key);
    slow_scope.set_key_hash(hash.control());
    RmwOutcome oc = RmwInMemory(ts, key, hash, input, DiskState::kNone,
                                nullptr, Address::Invalid());
    switch (oc.kind) {
      case RmwOutcome::kDone:
        return oc.status;
      case RmwOutcome::kIo:
        return IssuePendingIo(ts, OpType::kRmw, key, hash, input, nullptr,
                              oc.io_address, user_context);
      case RmwOutcome::kFuzzy: {
        // Fuzzy region (Sec. 6.2): defer to the pending list; retried at
        // CompletePending once the safe read-only offset catches up.
        ++ts.fuzzy_rmws;
        obs_stats_.rmw_fuzzy_deferred.Inc();
        obs_stats_.pending_retries.Inc();
        trace_.Emit(obs::Ev::kFuzzyRmwDeferred, Thread::Id());
        auto* ctx = new PendingContext(this, OpType::kRmw, key, hash, input,
                                       nullptr, Thread::Id());
        ctx->user_context = user_context;
        CaptureTrace(ctx);
        ts.retries.push_back(ctx);
        return Status::kPending;
      }
    }
    return Status::kAborted;  // unreachable
  }

  /// Deletes `key` (Sec. 4 / Sec. 5.3): sets the tombstone bit in place in
  /// the mutable region, otherwise appends a tombstone record.
  Status Delete(const Key& key) FASTER_REQUIRES_EPOCH() {
    ThreadState& ts = AutoRefresh();
    ++ts.deletes;
    obs::StatOpSpan span{obs::SpanKind::kDelete};
    obs::StatSlowOpScope slow_scope{obs::SlowOpKind::kDelete};
    KeyHash hash = Hasher{}(key);
    slow_scope.set_key_hash(hash.control());
    for (;;) {
      typename HashIndex::OpScope scope{index_, hash};
      HashIndex::FindResult fr;
      if (!index_.FindEntry(scope, hash, &fr)) return Status::kNotFound;
      Address addr;
      RecordT* rc_rec = nullptr;
      if (!ResolveEntry(fr, &addr, &rc_rec)) {
        epoch_.Refresh();
        continue;
      }
      Address begin = hlog_.begin_address();
      if (!addr.IsValid() || addr < begin) {
        if (rc_rec != nullptr) {
          // The cached key's only version was truncated away.
          index_.TryUpdateEntry(&fr, addr);
          return Status::kNotFound;
        }
        index_.TryDeleteEntry(&fr);
        return Status::kNotFound;
      }
      Address head = hlog_.head_address();
      RecordT* rec = nullptr;
      Address found = Address::Invalid();
      if (addr >= head) {
        found = TraceBack(key, addr, std::max(head, begin), &rec);
      } else {
        found = addr;  // chain starts on disk
      }
      if (rec != nullptr) {
        if (rec->info().tombstone()) return Status::kNotFound;
        if (!config_.force_rcu && found >= hlog_.read_only_address()) {
          hlog_.VerifyMutableAddress(found);
          rec->SetTombstone();
          obs_stats_.delete_inplace.Inc();
          return Status::kOk;
        }
      } else if (!found.IsValid() || found < begin) {
        return Status::kNotFound;  // key definitely absent in memory & log
      }
      // Read-only / fuzzy / on-disk: append a tombstone record (blind).
      Address new_addr = TryAllocateRecord();
      if (!new_addr.IsValid()) continue;
      RecordT* new_rec = RecordAt(new_addr);
      new_rec->key = key;
      new_rec->value = Value{};
      new_rec->set_info(RecordInfo{addr, false, /*tombstone=*/true});
      if (index_.TryUpdateEntry(&fr, new_addr)) {
        ++ts.appended_records;
        obs_stats_.delete_append.Inc();
        if (rec != nullptr) rec->SetOverwritten();  // Appendix C
        return Status::kOk;
      }
      new_rec->SetInvalid();
    }
  }

  // -------------------------------------------------------------------
  // Batched operations (software pipelining / group prefetching; see
  // DESIGN.md "Batched pipeline"). Each chunk of up to kBatchChunk ops is
  // processed in three stages: (1) hash every key and prefetch its hash
  // bucket, (2) resolve all index entries against one stable-table
  // snapshot and prefetch the head records, (3) execute each op against
  // the now-warm cache lines. Ops the fast path cannot serve (resize in
  // flight, read-cache entries, tentative/CAS conflicts, intra-batch
  // dependencies, page rollovers) fall through to the single-op methods,
  // so results are always identical to executing the ops sequentially in
  // issue order. All on-disk reads discovered in a chunk are issued as one
  // coalesced device submission and complete through CompletePending() as
  // usual. One epoch refresh check covers the whole chunk.
  // -------------------------------------------------------------------

  /// Largest number of ops processed per pipeline pass; bigger batches are
  /// split. 64 keeps the per-chunk stack state small while exceeding the
  /// memory-level parallelism of current cores.
  static constexpr size_t kBatchChunk = 64;

  /// One operation in a mixed batch. For reads, `output` must be non-null
  /// and (like the single-op API) stay valid until the op completes if its
  /// status comes back kPending.
  struct BatchOp {
    enum class Kind : uint8_t { kRead, kUpsert, kRmw };
    Kind kind = Kind::kRead;
    Key key{};
    Input input{};            // read input / RMW operand
    Value value{};            // upsert payload
    Output* output = nullptr; // reads only
    void* user_context = nullptr;
    Status status = Status::kOk;  // result, per op
  };

  /// Executes `count` mixed ops with the staged pipeline, filling each
  /// op's `status`. Results are identical to calling Read/Upsert/Rmw
  /// sequentially on the same thread in array order.
  void ExecuteBatch(BatchOp* ops, size_t count) FASTER_REQUIRES_EPOCH() {
    size_t done = 0;
    while (done < count) {
      size_t n = std::min(count - done, kBatchChunk);
      ExecuteChunk(ops + done, n);
      done += n;
    }
  }

  /// Batched reads: outputs[i] receives the value for keys[i] and
  /// statuses[i] the per-op result (kPending completes via
  /// CompletePending, reporting user_contexts[i] if provided).
  void ReadBatch(const Key* keys, const Input* inputs, Output* outputs,
                 Status* statuses, size_t count,
                 void* const* user_contexts = nullptr)
      FASTER_REQUIRES_EPOCH() {
    BatchOp ops[kBatchChunk];
    size_t done = 0;
    while (done < count) {
      size_t n = std::min(count - done, kBatchChunk);
      for (size_t i = 0; i < n; ++i) {
        ops[i] = BatchOp{};
        ops[i].kind = BatchOp::Kind::kRead;
        ops[i].key = keys[done + i];
        ops[i].input = inputs[done + i];
        ops[i].output = &outputs[done + i];
        if (user_contexts != nullptr) {
          ops[i].user_context = user_contexts[done + i];
        }
      }
      ExecuteChunk(ops, n);
      for (size_t i = 0; i < n; ++i) statuses[done + i] = ops[i].status;
      done += n;
    }
  }

  /// Batched blind upserts; always complete synchronously.
  void UpsertBatch(const Key* keys, const Value* values, Status* statuses,
                   size_t count) FASTER_REQUIRES_EPOCH() {
    BatchOp ops[kBatchChunk];
    size_t done = 0;
    while (done < count) {
      size_t n = std::min(count - done, kBatchChunk);
      for (size_t i = 0; i < n; ++i) {
        ops[i] = BatchOp{};
        ops[i].kind = BatchOp::Kind::kUpsert;
        ops[i].key = keys[done + i];
        ops[i].value = values[done + i];
      }
      ExecuteChunk(ops, n);
      for (size_t i = 0; i < n; ++i) statuses[done + i] = ops[i].status;
      done += n;
    }
  }

  /// Batched RMWs; kPending statuses complete via CompletePending.
  void RmwBatch(const Key* keys, const Input* inputs, Status* statuses,
                size_t count, void* const* user_contexts = nullptr)
      FASTER_REQUIRES_EPOCH() {
    BatchOp ops[kBatchChunk];
    size_t done = 0;
    while (done < count) {
      size_t n = std::min(count - done, kBatchChunk);
      for (size_t i = 0; i < n; ++i) {
        ops[i] = BatchOp{};
        ops[i].kind = BatchOp::Kind::kRmw;
        ops[i].key = keys[done + i];
        ops[i].input = inputs[done + i];
        if (user_contexts != nullptr) {
          ops[i].user_context = user_contexts[done + i];
        }
      }
      ExecuteChunk(ops, n);
      for (size_t i = 0; i < n; ++i) statuses[done + i] = ops[i].status;
      done += n;
    }
  }

  /// Processes this thread's pending work: storage-read completions and
  /// fuzzy-region RMW retries. If `wait`, blocks (refreshing the epoch)
  /// until everything this thread issued has completed. Returns true if
  /// nothing remains pending.
  bool CompletePending(bool wait = false) FASTER_REQUIRES_EPOCH() {
    assert(epoch_.IsProtected());
    ThreadState& ts = thread_states_[Thread::Id()];
    for (;;) {
      // Completion polling (DESIGN.md §13): on a polling device this
      // executes and reaps this thread's queued I/O right here — the
      // callbacks push into ts.completions with no cross-thread hop. On
      // thread-pool devices it returns 0 and completions arrive from the
      // pool as before.
      hlog_.device()->Poll();
      ProcessRetries(ts);
      ProcessCompletions(ts);
      bool done = ts.outstanding_ios == 0 && ts.retries.empty();
      if (done || !wait) return done;
      epoch_.Refresh();
      std::this_thread::yield();
    }
  }

  // -------------------------------------------------------------------
  // Checkpointing and recovery (Sec. 6.5).
  // -------------------------------------------------------------------

  /// Takes a fuzzy checkpoint into `dir` (created if needed): records the
  /// tail t1, snapshots the index without locks, records t2, then moves
  /// the read-only offset to the tail and waits for the flush. Requires an
  /// active session; other threads may keep operating (the checkpoint does
  /// not quiesce the store).
  Status Checkpoint(const std::string& dir) FASTER_REQUIRES_EPOCH() {
    assert(epoch_.IsProtected());
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    obs_stats_.checkpoints.Inc();
    trace_.Emit(obs::Ev::kCheckpointBegin);
    uint64_t t0 = 0;
    if constexpr (obs::kStatsEnabled) t0 = obs::NowNs();
    Address t1 = hlog_.tail_address();
    int fd = ::open((dir + "/index.dat").c_str(),
                    O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      trace_.Emit(obs::Ev::kCheckpointEnd, 1);
      return Status::kIoError;
    }
    HashIndex::EntryTransform transform;
    if (rc_log_ != nullptr) {
      // Appendix D: persisted index entries must point at the primary log,
      // so cached addresses are swung back to the address they displaced.
      transform = [this](const std::atomic<uint64_t>& slot) -> uint64_t {
        // Runs inside WriteCheckpoint on the checkpointing thread, which
        // holds an active session (lambdas are analyzed in isolation).
        AssertEpochProtected(epoch_);
        for (;;) {
          HashBucketEntry e{slot.load(std::memory_order_acquire)};
          if (e.tentative()) return 0;
          Address a = e.address();
          if (!InReadCache(a)) return e.control();
          Address rc = StripRc(a);
          if (rc >= rc_log_->head_address()) {
            Address prev = RcRecordAt(rc)->info().previous_address();
            return HashBucketEntry{prev, e.tag(), false}.control();
          }
          // Eviction redirect in flight: drive the epoch and re-read.
          epoch_.Refresh();
          std::this_thread::yield();
        }
      };
    }
    Status s = index_.WriteCheckpoint(fd, transform);
    ::close(fd);
    if constexpr (obs::kStatsEnabled) {
      obs_stats_.checkpoint_index_ns.Record(obs::NowNs() - t0);
    }
    if (s != Status::kOk) {
      trace_.Emit(obs::Ev::kCheckpointEnd, 1);
      return s;
    }
    Address t2 = hlog_.tail_address();
    // Flush the log through t2 (and beyond, to the current tail).
    if constexpr (obs::kStatsEnabled) t0 = obs::NowNs();
    hlog_.ShiftReadOnlyToTail(/*wait=*/true);
    if constexpr (obs::kStatsEnabled) {
      obs_stats_.checkpoint_flush_ns.Record(obs::NowNs() - t0);
    }
    if (hlog_.io_error()) {
      trace_.Emit(obs::Ev::kCheckpointEnd, 1);
      return Status::kIoError;
    }
    CheckpointMetadata meta{kCheckpointMagic, t1.control(), t2.control(),
                            hlog_.begin_address().control(),
                            RecordT::size()};
    fd = ::open((dir + "/meta.dat").c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                0644);
    if (fd < 0) {
      trace_.Emit(obs::Ev::kCheckpointEnd, 1);
      return Status::kIoError;
    }
    bool ok = ::write(fd, &meta, sizeof(meta)) == sizeof(meta);
    ::close(fd);
    trace_.Emit(obs::Ev::kCheckpointEnd, ok ? 0 : 1);
    return ok ? Status::kOk : Status::kIoError;
  }

  /// Recovers a freshly constructed store from a checkpoint in `dir`. The
  /// device must contain the flushed log. Restores the fuzzy index, then
  /// repairs it by scanning log records in [t1, t2) in order (Sec. 6.5).
  /// Must be called before any session starts.
  Status Recover(const std::string& dir) FASTER_EXCLUDES_EPOCH() {
    CheckpointMetadata meta;
    int fd = ::open((dir + "/meta.dat").c_str(), O_RDONLY);
    if (fd < 0) return Status::kIoError;
    bool ok = ::read(fd, &meta, sizeof(meta)) == sizeof(meta);
    ::close(fd);
    if (!ok) return Status::kIoError;
    if (meta.magic != kCheckpointMagic || meta.record_size != RecordT::size()) {
      return Status::kCorruption;
    }
    fd = ::open((dir + "/index.dat").c_str(), O_RDONLY);
    if (fd < 0) return Status::kIoError;
    Status s = index_.ReadCheckpoint(fd);
    ::close(fd);
    if (s != Status::kOk) return s;

    Address t1{meta.t1}, t2{meta.t2}, begin{meta.begin};
    hlog_.RecoverTo(begin, t2);

    // Repair pass: every index update during the fuzzy snapshot interval
    // corresponds to a record in [t1, t2); replaying them in order leaves
    // each entry pointing at the newest record below t2 for its tag.
    Status scan_status = Status::kOk;
    epoch_.Protect();
    ScanDiskRange(t1, t2, [&](Address addr, const RecordT& rec) {
      // Bracketed by the Protect/Unprotect above; the lambda body is
      // analyzed in isolation, so re-establish the capability here.
      AssertEpochProtected(epoch_);
      if (rec.info().invalid()) return;
      KeyHash hash = Hasher{}(rec.key);
      typename HashIndex::OpScope scope{index_, hash};
      HashIndex::FindResult fr;
      index_.FindOrCreateEntry(scope, hash, &fr);
      while (fr.entry.address() < addr) {
        if (index_.TryUpdateEntry(&fr, addr)) break;
      }
    });
    epoch_.Unprotect();
    return scan_status;
  }

  // -------------------------------------------------------------------
  // Log management.
  // -------------------------------------------------------------------

  /// Expiration-based garbage collection (Appendix C): truncates the log
  /// below `new_begin`. Stale index entries are deleted lazily as
  /// operations encounter them.
  bool ShiftBeginAddress(Address new_begin) {
    return hlog_.ShiftBeginAddress(new_begin);
  }

  /// Doubles the hash index on-line (Appendix B). Requires an active
  /// session; all live sessions must keep issuing operations (or Refresh)
  /// for the grow to complete.
  void GrowIndex() FASTER_REQUIRES_EPOCH() {
    assert(epoch_.IsProtected());
    if constexpr (obs::kStatsEnabled) {
      trace_.Emit(obs::Ev::kGrowBegin,
                  static_cast<uint32_t>(std::bit_width(index_.size()) - 1));
    }
    index_.Grow();
    if constexpr (obs::kStatsEnabled) {
      trace_.Emit(obs::Ev::kGrowEnd,
                  static_cast<uint32_t>(std::bit_width(index_.size()) - 1));
    }
  }

  /// Roll-to-tail log compaction (Appendix C): scans [begin, until),
  /// copies records that are still the newest version of their key to the
  /// tail, then truncates the log below `until`. Safe against concurrent
  /// operations (copies install via compare-and-swap and retry if the key
  /// is updated mid-copy). Records carrying the overwrite bit skip the
  /// liveness check entirely — the common case for hot-then-cold data.
  /// Requires an active session. Not supported for mergeable stores
  /// (deltas cannot be relocated independently).
  struct CompactionStats {
    uint64_t scanned = 0;
    uint64_t dead_by_overwrite_bit = 0;
    uint64_t dead_by_trace = 0;
    uint64_t copied = 0;
  };
  Status CompactLog(Address until, CompactionStats* stats = nullptr)
      FASTER_REQUIRES_EPOCH() {
    assert(epoch_.IsProtected());
    static_assert(!kMergeable || sizeof(F) >= 0);
    if constexpr (kMergeable) {
      return Status::kInvalid;
    }
    CompactionStats local;
    Address begin = hlog_.begin_address();
    until = std::min(until, hlog_.safe_read_only_address());
    if (until <= begin) return Status::kOk;
    Status result = Status::kOk;
    // Each record is copied into a local buffer before processing: the
    // copy step below may refresh the epoch (page rollover), after which
    // pointers into log frames can dangle (frames recycle under us).
    alignas(8) uint8_t buf[sizeof(RecordT)];
    Address addr = begin;
    while (addr < until) {
      if (addr.offset() + RecordT::size() > Address::kPageSize) {
        addr = addr.NextPageStart();
        continue;
      }
      if (addr >= hlog_.head_address()) {
        std::memcpy(buf, RecordAt(addr), RecordT::size());
      } else if (hlog_.ReadFromDiskSync(addr, RecordT::size(), buf) !=
                 Status::kOk) {
        result = Status::kIoError;
        break;
      }
      const RecordT& rec = *reinterpret_cast<const RecordT*>(buf);
      RecordInfo info = rec.info();
      if (!info.in_use()) {
        addr = addr.NextPageStart();  // page padding
        continue;
      }
      ++local.scanned;
      if (!info.invalid() && !info.tombstone()) {
        if (info.overwritten()) {
          ++local.dead_by_overwrite_bit;
        } else if (CompactOneRecord(addr, rec)) {
          ++local.copied;
        } else {
          ++local.dead_by_trace;
        }
      }
      addr = addr + RecordT::size();
    }
    hlog_.ShiftBeginAddress(until);
    if (stats != nullptr) *stats = local;
    return result;
  }

  /// Scans log records in [from, to) in log order (Appendix F), invoking
  /// `fn(Address, const RecordT&)` for every in-use record, including
  /// invalid and tombstone records (callers filter via RecordInfo).
  /// Requires an active session.
  template <class Fn>
  void ScanLog(Address from, Address to, Fn&& fn) FASTER_REQUIRES_EPOCH() {
    assert(epoch_.IsProtected());
    Address begin = std::max(from, hlog_.begin_address());
    Address end = std::min(to, hlog_.tail_address());
    Address head = hlog_.head_address();
    if (begin < head) {
      ScanDiskRange(begin, std::min(end, head), fn);
    }
    // In-memory portion.
    Address addr = std::max(begin, head);
    while (addr < end) {
      if (addr.offset() + RecordT::size() > Address::kPageSize) {
        addr = addr.NextPageStart();
        continue;
      }
      const RecordT* rec = RecordAt(addr);
      if (!rec->info().in_use()) {
        // Zero header: page padding; skip to the next page.
        addr = addr.NextPageStart();
        continue;
      }
      fn(addr, *rec);
      addr = addr + RecordT::size();
    }
  }

  // -------------------------------------------------------------------
  // Introspection.
  // -------------------------------------------------------------------

  /// Aggregated operation statistics across all threads.
  struct Stats {
    uint64_t reads = 0, upserts = 0, rmws = 0, deletes = 0;
    uint64_t fuzzy_rmws = 0;       // RMWs deferred in the fuzzy region
    uint64_t pending_ios = 0;      // storage reads issued
    uint64_t completed_pending = 0;
    uint64_t appended_records = 0;
    uint64_t read_cache_hits = 0;  // reads served by the read cache
  };
  Stats GetStats() const {
    Stats s;
    for (const ThreadState& ts : thread_states_) {
      s.reads += ts.reads.get();
      s.upserts += ts.upserts.get();
      s.rmws += ts.rmws.get();
      s.deletes += ts.deletes.get();
      s.fuzzy_rmws += ts.fuzzy_rmws.get();
      s.pending_ios += ts.ios_issued.get();
      s.completed_pending += ts.completed.get();
      s.appended_records += ts.appended_records.get();
      s.read_cache_hits += ts.rc_hits.get();
    }
    return s;
  }

  /// Observability (compiled out unless FASTER_STATS): per-region operation
  /// mix, pending-operation health, checkpoint durations, read cache.
  struct ObsStats {
    // Reads by the HybridLog region that served them (Sec. 6.1).
    obs::StatCounter read_mutable;
    obs::StatCounter read_fuzzy;
    obs::StatCounter read_readonly;  // in memory, below safe read-only
    obs::StatCounter read_stable;    // went to storage
    obs::StatCounter read_rc;        // served by the read cache
    obs::StatCounter read_miss;
    obs::StatCounter tag_false_positives;  // index tag hit, key absent
    // Updates by execution strategy (Table 2).
    obs::StatCounter upsert_inplace;
    obs::StatCounter upsert_append;
    obs::StatCounter rmw_inplace;
    obs::StatCounter rmw_copy;
    obs::StatCounter rmw_initial;
    obs::StatCounter rmw_delta;
    obs::StatCounter rmw_fuzzy_deferred;
    obs::StatCounter delete_inplace;
    obs::StatCounter delete_append;
    // Read cache (Appendix D).
    obs::StatCounter rc_inserts;
    obs::StatCounter rc_second_chance;
    obs::StatCounter rc_evictions;
    // Pending machinery (Sec. 5.3 / 6.2).
    obs::StatGauge pending_ios;        // storage reads in flight
    obs::StatGauge pending_retries;    // fuzzy RMWs awaiting retry
    obs::StatHistogram pending_io_ns;  // issue -> done, incl. chain hops
    // Checkpoints (Sec. 6.5).
    obs::StatCounter checkpoints;
    obs::StatHistogram checkpoint_index_ns;
    obs::StatHistogram checkpoint_flush_ns;
    // Batched pipeline (group prefetching). Prefetch-hit ratio =
    // batch_fast / (batch_fast + batch_fallback).
    obs::StatHistogram batch_sizes;    // ops per executed chunk
    obs::StatCounter batch_fast;       // ops completed in stage 3
    obs::StatCounter batch_fallback;   // ops routed to the single-op path
    obs::StatHistogram batch_io_group_size;  // reads per coalesced submit
  };
  const ObsStats& obs_stats() const { return obs_stats_; }

  /// Registers every metric the store and its components expose, plus the
  /// legacy GetStats() tallies as precomputed scalars.
  void CollectStats(obs::StatRegistry& reg) {
    Stats s = GetStats();
    reg.AddValue("store.reads", s.reads);
    reg.AddValue("store.upserts", s.upserts);
    reg.AddValue("store.rmws", s.rmws);
    reg.AddValue("store.deletes", s.deletes);
    reg.AddValue("store.fuzzy_rmws", s.fuzzy_rmws);
    reg.AddValue("store.ios_issued", s.pending_ios);
    reg.AddValue("store.completed_pending", s.completed_pending);
    reg.AddValue("store.appended_records", s.appended_records);
    reg.AddValue("store.read_cache_hits", s.read_cache_hits);
    reg.Add("store.read_mutable", &obs_stats_.read_mutable);
    reg.Add("store.read_fuzzy", &obs_stats_.read_fuzzy);
    reg.Add("store.read_readonly", &obs_stats_.read_readonly);
    reg.Add("store.read_stable", &obs_stats_.read_stable);
    reg.Add("store.read_rc", &obs_stats_.read_rc);
    reg.Add("store.read_miss", &obs_stats_.read_miss);
    reg.Add("store.tag_false_positives", &obs_stats_.tag_false_positives);
    reg.Add("store.upsert_inplace", &obs_stats_.upsert_inplace);
    reg.Add("store.upsert_append", &obs_stats_.upsert_append);
    reg.Add("store.rmw_inplace", &obs_stats_.rmw_inplace);
    reg.Add("store.rmw_copy", &obs_stats_.rmw_copy);
    reg.Add("store.rmw_initial", &obs_stats_.rmw_initial);
    reg.Add("store.rmw_delta", &obs_stats_.rmw_delta);
    reg.Add("store.rmw_fuzzy_deferred", &obs_stats_.rmw_fuzzy_deferred);
    reg.Add("store.delete_inplace", &obs_stats_.delete_inplace);
    reg.Add("store.delete_append", &obs_stats_.delete_append);
    reg.Add("store.rc_inserts", &obs_stats_.rc_inserts);
    reg.Add("store.rc_second_chance", &obs_stats_.rc_second_chance);
    reg.Add("store.rc_evictions", &obs_stats_.rc_evictions);
    reg.Add("store.pending_ios", &obs_stats_.pending_ios);
    reg.Add("store.pending_retries", &obs_stats_.pending_retries);
    reg.Add("store.pending_io_ns", &obs_stats_.pending_io_ns);
    reg.Add("store.checkpoints", &obs_stats_.checkpoints);
    reg.Add("store.checkpoint_index_ns", &obs_stats_.checkpoint_index_ns);
    reg.Add("store.checkpoint_flush_ns", &obs_stats_.checkpoint_flush_ns);
    reg.Add("store.batch_sizes", &obs_stats_.batch_sizes);
    reg.Add("store.batch_fast", &obs_stats_.batch_fast);
    reg.Add("store.batch_fallback", &obs_stats_.batch_fallback);
    reg.Add("store.batch_io_group_size", &obs_stats_.batch_io_group_size);
    index_.RegisterStats(reg, "index");
    hlog_.RegisterStats(reg, "hlog");
    epoch_.RegisterStats(reg, "epoch");
    hlog_.device()->RegisterStats(reg, "device");
    if (rc_log_ != nullptr) rc_log_->RegisterStats(reg, "rc_log");
  }

  /// Human-readable (or JSON) dump of every metric. With stats compiled
  /// out, returns a one-line notice (an empty JSON object).
  std::string DumpStats(bool json = false) {
    obs::StatRegistry reg;
    CollectStats(reg);
    return json ? reg.Json() : reg.Text();
  }

  /// Recent trace events, oldest first (empty when compiled out).
  std::vector<obs::TraceEvent> TraceEvents() const {
    return trace_.Snapshot();
  }

  /// Prometheus text exposition 0.0.4 of every metric (a one-line notice
  /// when stats are compiled out). The /metrics handler.
  std::string DumpPrometheus() {
    obs::StatRegistry reg;
    CollectStats(reg);
    return reg.Prometheus();
  }

  /// Writes recorded spans and trace events as Chrome trace-event JSON
  /// (loadable by Perfetto and chrome://tracing; see
  /// tools/trace2perfetto.py). An empty-but-valid trace when stats are
  /// compiled out.
  void DumpTrace(std::ostream& os) const {
    obs::WriteChromeTrace(os, obs::SnapshotSpans(), trace_.Snapshot());
  }

  // -------------------------------------------------------------------
  // Live /debug inspectors (DESIGN.md §12): cheap read-only JSON
  // snapshots of internal state, served by the exporter's /debug routes.
  // -------------------------------------------------------------------

  /// /debug/index: bucket-occupancy and hash-chain-length histograms from
  /// a bounded sample of the active table. Runs under epoch protection;
  /// chains are walked only through log frames pinned by that protection
  /// (clamped at the head observed after protecting — frame recycling is
  /// epoch-deferred, so those frames stay intact until this thread
  /// refreshes; GetEvicted reads them without the current-head assert,
  /// which may legitimately advance mid-walk). Reports {"resizing":true}
  /// without sampling while a grow is in flight.
  std::string DebugIndexJson(uint64_t max_buckets = 4096) {
    bool was_protected = epoch_.IsProtected();
    if (!was_protected) epoch_.Protect();
    AssertEpochProtected(epoch_);
    Address h0 = hlog_.head_address();
    Address rc_h0 = rc_log_ != nullptr ? rc_log_->head_address() : Address{0};
    constexpr uint32_t kMaxChainWalk = 32;
    constexpr uint32_t kOccBuckets = 16;  // live entries 0..14, then 15+
    constexpr uint32_t kLenBuckets = 17;  // chain length 0..15, then 16+
    uint64_t occupancy[kOccBuckets] = {};
    uint64_t chain_len[kLenBuckets] = {};
    uint64_t sampled_buckets = 0;
    uint64_t sampled_entries = 0;
    uint64_t overflow_buckets = 0;
    uint64_t chains_truncated = 0;
    bool ok = index_.SampleBuckets(
        max_buckets,
        [&](uint32_t live, uint32_t overflow) {
          ++sampled_buckets;
          overflow_buckets += overflow;
          ++occupancy[live < kOccBuckets ? live : kOccBuckets - 1];
        },
        [&](HashBucketEntry e) {
          AssertEpochProtected(epoch_);
          ++sampled_entries;
          uint32_t len = 0;
          bool truncated = false;
          Address addr = e.address();
          for (uint32_t hops = 0; hops < kMaxChainWalk; ++hops) {
            if (addr.control() == 0) break;  // end of chain
            if (InReadCache(addr)) {
              // Cache copies are not primary-chain records: hop through.
              Address rc = StripRc(addr);
              if (rc_log_ == nullptr || rc < rc_h0) {
                truncated = true;
                break;
              }
              const RecordT* rec =
                  reinterpret_cast<const RecordT*>(rc_log_->GetEvicted(rc));
              addr = rec->info().previous_address();
              continue;
            }
            if (addr < h0) {  // chain continues on disk
              truncated = true;
              break;
            }
            ++len;
            const RecordT* rec =
                reinterpret_cast<const RecordT*>(hlog_.GetEvicted(addr));
            addr = rec->info().previous_address();
          }
          if (addr.control() != 0 && !truncated) truncated = true;  // cap hit
          ++chain_len[len < kLenBuckets ? len : kLenBuckets - 1];
          if (truncated) ++chains_truncated;
        });
    uint64_t table_size = index_.size();
    uint32_t tag_bits = index_.tag_bits();
    if (!was_protected) epoch_.Unprotect();
    char buf[256];
    std::string out;
    if (!ok) {
      std::snprintf(buf, sizeof(buf),
                    "{\"resizing\":true,\"table_size\":%llu,\"tag_bits\":%u}\n",
                    static_cast<unsigned long long>(table_size), tag_bits);
      return buf;
    }
    std::snprintf(
        buf, sizeof(buf),
        "{\"resizing\":false,\"table_size\":%llu,\"tag_bits\":%u,"
        "\"sampled_buckets\":%llu,\"sampled_entries\":%llu,"
        "\"overflow_buckets\":%llu,\"chains_truncated\":%llu,"
        "\"max_chain_walk\":%u,",
        static_cast<unsigned long long>(table_size), tag_bits,
        static_cast<unsigned long long>(sampled_buckets),
        static_cast<unsigned long long>(sampled_entries),
        static_cast<unsigned long long>(overflow_buckets),
        static_cast<unsigned long long>(chains_truncated), kMaxChainWalk);
    out += buf;
    auto append_array = [&out, &buf](const char* name, const uint64_t* v,
                                     uint32_t n) {
      std::snprintf(buf, sizeof(buf), "\"%s\":[", name);
      out += buf;
      for (uint32_t i = 0; i < n; ++i) {
        std::snprintf(buf, sizeof(buf), "%s%llu", i == 0 ? "" : ",",
                      static_cast<unsigned long long>(v[i]));
        out += buf;
      }
      out += "]";
    };
    append_array("bucket_occupancy", occupancy, kOccBuckets);
    out += ",";
    append_array("chain_length", chain_len, kLenBuckets);
    out += "}\n";
    return out;
  }

  /// /debug/log: hybrid-log region addresses, page occupancy, and flush
  /// backlog. The snapshot's markers are loaded smallest-first, so
  /// begin <= head <= read_only <= tail holds within the reply even while
  /// the log advances underneath (see HybridLog::SnapshotRegions).
  std::string DebugLogJson() {
    std::string out = "{\"log\":";
    out += RegionJson(hlog_);
    if (rc_log_ != nullptr) {
      out += ",\"read_cache\":";
      out += RegionJson(*rc_log_);
    }
    out += "}\n";
    return out;
  }

  /// /debug/epochs: the shared epoch counters plus every protected
  /// thread's published local epoch and its lag behind the current epoch.
  /// Relaxed per-slot reads — a monitoring snapshot needs no ordering.
  std::string DebugEpochsJson() {
    uint64_t current = epoch_.CurrentEpoch();
    uint64_t safe = epoch_.SafeToReclaimEpoch();
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "{\"current_epoch\":%llu,\"safe_epoch\":%llu,"
                  "\"outstanding_actions\":%u,\"threads\":[",
                  static_cast<unsigned long long>(current),
                  static_cast<unsigned long long>(safe),
                  epoch_.NumOutstandingActions());
    std::string out = buf;
    uint32_t listed = 0;
    for (uint32_t tid = 0; tid < Thread::kMaxThreads; ++tid) {
      uint64_t local = epoch_.LocalEpochOf(tid);
      if (local == LightEpoch::kUnprotected) continue;
      uint64_t lag = current > local ? current - local : 0;
      std::snprintf(buf, sizeof(buf),
                    "%s{\"tid\":%u,\"local_epoch\":%llu,\"lag\":%llu}",
                    listed == 0 ? "" : ",", tid,
                    static_cast<unsigned long long>(local),
                    static_cast<unsigned long long>(lag));
      out += buf;
      ++listed;
    }
    std::snprintf(buf, sizeof(buf), "],\"protected_threads\":%u}\n", listed);
    out += buf;
    return out;
  }

  /// Registers this store's diagnostics (epoch table, event ring, the
  /// global span ring, metric pointers) with the process-wide crash
  /// flight recorder and arms it (fatal-signal handlers + the
  /// FASTER_EPOCH_CHECK hook). The destructor detaches. Metric names are
  /// copied at attach time; legacy kValue tallies are snapshot then and
  /// marked "(at attach)" in the dump.
  void AttachFlightRecorder() {
    obs::FlightRecorder& rec = obs::FlightRecorder::Instance();
    rec.Install();
    rec.AttachEpoch(this, &epoch_);
    rec.AttachEventRing(this, "store", &trace_);
    if constexpr (obs::kStatsEnabled) {
      rec.AttachSpanRing(this, &obs::GlobalSpanRing());
      rec.AttachLogRing(this, &obs::Logger::Global().ring());
      rec.AttachSlowLog(this, &obs::GlobalSlowLog());
    }
    obs::StatRegistry reg;
    CollectStats(reg);
    rec.AttachMetrics(this, reg);
    flight_attached_ = true;
  }

  HybridLog& hlog() { return hlog_; }
  HashIndex& index() { return index_; }
  LightEpoch& epoch() { return epoch_; }
  const Config& config() const { return config_; }

 private:
  /// JSON object for one log's region markers (DebugLogJson).
  static std::string RegionJson(HybridLog& log) {
    HybridLog::RegionSnapshot s = log.SnapshotRegions();
    uint64_t in_memory = s.tail.control() - s.head.control();
    uint64_t mut = s.tail.control() - s.read_only.control();
    uint64_t backlog = s.read_only.control() > s.flushed_until.control()
                           ? s.read_only.control() - s.flushed_until.control()
                           : 0;
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "{\"begin\":%llu,\"head\":%llu,\"safe_read_only\":%llu,"
        "\"flushed_until\":%llu,\"read_only\":%llu,\"tail\":%llu,"
        "\"head_page\":%llu,\"tail_page\":%llu,\"tail_page_offset\":%llu,"
        "\"page_size\":%llu,\"buffer_pages\":%llu,"
        "\"in_memory_bytes\":%llu,\"mutable_bytes\":%llu,"
        "\"flush_backlog_bytes\":%llu,\"io_error\":%s}",
        static_cast<unsigned long long>(s.begin.control()),
        static_cast<unsigned long long>(s.head.control()),
        static_cast<unsigned long long>(s.safe_read_only.control()),
        static_cast<unsigned long long>(s.flushed_until.control()),
        static_cast<unsigned long long>(s.read_only.control()),
        static_cast<unsigned long long>(s.tail.control()),
        static_cast<unsigned long long>(s.head.page()),
        static_cast<unsigned long long>(s.tail.page()),
        static_cast<unsigned long long>(s.tail.offset()),
        static_cast<unsigned long long>(Address::kPageSize),
        static_cast<unsigned long long>(log.buffer_pages()),
        static_cast<unsigned long long>(in_memory),
        static_cast<unsigned long long>(mut),
        static_cast<unsigned long long>(backlog),
        log.io_error() ? "true" : "false");
    return buf;
  }

  enum class OpType : uint8_t { kRead, kRmw };
  enum class DiskState : uint8_t { kNone, kValue, kAbsent };

  /// Context carried by an operation that went pending (Sec. 5.3): enough
  /// to resume after the asynchronous storage read (or fuzzy retry).
  struct PendingContext {
    PendingContext(FasterKv* s, OpType o, const Key& k, KeyHash h,
                   const Input& in, Output* out, uint32_t own)
        : store{s}, op{o}, key{k}, hash{h}, input{in}, output{out},
          owner{own} {}

    FasterKv* store;
    OpType op;
    Key key;
    KeyHash hash;
    Input input;
    Output* output;
    void* user_context = nullptr;
    uint32_t owner;
    Address address = Address::Invalid();     // record being read
    Address chain_bottom = Address::Invalid();  // first disk address of chain
    Status io_status = Status::kOk;
    uint64_t issue_ns = 0;  // stats only: first I/O issue time
    // Span context captured when the operation went asynchronous (0 when
    // unsampled or stats are compiled out): continuations on any thread
    // re-establish it so their spans land under the originating trace.
    uint64_t trace_id = 0;
    uint64_t parent_span = 0;
    // Slowlog stage attribution carried across the async hop (inert —
    // start_ns stays 0 — unless the slowlog was armed at issue time).
    obs::PendingSlowOp slow;
    // CRDT read reconciliation state (Sec. 6.3).
    Value merge_acc{};
    bool merge_found = false;
    alignas(8) uint8_t buffer[sizeof(RecordT)];

    const RecordT* record() const {
      return reinterpret_cast<const RecordT*>(buffer);
    }
  };

  /// Owner-thread tally: written only by the slot's tenant (plain
  /// load+store, never an RMW — same codegen as a bare uint64_t), but
  /// atomic so a concurrent GetStats()/DumpStats() reads it race-free.
  struct RelaxedTally {
    // order: relaxed load+store by the owner thread, relaxed load in
    // GetStats — a per-thread counter; no data is published through it.
    std::atomic<uint64_t> v{0};
    RelaxedTally& operator++() {
      v.store(v.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
      return *this;
    }
    uint64_t get() const { return v.load(std::memory_order_relaxed); }
  };

  struct alignas(64) ThreadState {
    // Completion queue, filled by device I/O threads.
    std::mutex mutex;
    std::vector<PendingContext*> completions;
    // Fuzzy-region RMW retries (owner thread only).
    std::vector<PendingContext*> retries;
    uint64_t outstanding_ios = 0;
    uint32_t ops_since_refresh = 0;
    // Statistics.
    RelaxedTally reads, upserts, rmws, deletes;
    RelaxedTally fuzzy_rmws, ios_issued, completed;
    RelaxedTally appended_records;
    RelaxedTally rc_hits;
  };

  RecordT* RecordAt(Address addr) const FASTER_REQUIRES_EPOCH() {
    return reinterpret_cast<RecordT*>(hlog_.Get(addr));
  }

  // -------------------------------------------------------------------
  // Read cache (Appendix D). Cached records live in a second HybridLog;
  // index entries pointing into it carry the high address bit. A cache
  // record's `previous_address` preserves the primary-log chain head it
  // displaced.
  // -------------------------------------------------------------------

  static constexpr uint64_t kRcBit = uint64_t{1} << 47;
  static bool InReadCache(Address a) { return (a.control() & kRcBit) != 0; }
  static Address StripRc(Address a) { return Address{a.control() & ~kRcBit}; }
  static Address TagRc(Address a) { return Address{a.control() | kRcBit}; }

  RecordT* RcRecordAt(Address addr) const FASTER_REQUIRES_EPOCH() {
    return reinterpret_cast<RecordT*>(rc_log_->Get(addr));
  }

  /// Record access for the eviction redirect only: RcEvict walks cache
  /// addresses that are already below the cache's head (the frames survive
  /// until the eviction trigger returns), which Get()'s head check would
  /// reject.
  RecordT* RcRecordAtEvicted(Address addr) const FASTER_REQUIRES_EPOCH() {
    return reinterpret_cast<RecordT*>(rc_log_->GetEvicted(addr));
  }

  /// Resolves an index entry to the primary-log chain start, surfacing the
  /// resident read-cache record if the entry points into the cache.
  /// Returns false if the cache page was evicted but the entry has not
  /// been redirected yet (caller refreshes and restarts).
  bool ResolveEntry(const HashIndex::FindResult& fr, Address* start,
                    RecordT** rc_rec) const FASTER_REQUIRES_EPOCH() {
    *rc_rec = nullptr;
    Address a = fr.entry.address();
    if (rc_log_ == nullptr || !InReadCache(a)) {
      *start = a;
      return true;
    }
    Address rc = StripRc(a);
    if (rc < rc_log_->head_address()) {
      return false;  // eviction redirect in flight
    }
    RecordT* rec = RcRecordAt(rc);
    *rc_rec = rec;
    *start = rec->info().previous_address();
    return true;
  }

  /// Allocates one record in the read cache; a single page-rollover retry,
  /// then gives up (cache insertion is best-effort).
  Address TryAllocateRcRecord() FASTER_REQUIRES_EPOCH() {
    for (int attempt = 0; attempt < 2; ++attempt) {
      uint64_t closed_page = 0;
      Address addr = rc_log_->Allocate(RecordT::size(), &closed_page);
      if (addr.IsValid()) return addr;
      if (!rc_log_->NewPage(closed_page)) {
        epoch_.Refresh();
        return Address::Invalid();
      }
    }
    return Address::Invalid();
  }

  /// Inserts a value read from storage into the read cache (best-effort).
  void TryInsertToCache(const Key& key, KeyHash hash, const Value& value)
      FASTER_REQUIRES_EPOCH() {
    typename HashIndex::OpScope scope{index_, hash};
    HashIndex::FindResult fr;
    if (!index_.FindEntry(scope, hash, &fr)) return;
    Address a = fr.entry.address();
    if (InReadCache(a)) return;            // someone cached it already
    if (!a.IsValid() || a >= hlog_.head_address()) return;  // newer in memory
    Address rc_addr = TryAllocateRcRecord();
    if (!rc_addr.IsValid()) return;
    RecordT* rec = RcRecordAt(rc_addr);
    rec->key = key;
    rec->value = value;
    rec->set_info(RecordInfo{a, false, false, false, /*read_cache=*/true});
    if (index_.TryUpdateEntry(&fr, TagRc(rc_addr))) {
      obs_stats_.rc_inserts.Inc();
    } else {
      rec->SetInvalid();
    }
  }

  /// Second chance (Appendix D): a cache hit in the cache's read-only
  /// region copies the record to the cache tail, exactly like the primary
  /// HybridLog's shaping behaviour.
  void RcSecondChance(const Key& key, RecordT* rc_rec,
                      const HashIndex::FindResult& fr)
      FASTER_REQUIRES_EPOCH() {
    Address new_addr = TryAllocateRcRecord();
    if (!new_addr.IsValid()) return;
    RecordT* rec = RcRecordAt(new_addr);
    rec->key = key;
    rec->value = rc_rec->value;
    rec->set_info(RecordInfo{rc_rec->info().previous_address(), false, false,
                             false, /*read_cache=*/true});
    HashIndex::FindResult mutable_fr = fr;
    if (index_.TryUpdateEntry(&mutable_fr, TagRc(new_addr))) {
      obs_stats_.rc_second_chance.Inc();
    } else {
      rec->SetInvalid();
    }
  }

  /// Eviction redirect: runs under epoch safety when cache pages fall off
  /// the cache's head; swings index entries pointing at evicted cache
  /// records back to the primary-log addresses they displaced.
  void RcEvict(Address from, Address to) {
    // Invoked through the eviction std::function from an epoch trigger
    // action; the running thread is protected, but the analysis cannot see
    // through the type-erased callback, so re-establish the capability.
    AssertEpochProtected(epoch_);
    Address addr = from;
    while (addr < to) {
      if (addr.offset() + RecordT::size() > Address::kPageSize) {
        addr = addr.NextPageStart();
        continue;
      }
      RecordT* rec = RcRecordAtEvicted(addr);
      if (!rec->info().in_use()) {
        addr = addr.NextPageStart();  // page padding
        continue;
      }
      if (!rec->info().invalid()) {
        KeyHash hash = Hasher{}(rec->key);
        typename HashIndex::OpScope scope{index_, hash};
        HashIndex::FindResult fr;
        if (index_.FindEntry(scope, hash, &fr) &&
            fr.entry.address() == TagRc(addr)) {
          if (index_.TryUpdateEntry(&fr, rec->info().previous_address())) {
            obs_stats_.rc_evictions.Inc();
          }
        }
      }
      addr = addr + RecordT::size();
    }
  }

  ThreadState& AutoRefresh() FASTER_REQUIRES_EPOCH() {
    ThreadState& ts = thread_states_[Thread::Id()];
    if (++ts.ops_since_refresh >= config_.refresh_interval) {
      ts.ops_since_refresh = 0;
      epoch_.Refresh();
    }
    return ts;
  }

  /// Walks the in-memory record chain from `from` (>= `min_mem`) looking
  /// for `key`. On match sets `*rec` and returns the record's address; on
  /// miss returns the first address below `min_mem` (or invalid).
  Address TraceBack(const Key& key, Address from, Address min_mem,
                    RecordT** rec) const FASTER_REQUIRES_EPOCH() {
    Address addr = from;
    while (addr.IsValid() && addr >= min_mem) {
      RecordT* r = RecordAt(addr);
      if (r->key == key) {
        *rec = r;
        return addr;
      }
      addr = r->info().previous_address();
    }
    *rec = nullptr;
    return addr;
  }

  /// Synchronously finds the newest record address for `key` starting at
  /// `start`, following the chain through memory and storage (used by
  /// compaction's liveness check). Returns the invalid address if the key
  /// has no record at or above `begin`; sets `*tombstone` accordingly.
  Address TraceNewestSync(const Key& key, Address start, bool* tombstone)
      FASTER_REQUIRES_EPOCH() {
    Address begin = hlog_.begin_address();
    Address head = hlog_.head_address();
    Address addr = start;
    alignas(8) uint8_t buf[sizeof(RecordT)];
    while (addr.IsValid() && addr >= begin) {
      const RecordT* rec;
      if (addr >= head) {
        rec = RecordAt(addr);
      } else {
        if (hlog_.ReadFromDiskSync(addr, RecordT::size(), buf) !=
            Status::kOk) {
          break;
        }
        rec = reinterpret_cast<const RecordT*>(buf);
      }
      if (rec->key == key) {
        *tombstone = rec->info().tombstone();
        return addr;
      }
      addr = rec->info().previous_address();
    }
    *tombstone = false;
    return Address::Invalid();
  }

  /// Copies a (potentially live) record to the tail if it is still the
  /// newest version of its key; returns true if a copy was installed,
  /// false if the record turned out to be dead.
  bool CompactOneRecord(Address addr, const RecordT& rec)
      FASTER_REQUIRES_EPOCH() {
    KeyHash hash = Hasher{}(rec.key);
    for (;;) {
      typename HashIndex::OpScope scope{index_, hash};
      HashIndex::FindResult fr;
      if (!index_.FindEntry(scope, hash, &fr)) return false;
      Address start;
      RecordT* rc_rec = nullptr;
      if (!ResolveEntry(fr, &start, &rc_rec)) {
        epoch_.Refresh();
        continue;
      }
      (void)rc_rec;  // liveness is decided on the primary chain below
      bool tombstone = false;
      Address newest = TraceNewestSync(rec.key, start, &tombstone);
      if (newest != addr || tombstone) return false;  // dead (or deleted)
      Address new_addr = TryAllocateRecord();
      if (!new_addr.IsValid()) continue;  // epoch refreshed; re-verify
      RecordT* new_rec = RecordAt(new_addr);
      new_rec->key = rec.key;
      new_rec->value = rec.value;
      new_rec->set_info(RecordInfo{start, false, false});
      if (index_.TryUpdateEntry(&fr, new_addr)) return true;
      new_rec->SetInvalid();  // raced with an update; re-verify liveness
    }
  }

  /// One-shot allocation (Alg. 1 wrapper). Returns an invalid address if
  /// the epoch had to be refreshed (page rollover); the caller must
  /// restart its operation, since any record pointers it held may have
  /// been invalidated by the refresh.
  Address TryAllocateRecord() FASTER_REQUIRES_EPOCH() {
    uint64_t closed_page = 0;
    Address addr = hlog_.Allocate(RecordT::size(), &closed_page);
    if (addr.IsValid()) return addr;
    while (!hlog_.NewPage(closed_page)) {
      // Next frame not recyclable yet: drive the epoch (and flushes).
      epoch_.Refresh();
      std::this_thread::yield();
    }
    epoch_.Refresh();
    return Address::Invalid();
  }

  struct RmwOutcome {
    enum Kind { kDone, kIo, kFuzzy } kind;
    Status status = Status::kOk;
    Address io_address = Address::Invalid();
  };

  /// The in-memory portion of RMW (Alg. 4). `disk_state`/`disk_value`
  /// carry the result of a completed storage read for chain bottom
  /// `disk_bottom` (continuation path); kNone on the initial attempt.
  RmwOutcome RmwInMemory(ThreadState& ts, const Key& key, KeyHash hash,
                         const Input& input, DiskState disk_state,
                         const Value* disk_value, Address disk_bottom)
      FASTER_REQUIRES_EPOCH() {
    for (;;) {
      typename HashIndex::OpScope scope{index_, hash};
      HashIndex::FindResult fr;
      index_.FindOrCreateEntry(scope, hash, &fr);
      Address addr;
      RecordT* rc_rec = nullptr;
      if (!ResolveEntry(fr, &addr, &rc_rec)) {
        epoch_.Refresh();
        continue;
      }
      if (rc_rec != nullptr && rc_rec->key == key) {
        // Read-cache hit (Appendix D): the cached copy is the newest
        // version, so RMW can copy-update from it without a storage read.
        // The new record's chain skips the cache record.
        if (AppendRecordWithPrev(ts, key, input, &fr, RecordKind::kCopy,
                                 &rc_rec->value, addr)) {
          return {RmwOutcome::kDone, Status::kOk, {}};
        }
        continue;
      }
      Address begin = hlog_.begin_address();
      Address head = hlog_.head_address();
      RecordT* rec = nullptr;
      Address found = Address::Invalid();
      if (addr.IsValid() && addr >= begin) {
        if (addr >= head) {
          found = TraceBack(key, addr, std::max(head, begin), &rec);
        } else {
          found = addr;  // chain starts on disk
        }
      }
      if (rec != nullptr && !rec->info().tombstone()) {
        if (!config_.force_rcu && found >= hlog_.read_only_address()) {
          // Mutable region: in-place update (Table 2 bottom row).
          hlog_.VerifyMutableAddress(found);
          F::InPlaceUpdater(key, input, rec->value);
          obs_stats_.rmw_inplace.Inc();
          return {RmwOutcome::kDone, Status::kOk, {}};
        }
        if (!config_.force_rcu && found >= hlog_.safe_read_only_address()) {
          // Fuzzy region (Sec. 6.2): an in-place update elsewhere could be
          // lost if we copied now. (In force_rcu mode no update is ever
          // in-place, so the lost-update anomaly cannot occur and RCU is
          // safe anywhere — the Sec. 5 append-only strawman.)
          if constexpr (kMergeable) {
            // CRDT (Sec. 6.3): append a delta record instead of waiting.
            if (AppendRecord(ts, key, input, &fr, RecordKind::kDelta,
                             nullptr)) {
              return {RmwOutcome::kDone, Status::kOk, {}};
            }
            continue;
          }
          return {RmwOutcome::kFuzzy, Status::kPending, {}};
        }
        // Safe read-only region: read-copy-update to the tail.
        if (AppendRecord(ts, key, input, &fr,
                         kMergeable ? RecordKind::kDelta : RecordKind::kCopy,
                         &rec->value)) {
          if constexpr (!kMergeable) rec->SetOverwritten();  // Appendix C
          return {RmwOutcome::kDone, Status::kOk, {}};
        }
        continue;
      }
      if (rec != nullptr) {
        // Newest record is a tombstone: treat the key as absent.
        if (AppendRecord(ts, key, input, &fr, RecordKind::kInitial, nullptr)) {
          return {RmwOutcome::kDone, Status::kOk, {}};
        }
        continue;
      }
      if (found.IsValid() && found >= begin) {
        // Chain bottoms out on storage.
        if constexpr (kMergeable) {
          // CRDTs never read the old value: append a delta (Table 2).
          if (AppendRecord(ts, key, input, &fr, RecordKind::kDelta,
                           nullptr)) {
            return {RmwOutcome::kDone, Status::kOk, {}};
          }
          continue;
        }
        if (disk_state != DiskState::kNone && found == disk_bottom) {
          // Continuation: we already resolved this chain bottom.
          bool ok = (disk_state == DiskState::kValue)
                        ? AppendRecord(ts, key, input, &fr, RecordKind::kCopy,
                                       disk_value)
                        : AppendRecord(ts, key, input, &fr,
                                       RecordKind::kInitial, nullptr);
          if (ok) return {RmwOutcome::kDone, Status::kOk, {}};
          continue;
        }
        return {RmwOutcome::kIo, Status::kPending, found};
      }
      // Key absent: create the initial record.
      if (AppendRecord(ts, key, input, &fr, RecordKind::kInitial, nullptr)) {
        return {RmwOutcome::kDone, Status::kOk, {}};
      }
    }
  }

  enum class RecordKind : uint8_t { kInitial, kCopy, kDelta };

  /// Allocates and links a new RMW record at the tail. Returns false if
  /// the operation must restart (allocation refreshed the epoch, or the
  /// index CAS failed). `old_value` is required for kCopy.
  bool AppendRecord(ThreadState& ts, const Key& key, const Input& input,
                    HashIndex::FindResult* fr, RecordKind kind,
                    const Value* old_value) FASTER_REQUIRES_EPOCH() {
    return AppendRecordWithPrev(ts, key, input, fr, kind, old_value,
                                fr->entry.address());
  }

  /// As AppendRecord, but with an explicit previous-address for the new
  /// record (the read cache skips the cache record in the chain).
  bool AppendRecordWithPrev(ThreadState& ts, const Key& key,
                            const Input& input, HashIndex::FindResult* fr,
                            RecordKind kind, const Value* old_value,
                            Address prev) FASTER_REQUIRES_EPOCH() {
    Address new_addr = TryAllocateRecord();
    if (!new_addr.IsValid()) return false;
    RecordT* new_rec = RecordAt(new_addr);
    new_rec->key = key;
    switch (kind) {
      case RecordKind::kInitial:
      case RecordKind::kDelta:
        new_rec->value = Value{};
        F::InitialUpdater(key, input, new_rec->value);
        break;
      case RecordKind::kCopy:
        F::CopyUpdater(key, input, *old_value, new_rec->value);
        break;
    }
    new_rec->set_info(
        RecordInfo{prev, false, false, kind == RecordKind::kDelta});
    if (index_.TryUpdateEntry(fr, new_addr)) {
      ++ts.appended_records;
      switch (kind) {
        case RecordKind::kInitial: obs_stats_.rmw_initial.Inc(); break;
        case RecordKind::kCopy: obs_stats_.rmw_copy.Inc(); break;
        case RecordKind::kDelta: obs_stats_.rmw_delta.Inc(); break;
      }
      return true;
    }
    new_rec->SetInvalid();
    return false;
  }

  // -------------------------------------------------------------------
  // Pending-operation machinery (Sec. 5.3).
  // -------------------------------------------------------------------

  /// Copies the calling thread's ambient span context into a context that
  /// is about to cross the asynchronous boundary. Compiled out with stats
  /// (the fields stay 0 and every downstream span scope is inactive).
  static void CaptureTrace(PendingContext* ctx) {
    if constexpr (obs::kStatsEnabled) {
      obs::TraceContext tc = obs::CurrentTrace();
      ctx->trace_id = tc.trace_id;
      ctx->parent_span = tc.span_id;
      // Slowlog hand-off: the synchronous scope's stage tallies move into
      // the context; the scope then skips its own exit-time record.
      obs::CaptureSlowOp(&ctx->slow);
    }
  }

  Status IssuePendingIo(ThreadState& ts, OpType op, const Key& key,
                        KeyHash hash, const Input& input, Output* output,
                        Address addr, void* user_context = nullptr)
      FASTER_REQUIRES_EPOCH() {
    auto* ctx =
        new PendingContext(this, op, key, hash, input, output, Thread::Id());
    ctx->user_context = user_context;
    ctx->address = addr;
    ctx->chain_bottom = addr;
    CaptureTrace(ctx);
    ++ts.outstanding_ios;
    ++ts.ios_issued;
    obs_stats_.pending_ios.Inc();
    if constexpr (obs::kStatsEnabled) ctx->issue_ns = obs::NowNs();
    trace_.Emit(obs::Ev::kPendingIoIssued, ctx->owner);
    hlog_.AsyncGetFromDisk(addr, RecordT::size(), ctx->buffer,
                           &FasterKv::IoCallback, ctx);
    return Status::kPending;
  }

  /// Re-issues a follow-the-chain read for an already-pending context.
  void ReissueIo(PendingContext* ctx, Address addr) {
    ctx->address = addr;
    ThreadState& ts = thread_states_[ctx->owner];
    ++ts.ios_issued;
    if constexpr (obs::kStatsEnabled) {
      // Keep the first issue time: pending_io_ns spans the whole chain.
      if (ctx->issue_ns == 0) ctx->issue_ns = obs::NowNs();
      // Close this hop's wait window before the next hop's queueing
      // starts, so the I/O stages keep partitioning the pending window.
      if (ctx->slow.start_ns != 0 && ctx->slow.callback_ns != 0) {
        uint64_t now = obs::NowNs();
        if (now > ctx->slow.callback_ns) {
          ctx->slow.io_complete_ns += now - ctx->slow.callback_ns;
        }
        ctx->slow.callback_ns = 0;
      }
    }
    hlog_.AsyncGetFromDisk(addr, RecordT::size(), ctx->buffer,
                           &FasterKv::IoCallback, ctx);
  }

  // -------------------------------------------------------------------
  // Batched pipeline internals (see the public batch API above).
  // -------------------------------------------------------------------

  /// Executes one op through the ordinary single-op entry points.
  void ExecuteSingle(BatchOp& op) FASTER_REQUIRES_EPOCH() {
    switch (op.kind) {
      case BatchOp::Kind::kRead:
        op.status = Read(op.key, op.input, op.output, op.user_context);
        break;
      case BatchOp::Kind::kUpsert:
        op.status = Upsert(op.key, op.value);
        break;
      case BatchOp::Kind::kRmw:
        op.status = Rmw(op.key, op.input, op.user_context);
        break;
    }
  }

  /// Builds a pending read context with the same bookkeeping as
  /// IssuePendingIo, but defers the device submission so a chunk's disk
  /// reads coalesce into one grouped submission.
  PendingContext* MakePendingRead(ThreadState& ts, BatchOp& op, KeyHash hash,
                                  Address addr) {
    auto* ctx = new PendingContext(this, OpType::kRead, op.key, hash,
                                   op.input, op.output, Thread::Id());
    ctx->user_context = op.user_context;
    ctx->address = addr;
    ctx->chain_bottom = addr;
    CaptureTrace(ctx);
    ++ts.outstanding_ios;
    ++ts.ios_issued;
    obs_stats_.pending_ios.Inc();
    if constexpr (obs::kStatsEnabled) ctx->issue_ns = obs::NowNs();
    trace_.Emit(obs::Ev::kPendingIoIssued, ctx->owner);
    return ctx;
  }

  /// Stage-3 read against a stage-2 resolution. Returns false if the op
  /// must take the single-op path; otherwise fills op.status (possibly
  /// kPending, appending the I/O context to `io_ctxs` for coalescing).
  bool FastRead(ThreadState& ts, BatchOp& op, KeyHash hash, bool entry_found,
                HashIndex::FindResult& fr, PendingContext** io_ctxs,
                size_t* num_ios) FASTER_REQUIRES_EPOCH() {
    if (rc_log_ != nullptr) return false;  // cache lookups → single-op
    if constexpr (kMergeable) return false;  // CRDT reads reconcile chains
    if (!entry_found) {
      ++ts.reads;
      obs_stats_.read_miss.Inc();
      op.status = Status::kNotFound;
      return true;
    }
    Address addr = fr.entry.address();
    Address begin = hlog_.begin_address();
    if (!addr.IsValid() || addr < begin) {
      return false;  // stale entry: single-op path runs the lazy cleanup
    }
    Address head = hlog_.head_address();
    Address min_mem = std::max(head, begin);
    RecordT* rec = nullptr;
    Address found = TraceBack(op.key, addr, min_mem, &rec);
    if (rec != nullptr) {
      ++ts.reads;
      if (rec->info().tombstone()) {
        obs_stats_.read_miss.Inc();
        op.status = Status::kNotFound;
        return true;
      }
      if (found < hlog_.safe_read_only_address()) {
        obs_stats_.read_readonly.Inc();
        F::SingleReader(op.key, op.input, rec->value, *op.output);
      } else {
        if constexpr (obs::kStatsEnabled) {
          if (found >= hlog_.read_only_address()) {
            obs_stats_.read_mutable.Inc();
          } else {
            obs_stats_.read_fuzzy.Inc();
          }
        }
        F::ConcurrentReader(op.key, op.input, rec->value, *op.output);
      }
      op.status = Status::kOk;
      return true;
    }
    if (!found.IsValid() || found < begin) {
      ++ts.reads;
      obs_stats_.tag_false_positives.Inc();
      obs_stats_.read_miss.Inc();
      op.status = Status::kNotFound;
      return true;
    }
    // Chain continues on storage: coalesce with the chunk's other misses.
    ++ts.reads;
    obs_stats_.read_stable.Inc();
    io_ctxs[(*num_ios)++] = MakePendingRead(ts, op, hash, found);
    op.status = Status::kPending;
    return true;
  }

  /// Stage-3 upsert. Consumes a pre-reserved extent slot when available.
  bool FastUpsert(ThreadState& ts, BatchOp& op, bool entry_found,
                  HashIndex::FindResult& fr, Address* extent,
                  uint32_t* extent_left) FASTER_REQUIRES_EPOCH() {
    if (rc_log_ != nullptr) return false;  // cache-aware chains → single-op
    if (!entry_found) return false;  // needs FindOrCreateEntry
    Address addr = fr.entry.address();
    Address begin = hlog_.begin_address();
    Address head = hlog_.head_address();
    RecordT* rec = nullptr;
    if (addr.IsValid() && addr >= begin && addr >= head) {
      Address found = TraceBack(op.key, addr, std::max(head, begin), &rec);
      if (rec != nullptr && !rec->info().tombstone() && !config_.force_rcu &&
          found >= hlog_.read_only_address()) {
        ++ts.upserts;
        hlog_.VerifyMutableAddress(found);
        F::ConcurrentWriter(op.key, op.value, rec->value);
        obs_stats_.upsert_inplace.Inc();
        op.status = Status::kOk;
        return true;
      }
    }
    // Append path (read-only/fuzzy/on-disk/key-absent chain), mirroring
    // the single-op blind append.
    Address new_addr;
    bool from_extent = *extent_left > 0;
    if (from_extent) {
      new_addr = *extent;
      *extent = *extent + RecordT::size();
      --*extent_left;
    } else {
      new_addr = TryAllocateRecord();
      if (!new_addr.IsValid()) {
        return false;  // page rollover refreshed the epoch: re-resolve
      }
    }
    RecordT* new_rec = RecordAt(new_addr);
    new_rec->key = op.key;
    F::SingleWriter(op.key, op.value, new_rec->value);
    new_rec->set_info(RecordInfo{addr, false, false});
    if (index_.TryUpdateEntry(&fr, new_addr)) {
      ++ts.upserts;
      ++ts.appended_records;
      obs_stats_.upsert_append.Inc();
      if (rec != nullptr) rec->SetOverwritten();  // Appendix C
      op.status = Status::kOk;
      return true;
    }
    new_rec->SetInvalid();  // lost the CAS; single-op path retries
    return false;
  }

  /// Stage-3 RMW: only the mutable-region in-place case runs here; every
  /// other outcome (copy, initial, fuzzy deferral, disk) reuses the
  /// single-op machinery.
  bool FastRmw(ThreadState& ts, BatchOp& op, bool entry_found,
               HashIndex::FindResult& fr) FASTER_REQUIRES_EPOCH() {
    if (rc_log_ != nullptr) return false;
    if (!entry_found) return false;  // InitialUpdater needs FindOrCreate
    Address addr = fr.entry.address();
    Address begin = hlog_.begin_address();
    Address head = hlog_.head_address();
    if (!addr.IsValid() || addr < begin || addr < head) return false;
    RecordT* rec = nullptr;
    Address found = TraceBack(op.key, addr, std::max(head, begin), &rec);
    if (rec == nullptr || rec->info().tombstone() || config_.force_rcu ||
        found < hlog_.read_only_address()) {
      return false;
    }
    ++ts.rmws;
    hlog_.VerifyMutableAddress(found);
    F::InPlaceUpdater(op.key, op.input, rec->value);
    obs_stats_.rmw_inplace.Inc();
    op.status = Status::kOk;
    return true;
  }

  /// The three-stage pipeline over one chunk of at most kBatchChunk ops.
  void ExecuteChunk(BatchOp* ops, size_t n) FASTER_REQUIRES_EPOCH() {
    if (n == 0) return;
    assert(n <= kBatchChunk);
    assert(epoch_.IsProtected());
    ThreadState& ts = thread_states_[Thread::Id()];
    // One refresh check covers the chunk (amortized epoch bookkeeping).
    ts.ops_since_refresh += static_cast<uint32_t>(n);
    if (ts.ops_since_refresh >= config_.refresh_interval) {
      ts.ops_since_refresh = 0;
      epoch_.Refresh();
    }
    obs_stats_.batch_sizes.Record(n);
    // The chunk is one trace: the three stages appear as child spans, and
    // any op routed to the single-op fallback nests its own span (and any
    // pending-I/O continuation) under the same trace id.
    obs::StatOpSpan chunk_span{obs::SpanKind::kBatchChunk,
                               static_cast<uint32_t>(n)};
    // Slowlog attribution (only when armed): stages 1 and 2 are chunk-
    // level, so their cost is amortized evenly across the chunk's ops;
    // stage 3 is timed per op below.
    const bool slow_armed =
        obs::kStatsEnabled && obs::GlobalSlowLog().armed();
    uint64_t slow_stage_start = slow_armed ? obs::NowNs() : 0;
    uint64_t slow_share1 = 0;
    uint64_t slow_share2 = 0;

    // ---- Stage 1: hash every key; prefetch its hash bucket. ----
    KeyHash hashes[kBatchChunk];
    bool dep[kBatchChunk] = {};
    {
      obs::StatChildSpan stage{obs::SpanKind::kBatchHash};
      for (size_t i = 0; i < n; ++i) {
        hashes[i] = Hasher{}(ops[i].key);
        index_.PrefetchBucket(hashes[i]);
      }
      // Intra-batch dependencies: an op must observe the effects of every
      // earlier write in the same chunk, but stage-2 resolutions are all
      // taken before any of the chunk executes. Conservatively (by hash, so
      // tag collisions are covered too) route any op that follows a write
      // with an equal hash to the ordered single-op path.
      size_t write_idx[kBatchChunk];
      size_t num_writes = 0;
      for (size_t i = 0; i < n; ++i) {
        for (size_t w = 0; w < num_writes; ++w) {
          if (hashes[write_idx[w]] == hashes[i]) {
            dep[i] = true;
            break;
          }
        }
        if (ops[i].kind != BatchOp::Kind::kRead) write_idx[num_writes++] = i;
      }
    }
    if (slow_armed) {
      uint64_t now = obs::NowNs();
      slow_share1 = (now - slow_stage_start) / n;
      slow_stage_start = now;
    }

    // ---- Stage 2: resolve index entries; prefetch head records. ----
    // BatchScope pins the validity of everything resolved here: if this
    // thread refreshes its epoch mid-chunk (page rollover or a fallback
    // op), all remaining resolutions are discarded.
    LightEpoch::BatchScope batch_scope{epoch_};
    HashIndex::FindResult frs[kBatchChunk];
    bool entry_found[kBatchChunk];
    bool stable;
    Address extent = Address::Invalid();
    uint32_t extent_left = 0;
    {
      obs::StatChildSpan stage{obs::SpanKind::kBatchResolve};
      stable = index_.TryFindEntriesStable(hashes, dep, n, frs, entry_found);
      if (stable) {
        Address begin = hlog_.begin_address();
        Address head = hlog_.head_address();
        Address read_only = hlog_.read_only_address();
        uint32_t predicted_appends = 0;
        for (size_t i = 0; i < n; ++i) {
          if (dep[i]) continue;
          Address a = frs[i].entry.address();
          bool in_mem = entry_found[i] &&
                        (rc_log_ == nullptr || !InReadCache(a)) &&
                        a.IsValid() && a >= begin && a >= head;
          if (in_mem) {
            hlog_.Prefetch(a, static_cast<uint32_t>(RecordT::size()));
          }
          if (ops[i].kind == BatchOp::Kind::kUpsert && rc_log_ == nullptr &&
              entry_found[i] && !(in_mem && a >= read_only)) {
            // Likely an append (chain head immutable, on disk, or invalid).
            ++predicted_appends;
          }
        }
        if (predicted_appends >= 2) {
          extent = hlog_.AllocateExtent(
              static_cast<uint32_t>(RecordT::size()), predicted_appends);
          if (extent.IsValid()) {
            extent_left = predicted_appends;
            // Give every reserved slot a dead header now: log scans treat
            // an all-zero slot as page padding and would skip the rest of
            // the page. A slot is made live only while this thread has not
            // refreshed (BatchScope), i.e. before any flush of this range
            // can have been issued, so the dead header is never persisted
            // for a slot that later becomes live.
            for (uint32_t s = 0; s < predicted_appends; ++s) {
              RecordAt(extent + s * RecordT::size())
                  ->set_info(
                      RecordInfo{Address::Invalid(), /*invalid=*/true, false});
            }
          }
        }
      }
    }

    if (slow_armed) {
      uint64_t now = obs::NowNs();
      slow_share2 = (now - slow_stage_start) / n;
    }

    // ---- Stage 3: execute against warm lines; fall back as needed. ----
    obs::StatChildSpan exec_stage{obs::SpanKind::kBatchExecute};
    obs::SlowOpState slow_state;
    PendingContext* io_ctxs[kBatchChunk];
    size_t num_ios = 0;
    for (size_t i = 0; i < n; ++i) {
      BatchOp& op = ops[i];
      bool fast = false;
      if (slow_armed) {
        // Arm the ambient slow-op state for this op: fast-path pendings
        // capture it via MakePendingRead; fallback ops nest their own
        // single-op scope over it.
        slow_state = obs::SlowOpState{};
        slow_state.kind = op.kind == BatchOp::Kind::kRead
                              ? obs::SlowOpKind::kRead
                              : (op.kind == BatchOp::Kind::kUpsert
                                     ? obs::SlowOpKind::kUpsert
                                     : obs::SlowOpKind::kRmw);
        slow_state.key_hash = hashes[i].control();
        slow_state.hash_ns = slow_share1;
        slow_state.resolve_ns = slow_share2;
        slow_state.start_ns = obs::NowNs();
        obs::CurrentSlowOp() = &slow_state;
      }
      if (stable && !dep[i] && !batch_scope.interrupted()) {
        switch (op.kind) {
          case BatchOp::Kind::kRead:
            fast = FastRead(ts, op, hashes[i], entry_found[i], frs[i],
                            io_ctxs, &num_ios);
            break;
          case BatchOp::Kind::kUpsert:
            fast = FastUpsert(ts, op, entry_found[i], frs[i], &extent,
                              &extent_left);
            break;
          case BatchOp::Kind::kRmw:
            fast = FastRmw(ts, op, entry_found[i], frs[i]);
            break;
        }
      }
      if (fast) {
        obs_stats_.batch_fast.Inc();
      } else {
        obs_stats_.batch_fallback.Inc();
        ExecuteSingle(op);
      }
      if (slow_armed) {
        obs::CurrentSlowOp() = nullptr;
        // Fallback ops record through their own single-op scope; fast
        // pendings were transferred to the context.
        if (fast && !slow_state.transferred &&
            op.status != Status::kPending) {
          uint64_t execute = obs::NowNs() - slow_state.start_ns;
          uint64_t stages[obs::kNumSlowStages] = {
              slow_share1, slow_share2, execute, 0, 0, 0};
          obs::GlobalSlowLog().MaybeRecord(
              slow_state.kind, slow_state.key_hash,
              slow_share1 + slow_share2 + execute, stages,
              /*pending=*/false, Thread::Id());
        }
      }
    }
    // Unused extent slots keep the dead headers written at reservation.

    // Coalesced submission of every disk read the chunk discovered.
    if (num_ios > 0) {
      IoReadRequest reqs[kBatchChunk];
      for (size_t i = 0; i < num_ios; ++i) {
        PendingContext* c = io_ctxs[i];
        reqs[i] = IoReadRequest{c->address.control(), c->buffer,
                                static_cast<uint32_t>(RecordT::size()),
                                &FasterKv::IoCallback, c};
      }
      obs_stats_.batch_io_group_size.Record(num_ios);
      uint32_t accepted = 0;
      Status s = hlog_.AsyncGetFromDiskBatch(
          reqs, static_cast<uint32_t>(num_ios), &accepted);
      if (s != Status::kOk) {
        // Rejected requests ([accepted, num_ios)) never reach the device
        // and never fire callbacks; fail them through the normal
        // completion machinery so each still completes exactly once.
        for (size_t k = accepted; k < num_ios; ++k) {
          IoCallback(io_ctxs[k], Status::kIoError, 0);
        }
      }
    }
  }

  static void IoCallback(void* context, Status result, uint32_t /*bytes*/) {
    auto* ctx = static_cast<PendingContext*>(context);
    ctx->io_status = result;
    if constexpr (obs::kStatsEnabled) {
      if (ctx->slow.start_ns != 0) {
        // Harvest the executor's queue/exec timing for this hop — pool
        // worker, polling reaper, or io_uring reaper (zeros when the
        // device ran the callback inline on the submitting thread) —
        // and start the owner-side wait window: everything from here to
        // the owner processing the completion lands in io_complete.
        obs::IoStageInfo& io = obs::CurrentIoStage();
        uint64_t now = obs::NowNs();
        ctx->slow.io_queue_ns += io.queue_ns;
        if (io.exec_start_ns != 0 && now > io.exec_start_ns) {
          ctx->slow.io_exec_ns += now - io.exec_start_ns;
        }
        ctx->slow.callback_ns = now;
      }
    }
    ThreadState& ts = ctx->store->thread_states_[ctx->owner];
    std::lock_guard<std::mutex> lock{ts.mutex};
    ts.completions.push_back(ctx);
  }

  void FinishPending(ThreadState& ts, PendingContext* ctx, Status result) {
    ++ts.completed;
    --ts.outstanding_ios;
    obs_stats_.pending_ios.Dec();
    if constexpr (obs::kStatsEnabled) {
      uint64_t now = obs::NowNs();
      obs_stats_.pending_io_ns.Record(now - ctx->issue_ns);
      if (ctx->trace_id != 0 && ctx->issue_ns != 0) {
        // One span for the whole pending window (first issue through every
        // chain hop to completion), parented under the operation's entry
        // span — the segment that makes a trace cross the I/O boundary.
        obs::GlobalSpanRing().Record(ctx->trace_id, obs::NewSpanId(),
                                     ctx->parent_span, ctx->issue_ns, now, 0,
                                     obs::SpanKind::kPendingIo);
      }
      obs::RecordSlowPending(&ctx->slow, now);
    }
    trace_.Emit(obs::Ev::kPendingIoDone, ctx->owner);
    NotifyCompletion(ctx, result);
    delete ctx;
  }

  void NotifyCompletion(PendingContext* ctx, Status result) {
    if (config_.completion_callback != nullptr) {
      config_.completion_callback(
          ctx->op == OpType::kRead ? UserOp::kRead : UserOp::kRmw, result,
          ctx->user_context);
    }
  }

  void ProcessCompletions(ThreadState& ts) FASTER_REQUIRES_EPOCH() {
    std::vector<PendingContext*> ready;
    {
      std::lock_guard<std::mutex> lock{ts.mutex};
      ready.swap(ts.completions);
    }
    for (PendingContext* ctx : ready) {
      // Re-establish the operation's trace around everything this
      // completion does synchronously (chain reissue, cache insert, RMW
      // continuation) — inactive when the operation was not sampled.
      obs::StatResumedSpan span{obs::SpanKind::kIoComplete, ctx->trace_id,
                                ctx->parent_span};
      if (ctx->io_status != Status::kOk) {
        FinishPending(ts, ctx, Status::kIoError);
        continue;
      }
      const RecordT* rec = ctx->record();
      RecordInfo info = rec->info();
      Address begin = hlog_.begin_address();
      if (!info.in_use() || info.invalid()) {
        // Invalid record (lost CAS) or padding: follow the chain.
        Address prev = info.in_use() ? info.previous_address()
                                     : Address::Invalid();
        if (prev.IsValid() && prev >= begin) {
          ReissueIo(ctx, prev);
        } else {
          CompleteChainMiss(ts, ctx);
        }
        continue;
      }
      if (!(rec->key == ctx->key)) {
        Address prev = info.previous_address();
        if (prev.IsValid() && prev >= begin) {
          ReissueIo(ctx, prev);
        } else {
          CompleteChainMiss(ts, ctx);
        }
        continue;
      }
      // Key matched on storage.
      if (ctx->op == OpType::kRead) {
        if constexpr (kMergeable) {
          CompleteMergeStep(ts, ctx, rec);
          continue;
        }
        if (info.tombstone()) {
          FinishPending(ts, ctx, Status::kNotFound);
        } else {
          F::SingleReader(ctx->key, ctx->input, rec->value, *ctx->output);
          if (rc_log_ != nullptr) {
            // Read-hot records earn a spot in the read cache (Appendix D).
            TryInsertToCache(ctx->key, ctx->hash, rec->value);
          }
          FinishPending(ts, ctx, Status::kOk);
        }
        continue;
      }
      // RMW continuation.
      DiskState state =
          info.tombstone() ? DiskState::kAbsent : DiskState::kValue;
      RmwContinue(ts, ctx, state, &rec->value);
    }
  }

  /// The disk chain ran out without finding the key.
  void CompleteChainMiss(ThreadState& ts, PendingContext* ctx)
      FASTER_REQUIRES_EPOCH() {
    if (ctx->op == OpType::kRead) {
      if constexpr (kMergeable) {
        CompleteMergeFinal(ts, ctx);
        return;
      }
      FinishPending(ts, ctx, Status::kNotFound);
      return;
    }
    RmwContinue(ts, ctx, DiskState::kAbsent, nullptr);
  }

  void RmwContinue(ThreadState& ts, PendingContext* ctx, DiskState state,
                   const Value* disk_value) FASTER_REQUIRES_EPOCH() {
    RmwOutcome oc = RmwInMemory(ts, ctx->key, ctx->hash, ctx->input, state,
                                disk_value, ctx->chain_bottom);
    switch (oc.kind) {
      case RmwOutcome::kDone:
        FinishPending(ts, ctx, oc.status);
        return;
      case RmwOutcome::kIo:
        // The chain bottom changed while we were reading; chase it.
        ctx->chain_bottom = oc.io_address;
        ReissueIo(ctx, oc.io_address);
        return;
      case RmwOutcome::kFuzzy:
        // The record migrated into the fuzzy region; fall back to the
        // retry list (the context stops being an outstanding I/O).
        ++ts.fuzzy_rmws;
        --ts.outstanding_ios;
        obs_stats_.pending_ios.Dec();
        obs_stats_.rmw_fuzzy_deferred.Inc();
        obs_stats_.pending_retries.Inc();
        trace_.Emit(obs::Ev::kFuzzyRmwDeferred, ctx->owner);
        ctx->chain_bottom = Address::Invalid();
        ts.retries.push_back(ctx);
        return;
    }
  }

  void ProcessRetries(ThreadState& ts) FASTER_REQUIRES_EPOCH() {
    if (ts.retries.empty()) return;
    std::vector<PendingContext*> work;
    work.swap(ts.retries);
    for (PendingContext* ctx : work) {
      obs::StatResumedSpan span{obs::SpanKind::kRetryFuzzy, ctx->trace_id,
                                ctx->parent_span};
      RmwOutcome oc = RmwInMemory(ts, ctx->key, ctx->hash, ctx->input,
                                  DiskState::kNone, nullptr,
                                  Address::Invalid());
      switch (oc.kind) {
        case RmwOutcome::kDone:
          ++ts.completed;
          obs_stats_.pending_retries.Dec();
          if constexpr (obs::kStatsEnabled) {
            // Fuzzy-retry completions bypass FinishPending; the wait in
            // the retry list folds into io_complete the same way.
            obs::RecordSlowPending(&ctx->slow, obs::NowNs());
          }
          NotifyCompletion(ctx, oc.status);
          delete ctx;
          break;
        case RmwOutcome::kIo:
          ctx->chain_bottom = oc.io_address;
          ++ts.outstanding_ios;
          obs_stats_.pending_retries.Dec();
          obs_stats_.pending_ios.Inc();
          ReissueIo(ctx, oc.io_address);
          break;
        case RmwOutcome::kFuzzy:
          ts.retries.push_back(ctx);  // still fuzzy; try again later
          break;
      }
    }
  }

  // -------------------------------------------------------------------
  // Mergeable (CRDT) reads: reconcile all delta records (Sec. 6.3).
  // -------------------------------------------------------------------

  Status MergeableRead(ThreadState& ts, const Key& key, KeyHash hash,
                       Address addr, Output* output) FASTER_REQUIRES_EPOCH() {
    static_assert(!kMergeable || std::is_same_v<Value, Output>,
                  "mergeable stores require Output == Value");
    Value acc{};
    bool found = false;
    Address begin = hlog_.begin_address();
    Address head = hlog_.head_address();
    Address min_mem = std::max(head, begin);
    // Merge every matching in-memory record, newest to oldest.
    while (addr.IsValid() && addr >= min_mem) {
      RecordT* r = RecordAt(addr);
      if (r->key == key) {
        if (r->info().tombstone()) {
          // Older records are dead; finish with what we have.
          if (found) {
            *output = acc;
            return Status::kOk;
          }
          return Status::kNotFound;
        }
        F::Merge(acc, r->value);
        found = true;
      }
      addr = r->info().previous_address();
    }
    if (!addr.IsValid() || addr < begin) {
      if (!found) return Status::kNotFound;
      *output = acc;
      return Status::kOk;
    }
    // Continue reconciliation on storage.
    auto* ctx = new PendingContext(this, OpType::kRead, key, hash, Input{},
                                   output, Thread::Id());
    ctx->merge_acc = acc;
    ctx->merge_found = found;
    ctx->address = addr;
    ctx->chain_bottom = addr;
    CaptureTrace(ctx);
    ++ts.outstanding_ios;
    ++ts.ios_issued;
    obs_stats_.pending_ios.Inc();
    if constexpr (obs::kStatsEnabled) ctx->issue_ns = obs::NowNs();
    trace_.Emit(obs::Ev::kPendingIoIssued, ctx->owner);
    hlog_.AsyncGetFromDisk(addr, RecordT::size(), ctx->buffer,
                           &FasterKv::IoCallback, ctx);
    return Status::kPending;
  }

  void CompleteMergeStep(ThreadState& ts, PendingContext* ctx,
                         const RecordT* rec) FASTER_REQUIRES_EPOCH() {
    RecordInfo info = rec->info();
    if (info.tombstone()) {
      CompleteMergeFinal(ts, ctx);
      return;
    }
    F::Merge(ctx->merge_acc, rec->value);
    ctx->merge_found = true;
    Address prev = info.previous_address();
    if (prev.IsValid() && prev >= hlog_.begin_address()) {
      ReissueIo(ctx, prev);
      return;
    }
    CompleteMergeFinal(ts, ctx);
  }

  void CompleteMergeFinal(ThreadState& ts, PendingContext* ctx) {
    if constexpr (kMergeable) {
      if (ctx->merge_found) {
        *ctx->output = ctx->merge_acc;
        FinishPending(ts, ctx, Status::kOk);
        return;
      }
    }
    FinishPending(ts, ctx, Status::kNotFound);
  }

  // -------------------------------------------------------------------
  // Disk scanning (recovery repair pass and Appendix F log analytics).
  // -------------------------------------------------------------------

  template <class Fn>
  void ScanDiskRange(Address from, Address to, Fn&& fn) {
    std::vector<uint8_t> page(Address::kPageSize);
    Address addr = from;
    uint64_t loaded_page = UINT64_MAX;
    while (addr < to) {
      if (addr.offset() + RecordT::size() > Address::kPageSize) {
        addr = addr.NextPageStart();
        continue;
      }
      if (addr.page() != loaded_page) {
        if (hlog_.ReadFromDiskSync(addr.PageStart(), Address::kPageSize,
                                   page.data()) != Status::kOk) {
          return;
        }
        loaded_page = addr.page();
      }
      const auto* rec =
          reinterpret_cast<const RecordT*>(page.data() + addr.offset());
      if (!rec->info().in_use()) {
        addr = addr.NextPageStart();  // padding
        continue;
      }
      fn(addr, *rec);
      addr = addr + RecordT::size();
    }
  }

  struct CheckpointMetadata {
    uint64_t magic;
    uint64_t t1;
    uint64_t t2;
    uint64_t begin;
    uint32_t record_size;
  };
  static constexpr uint64_t kCheckpointMagic = 0xFA57C8EC4B01ULL;

  Config config_;
  LightEpoch epoch_;
  HashIndex index_;
  HybridLog hlog_;
  std::unique_ptr<HybridLog> rc_log_;  // read cache (Appendix D), optional
  std::vector<ThreadState> thread_states_;
  mutable ObsStats obs_stats_;
  mutable obs::StatEventRing trace_;
  bool flight_attached_ = false;
};

}  // namespace faster

#endif  // FASTER_CORE_FASTER_H_
