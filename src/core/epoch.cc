#include "core/epoch.h"

#include <cassert>

namespace faster {

namespace {
// Epoch numbering starts at 1 so that kUnprotected (0) never aliases a real
// epoch and so "safe epoch" can start at 0 (nothing safe yet).
constexpr uint64_t kFirstEpoch = 1;
}  // namespace

LightEpoch::LightEpoch()
    : current_epoch_{kFirstEpoch}, safe_to_reclaim_epoch_{0} {}

LightEpoch::~LightEpoch() {
  // Run any remaining actions; at destruction time no thread may be
  // protected, so every registered epoch is safe.
  Drain(UINT64_MAX - 2);
}

// The phantom epoch capability (core/annotations.h) is acquired here but
// no analyzable lock operation happens in the body, so the analysis is
// disabled for the definition; the contract lives on the declaration.
uint64_t LightEpoch::Protect() FASTER_NO_THREAD_SAFETY_ANALYSIS {
  uint32_t tid = Thread::Id();
  ++table_[tid].protect_serial;
  uint64_t current = current_epoch_.load(std::memory_order_acquire);
  // Publish-then-recheck: between reading E and publishing it, another
  // thread may bump E and compute a safe epoch that excludes this (still
  // invisible) thread, leaving E_s >= our local epoch. Republishing until
  // a seq_cst re-read confirms E did not move restores the invariant: any
  // bump ordered after the confirmed publication scans the table with our
  // entry visible, so E_s stays below our local epoch. (Refresh() does not
  // need this: an already-protected thread's old local epoch pins the
  // minimum during the store.)
  for (;;) {
    table_[tid].local_epoch.store(current, std::memory_order_seq_cst);
    uint64_t now = current_epoch_.load(std::memory_order_seq_cst);
    if (now == current) {
      return current;
    }
    current = now;
  }
}

bool LightEpoch::IsProtected() const {
  return table_[Thread::Id()].local_epoch.load(std::memory_order_relaxed) !=
         kUnprotected;
}

uint64_t LightEpoch::Refresh() {
  uint32_t tid = Thread::Id();
  uint64_t current = current_epoch_.load(std::memory_order_acquire);
  assert(table_[tid].local_epoch.load(std::memory_order_relaxed) !=
         kUnprotected);
  ++table_[tid].protect_serial;
  table_[tid].local_epoch.store(current, std::memory_order_seq_cst);
  uint64_t safe = ComputeNewSafeToReclaimEpoch();
  if (drain_count_.load(std::memory_order_acquire) > 0) {
    Drain(safe);
  }
  return current;
}

void LightEpoch::Unprotect() FASTER_NO_THREAD_SAFETY_ANALYSIS {
  // Releasing protection a thread does not hold corrupts nothing directly
  // but means some caller's protected region ended earlier than it thinks.
  assert(IsProtected());
  ++table_[Thread::Id()].protect_serial;
  table_[Thread::Id()].local_epoch.store(kUnprotected,
                                         std::memory_order_release);
}

uint64_t LightEpoch::ComputeNewSafeToReclaimEpoch() {
  uint64_t current = current_epoch_.load(std::memory_order_acquire);
  // An epoch c is safe iff every protected thread has local epoch > c, so
  // the maximal safe epoch is (min protected local epoch) - 1; if no thread
  // is protected it is E - 1 (E itself can still gain new entrants).
  uint64_t min_epoch = current;
  uint32_t live = Thread::HighWaterMark();
  for (uint32_t i = 0; i < live; ++i) {
    uint64_t e = table_[i].local_epoch.load(std::memory_order_acquire);
    if (e != kUnprotected && e < min_epoch) {
      min_epoch = e;
    }
  }
  uint64_t safe = min_epoch - 1;
  // Monotonic update: never move the safe epoch backwards.
  uint64_t prev = safe_to_reclaim_epoch_.load(std::memory_order_acquire);
  while (prev < safe && !safe_to_reclaim_epoch_.compare_exchange_weak(
                            prev, safe, std::memory_order_acq_rel)) {
  }
  return safe_to_reclaim_epoch_.load(std::memory_order_acquire);
}

uint64_t LightEpoch::BumpCurrentEpoch() {
  return current_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

uint64_t LightEpoch::BumpCurrentEpoch(std::function<void()> action) {
  // See the declaration: the full-drain-list fallback below only
  // terminates for a protected caller.
  assert(IsProtected());
  // The action becomes runnable once the *prior* epoch (the value before
  // the increment) is safe.
  uint64_t prior = current_epoch_.fetch_add(1, std::memory_order_acq_rel);
  // Find a free slot in the drain list. The list is sized generously; if it
  // is ever full we drain in-line until a slot frees up (this requires the
  // caller to be epoch-protected so safety can advance).
  for (;;) {
    for (uint32_t i = 0; i < kDrainListSize; ++i) {
      uint64_t expected = DrainEntry::kFree;
      if (drain_list_[i].epoch.compare_exchange_strong(
              expected, DrainEntry::kLocked, std::memory_order_acq_rel)) {
        drain_list_[i].action = std::move(action);
        if constexpr (obs::kStatsEnabled) {
          drain_list_[i].armed_ns = obs::NowNs();
        }
        drain_list_[i].epoch.store(prior, std::memory_order_release);
        uint32_t outstanding =
            drain_count_.fetch_add(1, std::memory_order_acq_rel) + 1;
        obs_stats_.bumps.Inc();
        obs_stats_.drain_occupancy.Record(outstanding);
        return prior + 1;
      }
    }
    // List full: help drain. A protected caller that has not refreshed since
    // arming earlier actions pins the safe epoch below all of them, so a
    // plain drain would spin forever; if the drain frees nothing, advance our
    // own slot to the epoch we just created. A bump is an operation boundary
    // for its caller, so adopting the new epoch here is as safe as Refresh().
    Drain(ComputeNewSafeToReclaimEpoch());
    if (drain_count_.load(std::memory_order_acquire) >= kDrainListSize &&
        IsProtected()) {
      // This advances local_epoch exactly like Refresh() would, so it must
      // also invalidate any outstanding BatchScope.
      ++table_[Thread::Id()].protect_serial;
      table_[Thread::Id()].local_epoch.store(
          current_epoch_.load(std::memory_order_acquire),
          std::memory_order_seq_cst);
    }
  }
}

void LightEpoch::Drain(uint64_t safe_epoch) {
  uint32_t remaining = drain_count_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < kDrainListSize && remaining > 0; ++i) {
    uint64_t e = drain_list_[i].epoch.load(std::memory_order_acquire);
    if (e <= safe_epoch) {
      // Claim the slot; the CAS guarantees exactly-once execution even if
      // several threads drain concurrently.
      if (drain_list_[i].epoch.compare_exchange_strong(
              e, DrainEntry::kLocked, std::memory_order_acq_rel)) {
        std::function<void()> action = std::move(drain_list_[i].action);
        drain_list_[i].action = nullptr;
        if constexpr (obs::kStatsEnabled) {
          obs_stats_.bump_to_drain_ns.Record(obs::NowNs() -
                                             drain_list_[i].armed_ns);
        }
        drain_list_[i].epoch.store(DrainEntry::kFree,
                                   std::memory_order_release);
        remaining = drain_count_.fetch_sub(1, std::memory_order_acq_rel) - 1;
        obs_stats_.actions_run.Inc();
        action();
      }
    }
  }
}

void LightEpoch::SpinWaitForSafety(uint64_t target) {
  assert(IsProtected());
  while (SafeToReclaimEpoch() < target ||
         drain_count_.load(std::memory_order_acquire) > 0) {
    Refresh();
  }
}

}  // namespace faster
