#include "core/thread.h"

#include <cassert>

namespace faster {

std::atomic<bool> Thread::in_use_[Thread::kMaxThreads] = {};
std::atomic<uint32_t> Thread::high_water_{0};

namespace {

/// RAII holder living in thread-local storage; releases the slot when the
/// thread exits.
struct ThreadIdHolder {
  uint32_t id = Thread::kInvalidId;
  ~ThreadIdHolder();
};

thread_local ThreadIdHolder t_holder;

}  // namespace

uint32_t Thread::Acquire() {
  for (uint32_t i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (in_use_[i].compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      uint32_t hw = high_water_.load(std::memory_order_relaxed);
      while (i + 1 > hw &&
             !high_water_.compare_exchange_weak(hw, i + 1,
                                                std::memory_order_relaxed)) {
      }
      return i;
    }
  }
  assert(false && "Too many live threads for faster::Thread");
  return kInvalidId;
}

void Thread::Release(uint32_t id) {
  if (id < kMaxThreads) {
    in_use_[id].store(false, std::memory_order_release);
  }
}

uint32_t Thread::Id() {
  if (t_holder.id == kInvalidId) {
    t_holder.id = Acquire();
  }
  return t_holder.id;
}

uint32_t Thread::HighWaterMark() {
  return high_water_.load(std::memory_order_acquire);
}

namespace {
ThreadIdHolder::~ThreadIdHolder() { Thread::Release(id); }
}  // namespace

}  // namespace faster
