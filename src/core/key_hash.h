#ifndef FASTER_CORE_KEY_HASH_H_
#define FASTER_CORE_KEY_HASH_H_

#include <cstdint>
#include <cstring>

namespace faster {

/// 64-bit mixer from MurmurHash3's finalizer (also used by SplitMix64).
/// Full-avalanche: every input bit affects every output bit, which matters
/// because the hash index consumes disjoint bit ranges (low bits for the
/// bucket, top bits for the tag).
inline constexpr uint64_t Mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// FNV-1a for arbitrary byte strings (variable-length keys).
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < len; ++i) {
    h = (h ^ p[i]) * 1099511628211ULL;
  }
  return Mix64(h);
}

/// The hash of a key, pre-sliced into the pieces the FASTER index consumes
/// (Sec. 3.1): the bucket offset (low `k` bits, taken modulo table size)
/// and the 15-bit tag (top bits, independent of table size so the index
/// can grow without recomputing tags).
class KeyHash {
 public:
  static constexpr uint64_t kTagBits = 15;

  constexpr KeyHash() : control_{0} {}
  constexpr explicit KeyHash(uint64_t control) : control_{control} {}

  constexpr uint64_t control() const { return control_; }

  /// Bucket index in a table of `table_size` buckets (power of two).
  constexpr uint64_t Bucket(uint64_t table_size) const {
    return control_ & (table_size - 1);
  }
  /// 15-bit tag used to increase effective hashing resolution.
  constexpr uint16_t Tag() const {
    return static_cast<uint16_t>(control_ >> (64 - kTagBits));
  }

  friend constexpr bool operator==(KeyHash a, KeyHash b) {
    return a.control_ == b.control_;
  }

 private:
  uint64_t control_;
};

/// Default hasher: integral keys go through Mix64; anything else must
/// provide `uint64_t GetHash() const`.
template <typename Key>
struct DefaultKeyHasher {
  KeyHash operator()(const Key& key) const {
    if constexpr (std::is_integral_v<Key>) {
      return KeyHash{Mix64(static_cast<uint64_t>(key))};
    } else {
      return KeyHash{key.GetHash()};
    }
  }
};

}  // namespace faster

#endif  // FASTER_CORE_KEY_HASH_H_
