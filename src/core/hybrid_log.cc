#include "core/hybrid_log.h"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/log.h"

namespace faster {

namespace {
// The first 64 bytes of the address space are reserved so that no record
// ever has logical address 0 (the invalid address / list terminator).
constexpr uint64_t kFirstAddress = 64;
}  // namespace

HybridLog::HybridLog(const LogConfig& config, IDevice* device,
                     LightEpoch* epoch)
    : device_{device},
      epoch_{epoch},
      read_cache_mode_{config.read_cache_mode},
      tail_page_offset_{kFirstAddress},
      begin_address_{kFirstAddress},
      head_address_{kFirstAddress},
      read_only_address_{kFirstAddress},
      safe_read_only_address_{kFirstAddress},
      flushed_until_{kFirstAddress},
      flush_issued_{Address{kFirstAddress}} {
  buffer_pages_ = std::max<uint64_t>(config.memory_size_bytes >>
                                         Address::kOffsetBits,
                                     2);
  double mf = std::min(std::max(config.mutable_fraction, 0.0), 1.0);
  // The mutable region is `ro_lag_pages_` pages behind the tail; it must
  // leave at least one page of read-only runway so pages can become
  // flushable before their frames are needed again.
  ro_lag_pages_ = static_cast<uint64_t>(mf * static_cast<double>(buffer_pages_));
  if (ro_lag_pages_ >= buffer_pages_) ro_lag_pages_ = buffer_pages_ - 1;

  frames_.resize(buffer_pages_);
  for (uint64_t i = 0; i < buffer_pages_; ++i) {
    frames_[i] = static_cast<uint8_t*>(
        std::aligned_alloc(4096, Address::kPageSize));
    std::memset(frames_[i], 0, Address::kPageSize);
    closed_page_.push_back(std::make_unique<std::atomic<int64_t>>(-1));
  }
}

HybridLog::~HybridLog() {
  device_->Drain();
  for (uint8_t* f : frames_) std::free(f);
}

bool HybridLog::MonotonicUpdate(std::atomic<uint64_t>& a, Address desired,
                                Address* winner) {
  uint64_t current = a.load(std::memory_order_acquire);
  while (current < desired.control()) {
    if (a.compare_exchange_weak(current, desired.control(),
                                std::memory_order_acq_rel)) {
      if (winner != nullptr) *winner = desired;
      return true;
    }
  }
  if (winner != nullptr) *winner = Address{current};
  return false;
}

Address HybridLog::tail_address() const {
  uint64_t tpo = tail_page_offset_.load(std::memory_order_acquire);
  uint64_t page = tpo >> 32;
  uint64_t offset = std::min<uint64_t>(tpo & 0xffffffffull,
                                       Address::kPageSize);
  return Address{(page << Address::kOffsetBits) + offset};
}

Address HybridLog::Allocate(uint32_t size, uint64_t* closed_page) {
  FASTER_EPOCH_VERIFY(epoch_->IsProtected(),
                      "log allocation without epoch protection");
  assert(size % 8 == 0 && size > 0 && size <= Address::kPageSize);
  uint64_t tpo = tail_page_offset_.fetch_add(size, std::memory_order_acq_rel);
  uint64_t page = tpo >> 32;
  uint64_t offset = tpo & 0xffffffffull;
  if (offset + size <= Address::kPageSize) {
    return Address{page, offset};
  }
  // This allocation (and any later one) overflowed the page; the caller
  // must close it via NewPage and retry.
  *closed_page = page;
  return Address::Invalid();
}

Address HybridLog::AllocateExtent(uint32_t size, uint32_t count) {
  FASTER_EPOCH_VERIFY(epoch_->IsProtected(),
                      "log extent allocation without epoch protection");
  assert(size % 8 == 0 && size > 0 && count > 0);
  uint64_t total = static_cast<uint64_t>(size) * count;
  if (total > Address::kPageSize) {
    return Address::Invalid();
  }
  uint64_t tpo =
      tail_page_offset_.fetch_add(total, std::memory_order_acq_rel);
  uint64_t page = tpo >> 32;
  uint64_t offset = tpo & 0xffffffffull;
  if (offset + total <= Address::kPageSize) {
    return Address{page, offset};
  }
  // Overflowed the page. Leave the page closing to the next per-record
  // Allocate, whose failure path drives NewPage + epoch refresh.
  return Address::Invalid();
}

bool HybridLog::NewPage(uint64_t old_page) {
  // The epoch triggers armed here (safe-RO propagation, frame eviction)
  // only drain if this thread's refreshes can advance safety.
  assert(epoch_->IsProtected());
  // Page transitions are rare (once per page); a mutex keeps the
  // frame-recycling logic simple without touching the allocation fast path.
  std::lock_guard<std::recursive_mutex> lock{flush_mutex_};

  uint64_t tpo = tail_page_offset_.load(std::memory_order_acquire);
  if ((tpo >> 32) != old_page) {
    return true;  // Another thread already opened the next page.
  }
  uint64_t new_page = old_page + 1;

  // Shift the read-only offset to maintain its lag from the tail
  // (Sec. 6.1); propagate to the safe read-only offset via an epoch
  // trigger (Sec. 6.2) which also makes the newly immutable pages
  // eligible for flushing.
  if (new_page > ro_lag_pages_) {
    Address desired_ro{(new_page - ro_lag_pages_) << Address::kOffsetBits};
    Address winner;
    if (MonotonicUpdate(read_only_address_, desired_ro, &winner)) {
      epoch_->BumpCurrentEpoch([this, winner]() {
        // Trigger actions drain only from epoch calls that require
        // protection, so the running thread holds the capability.
        AssertEpochProtected(*epoch_);
        UpdateSafeReadOnly(winner);
      });
    }
  }

  // Shift the head if the buffer would otherwise overflow; pages may only
  // be evicted once they are flushed (Sec. 5.2).
  if (new_page >= buffer_pages_) {
    uint64_t desired_head_page = new_page - buffer_pages_ + 1;
    uint64_t flushed_page = read_cache_mode_
                                ? desired_head_page
                                : Load(flushed_until_).page();
    uint64_t new_head_page = std::min(desired_head_page, flushed_page);
    Address new_head{new_head_page << Address::kOffsetBits};
    Address old_head = Load(head_address_);
    Address winner;
    if (MonotonicUpdate(head_address_, new_head, &winner)) {
      uint64_t from_page = old_head.page();
      uint64_t to_page = winner.page();
      epoch_->BumpCurrentEpoch([this, from_page, to_page]() {
        AssertEpochProtected(*epoch_);
        // The epoch is safe: no thread still reads these pages. Let the
        // eviction callback (read cache, Appendix D) inspect them before
        // the frames become recyclable.
        if (eviction_callback_ != nullptr) {
          eviction_callback_(Address{from_page << Address::kOffsetBits},
                             Address{to_page << Address::kOffsetBits});
        }
        obs_stats_.pages_evicted.Add(to_page - from_page);
        obs::StatLog(obs::LogLevel::kInfo, "hlog", "pages evicted",
                     obs::LogField{"from_page", from_page},
                     obs::LogField{"to_page", to_page});
        for (uint64_t p = from_page; p < to_page; ++p) {
          closed_page_[p % buffer_pages_]->store(
              static_cast<int64_t>(p), std::memory_order_release);
        }
      });
    }
    if (new_head_page < desired_head_page) {
      obs_stats_.alloc_stalls.Inc();
      // Rate-limited: a stalled allocator retries this path in a tight
      // refresh loop; one report per window is plenty.
      static obs::StatLogRateLimit stall_limit{100'000'000};  // 100ms
      obs::StatLogLimited(stall_limit, obs::LogLevel::kWarn, "hlog",
                          "allocation stalled on flush frontier",
                          obs::LogField{"want_head_page", desired_head_page},
                          obs::LogField{"flushed_page", flushed_page});
      // On a polling device the flush frontier only advances when someone
      // executes the queued writes — including writes queued by other
      // (possibly stalled or departed) threads, hence PollAll. Safe under
      // flush_mutex_: it is recursive, so CompleteFlush re-entering on
      // this thread is fine. No-op on the thread-pool path.
      device_->PollAll();
      return false;  // Flush frontier not far enough yet; caller refreshes.
    }
  }

  // The new page's frame must have had its previous tenant evicted.
  uint64_t frame = new_page % buffer_pages_;
  if (new_page >= buffer_pages_ &&
      closed_page_[frame]->load(std::memory_order_acquire) !=
          static_cast<int64_t>(new_page - buffer_pages_)) {
    obs_stats_.alloc_stalls.Inc();
    static obs::StatLogRateLimit evict_limit{100'000'000};  // 100ms
    obs::StatLogLimited(evict_limit, obs::LogLevel::kWarn, "hlog",
                        "allocation stalled on frame eviction",
                        obs::LogField{"new_page", new_page});
    // Eviction waits on the flush frontier too (see above): keep queued
    // device writes moving while the caller's refresh loop spins.
    device_->PollAll();
    return false;  // Eviction trigger hasn't run; caller refreshes.
  }

  std::memset(frames_[frame], 0, Address::kPageSize);
  obs_stats_.pages_opened.Inc();
  uint64_t expected = tail_page_offset_.load(std::memory_order_acquire);
  while ((expected >> 32) == old_page) {
    uint64_t desired = new_page << 32;
    if (tail_page_offset_.compare_exchange_weak(expected, desired,
                                                std::memory_order_acq_rel)) {
      return true;
    }
  }
  return true;
}

void HybridLog::UpdateSafeReadOnly(Address new_safe) {
  std::lock_guard<std::recursive_mutex> lock{flush_mutex_};
  UpdateSafeReadOnlyLocked(new_safe);
}

void HybridLog::UpdateSafeReadOnlyLocked(Address new_safe) {
  Address winner;
  MonotonicUpdate(safe_read_only_address_, new_safe, &winner);
  if (read_cache_mode_) {
    // Read-cache pages are never flushed (their records already live on
    // the primary log); the flush frontier trivially follows the safe
    // read-only offset so eviction can proceed.
    MonotonicUpdate(flushed_until_, winner);
    return;
  }
  IssueFlushesLocked(winner);
}

void HybridLog::IssueFlushesLocked(Address limit) {
  while (flush_issued_ < limit) {
    Address chunk_end = std::min(limit, flush_issued_.NextPageStart());
    auto* ctx = new FlushContext{this, flush_issued_, chunk_end, 0};
    uint32_t len = static_cast<uint32_t>(chunk_end - flush_issued_);
    if constexpr (obs::kStatsEnabled) {
      ctx->issue_ns = obs::NowNs();
    }
    obs_stats_.flush_chunks.Inc();
    obs_stats_.flush_bytes.Add(len);
    obs::StatLog(obs::LogLevel::kDebug, "hlog", "flush chunk issued",
                 obs::LogField{"start", flush_issued_.control()},
                 obs::LogField{"len", static_cast<uint64_t>(len)});
    device_->WriteAsync(Get(flush_issued_), flush_issued_.control(), len,
                        &HybridLog::FlushCallback, ctx);
    flush_issued_ = chunk_end;
  }
}

void HybridLog::FlushCallback(void* context, Status result, uint32_t) {
  auto* ctx = static_cast<FlushContext*>(context);
  // I/O errors are recorded but the frontier still advances so the log
  // cannot deadlock; callers that care (checkpoint) check io_error().
  if (result != Status::kOk) {
    ctx->log->io_error_.store(true, std::memory_order_release);
    obs::StatLog(obs::LogLevel::kError, "hlog", "flush write failed",
                 obs::LogField{"start", ctx->start.control()},
                 obs::LogField{"end", ctx->end.control()},
                 obs::LogField{"status", static_cast<uint64_t>(result)});
  }
  if constexpr (obs::kStatsEnabled) {
    ctx->log->obs_stats_.flush_ns.Record(obs::NowNs() - ctx->issue_ns);
  }
  ctx->log->CompleteFlush(ctx->start, ctx->end);
  delete ctx;
}

void HybridLog::CompleteFlush(Address start, Address end) {
  std::lock_guard<std::recursive_mutex> lock{flush_mutex_};
  completed_flushes_[start.control()] = end.control();
  // Advance the flush frontier across contiguous completed chunks.
  uint64_t frontier = flushed_until_.load(std::memory_order_acquire);
  for (;;) {
    auto it = completed_flushes_.find(frontier);
    if (it == completed_flushes_.end()) break;
    frontier = it->second;
    completed_flushes_.erase(it);
  }
  MonotonicUpdate(flushed_until_, Address{frontier});
}

Status HybridLog::AsyncGetFromDisk(Address address, uint32_t size, void* dst,
                                   IoCallback callback, void* context) {
  return device_->ReadAsync(address.control(), dst, size, callback, context);
}

Status HybridLog::AsyncGetFromDiskBatch(const IoReadRequest* requests,
                                        uint32_t n, uint32_t* accepted) {
  return device_->ReadBatchAsync(requests, n, accepted);
}

Status HybridLog::ReadFromDiskSync(Address address, uint32_t size, void* dst) {
  // order: release store from the IO callback publishes `result`; acquire
  // load in the spin loop pairs with it.
  std::atomic<int> done{0};
  Status result = Status::kOk;
  struct SyncCtx {
    std::atomic<int>* done;
    Status* result;
  } ctx{&done, &result};
  device_->ReadAsync(
      address.control(), dst, size,
      [](void* c, Status s, uint32_t) {
        auto* sc = static_cast<SyncCtx*>(c);
        *sc->result = s;
        sc->done->store(1, std::memory_order_release);
      },
      &ctx);
  while (done.load(std::memory_order_acquire) == 0) {
    // Polling devices complete I/O on the waiting thread; no-op otherwise.
    device_->Poll();
    std::this_thread::yield();
  }
  return result;
}

Address HybridLog::ShiftReadOnlyToTail(bool wait) {
  assert(epoch_->IsProtected());
  Address tail = tail_address();
  Address winner;
  if (MonotonicUpdate(read_only_address_, tail, &winner)) {
    epoch_->BumpCurrentEpoch([this, winner]() {
      AssertEpochProtected(*epoch_);
      UpdateSafeReadOnly(winner);
    });
  }
  if (wait) {
    while (Load(flushed_until_) < tail) {
      epoch_->Refresh();
      // Execute queued flush writes — ours and other threads' — so the
      // frontier can advance on polling devices (no-op otherwise).
      device_->PollAll();
      std::this_thread::yield();
    }
  }
  return tail;
}

bool HybridLog::ShiftBeginAddress(Address new_begin) {
  return MonotonicUpdate(begin_address_, new_begin);
}

void HybridLog::RecoverTo(Address begin, Address tail) {
  begin_address_.store(begin.control(), std::memory_order_release);
  head_address_.store(tail.control(), std::memory_order_release);
  read_only_address_.store(tail.control(), std::memory_order_release);
  safe_read_only_address_.store(tail.control(), std::memory_order_release);
  flushed_until_.store(tail.control(), std::memory_order_release);
  {
    std::lock_guard<std::recursive_mutex> lock{flush_mutex_};
    flush_issued_ = tail;
    completed_flushes_.clear();
  }
  // Mark every frame's previous tenant as evicted so allocation can resume
  // at `tail` (possibly mid-page): frame f's last pre-tail page is treated
  // as closed.
  uint64_t tail_page = tail.page();
  for (uint64_t f = 0; f < buffer_pages_; ++f) {
    int64_t last;
    uint64_t mod = tail_page % buffer_pages_;
    uint64_t delta = (mod >= f) ? (mod - f) : (mod + buffer_pages_ - f);
    int64_t p = static_cast<int64_t>(tail_page) - static_cast<int64_t>(delta);
    if (f == mod) p -= static_cast<int64_t>(buffer_pages_);
    last = p;
    closed_page_[f]->store(last < 0 ? -1 : last, std::memory_order_release);
  }
  std::memset(frames_[tail_page % buffer_pages_], 0, Address::kPageSize);
  tail_page_offset_.store((tail_page << 32) | tail.offset(),
                          std::memory_order_release);
}

}  // namespace faster
