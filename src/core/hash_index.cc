#include "core/hash_index.h"

#include <unistd.h>

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <thread>

namespace faster {

namespace {

uint64_t RoundUpPowerOf2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

constexpr int64_t kChunkLocked = INT64_MIN;

bool WriteAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::write(fd, p, len);
    if (n <= 0) return false;
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    ssize_t n = ::read(fd, p, len);
    if (n <= 0) return false;
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

HashIndex::HashIndex(uint64_t table_size, LightEpoch* epoch,
                     uint32_t tag_bits)
    : epoch_{epoch} {
  if (tag_bits < 1) tag_bits = 1;
  if (tag_bits > 15) tag_bits = 15;
  tag_mask_ = static_cast<uint16_t>((1u << tag_bits) - 1);
  table_size = RoundUpPowerOf2(std::max<uint64_t>(table_size, 64));
  tables_[0].store(AllocateTable(table_size), std::memory_order_release);
  table_size_[0].store(table_size, std::memory_order_release);
  set_resize_state(Phase::kStable, 0);
}

HashIndex::~HashIndex() {
  for (int v = 0; v < 2; ++v) {
    std::free(tables_[v].load(std::memory_order_relaxed));
    for (HashBucket* b : overflow_pool_[v]) std::free(b);
  }
}

HashBucket* HashIndex::AllocateTable(uint64_t num_buckets) {
  void* mem = std::aligned_alloc(64, num_buckets * sizeof(HashBucket));
  if (mem == nullptr) return nullptr;
  std::memset(mem, 0, num_buckets * sizeof(HashBucket));
  return static_cast<HashBucket*>(mem);
}

HashBucket* HashIndex::AllocateOverflowBucket(uint8_t version) {
  void* mem = std::aligned_alloc(64, sizeof(HashBucket));
  std::memset(mem, 0, sizeof(HashBucket));
  auto* bucket = static_cast<HashBucket*>(mem);
  obs_stats_.overflow_allocs.Inc();
  std::lock_guard<std::mutex> lock{overflow_mutex_};
  overflow_pool_[version].push_back(bucket);
  return bucket;
}

// ---------------------------------------------------------------------------
// OpScope: version resolution + chunk pinning (Appendix B).
// ---------------------------------------------------------------------------

HashIndex::OpScope::OpScope(HashIndex& index, KeyHash hash)
    : index_{index}, pinned_chunk_{-1} {
  // Every index operation walks bucket chains whose memory is reclaimed
  // epoch-deferred (Grow retires tables, overflow pools are version-tied).
  FASTER_EPOCH_VERIFY(index.epoch_->IsProtected(),
                      "index operation (OpScope) without epoch protection");
  for (;;) {
    ResizeInfo info = index.resize_info();
    uint8_t v = info.version;
    if (info.phase == Phase::kStable) {
      // Common case: no resize in flight; operate on the active table.
      table_ = index.tables_[v].load(std::memory_order_acquire);
      table_size_ = index.table_size_[v].load(std::memory_order_acquire);
      return;
    }
    uint64_t old_size = index.table_size_[v].load(std::memory_order_acquire);
    uint64_t chunk = hash.Bucket(old_size) / kChunkSize;
    if (info.phase == Phase::kPrepare) {
      // Resizing announced but not started: operate on the old table while
      // holding the chunk pin, so migration of this chunk waits for us.
      int64_t pin = index.pins_[chunk]->load(std::memory_order_acquire);
      if (pin >= 0 &&
          index.pins_[chunk]->compare_exchange_weak(
              pin, pin + 1, std::memory_order_acq_rel)) {
        table_ = index.tables_[v].load(std::memory_order_acquire);
        table_size_ = old_size;
        pinned_chunk_ = static_cast<int64_t>(chunk);
        return;
      }
      if (pin < 0) {
        // Migration already claimed this chunk: the resizing phase has
        // actually begun; fall through to the resizing path.
        index.EnsureMigrated(chunk);
        table_ = index.tables_[1 - v].load(std::memory_order_acquire);
        table_size_ = index.table_size_[1 - v].load(std::memory_order_acquire);
        return;
      }
      continue;  // CAS raced; retry.
    }
    // Phase::kResizing: make sure our chunk is on the new table, then use it.
    index.EnsureMigrated(chunk);
    table_ = index.tables_[1 - v].load(std::memory_order_acquire);
    table_size_ = index.table_size_[1 - v].load(std::memory_order_acquire);
    return;
  }
}

HashIndex::OpScope::~OpScope() {
  if (pinned_chunk_ >= 0) {
    index_.pins_[static_cast<uint64_t>(pinned_chunk_)]->fetch_sub(
        1, std::memory_order_acq_rel);
  }
}

// ---------------------------------------------------------------------------
// Lookup / insert (Sec. 3.2).
// ---------------------------------------------------------------------------

bool HashIndex::ScanChain(HashBucket* bucket, uint16_t tag, FindResult* match,
                          std::atomic<uint64_t>** free_slot, uint8_t) {
  uint64_t probes = 0;
  while (bucket != nullptr) {
    for (uint32_t i = 0; i < HashBucket::kNumEntries; ++i) {
      HashBucketEntry entry{
          bucket->entries[i].load(std::memory_order_acquire)};
      ++probes;
      if (entry.IsUnused()) {
        if (free_slot != nullptr && *free_slot == nullptr) {
          *free_slot = &bucket->entries[i];
        }
        continue;
      }
      if (!entry.tentative() && entry.tag() == tag) {
        match->slot = &bucket->entries[i];
        match->entry = entry;
        obs_stats_.probe_len.Record(probes);
        return true;
      }
    }
    bucket = reinterpret_cast<HashBucket*>(
        bucket->overflow.load(std::memory_order_acquire));
  }
  obs_stats_.probe_len.Record(probes);
  return false;
}

bool HashIndex::FindEntry(const OpScope& scope, KeyHash hash,
                          FindResult* out) const {
  FASTER_EPOCH_VERIFY(epoch_->IsProtected(),
                      "bucket read (FindEntry) without epoch protection");
  uint16_t tag = EffectiveTag(hash);
  HashBucket* bucket = &scope.table_[hash.Bucket(scope.table_size_)];
  obs_stats_.finds.Inc();
  // const_cast: ScanChain only performs atomic loads here.
  bool hit =
      const_cast<HashIndex*>(this)->ScanChain(bucket, tag, out, nullptr, 0);
  if (hit) obs_stats_.find_hits.Inc();
  return hit;
}

bool HashIndex::TryFindEntriesStable(const KeyHash* hashes, const bool* skip,
                                     size_t n, FindResult* out,
                                     bool* found) const {
  // This path elides the OpScope pin entirely, so protection is the only
  // thing keeping the observed table alive (see the header contract).
  FASTER_EPOCH_VERIFY(epoch_->IsProtected(),
                      "TryFindEntriesStable without epoch protection");
  ResizeInfo info = resize_info();
  if (info.phase != Phase::kStable) {
    return false;
  }
  HashBucket* table = tables_[info.version].load(std::memory_order_acquire);
  uint64_t size = table_size_[info.version].load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    if (skip != nullptr && skip[i]) {
      found[i] = false;
      continue;
    }
    uint16_t tag = EffectiveTag(hashes[i]);
    HashBucket* bucket = &table[hashes[i].Bucket(size)];
    obs_stats_.finds.Inc();
    // const_cast: ScanChain only performs atomic loads here.
    bool hit = const_cast<HashIndex*>(this)->ScanChain(bucket, tag, &out[i],
                                                       nullptr, 0);
    if (hit) obs_stats_.find_hits.Inc();
    found[i] = hit;
  }
  return true;
}

void HashIndex::FindOrCreateEntry(const OpScope& scope, KeyHash hash,
                                  FindResult* out) {
  uint16_t tag = EffectiveTag(hash);
  ResizeInfo info = resize_info();
  uint8_t alloc_version =
      (scope.pinned_chunk_ >= 0 || info.phase == Phase::kStable)
          ? info.version
          : static_cast<uint8_t>(1 - info.version);
  HashBucket* head = &scope.table_[hash.Bucket(scope.table_size_)];
  for (;;) {
    std::atomic<uint64_t>* free_slot = nullptr;
    if (ScanChain(head, tag, out, &free_slot, 0)) {
      return;  // Existing non-tentative entry.
    }
    if (free_slot == nullptr) {
      // Chain is full: append an overflow bucket, then retry the scan (the
      // new bucket's slots become candidate free slots).
      HashBucket* last = head;
      for (;;) {
        uint64_t next = last->overflow.load(std::memory_order_acquire);
        if (next != 0) {
          last = reinterpret_cast<HashBucket*>(next);
          continue;
        }
        HashBucket* fresh = AllocateOverflowBucket(alloc_version);
        uint64_t expected = 0;
        if (last->overflow.compare_exchange_strong(
                expected, reinterpret_cast<uint64_t>(fresh),
                std::memory_order_acq_rel)) {
          break;
        }
        // Someone else extended the chain first; our bucket stays pooled
        // (freed at teardown) and we follow theirs.
      }
      continue;
    }
    // Phase 1: claim the free slot with a tentative entry (invisible to
    // concurrent readers and updaters).
    HashBucketEntry tentative{Address::Invalid(), tag, /*tentative=*/true};
    uint64_t expected = 0;
    if (!free_slot->compare_exchange_strong(expected, tentative.control(),
                                            std::memory_order_acq_rel)) {
      continue;  // Slot taken; rescan.
    }
    // Phase 2: re-scan the chain for any other entry (tentative or not)
    // with the same tag. If found, back off and retry (Fig. 3b).
    bool duplicate = false;
    for (HashBucket* b = head; b != nullptr && !duplicate;
         b = reinterpret_cast<HashBucket*>(
             b->overflow.load(std::memory_order_acquire))) {
      for (uint32_t i = 0; i < HashBucket::kNumEntries; ++i) {
        if (&b->entries[i] == free_slot) continue;
        HashBucketEntry entry{b->entries[i].load(std::memory_order_acquire)};
        if (!entry.IsUnused() && entry.tag() == tag) {
          duplicate = true;
          break;
        }
      }
    }
    if (duplicate) {
      obs_stats_.tentative_conflicts.Inc();
      free_slot->store(0, std::memory_order_release);
      std::this_thread::yield();
      continue;
    }
    // Finalize: clear the tentative bit. We own the slot, so a plain
    // release store suffices.
    HashBucketEntry final_entry = tentative.Finalized();
    free_slot->store(final_entry.control(), std::memory_order_release);
    out->slot = free_slot;
    out->entry = final_entry;
    return;
  }
}

bool HashIndex::TryUpdateEntry(FindResult* result, Address address) {
  FASTER_EPOCH_VERIFY(epoch_->IsProtected(),
                      "index CAS (TryUpdateEntry) without epoch protection");
  HashBucketEntry desired{address, result->entry.tag(), /*tentative=*/false};
  uint64_t expected = result->entry.control();
  if (result->slot->compare_exchange_strong(expected, desired.control(),
                                            std::memory_order_acq_rel)) {
    result->entry = desired;
    return true;
  }
  result->entry = HashBucketEntry{expected};
  obs_stats_.cas_retries.Inc();
  return false;
}

bool HashIndex::TryDeleteEntry(FindResult* result) {
  FASTER_EPOCH_VERIFY(epoch_->IsProtected(),
                      "index CAS (TryDeleteEntry) without epoch protection");
  uint64_t expected = result->entry.control();
  if (result->slot->compare_exchange_strong(expected, 0,
                                            std::memory_order_acq_rel)) {
    result->entry = HashBucketEntry{};
    return true;
  }
  result->entry = HashBucketEntry{expected};
  obs_stats_.cas_retries.Inc();
  return false;
}

uint64_t HashIndex::NumUsedEntries() const {
  ResizeInfo info = resize_info();
  const HashBucket* table = tables_[info.version].load(std::memory_order_acquire);
  uint64_t size = table_size_[info.version].load(std::memory_order_acquire);
  uint64_t used = 0;
  for (uint64_t i = 0; i < size; ++i) {
    const HashBucket* b = &table[i];
    while (b != nullptr) {
      for (uint32_t j = 0; j < HashBucket::kNumEntries; ++j) {
        HashBucketEntry e{b->entries[j].load(std::memory_order_acquire)};
        if (!e.IsUnused() && !e.tentative()) ++used;
      }
      b = reinterpret_cast<const HashBucket*>(
          b->overflow.load(std::memory_order_acquire));
    }
  }
  return used;
}

// ---------------------------------------------------------------------------
// On-line grow (Appendix B).
// ---------------------------------------------------------------------------

void HashIndex::Grow() {
  std::lock_guard<std::mutex> grow_lock{grow_mutex_};
  assert(epoch_->IsProtected());

  ResizeInfo info = resize_info();
  uint8_t old_version = info.version;
  uint8_t new_version = 1 - old_version;
  uint64_t old_size = table_size_[old_version].load(std::memory_order_acquire);
  uint64_t new_size = old_size * 2;

  // Free any table left from the previous grow and set up the new one.
  std::free(tables_[new_version].load(std::memory_order_relaxed));
  for (HashBucket* b : overflow_pool_[new_version]) std::free(b);
  overflow_pool_[new_version].clear();
  tables_[new_version].store(AllocateTable(new_size),
                             std::memory_order_release);
  table_size_[new_version].store(new_size, std::memory_order_release);

  num_chunks_ = (old_size + kChunkSize - 1) / kChunkSize;
  pins_.clear();
  migrated_.clear();
  for (uint64_t i = 0; i < num_chunks_; ++i) {
    pins_.push_back(std::make_unique<std::atomic<int64_t>>(0));
    migrated_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  num_migrated_chunks_.store(0, std::memory_order_release);

  // Announce the resize; once every thread has observed the prepare phase
  // (i.e., the bumped epoch is safe), flip to the resizing phase.
  set_resize_state(Phase::kPrepare, old_version);
  // order: release store in the trigger action, acquire load in the wait
  // loop below (a plain completion flag).
  std::atomic<bool> resizing_started{false};
  epoch_->BumpCurrentEpoch([this, old_version, &resizing_started]() {
    set_resize_state(Phase::kResizing, old_version);
    resizing_started.store(true, std::memory_order_release);
  });
  while (!resizing_started.load(std::memory_order_acquire)) {
    epoch_->Refresh();
    std::this_thread::yield();
  }

  // Migrate chunks co-operatively; concurrent operations grab chunks too.
  for (uint64_t c = 0; c < num_chunks_; ++c) {
    EnsureMigrated(c);
  }
  while (num_migrated_chunks_.load(std::memory_order_acquire) < num_chunks_) {
    std::this_thread::yield();
  }

  // Publish the new version and return to normal operation.
  set_resize_state(Phase::kStable, new_version);

  // Reclaim the old table once no thread can still be reading it.
  // table_size_[old_version] is deliberately left in place: an OpScope that
  // observed kResizing just before the flip to kStable still computes its
  // chunk from the old size, and zeroing it here would send that thread out
  // of bounds of pins_/migrated_. The epoch wait below guarantees all such
  // threads are gone before the next Grow() reuses this slot.
  HashBucket* old_table = tables_[old_version].load(std::memory_order_acquire);
  tables_[old_version].store(nullptr, std::memory_order_release);
  std::vector<HashBucket*> old_overflow;
  {
    std::lock_guard<std::mutex> lock{overflow_mutex_};
    old_overflow.swap(overflow_pool_[old_version]);
  }
  // order: release store in the trigger action, acquire load in the wait
  // loop below (a plain completion flag).
  std::atomic<bool> freed{false};
  epoch_->BumpCurrentEpoch([old_table, old_overflow = std::move(old_overflow),
                            &freed]() {
    std::free(old_table);
    for (HashBucket* b : old_overflow) std::free(b);
    freed.store(true, std::memory_order_release);
  });
  while (!freed.load(std::memory_order_acquire)) {
    epoch_->Refresh();
    std::this_thread::yield();
  }
}

void HashIndex::EnsureMigrated(uint64_t chunk) {
  if (migrated_[chunk]->load(std::memory_order_acquire)) return;
  for (;;) {
    int64_t expected = 0;
    if (pins_[chunk]->compare_exchange_strong(expected, kChunkLocked,
                                              std::memory_order_acq_rel)) {
      MigrateChunk(chunk);
      obs_stats_.grow_chunks_migrated.Inc();
      migrated_[chunk]->store(true, std::memory_order_release);
      num_migrated_chunks_.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    if (expected == kChunkLocked || expected < 0) {
      // Another thread is migrating; wait for it.
      while (!migrated_[chunk]->load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      return;
    }
    // Pins still held by prepare-phase operations; wait for them to drain.
    std::this_thread::yield();
  }
}

void HashIndex::MigrateChunk(uint64_t chunk) {
  ResizeInfo info = resize_info();
  uint8_t old_version = info.version;
  uint8_t new_version = 1 - old_version;
  HashBucket* old_table = tables_[old_version].load(std::memory_order_acquire);
  HashBucket* new_table = tables_[new_version].load(std::memory_order_acquire);
  uint64_t old_size = table_size_[old_version].load(std::memory_order_acquire);

  uint64_t begin = chunk * kChunkSize;
  uint64_t end = std::min(begin + kChunkSize, old_size);
  for (uint64_t i = begin; i < end; ++i) {
    for (HashBucket* b = &old_table[i]; b != nullptr;
         b = reinterpret_cast<HashBucket*>(
             b->overflow.load(std::memory_order_acquire))) {
      for (uint32_t j = 0; j < HashBucket::kNumEntries; ++j) {
        HashBucketEntry entry{b->entries[j].load(std::memory_order_acquire)};
        if (entry.IsUnused() || entry.tentative() ||
            !entry.address().IsValid()) {
          continue;
        }
        // A record chain for (i, tag) may contain keys destined for either
        // child bucket i or i + old_size (the chain is keyed by the old,
        // shorter hash prefix). Point both children at the chain; lookups
        // compare full keys, so correctness is preserved (Appendix B: "a
        // split causes both new hash entries to point to the same record").
        for (uint64_t child : {i, i + old_size}) {
          HashBucket* dst = &new_table[child];
          std::atomic<uint64_t>* free_slot = nullptr;
          for (HashBucket* d = dst;;) {
            for (uint32_t k = 0;
                 k < HashBucket::kNumEntries && free_slot == nullptr; ++k) {
              if (d->entries[k].load(std::memory_order_relaxed) == 0) {
                free_slot = &d->entries[k];
              }
            }
            if (free_slot != nullptr) break;
            uint64_t next = d->overflow.load(std::memory_order_relaxed);
            if (next == 0) {
              HashBucket* fresh = AllocateOverflowBucket(new_version);
              d->overflow.store(reinterpret_cast<uint64_t>(fresh),
                                std::memory_order_release);
              d = fresh;
            } else {
              d = reinterpret_cast<HashBucket*>(next);
            }
          }
          // Only this thread writes this chunk's child buckets, so plain
          // stores are fine; release so post-migration readers see them.
          free_slot->store(entry.control(), std::memory_order_release);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpointing (fuzzy; Sec. 6.5).
// ---------------------------------------------------------------------------

namespace {
struct IndexCheckpointHeader {
  uint64_t magic;
  uint64_t table_size;
  uint64_t num_overflow;
};
constexpr uint64_t kIndexMagic = 0xFA57E21D4E5ULL;
}  // namespace

Status HashIndex::WriteCheckpoint(int fd,
                                  const EntryTransform& transform) const {
  // The fuzzy checkpoint reads the live table; protection keeps a
  // concurrent Grow from retiring it mid-scan.
  assert(epoch_->IsProtected());
  ResizeInfo info = resize_info();
  if (info.phase != Phase::kStable) return Status::kInvalid;
  const HashBucket* table = tables_[info.version].load(std::memory_order_acquire);
  uint64_t size = table_size_[info.version].load(std::memory_order_acquire);

  // Assign ordinals to overflow buckets as encountered (1-based; 0 = none).
  std::map<const HashBucket*, uint64_t> ordinal;
  std::vector<const HashBucket*> overflow_list;
  for (uint64_t i = 0; i < size; ++i) {
    const HashBucket* b = reinterpret_cast<const HashBucket*>(
        table[i].overflow.load(std::memory_order_acquire));
    while (b != nullptr) {
      if (ordinal.emplace(b, overflow_list.size() + 1).second) {
        overflow_list.push_back(b);
      }
      b = reinterpret_cast<const HashBucket*>(
          b->overflow.load(std::memory_order_acquire));
    }
  }

  IndexCheckpointHeader header{kIndexMagic, size, overflow_list.size()};
  if (!WriteAll(fd, &header, sizeof(header))) return Status::kIoError;

  auto write_bucket = [&](const HashBucket* b) {
    uint64_t image[8];
    for (uint32_t j = 0; j < HashBucket::kNumEntries; ++j) {
      if (transform) {
        image[j] = transform(b->entries[j]);
        continue;
      }
      HashBucketEntry e{b->entries[j].load(std::memory_order_acquire)};
      // Drop tentative entries: they represent in-flight inserts whose
      // records are not yet linked.
      image[j] = e.tentative() ? 0 : e.control();
    }
    const auto* next = reinterpret_cast<const HashBucket*>(
        b->overflow.load(std::memory_order_acquire));
    // A concurrent insert can link a brand-new overflow bucket after the
    // ordinal scan above. Cut the persisted chain there: every entry in
    // such a bucket points at a record appended after t1, and the
    // recovery log scan over [t1, t2) re-inserts it (Sec. 6.5's fuzzy
    // checkpoint contract).
    uint64_t next_ord = 0;
    if (next != nullptr) {
      auto it = ordinal.find(next);
      if (it != ordinal.end()) next_ord = it->second;
    }
    image[7] = next_ord;
    return WriteAll(fd, image, sizeof(image));
  };

  for (uint64_t i = 0; i < size; ++i) {
    if (!write_bucket(&table[i])) return Status::kIoError;
  }
  for (const HashBucket* b : overflow_list) {
    if (!write_bucket(b)) return Status::kIoError;
  }
  return Status::kOk;
}

Status HashIndex::ReadCheckpoint(int fd) {
  IndexCheckpointHeader header;
  if (!ReadAll(fd, &header, sizeof(header))) return Status::kIoError;
  if (header.magic != kIndexMagic) return Status::kCorruption;

  ResizeInfo info = resize_info();
  if (info.phase != Phase::kStable) return Status::kInvalid;
  uint8_t v = info.version;
  std::free(tables_[v].load(std::memory_order_relaxed));
  for (HashBucket* b : overflow_pool_[v]) std::free(b);
  overflow_pool_[v].clear();
  HashBucket* fresh_table = AllocateTable(header.table_size);
  tables_[v].store(fresh_table, std::memory_order_release);
  table_size_[v].store(header.table_size, std::memory_order_release);

  std::vector<HashBucket*> overflow_list;
  overflow_list.reserve(header.num_overflow);
  for (uint64_t i = 0; i < header.num_overflow; ++i) {
    overflow_list.push_back(AllocateOverflowBucket(v));
  }

  auto read_bucket = [&](HashBucket* b) {
    uint64_t image[8];
    if (!ReadAll(fd, image, sizeof(image))) return false;
    for (uint32_t j = 0; j < HashBucket::kNumEntries; ++j) {
      b->entries[j].store(image[j], std::memory_order_relaxed);
    }
    uint64_t ord = image[7];
    if (ord != 0) {
      if (ord > overflow_list.size()) return false;
      b->overflow.store(reinterpret_cast<uint64_t>(overflow_list[ord - 1]),
                        std::memory_order_relaxed);
    } else {
      b->overflow.store(0, std::memory_order_relaxed);
    }
    return true;
  };

  for (uint64_t i = 0; i < header.table_size; ++i) {
    if (!read_bucket(&fresh_table[i])) return Status::kCorruption;
  }
  for (uint64_t i = 0; i < header.num_overflow; ++i) {
    if (!read_bucket(overflow_list[i])) return Status::kCorruption;
  }
  return Status::kOk;
}

}  // namespace faster
