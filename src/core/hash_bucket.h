#ifndef FASTER_CORE_HASH_BUCKET_H_
#define FASTER_CORE_HASH_BUCKET_H_

#include <atomic>
#include <cstdint>

#include "core/address.h"

namespace faster {

/// One 8-byte hash-bucket entry (Fig. 2):
///
///   | tentative (1 bit, bit 63) | tag (15 bits) | address (48 bits) |
///
/// A value of 0 means "empty slot". The tentative bit makes the two-phase
/// latch-free insert possible (Sec. 3.2): entries with the bit set are
/// invisible to concurrent reads and updates.
class HashBucketEntry {
 public:
  static constexpr uint64_t kAddressMask = Address::kMaxAddress;
  static constexpr uint64_t kTagShift = 48;
  static constexpr uint64_t kTagMask = uint64_t{0x7fff} << kTagShift;
  static constexpr uint64_t kTentativeBit = uint64_t{1} << 63;

  constexpr HashBucketEntry() : control_{0} {}
  constexpr explicit HashBucketEntry(uint64_t control) : control_{control} {}
  constexpr HashBucketEntry(Address address, uint16_t tag, bool tentative)
      : control_{address.control() |
                 (static_cast<uint64_t>(tag & 0x7fff) << kTagShift) |
                 (tentative ? kTentativeBit : 0)} {}

  constexpr uint64_t control() const { return control_; }
  constexpr bool IsUnused() const { return control_ == 0; }
  constexpr Address address() const {
    return Address{control_ & kAddressMask};
  }
  constexpr uint16_t tag() const {
    return static_cast<uint16_t>((control_ & kTagMask) >> kTagShift);
  }
  constexpr bool tentative() const { return (control_ & kTentativeBit) != 0; }

  /// Same entry with the tentative bit cleared.
  constexpr HashBucketEntry Finalized() const {
    return HashBucketEntry{control_ & ~kTentativeBit};
  }

  friend constexpr bool operator==(HashBucketEntry a, HashBucketEntry b) {
    return a.control_ == b.control_;
  }
  friend constexpr bool operator!=(HashBucketEntry a, HashBucketEntry b) {
    return a.control_ != b.control_;
  }

 private:
  uint64_t control_;
};

static_assert(sizeof(HashBucketEntry) == 8);

/// A cache-line-sized hash bucket (Fig. 2): seven 8-byte entries plus one
/// 8-byte overflow pointer to a dynamically allocated overflow bucket.
struct alignas(64) HashBucket {
  static constexpr uint32_t kNumEntries = 7;

  // order: acquire loads on every chain scan; acq_rel CAS for the
  // two-phase tentative insert and TryUpdate/TryDelete (the CAS is the
  // publication point for a new record: the writer fills the record with
  // plain stores, the CAS releases them); release store to back off a
  // tentative entry, finalize an owned slot, or (migration) publish into a
  // not-yet-shared table; relaxed loads/stores only in single-writer
  // phases (migration scan, checkpoint restore).
  std::atomic<uint64_t> entries[kNumEntries];
  /// Physical pointer (as integer) to the next (overflow) bucket; 0 if
  /// none. Overflow buckets are cache-line aligned too.
  // order: acquire loads following the chain; acq_rel CAS appends a bucket
  // (publishes its zeroed cache line); release store during migration
  // (single writer per chunk); relaxed in single-writer phases (migration
  // scan, checkpoint restore).
  std::atomic<uint64_t> overflow;
};

static_assert(sizeof(HashBucket) == 64, "bucket must be one cache line");

}  // namespace faster

#endif  // FASTER_CORE_HASH_BUCKET_H_
