#ifndef FASTER_CORE_RECORD_H_
#define FASTER_CORE_RECORD_H_

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "core/address.h"

namespace faster {

/// The 64-bit record header (Fig. 2): a 48-bit previous-record address plus
/// status bits used by the log-structured allocators (Sec. 4-6).
///
///   bits 0..47   previous address (reverse linked list within a hash chain)
///   bit  48      invalid   (record lost its index CAS; never reachable)
///   bit  49      tombstone (record is a delete marker)
///   bit  50      in-use    (distinguishes real records from page padding)
///   bit  51      delta     (CRDT partial value, Sec. 6.3)
///   bit  52      read-cache (record lives in the read cache, Appendix D)
///   bits 53..63  checkpoint version (reserved)
class RecordInfo {
 public:
  static constexpr uint64_t kPreviousMask = Address::kMaxAddress;
  static constexpr uint64_t kInvalidBit = uint64_t{1} << 48;
  static constexpr uint64_t kTombstoneBit = uint64_t{1} << 49;
  static constexpr uint64_t kInUseBit = uint64_t{1} << 50;
  static constexpr uint64_t kDeltaBit = uint64_t{1} << 51;
  static constexpr uint64_t kReadCacheBit = uint64_t{1} << 52;
  static constexpr uint64_t kOverwrittenBit = uint64_t{1} << 53;

  constexpr RecordInfo() : control_{0} {}
  constexpr explicit RecordInfo(uint64_t control) : control_{control} {}
  constexpr RecordInfo(Address previous, bool invalid, bool tombstone,
                       bool delta = false, bool read_cache = false)
      : control_{previous.control() | kInUseBit |
                 (invalid ? kInvalidBit : 0) |
                 (tombstone ? kTombstoneBit : 0) | (delta ? kDeltaBit : 0) |
                 (read_cache ? kReadCacheBit : 0)} {}

  constexpr uint64_t control() const { return control_; }
  constexpr Address previous_address() const {
    return Address{control_ & kPreviousMask};
  }
  constexpr bool invalid() const { return (control_ & kInvalidBit) != 0; }
  constexpr bool tombstone() const { return (control_ & kTombstoneBit) != 0; }
  constexpr bool in_use() const { return (control_ & kInUseBit) != 0; }
  constexpr bool delta() const { return (control_ & kDeltaBit) != 0; }
  constexpr bool read_cache() const {
    return (control_ & kReadCacheBit) != 0;
  }
  /// Appendix C: a newer version of this record's key was appended while
  /// this record was still in memory — the record is definitely dead, so
  /// log compaction can skip the liveness check.
  constexpr bool overwritten() const {
    return (control_ & kOverwrittenBit) != 0;
  }

 private:
  uint64_t control_;
};

static_assert(sizeof(RecordInfo) == 8);

/// A log record: 8-byte header, then the key, then the value, padded to an
/// 8-byte boundary (Fig. 2). Key and Value must be trivially copyable with
/// alignment <= 8 so records can live on raw log pages and be shipped to
/// and from storage byte-for-byte.
template <class Key, class Value>
struct Record {
  static_assert(std::is_trivially_copyable_v<Key>);
  static_assert(std::is_trivially_copyable_v<Value>);
  static_assert(alignof(Key) <= 8 && alignof(Value) <= 8);

  // order: release store in set_info (fill the record before publishing
  // its header); acquire load in info(); acq_rel fetch_or for the
  // invalid/tombstone/overwritten one-way flag bits.
  std::atomic<uint64_t> header;
  Key key;
  Value value;

  /// On-log size of a record, 8-byte aligned.
  static constexpr uint32_t size() {
    return static_cast<uint32_t>((sizeof(Record) + 7) / 8 * 8);
  }

  RecordInfo info() const {
    return RecordInfo{header.load(std::memory_order_acquire)};
  }
  void set_info(RecordInfo info) {
    header.store(info.control(), std::memory_order_release);
  }
  /// Marks a record whose index CAS failed; it is unreachable afterwards
  /// but recovery's log scan must skip it.
  void SetInvalid() {
    header.fetch_or(RecordInfo::kInvalidBit, std::memory_order_acq_rel);
  }
  /// In-place delete in the mutable region (Sec. 4 / Sec. 6).
  void SetTombstone() {
    header.fetch_or(RecordInfo::kTombstoneBit, std::memory_order_acq_rel);
  }
  /// Marks this version as superseded (Appendix C's overwrite bit). Only
  /// meaningful while the record is still in memory; the flushed copy may
  /// or may not carry it — it is a hint, never authoritative.
  void SetOverwritten() {
    header.fetch_or(RecordInfo::kOverwrittenBit, std::memory_order_acq_rel);
  }
};

}  // namespace faster

#endif  // FASTER_CORE_RECORD_H_
