#ifndef FASTER_CORE_ADDRESS_H_
#define FASTER_CORE_ADDRESS_H_

#include <cassert>
#include <cstdint>
#include <functional>

namespace faster {

/// A 48-bit logical address into the FASTER log-structured address space
/// (Sec. 5.1 of the paper).
///
/// The address is split into a page number (upper bits) and an offset
/// within the page (lower `kOffsetBits` bits). Pages are `2^kOffsetBits`
/// bytes; the default of 22 bits gives the 4 MB pages used in the paper's
/// evaluation (Sec. 7.4.1). The hash index steals the upper 16 bits of its
/// 64-bit entries for the tag and tentative bit, which is why addresses are
/// limited to 48 bits.
///
/// Address 0 is reserved as the invalid address; the log's first record is
/// placed at offset 64 of page 0 so that no valid record ever has address 0.
class Address {
 public:
  static constexpr uint64_t kAddressBits = 48;
  static constexpr uint64_t kOffsetBits = 22;
  static constexpr uint64_t kPageBits = kAddressBits - kOffsetBits;
  static constexpr uint64_t kMaxAddress = (uint64_t{1} << kAddressBits) - 1;
  static constexpr uint64_t kMaxOffset = (uint64_t{1} << kOffsetBits) - 1;
  static constexpr uint64_t kMaxPage = (uint64_t{1} << kPageBits) - 1;
  /// Bytes per log page.
  static constexpr uint64_t kPageSize = uint64_t{1} << kOffsetBits;

  /// The reserved invalid address (linked-list terminator).
  static constexpr uint64_t kInvalidControl = 0;

  constexpr Address() : control_{kInvalidControl} {}
  constexpr explicit Address(uint64_t control) : control_{control} {
    assert(control <= kMaxAddress);
  }
  constexpr Address(uint64_t page, uint64_t offset)
      : control_{(page << kOffsetBits) | offset} {
    assert(page <= kMaxPage);
    assert(offset <= kMaxOffset);
  }

  static constexpr Address Invalid() { return Address{}; }

  constexpr uint64_t control() const { return control_; }
  constexpr uint64_t page() const { return control_ >> kOffsetBits; }
  constexpr uint64_t offset() const { return control_ & kMaxOffset; }

  constexpr bool IsValid() const { return control_ != kInvalidControl; }

  /// First address of this address's page.
  constexpr Address PageStart() const {
    return Address{page() << kOffsetBits};
  }
  /// First address of the next page.
  constexpr Address NextPageStart() const {
    return Address{(page() + 1) << kOffsetBits};
  }

  constexpr Address operator+(uint64_t delta) const {
    return Address{control_ + delta};
  }
  constexpr Address operator-(uint64_t delta) const {
    return Address{control_ - delta};
  }
  constexpr uint64_t operator-(Address other) const {
    return control_ - other.control_;
  }

  friend constexpr bool operator==(Address a, Address b) {
    return a.control_ == b.control_;
  }
  friend constexpr bool operator!=(Address a, Address b) {
    return a.control_ != b.control_;
  }
  friend constexpr bool operator<(Address a, Address b) {
    return a.control_ < b.control_;
  }
  friend constexpr bool operator<=(Address a, Address b) {
    return a.control_ <= b.control_;
  }
  friend constexpr bool operator>(Address a, Address b) {
    return a.control_ > b.control_;
  }
  friend constexpr bool operator>=(Address a, Address b) {
    return a.control_ >= b.control_;
  }

 private:
  uint64_t control_;
};

static_assert(sizeof(Address) == 8, "Address must be 8 bytes");

}  // namespace faster

#endif  // FASTER_CORE_ADDRESS_H_
