#ifndef FASTER_CORE_EPOCH_H_
#define FASTER_CORE_EPOCH_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <string>

#include "core/annotations.h"
#include "core/thread.h"
#include "obs/stats.h"

namespace faster {

/// Epoch protection framework with trigger actions (Sec. 2.3-2.4).
///
/// The system maintains a shared atomic counter `E` (the current epoch).
/// Every participating thread `T` keeps a thread-local copy `E_T` in a
/// shared, cache-line-per-thread epoch table, refreshed at operation
/// boundaries. An epoch `c` is *safe* once every live thread has
/// `E_T > c`; the maximal safe epoch is tracked in `E_s` with the
/// invariant `E_s < E_T <= E` for all `T`.
///
/// Beyond the basic scheme, `BumpCurrentEpoch(action)` increments `E` from
/// `c` to `c+1` and registers `(c, action)` in a drain list; `action` runs
/// exactly once, on whichever thread first observes that `c` became safe.
/// FASTER uses this for page flushing, page eviction, safe-read-only-offset
/// propagation (Sec. 6.2), index-resize phase changes (Appendix B), and
/// memory reclamation.
///
/// Usage per thread (Sec. 2.5): `Protect()` once per session, `Refresh()`
/// periodically (e.g., every 256 operations), `Unprotect()` at session end.
class LightEpoch {
 public:
  /// Entries in the drain list of deferred (epoch, action) pairs.
  static constexpr uint32_t kDrainListSize = 256;
  /// Local epoch value meaning "thread not protected".
  static constexpr uint64_t kUnprotected = 0;

  LightEpoch();
  ~LightEpoch();

  LightEpoch(const LightEpoch&) = delete;
  LightEpoch& operator=(const LightEpoch&) = delete;

  /// Enter the epoch-protected region: reserve the calling thread's entry
  /// and set its local epoch to the current epoch (paper: `Acquire`).
  /// Returns the thread's current local epoch.
  uint64_t Protect() FASTER_ACQUIRES_EPOCH();

  /// Update the calling thread's local epoch to the current epoch, advance
  /// the safe epoch, and run any ready trigger actions (paper: `Refresh`).
  uint64_t Refresh() FASTER_REQUIRES_EPOCH();

  /// Leave the epoch-protected region (paper: `Release`).
  void Unprotect() FASTER_RELEASES_EPOCH();

  /// True if the calling thread currently holds epoch protection.
  bool IsProtected() const;

  /// Increment the current epoch (no action). Returns the new epoch.
  uint64_t BumpCurrentEpoch();

  /// Increment the current epoch from `c` to `c+1` and register `action`
  /// to run once epoch `c` is safe (paper: `BumpEpoch(Action)`). Requires
  /// protection: when the drain list is full the caller drains in-line,
  /// which only terminates if this thread's refreshes can advance safety.
  uint64_t BumpCurrentEpoch(std::function<void()> action)
      FASTER_REQUIRES_EPOCH();

  /// Current epoch `E`.
  uint64_t CurrentEpoch() const {
    return current_epoch_.load(std::memory_order_acquire);
  }

  /// Last computed maximal safe epoch `E_s` (may be stale; recomputed on
  /// refresh and on drain).
  uint64_t SafeToReclaimEpoch() const {
    return safe_to_reclaim_epoch_.load(std::memory_order_acquire);
  }

  /// Recompute `E_s` by scanning the epoch table.
  uint64_t ComputeNewSafeToReclaimEpoch();

  /// True if `epoch` is safe, i.e., resources tagged with it can be freed.
  bool IsSafeToReclaim(uint64_t epoch) {
    return epoch <= SafeToReclaimEpoch();
  }

  /// Spin (refreshing) until epoch `target` is safe and all drain-list
  /// actions registered up to it have run. Must be called while protected.
  void SpinWaitForSafety(uint64_t target) FASTER_REQUIRES_EPOCH();

  /// Count of the calling thread's Protect()/Refresh() transitions. A
  /// refresh (or re-protect) is the only way this thread's view of the
  /// store can be invalidated: trigger actions that migrate the index or
  /// recycle log frames run only after an epoch bump becomes safe, which
  /// requires every protected thread — including this one — to move its
  /// local epoch forward. While the serial is unchanged, pointers and
  /// region markers this thread observed remain valid.
  uint64_t ProtectSerial() const {
    return table_[Thread::Id()].protect_serial;
  }

  /// Raw epoch-table read for diagnostics (the flight recorder dumps the
  /// whole table at crash time): thread `tid`'s published local epoch,
  /// kUnprotected (0) when the slot holds no protected thread. Relaxed —
  /// a crash-time snapshot needs no ordering, and the call is
  /// async-signal-safe (a single lock-free load).
  uint64_t LocalEpochOf(uint32_t tid) const {
    return table_[tid].local_epoch.load(std::memory_order_relaxed);
  }

  /// Snapshot of the calling thread's refresh serial, bracketing a batch
  /// of operations under one protection scope (the batched pipeline's
  /// amortized epoch bookkeeping). `interrupted()` turns true iff the
  /// thread refreshed since construction — e.g. a page rollover inside the
  /// batch — after which any state resolved before the snapshot is stale
  /// and per-op fallback paths must re-resolve from scratch.
  class BatchScope {
   public:
    explicit BatchScope(const LightEpoch& epoch)
        : epoch_{epoch}, serial_{epoch.ProtectSerial()} {}
    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;

    bool interrupted() const { return epoch_.ProtectSerial() != serial_; }

   private:
    const LightEpoch& epoch_;
    uint64_t serial_;
  };

  /// Number of thread slots currently holding epoch protection (relaxed
  /// scan of the epoch table; diagnostics only).
  uint32_t NumProtectedThreads() const {
    uint32_t n = 0;
    for (uint32_t tid = 0; tid < Thread::kMaxThreads; ++tid) {
      if (LocalEpochOf(tid) != kUnprotected) ++n;
    }
    return n;
  }

  /// Number of drain-list actions currently outstanding (for tests).
  uint32_t NumOutstandingActions() const {
    return drain_count_.load(std::memory_order_acquire);
  }

  /// Observability (compiled out unless FASTER_STATS): drain-list pressure
  /// and the latency from arming a trigger action to running it.
  struct ObsStats {
    obs::StatCounter bumps;            // BumpCurrentEpoch(action) calls
    obs::StatCounter actions_run;      // trigger actions executed
    obs::StatHistogram drain_occupancy;    // outstanding actions at arm time
    obs::StatHistogram bump_to_drain_ns;   // arm -> execution latency
  };
  const ObsStats& obs_stats() const { return obs_stats_; }

  /// Registers this epoch's metrics under `prefix.` names.
  void RegisterStats(obs::StatRegistry& registry,
                     const std::string& prefix) const {
    registry.Add(prefix + ".bumps", &obs_stats_.bumps);
    registry.Add(prefix + ".actions_run", &obs_stats_.actions_run);
    registry.Add(prefix + ".drain_occupancy", &obs_stats_.drain_occupancy);
    registry.Add(prefix + ".bump_to_drain_ns", &obs_stats_.bump_to_drain_ns);
  }

 private:
  /// One cache line per thread (avoids false sharing on refresh).
  struct alignas(64) Entry {
    // order: seq_cst store on Protect/Refresh (orders prior record reads
    // before the epoch publication — the edge that makes "epoch c safe"
    // imply "no thread still reads pages <= c"; DESIGN.md §5); release
    // store on Unprotect; acquire loads in the safety scan; relaxed load
    // in IsProtected (owner thread observing its own store) and in the
    // LocalEpochOf crash-time diagnostic snapshot.
    std::atomic<uint64_t> local_epoch{kUnprotected};
    /// Written and read only by the owning thread (see ProtectSerial), so
    /// a plain field suffices.
    uint64_t protect_serial{0};
    uint8_t padding[48];
  };
  static_assert(sizeof(Entry) == 64);

  /// A deferred action. `epoch` doubles as the slot's state machine:
  /// kFree -> kLocked (being armed) -> <epoch value> -> kLocked (being
  /// drained) -> kFree. CAS on `epoch` guarantees exactly-once execution.
  struct DrainEntry {
    static constexpr uint64_t kFree = UINT64_MAX;
    static constexpr uint64_t kLocked = UINT64_MAX - 1;
    // order: acq_rel CAS claims the slot for arming or draining
    // (exactly-once execution); release store publishes the armed action;
    // acquire load pairs with it before the drainer reads `action`.
    std::atomic<uint64_t> epoch{kFree};
    std::function<void()> action;
    /// Stats only: NowNs() when the action was armed. Written while the
    /// slot is held kLocked by the arming thread and read while held
    /// kLocked by the draining thread, so a plain field is race-free.
    uint64_t armed_ns = 0;
  };

  /// Try to run every drain-list action whose epoch is now safe.
  void Drain(uint64_t safe_epoch);

  // order: acq_rel fetch_add on bump (publishes the drain-list entry armed
  // just before it); acquire loads on refresh/scan; seq_cst re-read in
  // Protect's publish-then-recheck loop (see DESIGN.md §5).
  alignas(64) std::atomic<uint64_t> current_epoch_;
  // order: acquire loads; acq_rel CAS for the monotonic advance.
  alignas(64) std::atomic<uint64_t> safe_to_reclaim_epoch_;
  Entry table_[Thread::kMaxThreads];
  DrainEntry drain_list_[kDrainListSize];
  // order: acq_rel fetch_add/fetch_sub bracketing arm/drain; acquire loads
  // deciding whether a drain pass is needed.
  std::atomic<uint32_t> drain_count_{0};
  mutable ObsStats obs_stats_;
};

/// Re-establishes the epoch capability inside lambdas and callbacks that
/// the epoch protocol guarantees run on protected threads (trigger actions
/// drain only from Refresh/BumpCurrentEpoch/SpinWaitForSafety, all of
/// which require protection). The annotation informs the static analysis;
/// the assert keeps the claim honest at run time.
inline void AssertEpochProtected(const LightEpoch& epoch)
    FASTER_ASSERTS_EPOCH() {
  assert(epoch.IsProtected());
  (void)epoch;
}

}  // namespace faster

#endif  // FASTER_CORE_EPOCH_H_
