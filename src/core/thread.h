#ifndef FASTER_CORE_THREAD_H_
#define FASTER_CORE_THREAD_H_

#include <atomic>
#include <cstdint>

namespace faster {

/// Process-wide registry of small, dense thread ids.
///
/// The epoch table (Sec. 2.3) and the per-thread pending queues need an
/// index in a fixed-size array, one cache line per thread. `Thread::Id()`
/// lazily assigns the calling thread the lowest free slot and releases it
/// when the thread exits, so ids stay dense even as worker threads come
/// and go.
class Thread {
 public:
  /// Maximum number of simultaneously live threads using FASTER.
  static constexpr uint32_t kMaxThreads = 128;
  static constexpr uint32_t kInvalidId = UINT32_MAX;

  /// Dense id of the calling thread, assigned on first use.
  static uint32_t Id();

  /// Number of ids ever handed out (high-water mark); used by tests.
  static uint32_t HighWaterMark();

  /// Releases a slot (called automatically at thread exit).
  static void Release(uint32_t id);

 private:
  static uint32_t Acquire();

  // order: acq_rel CAS claims a slot in Acquire; release store frees it in
  // Release (orders the exiting thread's last epoch-table writes before
  // the slot can be reused).
  static std::atomic<bool> in_use_[kMaxThreads];
  // order: relaxed CAS/load on the monotone high-water advance (counts
  // only; no data published through it); acquire load in HighWaterMark
  // pairs with slot claims for epoch-table scans.
  static std::atomic<uint32_t> high_water_;
};

}  // namespace faster

#endif  // FASTER_CORE_THREAD_H_
