#ifndef FASTER_CORE_VARLEN_H_
#define FASTER_CORE_VARLEN_H_

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/address.h"
#include "core/epoch.h"
#include "core/hash_index.h"
#include "core/hybrid_log.h"
#include "core/key_hash.h"
#include "core/record.h"
#include "core/status.h"
#include "core/thread.h"
#include "device/device.h"

namespace faster {

/// On-log layout of a variable-length record (Sec. 2.1: "keys and values
/// may be fixed or variable-sized"):
///
///   RecordInfo header (8) | key_size (4) | value_size (4) |
///   value_capacity (4) | pad (4) | key bytes | value bytes | pad to 8
///
/// `value_capacity` is the space reserved for the value; in-place blind
/// updates are possible whenever the new value fits the capacity, so a
/// store can over-provision (slack) to keep updates in place even as
/// values grow.
struct VarRecordHeader {
  // order: release store in InitRecord publishes the fully written record;
  // acquire load pairs with it before reading key/value bytes; acq_rel
  // fetch_or for the one-way flag bits (invalid, tombstone, overwritten);
  // relaxed load where the record is known published (single-writer
  // re-checks and scans behind the index CAS).
  std::atomic<uint64_t> info;
  uint32_t key_size;
  // order: release store publishes in-place value bytes before the new
  // length, acquire load pairs with it (concurrent readers); relaxed
  // store in InitRecord (the info release store publishes the record) and
  // relaxed load on paths ordered by an earlier acquire of `info`.
  std::atomic<uint32_t> value_size;
  uint32_t value_capacity;
  uint32_t pad;

  static constexpr uint32_t kPrefixSize = 24;

  const uint8_t* key_bytes() const {
    return reinterpret_cast<const uint8_t*>(this) + kPrefixSize;
  }
  uint8_t* value_bytes() {
    return reinterpret_cast<uint8_t*>(this) + kPrefixSize + key_size;
  }
  const uint8_t* value_bytes() const {
    return reinterpret_cast<const uint8_t*>(this) + kPrefixSize + key_size;
  }
  RecordInfo record_info() const {
    return RecordInfo{info.load(std::memory_order_acquire)};
  }
  bool KeyEquals(std::string_view key) const {
    return key.size() == key_size &&
           std::memcmp(key_bytes(), key.data(), key.size()) == 0;
  }
  static uint32_t TotalSize(uint32_t key_size, uint32_t value_capacity) {
    return (kPrefixSize + key_size + value_capacity + 7) / 8 * 8;
  }
  uint32_t total_size() const { return TotalSize(key_size, value_capacity); }
};

static_assert(sizeof(VarRecordHeader) == VarRecordHeader::kPrefixSize);

/// FasterBlobKv: FASTER with variable-length byte-string keys and values,
/// built on the same hash index, epoch framework, and HybridLog as the
/// fixed-size store. Supports Read / Upsert / Delete; blind updates go in
/// place when the record sits in the mutable region and the new value fits
/// the record's reserved capacity, and append a new record otherwise
/// (Table 1 semantics). Storage reads are two-phase: the fixed prefix
/// first (to learn the sizes), then the full record.
class FasterBlobKv {
 public:
  struct Config {
    uint64_t table_size = uint64_t{1} << 16;
    LogConfig log;
    /// Extra value capacity reserved on every insert, as a fraction of the
    /// value size (lets values grow a little without leaving the mutable
    /// region's in-place path).
    double value_slack = 0.0;
  };

  FasterBlobKv(const Config& config, IDevice* device)
      : config_{config},
        epoch_{},
        index_{config.table_size, &epoch_},
        hlog_{config.log, device, &epoch_},
        thread_states_(Thread::kMaxThreads) {}

  ~FasterBlobKv() {
    // Run outstanding epoch trigger actions before members are destroyed.
    epoch_.Protect();
    epoch_.SpinWaitForSafety(epoch_.CurrentEpoch() - 1);
    epoch_.Unprotect();
    hlog_.device()->Drain();
  }

  FasterBlobKv(const FasterBlobKv&) = delete;
  FasterBlobKv& operator=(const FasterBlobKv&) = delete;

  void StartSession() { epoch_.Protect(); }
  void StopSession() {
    CompletePending(true);
    epoch_.Unprotect();
  }
  void Refresh() { epoch_.Refresh(); }

  /// Reads the value into `*out`. Returns kPending if the record is on
  /// storage; `out` must then stay valid until CompletePending().
  Status Read(std::string_view key, std::string* out) {
    ThreadState& ts = AutoRefresh();
    KeyHash hash = HashKey(key);
    typename HashIndex::OpScope scope{index_, hash};
    HashIndex::FindResult fr;
    if (!index_.FindEntry(scope, hash, &fr)) return Status::kNotFound;
    Address addr = fr.entry.address();
    Address begin = hlog_.begin_address();
    if (!addr.IsValid() || addr < begin) {
      index_.TryDeleteEntry(&fr);
      return Status::kNotFound;
    }
    Address head = hlog_.head_address();
    VarRecordHeader* rec = nullptr;
    addr = TraceBack(key, addr, std::max(head, begin), &rec);
    if (rec != nullptr) {
      if (rec->record_info().tombstone()) return Status::kNotFound;
      uint32_t size = rec->value_size.load(std::memory_order_acquire);
      out->assign(reinterpret_cast<const char*>(rec->value_bytes()), size);
      return Status::kOk;
    }
    if (!addr.IsValid() || addr < begin) return Status::kNotFound;
    return IssuePrefixRead(ts, key, hash, out, addr);
  }

  /// Blind upsert. In place when the newest record is mutable and the new
  /// value fits its capacity; otherwise appends.
  Status Upsert(std::string_view key, std::string_view value) {
    AutoRefresh();
    KeyHash hash = HashKey(key);
    for (;;) {
      typename HashIndex::OpScope scope{index_, hash};
      HashIndex::FindResult fr;
      index_.FindOrCreateEntry(scope, hash, &fr);
      Address addr = fr.entry.address();
      Address begin = hlog_.begin_address();
      Address head = hlog_.head_address();
      VarRecordHeader* rec = nullptr;
      if (addr.IsValid() && addr >= begin && addr >= head) {
        Address found = TraceBack(key, addr, std::max(head, begin), &rec);
        if (rec != nullptr && !rec->record_info().tombstone() &&
            found >= hlog_.read_only_address() &&
            value.size() <= rec->value_capacity) {
          // In-place update: write bytes, then publish the new length.
          // Record-level concurrency between same-key writers is the
          // application's contract (Appendix E).
          std::memcpy(rec->value_bytes(), value.data(), value.size());
          rec->value_size.store(static_cast<uint32_t>(value.size()),
                                std::memory_order_release);
          return Status::kOk;
        }
      }
      uint32_t capacity = static_cast<uint32_t>(
          static_cast<double>(value.size()) * (1.0 + config_.value_slack));
      if (capacity < value.size()) capacity = value.size();
      Address new_addr =
          TryAllocateRecord(VarRecordHeader::TotalSize(key.size(), capacity));
      if (!new_addr.IsValid()) continue;
      auto* new_rec = RecordAt(new_addr);
      InitRecord(new_rec, key, value, capacity, fr.entry.address(), false);
      if (index_.TryUpdateEntry(&fr, new_addr)) {
        if (rec != nullptr) {
          rec->info.fetch_or(RecordInfo::kOverwrittenBit,
                             std::memory_order_acq_rel);
        }
        return Status::kOk;
      }
      new_rec->info.fetch_or(RecordInfo::kInvalidBit,
                             std::memory_order_acq_rel);
    }
  }

  /// Deletes the key (tombstone in place in the mutable region, appended
  /// tombstone record otherwise).
  Status Delete(std::string_view key) {
    AutoRefresh();
    KeyHash hash = HashKey(key);
    for (;;) {
      typename HashIndex::OpScope scope{index_, hash};
      HashIndex::FindResult fr;
      if (!index_.FindEntry(scope, hash, &fr)) return Status::kNotFound;
      Address addr = fr.entry.address();
      Address begin = hlog_.begin_address();
      if (!addr.IsValid() || addr < begin) {
        index_.TryDeleteEntry(&fr);
        return Status::kNotFound;
      }
      Address head = hlog_.head_address();
      VarRecordHeader* rec = nullptr;
      Address found = Address::Invalid();
      if (addr >= head) {
        found = TraceBack(key, addr, std::max(head, begin), &rec);
      } else {
        found = addr;
      }
      if (rec != nullptr) {
        if (rec->record_info().tombstone()) return Status::kNotFound;
        if (found >= hlog_.read_only_address()) {
          rec->info.fetch_or(RecordInfo::kTombstoneBit,
                             std::memory_order_acq_rel);
          return Status::kOk;
        }
      } else if (!found.IsValid() || found < begin) {
        return Status::kNotFound;
      }
      Address new_addr =
          TryAllocateRecord(VarRecordHeader::TotalSize(key.size(), 0));
      if (!new_addr.IsValid()) continue;
      auto* new_rec = RecordAt(new_addr);
      InitRecord(new_rec, key, {}, 0, fr.entry.address(), /*tombstone=*/true);
      if (index_.TryUpdateEntry(&fr, new_addr)) return Status::kOk;
      new_rec->info.fetch_or(RecordInfo::kInvalidBit,
                             std::memory_order_acq_rel);
    }
  }

  /// Processes pending storage reads for the calling thread.
  bool CompletePending(bool wait = false) {
    ThreadState& ts = thread_states_[Thread::Id()];
    for (;;) {
      ProcessCompletions(ts);
      bool done = ts.outstanding == 0;
      if (done || !wait) return done;
      epoch_.Refresh();
      std::this_thread::yield();
    }
  }

  HybridLog& hlog() { return hlog_; }
  HashIndex& index() { return index_; }

 private:
  enum class IoPhase : uint8_t { kPrefix, kFull };

  struct PendingContext {
    FasterBlobKv* store;
    std::string key;
    KeyHash hash;
    std::string* output;
    uint32_t owner;
    Address address;
    IoPhase phase = IoPhase::kPrefix;
    Status io_status = Status::kOk;
    std::vector<uint8_t> buffer;
  };

  struct alignas(64) ThreadState {
    std::mutex mutex;
    std::vector<PendingContext*> completions;
    uint64_t outstanding = 0;
    uint32_t ops_since_refresh = 0;
  };

  static KeyHash HashKey(std::string_view key) {
    return KeyHash{HashBytes(key.data(), key.size())};
  }

  VarRecordHeader* RecordAt(Address addr) const {
    return reinterpret_cast<VarRecordHeader*>(hlog_.Get(addr));
  }

  ThreadState& AutoRefresh() {
    ThreadState& ts = thread_states_[Thread::Id()];
    if (++ts.ops_since_refresh >= 256) {
      ts.ops_since_refresh = 0;
      epoch_.Refresh();
    }
    return ts;
  }

  void InitRecord(VarRecordHeader* rec, std::string_view key,
                  std::string_view value, uint32_t capacity, Address prev,
                  bool tombstone) {
    rec->key_size = static_cast<uint32_t>(key.size());
    rec->value_capacity = capacity;
    rec->pad = 0;
    std::memcpy(reinterpret_cast<uint8_t*>(rec) + VarRecordHeader::kPrefixSize,
                key.data(), key.size());
    if (!value.empty()) {
      std::memcpy(rec->value_bytes(), value.data(), value.size());
    }
    rec->value_size.store(static_cast<uint32_t>(value.size()),
                          std::memory_order_relaxed);
    rec->info.store(RecordInfo{prev, false, tombstone}.control(),
                    std::memory_order_release);
  }

  Address TraceBack(std::string_view key, Address from, Address min_mem,
                    VarRecordHeader** rec) const {
    Address addr = from;
    while (addr.IsValid() && addr >= min_mem) {
      VarRecordHeader* r = RecordAt(addr);
      if (r->KeyEquals(key)) {
        *rec = r;
        return addr;
      }
      addr = r->record_info().previous_address();
    }
    *rec = nullptr;
    return addr;
  }

  Address TryAllocateRecord(uint32_t size) {
    uint64_t closed_page = 0;
    Address addr = hlog_.Allocate(size, &closed_page);
    if (addr.IsValid()) return addr;
    while (!hlog_.NewPage(closed_page)) {
      epoch_.Refresh();
      std::this_thread::yield();
    }
    epoch_.Refresh();
    return Address::Invalid();
  }

  Status IssuePrefixRead(ThreadState& ts, std::string_view key, KeyHash hash,
                         std::string* out, Address addr) {
    auto* ctx = new PendingContext;
    ctx->store = this;
    ctx->key.assign(key);
    ctx->hash = hash;
    ctx->output = out;
    ctx->owner = Thread::Id();
    ctx->address = addr;
    ctx->phase = IoPhase::kPrefix;
    ctx->buffer.resize(VarRecordHeader::kPrefixSize);
    ++ts.outstanding;
    hlog_.AsyncGetFromDisk(addr, VarRecordHeader::kPrefixSize,
                           ctx->buffer.data(), &FasterBlobKv::IoCallback,
                           ctx);
    return Status::kPending;
  }

  static void IoCallback(void* context, Status result, uint32_t /*bytes*/) {
    auto* ctx = static_cast<PendingContext*>(context);
    ctx->io_status = result;
    ThreadState& ts = ctx->store->thread_states_[ctx->owner];
    std::lock_guard<std::mutex> lock{ts.mutex};
    ts.completions.push_back(ctx);
  }

  void ProcessCompletions(ThreadState& ts) {
    std::vector<PendingContext*> ready;
    {
      std::lock_guard<std::mutex> lock{ts.mutex};
      ready.swap(ts.completions);
    }
    for (PendingContext* ctx : ready) {
      if (ctx->io_status != Status::kOk) {
        Finish(ts, ctx);
        continue;
      }
      if (ctx->phase == IoPhase::kPrefix) {
        // Phase 1 done: we know the sizes; fetch the whole record.
        const auto* prefix =
            reinterpret_cast<const VarRecordHeader*>(ctx->buffer.data());
        RecordInfo info{prefix->info.load(std::memory_order_relaxed)};
        if (!info.in_use()) {
          Finish(ts, ctx);  // corrupt chain; treat as not found
          continue;
        }
        uint32_t total = VarRecordHeader::TotalSize(prefix->key_size,
                                                    prefix->value_capacity);
        ctx->phase = IoPhase::kFull;
        ctx->buffer.resize(total);
        hlog_.AsyncGetFromDisk(ctx->address, total, ctx->buffer.data(),
                               &FasterBlobKv::IoCallback, ctx);
        continue;
      }
      // Phase 2: full record in hand.
      const auto* rec =
          reinterpret_cast<const VarRecordHeader*>(ctx->buffer.data());
      RecordInfo info = rec->record_info();
      if (rec->KeyEquals(ctx->key)) {
        if (!info.tombstone()) {
          uint32_t size = rec->value_size.load(std::memory_order_relaxed);
          ctx->output->assign(
              reinterpret_cast<const char*>(rec->value_bytes()), size);
        }
        Finish(ts, ctx);
        continue;
      }
      Address prev = info.previous_address();
      if (prev.IsValid() && prev >= hlog_.begin_address()) {
        // Chase the chain: next record's prefix.
        ctx->address = prev;
        ctx->phase = IoPhase::kPrefix;
        ctx->buffer.resize(VarRecordHeader::kPrefixSize);
        hlog_.AsyncGetFromDisk(prev, VarRecordHeader::kPrefixSize,
                               ctx->buffer.data(), &FasterBlobKv::IoCallback,
                               ctx);
        continue;
      }
      Finish(ts, ctx);
    }
  }

  void Finish(ThreadState& ts, PendingContext* ctx) {
    --ts.outstanding;
    delete ctx;
  }

  Config config_;
  LightEpoch epoch_;
  HashIndex index_;
  HybridLog hlog_;
  std::vector<ThreadState> thread_states_;
};

}  // namespace faster

#endif  // FASTER_CORE_VARLEN_H_
