#ifndef FASTER_CORE_STATUS_H_
#define FASTER_CORE_STATUS_H_

#include <cstdint>

namespace faster {

/// Result of a user-facing store operation or an internal subsystem call.
///
/// FASTER follows the database-library convention of status-code error
/// handling on every operation path (exceptions are reserved for
/// unrecoverable construction failures). `Status::kPending` is not an
/// error: it means the operation went asynchronous (e.g., the record lives
/// on storage) and will be completed by a later `CompletePending()` call on
/// the issuing thread.
enum class Status : uint8_t {
  /// The operation completed successfully.
  kOk = 0,
  /// A read/RMW/delete did not find the key (or found a tombstone).
  kNotFound = 1,
  /// The operation requires asynchronous I/O (or deferred retry in the
  /// fuzzy region) and has been queued; call `CompletePending()`.
  kPending = 2,
  /// The operation lost a race and could not be retried internally.
  kAborted = 3,
  /// Allocation failed (log out of space or malloc failure).
  kOutOfMemory = 4,
  /// A storage I/O failed.
  kIoError = 5,
  /// Invalid argument or store state for this call.
  kInvalid = 6,
  /// Checkpoint/recovery metadata was malformed or missing.
  kCorruption = 7,
};

/// Human-readable name for a status code (for logs and test failure
/// messages).
inline const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk: return "Ok";
    case Status::kNotFound: return "NotFound";
    case Status::kPending: return "Pending";
    case Status::kAborted: return "Aborted";
    case Status::kOutOfMemory: return "OutOfMemory";
    case Status::kIoError: return "IoError";
    case Status::kInvalid: return "Invalid";
    case Status::kCorruption: return "Corruption";
  }
  return "Unknown";
}

}  // namespace faster

#endif  // FASTER_CORE_STATUS_H_
