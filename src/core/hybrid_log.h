#ifndef FASTER_CORE_HYBRID_LOG_H_
#define FASTER_CORE_HYBRID_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/address.h"
#include "core/annotations.h"
#include "core/epoch.h"
#include "core/epoch_check.h"
#include "core/status.h"
#include "device/device.h"
#include "obs/stats.h"

namespace faster {

/// Configuration for a HybridLog instance.
struct LogConfig {
  /// Capacity of the in-memory circular buffer, in bytes (rounded down to
  /// whole pages; minimum 2 pages).
  uint64_t memory_size_bytes = 1ull << 26;  // 64 MB
  /// Fraction of the in-memory buffer operated as the mutable (in-place
  /// update) region; the remainder is the read-only region (Sec. 6.4).
  /// The paper finds 0.9 a good default.
  double mutable_fraction = 0.9;
  /// If true, pages evicted from memory are never flushed (used by the
  /// read cache of Appendix D, whose records already live on the main log).
  bool read_cache_mode = false;
};

/// HybridLog: the log-structured record allocator spanning memory and
/// storage (Sec. 5 and 6).
///
/// The 48-bit logical address space is divided into four regions by three
/// monotonically increasing markers:
///
///   begin ... [stable, on disk) ... head ... [read-only) ... safe-RO ...
///   [fuzzy) ... read-only offset ... [mutable, in-place updates) ... tail
///
/// The tail portion `[head, tail)` lives in a bounded circular buffer of
/// page frames. Records below the read-only offset are never updated in
/// place; once the *safe* read-only offset (propagated via epoch trigger
/// actions, Sec. 6.2) passes a page, the page is immutable for every
/// thread and is flushed asynchronously; once flushed and evicted (closed
/// via another epoch trigger), its frame is recycled for a new tail page.
///
/// This class owns addresses and bytes only; record semantics (headers,
/// keys, linked lists) belong to the store layered on top.
class HybridLog {
 public:
  /// `device` and `epoch` must outlive the log.
  HybridLog(const LogConfig& config, IDevice* device, LightEpoch* epoch);
  ~HybridLog();

  HybridLog(const HybridLog&) = delete;
  HybridLog& operator=(const HybridLog&) = delete;

  /// Allocates `size` bytes at the tail (Alg. 1). `size` must be 8-byte
  /// aligned and at most one page. On success returns the record address.
  /// If the current page overflowed, returns an invalid address and sets
  /// `*closed_page` to the page that must be closed; the caller should
  /// invoke `NewPage(closed_page)`, `epoch->Refresh()`, and retry.
  Address Allocate(uint32_t size, uint64_t* closed_page)
      FASTER_REQUIRES_EPOCH();

  /// Reserves one contiguous extent of `count` records of `size` bytes each
  /// with a single tail bump, for a batch of upserts. Returns the address
  /// of the first slot, or an invalid address if the extent does not fit on
  /// the current page — the caller then falls back to per-record Allocate,
  /// whose own overflow handling closes the page. The caller owns every
  /// reserved slot and must write a real record header (possibly an
  /// invalidated one) into each: a slot left all-zero would read as page
  /// padding and terminate scans of the page early.
  Address AllocateExtent(uint32_t size, uint32_t count)
      FASTER_REQUIRES_EPOCH();

  /// Closes `old_page` and opens `old_page + 1`, advancing the head and
  /// read-only offsets as needed. Returns false if the new page's frame is
  /// not yet recyclable (flush or eviction still pending); the caller
  /// should refresh its epoch and retry.
  bool NewPage(uint64_t old_page) FASTER_REQUIRES_EPOCH();

  /// Physical pointer for an in-memory logical address (caller must have
  /// checked `address >= head_address()` under epoch protection).
  uint8_t* Get(Address address) const FASTER_REQUIRES_EPOCH() {
    FASTER_EPOCH_VERIFY(epoch_->IsProtected(),
                        "log dereference (Get) without epoch protection");
    FASTER_EPOCH_VERIFY(
        address >= head_address(),
        "log dereference (Get) below the head address — the frame may "
        "already be recycled for a newer page");
    return frames_[address.page() % buffer_pages_] + address.offset();
  }

  /// As Get(), but for addresses in a range the eviction callback is being
  /// told about: those are already below the head, yet their frames are
  /// still intact — frame recycling is gated on `closed_page_`, which is
  /// stored only after the callback returns. Valid solely inside the
  /// eviction callback; epoch protection is still required.
  uint8_t* GetEvicted(Address address) const FASTER_REQUIRES_EPOCH() {
    FASTER_EPOCH_VERIFY(
        epoch_->IsProtected(),
        "log dereference (GetEvicted) without epoch protection");
    return frames_[address.page() % buffer_pages_] + address.offset();
  }

  /// Prefetches the first `bytes` of the in-memory record at `address`
  /// into cache (batched pipeline stage 2). Same precondition as Get():
  /// `address >= head_address()` under epoch protection.
  void Prefetch(Address address, uint32_t bytes) const
      FASTER_REQUIRES_EPOCH() {
    const uint8_t* p = Get(address);
    for (uint32_t off = 0; off < bytes; off += 64) {
      __builtin_prefetch(p + off, /*rw=*/0, /*locality=*/3);
    }
  }

  /// FASTER_EPOCH_CHECK hook for in-place update sites: the store calls
  /// this immediately before mutating record bytes at `address` in place.
  /// The non-vacuous invariant is the *safe* read-only bound: the store
  /// gates in-place updates on the (possibly lagging) read-only offset,
  /// and the epoch protocol is what guarantees safe-RO — the flush
  /// frontier — cannot pass an address a protected thread is still
  /// mutating. Compiled out (empty) without FASTER_EPOCH_CHECK.
  void VerifyMutableAddress(Address address) const {
    FASTER_EPOCH_VERIFY(epoch_->IsProtected(),
                        "in-place update without epoch protection");
    FASTER_EPOCH_VERIFY(
        address >= safe_read_only_address(),
        "in-place update below the safe read-only offset — these bytes may "
        "be flushing (torn write to storage)");
    FASTER_EPOCH_VERIFY(
        address >= head_address(),
        "in-place update below the head address (truncated region)");
    (void)address;
  }

  Address begin_address() const { return Load(begin_address_); }
  Address head_address() const { return Load(head_address_); }
  Address read_only_address() const { return Load(read_only_address_); }
  Address safe_read_only_address() const {
    return Load(safe_read_only_address_);
  }
  Address flushed_until_address() const { return Load(flushed_until_); }

  /// Current tail address (next allocation point), clamped to the page end
  /// during a page transition.
  Address tail_address() const;

  /// Asynchronously reads `size` bytes at logical address `address` from
  /// the device (stable region).
  Status AsyncGetFromDisk(Address address, uint32_t size, void* dst,
                          IoCallback callback, void* context);

  /// Issues a group of stable-region reads as one coalesced device
  /// submission. `requests[i].offset` must already hold the logical
  /// address (`Address::control()`), as filled in by the store's batch
  /// pipeline; callbacks complete into the usual pending machinery.
  /// `*accepted` (when non-null) reports the accepted prefix as in
  /// IDevice::ReadBatchAsync; rejected requests never fire callbacks.
  Status AsyncGetFromDiskBatch(const IoReadRequest* requests, uint32_t n,
                               uint32_t* accepted = nullptr);

  /// Synchronously reads from the stable region (recovery / log scan).
  Status ReadFromDiskSync(Address address, uint32_t size, void* dst);

  /// Moves the read-only offset to the current tail and (once the epoch
  /// permits) flushes everything below it. If `wait`, blocks (refreshing
  /// the epoch) until `flushed_until >= tail`; requires epoch protection.
  /// Returns the tail address the log will be durable up to.
  Address ShiftReadOnlyToTail(bool wait) FASTER_REQUIRES_EPOCH();

  /// Truncates the log: addresses below `new_begin` become invalid
  /// (expiration-based garbage collection, Appendix C).
  bool ShiftBeginAddress(Address new_begin);

  /// For recovery: positions all markers for an empty in-memory tail at
  /// `tail`, with everything below it on disk.
  void RecoverTo(Address begin, Address tail);

  /// Registers a callback invoked (under epoch safety, before the frames
  /// are recycled) for every address range [from, to) evicted from memory
  /// when the head advances. Used by the read cache (Appendix D) to
  /// redirect index entries back to the primary log. Must be set before
  /// any allocation.
  void SetEvictionCallback(std::function<void(Address, Address)> cb) {
    eviction_callback_ = std::move(cb);
  }

  /// Point-in-time-ish region snapshot for /debug/log. Loaded smallest
  /// marker first: every marker only advances, so reading `head` before
  /// `read_only` before `tail` guarantees the *snapshot* preserves
  /// begin <= head <= read_only <= tail (a marker read later can only be
  /// ahead of, never behind, one read earlier).
  struct RegionSnapshot {
    Address begin;
    Address head;
    Address safe_read_only;
    Address flushed_until;
    Address read_only;
    Address tail;
  };
  RegionSnapshot SnapshotRegions() const {
    RegionSnapshot s;
    s.begin = begin_address();
    s.head = head_address();
    s.safe_read_only = safe_read_only_address();
    s.flushed_until = flushed_until_address();
    s.read_only = read_only_address();
    s.tail = tail_address();
    return s;
  }

  /// Number of page frames in the circular buffer.
  uint64_t buffer_pages() const { return buffer_pages_; }
  /// Pages of read-only lag between the read-only offset and the tail.
  uint64_t read_only_lag_pages() const { return ro_lag_pages_; }

  LightEpoch* epoch() { return epoch_; }
  IDevice* device() { return device_; }

  /// True if any asynchronous flush reported an error.
  bool io_error() const { return io_error_.load(std::memory_order_acquire); }

  /// Observability (compiled out unless FASTER_STATS): page lifecycle and
  /// flush pipeline health.
  struct ObsStats {
    obs::StatCounter pages_opened;   // successful NewPage transitions
    obs::StatCounter alloc_stalls;   // NewPage retries (flush/evict pending)
    obs::StatCounter pages_evicted;  // pages closed out of memory
    obs::StatCounter flush_chunks;   // device writes issued
    obs::StatCounter flush_bytes;    // bytes handed to the device
    obs::StatHistogram flush_ns;     // issue -> completion latency
  };
  const ObsStats& obs_stats() const { return obs_stats_; }

  /// Registers this log's metrics under `prefix.` names.
  void RegisterStats(obs::StatRegistry& registry,
                     const std::string& prefix) const {
    registry.Add(prefix + ".pages_opened", &obs_stats_.pages_opened);
    registry.Add(prefix + ".alloc_stalls", &obs_stats_.alloc_stalls);
    registry.Add(prefix + ".pages_evicted", &obs_stats_.pages_evicted);
    registry.Add(prefix + ".flush_chunks", &obs_stats_.flush_chunks);
    registry.Add(prefix + ".flush_bytes", &obs_stats_.flush_bytes);
    registry.Add(prefix + ".flush_ns", &obs_stats_.flush_ns);
  }

 private:
  static Address Load(const std::atomic<uint64_t>& a) {
    return Address{a.load(std::memory_order_acquire)};
  }
  /// Monotonic (never-backward) update; returns true if we advanced it.
  static bool MonotonicUpdate(std::atomic<uint64_t>& a, Address desired,
                              Address* winner = nullptr);

  /// Epoch-trigger target: propagate the read-only offset to the safe
  /// read-only offset and issue flushes for newly immutable bytes. Runs on
  /// whichever protected thread drains the trigger action.
  void UpdateSafeReadOnly(Address new_safe) FASTER_REQUIRES_EPOCH();
  void UpdateSafeReadOnlyLocked(Address new_safe) FASTER_REQUIRES_EPOCH();
  /// Issues device writes for [flush_issued_, limit). Caller holds
  /// flush_mutex_ and epoch protection (reads page frames via Get).
  void IssueFlushesLocked(Address limit) FASTER_REQUIRES_EPOCH();
  /// Flush-completion bookkeeping: advance flushed_until_ contiguously.
  void CompleteFlush(Address start, Address end);

  struct FlushContext {
    HybridLog* log;
    Address start;
    Address end;
    uint64_t issue_ns;  // stats only; 0 when compiled out
  };
  static void FlushCallback(void* context, Status result, uint32_t bytes);

  IDevice* device_;
  LightEpoch* epoch_;
  std::function<void(Address, Address)> eviction_callback_;
  uint64_t buffer_pages_;
  uint64_t ro_lag_pages_;
  bool read_cache_mode_;

  std::vector<uint8_t*> frames_;
  /// closed_page_[f]: the latest page whose eviction from frame f has
  /// completed; frame f may host page P iff P < buffer_pages_ or
  /// closed_page_[f] == P - buffer_pages_.
  // order: release store inside the eviction trigger action (epoch safety
  // for all readers of the frame happens-before the store); acquire load
  // in NewPage before recycling the frame; release stores in RecoverTo
  // (idle log).
  std::vector<std::unique_ptr<std::atomic<int64_t>>> closed_page_;

  /// Packed (page << 32 | offset); offset may transiently exceed the page
  /// size while a page transition is in progress.
  // order: acq_rel fetch_add in Allocate/AllocateExtent (Alg. 1); acq_rel
  // CAS for the page rollover — threads that observe the new page's offset
  // also observe its memset; acquire loads; release store in RecoverTo.
  alignas(64) std::atomic<uint64_t> tail_page_offset_;
  // Region markers: monotone frontiers — acquire loads, acq_rel CAS-loop
  // in MonotonicUpdate; release store only in RecoverTo (idle log).
  // Safe-RO and eviction propagate only through epoch trigger actions
  // (§6.2), so a marker observed by any thread is already safe for all.
  // order: acquire load; acq_rel CAS; release store (RecoverTo).
  alignas(64) std::atomic<uint64_t> begin_address_;
  // order: acquire load; acq_rel CAS; release store (RecoverTo).
  alignas(64) std::atomic<uint64_t> head_address_;
  // order: acquire load; acq_rel CAS; release store (RecoverTo).
  alignas(64) std::atomic<uint64_t> read_only_address_;
  // order: acquire load; acq_rel CAS; release store (RecoverTo).
  alignas(64) std::atomic<uint64_t> safe_read_only_address_;
  // order: acquire load; acq_rel CAS; release store (RecoverTo).
  alignas(64) std::atomic<uint64_t> flushed_until_;

  // Flush issuance/completion state (off the fast path). Recursive because
  // an epoch drain triggered inside NewPage (which holds the mutex) may run
  // the safe-read-only trigger action inline.
  std::recursive_mutex flush_mutex_;
  Address flush_issued_;
  std::map<uint64_t, uint64_t> completed_flushes_;  // start -> end
  // order: release store from the flush-completion callback (IO thread);
  // acquire load in io_error() so the reader observes the failed write's
  // bookkeeping.
  std::atomic<bool> io_error_{false};

  mutable ObsStats obs_stats_;
};

}  // namespace faster

#endif  // FASTER_CORE_HYBRID_LOG_H_
