#ifndef FASTER_NET_SOCKET_H_
#define FASTER_NET_SOCKET_H_

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

/// Socket plumbing shared by the RESP server (net/server.cc), the
/// loadgen client (tools/loadgen.cc), and the RemoteStore baseline
/// (baselines/remote_store.cc): one RAII fd owner and EINTR-correct
/// syscall wrappers, so no caller hand-rolls close() bookkeeping or
/// retry loops. Header-only so baselines can use it without linking
/// faster_net.

namespace faster {
namespace net {

/// Owns one file descriptor; closes it on destruction. Move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_{fd} {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_{other.release()} {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  /// Relinquishes ownership without closing.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the current fd (if any) and adopts `fd`.
  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

/// read() retrying on EINTR. Returns the syscall result (0 = EOF,
/// -1 = error other than EINTR, with errno set — EAGAIN/EWOULDBLOCK on a
/// nonblocking fd with no data).
inline ssize_t ReadSomeFd(int fd, void* buf, size_t len) {
  for (;;) {
    ssize_t n = ::read(fd, buf, len);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

/// Writes the whole buffer, retrying on EINTR and short writes. Intended
/// for blocking fds; on a nonblocking fd EAGAIN surfaces as failure.
inline bool WriteAllFd(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::write(fd, p, len);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

/// Writes as much as the fd accepts right now (nonblocking senders).
/// Returns bytes written (possibly 0 on EAGAIN), or -1 on a real error.
inline ssize_t WriteSomeFd(int fd, const void* data, size_t len) {
  for (;;) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return 0;
    return n;
  }
}

/// accept() retrying on EINTR. Returns -1 (errno set) on other errors,
/// including EAGAIN when the listener is nonblocking and the backlog is
/// empty.
inline int AcceptNoIntr(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0 && errno == EINTR) continue;
    return fd;
  }
}

inline bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

inline bool SetNoDelay(int fd) {
  int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

/// Creates a bound, listening TCP socket. With `reuseport`, multiple
/// listeners may bind the same address (SO_REUSEPORT accept sharding);
/// the first listener of a group should pass port 0 or the fixed port,
/// later ones the resolved `*bound_port`. On failure returns an invalid
/// UniqueFd and fills `*error`.
inline UniqueFd CreateTcpListener(const std::string& bind_address,
                                  uint16_t port, int backlog, bool reuseport,
                                  uint16_t* bound_port, std::string* error) {
  UniqueFd fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return UniqueFd{};
  }
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport &&
      ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
          0) {
    if (error != nullptr) {
      *error = "SO_REUSEPORT: " + std::string(strerror(errno));
    }
    return UniqueFd{};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad bind address: " + bind_address;
    return UniqueFd{};
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = "bind: " + std::string(strerror(errno));
    return UniqueFd{};
  }
  if (::listen(fd.get(), backlog) != 0) {
    if (error != nullptr) *error = "listen: " + std::string(strerror(errno));
    return UniqueFd{};
  }
  if (bound_port != nullptr) {
    sockaddr_in got{};
    socklen_t len = sizeof(got);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&got), &len) !=
        0) {
      if (error != nullptr) {
        *error = "getsockname: " + std::string(strerror(errno));
      }
      return UniqueFd{};
    }
    *bound_port = ntohs(got.sin_port);
  }
  return fd;
}

/// Blocking TCP connect to host:port (numeric address). Returns an
/// invalid UniqueFd on failure (errno describes the cause).
inline UniqueFd ConnectTcp(const std::string& address, uint16_t port) {
  UniqueFd fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd) return UniqueFd{};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return UniqueFd{};
  }
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    return UniqueFd{};
  }
}

}  // namespace net
}  // namespace faster

#endif  // FASTER_NET_SOCKET_H_
