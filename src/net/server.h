#ifndef FASTER_NET_SERVER_H_
#define FASTER_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"
#include "net/resp.h"
#include "net/socket.h"
#include "obs/stats.h"

/// FasterServer: a pipelined RESP2 front end for FasterKv (DESIGN.md §11).
///
/// The design target is the residual cost Lomet & Wang identify in
/// FASTER-style stores: per-operation cross-thread handoff. There is none
/// here — each worker thread owns an epoll loop, its own SO_REUSEPORT
/// listener (the kernel shards accepted connections across workers), one
/// long-lived FasterKv session, and every connection it accepted. A
/// connection's bytes are parsed, executed, and answered on one thread,
/// and pipelined commands arriving together are coalesced into
/// ExecuteBatch/ReadBatch calls so network traffic naturally produces the
/// batch depths where the software-pipelined batch path wins.
///
/// Commands: GET, SET, DEL, INCR, PING, INFO, SLOWLOG GET|RESET|LEN (plus
/// QUIT and a COMMAND stub for redis-cli handshakes), in inline or
/// multibulk form. The store is the paper's count store (uint64
/// keys/values): decimal keys map to their value, other keys are FNV-1a
/// hashed (collisions possible), and SET values must be decimal uint64s.
///
/// Ordering contract: replies are rendered strictly in per-connection
/// command order, regardless of how commands were split across batch
/// segments or completed asynchronously (out-of-order-safe sequencing).
/// INCR replies are exact — a turn's shared batch is split whenever a
/// later command touches a key already INCR'd in the current segment, so
/// the post-increment read (phase 2) can never observe another command's
/// effect on that key.

namespace faster {
namespace net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// Listen port; 0 picks an ephemeral port (see FasterServer::port()).
  uint16_t port = 6379;
  /// Worker threads (= epoll loops = SO_REUSEPORT listeners = sessions).
  uint32_t threads = 2;
  /// Most commands coalesced per connection per event-loop turn; further
  /// buffered commands carry over to the next turn (backpressure).
  size_t max_pipeline = 512;
  /// RESP parser limits (oversized frames close the connection).
  RespLimits limits;
  /// Store sizing (the server owns its FasterKv + in-memory device).
  uint64_t table_size = uint64_t{1} << 16;
  uint64_t log_memory_bytes = uint64_t{1} << 26;
  double mutable_fraction = 0.9;
  /// Device completion path (DESIGN.md §13). kPolling runs zero I/O
  /// threads: flush writes and cold reads execute inside the workers' own
  /// CompletePending polls, eliminating the cross-thread completion hop.
  /// kThreadPool keeps the legacy two-worker I/O pool. (kUring is
  /// file-device-only and is treated as kPolling by the in-memory device.)
  IoPathMode io_path = IoPathMode::kThreadPool;
  /// Arms the global slow-op log at construction: operations slower than
  /// this are recorded with per-stage breakdowns (SLOWLOG GET /
  /// /debug/slowlog). 0 leaves the slowlog disabled (its default).
  uint64_t slowlog_threshold_us = 0;
};

/// Server-side metrics, obs::-sharded like the store's own (compiled out
/// unless FASTER_STATS; see obs/stats.h).
struct NetStats {
  obs::StatCounter connections_accepted;
  obs::StatCounter connections_closed;
  obs::StatGauge connections_open;
  obs::StatCounter commands;         // total commands executed
  obs::StatCounter cmd_get, cmd_set, cmd_incr, cmd_del, cmd_other;
  obs::StatCounter protocol_errors;  // parse failures (connection closed)
  obs::StatCounter turns;            // event-loop turns that executed ops
  obs::StatCounter segment_splits;   // batch segments forced by DEL/INCR
  obs::StatCounter bytes_read, bytes_written;
  obs::StatHistogram pipeline_depth; // commands per connection per turn
  obs::StatHistogram batch_fill;     // ops per ExecuteBatch segment
};

class FasterServer {
 public:
  using Store = FasterKv<CountStoreFunctions>;

  /// Binds `options.threads` SO_REUSEPORT listeners and starts the worker
  /// threads. Check ok(): bind failure disables the server (error() says
  /// why) instead of aborting the host.
  explicit FasterServer(const ServerOptions& options);

  /// Drains and joins (Shutdown()).
  ~FasterServer();

  FasterServer(const FasterServer&) = delete;
  FasterServer& operator=(const FasterServer&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  /// The bound port (resolves an ephemeral request of 0).
  uint16_t port() const { return port_; }

  /// Clean drain: stop accepting, flush buffered replies, close
  /// connections, complete pending store work, end every worker's session
  /// (unprotecting its epoch slot), and join. Idempotent; also run by the
  /// destructor. Safe to call from a signal-handling thread.
  void Shutdown();

  /// The underlying store (e.g. for preloading before serving traffic).
  /// External callers must bracket access with Store::Session and must
  /// not issue operations that can go pending without routing the
  /// completion through their own context handling.
  Store& store() { return *store_; }

  NetStats& stats() { return stats_; }

  /// Registers server metrics (prefix "net.") into `reg`; callers
  /// typically combine with store().CollectStats for one exposition.
  void CollectStats(obs::StatRegistry& reg);

  /// Total commands executed (independent of FASTER_STATS, so tests can
  /// assert on it in any build).
  uint64_t commands_processed() const {
    return commands_.load(std::memory_order_relaxed);
  }

  /// /debug/connections body: one JSON object per live connection with
  /// its worker, age, byte counts, and command tally. Lock-free relaxed
  /// reads of the connection slot table; always available (the slot
  /// table is maintained in every build).
  std::string DebugConnectionsJson() const;

 private:
  /// Live per-connection counters for /debug/connections. Fixed slots
  /// claimed at accept and released at close so the exporter thread can
  /// scan without touching worker-owned Connection objects. Connections
  /// beyond the table run untracked (accept never blocks on this).
  struct ConnSlot {
    // order: release store claims/releases a slot (publishing the fields
    // set before the claim); acquire loads in the scan pair with it.
    std::atomic<bool> used{false};
    // order: relaxed; published by `used`, then monotone counters only.
    std::atomic<int> fd{-1};
    // order: relaxed; written before the `used` claim publishes the slot.
    std::atomic<uint32_t> worker{0};
    // order: relaxed; written before the `used` claim publishes the slot.
    std::atomic<uint64_t> accept_ns{0};   // obs::NowNs() at accept
    // order: relaxed; monotone counter, single-writer, torn-free reads.
    std::atomic<uint64_t> bytes_in{0};
    // order: relaxed; monotone counter, single-writer, torn-free reads.
    std::atomic<uint64_t> bytes_out{0};
    // order: relaxed; monotone counter, single-writer, torn-free reads.
    std::atomic<uint64_t> commands{0};
  };
  static constexpr uint32_t kMaxConnSlots = 256;
  struct CmdRec;
  struct SlotRec;
  struct Connection;
  struct Worker;

  void WorkerLoop(Worker& worker);
  void AcceptNew(Worker& worker);
  bool HandleReadable(Worker& worker, Connection& conn);
  void GatherCommands(Worker& worker, Connection& conn)
      FASTER_REQUIRES_EPOCH();
  void ClassifyCommand(Worker& worker, Connection& conn, RespCommand&& cmd)
      FASTER_REQUIRES_EPOCH();
  void MaybeSplitSegment(Worker& worker, uint64_t key)
      FASTER_REQUIRES_EPOCH();
  void ExecuteSegment(Worker& worker) FASTER_REQUIRES_EPOCH();
  void ProcessTurn(Worker& worker) FASTER_REQUIRES_EPOCH();
  void RenderAndFlush(Worker& worker);
  void RenderCommand(Worker& worker, const CmdRec& rec, std::string* out);
  void FlushConnection(Connection& conn);
  void CloseConnection(Worker& worker, int fd);
  void UpdateEpollOut(Worker& worker, Connection& conn, bool want_out);
  std::string InfoText();
  /// Renders the RESP reply for SLOWLOG GET|RESET|LEN into `rec.lit`.
  void HandleSlowlog(const RespCommand& cmd, std::string* out);
  uint32_t ClaimConnSlot(int fd, uint32_t worker_index);
  void ReleaseConnSlot(uint32_t slot);

  /// Config::completion_callback target: writes the final status of a
  /// pending op into the Status slot its user_context points at. Runs on
  /// the issuing worker inside CompletePending, so no synchronization.
  static void PendingCompletion(Store::UserOp op, Status result,
                                void* user_context);

  ServerOptions options_;
  std::unique_ptr<MemoryDevice> device_;
  std::unique_ptr<Store> store_;
  std::vector<std::unique_ptr<Worker>> workers_;
  NetStats stats_;
  bool ok_ = false;
  std::string error_;
  uint16_t port_ = 0;
  // order: acq_rel CAS in Shutdown claims the drain exactly once; acquire
  // loads in the worker loops observe it and begin draining.
  std::atomic<bool> stopping_{false};
  // order: release store after workers are joined; acquire load in
  // Shutdown makes second callers wait-free and idempotent.
  std::atomic<bool> stopped_{false};
  // order: relaxed fetch_add/load — a monotone command tally for tests
  // and INFO; no data is published through it.
  std::atomic<uint64_t> commands_{0};
  ConnSlot conn_slots_[kMaxConnSlots];
};

}  // namespace net
}  // namespace faster

#endif  // FASTER_NET_SERVER_H_
