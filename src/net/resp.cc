#include "net/resp.h"

#include <algorithm>
#include <cstdio>

#include "obs/log.h"

namespace faster {
namespace net {

namespace {

/// Parses a non-negative decimal integer out of [p, end); returns -1 on
/// any non-digit, empty input, or overflow past `cap`.
ptrdiff_t ParseCount(const char* p, const char* end, ptrdiff_t cap) {
  if (p == end) return -1;
  ptrdiff_t v = 0;
  for (; p != end; ++p) {
    if (*p < '0' || *p > '9') return -1;
    v = v * 10 + (*p - '0');
    if (v > cap) return cap + 1;  // saturate: caller rejects > cap
  }
  return v;
}

}  // namespace

RespParser::Result RespParser::Fail(const std::string& what) {
  state_ = State::kFailed;
  error_ = what;
  // Rate-limited: a garbage-spraying client can fail once per byte.
  static obs::StatLogRateLimit fail_limit{100'000'000};  // 100ms
  obs::StatLogLimited(fail_limit, obs::LogLevel::kDebug, "resp",
                      "parse failure", obs::LogField{"what", what.c_str()});
  return Result::kError;
}

size_t RespParser::FindLineEnd(size_t guard, bool* overlong) const {
  *overlong = false;
  size_t limit = std::min(buf_.size(), pos_ + guard + 2);
  for (size_t i = pos_; i + 1 < limit; ++i) {
    if (buf_[i] == '\r' && buf_[i + 1] == '\n') return i;
  }
  // No CRLF within the guard window: if that much input is already
  // buffered the line can never terminate legally.
  if (buf_.size() - pos_ > guard + 2) *overlong = true;
  return std::string::npos;
}

void RespParser::Compact() {
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

RespParser::Result RespParser::Next(RespCommand* out) {
  if (state_ == State::kFailed) return Result::kError;
  for (;;) {
    if (state_ == State::kIdle) {
      if (pos_ >= buf_.size()) {
        Compact();
        return Result::kNeedMore;
      }
      if (buf_[pos_] == '*') {
        // Multibulk header: *<count>\r\n
        bool overlong = false;
        size_t eol = FindLineEnd(/*guard=*/32, &overlong);
        if (eol == std::string::npos) {
          if (overlong) return Fail("Protocol error: invalid multibulk length");
          return Result::kNeedMore;
        }
        ptrdiff_t n =
            ParseCount(buf_.data() + pos_ + 1, buf_.data() + eol,
                       static_cast<ptrdiff_t>(limits_.max_args));
        if (n < 0 || n > static_cast<ptrdiff_t>(limits_.max_args)) {
          return Fail("Protocol error: invalid multibulk length");
        }
        pos_ = eol + 2;
        if (n == 0) continue;  // *0: empty command, skip (as Redis does)
        argv_.clear();
        args_remaining_ = static_cast<size_t>(n);
        bulk_len_ = -1;
        state_ = State::kBulkArgs;
        continue;
      }
      // Inline command: one line, space-separated words.
      bool overlong = false;
      size_t eol = FindLineEnd(limits_.max_inline, &overlong);
      if (eol == std::string::npos) {
        // Tolerate bare-LF line endings for hand-typed (nc) input.
        size_t lf = buf_.find('\n', pos_);
        if (lf != std::string::npos && lf - pos_ <= limits_.max_inline) {
          eol = lf;  // consume below as LF-terminated
          std::string_view line{buf_.data() + pos_, lf - pos_};
          if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
          out->argv.clear();
          size_t i = 0;
          while (i < line.size()) {
            while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
            size_t start = i;
            while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
            if (i > start) out->argv.emplace_back(line.substr(start, i - start));
          }
          pos_ = lf + 1;
          Compact();
          if (out->argv.empty()) continue;  // blank line: skip
          return Result::kCommand;
        }
        if (overlong ||
            (lf == std::string::npos && buf_.size() - pos_ > limits_.max_inline)) {
          return Fail("Protocol error: too big inline request");
        }
        return Result::kNeedMore;
      }
      std::string_view line{buf_.data() + pos_, eol - pos_};
      out->argv.clear();
      size_t i = 0;
      while (i < line.size()) {
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
        size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
        if (i > start) out->argv.emplace_back(line.substr(start, i - start));
      }
      pos_ = eol + 2;
      Compact();
      if (out->argv.empty()) continue;  // blank line: skip
      return Result::kCommand;
    }

    // State::kBulkArgs — collecting `args_remaining_` bulk strings.
    if (bulk_len_ < 0) {
      bool overlong = false;
      size_t eol = FindLineEnd(/*guard=*/32, &overlong);
      if (eol == std::string::npos) {
        if (overlong) return Fail("Protocol error: invalid bulk length");
        return Result::kNeedMore;
      }
      if (buf_[pos_] != '$') {
        return Fail("Protocol error: expected '$', got '" +
                    std::string(1, buf_[pos_]) + "'");
      }
      ptrdiff_t len = ParseCount(buf_.data() + pos_ + 1, buf_.data() + eol,
                                 static_cast<ptrdiff_t>(limits_.max_bulk));
      if (len < 0 || len > static_cast<ptrdiff_t>(limits_.max_bulk)) {
        return Fail("Protocol error: invalid bulk length");
      }
      pos_ = eol + 2;
      bulk_len_ = len;
    }
    size_t need = static_cast<size_t>(bulk_len_) + 2;  // payload + CRLF
    if (buf_.size() - pos_ < need) {
      Compact();
      return Result::kNeedMore;
    }
    size_t payload_end = pos_ + static_cast<size_t>(bulk_len_);
    if (buf_[payload_end] != '\r' || buf_[payload_end + 1] != '\n') {
      return Fail("Protocol error: bulk string not CRLF-terminated");
    }
    argv_.emplace_back(buf_.data() + pos_, static_cast<size_t>(bulk_len_));
    pos_ = payload_end + 2;
    bulk_len_ = -1;
    if (--args_remaining_ == 0) {
      out->argv = std::move(argv_);
      argv_.clear();
      state_ = State::kIdle;
      Compact();
      return Result::kCommand;
    }
  }
}

// ---------------------------------------------------------------------------
// Reply builders.
// ---------------------------------------------------------------------------

void AppendSimple(std::string* out, std::string_view s) {
  out->push_back('+');
  out->append(s);
  out->append("\r\n");
}

void AppendError(std::string* out, std::string_view s) {
  out->push_back('-');
  out->append(s);
  out->append("\r\n");
}

void AppendInteger(std::string* out, long long v) {
  char buf[24];
  int n = std::snprintf(buf, sizeof(buf), ":%lld\r\n", v);
  out->append(buf, static_cast<size_t>(n));
}

void AppendBulk(std::string* out, std::string_view s) {
  char buf[24];
  int n = std::snprintf(buf, sizeof(buf), "$%zu\r\n", s.size());
  out->append(buf, static_cast<size_t>(n));
  out->append(s);
  out->append("\r\n");
}

void AppendNullBulk(std::string* out) { out->append("$-1\r\n"); }

// ---------------------------------------------------------------------------
// Reply framing (client side).
// ---------------------------------------------------------------------------

size_t SkipReply(std::string_view buf, size_t pos, char* type) {
  if (pos >= buf.size()) return std::string_view::npos;
  char t = buf[pos];
  if (type != nullptr) *type = t;
  size_t eol = buf.find("\r\n", pos);
  if (eol == std::string_view::npos) return std::string_view::npos;
  switch (t) {
    case '+':
    case '-':
    case ':':
      return eol + 2;
    case '$': {
      long long len = 0;
      bool neg = false;
      size_t i = pos + 1;
      if (i < eol && buf[i] == '-') {
        neg = true;
        ++i;
      }
      for (; i < eol; ++i) {
        if (buf[i] < '0' || buf[i] > '9') return std::string_view::npos;
        len = len * 10 + (buf[i] - '0');
      }
      if (neg) return eol + 2;  // $-1: null bulk, header only
      size_t end = eol + 2 + static_cast<size_t>(len) + 2;
      return end <= buf.size() ? end : std::string_view::npos;
    }
    case '*': {
      long long count = 0;
      for (size_t i = pos + 1; i < eol; ++i) {
        if (buf[i] < '0' || buf[i] > '9') return std::string_view::npos;
        count = count * 10 + (buf[i] - '0');
      }
      size_t at = eol + 2;
      for (long long i = 0; i < count; ++i) {
        at = SkipReply(buf, at, nullptr);
        if (at == std::string_view::npos) return std::string_view::npos;
      }
      return at;
    }
    default:
      return std::string_view::npos;
  }
}

// ---------------------------------------------------------------------------
// Key/value mapping.
// ---------------------------------------------------------------------------

bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

uint64_t MapKey(std::string_view s) {
  uint64_t v;
  if (ParseU64(s, &v)) return v;
  // FNV-1a 64.
  uint64_t h = 14695981039346656037ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace net
}  // namespace faster
