#ifndef FASTER_NET_RESP_H_
#define FASTER_NET_RESP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// RESP2 (REdis Serialization Protocol) framing: the incremental request
/// parser the server feeds raw socket reads into, plus reply builders and
/// a reply skipper for client-side pipelining (tools/loadgen, bench).
///
/// The parser accepts both request forms real Redis clients emit:
///   - multibulk:  *2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n
///   - inline:     GET foo\r\n
/// and resumes mid-frame: bytes may arrive split at any boundary (header,
/// bulk payload, even mid-CRLF); state persists across Feed() calls so no
/// input is ever rescanned. Malformed input (bad header, oversized bulk,
/// too many args) puts the parser into a sticky error state — the server
/// reports the error and closes the connection, as Redis does.

namespace faster {
namespace net {

struct RespLimits {
  /// Longest accepted inline command line (bytes before the newline).
  size_t max_inline = 64 * 1024;
  /// Most arguments in one multibulk command.
  size_t max_args = 1024;
  /// Largest single bulk-string payload.
  size_t max_bulk = 512 * 1024;
};

/// One parsed command: argv[0] is the (case-preserved) command name.
struct RespCommand {
  std::vector<std::string> argv;
};

class RespParser {
 public:
  enum class Result {
    kCommand,   // *out holds one complete command
    kNeedMore,  // frame incomplete; Feed() more bytes
    kError,     // protocol violation; see error() (sticky)
  };

  explicit RespParser(const RespLimits& limits = RespLimits{})
      : limits_{limits} {}

  /// Appends raw bytes from the socket.
  void Feed(const char* data, size_t len) { buf_.append(data, len); }

  /// Extracts the next complete command, if any.
  Result Next(RespCommand* out);

  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet consumed (for backpressure accounting).
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  enum class State { kIdle, kBulkArgs, kFailed };

  Result Fail(const std::string& what);
  /// Finds the next CRLF-terminated line at pos_; npos when incomplete.
  size_t FindLineEnd(size_t guard, bool* overlong) const;
  void Compact();

  RespLimits limits_;
  std::string buf_;
  size_t pos_ = 0;  // first unconsumed byte
  State state_ = State::kIdle;
  std::string error_;
  // Multibulk progress (valid in kBulkArgs).
  std::vector<std::string> argv_;
  size_t args_remaining_ = 0;
  ptrdiff_t bulk_len_ = -1;  // -1: expecting a $<len> header
};

// ---------------------------------------------------------------------------
// Reply builders (server side).
// ---------------------------------------------------------------------------

void AppendSimple(std::string* out, std::string_view s);       // +s\r\n
void AppendError(std::string* out, std::string_view s);        // -s\r\n
void AppendInteger(std::string* out, long long v);             // :v\r\n
void AppendBulk(std::string* out, std::string_view s);         // $n\r\ns\r\n
void AppendNullBulk(std::string* out);                         // $-1\r\n

// ---------------------------------------------------------------------------
// Reply framing (client side).
// ---------------------------------------------------------------------------

/// If one complete reply starts at `pos`, returns the offset one past its
/// end and stores the reply's type byte ('+', '-', ':', '$', '*') in
/// *type; returns std::string_view::npos when the reply is incomplete.
size_t SkipReply(std::string_view buf, size_t pos, char* type);

// ---------------------------------------------------------------------------
// Key/value text mapping for the uint64 count store.
// ---------------------------------------------------------------------------

/// Strict full-string decimal uint64 parse (no sign, no whitespace).
bool ParseU64(std::string_view s, uint64_t* out);

/// Maps an arbitrary RESP key to the store's uint64 key space: decimal
/// strings map to their value (so loadgen/redis-cli keys "0".."N" hit the
/// preloaded range); anything else is FNV-1a hashed. Distinct non-numeric
/// keys may collide — acceptable for a fixed-width-key store fronted by a
/// text protocol; DESIGN.md §11 records the caveat.
uint64_t MapKey(std::string_view s);

}  // namespace net
}  // namespace faster

#endif  // FASTER_NET_RESP_H_
