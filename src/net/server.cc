#include "net/server.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <deque>
#include <optional>

#include "obs/log.h"
#include "obs/slowlog.h"
#include "obs/span.h"

namespace faster {
namespace net {

namespace {

constexpr uint32_t kNoSlot = UINT32_MAX;

/// Uppercases an ASCII command name into a small buffer ("get" -> "GET").
/// Returns false (no match possible) for names longer than the buffer.
bool UpperName(const std::string& s, char* out, size_t cap) {
  if (s.size() + 1 > cap) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(s[i])));
  }
  out[s.size()] = '\0';
  return true;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  int n = std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf, static_cast<size_t>(n));
}

}  // namespace

/// One command's reply recipe, recorded in per-connection order during
/// classification and rendered after the turn's store work completes —
/// this is what makes reply sequencing safe under batch splits and
/// asynchronous completion.
struct FasterServer::CmdRec {
  enum class Type : uint8_t {
    kGet,   // reply from slot: bulk value / $-1 / error
    kSet,   // reply from slot: +OK / error
    kIncr,  // reply from slot: :post-increment / error
    kDel,   // reply: :intval
    kLit,   // reply: lit verbatim (already RESP-encoded)
    kErr,   // reply: -lit
  };
  Type type;
  uint32_t slot = kNoSlot;
  long long intval = 0;
  std::string lit;
};

/// One store operation's turn state. Lives in a per-worker std::deque so
/// element addresses stay stable while later commands append — BatchOp
/// output/user_context pointers and the pending-completion callback both
/// point into these records.
struct FasterServer::SlotRec {
  enum class Kind : uint8_t { kGet, kSet, kIncr };
  Kind kind;
  uint64_t key = 0;
  uint64_t value = 0;     // SET payload / INCR operand
  uint64_t read_out = 0;  // GET result (written by the store, possibly at
                          // CompletePending time)
  Status final_status = Status::kOk;  // phase-1 result; pending ops have
                                      // it written by PendingCompletion
  uint64_t incr_out = 0;              // INCR phase-2 (post-increment) value
  Status incr_final = Status::kOk;    // phase-2 result, same contract
};

struct FasterServer::Connection {
  Connection(UniqueFd f, const RespLimits& limits)
      : fd{std::move(f)}, parser{limits} {}

  UniqueFd fd;
  RespParser parser;
  std::string outbuf;              // rendered, unsent reply bytes
  std::vector<CmdRec> turn_cmds;   // this turn's replies, in order
  uint32_t stat_slot = kNoSlot;    // index into conn_slots_, or kNoSlot
  bool in_ready = false;   // already on the worker's ready list
  bool has_more = false;   // parser holds complete commands beyond the cap
  bool want_close = false; // close once outbuf drains (QUIT / proto error)
  bool epollout = false;   // EPOLLOUT currently armed
  bool dead = false;       // write error; close at end of turn
};

struct FasterServer::Worker {
  uint32_t index = 0;
  UniqueFd listen_fd;
  UniqueFd epoll_fd;
  UniqueFd wake_read, wake_write;
  std::thread thread;
  std::unordered_map<int, std::unique_ptr<Connection>> conns;
  std::vector<Connection*> ready;
  std::vector<char> scratch = std::vector<char>(size_t{1} << 16);
  // Turn state (cleared per turn). slots is a deque: stable addresses.
  std::deque<SlotRec> slots;
  std::vector<uint32_t> segment;  // slot indices awaiting ExecuteBatch
  std::unordered_set<uint64_t> segment_incr_keys;
  size_t turn_commands = 0;
};

FasterServer::FasterServer(const ServerOptions& options)
    : options_{options} {
  if (options_.slowlog_threshold_us != 0) {
    obs::GlobalSlowLog().set_threshold_ns(options_.slowlog_threshold_us *
                                          1000);
  }
  // kPolling runs zero I/O threads — workers reap their own completions
  // inside CompletePending (DESIGN.md §13).
  device_ = options_.io_path == IoPathMode::kThreadPool
                ? std::make_unique<MemoryDevice>(2)
                : std::make_unique<MemoryDevice>(0, 0, options_.io_path);
  Store::Config cfg;
  cfg.table_size = options_.table_size;
  cfg.log.memory_size_bytes = options_.log_memory_bytes;
  cfg.log.mutable_fraction = options_.mutable_fraction;
  cfg.completion_callback = &FasterServer::PendingCompletion;
  store_ = std::make_unique<Store>(cfg, device_.get());

  uint32_t threads = std::max<uint32_t>(1, options_.threads);
  uint16_t bound = options_.port;
  for (uint32_t t = 0; t < threads; ++t) {
    auto w = std::make_unique<Worker>();
    w->index = t;
    // Worker 0 resolves an ephemeral port request; the rest bind the
    // resolved port so the kernel shards accepts across all listeners.
    w->listen_fd = CreateTcpListener(options_.bind_address, bound,
                                     /*backlog=*/256, /*reuseport=*/true,
                                     t == 0 ? &bound : nullptr, &error_);
    if (!w->listen_fd || !SetNonBlocking(w->listen_fd.get())) {
      if (error_.empty()) error_ = "listener setup failed";
      return;
    }
    w->epoll_fd.reset(::epoll_create1(EPOLL_CLOEXEC));
    int wake[2];
    if (!w->epoll_fd || ::pipe2(wake, O_NONBLOCK | O_CLOEXEC) != 0) {
      error_ = "epoll/pipe setup failed";
      return;
    }
    w->wake_read.reset(wake[0]);
    w->wake_write.reset(wake[1]);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = w->listen_fd.get();
    ::epoll_ctl(w->epoll_fd.get(), EPOLL_CTL_ADD, w->listen_fd.get(), &ev);
    ev.data.fd = w->wake_read.get();
    ::epoll_ctl(w->epoll_fd.get(), EPOLL_CTL_ADD, w->wake_read.get(), &ev);
    workers_.push_back(std::move(w));
  }
  port_ = bound;
  ok_ = true;
  obs::StatLog(obs::LogLevel::kInfo, "server", "listening",
               obs::LogField{"port", static_cast<uint64_t>(port_)},
               obs::LogField{"workers", threads},
               obs::LogField{"slowlog_threshold_us",
                             options_.slowlog_threshold_us});
  for (auto& w : workers_) {
    Worker* wp = w.get();
    wp->thread = std::thread([this, wp] { WorkerLoop(*wp); });
  }
}

FasterServer::~FasterServer() { Shutdown(); }

void FasterServer::Shutdown() {
  bool expected = false;
  if (stopping_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    obs::StatLog(obs::LogLevel::kInfo, "server", "shutdown: draining",
                 obs::LogField{"commands",
                               commands_.load(std::memory_order_relaxed)});
    for (auto& w : workers_) {
      char b = 1;
      if (w->wake_write) (void)!::write(w->wake_write.get(), &b, 1);
    }
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
    }
    stopped_.store(true, std::memory_order_release);
  } else {
    // Another caller (e.g. the destructor racing a signal thread) owns
    // the drain; wait for it so Shutdown() implies "drained" for all.
    while (!stopped_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
}

void FasterServer::PendingCompletion(Store::UserOp /*op*/, Status result,
                                     void* user_context) {
  if (user_context != nullptr) {
    *static_cast<Status*>(user_context) = result;
  }
}

void FasterServer::WorkerLoop(Worker& w) {
  // One session for the worker's lifetime: every connection mapped to
  // this thread executes under it, and the destructor (drain path)
  // completes pending work and unprotects this thread's epoch slot.
  Store::Session session{*store_};
  epoll_event events[128];
  bool backlog = false;
  while (!stopping_.load(std::memory_order_acquire)) {
    int timeout_ms = backlog ? 0 : 50;  // bounded so epochs keep advancing
    int n = ::epoll_wait(w.epoll_fd.get(), events, 128, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Root span for the turn: socket read -> reply flush. Parse/execute/
    // flush segments (and the store's batch_chunk spans) nest under it.
    std::optional<obs::StatOpSpan> turn_span;
    if (n > 0 || backlog) {
      turn_span.emplace(obs::SpanKind::kNetRequest,
                        static_cast<uint32_t>(n));
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == w.listen_fd.get()) {
        AcceptNew(w);
        continue;
      }
      if (fd == w.wake_read.get()) {
        char drain[64];
        while (ReadSomeFd(w.wake_read.get(), drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      auto it = w.conns.find(fd);
      if (it == w.conns.end()) continue;
      Connection& conn = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(w, fd);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        FlushConnection(conn);
        if (conn.dead || (conn.want_close && conn.outbuf.empty())) {
          CloseConnection(w, fd);
          continue;
        }
        UpdateEpollOut(w, conn, !conn.outbuf.empty());
      }
      if ((events[i].events & EPOLLIN) != 0) {
        if (!HandleReadable(w, conn)) {
          CloseConnection(w, fd);
          continue;
        }
      }
    }
    if (!w.ready.empty()) {
      ProcessTurn(w);
      RenderAndFlush(w);
    }
    backlog = !w.ready.empty();  // connections with capped-off pipelines
    store_->Refresh();
    store_->CompletePending(/*wait=*/false);
  }

  // Drain: stop accepting, give buffered replies a bounded best-effort
  // flush, close everything. The session destructor then completes this
  // thread's pending store work and unprotects its epoch slot.
  ::epoll_ctl(w.epoll_fd.get(), EPOLL_CTL_DEL, w.listen_fd.get(), nullptr);
  w.listen_fd.reset();  // new connection attempts now fail, not queue
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  for (auto& [fd, conn] : w.conns) {
    while (!conn->outbuf.empty() && !conn->dead &&
           std::chrono::steady_clock::now() < deadline) {
      FlushConnection(*conn);
      if (!conn->outbuf.empty()) std::this_thread::yield();
    }
    ReleaseConnSlot(conn->stat_slot);
    stats_.connections_closed.Inc();
    stats_.connections_open.Dec();
  }
  w.conns.clear();
  w.ready.clear();
}

void FasterServer::AcceptNew(Worker& w) {
  for (;;) {
    int cfd = AcceptNoIntr(w.listen_fd.get());
    if (cfd < 0) break;  // EAGAIN: backlog drained
    UniqueFd ufd{cfd};
    if (!SetNonBlocking(cfd)) continue;  // ufd closes it
    SetNoDelay(cfd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = cfd;
    if (::epoll_ctl(w.epoll_fd.get(), EPOLL_CTL_ADD, cfd, &ev) != 0) {
      continue;
    }
    auto conn = std::make_unique<Connection>(std::move(ufd),
                                             options_.limits);
    conn->stat_slot = ClaimConnSlot(cfd, w.index);
    w.conns.emplace(cfd, std::move(conn));
    stats_.connections_accepted.Inc();
    stats_.connections_open.Inc();
    obs::StatLog(obs::LogLevel::kDebug, "server", "connection accepted",
                 obs::LogField{"fd", cfd},
                 obs::LogField{"worker", w.index});
  }
}

uint32_t FasterServer::ClaimConnSlot(int fd, uint32_t worker_index) {
  for (uint32_t i = 0; i < kMaxConnSlots; ++i) {
    ConnSlot& slot = conn_slots_[i];
    if (slot.used.load(std::memory_order_acquire)) continue;
    // Workers race for free slots; losing just means probing on.
    bool expected = false;
    // Acquire pairs with the release store of `false` at close, ordering
    // the old owner's final counter writes before ours; our own field
    // stores land after the claim, so no release is needed here.
    if (!slot.used.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire,
                                           std::memory_order_acquire)) {
      continue;
    }
    slot.fd.store(fd, std::memory_order_relaxed);
    slot.worker.store(worker_index, std::memory_order_relaxed);
    slot.accept_ns.store(obs::NowNs(), std::memory_order_relaxed);
    slot.bytes_in.store(0, std::memory_order_relaxed);
    slot.bytes_out.store(0, std::memory_order_relaxed);
    slot.commands.store(0, std::memory_order_relaxed);
    return i;
  }
  return kNoSlot;  // table full: the connection runs untracked
}

void FasterServer::ReleaseConnSlot(uint32_t slot) {
  if (slot == kNoSlot) return;
  conn_slots_[slot].used.store(false, std::memory_order_release);
}

bool FasterServer::HandleReadable(Worker& w, Connection& conn) {
  ssize_t got =
      ReadSomeFd(conn.fd.get(), w.scratch.data(), w.scratch.size());
  if (got == 0) return false;  // EOF
  if (got < 0) return errno == EAGAIN || errno == EWOULDBLOCK;
  stats_.bytes_read.Add(static_cast<uint64_t>(got));
  if (conn.stat_slot != kNoSlot) {
    conn_slots_[conn.stat_slot].bytes_in.fetch_add(
        static_cast<uint64_t>(got), std::memory_order_relaxed);
  }
  conn.parser.Feed(w.scratch.data(), static_cast<size_t>(got));
  if (!conn.in_ready) {
    w.ready.push_back(&conn);
    conn.in_ready = true;
  }
  return true;
}

void FasterServer::ProcessTurn(Worker& w) {
  w.slots.clear();
  w.segment.clear();
  w.segment_incr_keys.clear();
  w.turn_commands = 0;
  {
    obs::StatChildSpan parse_span{obs::SpanKind::kNetParse};
    for (Connection* conn : w.ready) {
      GatherCommands(w, *conn);
    }
  }
  ExecuteSegment(w);  // trailing segment
  if (w.turn_commands > 0) {
    commands_.fetch_add(w.turn_commands, std::memory_order_relaxed);
    stats_.commands.Add(w.turn_commands);
    stats_.turns.Inc();
  }
}

void FasterServer::GatherCommands(Worker& w, Connection& conn) {
  size_t count = 0;
  conn.has_more = false;
  RespCommand cmd;
  while (count < options_.max_pipeline) {
    RespParser::Result r = conn.parser.Next(&cmd);
    if (r == RespParser::Result::kCommand) {
      ClassifyCommand(w, conn, std::move(cmd));
      ++count;
      continue;
    }
    if (r == RespParser::Result::kError && !conn.want_close) {
      stats_.protocol_errors.Inc();
      static obs::StatLogRateLimit proto_limit{100'000'000};  // 100ms
      obs::StatLogLimited(proto_limit, obs::LogLevel::kWarn, "server",
                          "protocol error, closing connection",
                          obs::LogField{"fd", conn.fd.get()},
                          obs::LogField{"error",
                                        conn.parser.error().c_str()});
      CmdRec rec;
      rec.type = CmdRec::Type::kErr;
      rec.lit = "ERR " + conn.parser.error();
      conn.turn_cmds.push_back(std::move(rec));
      conn.want_close = true;
    }
    break;
  }
  if (count == options_.max_pipeline) conn.has_more = true;
  if (conn.stat_slot != kNoSlot && count > 0) {
    conn_slots_[conn.stat_slot].commands.fetch_add(
        count, std::memory_order_relaxed);
  }
  w.turn_commands += count;
  stats_.pipeline_depth.Record(count);
}

void FasterServer::MaybeSplitSegment(Worker& w, uint64_t key) {
  if (w.segment_incr_keys.count(key) != 0) {
    stats_.segment_splits.Inc();
    ExecuteSegment(w);
  }
}

void FasterServer::ClassifyCommand(Worker& w, Connection& conn,
                                   RespCommand&& cmd) {
  char name[16];
  CmdRec rec;
  if (!UpperName(cmd.argv[0], name, sizeof(name))) {
    rec.type = CmdRec::Type::kErr;
    rec.lit = "ERR unknown command '" + cmd.argv[0] + "'";
    conn.turn_cmds.push_back(std::move(rec));
    stats_.cmd_other.Inc();
    return;
  }
  auto new_slot = [&](SlotRec::Kind kind, uint64_t key,
                      uint64_t value) -> uint32_t {
    SlotRec s;
    s.kind = kind;
    s.key = key;
    s.value = value;
    w.slots.push_back(s);
    uint32_t idx = static_cast<uint32_t>(w.slots.size() - 1);
    w.segment.push_back(idx);
    return idx;
  };
  if (std::strcmp(name, "GET") == 0 && cmd.argv.size() == 2) {
    uint64_t key = MapKey(cmd.argv[1]);
    MaybeSplitSegment(w, key);
    rec.type = CmdRec::Type::kGet;
    rec.slot = new_slot(SlotRec::Kind::kGet, key, 0);
    stats_.cmd_get.Inc();
  } else if (std::strcmp(name, "SET") == 0 && cmd.argv.size() == 3) {
    uint64_t value;
    if (!ParseU64(cmd.argv[2], &value)) {
      rec.type = CmdRec::Type::kErr;
      rec.lit = "ERR value is not an integer or out of range";
    } else {
      uint64_t key = MapKey(cmd.argv[1]);
      MaybeSplitSegment(w, key);
      rec.type = CmdRec::Type::kSet;
      rec.slot = new_slot(SlotRec::Kind::kSet, key, value);
    }
    stats_.cmd_set.Inc();
  } else if (std::strcmp(name, "INCR") == 0 && cmd.argv.size() == 2) {
    uint64_t key = MapKey(cmd.argv[1]);
    // A second INCR (or any later write) on a segment-INCR'd key would
    // make the post-increment read observe both effects; split so every
    // INCR reply is exact.
    MaybeSplitSegment(w, key);
    rec.type = CmdRec::Type::kIncr;
    rec.slot = new_slot(SlotRec::Kind::kIncr, key, 1);
    w.segment_incr_keys.insert(key);
    stats_.cmd_incr.Inc();
  } else if (std::strcmp(name, "DEL") == 0 && cmd.argv.size() >= 2) {
    // No batch form for deletes: flush the pipeline segment so ordering
    // is preserved, then run the single-op path.
    stats_.segment_splits.Inc();
    ExecuteSegment(w);
    long long deleted = 0;
    for (size_t i = 1; i < cmd.argv.size(); ++i) {
      if (store_->Delete(MapKey(cmd.argv[i])) == Status::kOk) ++deleted;
    }
    rec.type = CmdRec::Type::kDel;
    rec.intval = deleted;
    stats_.cmd_del.Inc();
  } else if (std::strcmp(name, "PING") == 0 && cmd.argv.size() <= 2) {
    rec.type = CmdRec::Type::kLit;
    if (cmd.argv.size() == 2) {
      AppendBulk(&rec.lit, cmd.argv[1]);
    } else {
      rec.lit = "+PONG\r\n";
    }
    stats_.cmd_other.Inc();
  } else if (std::strcmp(name, "INFO") == 0) {
    rec.type = CmdRec::Type::kLit;
    AppendBulk(&rec.lit, InfoText());
    stats_.cmd_other.Inc();
  } else if (std::strcmp(name, "SLOWLOG") == 0) {
    rec.type = CmdRec::Type::kLit;
    HandleSlowlog(cmd, &rec.lit);
    if (rec.lit.empty()) {
      rec.type = CmdRec::Type::kErr;
      rec.lit = "ERR unknown SLOWLOG subcommand; try GET, RESET, LEN";
    }
    stats_.cmd_other.Inc();
  } else if (std::strcmp(name, "QUIT") == 0) {
    rec.type = CmdRec::Type::kLit;
    rec.lit = "+OK\r\n";
    conn.want_close = true;
    stats_.cmd_other.Inc();
  } else if (std::strcmp(name, "COMMAND") == 0) {
    // redis-cli sends COMMAND DOCS on connect; an empty array reply keeps
    // it happy without implementing introspection.
    rec.type = CmdRec::Type::kLit;
    rec.lit = "*0\r\n";
    stats_.cmd_other.Inc();
  } else {
    rec.type = CmdRec::Type::kErr;
    rec.lit = "ERR unknown command '" + cmd.argv[0] +
              "', or wrong number of arguments";
    stats_.cmd_other.Inc();
  }
  conn.turn_cmds.push_back(std::move(rec));
}

void FasterServer::ExecuteSegment(Worker& w) {
  w.segment_incr_keys.clear();
  if (w.segment.empty()) return;
  size_t n = w.segment.size();
  stats_.batch_fill.Record(n);

  // Phase 1: the mixed batch. Pending ops report their final status via
  // PendingCompletion into the slot's Status (the BatchOp's user_context).
  std::vector<Store::BatchOp> ops(n);
  for (size_t i = 0; i < n; ++i) {
    SlotRec& s = w.slots[w.segment[i]];
    Store::BatchOp& op = ops[i];
    op.key = s.key;
    switch (s.kind) {
      case SlotRec::Kind::kGet:
        op.kind = Store::BatchOp::Kind::kRead;
        op.input = 0;
        op.output = &s.read_out;
        op.user_context = &s.final_status;
        s.final_status = Status::kIoError;  // canary: callback must fire
        break;
      case SlotRec::Kind::kSet:
        op.kind = Store::BatchOp::Kind::kUpsert;
        op.value = s.value;
        break;
      case SlotRec::Kind::kIncr:
        op.kind = Store::BatchOp::Kind::kRmw;
        op.input = s.value;
        op.user_context = &s.final_status;
        s.final_status = Status::kIoError;
        break;
    }
  }
  store_->ExecuteBatch(ops.data(), n);
  for (size_t i = 0; i < n; ++i) {
    SlotRec& s = w.slots[w.segment[i]];
    if (ops[i].status != Status::kPending) s.final_status = ops[i].status;
  }
  store_->CompletePending(/*wait=*/true);

  // Phase 2: post-increment reads for every INCR in the segment. The Rmw
  // path returns no output, and a same-batch read after a *pending* Rmw
  // would see the pre-RMW value (sequential equivalence), so the reply
  // value comes from a dedicated read batch after phase 1 completes; the
  // segment-split rule makes it exact.
  std::vector<uint32_t> incrs;
  for (uint32_t idx : w.segment) {
    if (w.slots[idx].kind == SlotRec::Kind::kIncr &&
        w.slots[idx].final_status == Status::kOk) {
      incrs.push_back(idx);
    }
  }
  if (!incrs.empty()) {
    size_t m = incrs.size();
    std::vector<uint64_t> keys(m), inputs(m, 0), outs(m, 0);
    std::vector<Status> statuses(m, Status::kOk);
    std::vector<void*> ctxs(m);
    for (size_t i = 0; i < m; ++i) {
      SlotRec& s = w.slots[incrs[i]];
      keys[i] = s.key;
      s.incr_final = Status::kIoError;  // canary, as above
      ctxs[i] = &s.incr_final;
    }
    store_->ReadBatch(keys.data(), inputs.data(), outs.data(),
                      statuses.data(), m, ctxs.data());
    for (size_t i = 0; i < m; ++i) {
      if (statuses[i] != Status::kPending) {
        w.slots[incrs[i]].incr_final = statuses[i];
      }
    }
    store_->CompletePending(/*wait=*/true);
    for (size_t i = 0; i < m; ++i) {
      w.slots[incrs[i]].incr_out = outs[i];
    }
  }
  w.segment.clear();
}

void FasterServer::RenderCommand(Worker& w, const CmdRec& rec,
                                 std::string* out) {
  switch (rec.type) {
    case CmdRec::Type::kGet: {
      const SlotRec& s = w.slots[rec.slot];
      if (s.final_status == Status::kOk) {
        std::string v;
        AppendU64(&v, s.read_out);
        AppendBulk(out, v);
      } else if (s.final_status == Status::kNotFound) {
        AppendNullBulk(out);
      } else {
        AppendError(out, std::string("ERR read failed: ") +
                             StatusName(s.final_status));
      }
      break;
    }
    case CmdRec::Type::kSet: {
      const SlotRec& s = w.slots[rec.slot];
      if (s.final_status == Status::kOk) {
        AppendSimple(out, "OK");
      } else {
        AppendError(out, std::string("ERR set failed: ") +
                             StatusName(s.final_status));
      }
      break;
    }
    case CmdRec::Type::kIncr: {
      const SlotRec& s = w.slots[rec.slot];
      if (s.final_status == Status::kOk && s.incr_final == Status::kOk) {
        AppendInteger(out, static_cast<long long>(s.incr_out));
      } else {
        Status bad = s.final_status != Status::kOk ? s.final_status
                                                   : s.incr_final;
        AppendError(out,
                    std::string("ERR incr failed: ") + StatusName(bad));
      }
      break;
    }
    case CmdRec::Type::kDel:
      AppendInteger(out, rec.intval);
      break;
    case CmdRec::Type::kLit:
      out->append(rec.lit);
      break;
    case CmdRec::Type::kErr:
      AppendError(out, rec.lit);
      break;
  }
}

void FasterServer::RenderAndFlush(Worker& w) {
  obs::StatChildSpan flush_span{obs::SpanKind::kNetFlush,
                                static_cast<uint32_t>(w.turn_commands)};
  std::vector<int> to_close;
  for (Connection* conn : w.ready) {
    conn->in_ready = false;
    for (const CmdRec& rec : conn->turn_cmds) {
      RenderCommand(w, rec, &conn->outbuf);
    }
    conn->turn_cmds.clear();
    FlushConnection(*conn);
    if (conn->dead || (conn->want_close && conn->outbuf.empty())) {
      to_close.push_back(conn->fd.get());
    } else {
      UpdateEpollOut(w, *conn, !conn->outbuf.empty());
    }
  }
  w.ready.clear();
  for (int fd : to_close) CloseConnection(w, fd);
  // Connections whose pipelines hit the per-turn cap carry over.
  for (auto& [fd, conn] : w.conns) {
    if (conn->has_more && !conn->in_ready) {
      w.ready.push_back(conn.get());
      conn->in_ready = true;
    }
  }
}

void FasterServer::FlushConnection(Connection& conn) {
  while (!conn.outbuf.empty()) {
    ssize_t n = WriteSomeFd(conn.fd.get(), conn.outbuf.data(),
                            conn.outbuf.size());
    if (n < 0) {
      conn.dead = true;
      return;
    }
    if (n == 0) return;  // EAGAIN: EPOLLOUT will resume
    stats_.bytes_written.Add(static_cast<uint64_t>(n));
    if (conn.stat_slot != kNoSlot) {
      conn_slots_[conn.stat_slot].bytes_out.fetch_add(
          static_cast<uint64_t>(n), std::memory_order_relaxed);
    }
    conn.outbuf.erase(0, static_cast<size_t>(n));
  }
}

void FasterServer::CloseConnection(Worker& w, int fd) {
  auto it = w.conns.find(fd);
  if (it == w.conns.end()) return;
  Connection* conn = it->second.get();
  obs::StatLog(obs::LogLevel::kDebug, "server", "connection closed",
               obs::LogField{"fd", fd},
               obs::LogField{"worker", w.index});
  ReleaseConnSlot(conn->stat_slot);
  w.ready.erase(std::remove(w.ready.begin(), w.ready.end(), conn),
                w.ready.end());
  w.conns.erase(it);  // UniqueFd close also removes the epoll entry
  stats_.connections_closed.Inc();
  stats_.connections_open.Dec();
}

void FasterServer::UpdateEpollOut(Worker& w, Connection& conn,
                                  bool want_out) {
  if (conn.epollout == want_out) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_out ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = conn.fd.get();
  if (::epoll_ctl(w.epoll_fd.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev) ==
      0) {
    conn.epollout = want_out;
  }
}

void FasterServer::HandleSlowlog(const RespCommand& cmd, std::string* out) {
  char sub[16];
  if (cmd.argv.size() < 2 || !UpperName(cmd.argv[1], sub, sizeof(sub))) {
    return;  // caller renders the error
  }
  obs::SlowLog& slowlog = obs::GlobalSlowLog();
  if (std::strcmp(sub, "LEN") == 0 && cmd.argv.size() == 2) {
    AppendInteger(out, static_cast<long long>(slowlog.Len()));
    return;
  }
  if (std::strcmp(sub, "RESET") == 0 && cmd.argv.size() == 2) {
    slowlog.Reset();
    AppendSimple(out, "OK");
    return;
  }
  if (std::strcmp(sub, "GET") == 0 && cmd.argv.size() <= 3) {
    uint64_t max_entries = 10;  // Redis's default count
    if (cmd.argv.size() == 3 && !ParseU64(cmd.argv[2], &max_entries)) {
      return;
    }
    std::vector<obs::SlowLog::Entry> entries = slowlog.Snapshot(max_entries);
    *out += '*';
    AppendU64(out, entries.size());
    *out += "\r\n";
    for (const obs::SlowLog::Entry& e : entries) {
      // Redis-style entry: id, unix timestamp, duration in microseconds,
      // then a details array (op, key hash, origin, stage breakdown).
      *out += "*4\r\n";
      AppendInteger(out, static_cast<long long>(e.id));
      AppendInteger(out, static_cast<long long>(e.wall_ns / 1000000000ull));
      AppendInteger(out, static_cast<long long>(e.total_ns / 1000));
      *out += '*';
      AppendU64(out, 3 + obs::kNumSlowStages);
      *out += "\r\n";
      AppendBulk(out, std::string("op=") + obs::SlowOpKindName(e.kind));
      char key[32];
      std::snprintf(key, sizeof(key), "key=%016llx",
                    static_cast<unsigned long long>(e.key_hash));
      AppendBulk(out, key);
      std::string origin = e.pending ? "origin=pending" : "origin=sync";
      origin += " tid=";
      AppendU64(&origin, e.tid);
      AppendBulk(out, origin);
      for (uint32_t s = 0; s < obs::kNumSlowStages; ++s) {
        std::string stage =
            std::string(obs::SlowStageName(static_cast<obs::SlowStage>(s))) +
            "_us=";
        AppendU64(&stage, e.stage_ns[s] / 1000);
        AppendBulk(out, stage);
      }
    }
    return;
  }
}

std::string FasterServer::InfoText() {
  std::string out;
  out += "# Server\r\n";
  out += "server:faster\r\n";
  out += "tcp_port:";
  AppendU64(&out, port_);
  out += "\r\n";
  out += "io_threads:";
  AppendU64(&out, static_cast<uint64_t>(workers_.size()));
  out += "\r\n";
  out += "# Clients\r\n";
  out += "connected_clients:";
  AppendU64(&out, static_cast<uint64_t>(
                      std::max<int64_t>(0, stats_.connections_open.Value())));
  out += "\r\n";
  out += "# Stats\r\n";
  out += "total_commands_processed:";
  AppendU64(&out, commands_.load(std::memory_order_relaxed));
  out += "\r\n";
  // # Log: the hybrid-log region markers (read in ascending order so the
  // reported values preserve head <= read_only <= tail).
  HybridLog::RegionSnapshot regions = store_->hlog().SnapshotRegions();
  out += "# Log\r\n";
  out += "log_begin_address:";
  AppendU64(&out, regions.begin.control());
  out += "\r\n";
  out += "log_head_address:";
  AppendU64(&out, regions.head.control());
  out += "\r\n";
  out += "log_safe_read_only_address:";
  AppendU64(&out, regions.safe_read_only.control());
  out += "\r\n";
  out += "log_read_only_address:";
  AppendU64(&out, regions.read_only.control());
  out += "\r\n";
  out += "log_tail_address:";
  AppendU64(&out, regions.tail.control());
  out += "\r\n";
  out += "log_in_memory_bytes:";
  AppendU64(&out, regions.tail.control() - regions.head.control());
  out += "\r\n";
  out += "# Index\r\n";
  out += "index_table_size:";
  AppendU64(&out, store_->index().size());
  out += "\r\n";
  out += "# Epoch\r\n";
  out += "epoch_current:";
  AppendU64(&out, store_->epoch().CurrentEpoch());
  out += "\r\n";
  out += "epoch_safe:";
  AppendU64(&out, store_->epoch().SafeToReclaimEpoch());
  out += "\r\n";
  out += "epoch_protected_threads:";
  AppendU64(&out, store_->epoch().NumProtectedThreads());
  out += "\r\n";
  out += "# Slowlog\r\n";
  const obs::SlowLog& slowlog = obs::GlobalSlowLog();
  out += "slowlog_enabled:";
  AppendU64(&out, slowlog.armed() ? 1 : 0);
  out += "\r\n";
  if (slowlog.armed()) {
    out += "slowlog_threshold_us:";
    AppendU64(&out, slowlog.threshold_ns() / 1000);
    out += "\r\n";
  }
  out += "slowlog_len:";
  AppendU64(&out, slowlog.Len());
  out += "\r\n";
  out += "slowlog_total_recorded:";
  AppendU64(&out, slowlog.TotalRecorded());
  out += "\r\n";
  return out;
}

std::string FasterServer::DebugConnectionsJson() const {
  std::string out = "{\"connections\":[";
  char buf[192];
  uint64_t now = obs::NowNs();
  uint32_t listed = 0;
  for (uint32_t i = 0; i < kMaxConnSlots; ++i) {
    const ConnSlot& slot = conn_slots_[i];
    if (!slot.used.load(std::memory_order_acquire)) continue;
    uint64_t accept_ns = slot.accept_ns.load(std::memory_order_relaxed);
    uint64_t age_ms = now > accept_ns ? (now - accept_ns) / 1000000 : 0;
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"fd\":%d,\"worker\":%u,\"age_ms\":%llu,\"bytes_in\":%llu,"
        "\"bytes_out\":%llu,\"commands\":%llu}",
        listed == 0 ? "" : ",", slot.fd.load(std::memory_order_relaxed),
        slot.worker.load(std::memory_order_relaxed),
        static_cast<unsigned long long>(age_ms),
        static_cast<unsigned long long>(
            slot.bytes_in.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            slot.bytes_out.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            slot.commands.load(std::memory_order_relaxed)));
    out += buf;
    ++listed;
  }
  std::snprintf(buf, sizeof(buf), "],\"open\":%u}\n", listed);
  out += buf;
  return out;
}

void FasterServer::CollectStats(obs::StatRegistry& reg) {
  reg.AddValue("net.commands_total",
               commands_.load(std::memory_order_relaxed));
  reg.Add("net.connections_accepted", &stats_.connections_accepted);
  reg.Add("net.connections_closed", &stats_.connections_closed);
  reg.Add("net.connections_open", &stats_.connections_open);
  reg.Add("net.commands", &stats_.commands);
  reg.Add("net.cmd_get", &stats_.cmd_get);
  reg.Add("net.cmd_set", &stats_.cmd_set);
  reg.Add("net.cmd_incr", &stats_.cmd_incr);
  reg.Add("net.cmd_del", &stats_.cmd_del);
  reg.Add("net.cmd_other", &stats_.cmd_other);
  reg.Add("net.protocol_errors", &stats_.protocol_errors);
  reg.Add("net.turns", &stats_.turns);
  reg.Add("net.segment_splits", &stats_.segment_splits);
  reg.Add("net.bytes_read", &stats_.bytes_read);
  reg.Add("net.bytes_written", &stats_.bytes_written);
  reg.Add("net.pipeline_depth", &stats_.pipeline_depth);
  reg.Add("net.batch_fill", &stats_.batch_fill);
}

}  // namespace net
}  // namespace faster
