#include "workload/ycsb.h"

namespace faster {

MixCounts CountMix(const WorkloadSpec& spec, uint64_t samples, uint64_t seed) {
  OpGenerator gen{spec, seed};
  MixCounts counts;
  for (uint64_t i = 0; i < samples; ++i) {
    switch (gen.Next().kind) {
      case OpKind::kRead: ++counts.reads; break;
      case OpKind::kUpsert: ++counts.upserts; break;
      case OpKind::kRmw: ++counts.rmws; break;
    }
  }
  return counts;
}

}  // namespace faster
