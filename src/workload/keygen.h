#ifndef FASTER_WORKLOAD_KEYGEN_H_
#define FASTER_WORKLOAD_KEYGEN_H_

#include <cstdint>
#include <memory>
#include <random>
#include <string>

#include "workload/zipf.h"

namespace faster {

/// Key access distributions used in the paper's evaluation (Sec. 7.1):
/// uniform, Zipfian (theta = 0.99), and a shifting hot-set distribution
/// modelling users starting and stopping sessions.
enum class Distribution { kUniform, kZipfian, kHotSet };

inline const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kZipfian: return "zipf";
    case Distribution::kHotSet: return "hotset";
  }
  return "?";
}

/// Generates keys in [0, n) under a chosen distribution.
class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;
  virtual uint64_t Next() = 0;
  virtual uint64_t n() const = 0;
};

class UniformKeyGenerator : public KeyGenerator {
 public:
  UniformKeyGenerator(uint64_t n, uint64_t seed) : n_{n}, rng_{seed} {}
  uint64_t Next() override { return rng_() % n_; }
  uint64_t n() const override { return n_; }

 private:
  uint64_t n_;
  std::mt19937_64 rng_;
};

class ZipfKeyGenerator : public KeyGenerator {
 public:
  ZipfKeyGenerator(uint64_t n, uint64_t seed, double theta = 0.99)
      : gen_{n, theta, seed} {}
  uint64_t Next() override { return gen_.Next(); }
  uint64_t n() const override { return gen_.n(); }

 private:
  ScrambledZipfianGenerator gen_;
};

/// The paper's hot-set distribution (Sec. 7.1, 7.5): a hot set of
/// `n * hot_fraction` keys receives `hot_probability` of the accesses
/// (both uniform within their set); the hot set drifts through the key
/// space over time — items move from cold to hot, stay hot for a while,
/// and become cold again.
class HotSetKeyGenerator : public KeyGenerator {
 public:
  HotSetKeyGenerator(uint64_t n, uint64_t seed, double hot_fraction = 0.2,
                     double hot_probability = 0.9,
                     uint64_t shift_every = 1u << 16)
      : n_{n},
        hot_size_{static_cast<uint64_t>(static_cast<double>(n) *
                                        hot_fraction)},
        hot_probability_{hot_probability},
        shift_every_{shift_every},
        rng_{seed} {
    if (hot_size_ == 0) hot_size_ = 1;
  }

  uint64_t Next() override {
    if (++draws_ % shift_every_ == 0) {
      // Drift: the window slides by 1% of its size.
      hot_start_ = (hot_start_ + hot_size_ / 100 + 1) % n_;
    }
    double p = static_cast<double>(rng_() >> 11) * (1.0 / 9007199254740992.0);
    if (p < hot_probability_) {
      return (hot_start_ + rng_() % hot_size_) % n_;
    }
    // Cold: anywhere outside the hot window.
    uint64_t cold = rng_() % (n_ - hot_size_);
    return (hot_start_ + hot_size_ + cold) % n_;
  }

  uint64_t n() const override { return n_; }

 private:
  uint64_t n_;
  uint64_t hot_size_;
  double hot_probability_;
  uint64_t shift_every_;
  uint64_t hot_start_ = 0;
  uint64_t draws_ = 0;
  std::mt19937_64 rng_;
};

/// Factory.
std::unique_ptr<KeyGenerator> MakeKeyGenerator(Distribution d, uint64_t n,
                                               uint64_t seed);

}  // namespace faster

#endif  // FASTER_WORKLOAD_KEYGEN_H_
