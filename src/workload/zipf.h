#ifndef FASTER_WORKLOAD_ZIPF_H_
#define FASTER_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <random>

namespace faster {

/// Zipfian-distributed integers in [0, n) with parameter theta, following
/// the Gray et al. "Quickly generating billion-record synthetic databases"
/// construction used by YCSB. The paper's skewed experiments use
/// theta = 0.99 (Sec. 7.1).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed);

  /// Next rank: 0 is the most popular item.
  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

/// Zipfian ranks scrambled over the key space (YCSB's
/// ScrambledZipfianGenerator): popularity is Zipf but popular keys are
/// spread uniformly across [0, n), avoiding accidental locality between
/// hot keys.
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, double theta, uint64_t seed)
      : n_{n}, zipf_{n, theta, seed} {}

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  ZipfianGenerator zipf_;
};

}  // namespace faster

#endif  // FASTER_WORKLOAD_ZIPF_H_
