#include "workload/keygen.h"

namespace faster {

std::unique_ptr<KeyGenerator> MakeKeyGenerator(Distribution d, uint64_t n,
                                               uint64_t seed) {
  switch (d) {
    case Distribution::kUniform:
      return std::make_unique<UniformKeyGenerator>(n, seed);
    case Distribution::kZipfian:
      return std::make_unique<ZipfKeyGenerator>(n, seed);
    case Distribution::kHotSet:
      return std::make_unique<HotSetKeyGenerator>(n, seed);
  }
  return nullptr;
}

}  // namespace faster
