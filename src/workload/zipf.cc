#include "workload/zipf.h"

#include <cmath>

#include "core/key_hash.h"

namespace faster {

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_{n}, theta_{theta}, rng_{seed} {
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next() {
  double u = uniform_(rng_);
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

uint64_t ScrambledZipfianGenerator::Next() {
  // Offset before mixing so that rank 0 does not map to key 0
  // (Mix64(0) == 0, which would leave the hottest key unscrambled).
  return Mix64(zipf_.Next() + 0x9E3779B97F4A7C15ull) % n_;
}

}  // namespace faster
