#ifndef FASTER_WORKLOAD_YCSB_H_
#define FASTER_WORKLOAD_YCSB_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/stats.h"
#include "workload/keygen.h"

namespace faster {

/// Operation kinds in the extended YCSB-A workload of Sec. 7.1: reads,
/// blind updates (upserts), and read-modify-writes. A workload "R:BU"
/// means R% reads and BU% blind updates; "0:100 RMW" replaces the blind
/// updates with RMWs.
enum class OpKind : uint8_t { kRead, kUpsert, kRmw };

/// An extended YCSB-A workload mix (Sec. 7.1).
struct WorkloadSpec {
  uint64_t num_keys = uint64_t{1} << 20;
  Distribution distribution = Distribution::kUniform;
  double read_fraction = 0.5;  // fraction of ops that are reads
  double rmw_fraction = 0.0;   // fraction of ops that are RMWs
  // remainder are blind updates (upserts)

  std::string Name() const {
    int reads = static_cast<int>(read_fraction * 100 + 0.5);
    int rmws = static_cast<int>(rmw_fraction * 100 + 0.5);
    std::string mix = rmws > 0 ? std::to_string(reads) + ":" +
                                     std::to_string(rmws) + "RMW"
                               : std::to_string(reads) + ":" +
                                     std::to_string(100 - reads);
    return mix + "/" + DistributionName(distribution);
  }

  static WorkloadSpec Ycsb(double reads, double rmws, Distribution d,
                           uint64_t keys) {
    WorkloadSpec s;
    s.read_fraction = reads;
    s.rmw_fraction = rmws;
    s.distribution = d;
    s.num_keys = keys;
    return s;
  }
};

/// Per-thread operation stream for a workload spec.
class OpGenerator {
 public:
  struct Op {
    OpKind kind;
    uint64_t key;
  };

  OpGenerator(const WorkloadSpec& spec, uint64_t seed)
      : spec_{spec},
        keys_{MakeKeyGenerator(spec.distribution, spec.num_keys, seed)},
        rng_{seed ^ 0x9e3779b97f4a7c15ull} {}

  Op Next() {
    double p = static_cast<double>(rng_() >> 11) * (1.0 / 9007199254740992.0);
    OpKind kind;
    if (p < spec_.read_fraction) {
      kind = OpKind::kRead;
    } else if (p < spec_.read_fraction + spec_.rmw_fraction) {
      kind = OpKind::kRmw;
    } else {
      kind = OpKind::kUpsert;
    }
    return {kind, keys_->Next()};
  }

 private:
  WorkloadSpec spec_;
  std::unique_ptr<KeyGenerator> keys_;
  std::mt19937_64 rng_;
};

/// Result of a timed multi-threaded run.
struct RunResult {
  uint64_t total_ops = 0;
  double seconds = 0;
  double mops = 0;  // million ops/sec
  // Sampled per-operation latency (1 op in 256 per thread). Populated only
  // in FASTER_STATS builds; all zero otherwise. Percentiles are log2-bucket
  // upper bounds (within 2x of the true quantile).
  uint64_t latency_samples = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
};

/// Detects the optional batched adapter hook: DoBatch(ops, n) executes
/// `n` generated ops as one batch. Used when RunWorkload's `batch`
/// argument exceeds 1; adapters without it always run the single-op loop.
template <class A>
concept HasDoBatch =
    requires(A a, const typename OpGenerator::Op* ops, size_t n) {
      a.DoBatch(ops, n);
    };

/// Drives `adapter` with `num_threads` worker threads for ~`seconds`
/// seconds of the given workload (the paper runs each test for 30 s; the
/// scaled-down harness defaults to shorter runs). With `batch` > 1 and an
/// adapter providing DoBatch, ops are issued in batches of that size.
///
/// Adapter concept:
///   void Begin();                 // per-thread session start
///   void End();                   // per-thread session end
///   void DoRead(uint64_t key);
///   void DoUpsert(uint64_t key, uint64_t value_seed);
///   void DoRmw(uint64_t key);
///   void Idle();                  // periodic (CompletePending etc.)
///   void DoBatch(const OpGenerator::Op*, size_t);  // optional, see above
template <class Adapter>
RunResult RunWorkload(Adapter& adapter, const WorkloadSpec& spec,
                      uint32_t num_threads, double seconds,
                      uint64_t seed = 1, uint32_t batch = 1) {
  // order: relaxed fetch_add by workers; relaxed load at the end — the
  // thread joins synchronize the final value.
  std::atomic<uint64_t> total_ops{0};
  // order: relaxed store/load — stop flag; workers exit on eventual
  // visibility and join() provides the final synchronization.
  std::atomic<bool> stop{false};
  // Sharded across workers; a no-op (no allocation, no clock reads) unless
  // built with FASTER_STATS.
  obs::StatHistogram op_latency;
  auto worker = [&](uint32_t tid) {
    OpGenerator gen{spec, seed + tid * 7919};
    adapter.Begin();
    uint64_t ops = 0;
    if constexpr (HasDoBatch<Adapter>) {
      if (batch > 1) {
        constexpr uint32_t kMaxBatch = 256;
        uint32_t b = std::min(batch, kMaxBatch);
        typename OpGenerator::Op buf[kMaxBatch];
        while (!stop.load(std::memory_order_relaxed)) {
          // Same 256-op block structure as the single-op loop, with one
          // latency sample per block.
          for (uint32_t done = 0; done < 256; done += b) {
            uint32_t m = std::min(b, 256u - done);
            for (uint32_t j = 0; j < m; ++j) buf[j] = gen.Next();
            uint64_t t0 = 0;
            if constexpr (obs::kStatsEnabled) {
              if (done == 0) t0 = obs::NowNs();
            }
            adapter.DoBatch(buf, m);
            if constexpr (obs::kStatsEnabled) {
              // Attribute the whole batch's latency per-op (divide by the
              // batch size) so percentiles stay comparable between
              // --batch 1 and --batch N.
              if (done == 0) op_latency.Record((obs::NowNs() - t0) / m);
            }
            ops += m;
          }
          adapter.Idle();
        }
        adapter.End();
        total_ops.fetch_add(ops, std::memory_order_relaxed);
        return;
      }
    }
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 256; ++i) {
        auto op = gen.Next();
        uint64_t t0 = 0;
        if constexpr (obs::kStatsEnabled) {
          if (i == 0) t0 = obs::NowNs();  // sample 1 op in 256
        }
        switch (op.kind) {
          case OpKind::kRead:
            adapter.DoRead(op.key);
            break;
          case OpKind::kUpsert:
            adapter.DoUpsert(op.key, ops);
            break;
          case OpKind::kRmw:
            adapter.DoRmw(op.key);
            break;
        }
        if constexpr (obs::kStatsEnabled) {
          if (i == 0) op_latency.Record(obs::NowNs() - t0);
        }
        ++ops;
      }
      adapter.Idle();
    }
    adapter.End();
    total_ops.fetch_add(ops, std::memory_order_relaxed);
  };

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.total_ops = total_ops.load(std::memory_order_relaxed);
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.mops = static_cast<double>(r.total_ops) / r.seconds / 1e6;
  r.latency_samples = op_latency.Count();
  if (r.latency_samples > 0) {
    r.p50_ns = op_latency.Percentile(0.50);
    r.p99_ns = op_latency.Percentile(0.99);
    r.p999_ns = op_latency.Percentile(0.999);
  }
  return r;
}

/// Computes the exact fraction of operations of each kind for validation.
struct MixCounts {
  uint64_t reads = 0, upserts = 0, rmws = 0;
};
MixCounts CountMix(const WorkloadSpec& spec, uint64_t samples, uint64_t seed);

}  // namespace faster

#endif  // FASTER_WORKLOAD_YCSB_H_
