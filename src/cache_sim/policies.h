#ifndef FASTER_CACHE_SIM_POLICIES_H_
#define FASTER_CACHE_SIM_POLICIES_H_

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

namespace faster {

/// A cache-replacement policy over a constant-sized key buffer, used by
/// the Sec. 7.5 simulation study comparing HybridLog's implicit caching
/// with classical protocols (FIFO, LRU, LRU-2, CLOCK).
///
/// `Access(key)` returns true on a hit; on a miss the policy admits the
/// key, evicting per its rules when the buffer is full.
class CachePolicy {
 public:
  virtual ~CachePolicy() = default;
  virtual bool Access(uint64_t key) = 0;
  virtual const char* Name() const = 0;
  virtual uint64_t Size() const = 0;
};

/// First-In First-Out: evicts the oldest admitted key regardless of use.
class FifoPolicy : public CachePolicy {
 public:
  explicit FifoPolicy(uint64_t capacity) : capacity_{capacity} {}
  bool Access(uint64_t key) override;
  const char* Name() const override { return "FIFO"; }
  uint64_t Size() const override { return map_.size(); }

 private:
  uint64_t capacity_;
  std::deque<uint64_t> queue_;
  std::unordered_map<uint64_t, bool> map_;
};

/// Least Recently Used (LRU-1): evicts the key unused the longest.
class LruPolicy : public CachePolicy {
 public:
  explicit LruPolicy(uint64_t capacity) : capacity_{capacity} {}
  bool Access(uint64_t key) override;
  const char* Name() const override { return "LRU_1"; }
  uint64_t Size() const override { return map_.size(); }

 private:
  uint64_t capacity_;
  std::list<uint64_t> order_;  // front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
};

/// LRU-K with K = 2 (O'Neil et al. [33]): evicts the key with the oldest
/// second-to-last access (keys with fewer than 2 accesses are evicted
/// first, by oldest last access).
class Lru2Policy : public CachePolicy {
 public:
  explicit Lru2Policy(uint64_t capacity) : capacity_{capacity} {}
  bool Access(uint64_t key) override;
  const char* Name() const override { return "LRU_2"; }
  uint64_t Size() const override { return map_.size(); }

 private:
  struct History {
    uint64_t last = 0;
    uint64_t second_last = 0;  // 0 = fewer than two accesses
  };
  uint64_t capacity_;
  uint64_t clock_ = 0;
  std::unordered_map<uint64_t, History> map_;
  // Eviction order: least-recent penultimate access first (keys with < 2
  // accesses sort before all others, ordered by last access).
  std::set<std::tuple<uint64_t, uint64_t, uint64_t>> order_;
};

/// CLOCK (second-chance): a circular buffer of keys with reference bits.
class ClockPolicy : public CachePolicy {
 public:
  explicit ClockPolicy(uint64_t capacity) : capacity_{capacity} {}
  bool Access(uint64_t key) override;
  const char* Name() const override { return "CLOCK"; }
  uint64_t Size() const override { return map_.size(); }

 private:
  struct Frame {
    uint64_t key;
    bool referenced;
  };
  uint64_t capacity_;
  std::vector<Frame> frames_;
  uint64_t hand_ = 0;
  std::unordered_map<uint64_t, uint64_t> map_;  // key -> frame index
};

/// HybridLog's implicit caching behaviour (HLOG, Sec. 6.4 / 7.5): the
/// buffer is a log; a key hit in the mutable region stays put (in-place
/// update); a key hit in the read-only region is *copied* to the tail
/// (read-copy-update), leaving its old copy to be evicted — the
/// "second chance". Keys falling off the head are evicted. Replicated
/// copies of hot keys reduce the effective cache size, exactly the
/// phenomenon Figs. 15-16 show.
class HlogPolicy : public CachePolicy {
 public:
  /// `mutable_fraction` splits the buffer into mutable and read-only
  /// regions (the paper's simulation keeps the read-only marker at a
  /// constant lag from the tail).
  HlogPolicy(uint64_t capacity, double mutable_fraction = 0.9);
  bool Access(uint64_t key) override;
  const char* Name() const override { return "HLOG"; }
  uint64_t Size() const override { return live_.size(); }

 private:
  void Append(uint64_t key);

  uint64_t capacity_;
  uint64_t mutable_size_;
  /// The log: (stamp, key) in append order; front = head, back = tail.
  /// Stale copies (whose stamp is no longer the key's newest) still occupy
  /// slots until they fall off the head — the replication effect.
  std::deque<std::pair<uint64_t, uint64_t>> entries_;
  /// key -> stamp of its newest copy.
  std::unordered_map<uint64_t, uint64_t> live_;
  uint64_t next_stamp_ = 0;
};

/// Factory by policy name index (for parameterized tests/benches).
std::unique_ptr<CachePolicy> MakePolicy(const std::string& name,
                                        uint64_t capacity);

}  // namespace faster

#endif  // FASTER_CACHE_SIM_POLICIES_H_
