#ifndef FASTER_CACHE_SIM_SIMULATOR_H_
#define FASTER_CACHE_SIM_SIMULATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cache_sim/policies.h"
#include "workload/keygen.h"

namespace faster {

/// The Sec. 7.5 simulation: drive a constant-sized key cache under a
/// given access distribution and measure the miss ratio per policy.
struct CacheSimResult {
  std::string policy;
  Distribution distribution;
  double cache_ratio;  // cache size / total keys
  uint64_t accesses;
  uint64_t misses;
  double miss_ratio;
};

/// Runs one (policy, distribution, cache size) cell of Figs. 14-16.
/// `warmup` accesses prime the cache before measurement begins.
CacheSimResult RunCacheSim(const std::string& policy_name,
                           Distribution distribution, uint64_t total_keys,
                           double cache_ratio, uint64_t accesses,
                           uint64_t warmup, uint64_t seed);

}  // namespace faster

#endif  // FASTER_CACHE_SIM_SIMULATOR_H_
