#include "cache_sim/policies.h"

namespace faster {

// ---------------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------------

bool FifoPolicy::Access(uint64_t key) {
  if (map_.count(key) != 0) return true;
  if (map_.size() >= capacity_) {
    map_.erase(queue_.front());
    queue_.pop_front();
  }
  queue_.push_back(key);
  map_.emplace(key, true);
  return false;
}

// ---------------------------------------------------------------------------
// LRU-1
// ---------------------------------------------------------------------------

bool LruPolicy::Access(uint64_t key) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }
  if (map_.size() >= capacity_) {
    map_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(key);
  map_.emplace(key, order_.begin());
  return false;
}

// ---------------------------------------------------------------------------
// LRU-2 (LRU-K with K = 2)
// ---------------------------------------------------------------------------

bool Lru2Policy::Access(uint64_t key) {
  ++clock_;
  auto it = map_.find(key);
  if (it != map_.end()) {
    History& h = it->second;
    order_.erase({h.second_last, h.last, key});
    h.second_last = h.last;
    h.last = clock_;
    order_.insert({h.second_last, h.last, key});
    return true;
  }
  if (map_.size() >= capacity_) {
    auto victim = order_.begin();
    map_.erase(std::get<2>(*victim));
    order_.erase(victim);
  }
  History h;
  h.last = clock_;
  h.second_last = 0;
  map_.emplace(key, h);
  order_.insert({h.second_last, h.last, key});
  return false;
}

// ---------------------------------------------------------------------------
// CLOCK (second-chance)
// ---------------------------------------------------------------------------

bool ClockPolicy::Access(uint64_t key) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    frames_[it->second].referenced = true;
    return true;
  }
  if (frames_.size() < capacity_) {
    map_.emplace(key, frames_.size());
    frames_.push_back({key, false});
    return false;
  }
  // Advance the hand, clearing reference bits, until an unreferenced frame
  // is found.
  for (;;) {
    Frame& f = frames_[hand_];
    if (f.referenced) {
      f.referenced = false;
      hand_ = (hand_ + 1) % frames_.size();
      continue;
    }
    map_.erase(f.key);
    f.key = key;
    f.referenced = false;
    map_.emplace(key, hand_);
    hand_ = (hand_ + 1) % frames_.size();
    return false;
  }
}

// ---------------------------------------------------------------------------
// HLOG (HybridLog caching behaviour, Sec. 6.4 / 7.5)
// ---------------------------------------------------------------------------

HlogPolicy::HlogPolicy(uint64_t capacity, double mutable_fraction)
    : capacity_{capacity},
      mutable_size_{static_cast<uint64_t>(
          static_cast<double>(capacity) * mutable_fraction)} {
  if (mutable_size_ == 0) mutable_size_ = 1;
  if (mutable_size_ >= capacity_) mutable_size_ = capacity_ - 1;
}

void HlogPolicy::Append(uint64_t key) {
  entries_.emplace_back(next_stamp_, key);
  live_[key] = next_stamp_;
  ++next_stamp_;
  while (entries_.size() > capacity_) {
    auto [stamp, old_key] = entries_.front();
    entries_.pop_front();
    auto it = live_.find(old_key);
    if (it != live_.end() && it->second == stamp) {
      live_.erase(it);  // the newest copy fell off the head: evicted
    }
    // Otherwise this was a stale (superseded) copy: just reclaim the slot.
  }
}

bool HlogPolicy::Access(uint64_t key) {
  auto it = live_.find(key);
  if (it != live_.end()) {
    bool in_mutable = it->second + mutable_size_ >= next_stamp_;
    if (!in_mutable) {
      // Read-only region: FASTER copies the record to the tail
      // (read-copy-update) — the old copy lingers, shrinking the
      // effective cache (Sec. 7.5).
      Append(key);
    }
    return true;
  }
  Append(key);
  return false;
}

// ---------------------------------------------------------------------------

std::unique_ptr<CachePolicy> MakePolicy(const std::string& name,
                                        uint64_t capacity) {
  if (name == "FIFO") return std::make_unique<FifoPolicy>(capacity);
  if (name == "LRU_1") return std::make_unique<LruPolicy>(capacity);
  if (name == "LRU_2") return std::make_unique<Lru2Policy>(capacity);
  if (name == "CLOCK") return std::make_unique<ClockPolicy>(capacity);
  if (name == "HLOG") return std::make_unique<HlogPolicy>(capacity);
  return nullptr;
}

}  // namespace faster
