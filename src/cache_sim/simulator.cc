#include "cache_sim/simulator.h"

namespace faster {

CacheSimResult RunCacheSim(const std::string& policy_name,
                           Distribution distribution, uint64_t total_keys,
                           double cache_ratio, uint64_t accesses,
                           uint64_t warmup, uint64_t seed) {
  uint64_t capacity = static_cast<uint64_t>(
      static_cast<double>(total_keys) * cache_ratio);
  if (capacity == 0) capacity = 1;
  auto policy = MakePolicy(policy_name, capacity);
  auto keys = MakeKeyGenerator(distribution, total_keys, seed);

  for (uint64_t i = 0; i < warmup; ++i) {
    policy->Access(keys->Next());
  }
  uint64_t misses = 0;
  for (uint64_t i = 0; i < accesses; ++i) {
    if (!policy->Access(keys->Next())) ++misses;
  }

  CacheSimResult r;
  r.policy = policy_name;
  r.distribution = distribution;
  r.cache_ratio = cache_ratio;
  r.accesses = accesses;
  r.misses = misses;
  r.miss_ratio = static_cast<double>(misses) / static_cast<double>(accesses);
  return r;
}

}  // namespace faster
