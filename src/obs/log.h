#ifndef FASTER_OBS_LOG_H_
#define FASTER_OBS_LOG_H_

/// Structured, leveled, asynchronous logging (DESIGN.md §12).
///
/// Producer side: each thread appends fully formatted records to its own
/// lock-free ring slot (owner-only writes, release-published per entry).
/// A background drainer thread collects committed entries every few
/// milliseconds, sorts them by timestamp, and writes them to the
/// configured sinks (stderr and/or a file) as `key=value` text or JSON
/// lines. Producers never block and never take a lock: when a ring is
/// full the record is dropped and counted.
///
/// Like the rest of `src/obs`, the real types are always compiled; call
/// sites use the `StatLog*` aliases/helpers which collapse to no-ops
/// unless the build defines `FASTER_STATS` (see stats.h).

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/thread.h"
#include "obs/stats.h"

namespace faster {
namespace obs {

enum class LogLevel : uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

inline const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

/// Parses "debug"/"info"/"warn"/"error"/"off". Returns false on garbage.
bool ParseLogLevel(const char* s, LogLevel* out);

/// One typed field of a structured record. Constructed (cheaply) at the
/// call site; only rendered when the record's level is enabled.
class LogField {
 public:
  LogField(const char* key, uint64_t v) : key_{key}, type_{kU64} { u64_ = v; }
  LogField(const char* key, int64_t v) : key_{key}, type_{kI64} { i64_ = v; }
  LogField(const char* key, int v)
      : key_{key}, type_{kI64} { i64_ = v; }
  LogField(const char* key, unsigned v)
      : key_{key}, type_{kU64} { u64_ = v; }
  LogField(const char* key, double v) : key_{key}, type_{kF64} { f64_ = v; }
  LogField(const char* key, bool v) : key_{key}, type_{kBool} { u64_ = v; }
  LogField(const char* key, const char* v)
      : key_{key}, type_{kStr} { str_ = (v != nullptr) ? v : "(null)"; }

  /// Appends " key=value" to buf; returns bytes appended (clamped).
  size_t Render(char* buf, size_t cap) const;

 private:
  enum Type : uint8_t { kU64, kI64, kF64, kBool, kStr };
  const char* key_;
  Type type_;
  union {
    uint64_t u64_;
    int64_t i64_;
    double f64_;
    const char* str_;
  };
};

/// The per-thread ring store behind the logger. Also scanned raw by the
/// flight recorder at crash time (tail of recent records).
class LogRing {
 public:
  static constexpr uint32_t kEntriesPerThread = 64;
  static constexpr uint32_t kTextSize = 152;

  struct Entry {
    // order: release store of pos+1 publishes the payload below; acquire
    // loads in the drainer pair with it. Relaxed loads only on the
    // producer's own slot (overflow check) and in the crash-dump path,
    // where a torn payload is acceptable.
    std::atomic<uint64_t> commit{0};
    uint64_t wall_ns;   // CLOCK_REALTIME at the call site
    uint32_t tid;
    uint8_t level;      // LogLevel
    uint16_t len;       // bytes of text[] used
    char text[kTextSize];  // "component: message k=v k=v", not terminated
  };

  /// Plain copy of an entry's payload (for drainers and crash dumps).
  struct Record {
    uint64_t wall_ns;
    uint32_t tid;
    uint8_t level;
    uint16_t len;
    char text[kTextSize];
  };

  struct alignas(64) Shard {
    Entry entries[kEntriesPerThread];
    /// Next sequence number to write. Owner-thread-only plain field: slot
    /// reuse after thread exit is ordered by Thread's release/acquire
    /// handoff on the id itself.
    uint64_t next = 0;
    // order: release store after the drainer finishes copying a range
    // (producers may then reuse those slots); acquire load in the
    // producer's overflow check; relaxed load where the drainer re-reads
    // its own cursor.
    std::atomic<uint64_t> drained{0};
    // order: relaxed; drop statistic only.
    std::atomic<uint64_t> dropped{0};
  };

  LogRing() : shards_{new Shard[Thread::kMaxThreads]} {}

  Shard& shard(uint32_t tid) { return shards_[tid]; }
  const Shard& shard(uint32_t tid) const { return shards_[tid]; }
  static constexpr uint32_t NumShards() { return Thread::kMaxThreads; }

  /// Async-signal-safe raw read for the flight recorder: copies entry
  /// `seq` of shard `tid` if it is committed. Relaxed loads; the payload
  /// may be torn if the crash raced a writer — acceptable at crash time.
  bool ReadEntryRaw(uint32_t tid, uint64_t seq, Record* out) const;

  /// Async-signal-safe: highest committed seq + 1 for shard `tid` (scans
  /// commit tags; does not touch the owner-only cursor).
  uint64_t CommittedEnd(uint32_t tid) const;

 private:
  std::unique_ptr<Shard[]> shards_;
};

/// The process-wide asynchronous logger.
class Logger {
 public:
  /// Global instance. First use reads FASTER_LOG_LEVEL (debug/info/warn/
  /// error/off; default warn), FASTER_LOG_FILE, and FASTER_LOG_JSON=1
  /// from the environment.
  static Logger& Global();

  Logger();
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void set_level(LogLevel level) {
    level_.store(static_cast<uint8_t>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  /// The hot-path gate: one relaxed load + compare.
  bool Enabled(LogLevel level) const {
    return static_cast<uint8_t>(level) >=
           level_.load(std::memory_order_relaxed);
  }

  /// Opens (appends to) a log file sink. Returns false on failure.
  bool OpenFile(const std::string& path);
  /// Emit JSON lines instead of key=value text.
  void set_json(bool json) { json_.store(json, std::memory_order_relaxed); }
  /// Enable/disable the stderr sink (on by default).
  void set_stderr(bool enabled) {
    stderr_.store(enabled, std::memory_order_relaxed);
  }

  /// Core producer call: formats into the calling thread's ring slot.
  /// Never blocks; drops (and counts) when the ring is full.
  void Log(LogLevel level, const char* component, const char* message,
           const LogField* fields, size_t num_fields);

  template <typename... Fields>
  void Write(LogLevel level, const char* component, const char* message,
             const Fields&... fields) {
    if (!Enabled(level)) return;
    if constexpr (sizeof...(Fields) > 0) {
      const LogField arr[] = {fields...};
      Log(level, component, message, arr, sizeof...(Fields));
    } else {
      Log(level, component, message, nullptr, 0);
    }
  }

  /// Drains every committed record to the sinks, inline on the caller.
  void Flush();

  /// Records dropped to full rings (all shards).
  uint64_t Dropped() const;
  /// Records written to sinks so far.
  uint64_t Emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }

  const LogRing& ring() const { return ring_; }

 private:
  using Record = LogRing::Record;

  void DrainerLoop();
  /// Consumes committed entries from all shards; returns records written.
  size_t DrainOnce();
  void EmitEntry(const Record& e, std::string* out) const;

  LogRing ring_;
  // order: relaxed; a level/format toggle needs no ordering.
  std::atomic<uint8_t> level_{static_cast<uint8_t>(LogLevel::kWarn)};
  // order: relaxed (see level_).
  std::atomic<bool> json_{false};
  // order: relaxed (see level_).
  std::atomic<bool> stderr_{true};
  // order: relaxed flag checked by the drainer loop; the join in the
  // destructor provides the actual synchronization.
  std::atomic<bool> stop_{false};
  // order: relaxed; statistics only.
  std::atomic<uint64_t> emitted_{0};

  std::mutex drain_mutex_;   // serializes DrainOnce (drainer vs Flush)
  std::mutex sink_mutex_;    // guards file_ open/close vs writes
  FILE* file_ = nullptr;
  std::thread drainer_;
};

/// Per-call-site rate limiter for hot-path warnings: at most one record
/// per `interval_ns`, with a suppressed-count carried into the next
/// emitted record. Safe for concurrent use; a rare double-permit under a
/// race is acceptable.
class LogRateLimit {
 public:
  explicit constexpr LogRateLimit(uint64_t interval_ns)
      : interval_ns_{interval_ns} {}

  /// True if the caller may log now. `*suppressed` returns how many calls
  /// were swallowed since the last permit.
  bool Allow(uint64_t* suppressed) {
    uint64_t now = NowNs();
    uint64_t next = next_ns_.load(std::memory_order_relaxed);
    if (now < next) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!next_ns_.compare_exchange_strong(next, now + interval_ns_,
                                          std::memory_order_relaxed,
                                          std::memory_order_relaxed)) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    *suppressed = suppressed_.exchange(0, std::memory_order_relaxed);
    return true;
  }

 private:
  uint64_t interval_ns_;
  // order: relaxed CAS claims the next permit window; best-effort only.
  std::atomic<uint64_t> next_ns_{0};
  // order: relaxed; counter of swallowed calls.
  std::atomic<uint64_t> suppressed_{0};
};

/// No-op twin for stats-off builds.
class NoopLogRateLimit {
 public:
  explicit constexpr NoopLogRateLimit(uint64_t) {}
  bool Allow(uint64_t* suppressed) {
    *suppressed = 0;
    return false;
  }
};

#if FASTER_STATS_ENABLED

using StatLogRateLimit = LogRateLimit;

/// Leveled structured log; collapses to nothing without FASTER_STATS.
template <typename... Fields>
inline void StatLog(LogLevel level, const char* component,
                    const char* message, const Fields&... fields) {
  Logger::Global().Write(level, component, message, fields...);
}

/// Rate-limited variant for paths that can fire per-operation. Appends a
/// `suppressed=N` field when earlier calls were swallowed.
template <typename... Fields>
inline void StatLogLimited(LogRateLimit& limit, LogLevel level,
                           const char* component, const char* message,
                           const Fields&... fields) {
  Logger& logger = Logger::Global();
  if (!logger.Enabled(level)) return;
  uint64_t suppressed = 0;
  if (!limit.Allow(&suppressed)) return;
  logger.Write(level, component, message, fields...,
               LogField{"suppressed", suppressed});
}

#else  // !FASTER_STATS_ENABLED

using StatLogRateLimit = NoopLogRateLimit;

template <typename... Fields>
inline void StatLog(LogLevel, const char*, const char*, const Fields&...) {}

template <typename... Fields>
inline void StatLogLimited(NoopLogRateLimit&, LogLevel, const char*,
                           const char*, const Fields&...) {}

#endif  // FASTER_STATS_ENABLED

}  // namespace obs
}  // namespace faster

#endif  // FASTER_OBS_LOG_H_
