#ifndef FASTER_OBS_FLIGHT_RECORDER_H_
#define FASTER_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "core/epoch.h"
#include "obs/log.h"
#include "obs/slowlog.h"
#include "obs/span.h"
#include "obs/stats.h"
#include "obs/trace.h"

/// FlightRecorder: a crash black box. Stores register their event rings,
/// span ring, metric pointers, and epoch table up front (allocation and
/// locking are allowed then); when the process dies — an epoch-verifier
/// abort, an assert's SIGABRT, a stray SIGSEGV/SIGBUS — the recorder
/// dumps the last-N trace events per thread, the recent spans, a metric
/// snapshot, and the per-thread epoch table to stderr and (when
/// $FASTER_FLIGHT_DIR is set, cached at Install time) to
/// $FASTER_FLIGHT_DIR/flight_<pid>.txt.
///
/// Signal-safety contract (DESIGN.md §10): the dump path performs only
/// relaxed lock-free atomic loads on pre-registered pointers, formats
/// integers into fixed stack/static buffers with its own itoa, and calls
/// only async-signal-safe syscalls (write/open/close/getpid). No malloc,
/// no stdio, no locks. Registration data lives in fixed-size slots whose
/// names were copied at attach time, so the dump never touches
/// std::string.
///
/// The registration surface takes the *real* obs types (EventRing,
/// SpanRing, Registry) — callers gate attachment with
/// `if constexpr (obs::kStatsEnabled)`, the same compile-out discipline as
/// every Stat* site; the epoch table attaches in every build. A dump is
/// attempted at most once per process (re-entry from the SIGABRT that
/// follows an epoch-check hook dump is suppressed).

namespace faster {
namespace obs {

class FlightRecorder {
 public:
  static constexpr uint32_t kMaxEventRings = 8;
  static constexpr uint32_t kMaxSpanRings = 4;
  static constexpr uint32_t kMaxEpochs = 8;
  static constexpr uint32_t kMaxLogRings = 4;
  static constexpr uint32_t kMaxSlowLogs = 4;
  static constexpr uint32_t kMaxMetrics = 192;
  static constexpr uint32_t kNameLen = 64;
  /// Most recent events dumped per thread (of EventRing::kEventsPerThread
  /// retained) and spans per thread — keeps a 128-thread dump readable.
  static constexpr uint32_t kEventsPerThreadDumped = 32;
  static constexpr uint32_t kSpansPerThreadDumped = 16;
  /// Tail of the structured-log ring dumped per thread, and of the slow-op
  /// log overall.
  static constexpr uint32_t kLogRecordsPerThreadDumped = 8;
  static constexpr uint32_t kSlowlogEntriesDumped = 32;

  static FlightRecorder& Instance();

  /// Arms the recorder: caches $FASTER_FLIGHT_DIR, installs the
  /// FASTER_EPOCH_CHECK fatal hook and SIGABRT/SIGSEGV/SIGBUS handlers.
  /// Idempotent; not thread-safe against itself (call from startup code).
  void Install();
  bool installed() const {
    return installed_.load(std::memory_order_acquire);
  }

  /// Registration (NOT signal-safe; call at setup time). `owner` keys the
  /// slots for Detach; names are copied. Attached pointers must stay
  /// valid until Detach(owner) — FasterKv detaches in its destructor.
  void AttachEventRing(const void* owner, const char* name,
                       const EventRing* ring);
  void AttachSpanRing(const void* owner, const SpanRing* ring);
  void AttachEpoch(const void* owner, const LightEpoch* epoch);
  /// Structured-log ring (the async logger's store): the dump includes
  /// each thread's most recent committed records.
  void AttachLogRing(const void* owner, const LogRing* ring);
  /// Slow-op log: the dump includes the newest entries with their stage
  /// breakdowns.
  void AttachSlowLog(const void* owner, const SlowLog* slowlog);
  /// Copies every counter/gauge/histogram pointer out of `reg` into fixed
  /// slots (kValue snapshots are taken at attach time and marked stale).
  void AttachMetrics(const void* owner, const Registry& reg);
  void Detach(const void* owner);

  /// Noop-twin overloads: attach sites compile identically in stats-off
  /// builds, where the Stat* aliases resolve to the noop obs types.
  void AttachEventRing(const void*, const char*, const NoopEventRing*) {}
  void AttachMetrics(const void*, const NoopRegistry&) {}

  /// Writes the dump. Async-signal-safe; at most one dump per process
  /// (later calls return immediately). Public so tests and fatal paths
  /// outside the installed handlers can force a dump.
  void Dump(const char* reason);

 private:
  FlightRecorder() = default;

  static void FatalHook(const char* what);
  static void OnFatalSignal(int sig);

  struct EventRingSlot {
    // order: release store on attach/detach publishes the slot fields;
    // acquire load on the dump path pairs with it.
    std::atomic<bool> used{false};
    const void* owner = nullptr;
    char name[kNameLen] = {};
    const EventRing* ring = nullptr;
  };
  struct SpanRingSlot {
    // order: release store on attach/detach; acquire load on dump.
    std::atomic<bool> used{false};
    const void* owner = nullptr;
    const SpanRing* ring = nullptr;
  };
  struct EpochSlot {
    // order: release store on attach/detach; acquire load on dump.
    std::atomic<bool> used{false};
    const void* owner = nullptr;
    const LightEpoch* epoch = nullptr;
  };
  struct LogRingSlot {
    // order: release store on attach/detach; acquire load on dump.
    std::atomic<bool> used{false};
    const void* owner = nullptr;
    const LogRing* ring = nullptr;
  };
  struct SlowLogSlot {
    // order: release store on attach/detach; acquire load on dump.
    std::atomic<bool> used{false};
    const void* owner = nullptr;
    const SlowLog* slowlog = nullptr;
  };
  struct MetricSlot {
    // order: release store on attach/detach; acquire load on dump.
    std::atomic<bool> used{false};
    const void* owner = nullptr;
    char name[kNameLen] = {};
    Registry::Kind kind = Registry::Kind::kValue;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    uint64_t value = 0;  // kValue: snapshot taken at attach time
  };

  std::mutex attach_mutex_;  // attach/detach only; never on the dump path
  EventRingSlot event_rings_[kMaxEventRings];
  SpanRingSlot span_rings_[kMaxSpanRings];
  EpochSlot epochs_[kMaxEpochs];
  LogRingSlot log_rings_[kMaxLogRings];
  SlowLogSlot slowlogs_[kMaxSlowLogs];
  MetricSlot metrics_[kMaxMetrics];
  // order: release store at the end of Install / acquire load in
  // installed() — publishes the cached flight dir and handler state.
  std::atomic<bool> installed_{false};
  // order: acq_rel exchange — first-dump-wins guard; later dumpers (e.g.
  // the SIGABRT raised right after an epoch-check hook dump) bail out.
  std::atomic<bool> dumped_{false};
  char flight_dir_[256] = {};
  bool have_flight_dir_ = false;
};

}  // namespace obs
}  // namespace faster

#endif  // FASTER_OBS_FLIGHT_RECORDER_H_
