#ifndef FASTER_OBS_SPAN_H_
#define FASTER_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <ostream>
#include <vector>

#include "obs/stats.h"
#include "obs/trace.h"

/// Per-operation lifecycle spans (Dapper-style causal tracing).
///
/// A *trace* is one user-visible operation (Read/Upsert/Rmw/Delete or one
/// batch chunk) identified by a 64-bit trace id; a *span* is one timed
/// segment of it (the synchronous entry, the pending-I/O window, the pool
/// execution, a retry, a pipeline stage), identified by a span id and
/// linked to its parent span. Spans cross threads by value: the store
/// copies the ambient `TraceContext` into each `PendingContext`/`IoJob`
/// when an operation goes asynchronous and re-establishes it (ResumedSpan)
/// wherever the operation continues, so a storage read's spans land under
/// the same trace id as the Read() that issued it.
///
/// Recording follows the obs:: sharding discipline (stats.h): every thread
/// owns a cache-line-aligned ring of span slots written with relaxed
/// stores; `Snapshot()` is torn-read-tolerant and allocation lives only on
/// the snapshot side. Sampling is 1-in-N per root (SetSpanSampleEvery);
/// child spans inherit the decision through the ambient context, so a
/// trace is always recorded whole or not at all.
///
/// Compile-out: instrumentation sites use the `Stat*Span` aliases, which
/// resolve to no-op twins unless built with -DFASTER_STATS=ON — no clock
/// reads, no ring writes, no thread-local traffic in default builds. The
/// real types stay compiled everywhere so tests can drive them directly.

namespace faster {
namespace obs {

/// Span kinds (what segment of an operation's life a span covers).
enum class SpanKind : uint16_t {
  kNone = 0,
  kRead,          // Read() synchronous entry
  kUpsert,        // Upsert() entry
  kRmw,           // Rmw() entry
  kDelete,        // Delete() entry
  kPendingIo,     // first I/O issue -> completion processed (whole chain)
  kIoQueue,       // pool submit -> worker dequeue (queueing delay)
  kIoExec,        // device job body on the pool worker
  kIoComplete,    // owner thread processing one completed context
  kRetryFuzzy,    // one fuzzy-RMW retry attempt at CompletePending
  kBatchChunk,    // one ExecuteChunk pass (arg = ops in the chunk)
  kBatchHash,     // pipeline stage 1: hash + bucket prefetch
  kBatchResolve,  // pipeline stage 2: stable resolve + record prefetch
  kBatchExecute,  // pipeline stage 3: execute + coalesced I/O submit
  kNetRequest,    // one server event-loop turn: socket read -> reply flush
  kNetParse,      // RESP frame parsing within a turn
  kNetFlush,      // reply rendering + socket writes within a turn
  kIoPoll,        // one non-empty Poll() sweep (arg = completions reaped)
};

inline const char* SpanKindName(SpanKind k) {
  switch (k) {
    case SpanKind::kNone: return "none";
    case SpanKind::kRead: return "read";
    case SpanKind::kUpsert: return "upsert";
    case SpanKind::kRmw: return "rmw";
    case SpanKind::kDelete: return "delete";
    case SpanKind::kPendingIo: return "pending_io";
    case SpanKind::kIoQueue: return "io_queue";
    case SpanKind::kIoExec: return "io_exec";
    case SpanKind::kIoComplete: return "io_complete";
    case SpanKind::kRetryFuzzy: return "retry_fuzzy";
    case SpanKind::kBatchChunk: return "batch_chunk";
    case SpanKind::kBatchHash: return "batch_hash";
    case SpanKind::kBatchResolve: return "batch_resolve";
    case SpanKind::kBatchExecute: return "batch_execute";
    case SpanKind::kNetRequest: return "net_request";
    case SpanKind::kNetParse: return "net_parse";
    case SpanKind::kNetFlush: return "net_flush";
    case SpanKind::kIoPoll: return "io_poll";
  }
  return "unknown";
}

/// One completed span, as copied out of the ring.
struct SpanRecord {
  uint64_t trace_id;
  uint64_t span_id;
  uint64_t parent_id;  // 0 for a root span
  uint64_t start_ns;
  uint64_t end_ns;
  uint32_t arg;
  uint16_t kind;  // SpanKind
  uint16_t tid;
};

/// Process-wide span/trace id allocator. A single relaxed fetch_add is
/// paid only per *sampled* span, so contention is negligible at any
/// realistic sampling rate, and ids never collide across thread-slot
/// reuse (unlike a thread-local sequence).
inline uint64_t NewSpanId() {
  // order: relaxed fetch_add — a unique-id counter; no data is published
  // through it.
  static std::atomic<uint64_t> seq{0};
  return seq.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Root-span sampling period: 1-in-N operations start a trace (0 disables
/// span recording entirely). Tests set 1 for determinism.
inline std::atomic<uint32_t>& SpanSamplePeriod() {
  // order: relaxed load/store — a tuning knob read per candidate root; no
  // data is published through it.
  static std::atomic<uint32_t> every{64};
  return every;
}

inline void SetSpanSampleEvery(uint32_t n) {
  SpanSamplePeriod().store(n, std::memory_order_relaxed);
}
inline uint32_t SpanSampleEvery() {
  return SpanSamplePeriod().load(std::memory_order_relaxed);
}

/// The ambient trace context of the calling thread: which span any new
/// child work should attach to. {0, 0} means "no active trace".
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

inline TraceContext& CurrentTrace() {
  thread_local TraceContext ctx;
  return ctx;
}

/// Per-thread sharded ring of completed spans (same discipline as
/// EventRing: owner-only relaxed stores on private lines; snapshots may
/// surface a torn record, which is acceptable for a diagnostic trace).
class SpanRing {
 public:
  static constexpr uint32_t kSpansPerThread = 256;

  SpanRing() : shards_{new Shard[Thread::kMaxThreads]} {}
  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  void Record(uint64_t trace_id, uint64_t span_id, uint64_t parent_id,
              uint64_t start_ns, uint64_t end_ns, uint32_t arg,
              SpanKind kind) {
    Shard& shard = shards_[Thread::Id()];
    uint64_t pos = shard.next.load(std::memory_order_relaxed);
    Slot& slot = shard.slots[pos % kSpansPerThread];
    slot.trace_id.store(trace_id, std::memory_order_relaxed);
    slot.span_id.store(span_id, std::memory_order_relaxed);
    slot.parent_id.store(parent_id, std::memory_order_relaxed);
    slot.start_ns.store(start_ns, std::memory_order_relaxed);
    slot.end_ns.store(end_ns, std::memory_order_relaxed);
    slot.meta.store(static_cast<uint64_t>(arg) << 16 |
                        static_cast<uint64_t>(kind),
                    std::memory_order_relaxed);
    shard.next.store(pos + 1, std::memory_order_relaxed);
  }

  /// Copies out every recorded span, sorted by start time across threads.
  std::vector<SpanRecord> Snapshot() const {
    std::vector<SpanRecord> spans;
    for (uint32_t t = 0; t < Thread::kMaxThreads; ++t) {
      uint64_t next = ShardNext(t);
      uint64_t count = next < kSpansPerThread ? next : kSpansPerThread;
      for (uint64_t i = next - count; i < next; ++i) {
        SpanRecord r = ReadSpan(t, i);
        if (r.kind != static_cast<uint16_t>(SpanKind::kNone)) {
          spans.push_back(r);
        }
      }
    }
    for (size_t i = 1; i < spans.size(); ++i) {
      // Insertion sort: rings are small and snapshots are cold-path.
      SpanRecord r = spans[i];
      size_t j = i;
      while (j > 0 && r.start_ns < spans[j - 1].start_ns) {
        spans[j] = spans[j - 1];
        --j;
      }
      spans[j] = r;
    }
    return spans;
  }

  /// Raw accessors for the flight recorder: no allocation, relaxed loads
  /// only, safe to call from a signal handler.
  uint64_t ShardNext(uint32_t tid) const {
    return shards_[tid].next.load(std::memory_order_relaxed);
  }
  SpanRecord ReadSpan(uint32_t tid, uint64_t pos) const {
    const Slot& slot = shards_[tid].slots[pos % kSpansPerThread];
    SpanRecord r;
    r.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    r.span_id = slot.span_id.load(std::memory_order_relaxed);
    r.parent_id = slot.parent_id.load(std::memory_order_relaxed);
    r.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    r.end_ns = slot.end_ns.load(std::memory_order_relaxed);
    uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    r.arg = static_cast<uint32_t>(meta >> 16);
    r.kind = static_cast<uint16_t>(meta & 0xffff);
    r.tid = static_cast<uint16_t>(tid);
    return r;
  }

 private:
  struct Slot {
    // order: relaxed stores/loads — best-effort span ring; a snapshot
    // racing a writer may see a torn record, which is acceptable here.
    std::atomic<uint64_t> trace_id{0};
    // order: relaxed stores/loads — see `trace_id`.
    std::atomic<uint64_t> span_id{0};
    // order: relaxed stores/loads — see `trace_id`.
    std::atomic<uint64_t> parent_id{0};
    // order: relaxed stores/loads — see `trace_id`.
    std::atomic<uint64_t> start_ns{0};
    // order: relaxed stores/loads — see `trace_id`.
    std::atomic<uint64_t> end_ns{0};
    // order: relaxed stores/loads — see `trace_id`. arg<<16 | kind.
    std::atomic<uint64_t> meta{0};
  };
  struct alignas(64) Shard {
    // order: relaxed load/store — single-writer ring position; snapshot
    // readers tolerate the race (best-effort ring).
    std::atomic<uint64_t> next{0};
    Slot slots[kSpansPerThread];
  };
  std::unique_ptr<Shard[]> shards_;
};

/// The process-wide span ring every real span scope records into. Lazily
/// constructed, so stats-off builds that never touch spans allocate
/// nothing.
inline SpanRing& GlobalSpanRing() {
  static SpanRing ring;
  return ring;
}

/// Snapshot of the global ring; empty when stats are compiled out (the
/// ring is never constructed).
inline std::vector<SpanRecord> SnapshotSpans() {
  if constexpr (kStatsEnabled) {
    return GlobalSpanRing().Snapshot();
  } else {
    return {};
  }
}

// ---------------------------------------------------------------------------
// RAII span scopes (real types; see the Stat* aliases at the bottom).
// ---------------------------------------------------------------------------

/// An operation entry span: a sampled *root* when no trace is active on
/// this thread, a *child* of the ambient span otherwise (so single ops
/// executed inside a batch fallback attach to the chunk's trace). While
/// alive, the ambient context points at this span.
class OpSpan {
 public:
  explicit OpSpan(SpanKind kind, uint32_t arg = 0) : kind_{kind}, arg_{arg} {
    TraceContext& cur = CurrentTrace();
    saved_ = cur;
    if (cur.trace_id != 0) {
      trace_id_ = cur.trace_id;
      parent_id_ = cur.span_id;
      span_id_ = NewSpanId();
    } else if (SampleRoot()) {
      trace_id_ = NewSpanId();
      parent_id_ = 0;
      span_id_ = trace_id_;  // convention: a root's span id == trace id
    } else {
      return;  // unsampled: no clock read, no ring write
    }
    cur.trace_id = trace_id_;
    cur.span_id = span_id_;
    start_ns_ = NowNs();
  }

  ~OpSpan() {
    if (trace_id_ != 0) {
      GlobalSpanRing().Record(trace_id_, span_id_, parent_id_, start_ns_,
                              NowNs(), arg_, kind_);
      CurrentTrace() = saved_;
    }
  }

  OpSpan(const OpSpan&) = delete;
  OpSpan& operator=(const OpSpan&) = delete;

  bool active() const { return trace_id_ != 0; }
  uint64_t trace_id() const { return trace_id_; }
  uint64_t span_id() const { return span_id_; }

 private:
  static bool SampleRoot() {
    uint32_t every = SpanSampleEvery();
    if (every == 0) return false;
    if (every == 1) return true;
    thread_local uint32_t tick = 0;
    return ++tick % every == 0;
  }

  SpanKind kind_;
  uint32_t arg_;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t start_ns_ = 0;
  TraceContext saved_;
};

/// A child span: active only when the calling thread already has an
/// ambient trace (i.e. the root was sampled). Used for pipeline stages
/// and other sub-segments that never start a trace themselves.
class ChildSpan {
 public:
  explicit ChildSpan(SpanKind kind, uint32_t arg = 0)
      : kind_{kind}, arg_{arg} {
    TraceContext& cur = CurrentTrace();
    if (cur.trace_id == 0) return;
    saved_ = cur;
    trace_id_ = cur.trace_id;
    parent_id_ = cur.span_id;
    span_id_ = NewSpanId();
    cur.span_id = span_id_;
    start_ns_ = NowNs();
  }

  ~ChildSpan() {
    if (trace_id_ != 0) {
      GlobalSpanRing().Record(trace_id_, span_id_, parent_id_, start_ns_,
                              NowNs(), arg_, kind_);
      CurrentTrace() = saved_;
    }
  }

  ChildSpan(const ChildSpan&) = delete;
  ChildSpan& operator=(const ChildSpan&) = delete;

  bool active() const { return trace_id_ != 0; }
  uint64_t trace_id() const { return trace_id_; }
  uint64_t span_id() const { return span_id_; }

 private:
  SpanKind kind_;
  uint32_t arg_;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t start_ns_ = 0;
  TraceContext saved_;
};

/// Re-establishes a trace context captured on another thread (or at an
/// earlier time) around a continuation: I/O pool execution, completion
/// processing, fuzzy retries. Inactive when the captured trace id is 0
/// (the originating operation was not sampled).
class ResumedSpan {
 public:
  ResumedSpan(SpanKind kind, uint64_t trace_id, uint64_t parent_id,
              uint32_t arg = 0)
      : kind_{kind}, arg_{arg}, trace_id_{trace_id}, parent_id_{parent_id} {
    if (trace_id_ == 0) return;
    TraceContext& cur = CurrentTrace();
    saved_ = cur;
    span_id_ = NewSpanId();
    cur.trace_id = trace_id_;
    cur.span_id = span_id_;
    start_ns_ = NowNs();
  }

  ~ResumedSpan() {
    if (trace_id_ != 0) {
      GlobalSpanRing().Record(trace_id_, span_id_, parent_id_, start_ns_,
                              NowNs(), arg_, kind_);
      CurrentTrace() = saved_;
    }
  }

  ResumedSpan(const ResumedSpan&) = delete;
  ResumedSpan& operator=(const ResumedSpan&) = delete;

  bool active() const { return trace_id_ != 0; }
  uint64_t trace_id() const { return trace_id_; }
  uint64_t span_id() const { return span_id_; }

 private:
  SpanKind kind_;
  uint32_t arg_;
  uint64_t trace_id_;
  uint64_t span_id_ = 0;
  uint64_t parent_id_;
  uint64_t start_ns_ = 0;
  TraceContext saved_;
};

// ---------------------------------------------------------------------------
// Chrome trace-event JSON (Perfetto-loadable).
// ---------------------------------------------------------------------------

/// Writes spans as "X" (complete) events and ring events as "i" (instant)
/// events in the Chrome trace-event JSON format, which Perfetto and
/// chrome://tracing load directly. Timestamps are microseconds with
/// nanosecond precision; span ids are carried in args so
/// tools/trace2perfetto.py can re-link parents.
inline void WriteChromeTrace(std::ostream& os,
                             const std::vector<SpanRecord>& spans,
                             const std::vector<TraceEvent>& events) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"faster\"}}";
  char buf[64];
  auto us = [&buf](uint64_t ns) -> const char* {
    std::snprintf(buf, sizeof buf, "%llu.%03u",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned>(ns % 1000));
    return buf;
  };
  for (const SpanRecord& s : spans) {
    uint64_t dur = s.end_ns >= s.start_ns ? s.end_ns - s.start_ns : 0;
    os << ",\n{\"name\":\"" << SpanKindName(static_cast<SpanKind>(s.kind))
       << "\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid
       << ",\"ts\":" << us(s.start_ns);
    os << ",\"dur\":" << us(dur);
    os << ",\"args\":{\"trace_id\":" << s.trace_id
       << ",\"span_id\":" << s.span_id << ",\"parent_span_id\":" << s.parent_id
       << ",\"arg\":" << s.arg << "}}";
  }
  for (const TraceEvent& e : events) {
    os << ",\n{\"name\":\"" << EvName(static_cast<Ev>(e.id))
       << "\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
       << e.tid << ",\"ts\":" << us(e.ns) << ",\"args\":{\"arg\":" << e.arg
       << "}}";
  }
  os << "\n]}\n";
}

// ---------------------------------------------------------------------------
// No-op twins and the selected aliases.
// ---------------------------------------------------------------------------

class NoopOpSpan {
 public:
  explicit NoopOpSpan(SpanKind, uint32_t = 0) {}
  bool active() const { return false; }
  uint64_t trace_id() const { return 0; }
  uint64_t span_id() const { return 0; }
};

class NoopChildSpan {
 public:
  explicit NoopChildSpan(SpanKind, uint32_t = 0) {}
  bool active() const { return false; }
  uint64_t trace_id() const { return 0; }
  uint64_t span_id() const { return 0; }
};

class NoopResumedSpan {
 public:
  NoopResumedSpan(SpanKind, uint64_t, uint64_t, uint32_t = 0) {}
  bool active() const { return false; }
  uint64_t trace_id() const { return 0; }
  uint64_t span_id() const { return 0; }
};

#if FASTER_STATS_ENABLED
using StatOpSpan = OpSpan;
using StatChildSpan = ChildSpan;
using StatResumedSpan = ResumedSpan;
#else
using StatOpSpan = NoopOpSpan;
using StatChildSpan = NoopChildSpan;
using StatResumedSpan = NoopResumedSpan;
#endif

}  // namespace obs
}  // namespace faster

#endif  // FASTER_OBS_SPAN_H_
