#include "obs/flight_recorder.h"

#include "core/epoch_check.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

namespace faster {
namespace obs {

namespace {

/// Append-only formatter over a caller-supplied buffer, flushed with
/// write(2). Everything here is async-signal-safe: no allocation, no
/// stdio, no locale. Output goes to up to two fds (stderr + flight file).
class SafeWriter {
 public:
  SafeWriter(char* buf, size_t cap, int fd1, int fd2)
      : buf_{buf}, cap_{cap}, fd1_{fd1}, fd2_{fd2} {}

  void Str(const char* s) {
    while (*s != '\0') Ch(*s++);
  }

  /// Length-bounded append for unterminated ring text (control characters
  /// replaced; the ring stores raw bytes).
  void StrN(const char* s, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      char c = s[i];
      Ch(static_cast<unsigned char>(c) >= 0x20 ? c : '.');
    }
  }

  void U64(uint64_t v) {
    char tmp[20];
    size_t n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) Ch(tmp[--n]);
  }

  void I64(int64_t v) {
    if (v < 0) {
      Ch('-');
      U64(static_cast<uint64_t>(-(v + 1)) + 1);
    } else {
      U64(static_cast<uint64_t>(v));
    }
  }

  void Hex(uint64_t v) {
    Str("0x");
    char tmp[16];
    size_t n = 0;
    do {
      tmp[n++] = "0123456789abcdef"[v & 0xf];
      v >>= 4;
    } while (v != 0);
    while (n > 0) Ch(tmp[--n]);
  }

  void Flush() {
    if (len_ == 0) return;
    WriteFull(fd1_);
    WriteFull(fd2_);
    len_ = 0;
  }

 private:
  void Ch(char c) {
    if (len_ == cap_) Flush();
    buf_[len_++] = c;
  }

  void WriteFull(int fd) {
    if (fd < 0) return;
    size_t off = 0;
    while (off < len_) {
      ssize_t n = ::write(fd, buf_ + off, len_ - off);
      if (n <= 0) return;  // nothing useful to do about EIO at crash time
      off += static_cast<size_t>(n);
    }
  }

  char* buf_;
  size_t cap_;
  size_t len_ = 0;
  int fd1_;
  int fd2_;
};

void CopyName(char* dst, size_t cap, const char* src) {
  size_t i = 0;
  for (; src[i] != '\0' && i + 1 < cap; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

const char* SignalName(int sig) {
  switch (sig) {
    case SIGABRT: return "SIGABRT";
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    default: return "signal";
  }
}

}  // namespace

FlightRecorder& FlightRecorder::Instance() {
  static FlightRecorder instance;
  return instance;
}

void FlightRecorder::FatalHook(const char* what) {
  Instance().Dump(what);
}

void FlightRecorder::OnFatalSignal(int sig) {
  Instance().Dump(SignalName(sig));
  // SA_RESETHAND restored the default disposition on entry, so re-raising
  // terminates with the original signal (keeping cores and death-test
  // exit codes intact).
  ::raise(sig);
}

void FlightRecorder::Install() {
  if (installed_.load(std::memory_order_acquire)) return;
  if (const char* dir = std::getenv("FASTER_FLIGHT_DIR")) {
    CopyName(flight_dir_, sizeof flight_dir_, dir);
    have_flight_dir_ = flight_dir_[0] != '\0';
  }
  SetEpochCheckFatalHook(&FlightRecorder::FatalHook);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = &FlightRecorder::OnFatalSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
  installed_.store(true, std::memory_order_release);
}

void FlightRecorder::AttachEventRing(const void* owner, const char* name,
                                     const EventRing* ring) {
  std::lock_guard<std::mutex> guard{attach_mutex_};
  for (EventRingSlot& slot : event_rings_) {
    if (slot.used.load(std::memory_order_acquire)) continue;
    slot.owner = owner;
    CopyName(slot.name, sizeof slot.name, name);
    slot.ring = ring;
    slot.used.store(true, std::memory_order_release);
    return;
  }
}

void FlightRecorder::AttachSpanRing(const void* owner, const SpanRing* ring) {
  std::lock_guard<std::mutex> guard{attach_mutex_};
  for (SpanRingSlot& slot : span_rings_) {
    if (slot.used.load(std::memory_order_acquire)) continue;
    slot.owner = owner;
    slot.ring = ring;
    slot.used.store(true, std::memory_order_release);
    return;
  }
}

void FlightRecorder::AttachEpoch(const void* owner, const LightEpoch* epoch) {
  std::lock_guard<std::mutex> guard{attach_mutex_};
  for (EpochSlot& slot : epochs_) {
    if (slot.used.load(std::memory_order_acquire)) continue;
    slot.owner = owner;
    slot.epoch = epoch;
    slot.used.store(true, std::memory_order_release);
    return;
  }
}

void FlightRecorder::AttachLogRing(const void* owner, const LogRing* ring) {
  std::lock_guard<std::mutex> guard{attach_mutex_};
  for (LogRingSlot& slot : log_rings_) {
    if (slot.used.load(std::memory_order_acquire)) continue;
    slot.owner = owner;
    slot.ring = ring;
    slot.used.store(true, std::memory_order_release);
    return;
  }
}

void FlightRecorder::AttachSlowLog(const void* owner, const SlowLog* slowlog) {
  std::lock_guard<std::mutex> guard{attach_mutex_};
  for (SlowLogSlot& slot : slowlogs_) {
    if (slot.used.load(std::memory_order_acquire)) continue;
    slot.owner = owner;
    slot.slowlog = slowlog;
    slot.used.store(true, std::memory_order_release);
    return;
  }
}

void FlightRecorder::AttachMetrics(const void* owner, const Registry& reg) {
  std::lock_guard<std::mutex> guard{attach_mutex_};
  reg.ForEach([&](const std::string& name, Registry::Kind kind,
                  const Counter* c, const Gauge* g, const Histogram* h,
                  uint64_t value) {
    for (MetricSlot& slot : metrics_) {
      if (slot.used.load(std::memory_order_acquire)) continue;
      slot.owner = owner;
      CopyName(slot.name, sizeof slot.name, name.c_str());
      slot.kind = kind;
      slot.counter = c;
      slot.gauge = g;
      slot.histogram = h;
      slot.value = value;
      slot.used.store(true, std::memory_order_release);
      return;
    }
  });
}

void FlightRecorder::Detach(const void* owner) {
  std::lock_guard<std::mutex> guard{attach_mutex_};
  for (EventRingSlot& slot : event_rings_) {
    if (slot.used.load(std::memory_order_acquire) && slot.owner == owner) {
      slot.used.store(false, std::memory_order_release);
    }
  }
  for (SpanRingSlot& slot : span_rings_) {
    if (slot.used.load(std::memory_order_acquire) && slot.owner == owner) {
      slot.used.store(false, std::memory_order_release);
    }
  }
  for (EpochSlot& slot : epochs_) {
    if (slot.used.load(std::memory_order_acquire) && slot.owner == owner) {
      slot.used.store(false, std::memory_order_release);
    }
  }
  for (LogRingSlot& slot : log_rings_) {
    if (slot.used.load(std::memory_order_acquire) && slot.owner == owner) {
      slot.used.store(false, std::memory_order_release);
    }
  }
  for (SlowLogSlot& slot : slowlogs_) {
    if (slot.used.load(std::memory_order_acquire) && slot.owner == owner) {
      slot.used.store(false, std::memory_order_release);
    }
  }
  for (MetricSlot& slot : metrics_) {
    if (slot.used.load(std::memory_order_acquire) && slot.owner == owner) {
      slot.used.store(false, std::memory_order_release);
    }
  }
}

void FlightRecorder::Dump(const char* reason) {
  if (dumped_.exchange(true, std::memory_order_acq_rel)) return;

  // Open the flight file first so the whole dump lands in it. The buffer
  // is static (not stack) so a dump on a nearly-exhausted or guard-page
  // stack still works.
  int file_fd = -1;
  if (have_flight_dir_) {
    static char path[sizeof flight_dir_ + 64];
    SafeWriter pw{path, sizeof path - 1, -1, -1};
    // Format "<dir>/flight_<pid>.txt" with the signal-safe formatter,
    // then NUL-terminate by hand (SafeWriter has no terminator concept).
    size_t dir_len = std::strlen(flight_dir_);
    std::memcpy(path, flight_dir_, dir_len);
    size_t off = dir_len;
    auto append = [&](const char* s) {
      size_t n = std::strlen(s);
      std::memcpy(path + off, s, n);
      off += n;
    };
    append("/flight_");
    char pid_buf[20];
    uint64_t pid = static_cast<uint64_t>(::getpid());
    size_t n = 0;
    do {
      pid_buf[n++] = static_cast<char>('0' + pid % 10);
      pid /= 10;
    } while (pid != 0);
    while (n > 0) {
      path[off++] = pid_buf[--n];
    }
    append(".txt");
    path[off] = '\0';
    file_fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  }

  static char buf[4096];
  SafeWriter w{buf, sizeof buf, 2, file_fd};

  w.Str("==== FASTER FLIGHT RECORDER BEGIN ====\n");
  w.Str("reason: ");
  w.Str(reason != nullptr ? reason : "(none)");
  w.Str("\n");

  // --- Per-thread epoch table(s) --------------------------------------
  for (uint32_t i = 0; i < kMaxEpochs; ++i) {
    if (!epochs_[i].used.load(std::memory_order_acquire)) continue;
    const LightEpoch* epoch = epochs_[i].epoch;
    w.Str("-- epoch[");
    w.U64(i);
    w.Str("] current=");
    w.U64(epoch->CurrentEpoch());
    w.Str(" safe=");
    w.U64(epoch->SafeToReclaimEpoch());
    w.Str(" --\n");
    for (uint32_t tid = 0; tid < Thread::kMaxThreads; ++tid) {
      uint64_t local = epoch->LocalEpochOf(tid);
      if (local == LightEpoch::kUnprotected) continue;
      w.Str("  tid=");
      w.U64(tid);
      w.Str(" local_epoch=");
      w.U64(local);
      w.Str("\n");
    }
  }

  // --- Metric snapshot -------------------------------------------------
  bool metrics_header = false;
  for (const MetricSlot& slot : metrics_) {
    if (!slot.used.load(std::memory_order_acquire)) continue;
    if (!metrics_header) {
      w.Str("-- metrics --\n");
      metrics_header = true;
    }
    w.Str("  ");
    w.Str(slot.name);
    w.Str(" ");
    switch (slot.kind) {
      case Registry::Kind::kCounter:
        w.U64(slot.counter->Sum());
        break;
      case Registry::Kind::kGauge:
        w.I64(slot.gauge->Value());
        break;
      case Registry::Kind::kHistogram:
        w.Str("count=");
        w.U64(slot.histogram->Count());
        w.Str(" sum=");
        w.U64(slot.histogram->ValueSum());
        w.Str(" p50=");
        w.U64(slot.histogram->Percentile(0.50));
        w.Str(" p99=");
        w.U64(slot.histogram->Percentile(0.99));
        break;
      case Registry::Kind::kValue:
        w.U64(slot.value);
        w.Str(" (at attach)");
        break;
    }
    w.Str("\n");
  }

  // --- Last events per thread, per attached ring ----------------------
  for (const EventRingSlot& slot : event_rings_) {
    if (!slot.used.load(std::memory_order_acquire)) continue;
    w.Str("-- events[");
    w.Str(slot.name);
    w.Str("] (last ");
    w.U64(kEventsPerThreadDumped);
    w.Str(" per thread) --\n");
    const EventRing* ring = slot.ring;
    for (uint32_t tid = 0; tid < Thread::kMaxThreads; ++tid) {
      uint64_t next = ring->ShardNext(tid);
      if (next == 0) continue;
      uint64_t window = next < EventRing::kEventsPerThread
                            ? next
                            : EventRing::kEventsPerThread;
      if (window > kEventsPerThreadDumped) window = kEventsPerThreadDumped;
      for (uint64_t pos = next - window; pos < next; ++pos) {
        TraceEvent e = ring->ReadEvent(tid, pos);
        if (e.id == static_cast<uint16_t>(Ev::kNone)) continue;
        w.Str("  tid=");
        w.U64(tid);
        w.Str(" ns=");
        w.U64(e.ns);
        w.Str(" ev=");
        w.Str(EvName(static_cast<Ev>(e.id)));
        w.Str(" arg=");
        w.U64(e.arg);
        w.Str("\n");
      }
    }
  }

  // --- Recent spans ----------------------------------------------------
  for (const SpanRingSlot& slot : span_rings_) {
    if (!slot.used.load(std::memory_order_acquire)) continue;
    w.Str("-- spans (last ");
    w.U64(kSpansPerThreadDumped);
    w.Str(" per thread) --\n");
    const SpanRing* ring = slot.ring;
    for (uint32_t tid = 0; tid < Thread::kMaxThreads; ++tid) {
      uint64_t next = ring->ShardNext(tid);
      if (next == 0) continue;
      uint64_t window =
          next < SpanRing::kSpansPerThread ? next : SpanRing::kSpansPerThread;
      if (window > kSpansPerThreadDumped) window = kSpansPerThreadDumped;
      for (uint64_t pos = next - window; pos < next; ++pos) {
        SpanRecord s = ring->ReadSpan(tid, pos);
        if (s.span_id == 0) continue;
        w.Str("  tid=");
        w.U64(tid);
        w.Str(" trace=");
        w.Hex(s.trace_id);
        w.Str(" span=");
        w.Hex(s.span_id);
        w.Str(" parent=");
        w.Hex(s.parent_id);
        w.Str(" kind=");
        w.Str(SpanKindName(static_cast<SpanKind>(s.kind)));
        w.Str(" start_ns=");
        w.U64(s.start_ns);
        w.Str(" dur_ns=");
        w.U64(s.end_ns >= s.start_ns ? s.end_ns - s.start_ns : 0);
        w.Str(" arg=");
        w.U64(s.arg);
        w.Str("\n");
      }
    }
  }

  // --- Structured-log ring tail ----------------------------------------
  for (const LogRingSlot& slot : log_rings_) {
    if (!slot.used.load(std::memory_order_acquire)) continue;
    w.Str("-- log (last ");
    w.U64(kLogRecordsPerThreadDumped);
    w.Str(" records per thread) --\n");
    const LogRing* ring = slot.ring;
    for (uint32_t tid = 0; tid < LogRing::NumShards(); ++tid) {
      uint64_t end = ring->CommittedEnd(tid);
      if (end == 0) continue;
      uint64_t window =
          end < LogRing::kEntriesPerThread ? end : LogRing::kEntriesPerThread;
      if (window > kLogRecordsPerThreadDumped) {
        window = kLogRecordsPerThreadDumped;
      }
      for (uint64_t seq = end - window; seq < end; ++seq) {
        LogRing::Record rec;
        if (!ring->ReadEntryRaw(tid, seq, &rec)) continue;
        w.Str("  tid=");
        w.U64(tid);
        w.Str(" ns=");
        w.U64(rec.wall_ns);
        w.Str(" ");
        w.Str(LogLevelName(static_cast<LogLevel>(rec.level)));
        w.Str(" ");
        w.StrN(rec.text, rec.len);
        w.Str("\n");
      }
    }
  }

  // --- Slow-op log tail ------------------------------------------------
  for (const SlowLogSlot& slot : slowlogs_) {
    if (!slot.used.load(std::memory_order_acquire)) continue;
    const SlowLog* slowlog = slot.slowlog;
    uint64_t end = slowlog->RawEnd();
    uint64_t begin = slowlog->RawBegin();
    if (end > begin + kSlowlogEntriesDumped) {
      begin = end - kSlowlogEntriesDumped;
    }
    w.Str("-- slowlog (newest ");
    w.U64(kSlowlogEntriesDumped);
    w.Str(" of ");
    w.U64(end);
    w.Str(" recorded) --\n");
    for (uint64_t seq = begin; seq < end; ++seq) {
      SlowLog::Entry e;
      if (!slowlog->ReadEntryRaw(seq, &e)) continue;
      w.Str("  id=");
      w.U64(e.id);
      w.Str(" op=");
      w.Str(SlowOpKindName(e.kind));
      w.Str(" tid=");
      w.U64(e.tid);
      w.Str(" key=");
      w.Hex(e.key_hash);
      w.Str(" total_ns=");
      w.U64(e.total_ns);
      w.Str(e.pending ? " pending" : " sync");
      for (uint32_t s = 0; s < kNumSlowStages; ++s) {
        if (e.stage_ns[s] == 0) continue;
        w.Str(" ");
        w.Str(SlowStageName(static_cast<SlowStage>(s)));
        w.Str("=");
        w.U64(e.stage_ns[s]);
      }
      w.Str("\n");
    }
  }

  w.Str("==== FASTER FLIGHT RECORDER END ====\n");
  w.Flush();
  if (file_fd >= 0) ::close(file_fd);
}

}  // namespace obs
}  // namespace faster
