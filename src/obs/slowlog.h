#ifndef FASTER_OBS_SLOWLOG_H_
#define FASTER_OBS_SLOWLOG_H_

/// Slow-operation log with per-stage attribution (DESIGN.md §12).
///
/// A fixed-capacity concurrent ring of the most recent operations whose
/// latency crossed a settable threshold (Redis SLOWLOG semantics: newest
/// N slow ops, evicting oldest). Each entry carries the op type, key
/// hash, total latency, and a per-stage breakdown:
///
///   hash / resolve / execute          — synchronous batch-pipeline stages
///                                       (amortized per-op for chunks)
///   io_queue / io_exec / io_complete  — the asynchronous pending-I/O hop:
///                                       submit→dequeue on the pool,
///                                       dequeue→completion callback, and
///                                       callback→CompletePending on the
///                                       owner (includes the cross-thread
///                                       hand-off wait — the residual cost
///                                       Lomet & Wang highlight)
///
/// The three I/O stages partition the pending window exactly, so stage
/// sums always reconstruct the reported total. Attribution is harvested
/// from the PR-5 span plumbing: an ambient per-thread SlowOpState set by
/// the op entry points / batch stage-3 loop, captured into the
/// PendingContext when an op goes asynchronous, plus the IoThreadPool's
/// job timestamps surfaced through CurrentIoStage().
///
/// Everything here is always compiled; hot-path call sites go through
/// the Stat* aliases and `kStatsEnabled` guards like the rest of
/// `src/obs`. The ring itself is all-atomic (relaxed fields, release
/// commit tags) so concurrent writers and readers are TSan-clean.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/thread.h"
#include "obs/stats.h"

namespace faster {
namespace obs {

enum class SlowStage : uint8_t {
  kHash = 0,
  kResolve = 1,
  kExecute = 2,
  kIoQueue = 3,
  kIoExec = 4,
  kIoComplete = 5,
};
inline constexpr uint32_t kNumSlowStages = 6;

inline const char* SlowStageName(SlowStage stage) {
  switch (stage) {
    case SlowStage::kHash: return "hash";
    case SlowStage::kResolve: return "resolve";
    case SlowStage::kExecute: return "execute";
    case SlowStage::kIoQueue: return "io_queue";
    case SlowStage::kIoExec: return "io_exec";
    case SlowStage::kIoComplete: return "io_complete";
  }
  return "?";
}

enum class SlowOpKind : uint8_t {
  kRead = 0,
  kUpsert = 1,
  kRmw = 2,
  kDelete = 3,
};

inline const char* SlowOpKindName(SlowOpKind kind) {
  switch (kind) {
    case SlowOpKind::kRead: return "read";
    case SlowOpKind::kUpsert: return "upsert";
    case SlowOpKind::kRmw: return "rmw";
    case SlowOpKind::kDelete: return "delete";
  }
  return "?";
}

/// The concurrent slow-op ring.
class SlowLog {
 public:
  static constexpr uint32_t kCapacity = 128;
  /// Threshold value meaning "disabled" (the default: zero hot-path cost
  /// beyond one relaxed load per operation in stats builds).
  static constexpr uint64_t kDisabled = UINT64_MAX;

  struct Entry {
    uint64_t id;          // monotone, 0-based since process start
    uint64_t wall_ns;     // CLOCK_REALTIME at record time
    uint64_t key_hash;
    uint64_t total_ns;
    uint64_t stage_ns[kNumSlowStages];
    SlowOpKind kind;
    bool pending;         // crossed the async I/O boundary
    uint32_t tid;
  };

  void set_threshold_ns(uint64_t ns) {
    threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t threshold_ns() const {
    return threshold_ns_.load(std::memory_order_relaxed);
  }
  /// The per-operation hot-path gate.
  bool armed() const { return threshold_ns() != kDisabled; }

  /// Appends an entry if `total_ns` crosses the threshold. Concurrent and
  /// lock-free (one fetch_add + relaxed stores + one release store).
  void MaybeRecord(SlowOpKind kind, uint64_t key_hash, uint64_t total_ns,
                   const uint64_t stage_ns[kNumSlowStages], bool pending,
                   uint32_t tid);

  /// SLOWLOG RESET: forgets current entries (ids keep growing).
  void Reset();
  /// SLOWLOG LEN: entries currently held.
  uint64_t Len() const;
  /// Entries ever recorded (monotone; next entry id).
  uint64_t TotalRecorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Copies current entries, newest first (Redis order). Entries being
  /// overwritten concurrently are skipped.
  std::vector<Entry> Snapshot(uint64_t max_entries = kCapacity) const;

  /// /debug/slowlog body.
  std::string Json() const;

  /// Async-signal-safe raw read for the flight recorder: copies the entry
  /// at ring sequence `seq` if committed (relaxed loads, torn-tolerant).
  bool ReadEntryRaw(uint64_t seq, Entry* out) const;
  /// Async-signal-safe: next ring sequence (exclusive end).
  uint64_t RawEnd() const { return next_.load(std::memory_order_relaxed); }
  /// Async-signal-safe: first sequence still visible.
  uint64_t RawBegin() const {
    uint64_t end = RawEnd();
    uint64_t floor = reset_floor_.load(std::memory_order_relaxed);
    uint64_t lo = end > kCapacity ? end - kCapacity : 0;
    return floor > lo ? floor : lo;
  }

 private:
  struct Slot {
    // order: release store of seq+1 publishes the relaxed fields below;
    // acquire loads in Snapshot pair with it. Relaxed loads in the
    // crash-dump path (torn-tolerant).
    std::atomic<uint64_t> commit{0};
    // order: relaxed; published by `commit`.
    std::atomic<uint64_t> wall_ns{0};
    // order: relaxed; published by `commit`.
    std::atomic<uint64_t> key_hash{0};
    // order: relaxed; published by `commit`.
    std::atomic<uint64_t> total_ns{0};
    // order: relaxed; published by `commit`.
    std::atomic<uint64_t> stage_ns[kNumSlowStages] = {};
    // order: relaxed; published by `commit`. Packs kind | pending<<8 |
    // tid<<16.
    std::atomic<uint64_t> meta{0};
  };

  // order: relaxed; the per-op armed()/threshold gate needs no ordering.
  std::atomic<uint64_t> threshold_ns_{kDisabled};
  // order: relaxed fetch_add claims a slot and mints the entry id; slot
  // contents are published by each slot's commit tag, not by this counter.
  std::atomic<uint64_t> next_{0};
  // order: relaxed; Reset lazily hides entries below the floor.
  std::atomic<uint64_t> reset_floor_{0};
  Slot slots_[kCapacity];
};

/// Global instance used by the store, server, exporter, and flight
/// recorder.
SlowLog& GlobalSlowLog();

/// Ambient per-thread state for the operation currently executing
/// synchronously, written by SlowOpScope / the batch stage-3 loop and
/// captured into the PendingContext if the op goes asynchronous.
struct SlowOpState {
  uint64_t start_ns = 0;    // start of this op's execute segment
  uint64_t hash_ns = 0;     // amortized batch stage-1 share (0 single-op)
  uint64_t resolve_ns = 0;  // amortized batch stage-2 share (0 single-op)
  uint64_t key_hash = 0;
  SlowOpKind kind = SlowOpKind::kRead;
  bool transferred = false;  // a pending context took ownership
};

inline SlowOpState*& CurrentSlowOp() {
  thread_local SlowOpState* current = nullptr;
  return current;
}

/// Slow-op attribution carried by a PendingContext across the async I/O
/// hop. Plain fields: the context moves between threads under the
/// existing completion-queue mutex hand-off. `start_ns == 0` means the
/// op is not tracked (slowlog disarmed at issue time).
struct PendingSlowOp {
  uint64_t start_ns = 0;
  uint64_t key_hash = 0;
  SlowOpKind kind = SlowOpKind::kRead;
  uint64_t hash_ns = 0;
  uint64_t resolve_ns = 0;
  uint64_t execute_ns = 0;
  uint64_t io_queue_ns = 0;
  uint64_t io_exec_ns = 0;
  uint64_t io_complete_ns = 0;
  /// Start of the current wait window on the owner side: issue time, then
  /// overwritten by each I/O completion callback. FinishPending and
  /// re-issues fold `now - callback_ns` into io_complete_ns, so the three
  /// I/O stages partition the whole pending window.
  uint64_t callback_ns = 0;
};

/// Captures the ambient SlowOpState (if any, and if the slowlog is armed)
/// into `out` at the moment an op goes asynchronous; the synchronous
/// scope then skips its own exit-time record.
inline void CaptureSlowOp(PendingSlowOp* out) {
  SlowOpState* current = CurrentSlowOp();
  if (current == nullptr) return;
  uint64_t now = NowNs();
  out->start_ns = current->start_ns;
  out->key_hash = current->key_hash;
  out->kind = current->kind;
  out->hash_ns = current->hash_ns;
  out->resolve_ns = current->resolve_ns;
  out->execute_ns = now - current->start_ns;
  out->callback_ns = now;
  current->transferred = true;
}

/// Records a completed pending op (owner thread, at CompletePending /
/// retry completion). Folds the final wait window into io_complete.
inline void RecordSlowPending(PendingSlowOp* slow, uint64_t now) {
  if (slow->start_ns == 0) return;
  if (slow->callback_ns != 0 && now > slow->callback_ns) {
    slow->io_complete_ns += now - slow->callback_ns;
  }
  uint64_t stages[kNumSlowStages] = {slow->hash_ns,     slow->resolve_ns,
                                     slow->execute_ns,  slow->io_queue_ns,
                                     slow->io_exec_ns,  slow->io_complete_ns};
  uint64_t total = 0;
  for (uint64_t s : stages) total += s;
  GlobalSlowLog().MaybeRecord(slow->kind, slow->key_hash, total,
                              stages, /*pending=*/true, Thread::Id());
  slow->start_ns = 0;
}

/// I/O-stage attribution published by whichever component is about to run
/// a device completion callback on this thread — the IoThreadPool worker
/// loop, the IoQueuePair polling executor, or the io_uring reaper — and
/// read by the store's I/O completion callback running inside it. On the
/// polling paths both fields describe the op as seen by the *polling*
/// thread: queue_ns is submit -> execution pickup (0 under io_uring,
/// where the kernel window is all exec), exec_start_ns anchors the
/// io_exec stage ending when the callback runs.
struct IoStageInfo {
  uint64_t queue_ns = 0;       // submit -> execution pickup
  uint64_t exec_start_ns = 0;  // pickup time; 0 = no device op in flight
};

inline IoStageInfo& CurrentIoStage() {
  thread_local IoStageInfo info;
  return info;
}

/// RAII scope for a single (non-batched) store operation: arms the
/// ambient SlowOpState and records an entry at exit unless the op went
/// asynchronous (transferred) or the slowlog is disarmed.
class SlowOpScope {
 public:
  explicit SlowOpScope(SlowOpKind kind) {
    if (!GlobalSlowLog().armed()) return;
    active_ = true;
    state_.kind = kind;
    state_.start_ns = NowNs();
    saved_ = CurrentSlowOp();
    CurrentSlowOp() = &state_;
  }

  SlowOpScope(const SlowOpScope&) = delete;
  SlowOpScope& operator=(const SlowOpScope&) = delete;

  void set_key_hash(uint64_t key_hash) {
    if (active_) state_.key_hash = key_hash;
  }

  ~SlowOpScope() {
    if (!active_) return;
    CurrentSlowOp() = saved_;
    if (state_.transferred) return;
    uint64_t execute = NowNs() - state_.start_ns;
    uint64_t stages[kNumSlowStages] = {state_.hash_ns, state_.resolve_ns,
                                       execute,        0,
                                       0,              0};
    GlobalSlowLog().MaybeRecord(
        state_.kind, state_.key_hash,
        state_.hash_ns + state_.resolve_ns + execute, stages,
        /*pending=*/false, Thread::Id());
  }

 private:
  bool active_ = false;
  SlowOpState state_;
  SlowOpState* saved_ = nullptr;
};

/// No-op twin for stats-off builds.
class NoopSlowOpScope {
 public:
  explicit NoopSlowOpScope(SlowOpKind) {}
  void set_key_hash(uint64_t) {}
};

#if FASTER_STATS_ENABLED
using StatSlowOpScope = SlowOpScope;
#else
using StatSlowOpScope = NoopSlowOpScope;
#endif

}  // namespace obs
}  // namespace faster

#endif  // FASTER_OBS_SLOWLOG_H_
