#ifndef FASTER_OBS_TRACE_H_
#define FASTER_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/stats.h"

namespace faster {
namespace obs {

/// Event kinds emitted by the store (kept small: one ring slot is 16 bytes).
enum class Ev : uint16_t {
  kNone = 0,
  kPendingIoIssued,    // arg = owner thread id
  kPendingIoDone,      // arg = owner thread id
  kFuzzyRmwDeferred,   // arg = owner thread id
  kPageClosed,         // arg = page number
  kFlushIssued,        // arg = bytes
  kCheckpointBegin,    // arg = 0
  kCheckpointEnd,      // arg = 0 ok / 1 error
  kGrowBegin,          // arg = old table size (log2)
  kGrowEnd,            // arg = new table size (log2)
};

inline const char* EvName(Ev e) {
  switch (e) {
    case Ev::kNone: return "none";
    case Ev::kPendingIoIssued: return "pending_io_issued";
    case Ev::kPendingIoDone: return "pending_io_done";
    case Ev::kFuzzyRmwDeferred: return "fuzzy_rmw_deferred";
    case Ev::kPageClosed: return "page_closed";
    case Ev::kFlushIssued: return "flush_issued";
    case Ev::kCheckpointBegin: return "checkpoint_begin";
    case Ev::kCheckpointEnd: return "checkpoint_end";
    case Ev::kGrowBegin: return "grow_begin";
    case Ev::kGrowEnd: return "grow_end";
  }
  return "unknown";
}

struct TraceEvent {
  uint64_t ns;
  uint32_t arg;
  uint16_t id;
  uint16_t tid;
};

/// Lightweight per-thread event-trace ring: each thread slot owns a small
/// circular buffer of recent events, written with relaxed stores on
/// thread-private lines (same sharding discipline as obs::Counter).
/// `Snapshot()` is best-effort: a concurrently written slot may surface a
/// torn (ns, id, arg) triple from two different events — acceptable for a
/// diagnostic trace, and each field read is atomic so there is no UB.
class EventRing {
 public:
  static constexpr uint32_t kEventsPerThread = 256;

  EventRing() : shards_{new Shard[Thread::kMaxThreads]} {}
  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  void Emit(Ev id, uint32_t arg = 0) {
    Shard& shard = shards_[Thread::Id()];
    uint64_t pos = shard.next.load(std::memory_order_relaxed);
    Slot& slot = shard.slots[pos % kEventsPerThread];
    slot.ns.store(NowNs(), std::memory_order_relaxed);
    slot.arg.store(arg, std::memory_order_relaxed);
    slot.id.store(static_cast<uint16_t>(id), std::memory_order_relaxed);
    shard.next.store(pos + 1, std::memory_order_relaxed);
  }

  /// Raw accessors for the flight recorder: no allocation, relaxed loads
  /// only, safe to call from a signal handler.
  uint64_t ShardNext(uint32_t tid) const {
    return shards_[tid].next.load(std::memory_order_relaxed);
  }
  TraceEvent ReadEvent(uint32_t tid, uint64_t pos) const {
    const Slot& slot = shards_[tid].slots[pos % kEventsPerThread];
    TraceEvent e;
    e.ns = slot.ns.load(std::memory_order_relaxed);
    e.arg = slot.arg.load(std::memory_order_relaxed);
    e.id = slot.id.load(std::memory_order_relaxed);
    e.tid = static_cast<uint16_t>(tid);
    return e;
  }

  /// Copies out every recorded event (all threads), oldest-first per
  /// thread, then sorted by timestamp across threads.
  std::vector<TraceEvent> Snapshot() const {
    std::vector<TraceEvent> events;
    for (uint32_t t = 0; t < Thread::kMaxThreads; ++t) {
      uint64_t next = ShardNext(t);
      uint64_t count = next < kEventsPerThread ? next : kEventsPerThread;
      for (uint64_t i = next - count; i < next; ++i) {
        TraceEvent e = ReadEvent(t, i);
        if (e.id != static_cast<uint16_t>(Ev::kNone)) events.push_back(e);
      }
    }
    // Insertion sort by timestamp (rings are small).
    for (size_t i = 1; i < events.size(); ++i) {
      TraceEvent e = events[i];
      size_t j = i;
      while (j > 0 && e.ns < events[j - 1].ns) {
        events[j] = events[j - 1];
        --j;
      }
      events[j] = e;
    }
    return events;
  }

 private:
  struct Slot {
    // order: relaxed stores/loads — best-effort trace ring; a snapshot
    // racing a writer may see a torn event, which is acceptable here.
    std::atomic<uint64_t> ns{0};
    // order: relaxed stores/loads — see `ns`.
    std::atomic<uint32_t> arg{0};
    // order: relaxed stores/loads — see `ns`.
    std::atomic<uint16_t> id{0};
  };
  struct alignas(64) Shard {
    // order: relaxed load/store — single-writer ring position; snapshot
    // readers tolerate the race (best-effort ring).
    std::atomic<uint64_t> next{0};
    Slot slots[kEventsPerThread];
  };
  std::unique_ptr<Shard[]> shards_;
};

class NoopEventRing {
 public:
  void Emit(Ev, uint32_t = 0) {}
  uint64_t ShardNext(uint32_t) const { return 0; }
  TraceEvent ReadEvent(uint32_t, uint64_t) const { return TraceEvent{}; }
  std::vector<TraceEvent> Snapshot() const { return {}; }
};

#if FASTER_STATS_ENABLED
using StatEventRing = EventRing;
#else
using StatEventRing = NoopEventRing;
#endif

}  // namespace obs
}  // namespace faster

#endif  // FASTER_OBS_TRACE_H_
