#include "obs/slowlog.h"

#include <time.h>

#include <cinttypes>
#include <cstdio>

namespace faster {
namespace obs {

namespace {

uint64_t WallNs() {
  timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

void SlowLog::MaybeRecord(SlowOpKind kind, uint64_t key_hash,
                          uint64_t total_ns,
                          const uint64_t stage_ns[kNumSlowStages],
                          bool pending, uint32_t tid) {
  uint64_t threshold = threshold_ns_.load(std::memory_order_relaxed);
  if (threshold == kDisabled || total_ns < threshold) return;
  uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % kCapacity];
  slot.wall_ns.store(WallNs(), std::memory_order_relaxed);
  slot.key_hash.store(key_hash, std::memory_order_relaxed);
  slot.total_ns.store(total_ns, std::memory_order_relaxed);
  for (uint32_t i = 0; i < kNumSlowStages; ++i) {
    slot.stage_ns[i].store(stage_ns[i], std::memory_order_relaxed);
  }
  slot.meta.store(static_cast<uint64_t>(kind) |
                      (pending ? (uint64_t{1} << 8) : 0) |
                      (static_cast<uint64_t>(tid) << 16),
                  std::memory_order_relaxed);
  slot.commit.store(seq + 1, std::memory_order_release);
}

void SlowLog::Reset() {
  reset_floor_.store(next_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

uint64_t SlowLog::Len() const {
  uint64_t end = next_.load(std::memory_order_relaxed);
  uint64_t lo = end > kCapacity ? end - kCapacity : 0;
  uint64_t floor = reset_floor_.load(std::memory_order_relaxed);
  if (floor > lo) lo = floor;
  return end - lo;
}

std::vector<SlowLog::Entry> SlowLog::Snapshot(uint64_t max_entries) const {
  uint64_t end = next_.load(std::memory_order_relaxed);
  uint64_t lo = end > kCapacity ? end - kCapacity : 0;
  uint64_t floor = reset_floor_.load(std::memory_order_relaxed);
  if (floor > lo) lo = floor;
  std::vector<Entry> out;
  out.reserve(static_cast<size_t>(end - lo));
  for (uint64_t seq = end; seq > lo && out.size() < max_entries; --seq) {
    const Slot& slot = slots_[(seq - 1) % kCapacity];
    // Acquire pairs with the writer's release commit; a mismatched tag
    // means the slot is mid-overwrite by a newer entry — skip it.
    if (slot.commit.load(std::memory_order_acquire) != seq) continue;
    Entry e;
    e.id = seq - 1;
    e.wall_ns = slot.wall_ns.load(std::memory_order_relaxed);
    e.key_hash = slot.key_hash.load(std::memory_order_relaxed);
    e.total_ns = slot.total_ns.load(std::memory_order_relaxed);
    for (uint32_t i = 0; i < kNumSlowStages; ++i) {
      e.stage_ns[i] = slot.stage_ns[i].load(std::memory_order_relaxed);
    }
    uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    e.kind = static_cast<SlowOpKind>(meta & 0xff);
    e.pending = ((meta >> 8) & 0xff) != 0;
    e.tid = static_cast<uint32_t>(meta >> 16);
    out.push_back(e);
  }
  return out;
}

bool SlowLog::ReadEntryRaw(uint64_t seq, Entry* out) const {
  const Slot& slot = slots_[seq % kCapacity];
  if (slot.commit.load(std::memory_order_relaxed) != seq + 1) return false;
  out->id = seq;
  out->wall_ns = slot.wall_ns.load(std::memory_order_relaxed);
  out->key_hash = slot.key_hash.load(std::memory_order_relaxed);
  out->total_ns = slot.total_ns.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < kNumSlowStages; ++i) {
    out->stage_ns[i] = slot.stage_ns[i].load(std::memory_order_relaxed);
  }
  uint64_t meta = slot.meta.load(std::memory_order_relaxed);
  out->kind = static_cast<SlowOpKind>(meta & 0xff);
  out->pending = ((meta >> 8) & 0xff) != 0;
  out->tid = static_cast<uint32_t>(meta >> 16);
  return true;
}

std::string SlowLog::Json() const {
  std::vector<Entry> entries = Snapshot();
  std::string out;
  out.reserve(256 + entries.size() * 256);
  char buf[256];
  std::string threshold = armed() ? std::to_string(threshold_ns()) : "null";
  std::snprintf(buf, sizeof(buf),
                "{\"threshold_ns\":%s,\"len\":%" PRIu64
                ",\"total_recorded\":%" PRIu64 ",\"entries\":[",
                threshold.c_str(), Len(), TotalRecorded());
  out.append(buf);
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    if (i != 0) out.push_back(',');
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":%" PRIu64 ",\"wall_ns\":%" PRIu64
                  ",\"op\":\"%s\",\"key_hash\":\"%016" PRIx64
                  "\",\"total_ns\":%" PRIu64 ",\"pending\":%s,\"tid\":%u,"
                  "\"stages_ns\":{",
                  e.id, e.wall_ns, SlowOpKindName(e.kind), e.key_hash,
                  e.total_ns, e.pending ? "true" : "false", e.tid);
    out.append(buf);
    for (uint32_t s = 0; s < kNumSlowStages; ++s) {
      std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, s != 0 ? "," : "",
                    SlowStageName(static_cast<SlowStage>(s)), e.stage_ns[s]);
      out.append(buf);
    }
    out.append("}}");
  }
  out.append("]}");
  return out;
}

SlowLog& GlobalSlowLog() {
  static SlowLog slowlog;
  return slowlog;
}

}  // namespace obs
}  // namespace faster
