#ifndef FASTER_OBS_STATS_H_
#define FASTER_OBS_STATS_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/thread.h"

/// Per-thread sharded statistics (the observability layer).
///
/// The design mirrors the epoch table (epoch.h): every metric keeps one
/// cache-line-aligned shard per `Thread::id()` slot, so a hot-path update
/// is a relaxed load/store (or relaxed RMW for gauges) on a line no other
/// thread writes — zero sharing, no contention, TSan-clean. Aggregation
/// (`Sum()`, `Percentile()`) sums the shards with relaxed loads; a
/// concurrent reader sees a slightly stale but never torn view, and after
/// all writers have joined the totals are exact. Slot reuse is safe: the
/// `Thread` registry releases a slot with a release store and re-acquires
/// it with an acquire CAS, so a new tenant's first increment happens-after
/// the previous tenant's last one.
///
/// Compile-out: instrumentation sites use the `Stat*` aliases below, which
/// resolve to the real types only when built with -DFASTER_STATS=ON (the
/// `FASTER_STATS` preprocessor define). Otherwise they resolve to empty
/// no-op types whose inline members compile to nothing, so the default
/// build carries no counters, no clock reads, and no extra atomic loads
/// (sites that need auxiliary loads guard them with
/// `if constexpr (obs::kStatsEnabled)`). The real types stay compiled in
/// every configuration so tests can exercise them directly.

#if defined(FASTER_STATS) && FASTER_STATS
#define FASTER_STATS_ENABLED 1
#else
#define FASTER_STATS_ENABLED 0
#endif

namespace faster {
namespace obs {

inline constexpr bool kStatsEnabled = (FASTER_STATS_ENABLED != 0);

/// Monotonic wall time in nanoseconds (scoped timers, I/O latency).
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Real metric types (always compiled; selected by the Stat* aliases when
// FASTER_STATS is on, and usable directly by tests in any build).
// ---------------------------------------------------------------------------

/// Monotonic event counter. Increments are owner-shard-only relaxed
/// load+store (never an RMW): only the calling thread writes its slot's
/// shard, so plain stores cannot lose updates.
class Counter {
 public:
  Counter() : shards_{new Shard[Thread::kMaxThreads]} {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) {
    std::atomic<uint64_t>& c = shards_[Thread::Id()].value;
    c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }

  uint64_t Sum() const {
    uint64_t total = 0;
    for (uint32_t i = 0; i < Thread::kMaxThreads; ++i) {
      total += shards_[i].value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    // order: relaxed fetch_add/load — statistics; no data is published
    // through the counter.
    std::atomic<uint64_t> value{0};
  };
  std::unique_ptr<Shard[]> shards_;
};

/// Up/down instantaneous value (queue depths, in-flight operations).
/// Updates are relaxed fetch_add on the *calling* thread's shard, so an
/// increment on one thread may be balanced by a decrement on another
/// (e.g. I/O submitted by a worker, completed on a pool thread) while the
/// cross-shard sum stays exact.
class Gauge {
 public:
  Gauge() : shards_{new Shard[Thread::kMaxThreads]} {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Add(int64_t d) {
    shards_[Thread::Id()].value.fetch_add(d, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }
  void Dec() { Add(-1); }

  int64_t Value() const {
    int64_t total = 0;
    for (uint32_t i = 0; i < Thread::kMaxThreads; ++i) {
      total += shards_[i].value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    // order: relaxed fetch_add/load — statistics; no data is published
    // through the gauge.
    std::atomic<int64_t> value{0};
  };
  std::unique_ptr<Shard[]> shards_;
};

/// Fixed-bucket log2 histogram: bucket 0 holds the value 0, bucket b
/// (1 <= b <= 62) holds [2^(b-1), 2^b), bucket 63 holds everything above.
/// Recording is an owner-shard-only relaxed load+store, like Counter.
class Histogram {
 public:
  static constexpr uint32_t kNumBuckets = 64;

  Histogram() : shards_{new Shard[Thread::kMaxThreads]} {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static constexpr uint32_t BucketFor(uint64_t v) {
    if (v == 0) return 0;
    uint32_t width = static_cast<uint32_t>(std::bit_width(v));
    return width > kNumBuckets - 1 ? kNumBuckets - 1 : width;
  }

  /// Largest value a bucket can hold (UINT64_MAX for the overflow bucket).
  static constexpr uint64_t BucketUpperBound(uint32_t b) {
    if (b == 0) return 0;
    if (b >= kNumBuckets - 1) return UINT64_MAX;
    return (uint64_t{1} << b) - 1;
  }

  void Record(uint64_t v) {
    Shard& shard = shards_[Thread::Id()];
    std::atomic<uint64_t>& c = shard.buckets[BucketFor(v)];
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    shard.sum.store(shard.sum.load(std::memory_order_relaxed) + v,
                    std::memory_order_relaxed);
  }

  /// Sum of every recorded value (exact, unlike the log2 buckets) — the
  /// Prometheus `_sum` series.
  uint64_t ValueSum() const {
    uint64_t total = 0;
    for (uint32_t i = 0; i < Thread::kMaxThreads; ++i) {
      total += shards_[i].sum.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Sums per-thread shards into `out[kNumBuckets]`.
  void SnapshotBuckets(uint64_t* out) const {
    for (uint32_t b = 0; b < kNumBuckets; ++b) out[b] = 0;
    for (uint32_t i = 0; i < Thread::kMaxThreads; ++i) {
      for (uint32_t b = 0; b < kNumBuckets; ++b) {
        out[b] += shards_[i].buckets[b].load(std::memory_order_relaxed);
      }
    }
  }

  uint64_t Count() const {
    uint64_t buckets[kNumBuckets];
    SnapshotBuckets(buckets);
    uint64_t total = 0;
    for (uint32_t b = 0; b < kNumBuckets; ++b) total += buckets[b];
    return total;
  }

  /// Upper bound of the bucket containing the q-quantile (0 < q <= 1);
  /// 0 when the histogram is empty. A log2 histogram bounds the true
  /// quantile to within 2x, which is the resolution the paper's latency
  /// discussions need.
  uint64_t Percentile(double q) const {
    uint64_t buckets[kNumBuckets];
    SnapshotBuckets(buckets);
    uint64_t total = 0;
    for (uint32_t b = 0; b < kNumBuckets; ++b) total += buckets[b];
    if (total == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
    if (target < 1) target = 1;
    if (target > total) target = total;
    uint64_t cumulative = 0;
    for (uint32_t b = 0; b < kNumBuckets; ++b) {
      cumulative += buckets[b];
      if (cumulative >= target) return BucketUpperBound(b);
    }
    return BucketUpperBound(kNumBuckets - 1);
  }

 private:
  struct alignas(64) Shard {
    // order: relaxed fetch_add/load — statistics; no data is published
    // through the histogram.
    std::atomic<uint64_t> buckets[kNumBuckets] = {};
    // order: relaxed load+store by the owner thread, relaxed load in
    // ValueSum — same discipline as `buckets`.
    std::atomic<uint64_t> sum{0};
  };
  std::unique_ptr<Shard[]> shards_;
};

/// Aggregates named metrics into text or JSON exposition. Non-owning: the
/// registry holds pointers and reads the live metrics at Dump time, so it
/// can be built on demand (DumpStats) over long-lived component metrics.
class Registry {
 public:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram, kValue };

  void Add(std::string name, const Counter* c) {
    entries_.push_back({std::move(name), Kind::kCounter, c, nullptr, nullptr, 0});
  }
  void Add(std::string name, const Gauge* g) {
    entries_.push_back({std::move(name), Kind::kGauge, nullptr, g, nullptr, 0});
  }
  void Add(std::string name, const Histogram* h) {
    entries_.push_back({std::move(name), Kind::kHistogram, nullptr, nullptr, h, 0});
  }
  /// A precomputed scalar (for values maintained outside obs::, e.g. the
  /// store's legacy per-thread operation tallies).
  void AddValue(std::string name, uint64_t v) {
    entries_.push_back({std::move(name), Kind::kValue, nullptr, nullptr, nullptr, v});
  }

  size_t size() const { return entries_.size(); }

  /// Visits every entry as fn(name, kind, counter, gauge, histogram,
  /// value); exactly one of the three pointers is non-null except for
  /// kValue entries, where all are null. The flight recorder uses this to
  /// copy metric pointers into its pre-registered (signal-safe) slots.
  template <class Fn>
  void ForEach(Fn&& fn) const {
    for (const Entry& e : entries_) {
      fn(e.name, e.kind, e.counter, e.gauge, e.histogram, e.value);
    }
  }

  /// One metric per line: `name<spaces>value` for scalars,
  /// `name count=N p50=X p99=Y p999=Z` for histograms.
  std::string Text() const {
    std::string out;
    for (const Entry& e : Sorted()) {
      out += e.name;
      size_t pad = e.name.size() < 44 ? 44 - e.name.size() : 1;
      out.append(pad, ' ');
      switch (e.kind) {
        case Kind::kCounter:
          out += std::to_string(e.counter->Sum());
          break;
        case Kind::kGauge:
          out += std::to_string(e.gauge->Value());
          break;
        case Kind::kValue:
          out += std::to_string(e.value);
          break;
        case Kind::kHistogram: {
          out += "count=" + std::to_string(e.histogram->Count());
          out += " p50=" + std::to_string(e.histogram->Percentile(0.50));
          out += " p99=" + std::to_string(e.histogram->Percentile(0.99));
          out += " p999=" + std::to_string(e.histogram->Percentile(0.999));
          // Raw bucket data too, so offline tooling can re-aggregate
          // across runs instead of trusting derived percentiles.
          out += " sum=" + std::to_string(e.histogram->ValueSum());
          uint64_t buckets[Histogram::kNumBuckets];
          e.histogram->SnapshotBuckets(buckets);
          out += " buckets=";
          bool bfirst = true;
          for (uint32_t b = 0; b < Histogram::kNumBuckets; ++b) {
            if (buckets[b] == 0) continue;
            if (!bfirst) out += ',';
            bfirst = false;
            out += std::to_string(Histogram::BucketUpperBound(b)) + ':' +
                   std::to_string(buckets[b]);
          }
          if (bfirst) out += '-';
          break;
        }
      }
      out += '\n';
    }
    return out;
  }

  /// {"counters":{...},"gauges":{...},"histograms":{name:{"count":..,
  /// "p50":..,"p99":..,"p999":..,"buckets":[[upper,count],...]}}}
  /// Scalar AddValue entries are emitted alongside counters.
  std::string Json() const {
    std::vector<Entry> sorted = Sorted();
    std::string out = "{";
    out += "\"counters\":{";
    bool first = true;
    for (const Entry& e : sorted) {
      if (e.kind == Kind::kCounter || e.kind == Kind::kValue) {
        if (!first) out += ',';
        first = false;
        uint64_t v = e.kind == Kind::kCounter ? e.counter->Sum() : e.value;
        out += '"' + e.name + "\":" + std::to_string(v);
      }
    }
    out += "},\"gauges\":{";
    first = true;
    for (const Entry& e : sorted) {
      if (e.kind == Kind::kGauge) {
        if (!first) out += ',';
        first = false;
        out += '"' + e.name + "\":" + std::to_string(e.gauge->Value());
      }
    }
    out += "},\"histograms\":{";
    first = true;
    for (const Entry& e : sorted) {
      if (e.kind != Kind::kHistogram) continue;
      if (!first) out += ',';
      first = false;
      uint64_t buckets[Histogram::kNumBuckets];
      e.histogram->SnapshotBuckets(buckets);
      uint64_t count = 0;
      for (uint32_t b = 0; b < Histogram::kNumBuckets; ++b) count += buckets[b];
      out += '"' + e.name + "\":{";
      out += "\"count\":" + std::to_string(count);
      out += ",\"sum\":" + std::to_string(e.histogram->ValueSum());
      out += ",\"p50\":" + std::to_string(e.histogram->Percentile(0.50));
      out += ",\"p99\":" + std::to_string(e.histogram->Percentile(0.99));
      out += ",\"p999\":" + std::to_string(e.histogram->Percentile(0.999));
      out += ",\"buckets\":[";
      bool bfirst = true;
      for (uint32_t b = 0; b < Histogram::kNumBuckets; ++b) {
        if (buckets[b] == 0) continue;
        if (!bfirst) out += ',';
        bfirst = false;
        out += '[' + std::to_string(Histogram::BucketUpperBound(b)) + ',' +
               std::to_string(buckets[b]) + ']';
      }
      out += "]}";
    }
    out += "}}";
    return out;
  }

  /// Prometheus text exposition format 0.0.4. Metric names are prefixed
  /// with `faster_` and sanitized ([^a-zA-Z0-9_] -> '_'); counters and
  /// precomputed scalars get the `_total` suffix, histograms emit
  /// cumulative `_bucket{le="..."}` series (raw log2 bounds, not just
  /// percentiles) plus `_sum` and `_count`.
  std::string Prometheus() const {
    std::string out;
    for (const Entry& e : Sorted()) {
      std::string name = PromName(e.name);
      switch (e.kind) {
        case Kind::kCounter:
        case Kind::kValue: {
          uint64_t v = e.kind == Kind::kCounter ? e.counter->Sum() : e.value;
          out += "# TYPE " + name + "_total counter\n";
          out += name + "_total " + std::to_string(v) + '\n';
          break;
        }
        case Kind::kGauge:
          out += "# TYPE " + name + " gauge\n";
          out += name + ' ' + std::to_string(e.gauge->Value()) + '\n';
          break;
        case Kind::kHistogram: {
          uint64_t buckets[Histogram::kNumBuckets];
          e.histogram->SnapshotBuckets(buckets);
          out += "# TYPE " + name + " histogram\n";
          uint64_t cumulative = 0;
          for (uint32_t b = 0; b + 1 < Histogram::kNumBuckets; ++b) {
            cumulative += buckets[b];
            // Skip empty leading/interior buckets to keep scrapes small;
            // cumulative counts stay correct because they accumulate over
            // skipped buckets too.
            if (buckets[b] == 0) continue;
            out += name + "_bucket{le=\"" +
                   std::to_string(Histogram::BucketUpperBound(b)) + "\"} " +
                   std::to_string(cumulative) + '\n';
          }
          cumulative += buckets[Histogram::kNumBuckets - 1];
          out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
                 '\n';
          out += name + "_sum " + std::to_string(e.histogram->ValueSum()) +
                 '\n';
          out += name + "_count " + std::to_string(cumulative) + '\n';
          break;
        }
      }
    }
    if (out.empty()) out = "# (empty registry)\n";
    return out;
  }

 private:
  static std::string PromName(const std::string& name) {
    std::string out = "faster_";
    for (char c : name) {
      bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_';
      out += ok ? c : '_';
    }
    return out;
  }

  struct Entry {
    std::string name;
    Kind kind;
    const Counter* counter;
    const Gauge* gauge;
    const Histogram* histogram;
    uint64_t value;
  };

  std::vector<Entry> Sorted() const {
    std::vector<Entry> sorted = entries_;
    for (size_t i = 1; i < sorted.size(); ++i) {
      // Insertion sort: registries are small and built per dump.
      Entry e = std::move(sorted[i]);
      size_t j = i;
      while (j > 0 && e.name < sorted[j - 1].name) {
        sorted[j] = std::move(sorted[j - 1]);
        --j;
      }
      sorted[j] = std::move(e);
    }
    return sorted;
  }

  std::vector<Entry> entries_;
};

/// Records the lifetime of a scope into a histogram, in nanoseconds.
/// With stats compiled out no clock is read.
template <class Hist>
class ScopedTimerT {
 public:
  explicit ScopedTimerT(Hist& h) : hist_{h} {
    if constexpr (kStatsEnabled || std::is_same_v<Hist, Histogram>) {
      start_ns_ = NowNs();
    }
  }
  ~ScopedTimerT() {
    if constexpr (kStatsEnabled || std::is_same_v<Hist, Histogram>) {
      hist_.Record(NowNs() - start_ns_);
    }
  }
  ScopedTimerT(const ScopedTimerT&) = delete;
  ScopedTimerT& operator=(const ScopedTimerT&) = delete;

 private:
  Hist& hist_;
  uint64_t start_ns_ = 0;
};

// ---------------------------------------------------------------------------
// No-op twins: identical API, empty bodies. Every member is inline and
// argument-free of side effects, so -O2 erases the call entirely and the
// enclosing object contributes an empty member.
// ---------------------------------------------------------------------------

class NoopCounter {
 public:
  void Add(uint64_t) {}
  void Inc() {}
  uint64_t Sum() const { return 0; }
};

class NoopGauge {
 public:
  void Add(int64_t) {}
  void Inc() {}
  void Dec() {}
  int64_t Value() const { return 0; }
};

class NoopHistogram {
 public:
  static constexpr uint32_t kNumBuckets = Histogram::kNumBuckets;
  void Record(uint64_t) {}
  void SnapshotBuckets(uint64_t* out) const {
    for (uint32_t b = 0; b < kNumBuckets; ++b) out[b] = 0;
  }
  uint64_t Count() const { return 0; }
  uint64_t ValueSum() const { return 0; }
  uint64_t Percentile(double) const { return 0; }
};

class NoopRegistry {
 public:
  using Kind = Registry::Kind;
  template <class T>
  void Add(const std::string&, const T*) {}
  void AddValue(const std::string&, uint64_t) {}
  size_t size() const { return 0; }
  template <class Fn>
  void ForEach(Fn&&) const {}
  std::string Text() const {
    return "(stats compiled out; rebuild with -DFASTER_STATS=ON)\n";
  }
  std::string Json() const { return "{}"; }
  std::string Prometheus() const {
    // A bare comment is still valid Prometheus text exposition.
    return "# faster stats compiled out; rebuild with -DFASTER_STATS=ON\n";
  }
};

// ---------------------------------------------------------------------------
// Selected aliases: what instrumentation sites use.
// ---------------------------------------------------------------------------

#if FASTER_STATS_ENABLED
using StatCounter = Counter;
using StatGauge = Gauge;
using StatHistogram = Histogram;
using StatRegistry = Registry;
#else
using StatCounter = NoopCounter;
using StatGauge = NoopGauge;
using StatHistogram = NoopHistogram;
using StatRegistry = NoopRegistry;
#endif

using StatTimer = ScopedTimerT<StatHistogram>;

}  // namespace obs
}  // namespace faster

#endif  // FASTER_OBS_STATS_H_
