#include "obs/log.h"

#include <time.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace faster {
namespace obs {

namespace {

uint64_t WallNs() {
  timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

size_t AppendStr(char* buf, size_t cap, size_t at, const char* s) {
  while (*s != '\0' && at < cap) buf[at++] = *s++;
  return at;
}

/// Appends `s` with JSON string escaping (quotes not included).
void AppendJsonEscaped(std::string* out, const char* s, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    char c = s[i];
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out->append(esc);
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

bool ParseLogLevel(const char* s, LogLevel* out) {
  if (s == nullptr) return false;
  if (std::strcmp(s, "debug") == 0) *out = LogLevel::kDebug;
  else if (std::strcmp(s, "info") == 0) *out = LogLevel::kInfo;
  else if (std::strcmp(s, "warn") == 0) *out = LogLevel::kWarn;
  else if (std::strcmp(s, "error") == 0) *out = LogLevel::kError;
  else if (std::strcmp(s, "off") == 0) *out = LogLevel::kOff;
  else return false;
  return true;
}

size_t LogField::Render(char* buf, size_t cap) const {
  size_t at = 0;
  if (at < cap) buf[at++] = ' ';
  at = AppendStr(buf, cap, at, key_);
  if (at < cap) buf[at++] = '=';
  char val[64];
  switch (type_) {
    case kU64:
      std::snprintf(val, sizeof(val), "%llu",
                    static_cast<unsigned long long>(u64_));
      at = AppendStr(buf, cap, at, val);
      break;
    case kI64:
      std::snprintf(val, sizeof(val), "%lld", static_cast<long long>(i64_));
      at = AppendStr(buf, cap, at, val);
      break;
    case kF64:
      std::snprintf(val, sizeof(val), "%.3f", f64_);
      at = AppendStr(buf, cap, at, val);
      break;
    case kBool:
      at = AppendStr(buf, cap, at, u64_ != 0 ? "true" : "false");
      break;
    case kStr:
      at = AppendStr(buf, cap, at, str_);
      break;
  }
  return at;
}

bool LogRing::ReadEntryRaw(uint32_t tid, uint64_t seq, Record* out) const {
  const Entry& e = shards_[tid].entries[seq % kEntriesPerThread];
  if (e.commit.load(std::memory_order_relaxed) != seq + 1) return false;
  out->wall_ns = e.wall_ns;
  out->tid = e.tid;
  out->level = e.level;
  uint16_t len = e.len;
  if (len > kTextSize) len = kTextSize;
  out->len = len;
  std::memcpy(out->text, e.text, len);
  return true;
}

uint64_t LogRing::CommittedEnd(uint32_t tid) const {
  const Shard& s = shards_[tid];
  uint64_t end = 0;
  for (uint32_t i = 0; i < kEntriesPerThread; ++i) {
    uint64_t c = s.entries[i].commit.load(std::memory_order_relaxed);
    if (c > end) end = c;
  }
  return end;
}

Logger& Logger::Global() {
  static Logger logger;
  static std::once_flag env_once;
  std::call_once(env_once, [] {
    LogLevel level;
    if (ParseLogLevel(std::getenv("FASTER_LOG_LEVEL"), &level)) {
      logger.set_level(level);
    }
    const char* file = std::getenv("FASTER_LOG_FILE");
    if (file != nullptr && file[0] != '\0') logger.OpenFile(file);
    const char* json = std::getenv("FASTER_LOG_JSON");
    if (json != nullptr && json[0] == '1') logger.set_json(true);
  });
  return logger;
}

Logger::Logger() {
  drainer_ = std::thread([this] { DrainerLoop(); });
}

Logger::~Logger() {
  stop_.store(true, std::memory_order_relaxed);
  if (drainer_.joinable()) drainer_.join();
  Flush();
  std::lock_guard<std::mutex> lock{sink_mutex_};
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool Logger::OpenFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  std::lock_guard<std::mutex> lock{sink_mutex_};
  if (file_ != nullptr) std::fclose(file_);
  file_ = f;
  return true;
}

void Logger::Log(LogLevel level, const char* component, const char* message,
                 const LogField* fields, size_t num_fields) {
  uint32_t tid = Thread::Id();
  LogRing::Shard& shard = ring_.shard(tid);
  uint64_t pos = shard.next;
  if (pos - shard.drained.load(std::memory_order_acquire) >=
      LogRing::kEntriesPerThread) {
    shard.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  LogRing::Entry& e = shard.entries[pos % LogRing::kEntriesPerThread];
  e.wall_ns = WallNs();
  e.tid = tid;
  e.level = static_cast<uint8_t>(level);
  size_t at = 0;
  at = AppendStr(e.text, LogRing::kTextSize, at, component);
  at = AppendStr(e.text, LogRing::kTextSize, at, ": ");
  at = AppendStr(e.text, LogRing::kTextSize, at, message);
  for (size_t i = 0; i < num_fields; ++i) {
    at += fields[i].Render(e.text + at, LogRing::kTextSize - at);
    if (at >= LogRing::kTextSize) {
      at = LogRing::kTextSize;
      break;
    }
  }
  e.len = static_cast<uint16_t>(at);
  e.commit.store(pos + 1, std::memory_order_release);
  shard.next = pos + 1;
}

void Logger::EmitEntry(const Record& e, std::string* out) const {
  char head[96];
  time_t secs = static_cast<time_t>(e.wall_ns / 1000000000ull);
  unsigned millis =
      static_cast<unsigned>((e.wall_ns % 1000000000ull) / 1000000ull);
  tm utc;
  gmtime_r(&secs, &utc);
  if (json_.load(std::memory_order_relaxed)) {
    std::snprintf(head, sizeof(head),
                  "{\"ts\":\"%04d-%02d-%02dT%02d:%02d:%02d.%03uZ\","
                  "\"level\":\"%s\",\"tid\":%u,\"msg\":\"",
                  utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday,
                  utc.tm_hour, utc.tm_min, utc.tm_sec, millis,
                  LogLevelName(static_cast<LogLevel>(e.level)), e.tid);
    out->append(head);
    AppendJsonEscaped(out, e.text, e.len);
    out->append("\"}\n");
  } else {
    std::snprintf(head, sizeof(head),
                  "%04d-%02d-%02dT%02d:%02d:%02d.%03uZ %-5s [t%u] ",
                  utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday,
                  utc.tm_hour, utc.tm_min, utc.tm_sec, millis,
                  LogLevelName(static_cast<LogLevel>(e.level)), e.tid);
    out->append(head);
    out->append(e.text, e.len);
    out->push_back('\n');
  }
}

size_t Logger::DrainOnce() {
  std::lock_guard<std::mutex> drain_lock{drain_mutex_};
  // Collect committed entries from every shard, then sort by wall time so
  // interleaved threads read chronologically in the sinks.
  std::vector<Record> batch;
  for (uint32_t tid = 0; tid < LogRing::NumShards(); ++tid) {
    LogRing::Shard& shard = ring_.shard(tid);
    uint64_t pos = shard.drained.load(std::memory_order_relaxed);
    uint64_t consumed = pos;
    while (true) {
      LogRing::Entry& e = shard.entries[pos % LogRing::kEntriesPerThread];
      if (e.commit.load(std::memory_order_acquire) != pos + 1) break;
      batch.emplace_back();
      Record& copy = batch.back();
      copy.wall_ns = e.wall_ns;
      copy.tid = e.tid;
      copy.level = e.level;
      copy.len = std::min<uint16_t>(e.len, LogRing::kTextSize);
      std::memcpy(copy.text, e.text, copy.len);
      ++pos;
    }
    if (pos != consumed) shard.drained.store(pos, std::memory_order_release);
  }
  if (batch.empty()) return 0;
  std::sort(batch.begin(), batch.end(),
            [](const Record& a, const Record& b) {
              return a.wall_ns < b.wall_ns;
            });
  std::string text;
  for (const Record& e : batch) EmitEntry(e, &text);
  {
    std::lock_guard<std::mutex> sink_lock{sink_mutex_};
    if (stderr_.load(std::memory_order_relaxed)) {
      std::fwrite(text.data(), 1, text.size(), stderr);
    }
    if (file_ != nullptr) {
      std::fwrite(text.data(), 1, text.size(), file_);
      std::fflush(file_);
    }
  }
  emitted_.fetch_add(batch.size(), std::memory_order_relaxed);
  return batch.size();
}

void Logger::Flush() { DrainOnce(); }

uint64_t Logger::Dropped() const {
  uint64_t total = 0;
  for (uint32_t tid = 0; tid < LogRing::NumShards(); ++tid) {
    total += ring_.shard(tid).dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void Logger::DrainerLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    DrainOnce();
    // Poll cadence: 20ms keeps the rings far from full at any plausible
    // log rate (64 slots/thread) without waking the CPU noticeably.
    timespec wait{0, 20 * 1000 * 1000};
    nanosleep(&wait, nullptr);
  }
}

}  // namespace obs
}  // namespace faster
