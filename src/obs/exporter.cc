#include "obs/exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace faster {
namespace obs {

namespace {

/// Reads until the end of the request head (CRLFCRLF), EOF, error, or a
/// short timeout; returns what was read. The exporter only needs the
/// request line, but draining the head keeps clients happy.
std::string ReadRequestHead(int fd) {
  std::string req;
  char buf[1024];
  for (int rounds = 0; rounds < 64; ++rounds) {
    struct pollfd pfd{fd, POLLIN, 0};
    int pr = ::poll(&pfd, 1, /*timeout_ms=*/2000);
    if (pr <= 0) break;  // timeout or error: serve what we have
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    req.append(buf, static_cast<size_t>(n));
    if (req.find("\r\n\r\n") != std::string::npos || req.size() > 16384) {
      break;
    }
  }
  return req;
}

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + ' ' + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsExporter::MetricsExporter(const ExporterOptions& options,
                                 Handlers handlers)
    : handlers_{std::move(handlers)} {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, options.backlog) != 0) {
    ::close(fd);
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  thread_ = std::thread([this] { ServeLoop(); });
}

MetricsExporter::~MetricsExporter() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void MetricsExporter::ServeLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    // Poll with a timeout instead of blocking in accept(), so the
    // destructor's stop flag is observed without cross-thread close()
    // races on the listening fd.
    struct pollfd pfd{listen_fd_, POLLIN, 0};
    int pr = ::poll(&pfd, 1, /*timeout_ms=*/250);
    if (pr <= 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    HandleConnection(client);
    ::close(client);
  }
}

void MetricsExporter::HandleConnection(int fd) {
  std::string req = ReadRequestHead(fd);
  // Parse "GET <path> HTTP/1.x" — the only request shape we serve.
  std::string method, path;
  size_t sp1 = req.find(' ');
  if (sp1 != std::string::npos) {
    method = req.substr(0, sp1);
    size_t sp2 = req.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) path = req.substr(sp1 + 1, sp2 - sp1 - 1);
  }
  if (method != "GET") {
    WriteAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                              "only GET is supported\n"));
    return;
  }
  if (path == "/metrics") {
    WriteAll(fd,
             HttpResponse(200, "OK", "text/plain; version=0.0.4",
                          handlers_.metrics ? handlers_.metrics() : "# none\n"));
  } else if (path == "/vars") {
    WriteAll(fd, HttpResponse(200, "OK", "application/json",
                              handlers_.vars ? handlers_.vars() : "{}"));
  } else if (path == "/healthz") {
    WriteAll(fd, HttpResponse(200, "OK", "text/plain", "ok\n"));
  } else if (path == "/") {
    std::string index = "faster exporter: /metrics /vars /healthz";
    for (const Handlers::Route& route : handlers_.routes) {
      index += ' ';
      index += route.path;
    }
    index += '\n';
    WriteAll(fd, HttpResponse(200, "OK", "text/plain", index));
  } else {
    for (const Handlers::Route& route : handlers_.routes) {
      if (path == route.path) {
        WriteAll(fd, HttpResponse(200, "OK", "application/json",
                                  route.handler ? route.handler() : "{}"));
        return;
      }
    }
    WriteAll(fd, HttpResponse(404, "Not Found", "text/plain",
                              "unknown path; see / for the route list\n"));
  }
}

}  // namespace obs
}  // namespace faster
