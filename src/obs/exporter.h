#ifndef FASTER_OBS_EXPORTER_H_
#define FASTER_OBS_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

/// MetricsExporter: a dependency-free blocking HTTP/1.1 endpoint serving
/// live metrics while a store runs (the Prometheus-style "scrape" model).
///
/// Endpoints:
///   /metrics  Prometheus text exposition 0.0.4 (Registry::Prometheus)
///   /vars     JSON exposition (Registry::Json)
///   /healthz  liveness probe ("ok")
///   ...plus any JSON routes the host registers (Handlers::routes) — the
///   server wires /debug/slowlog, /debug/index, /debug/log, /debug/epochs,
///   and /debug/connections this way (DESIGN.md §12).
///
/// One background thread accepts one connection at a time — scrapes are
/// rare (seconds apart) and tiny, so no connection concurrency is needed.
/// Handlers run on the exporter thread; every metric read is a relaxed
/// atomic load on the sharded obs:: types, so scraping never blocks or
/// races store operations (TSan-clean by the same argument as DumpStats).
///
/// The exporter is opt-in plumbing, not part of the store: callers
/// construct one next to a FasterKv and pass handlers that call
/// DumpPrometheus()/DumpStats(true) (see ycsb_cli --export-port).

namespace faster {
namespace obs {

struct ExporterOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (see port()).
  uint16_t port = 9464;  // the conventional Prometheus exporter base port
  /// Bind address. Loopback by default: metrics are diagnostics, not a
  /// public surface.
  std::string bind_address = "127.0.0.1";
  int backlog = 16;
};

class MetricsExporter {
 public:
  struct Handlers {
    std::function<std::string()> metrics;  // -> Prometheus text
    std::function<std::string()> vars;     // -> JSON
    /// Extra GET routes served as application/json and listed on the "/"
    /// index. Fixed at construction (the serving thread reads them
    /// unlocked). Paths must start with '/'.
    struct Route {
      std::string path;
      std::function<std::string()> handler;
    };
    std::vector<Route> routes{};  // default-initialized so the two-member
                                  // aggregate init at existing call sites
                                  // stays warning-clean under -Wextra

    Handlers& AddRoute(std::string path,
                       std::function<std::string()> handler) {
      routes.push_back(Route{std::move(path), std::move(handler)});
      return *this;
    }
  };

  /// Binds and starts the serving thread. Check ok() afterwards: failure
  /// to bind (port taken, bad address) disables the exporter rather than
  /// aborting the host process.
  MetricsExporter(const ExporterOptions& options, Handlers handlers);

  /// Stops the serving thread and closes the socket.
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// True when the listening socket bound successfully.
  bool ok() const { return listen_fd_ >= 0; }

  /// The bound port (resolves an ephemeral request of 0 to the real one).
  uint16_t port() const { return port_; }

 private:
  void ServeLoop();
  void HandleConnection(int fd);

  Handlers handlers_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  // order: relaxed store in the destructor / relaxed load in the serve
  // loop — a stop flag polled every accept timeout; the thread join
  // provides the synchronization.
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace obs
}  // namespace faster

#endif  // FASTER_OBS_EXPORTER_H_
