#include "cache_sim/simulator.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

namespace faster {
namespace {

TEST(CachePolicyTest, FifoEvictsOldest) {
  FifoPolicy fifo{2};
  EXPECT_FALSE(fifo.Access(1));
  EXPECT_FALSE(fifo.Access(2));
  EXPECT_TRUE(fifo.Access(1));   // still resident
  EXPECT_FALSE(fifo.Access(3));  // evicts 1 (oldest, despite recent use)
  EXPECT_FALSE(fifo.Access(1));
}

TEST(CachePolicyTest, LruEvictsLeastRecentlyUsed) {
  LruPolicy lru{2};
  lru.Access(1);
  lru.Access(2);
  EXPECT_TRUE(lru.Access(1));   // 1 becomes most recent
  EXPECT_FALSE(lru.Access(3));  // evicts 2
  EXPECT_TRUE(lru.Access(1));
  EXPECT_FALSE(lru.Access(2));
}

TEST(CachePolicyTest, Lru2PrefersKeysWithHistory) {
  Lru2Policy lru2{2};
  lru2.Access(1);
  lru2.Access(1);  // key 1 has two accesses
  lru2.Access(2);  // key 2 has one
  EXPECT_FALSE(lru2.Access(3));  // evicts 2 (no penultimate access)
  EXPECT_TRUE(lru2.Access(1));
}

TEST(CachePolicyTest, ClockGivesSecondChance) {
  ClockPolicy clock{2};
  clock.Access(1);
  clock.Access(2);
  EXPECT_TRUE(clock.Access(1));  // sets reference bit on 1
  EXPECT_FALSE(clock.Access(3));  // hand skips 1 (referenced), evicts 2
  EXPECT_TRUE(clock.Access(1));
  EXPECT_FALSE(clock.Access(2));
}

TEST(CachePolicyTest, HlogHitInMutableRegionDoesNotReplicate) {
  HlogPolicy hlog{10, 0.9};  // mutable = 9 slots
  hlog.Access(1);
  EXPECT_TRUE(hlog.Access(1));  // in mutable region: in-place, no copy
  EXPECT_EQ(hlog.Size(), 1u);
}

TEST(CachePolicyTest, HlogCopiesFromReadOnlyRegion) {
  HlogPolicy hlog{10, 0.5};  // mutable = 5
  hlog.Access(1);
  // Push key 1 into the read-only region with 5 other keys.
  for (uint64_t k = 2; k <= 6; ++k) hlog.Access(k);
  // Key 1 is now outside the mutable region: a hit copies it to the tail.
  EXPECT_TRUE(hlog.Access(1));
  // Two copies of key 1 occupy slots until the old one falls off.
  EXPECT_EQ(hlog.Size(), 6u);  // 6 live keys
}

TEST(CachePolicyTest, HlogEvictsFromHead) {
  HlogPolicy hlog{4, 0.5};
  for (uint64_t k = 1; k <= 4; ++k) hlog.Access(k);
  EXPECT_FALSE(hlog.Access(5));  // evicts key 1
  EXPECT_FALSE(hlog.Access(1));
}

TEST(CachePolicyTest, FactoryMakesAllPolicies) {
  for (const char* name : {"FIFO", "LRU_1", "LRU_2", "CLOCK", "HLOG"}) {
    auto p = MakePolicy(name, 16);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_STREQ(p->Name(), name);
    p->Access(1);
    EXPECT_TRUE(p->Access(1));
  }
  EXPECT_EQ(MakePolicy("NOPE", 16), nullptr);
}

// Property sweep across policies: miss ratio must be 1.0 for cold uniform
// traffic over a huge key space, and ~0 for a single hot key.
class PolicySweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicySweepTest, SingleHotKeyAlwaysHits) {
  auto policy = MakePolicy(GetParam(), 64);
  policy->Access(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(policy->Access(42));
  }
}

TEST_P(PolicySweepTest, CapacityIsRespected) {
  auto policy = MakePolicy(GetParam(), 32);
  for (uint64_t k = 0; k < 10000; ++k) policy->Access(k);
  EXPECT_LE(policy->Size(), 32u);
}

TEST_P(PolicySweepTest, MissRatioDecreasesWithCacheSize) {
  // Zipf traffic: a bigger cache can only help.
  double prev = 1.1;
  for (double ratio : {1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2}) {
    auto r = RunCacheSim(GetParam(), Distribution::kZipfian, 1 << 14, ratio,
                         1 << 16, 1 << 15, 11);
    EXPECT_LE(r.miss_ratio, prev + 0.02)
        << GetParam() << " at ratio " << ratio;
    prev = r.miss_ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySweepTest,
                         ::testing::Values("FIFO", "LRU_1", "LRU_2", "CLOCK",
                                           "HLOG"),
                         [](const auto& info) { return info.param; });

// The paper's qualitative findings (Sec. 7.5): under Zipf, HLOG misses
// more than LRU (replication shrinks the cache) but beats FIFO (second
// chance); under uniform traffic all policies are close.
TEST(CacheSimTest, HlogBetweenFifoAndLruUnderZipf) {
  constexpr uint64_t kKeys = 1 << 15;
  auto run = [&](const std::string& p) {
    return RunCacheSim(p, Distribution::kZipfian, kKeys, 1.0 / 8, 1 << 17,
                       1 << 16, 3)
        .miss_ratio;
  };
  double fifo = run("FIFO");
  double lru = run("LRU_1");
  double hlog = run("HLOG");
  EXPECT_LT(hlog, fifo + 0.005);  // second chance helps vs. FIFO
  EXPECT_GT(hlog, lru - 0.005);   // replication hurts vs. LRU
}

TEST(CacheSimTest, UniformMakesAllPoliciesSimilar) {
  constexpr uint64_t kKeys = 1 << 15;
  std::vector<double> ratios;
  for (const char* p : {"FIFO", "LRU_1", "CLOCK", "HLOG"}) {
    ratios.push_back(RunCacheSim(p, Distribution::kUniform, kKeys, 1.0 / 4,
                                 1 << 17, 1 << 16, 5)
                         .miss_ratio);
  }
  for (double r : ratios) {
    EXPECT_NEAR(r, ratios[0], 0.03);
  }
}

}  // namespace
}  // namespace faster
