// Tests for the live exposition endpoint (obs/exporter.h) and the crash
// flight recorder (obs/flight_recorder.h): Prometheus text format 0.0.4
// grammar, HTTP behavior over a real loopback socket, bind-failure
// handling, and the signal-safe dump path.

#include "obs/exporter.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/epoch.h"
#include "mini_json.h"
#include "obs/flight_recorder.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace faster {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsExporter;
using obs::Registry;

// ---------------------------------------------------------------------------
// Prometheus text format (Registry::Prometheus, driven directly)
// ---------------------------------------------------------------------------

// Checks every line of a Prometheus 0.0.4 exposition: either a
// `# TYPE faster_<name> <type>` comment or a `<name>[{le="..."}] <int>`
// sample with the faster_ prefix. Mirrors tools/check_prometheus.py.
void CheckPrometheusGrammar(const std::string& text) {
  std::istringstream in{text};
  std::string line;
  size_t samples = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE faster_", 0), 0u) << line;
      std::string type = line.substr(line.rfind(' ') + 1);
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      continue;
    }
    size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    std::string name = line.substr(0, sp);
    std::string value = line.substr(sp + 1);
    EXPECT_EQ(name.rfind("faster_", 0), 0u) << line;
    EXPECT_EQ(name.find(' '), std::string::npos) << line;
    ASSERT_FALSE(value.empty()) << line;
    for (size_t i = value[0] == '-' ? 1 : 0; i < value.size(); ++i) {
      EXPECT_TRUE(value[i] >= '0' && value[i] <= '9') << line;
    }
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

TEST(PrometheusFormatTest, CountersGaugesHistogramsAndNames) {
  Counter c;
  c.Add(3);
  Gauge g;
  g.Add(-2);
  Histogram h;
  h.Record(0);
  h.Record(5);
  h.Record(300);
  Registry reg;
  reg.Add("store.reads", &c);
  reg.Add("pool.queue_depth", &g);
  reg.Add("store.read_latency_ns", &h);
  reg.AddValue("log.head", 4096);
  std::string text = reg.Prometheus();
  CheckPrometheusGrammar(text);
  // Names are prefixed and sanitized ('.' -> '_'); counters and
  // precomputed values get _total.
  EXPECT_NE(text.find("# TYPE faster_store_reads_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("faster_store_reads_total 3"), std::string::npos);
  EXPECT_NE(text.find("faster_pool_queue_depth -2"), std::string::npos);
  EXPECT_NE(text.find("faster_log_head_total 4096"), std::string::npos);
  // Histograms expose raw cumulative buckets plus _sum and _count.
  EXPECT_NE(text.find("faster_store_read_latency_ns_bucket{le=\"0\"} 1"),
            std::string::npos)
      << text;
  // 300 lands in [256,512), upper bound 511; cumulative count 3.
  EXPECT_NE(text.find("faster_store_read_latency_ns_bucket{le=\"511\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("faster_store_read_latency_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("faster_store_read_latency_ns_sum 305"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("faster_store_read_latency_ns_count 3"),
            std::string::npos)
      << text;
}

TEST(PrometheusFormatTest, EmptyRegistry) {
  Registry reg;
  EXPECT_EQ(reg.Prometheus(), "# (empty registry)\n");
}

// ---------------------------------------------------------------------------
// HTTP exporter over a real loopback socket
// ---------------------------------------------------------------------------

// Minimal HTTP/1.0-style client: one request, read until the server
// closes. Returns the raw response (headers + body), or "" on error.
std::string HttpRequest(uint16_t port, const std::string& method,
                        const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  std::string req = method + " " + path +
                    " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(uint16_t port, const std::string& path) {
  return HttpRequest(port, "GET", path);
}

std::string BodyOf(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

class ExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    counter_.Add(7);
    histogram_.Record(100);
    registry_.Add("test.requests", &counter_);
    registry_.Add("test.latency", &histogram_);
    obs::ExporterOptions options;
    options.port = 0;  // ephemeral
    exporter_ = std::make_unique<MetricsExporter>(
        options, MetricsExporter::Handlers{
                     [this] { return registry_.Prometheus(); },
                     [this] { return registry_.Json(); }});
    ASSERT_TRUE(exporter_->ok());
    ASSERT_NE(exporter_->port(), 0);
  }

  Counter counter_;
  Histogram histogram_;
  Registry registry_;
  std::unique_ptr<MetricsExporter> exporter_;
};

TEST_F(ExporterTest, MetricsEndpointServesPrometheusText) {
  std::string response = HttpGet(exporter_->port(), "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << response;
  std::string body = BodyOf(response);
  CheckPrometheusGrammar(body);
  EXPECT_NE(body.find("faster_test_requests_total 7"), std::string::npos)
      << body;
  EXPECT_NE(body.find("faster_test_latency_bucket{le=\"+Inf\"} 1"),
            std::string::npos)
      << body;
}

TEST_F(ExporterTest, VarsEndpointServesValidJson) {
  std::string response = HttpGet(exporter_->port(), "/vars");
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos)
      << response;
  std::string body = BodyOf(response);
  EXPECT_TRUE(MiniJson::Valid(body)) << body;
  EXPECT_NE(body.find("\"test.requests\":7"), std::string::npos) << body;
}

TEST_F(ExporterTest, HealthzEndpoint) {
  std::string response = HttpGet(exporter_->port(), "/healthz");
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u) << response;
  EXPECT_EQ(BodyOf(response), "ok\n");
}

TEST_F(ExporterTest, UnknownPathIs404) {
  std::string response = HttpGet(exporter_->port(), "/nope");
  EXPECT_EQ(response.rfind("HTTP/1.1 404", 0), 0u) << response;
}

TEST_F(ExporterTest, NonGetMethodIs405) {
  std::string response = HttpRequest(exporter_->port(), "POST", "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.1 405", 0), 0u) << response;
}

TEST_F(ExporterTest, ScrapeIsRepeatable) {
  // Live scrape semantics: values advance between scrapes.
  std::string first = BodyOf(HttpGet(exporter_->port(), "/metrics"));
  counter_.Add(3);
  std::string second = BodyOf(HttpGet(exporter_->port(), "/metrics"));
  EXPECT_NE(first.find("faster_test_requests_total 7"), std::string::npos);
  EXPECT_NE(second.find("faster_test_requests_total 10"), std::string::npos);
}

TEST_F(ExporterTest, PortCollisionDisablesSecondExporter) {
  obs::ExporterOptions options;
  options.port = exporter_->port();  // already bound by the fixture
  MetricsExporter second{options,
                         MetricsExporter::Handlers{[] { return ""; },
                                                   [] { return ""; }}};
  EXPECT_FALSE(second.ok());
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, DumpWritesMarkersEpochsEventsAndMetrics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The threadsafe death-test child re-executes this whole test body, so
  // it must reuse the parent's directory (inherited through the
  // environment) instead of minting its own — otherwise the dump lands
  // where the parent never looks.
  std::string dir;
  bool created_dir = false;
  if (const char* inherited = std::getenv("FASTER_FLIGHT_DIR")) {
    dir = inherited;
  } else {
    char dir_template[] = "/tmp/faster_flight_XXXXXX";
    char* d = ::mkdtemp(dir_template);
    ASSERT_NE(d, nullptr);
    dir = d;
    ::setenv("FASTER_FLIGHT_DIR", dir.c_str(), 1);
    created_dir = true;
  }
  // Everything recorder-related happens in the death-test child so the
  // parent test process keeps its normal signal handlers.
  EXPECT_DEATH(
      {
        static obs::Counter counter;
        counter.Add(42);
        static obs::EventRing ring;
        ring.Emit(obs::Ev::kFlushIssued, 4096);
        static obs::Registry reg;
        reg.Add("crash.counter", &counter);
        static LightEpoch epoch;
        epoch.Protect();
        auto& rec = obs::FlightRecorder::Instance();
        rec.AttachEventRing(&reg, "crash", &ring);
        rec.AttachMetrics(&reg, reg);
        rec.AttachEpoch(&reg, &epoch);
        rec.Install();
        std::abort();
      },
      // POSIX ERE; '.' matches newline here, so this spans the dump.
      // Metric names are dumped verbatim (no Prometheus sanitization).
      "FASTER FLIGHT RECORDER BEGIN.*reason: SIGABRT.*-- metrics --"
      ".*crash\\.counter 42.*-- events\\[crash\\].*flush_issued"
      ".*FASTER FLIGHT RECORDER END");
  if (created_dir) ::unsetenv("FASTER_FLIGHT_DIR");

  // The child also wrote $FASTER_FLIGHT_DIR/flight_<pid>.txt.
  std::string dump_path;
  DIR* d = ::opendir(dir.c_str());
  ASSERT_NE(d, nullptr);
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.rfind("flight_", 0) == 0) {
      dump_path = dir + "/" + name;
      break;
    }
  }
  ::closedir(d);
  ASSERT_FALSE(dump_path.empty()) << "no flight_<pid>.txt in " << dir;
  std::ifstream in{dump_path};
  std::stringstream contents;
  contents << in.rdbuf();
  std::string text = contents.str();
  EXPECT_NE(text.find("FASTER FLIGHT RECORDER BEGIN"), std::string::npos);
  EXPECT_NE(text.find("reason: SIGABRT"), std::string::npos);
  EXPECT_NE(text.find("crash.counter 42"), std::string::npos);
  EXPECT_NE(text.find("local_epoch"), std::string::npos)
      << "protected thread's epoch entry missing:\n"
      << text;
  EXPECT_NE(text.find("FASTER FLIGHT RECORDER END"), std::string::npos);
}

}  // namespace
}  // namespace faster
