// End-to-end integration tests over the *real* storage path: FasterKv on a
// FileDevice (POSIX file + I/O thread pool), exercising spill, async
// storage reads, checkpoint/recovery across process-like store instances,
// compaction, and index growth in one combined scenario — the moral
// equivalent of the paper's deployment (FASTER pointed at a file on SSD,
// Sec. 7.1).

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/file_device.h"

namespace faster {
namespace {

using Store = FasterKv<CountStoreFunctions>;

class FileIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/faster_integration_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string LogPath() const { return dir_ + "/hybridlog.dat"; }
  std::string CkptDir() const { return dir_ + "/ckpt"; }

  Store::Config Cfg(uint64_t pages = 2) {
    Store::Config cfg;
    cfg.table_size = 4096;
    cfg.log.memory_size_bytes = pages << Address::kOffsetBits;
    cfg.log.mutable_fraction = 0.5;
    return cfg;
  }

  std::string dir_;
};

TEST_F(FileIntegrationTest, SpillAndReadBackThroughRealFile) {
  FileDevice device{LogPath()};
  Store store{Cfg(), &device};
  store.StartSession();
  constexpr uint64_t kKeys = 400000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(store.Upsert(k, k * 3 + 1), Status::kOk);
  }
  ASSERT_GT(store.hlog().head_address().control(), 64u);
  ASSERT_GT(std::filesystem::file_size(LogPath()), 0u);
  std::vector<uint64_t> outs(200, UINT64_MAX);
  for (uint64_t k = 0; k < 200; ++k) {
    Status s = store.Read(k * 1000, 0, &outs[k]);
    ASSERT_TRUE(s == Status::kOk || s == Status::kPending);
  }
  ASSERT_TRUE(store.CompletePending(true));
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_EQ(outs[k], k * 1000 * 3 + 1) << "key " << k * 1000;
  }
  store.StopSession();
}

TEST_F(FileIntegrationTest, FullLifecycleAcrossRestarts) {
  constexpr uint64_t kKeys = 200000;
  // Phase 1: load, mutate, grow the index, checkpoint, "crash".
  {
    FileDevice device{LogPath()};
    Store store{Cfg(), &device};
    store.StartSession();
    for (uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_EQ(store.Upsert(k, 1), Status::kOk);
    }
    for (uint64_t k = 0; k < kKeys; k += 2) {
      Status s = store.Rmw(k, 10);
      ASSERT_TRUE(s == Status::kOk || s == Status::kPending);
      if (k % 8192 == 0) store.CompletePending(false);
    }
    ASSERT_TRUE(store.CompletePending(true));
    store.GrowIndex();
    ASSERT_EQ(store.Checkpoint(CkptDir()), Status::kOk);
    // Post-checkpoint garbage that must vanish.
    for (uint64_t k = 0; k < 1000; ++k) store.Upsert(k, 777777);
    store.StopSession();
  }
  // Phase 2: recover from the file + checkpoint, verify, keep operating.
  {
    FileDevice device{LogPath()};
    Store store{Cfg(), &device};
    ASSERT_EQ(store.Recover(CkptDir()), Status::kOk);
    store.StartSession();
    for (uint64_t k = 0; k < kKeys; k += 997) {
      uint64_t expected = (k % 2 == 0) ? 11 : 1;
      uint64_t out = UINT64_MAX;
      Status s = store.Read(k, 0, &out);
      if (s == Status::kPending) {
        ASSERT_TRUE(store.CompletePending(true));
        s = Status::kOk;
      }
      ASSERT_EQ(s, Status::kOk) << "key " << k;
      ASSERT_EQ(out, expected) << "key " << k;
    }
    // The store stays fully operational post-recovery.
    for (uint64_t k = kKeys; k < kKeys + 5000; ++k) {
      ASSERT_EQ(store.Upsert(k, k), Status::kOk);
    }
    uint64_t out = 0;
    ASSERT_EQ(store.Read(kKeys + 4999, 0, &out), Status::kOk);
    ASSERT_EQ(out, kKeys + 4999);
    store.StopSession();
  }
}

TEST_F(FileIntegrationTest, MultiThreadedMixedWorkloadOnFile) {
  FileDevice device{LogPath()};
  Store store{Cfg(4), &device};
  constexpr uint64_t kKeys = 200000;
  store.StartSession();
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(store.Upsert(k, 5), Status::kOk);
  }
  store.StopSession();

  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      store.StartSession();
      std::mt19937_64 rng(t + 100);
      for (int i = 0; i < 30000; ++i) {
        uint64_t k = rng() % kKeys;
        switch (rng() % 3) {
          case 0: {
            if (store.Upsert(k, 5) != Status::kOk) errors.fetch_add(1);
            break;
          }
          case 1: {
            Status s = store.Rmw(k, 0);  // +0: value must stay 5
            if (s != Status::kOk && s != Status::kPending) errors.fetch_add(1);
            break;
          }
          case 2: {
            thread_local uint64_t out;
            Status s = store.Read(k, 0, &out);
            if (s == Status::kOk && out != 5) errors.fetch_add(1);
            if (s == Status::kNotFound) errors.fetch_add(1);
            break;
          }
        }
        if (i % 1024 == 0) store.CompletePending(false);
      }
      store.StopSession();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0u);
}

TEST_F(FileIntegrationTest, CompactionOnRealFileReclaimsSpace) {
  FileDevice device{LogPath()};
  auto cfg = Cfg(2);
  cfg.force_rcu = true;
  Store store{cfg, &device};
  store.StartSession();
  constexpr uint64_t kKeys = 10000;
  std::mt19937_64 rng(17);
  for (uint64_t i = 0; i < 300000; ++i) {
    ASSERT_EQ(store.Upsert(rng() % kKeys, i), Status::kOk);
  }
  store.hlog().ShiftReadOnlyToTail(true);
  Store::CompactionStats stats;
  ASSERT_EQ(store.CompactLog(store.hlog().safe_read_only_address(), &stats),
            Status::kOk);
  EXPECT_LE(stats.copied, kKeys);
  // All keys still readable.
  for (uint64_t k = 0; k < kKeys; k += 239) {
    uint64_t out = UINT64_MAX;
    Status s = store.Read(k, 0, &out);
    if (s == Status::kPending) {
      ASSERT_TRUE(store.CompletePending(true));
    }
    ASSERT_NE(out, UINT64_MAX) << "key " << k;
  }
  store.StopSession();
}

}  // namespace
}  // namespace faster
