#include "core/hash_index.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "core/key_hash.h"

namespace faster {
namespace {

class HashIndexTest : public ::testing::Test {
 protected:
  void SetUp() override { epoch_.Protect(); }
  void TearDown() override { epoch_.Unprotect(); }
  LightEpoch epoch_;
};

TEST_F(HashIndexTest, MissingKeyNotFound) {
  HashIndex index{128, &epoch_};
  HashIndex::FindResult fr;
  KeyHash h{Mix64(42)};
  HashIndex::OpScope scope{index, h};
  EXPECT_FALSE(index.FindEntry(scope, h, &fr));
}

TEST_F(HashIndexTest, CreateThenFind) {
  HashIndex index{128, &epoch_};
  KeyHash h{Mix64(42)};
  HashIndex::FindResult fr;
  {
    HashIndex::OpScope scope{index, h};
    index.FindOrCreateEntry(scope, h, &fr);
    EXPECT_FALSE(fr.entry.address().IsValid());
    EXPECT_EQ(fr.entry.tag(), h.Tag());
    EXPECT_TRUE(index.TryUpdateEntry(&fr, Address{1, 64}));
  }
  {
    HashIndex::OpScope scope{index, h};
    HashIndex::FindResult found;
    ASSERT_TRUE(index.FindEntry(scope, h, &found));
    EXPECT_EQ(found.entry.address(), (Address{1, 64}));
  }
}

TEST_F(HashIndexTest, FindOrCreateIsIdempotent) {
  HashIndex index{128, &epoch_};
  KeyHash h{Mix64(7)};
  HashIndex::OpScope scope{index, h};
  HashIndex::FindResult a, b;
  index.FindOrCreateEntry(scope, h, &a);
  index.FindOrCreateEntry(scope, h, &b);
  EXPECT_EQ(a.slot, b.slot);
}

TEST_F(HashIndexTest, UpdateEntryCasSemantics) {
  HashIndex index{128, &epoch_};
  KeyHash h{Mix64(9)};
  HashIndex::OpScope scope{index, h};
  HashIndex::FindResult fr;
  index.FindOrCreateEntry(scope, h, &fr);
  ASSERT_TRUE(index.TryUpdateEntry(&fr, Address{2, 0}));
  // Stale expected value: CAS must fail and reload the current entry.
  HashIndex::FindResult stale = fr;
  stale.entry = HashBucketEntry{Address{1, 0}, h.Tag(), false};
  EXPECT_FALSE(index.TryUpdateEntry(&stale, Address{3, 0}));
  EXPECT_EQ(stale.entry.address(), (Address{2, 0}));
  EXPECT_TRUE(index.TryUpdateEntry(&stale, Address{3, 0}));
}

TEST_F(HashIndexTest, DeleteEntryFreesSlot) {
  HashIndex index{128, &epoch_};
  KeyHash h{Mix64(11)};
  HashIndex::OpScope scope{index, h};
  HashIndex::FindResult fr;
  index.FindOrCreateEntry(scope, h, &fr);
  ASSERT_TRUE(index.TryUpdateEntry(&fr, Address{4, 0}));
  EXPECT_EQ(index.NumUsedEntries(), 1u);
  EXPECT_TRUE(index.TryDeleteEntry(&fr));
  EXPECT_EQ(index.NumUsedEntries(), 0u);
  HashIndex::FindResult miss;
  EXPECT_FALSE(index.FindEntry(scope, h, &miss));
}

TEST_F(HashIndexTest, OverflowBucketsExtendChains) {
  // A tiny index (64 buckets) with many distinct tags per bucket forces
  // overflow bucket allocation.
  HashIndex index{64, &epoch_};
  std::vector<KeyHash> hashes;
  for (uint64_t k = 0; hashes.size() < 600; ++k) {
    hashes.push_back(KeyHash{Mix64(k)});
  }
  uint64_t created = 0;
  std::set<std::pair<uint64_t, uint16_t>> distinct;
  for (KeyHash h : hashes) {
    distinct.insert({h.Bucket(index.size()), h.Tag()});
    HashIndex::OpScope scope{index, h};
    HashIndex::FindResult fr;
    index.FindOrCreateEntry(scope, h, &fr);
    if (!fr.entry.address().IsValid()) {
      ASSERT_TRUE(index.TryUpdateEntry(&fr, Address{created + 1, 0}));
      ++created;
    }
  }
  EXPECT_EQ(created, distinct.size());
  // Everything must be findable.
  for (KeyHash h : hashes) {
    HashIndex::OpScope scope{index, h};
    HashIndex::FindResult fr;
    EXPECT_TRUE(index.FindEntry(scope, h, &fr));
  }
}

// The core index invariant (Sec. 3.2): concurrent inserts of the same tag
// must never produce duplicate non-tentative entries, even with deletes
// racing (the Fig. 3a scenario).
TEST_F(HashIndexTest, TwoPhaseInsertInvariantUnderContention) {
  HashIndex index{64, &epoch_};
  constexpr int kThreads = 4;
  constexpr int kIters = 3000;
  // All threads fight over a handful of tags in the same bucket space.
  std::vector<KeyHash> hashes;
  for (uint64_t k = 0; k < 8; ++k) hashes.push_back(KeyHash{Mix64(k)});

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(t);
      epoch_.Protect();
      for (int i = 0; i < kIters; ++i) {
        KeyHash h = hashes[rng() % hashes.size()];
        HashIndex::OpScope scope{index, h};
        HashIndex::FindResult fr;
        index.FindOrCreateEntry(scope, h, &fr);
        if (!fr.entry.address().IsValid()) {
          index.TryUpdateEntry(&fr, Address{1, 64});
        } else if (rng() % 4 == 0) {
          index.TryDeleteEntry(&fr);
        }
        if (i % 64 == 0) epoch_.Refresh();
      }
      epoch_.Unprotect();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  // Verify invariant: for each hash, at most one non-tentative entry.
  for (KeyHash h : hashes) {
    HashIndex::OpScope scope{index, h};
    HashIndex::FindResult fr;
    index.FindEntry(scope, h, &fr);  // would be ambiguous if duplicated
  }
  // Count duplicates directly.
  std::map<std::pair<uint64_t, uint16_t>, int> counts;
  for (KeyHash h : hashes) {
    counts[{h.Bucket(index.size()), h.Tag()}] = 0;
  }
  // NumUsedEntries counts every non-tentative entry; with 8 hashes the
  // number of used entries can never exceed the number of distinct
  // (bucket, tag) pairs.
  EXPECT_LE(index.NumUsedEntries(), counts.size());
}

TEST_F(HashIndexTest, GrowDoublesAndPreservesEntries) {
  HashIndex index{64, &epoch_};
  constexpr uint64_t kKeys = 500;
  for (uint64_t k = 0; k < kKeys; ++k) {
    KeyHash h{Mix64(k)};
    HashIndex::OpScope scope{index, h};
    HashIndex::FindResult fr;
    index.FindOrCreateEntry(scope, h, &fr);
    if (!fr.entry.address().IsValid()) {
      ASSERT_TRUE(index.TryUpdateEntry(&fr, Address{k + 1, 0}));
    }
  }
  uint64_t old_size = index.size();
  index.Grow();
  EXPECT_EQ(index.size(), old_size * 2);
  EXPECT_FALSE(index.IsResizing());
  for (uint64_t k = 0; k < kKeys; ++k) {
    KeyHash h{Mix64(k)};
    HashIndex::OpScope scope{index, h};
    HashIndex::FindResult fr;
    ASSERT_TRUE(index.FindEntry(scope, h, &fr)) << "key " << k;
    EXPECT_TRUE(fr.entry.address().IsValid());
  }
}

TEST_F(HashIndexTest, GrowWithConcurrentReaders) {
  HashIndex index{64, &epoch_};
  constexpr uint64_t kKeys = 256;
  for (uint64_t k = 0; k < kKeys; ++k) {
    KeyHash h{Mix64(k)};
    HashIndex::OpScope scope{index, h};
    HashIndex::FindResult fr;
    index.FindOrCreateEntry(scope, h, &fr);
    if (!fr.entry.address().IsValid()) {
      index.TryUpdateEntry(&fr, Address{k + 1, 0});
    }
  }
  std::atomic<bool> stop{false};
  std::atomic<int> misses{0};
  std::thread reader([&] {
    epoch_.Protect();
    std::mt19937 rng(1);
    while (!stop.load()) {
      uint64_t k = rng() % kKeys;
      KeyHash h{Mix64(k)};
      HashIndex::OpScope scope{index, h};
      HashIndex::FindResult fr;
      if (!index.FindEntry(scope, h, &fr)) misses.fetch_add(1);
      epoch_.Refresh();
    }
    epoch_.Unprotect();
  });
  index.Grow();
  index.Grow();
  stop.store(true);
  reader.join();
  EXPECT_EQ(misses.load(), 0);
  EXPECT_EQ(index.size(), 64u * 4);
}

TEST_F(HashIndexTest, CheckpointRoundTrip) {
  HashIndex index{64, &epoch_};
  constexpr uint64_t kKeys = 400;  // forces overflow buckets
  for (uint64_t k = 0; k < kKeys; ++k) {
    KeyHash h{Mix64(k)};
    HashIndex::OpScope scope{index, h};
    HashIndex::FindResult fr;
    index.FindOrCreateEntry(scope, h, &fr);
    if (!fr.entry.address().IsValid()) {
      index.TryUpdateEntry(&fr, Address{k + 1, 8});
    }
  }
  uint64_t used = index.NumUsedEntries();

  char path[] = "/tmp/faster_index_ckpt_XXXXXX";
  int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(index.WriteCheckpoint(fd), Status::kOk);
  ::lseek(fd, 0, SEEK_SET);

  HashIndex restored{64, &epoch_};
  ASSERT_EQ(restored.ReadCheckpoint(fd), Status::kOk);
  ::close(fd);
  ::unlink(path);

  EXPECT_EQ(restored.NumUsedEntries(), used);
  for (uint64_t k = 0; k < kKeys; ++k) {
    KeyHash h{Mix64(k)};
    HashIndex::OpScope scope{restored, h};
    HashIndex::FindResult fr;
    ASSERT_TRUE(restored.FindEntry(scope, h, &fr));
  }
}

}  // namespace
}  // namespace faster
