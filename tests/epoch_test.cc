#include "core/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace faster {
namespace {

TEST(EpochTest, ProtectRefreshUnprotect) {
  LightEpoch epoch;
  EXPECT_FALSE(epoch.IsProtected());
  uint64_t e = epoch.Protect();
  EXPECT_TRUE(epoch.IsProtected());
  EXPECT_EQ(e, epoch.CurrentEpoch());
  epoch.Refresh();
  epoch.Unprotect();
  EXPECT_FALSE(epoch.IsProtected());
}

TEST(EpochTest, BumpAdvancesCurrentEpoch) {
  LightEpoch epoch;
  uint64_t before = epoch.CurrentEpoch();
  epoch.BumpCurrentEpoch();
  EXPECT_EQ(epoch.CurrentEpoch(), before + 1);
}

TEST(EpochTest, SafeEpochLagsProtectedThread) {
  LightEpoch epoch;
  epoch.Protect();  // local = E
  uint64_t e = epoch.CurrentEpoch();
  epoch.BumpCurrentEpoch();  // E+1; our local still E
  epoch.ComputeNewSafeToReclaimEpoch();
  EXPECT_LT(epoch.SafeToReclaimEpoch(), e);  // e not safe: we're still in it
  epoch.Refresh();  // local -> E+1; now e is safe
  EXPECT_GE(epoch.SafeToReclaimEpoch(), e);
  epoch.Unprotect();
}

TEST(EpochTest, TriggerActionRunsExactlyOnceAfterSafe) {
  LightEpoch epoch;
  epoch.Protect();
  std::atomic<int> runs{0};
  epoch.BumpCurrentEpoch([&] { runs.fetch_add(1); });
  // Not yet safe: we have not refreshed past the bumped epoch.
  EXPECT_EQ(epoch.NumOutstandingActions(), 1u);
  epoch.Refresh();
  EXPECT_EQ(runs.load(), 1);
  epoch.Refresh();
  epoch.Refresh();
  EXPECT_EQ(runs.load(), 1);
  epoch.Unprotect();
}

TEST(EpochTest, ActionWaitsForLaggingThread) {
  LightEpoch epoch;
  epoch.Protect();

  std::atomic<bool> other_protected{false};
  std::atomic<bool> release_other{false};
  std::thread other([&] {
    epoch.Protect();
    other_protected.store(true);
    while (!release_other.load()) std::this_thread::yield();
    epoch.Unprotect();
  });
  while (!other_protected.load()) std::this_thread::yield();

  std::atomic<int> runs{0};
  epoch.BumpCurrentEpoch([&] { runs.fetch_add(1); });
  // The other thread has not refreshed; the action must not fire.
  for (int i = 0; i < 10; ++i) epoch.Refresh();
  EXPECT_EQ(runs.load(), 0);

  release_other.store(true);  // other thread unprotects
  other.join();
  epoch.Refresh();
  EXPECT_EQ(runs.load(), 1);
  epoch.Unprotect();
}

TEST(EpochTest, ManyActionsAllRun) {
  LightEpoch epoch;
  epoch.Protect();
  std::atomic<int> runs{0};
  constexpr int kActions = 1000;  // exceeds the drain list size
  for (int i = 0; i < kActions; ++i) {
    epoch.BumpCurrentEpoch([&] { runs.fetch_add(1); });
    if (i % 7 == 0) epoch.Refresh();
  }
  epoch.SpinWaitForSafety(epoch.CurrentEpoch() - 1);
  EXPECT_EQ(runs.load(), kActions);
  epoch.Unprotect();
}

TEST(EpochTest, ConcurrentProtectRefresh) {
  LightEpoch epoch;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::atomic<int> action_runs{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      epoch.Protect();
      for (int i = 0; i < kIters; ++i) {
        if (i % 100 == 0) {
          epoch.BumpCurrentEpoch([&] { action_runs.fetch_add(1); });
        }
        epoch.Refresh();
      }
      epoch.Unprotect();
    });
  }
  for (auto& t : threads) t.join();
  // All actions must eventually run (drain by a fresh protected thread).
  epoch.Protect();
  epoch.SpinWaitForSafety(epoch.CurrentEpoch() - 1);
  epoch.Unprotect();
  EXPECT_EQ(action_runs.load(), kThreads * kIters / 100);
}

TEST(EpochTest, DrainListActionsUnderThreadChurn) {
  // Trigger actions must fire exactly once even while threads acquire and
  // release protection concurrently (epoch-table slots appearing and
  // vanishing mid-drain). A churner that only protects/unprotects can
  // neither suppress an action nor cause a double run.
  LightEpoch epoch;
  constexpr int kChurners = 2;
  constexpr int kRounds = 500;
  std::atomic<bool> stop{false};
  std::vector<std::thread> churners;
  for (int t = 0; t < kChurners; ++t) {
    churners.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        epoch.Protect();
        epoch.Refresh();
        epoch.Unprotect();
      }
    });
  }

  epoch.Protect();
  std::atomic<int> runs{0};
  for (int i = 0; i < kRounds; ++i) {
    epoch.BumpCurrentEpoch([&] { runs.fetch_add(1); });
    epoch.Refresh();
  }
  epoch.SpinWaitForSafety(epoch.CurrentEpoch() - 1);
  epoch.Unprotect();
  stop.store(true, std::memory_order_release);
  for (auto& t : churners) t.join();

  EXPECT_EQ(runs.load(), kRounds);
  EXPECT_EQ(epoch.NumOutstandingActions(), 0u);
}

TEST(EpochTest, DrainListFillsAndRecoversUnderChurn) {
  // Overflow the drain list (kDrainListSize actions) while churners hold
  // and release protection; BumpCurrentEpoch must drain in-line instead of
  // deadlocking, and every action still runs exactly once.
  LightEpoch epoch;
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    while (!stop.load(std::memory_order_acquire)) {
      epoch.Protect();
      epoch.Unprotect();
    }
  });

  epoch.Protect();
  std::atomic<int> runs{0};
  const int kActions = static_cast<int>(LightEpoch::kDrainListSize) * 3;
  for (int i = 0; i < kActions; ++i) {
    epoch.BumpCurrentEpoch([&] { runs.fetch_add(1); });
    // No explicit Refresh: the list must fill and force in-line drains.
  }
  epoch.SpinWaitForSafety(epoch.CurrentEpoch() - 1);
  epoch.Unprotect();
  stop.store(true, std::memory_order_release);
  churner.join();

  EXPECT_EQ(runs.load(), kActions);
  EXPECT_EQ(epoch.NumOutstandingActions(), 0u);
}

TEST(EpochTest, MonotonicInvariant) {
  // Invariant from Sec. 2.3: E_s < E_T <= E for all protected T.
  LightEpoch epoch;
  epoch.Protect();
  for (int i = 0; i < 100; ++i) {
    epoch.BumpCurrentEpoch();
    uint64_t local = epoch.Refresh();
    EXPECT_LE(local, epoch.CurrentEpoch());
    EXPECT_LT(epoch.SafeToReclaimEpoch(), local);
  }
  epoch.Unprotect();
}

}  // namespace
}  // namespace faster
