#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

#include "baselines/ordered_store.h"
#include "baselines/remote_store.h"
#include "baselines/shard_hash_map.h"

namespace faster {
namespace {

// ---------------------------------------------------------------------------
// ShardHashMap (Intel TBB stand-in)
// ---------------------------------------------------------------------------

TEST(ShardHashMapTest, PutGetRoundTrip) {
  ShardHashMap<uint64_t, uint64_t> map{1024, 16};
  map.Put(1, 100);
  uint64_t out = 0;
  ASSERT_TRUE(map.Get(1, &out));
  EXPECT_EQ(out, 100u);
  EXPECT_FALSE(map.Get(2, &out));
}

TEST(ShardHashMapTest, PutOverwrites) {
  ShardHashMap<uint64_t, uint64_t> map{1024, 16};
  map.Put(1, 100);
  map.Put(1, 200);
  uint64_t out = 0;
  ASSERT_TRUE(map.Get(1, &out));
  EXPECT_EQ(out, 200u);
  EXPECT_EQ(map.Size(), 1u);
}

TEST(ShardHashMapTest, EraseAndReuse) {
  ShardHashMap<uint64_t, uint64_t> map{1024, 16};
  map.Put(1, 100);
  EXPECT_TRUE(map.Erase(1));
  EXPECT_FALSE(map.Erase(1));
  uint64_t out = 0;
  EXPECT_FALSE(map.Get(1, &out));
  map.Put(1, 300);
  ASSERT_TRUE(map.Get(1, &out));
  EXPECT_EQ(out, 300u);
}

TEST(ShardHashMapTest, GrowsBeyondInitialCapacity) {
  ShardHashMap<uint64_t, uint64_t> map{16, 4};  // deliberately undersized
  constexpr uint64_t kKeys = 10000;
  for (uint64_t k = 0; k < kKeys; ++k) map.Put(k, k + 1);
  EXPECT_EQ(map.Size(), kKeys);
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t out = 0;
    ASSERT_TRUE(map.Get(k, &out)) << k;
    ASSERT_EQ(out, k + 1);
  }
}

TEST(ShardHashMapTest, ConcurrentRmwSum) {
  ShardHashMap<uint64_t, uint64_t> map{1024, 64};
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(t);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        map.Rmw(rng() % 16, [](uint64_t& v, bool fresh) {
          if (fresh) v = 0;
          ++v;
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  uint64_t total = 0;
  for (uint64_t k = 0; k < 16; ++k) {
    uint64_t out = 0;
    if (map.Get(k, &out)) total += out;
  }
  EXPECT_EQ(total, kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// OrderedStore (Masstree stand-in)
// ---------------------------------------------------------------------------

TEST(OrderedStoreTest, PutGetErase) {
  OrderedStore<uint64_t, uint64_t> store;
  store.Put(5, 50);
  uint64_t out = 0;
  ASSERT_TRUE(store.Get(5, &out));
  EXPECT_EQ(out, 50u);
  EXPECT_TRUE(store.Erase(5));
  EXPECT_FALSE(store.Get(5, &out));
}

TEST(OrderedStoreTest, RangeScanIsOrderedAndBounded) {
  OrderedStore<uint64_t, uint64_t> store;
  for (uint64_t k = 0; k < 100; ++k) store.Put(k, k * 2);
  std::vector<uint64_t> keys;
  store.Scan(10, 20, [&](uint64_t k, uint64_t v) {
    keys.push_back(k);
    EXPECT_EQ(v, k * 2);
  });
  ASSERT_EQ(keys.size(), 10u);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], 10 + i);  // ordered
  }
}

TEST(OrderedStoreTest, ConcurrentRmwSum) {
  OrderedStore<uint64_t, uint64_t> store;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        store.Rmw(i % 8, [](uint64_t& v, bool fresh) {
          if (fresh) v = 0;
          ++v;
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  uint64_t total = 0;
  for (uint64_t k = 0; k < 8; ++k) {
    uint64_t out = 0;
    if (store.Get(k, &out)) total += out;
  }
  EXPECT_EQ(total, kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// RemoteStore (Redis stand-in)
// ---------------------------------------------------------------------------

TEST(RemoteStoreTest, SetGetThroughPipeline) {
  RemoteStore store;
  auto client = store.Connect();
  ASSERT_NE(client, nullptr);

  std::vector<RemoteStore::Client::Op> batch;
  batch.push_back({true, 1, 100, 0, false});
  batch.push_back({true, 2, 200, 0, false});
  batch.push_back({false, 1, 0, 0, false});
  batch.push_back({false, 2, 0, 0, false});
  batch.push_back({false, 3, 0, 0, false});
  ASSERT_EQ(client->ExecuteBatch(&batch), Status::kOk);
  EXPECT_TRUE(batch[2].found);
  EXPECT_EQ(batch[2].out, 100u);
  EXPECT_TRUE(batch[3].found);
  EXPECT_EQ(batch[3].out, 200u);
  EXPECT_FALSE(batch[4].found);
  EXPECT_EQ(store.commands_processed(), 5u);
}

TEST(RemoteStoreTest, LargePipelineDepth) {
  RemoteStore store;
  auto client = store.Connect();
  constexpr int kDepth = 200;
  std::vector<RemoteStore::Client::Op> sets;
  for (int i = 0; i < kDepth; ++i) {
    sets.push_back({true, static_cast<uint64_t>(i),
                    static_cast<uint64_t>(i * 3), 0, false});
  }
  ASSERT_EQ(client->ExecuteBatch(&sets), Status::kOk);
  std::vector<RemoteStore::Client::Op> gets;
  for (int i = 0; i < kDepth; ++i) {
    gets.push_back({false, static_cast<uint64_t>(i), 0, 0, false});
  }
  ASSERT_EQ(client->ExecuteBatch(&gets), Status::kOk);
  for (int i = 0; i < kDepth; ++i) {
    ASSERT_TRUE(gets[i].found) << i;
    ASSERT_EQ(gets[i].out, static_cast<uint64_t>(i * 3));
  }
}

TEST(RemoteStoreTest, MultipleClients) {
  RemoteStore store;
  auto c1 = store.Connect();
  auto c2 = store.Connect();
  std::vector<RemoteStore::Client::Op> put{{true, 7, 77, 0, false}};
  ASSERT_EQ(c1->ExecuteBatch(&put), Status::kOk);
  std::vector<RemoteStore::Client::Op> get{{false, 7, 0, 0, false}};
  ASSERT_EQ(c2->ExecuteBatch(&get), Status::kOk);
  EXPECT_TRUE(get[0].found);
  EXPECT_EQ(get[0].out, 77u);
}

}  // namespace
}  // namespace faster
