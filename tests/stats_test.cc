#include "obs/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"
#include "obs/trace.h"

namespace faster {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Registry;

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

TEST(StatsCounterTest, AddAndSum) {
  Counter c;
  EXPECT_EQ(c.Sum(), 0u);
  c.Inc();
  c.Add(41);
  EXPECT_EQ(c.Sum(), 42u);
}

// Threads that exit release their Thread::Id() slot; later threads reuse
// it. The shard must keep the dead thread's contribution and the new
// tenant's increments must land on top of it (release/acquire slot
// hand-off in Thread makes this exact, not approximate).
TEST(StatsCounterTest, ExactAcrossThreadExitAndSlotReuse) {
  Counter c;
  constexpr uint32_t kBatches = 4;
  constexpr uint32_t kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  for (uint32_t batch = 0; batch < kBatches; ++batch) {
    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&c] {
        for (uint64_t i = 0; i < kPerThread; ++i) c.Inc();
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(c.Sum(), kPerThread * kThreads * (batch + 1));
  }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

// An increment on one thread may be balanced by a decrement on a different
// thread (worker submits I/O, pool thread completes it). Individual shards
// go negative/positive but the cross-shard sum must stay exact.
TEST(StatsGaugeTest, CrossThreadIncDecSumsToZero) {
  Gauge g;
  constexpr uint64_t kOps = 5000;
  for (uint64_t i = 0; i < kOps; ++i) g.Inc();
  std::thread dec([&g] {
    for (uint64_t i = 0; i < kOps; ++i) g.Dec();
  });
  dec.join();
  EXPECT_EQ(g.Value(), 0);
  g.Add(7);
  EXPECT_EQ(g.Value(), 7);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(StatsHistogramTest, BucketBoundaries) {
  // Bucket 0 holds only the value 0; bucket b holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(1), 1u);
  EXPECT_EQ(Histogram::BucketFor(2), 2u);
  EXPECT_EQ(Histogram::BucketFor(3), 2u);
  EXPECT_EQ(Histogram::BucketFor(4), 3u);
  EXPECT_EQ(Histogram::BucketFor(7), 3u);
  EXPECT_EQ(Histogram::BucketFor(8), 4u);
  EXPECT_EQ(Histogram::BucketFor((uint64_t{1} << 61) - 1), 61u);
  EXPECT_EQ(Histogram::BucketFor(uint64_t{1} << 61), 62u);
  // Everything with bit_width > 62 lands in the overflow bucket.
  EXPECT_EQ(Histogram::BucketFor(uint64_t{1} << 62), 63u);
  EXPECT_EQ(Histogram::BucketFor(UINT64_MAX), 63u);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(62), (uint64_t{1} << 62) - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(63), UINT64_MAX);

  // Round-trip: every value's bucket upper bound is >= the value.
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{2}, uint64_t{3},
                     uint64_t{1000}, uint64_t{1} << 40, UINT64_MAX}) {
    EXPECT_GE(Histogram::BucketUpperBound(Histogram::BucketFor(v)), v);
  }
}

TEST(StatsHistogramTest, CountAndSnapshot) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  h.Record(0);
  h.Record(5);   // bucket 3 ([4,8))
  h.Record(5);
  h.Record(100);  // bucket 7 ([64,128))
  EXPECT_EQ(h.Count(), 4u);
  uint64_t buckets[Histogram::kNumBuckets];
  h.SnapshotBuckets(buckets);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[3], 2u);
  EXPECT_EQ(buckets[7], 1u);
}

TEST(StatsHistogramTest, PercentileReturnsBucketUpperBound) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0u);  // empty
  // 99 fast ops at 10 (bucket 4, upper bound 15), one slow op at 1000
  // (bucket 10, upper bound 1023).
  for (int i = 0; i < 99; ++i) h.Record(10);
  h.Record(1000);
  EXPECT_EQ(h.Percentile(0.50), 15u);
  EXPECT_EQ(h.Percentile(0.98), 15u);
  EXPECT_EQ(h.Percentile(1.0), 1023u);
  // The p50 bound is within 2x of the true value.
  EXPECT_GE(h.Percentile(0.50), 10u);
  EXPECT_LT(h.Percentile(0.50), 20u);
}

TEST(StatsHistogramTest, AggregatesAcrossThreads) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.Record(100);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), 4000u);
  EXPECT_EQ(h.Percentile(0.999), 127u);
}

// ---------------------------------------------------------------------------
// Registry exposition
// ---------------------------------------------------------------------------

TEST(StatsRegistryTest, TextFormat) {
  Counter c;
  c.Add(3);
  Gauge g;
  g.Add(-2);
  Histogram h;
  h.Record(10);
  Registry reg;
  reg.Add("z.counter", &c);
  reg.Add("a.gauge", &g);
  reg.Add("m.hist", &h);
  reg.AddValue("k.value", 99);
  EXPECT_EQ(reg.size(), 4u);
  std::string text = reg.Text();
  // Alphabetically sorted, one line each.
  size_t a = text.find("a.gauge");
  size_t k = text.find("k.value");
  size_t m = text.find("m.hist");
  size_t z = text.find("z.counter");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(k, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, k);
  EXPECT_LT(k, m);
  EXPECT_LT(m, z);
  EXPECT_NE(text.find("-2"), std::string::npos);
  EXPECT_NE(text.find("count=1 p50=15 p99=15 p999=15"), std::string::npos);
}

// Minimal JSON well-formedness checker (objects, arrays, strings, unsigned
// and negative integers) — enough to prove Registry::Json() emits valid
// JSON without pulling in a parser dependency.
class MiniJson {
 public:
  static bool Valid(const std::string& s) {
    MiniJson p{s};
    return p.Value() && p.pos_ == s.size();
  }

 private:
  explicit MiniJson(const std::string& s) : s_{s} {}

  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    if (Peek('}')) return true;
    while (true) {
      if (!String() || !Eat(':') || !Value()) return false;
      if (Peek('}')) return true;
      if (!Eat(',')) return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    if (Peek(']')) return true;
    while (true) {
      if (!Value()) return false;
      if (Peek(']')) return true;
      if (!Eat(',')) return false;
    }
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    for (++pos_; pos_ < s_.size(); ++pos_) {
      if (s_[pos_] == '"') {
        ++pos_;
        return true;
      }
    }
    return false;
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    return pos_ > start && s_[pos_ - 1] >= '0';
  }
  bool Eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(StatsRegistryTest, JsonRoundTrip) {
  Counter c;
  c.Add(17);
  Gauge g;
  g.Add(-4);
  Histogram h;
  h.Record(0);
  h.Record(300);
  Registry reg;
  reg.Add("ops", &c);
  reg.Add("depth", &g);
  reg.Add("lat", &h);
  reg.AddValue("extra", 5);
  std::string json = reg.Json();
  EXPECT_TRUE(MiniJson::Valid(json)) << json;
  EXPECT_NE(json.find("\"ops\":17"), std::string::npos) << json;
  EXPECT_NE(json.find("\"extra\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\":-4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  // Non-empty buckets as [upper_bound, count] pairs: 0 once, 300 -> bucket
  // [256,512) upper bound 511.
  EXPECT_NE(json.find("[0,1]"), std::string::npos) << json;
  EXPECT_NE(json.find("[511,1]"), std::string::npos) << json;
}

TEST(StatsRegistryTest, EmptyRegistryJsonIsValid) {
  Registry reg;
  EXPECT_TRUE(MiniJson::Valid(reg.Json()));
}

// ---------------------------------------------------------------------------
// ScopedTimer, noop twins, event ring
// ---------------------------------------------------------------------------

TEST(StatsTimerTest, ScopedTimerRecordsOnce) {
  Histogram h;
  {
    obs::ScopedTimerT<Histogram> timer{h};
  }
  EXPECT_EQ(h.Count(), 1u);
}

TEST(StatsNoopTest, NoopTypesAreInert) {
  obs::NoopCounter c;
  c.Inc();
  c.Add(5);
  EXPECT_EQ(c.Sum(), 0u);
  obs::NoopGauge g;
  g.Inc();
  EXPECT_EQ(g.Value(), 0);
  obs::NoopHistogram h;
  h.Record(123);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
  obs::NoopRegistry reg;
  reg.Add("x", &c);
  reg.AddValue("y", 1);
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_NE(reg.Text().find("compiled out"), std::string::npos);
  EXPECT_EQ(reg.Json(), "{}");
}

TEST(StatsTraceTest, EventRingRecordsAndSorts) {
  obs::EventRing ring;
  ring.Emit(obs::Ev::kCheckpointBegin, 0);
  ring.Emit(obs::Ev::kFlushIssued, 4096);
  ring.Emit(obs::Ev::kCheckpointEnd, 0);
  auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ns, events[i - 1].ns);
  }
  EXPECT_EQ(events[0].id, static_cast<uint16_t>(obs::Ev::kCheckpointBegin));
  EXPECT_EQ(events[1].arg, 4096u);
}

TEST(StatsTraceTest, EventRingWrapsKeepingNewest) {
  obs::EventRing ring;
  constexpr uint32_t kTotal = obs::EventRing::kEventsPerThread + 100;
  for (uint32_t i = 0; i < kTotal; ++i) {
    ring.Emit(obs::Ev::kPageClosed, i);
  }
  auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), size_t{obs::EventRing::kEventsPerThread});
  // The oldest 100 events were overwritten.
  uint32_t min_arg = UINT32_MAX;
  for (const auto& e : events) min_arg = std::min(min_arg, e.arg);
  EXPECT_EQ(min_arg, 100u);
}

// ---------------------------------------------------------------------------
// Store end-to-end: DumpStats after real operations
// ---------------------------------------------------------------------------

TEST(StatsStoreTest, DumpStatsAfterOps) {
  MemoryDevice device;
  FasterKv<CountStoreFunctions>::Config cfg;
  cfg.table_size = 2048;
  cfg.log.memory_size_bytes = 16 << 20;
  FasterKv<CountStoreFunctions> store{cfg, &device};

  store.StartSession();
  for (uint64_t k = 0; k < 1000; ++k) store.Upsert(k, k);
  uint64_t out = 0;
  for (uint64_t k = 0; k < 1000; ++k) store.Read(k, 1, &out);
  for (uint64_t k = 0; k < 100; ++k) store.Rmw(k, 1);
  store.CompletePending(true);
  store.StopSession();

  std::string text = store.DumpStats();
  std::string json = store.DumpStats(/*json=*/true);
  if constexpr (obs::kStatsEnabled) {
    EXPECT_NE(text.find("store.reads"), std::string::npos) << text;
    EXPECT_NE(text.find("index.probe_len"), std::string::npos) << text;
    EXPECT_NE(text.find("store.read_mutable"), std::string::npos);
    // Counts must reflect the ops we ran.
    EXPECT_NE(text.find("store.upsert_append"), std::string::npos);
    EXPECT_TRUE(MiniJson::Valid(json)) << json;
    EXPECT_NE(json.find("\"store.reads\":1000"), std::string::npos) << json;
  } else {
    EXPECT_NE(text.find("compiled out"), std::string::npos);
    EXPECT_EQ(json, "{}");
  }
}

}  // namespace
}  // namespace faster
