#include "obs/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"
#include "mini_json.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace faster {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Registry;

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

TEST(StatsCounterTest, AddAndSum) {
  Counter c;
  EXPECT_EQ(c.Sum(), 0u);
  c.Inc();
  c.Add(41);
  EXPECT_EQ(c.Sum(), 42u);
}

// Threads that exit release their Thread::Id() slot; later threads reuse
// it. The shard must keep the dead thread's contribution and the new
// tenant's increments must land on top of it (release/acquire slot
// hand-off in Thread makes this exact, not approximate).
TEST(StatsCounterTest, ExactAcrossThreadExitAndSlotReuse) {
  Counter c;
  constexpr uint32_t kBatches = 4;
  constexpr uint32_t kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  for (uint32_t batch = 0; batch < kBatches; ++batch) {
    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&c] {
        for (uint64_t i = 0; i < kPerThread; ++i) c.Inc();
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(c.Sum(), kPerThread * kThreads * (batch + 1));
  }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

// An increment on one thread may be balanced by a decrement on a different
// thread (worker submits I/O, pool thread completes it). Individual shards
// go negative/positive but the cross-shard sum must stay exact.
TEST(StatsGaugeTest, CrossThreadIncDecSumsToZero) {
  Gauge g;
  constexpr uint64_t kOps = 5000;
  for (uint64_t i = 0; i < kOps; ++i) g.Inc();
  std::thread dec([&g] {
    for (uint64_t i = 0; i < kOps; ++i) g.Dec();
  });
  dec.join();
  EXPECT_EQ(g.Value(), 0);
  g.Add(7);
  EXPECT_EQ(g.Value(), 7);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(StatsHistogramTest, BucketBoundaries) {
  // Bucket 0 holds only the value 0; bucket b holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(1), 1u);
  EXPECT_EQ(Histogram::BucketFor(2), 2u);
  EXPECT_EQ(Histogram::BucketFor(3), 2u);
  EXPECT_EQ(Histogram::BucketFor(4), 3u);
  EXPECT_EQ(Histogram::BucketFor(7), 3u);
  EXPECT_EQ(Histogram::BucketFor(8), 4u);
  EXPECT_EQ(Histogram::BucketFor((uint64_t{1} << 61) - 1), 61u);
  EXPECT_EQ(Histogram::BucketFor(uint64_t{1} << 61), 62u);
  // Everything with bit_width > 62 lands in the overflow bucket.
  EXPECT_EQ(Histogram::BucketFor(uint64_t{1} << 62), 63u);
  EXPECT_EQ(Histogram::BucketFor(UINT64_MAX), 63u);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(62), (uint64_t{1} << 62) - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(63), UINT64_MAX);

  // Round-trip: every value's bucket upper bound is >= the value.
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{2}, uint64_t{3},
                     uint64_t{1000}, uint64_t{1} << 40, UINT64_MAX}) {
    EXPECT_GE(Histogram::BucketUpperBound(Histogram::BucketFor(v)), v);
  }
}

TEST(StatsHistogramTest, CountAndSnapshot) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  h.Record(0);
  h.Record(5);   // bucket 3 ([4,8))
  h.Record(5);
  h.Record(100);  // bucket 7 ([64,128))
  EXPECT_EQ(h.Count(), 4u);
  uint64_t buckets[Histogram::kNumBuckets];
  h.SnapshotBuckets(buckets);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[3], 2u);
  EXPECT_EQ(buckets[7], 1u);
}

TEST(StatsHistogramTest, PercentileReturnsBucketUpperBound) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0u);  // empty
  // 99 fast ops at 10 (bucket 4, upper bound 15), one slow op at 1000
  // (bucket 10, upper bound 1023).
  for (int i = 0; i < 99; ++i) h.Record(10);
  h.Record(1000);
  EXPECT_EQ(h.Percentile(0.50), 15u);
  EXPECT_EQ(h.Percentile(0.98), 15u);
  EXPECT_EQ(h.Percentile(1.0), 1023u);
  // The p50 bound is within 2x of the true value.
  EXPECT_GE(h.Percentile(0.50), 10u);
  EXPECT_LT(h.Percentile(0.50), 20u);
}

TEST(StatsHistogramTest, AggregatesAcrossThreads) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.Record(100);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), 4000u);
  EXPECT_EQ(h.Percentile(0.999), 127u);
}

// ---------------------------------------------------------------------------
// Registry exposition
// ---------------------------------------------------------------------------

TEST(StatsRegistryTest, TextFormat) {
  Counter c;
  c.Add(3);
  Gauge g;
  g.Add(-2);
  Histogram h;
  h.Record(10);
  Registry reg;
  reg.Add("z.counter", &c);
  reg.Add("a.gauge", &g);
  reg.Add("m.hist", &h);
  reg.AddValue("k.value", 99);
  EXPECT_EQ(reg.size(), 4u);
  std::string text = reg.Text();
  // Alphabetically sorted, one line each.
  size_t a = text.find("a.gauge");
  size_t k = text.find("k.value");
  size_t m = text.find("m.hist");
  size_t z = text.find("z.counter");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(k, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, k);
  EXPECT_LT(k, m);
  EXPECT_LT(m, z);
  EXPECT_NE(text.find("-2"), std::string::npos);
  EXPECT_NE(text.find("count=1 p50=15 p99=15 p999=15"), std::string::npos);
}

TEST(StatsRegistryTest, JsonRoundTrip) {
  Counter c;
  c.Add(17);
  Gauge g;
  g.Add(-4);
  Histogram h;
  h.Record(0);
  h.Record(300);
  Registry reg;
  reg.Add("ops", &c);
  reg.Add("depth", &g);
  reg.Add("lat", &h);
  reg.AddValue("extra", 5);
  std::string json = reg.Json();
  EXPECT_TRUE(MiniJson::Valid(json)) << json;
  EXPECT_NE(json.find("\"ops\":17"), std::string::npos) << json;
  EXPECT_NE(json.find("\"extra\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\":-4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  // Non-empty buckets as [upper_bound, count] pairs: 0 once, 300 -> bucket
  // [256,512) upper bound 511.
  EXPECT_NE(json.find("[0,1]"), std::string::npos) << json;
  EXPECT_NE(json.find("[511,1]"), std::string::npos) << json;
}

TEST(StatsRegistryTest, EmptyRegistryJsonIsValid) {
  Registry reg;
  EXPECT_TRUE(MiniJson::Valid(reg.Json()));
}

// ---------------------------------------------------------------------------
// ScopedTimer, noop twins, event ring
// ---------------------------------------------------------------------------

TEST(StatsTimerTest, ScopedTimerRecordsOnce) {
  Histogram h;
  {
    obs::ScopedTimerT<Histogram> timer{h};
  }
  EXPECT_EQ(h.Count(), 1u);
}

TEST(StatsNoopTest, NoopTypesAreInert) {
  obs::NoopCounter c;
  c.Inc();
  c.Add(5);
  EXPECT_EQ(c.Sum(), 0u);
  obs::NoopGauge g;
  g.Inc();
  EXPECT_EQ(g.Value(), 0);
  obs::NoopHistogram h;
  h.Record(123);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
  obs::NoopRegistry reg;
  reg.Add("x", &c);
  reg.AddValue("y", 1);
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_NE(reg.Text().find("compiled out"), std::string::npos);
  EXPECT_EQ(reg.Json(), "{}");
}

TEST(StatsTraceTest, EventRingRecordsAndSorts) {
  obs::EventRing ring;
  ring.Emit(obs::Ev::kCheckpointBegin, 0);
  ring.Emit(obs::Ev::kFlushIssued, 4096);
  ring.Emit(obs::Ev::kCheckpointEnd, 0);
  auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ns, events[i - 1].ns);
  }
  EXPECT_EQ(events[0].id, static_cast<uint16_t>(obs::Ev::kCheckpointBegin));
  EXPECT_EQ(events[1].arg, 4096u);
}

TEST(StatsTraceTest, EventRingWrapsKeepingNewest) {
  obs::EventRing ring;
  constexpr uint32_t kTotal = obs::EventRing::kEventsPerThread + 100;
  for (uint32_t i = 0; i < kTotal; ++i) {
    ring.Emit(obs::Ev::kPageClosed, i);
  }
  auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), size_t{obs::EventRing::kEventsPerThread});
  // The oldest 100 events were overwritten.
  uint32_t min_arg = UINT32_MAX;
  for (const auto& e : events) min_arg = std::min(min_arg, e.arg);
  EXPECT_EQ(min_arg, 100u);
}

// ---------------------------------------------------------------------------
// Spans: ring, RAII scopes, sampling, Chrome trace JSON
// ---------------------------------------------------------------------------

// Restores the span sampling period on scope exit so tests can't leak a
// 1-in-1 (or disabled) setting into later tests.
class SpanSampleGuard {
 public:
  explicit SpanSampleGuard(uint32_t every) : saved_{obs::SpanSampleEvery()} {
    obs::SetSpanSampleEvery(every);
  }
  ~SpanSampleGuard() { obs::SetSpanSampleEvery(saved_); }
  SpanSampleGuard(const SpanSampleGuard&) = delete;
  SpanSampleGuard& operator=(const SpanSampleGuard&) = delete;

 private:
  uint32_t saved_;
};

// The global ring accumulates across tests; filter by trace id to isolate.
std::vector<obs::SpanRecord> SpansOfTrace(uint64_t trace_id) {
  std::vector<obs::SpanRecord> out;
  for (const obs::SpanRecord& s : obs::GlobalSpanRing().Snapshot()) {
    if (s.trace_id == trace_id) out.push_back(s);
  }
  return out;
}

uint16_t K(obs::SpanKind k) { return static_cast<uint16_t>(k); }

TEST(SpanRingTest, RecordSnapshotSortedByStart) {
  obs::SpanRing ring;
  ring.Record(7, 2, 1, 300, 400, 9, obs::SpanKind::kIoExec);
  ring.Record(7, 1, 0, 100, 500, 0, obs::SpanKind::kRead);
  ring.Record(8, 3, 0, 200, 250, 0, obs::SpanKind::kUpsert);
  auto spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].start_ns, 100u);
  EXPECT_EQ(spans[0].kind, K(obs::SpanKind::kRead));
  EXPECT_EQ(spans[1].trace_id, 8u);
  EXPECT_EQ(spans[2].span_id, 2u);
  EXPECT_EQ(spans[2].parent_id, 1u);
  EXPECT_EQ(spans[2].arg, 9u);
  EXPECT_EQ(spans[2].end_ns, 400u);
}

TEST(SpanRingTest, WrapsKeepingNewest) {
  obs::SpanRing ring;
  constexpr uint32_t kTotal = obs::SpanRing::kSpansPerThread + 50;
  for (uint32_t i = 0; i < kTotal; ++i) {
    ring.Record(1, i + 1, 0, i + 1, i + 2, i, obs::SpanKind::kRmw);
  }
  auto spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), size_t{obs::SpanRing::kSpansPerThread});
  // The oldest 50 spans were overwritten.
  uint32_t min_arg = UINT32_MAX;
  for (const auto& s : spans) min_arg = std::min(min_arg, s.arg);
  EXPECT_EQ(min_arg, 50u);
}

TEST(SpanScopeTest, SampledRootEstablishesAmbientContext) {
  SpanSampleGuard guard{1};
  uint64_t trace_id = 0;
  {
    obs::OpSpan span{obs::SpanKind::kRead};
    ASSERT_TRUE(span.active());
    trace_id = span.trace_id();
    // Convention: a root's span id == its trace id, parent 0.
    EXPECT_EQ(span.span_id(), trace_id);
    EXPECT_EQ(obs::CurrentTrace().trace_id, trace_id);
    EXPECT_EQ(obs::CurrentTrace().span_id, span.span_id());
  }
  EXPECT_EQ(obs::CurrentTrace().trace_id, 0u);  // context restored
  auto spans = SpansOfTrace(trace_id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[0].kind, K(obs::SpanKind::kRead));
  EXPECT_GE(spans[0].end_ns, spans[0].start_ns);
}

TEST(SpanScopeTest, NestedOpSpanAttachesAsChild) {
  SpanSampleGuard guard{1};
  uint64_t trace_id = 0, root_id = 0, child_id = 0;
  {
    obs::OpSpan root{obs::SpanKind::kBatchChunk, 3};
    trace_id = root.trace_id();
    root_id = root.span_id();
    obs::OpSpan child{obs::SpanKind::kUpsert};
    ASSERT_TRUE(child.active());
    EXPECT_EQ(child.trace_id(), trace_id);  // no new trace started
    child_id = child.span_id();
    EXPECT_NE(child_id, root_id);
  }
  auto spans = SpansOfTrace(trace_id);
  ASSERT_EQ(spans.size(), 2u);
  for (const auto& s : spans) {
    if (s.span_id == child_id) {
      EXPECT_EQ(s.parent_id, root_id);
    }
    if (s.span_id == root_id) {
      EXPECT_EQ(s.parent_id, 0u);
    }
  }
}

TEST(SpanScopeTest, ChildSpanInactiveWithoutAmbientTrace) {
  ASSERT_EQ(obs::CurrentTrace().trace_id, 0u);
  obs::ChildSpan stage{obs::SpanKind::kBatchHash};
  EXPECT_FALSE(stage.active());  // never starts a trace on its own
}

TEST(SpanScopeTest, ChildSpanParentedUnderAmbient) {
  SpanSampleGuard guard{1};
  uint64_t trace_id = 0, root_id = 0, stage_id = 0;
  {
    obs::OpSpan root{obs::SpanKind::kBatchChunk};
    trace_id = root.trace_id();
    root_id = root.span_id();
    {
      obs::ChildSpan stage{obs::SpanKind::kBatchHash};
      ASSERT_TRUE(stage.active());
      stage_id = stage.span_id();
      // Work nested inside the stage parents under the stage.
      EXPECT_EQ(obs::CurrentTrace().span_id, stage_id);
    }
    EXPECT_EQ(obs::CurrentTrace().span_id, root_id);  // restored to root
  }
  auto spans = SpansOfTrace(trace_id);
  ASSERT_EQ(spans.size(), 2u);
  for (const auto& s : spans) {
    if (s.span_id == stage_id) {
      EXPECT_EQ(s.parent_id, root_id);
    }
  }
}

TEST(SpanScopeTest, ResumedSpanContinuesTraceOnAnotherThread) {
  SpanSampleGuard guard{1};
  obs::TraceContext captured;
  uint64_t trace_id = 0;
  uint16_t root_tid = 0;
  {
    obs::OpSpan root{obs::SpanKind::kRead};
    trace_id = root.trace_id();
    captured = obs::CurrentTrace();  // what the store copies into contexts
  }
  root_tid = static_cast<uint16_t>(Thread::Id());
  std::thread worker([&captured] {
    obs::ResumedSpan span{obs::SpanKind::kIoExec, captured.trace_id,
                          captured.span_id};
    EXPECT_TRUE(span.active());
    EXPECT_EQ(obs::CurrentTrace().trace_id, captured.trace_id);
  });
  worker.join();
  auto spans = SpansOfTrace(trace_id);
  ASSERT_EQ(spans.size(), 2u);
  bool saw_resumed = false;
  for (const auto& s : spans) {
    if (s.kind == K(obs::SpanKind::kIoExec)) {
      saw_resumed = true;
      EXPECT_EQ(s.parent_id, captured.span_id);
      EXPECT_NE(s.tid, root_tid);  // recorded on the worker's shard
    }
  }
  EXPECT_TRUE(saw_resumed);
}

TEST(SpanScopeTest, ResumedSpanInertForUnsampledTrace) {
  obs::ResumedSpan span{obs::SpanKind::kIoComplete, 0, 0};
  EXPECT_FALSE(span.active());
  EXPECT_EQ(obs::CurrentTrace().trace_id, 0u);
}

TEST(SpanScopeTest, SamplingZeroDisablesRecording) {
  SpanSampleGuard guard{0};
  obs::OpSpan span{obs::SpanKind::kRead};
  EXPECT_FALSE(span.active());
  EXPECT_EQ(obs::CurrentTrace().trace_id, 0u);
}

TEST(SpanScopeTest, OneInNSampling) {
  SpanSampleGuard guard{4};
  uint32_t sampled = 0;
  // Fresh thread => fresh thread-local sampling tick, so the count is
  // deterministic: ops 4 and 8 out of 8 start traces.
  std::thread t([&sampled] {
    for (int i = 0; i < 8; ++i) {
      obs::OpSpan span{obs::SpanKind::kRead};
      if (span.active()) ++sampled;
    }
  });
  t.join();
  EXPECT_EQ(sampled, 2u);
}

TEST(SpanTraceJsonTest, ChromeTraceIsValidJson) {
  std::vector<obs::SpanRecord> spans;
  obs::SpanRecord s{};
  s.trace_id = 42;
  s.span_id = 42;
  s.parent_id = 0;
  s.start_ns = 1500;
  s.end_ns = 3750;
  s.arg = 7;
  s.kind = K(obs::SpanKind::kRead);
  s.tid = 3;
  spans.push_back(s);
  std::vector<obs::TraceEvent> events;
  events.push_back(obs::TraceEvent{
      2000, 4096, static_cast<uint16_t>(obs::Ev::kFlushIssued), 1});
  std::ostringstream os;
  obs::WriteChromeTrace(os, spans, events);
  std::string json = os.str();
  EXPECT_TRUE(MiniJson::Valid(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  // Timestamps are microseconds with nanosecond precision.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":2.250"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace_id\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"read\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
}

TEST(SpanTraceJsonTest, EmptyTraceIsValidJson) {
  std::ostringstream os;
  obs::WriteChromeTrace(os, {}, {});
  EXPECT_TRUE(MiniJson::Valid(os.str())) << os.str();
}

// ---------------------------------------------------------------------------
// Store end-to-end: DumpStats after real operations
// ---------------------------------------------------------------------------

TEST(StatsStoreTest, DumpStatsAfterOps) {
  MemoryDevice device;
  FasterKv<CountStoreFunctions>::Config cfg;
  cfg.table_size = 2048;
  cfg.log.memory_size_bytes = 16 << 20;
  FasterKv<CountStoreFunctions> store{cfg, &device};

  store.StartSession();
  for (uint64_t k = 0; k < 1000; ++k) store.Upsert(k, k);
  uint64_t out = 0;
  for (uint64_t k = 0; k < 1000; ++k) store.Read(k, 1, &out);
  for (uint64_t k = 0; k < 100; ++k) store.Rmw(k, 1);
  store.CompletePending(true);
  store.StopSession();

  std::string text = store.DumpStats();
  std::string json = store.DumpStats(/*json=*/true);
  if constexpr (obs::kStatsEnabled) {
    EXPECT_NE(text.find("store.reads"), std::string::npos) << text;
    EXPECT_NE(text.find("index.probe_len"), std::string::npos) << text;
    EXPECT_NE(text.find("store.read_mutable"), std::string::npos);
    // Counts must reflect the ops we ran.
    EXPECT_NE(text.find("store.upsert_append"), std::string::npos);
    EXPECT_TRUE(MiniJson::Valid(json)) << json;
    EXPECT_NE(json.find("\"store.reads\":1000"), std::string::npos) << json;
  } else {
    EXPECT_NE(text.find("compiled out"), std::string::npos);
    EXPECT_EQ(json, "{}");
  }
}

// ---------------------------------------------------------------------------
// Store end-to-end: span lifecycle across the async boundary
// ---------------------------------------------------------------------------

// A storage read's spans must land under the same trace id as the Read()
// that issued it: the root read span, the pending-I/O window, the pool
// queue/exec spans (on a different thread), and the completion processing.
TEST(SpanStoreTest, TraceCrossesPendingIoBoundary) {
  if (!obs::kStatsEnabled) GTEST_SKIP() << "span instrumentation compiled out";
  SpanSampleGuard guard{0};  // don't trace the fill phase
  MemoryDevice device;
  FasterKv<CountStoreFunctions>::Config cfg;
  cfg.table_size = 2048;
  cfg.log.memory_size_bytes = 2ull << Address::kOffsetBits;
  cfg.log.mutable_fraction = 0.5;
  cfg.refresh_interval = 256;
  FasterKv<CountStoreFunctions> store{cfg, &device};
  store.StartSession();
  for (uint64_t k = 0; k < 400000; ++k) {
    ASSERT_EQ(store.Upsert(k, k), Status::kOk);
  }
  // Key 0 is now below the head address: reading it goes to storage.
  ASSERT_GT(store.hlog().head_address().control(), 64u);
  obs::SetSpanSampleEvery(1);
  uint64_t out = UINT64_MAX;
  ASSERT_EQ(store.Read(0, 0, &out), Status::kPending);
  ASSERT_TRUE(store.CompletePending(true));
  EXPECT_EQ(out, 0u);
  store.StopSession();

  auto all = obs::SnapshotSpans();
  // Our operation's root: the read span with span id == trace id that
  // started last (the global ring accumulates across tests).
  const obs::SpanRecord* root = nullptr;
  for (const auto& s : all) {
    if (s.kind == K(obs::SpanKind::kRead) && s.span_id == s.trace_id &&
        (root == nullptr || s.start_ns > root->start_ns)) {
      root = &s;
    }
  }
  ASSERT_NE(root, nullptr);
  bool saw_pending = false, saw_complete = false, crossed_thread = false;
  for (const auto& s : all) {
    if (s.trace_id != root->trace_id) continue;
    if (s.kind == K(obs::SpanKind::kPendingIo)) {
      saw_pending = true;
      EXPECT_EQ(s.parent_id, root->span_id);
      EXPECT_GE(s.end_ns, s.start_ns);
    }
    if (s.kind == K(obs::SpanKind::kIoComplete)) {
      saw_complete = true;
      EXPECT_EQ(s.parent_id, root->span_id);
    }
    if (s.tid != root->tid) crossed_thread = true;  // pool worker spans
  }
  EXPECT_TRUE(saw_pending);
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(crossed_thread);
}

// Each batch chunk opens a root span; the three pipeline stages are its
// direct children.
TEST(SpanStoreTest, BatchStagesParentUnderChunkSpan) {
  if (!obs::kStatsEnabled) GTEST_SKIP() << "span instrumentation compiled out";
  SpanSampleGuard guard{1};
  MemoryDevice device;
  using Store = FasterKv<CountStoreFunctions>;
  Store::Config cfg;
  cfg.table_size = 2048;
  cfg.log.memory_size_bytes = 16 << 20;
  Store store{cfg, &device};
  store.StartSession();
  constexpr size_t kOps = 8;
  Store::BatchOp ops[kOps];
  for (size_t i = 0; i < kOps; ++i) {
    ops[i].kind = Store::BatchOp::Kind::kUpsert;
    ops[i].key = i;
    ops[i].value = i * 10;
  }
  store.ExecuteBatch(ops, kOps);
  for (size_t i = 0; i < kOps; ++i) EXPECT_EQ(ops[i].status, Status::kOk);
  store.StopSession();

  auto all = obs::SnapshotSpans();
  const obs::SpanRecord* chunk = nullptr;
  for (const auto& s : all) {
    if (s.kind == K(obs::SpanKind::kBatchChunk) &&
        (chunk == nullptr || s.start_ns > chunk->start_ns)) {
      chunk = &s;
    }
  }
  ASSERT_NE(chunk, nullptr);
  EXPECT_EQ(chunk->span_id, chunk->trace_id);  // chunk is a root
  EXPECT_EQ(chunk->arg, kOps);                 // arg carries the chunk size
  uint32_t hash_stages = 0, resolve_stages = 0, execute_stages = 0;
  for (const auto& s : all) {
    if (s.trace_id != chunk->trace_id || s.span_id == chunk->span_id) continue;
    if (s.kind == K(obs::SpanKind::kBatchHash)) {
      ++hash_stages;
      EXPECT_EQ(s.parent_id, chunk->span_id);
    }
    if (s.kind == K(obs::SpanKind::kBatchResolve)) {
      ++resolve_stages;
      EXPECT_EQ(s.parent_id, chunk->span_id);
    }
    if (s.kind == K(obs::SpanKind::kBatchExecute)) {
      ++execute_stages;
      EXPECT_EQ(s.parent_id, chunk->span_id);
    }
  }
  EXPECT_EQ(hash_stages, 1u);
  EXPECT_EQ(resolve_stages, 1u);
  EXPECT_EQ(execute_stages, 1u);
}

}  // namespace
}  // namespace faster
