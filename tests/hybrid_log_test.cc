#include "core/hybrid_log.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "device/memory_device.h"

namespace faster {
namespace {

LogConfig SmallLog(uint64_t pages, double mutable_fraction) {
  LogConfig cfg;
  cfg.memory_size_bytes = pages << Address::kOffsetBits;
  cfg.mutable_fraction = mutable_fraction;
  return cfg;
}

/// Allocates with the caller-side retry protocol (NewPage + refresh).
Address MustAllocate(HybridLog& log, LightEpoch& epoch, uint32_t size) {
  for (;;) {
    uint64_t closed_page = 0;
    Address a = log.Allocate(size, &closed_page);
    if (a.IsValid()) return a;
    while (!log.NewPage(closed_page)) {
      epoch.Refresh();
      std::this_thread::yield();
    }
    epoch.Refresh();
  }
}

class HybridLogTest : public ::testing::Test {
 protected:
  void SetUp() override { epoch_.Protect(); }
  void TearDown() override { epoch_.Unprotect(); }
  LightEpoch epoch_;
  MemoryDevice device_;
};

TEST_F(HybridLogTest, FirstAllocationSkipsAddressZero) {
  HybridLog log{SmallLog(4, 0.9), &device_, &epoch_};
  Address a = MustAllocate(log, epoch_, 24);
  EXPECT_TRUE(a.IsValid());
  EXPECT_EQ(a.control(), 64u);
}

TEST_F(HybridLogTest, SequentialAllocationIsContiguous) {
  HybridLog log{SmallLog(4, 0.9), &device_, &epoch_};
  Address a = MustAllocate(log, epoch_, 32);
  Address b = MustAllocate(log, epoch_, 32);
  EXPECT_EQ(b - a, 32u);
}

TEST_F(HybridLogTest, AllocationCrossesPageBoundary) {
  HybridLog log{SmallLog(4, 0.5), &device_, &epoch_};
  uint32_t size = 512;
  Address last = Address::Invalid();
  uint64_t allocations = (Address::kPageSize / size) + 10;
  for (uint64_t i = 0; i < allocations; ++i) {
    Address a = MustAllocate(log, epoch_, size);
    if (last.IsValid() && a.page() != last.page()) {
      EXPECT_EQ(a.page(), last.page() + 1);
      EXPECT_EQ(a.offset(), 0u);
    }
    last = a;
  }
  EXPECT_GE(last.page(), 1u);
}

TEST_F(HybridLogTest, ReadOnlyOffsetMaintainsLag) {
  HybridLog log{SmallLog(8, 0.5), &device_, &epoch_};
  // ro lag should be 4 pages; fill 6 pages.
  uint32_t size = 1024;
  for (uint64_t i = 0; i < 6 * (Address::kPageSize / size); ++i) {
    MustAllocate(log, epoch_, size);
  }
  Address tail = log.tail_address();
  EXPECT_GE(tail.page(), 5u);
  Address ro = log.read_only_address();
  EXPECT_EQ(ro.page() + log.read_only_lag_pages(), tail.page());
  // Safe read-only catches up after refreshes.
  epoch_.Refresh();
  epoch_.Refresh();
  EXPECT_EQ(log.safe_read_only_address(), log.read_only_address());
}

TEST_F(HybridLogTest, PagesFlushBelowSafeReadOnly) {
  HybridLog log{SmallLog(8, 0.25), &device_, &epoch_};
  uint32_t size = 1024;
  for (uint64_t i = 0; i < 5 * (Address::kPageSize / size); ++i) {
    MustAllocate(log, epoch_, size);
  }
  epoch_.Refresh();
  epoch_.Refresh();
  device_.Drain();
  EXPECT_EQ(log.flushed_until_address(), log.safe_read_only_address());
  EXPECT_GT(device_.bytes_written(), 0u);
}

TEST_F(HybridLogTest, DataSurvivesRoundTripThroughDevice) {
  HybridLog log{SmallLog(4, 0.25), &device_, &epoch_};
  // Write a recognizable pattern into the first page.
  Address a = MustAllocate(log, epoch_, 64);
  std::memset(log.Get(a), 0xAB, 64);
  // Force enough churn that page 0 is flushed and evicted.
  uint32_t size = 4096;
  for (uint64_t i = 0; i < 8 * (Address::kPageSize / size); ++i) {
    MustAllocate(log, epoch_, size);
  }
  ASSERT_GT(log.head_address(), a);
  std::vector<uint8_t> buf(64);
  ASSERT_EQ(log.ReadFromDiskSync(a, 64, buf.data()), Status::kOk);
  for (uint8_t b : buf) EXPECT_EQ(b, 0xAB);
}

TEST_F(HybridLogTest, HeadNeverPassesFlushFrontier) {
  HybridLog log{SmallLog(4, 0.5), &device_, &epoch_};
  uint32_t size = 4096;
  for (uint64_t i = 0; i < 10 * (Address::kPageSize / size); ++i) {
    MustAllocate(log, epoch_, size);
  }
  EXPECT_LE(log.head_address(), log.flushed_until_address());
  EXPECT_LE(log.head_address(), log.safe_read_only_address());
  EXPECT_LE(log.safe_read_only_address(), log.read_only_address());
  EXPECT_LE(log.read_only_address(), log.tail_address());
}

TEST_F(HybridLogTest, InMemoryBufferNeverExceedsBudget) {
  HybridLog log{SmallLog(4, 0.5), &device_, &epoch_};
  uint32_t size = 2048;
  for (uint64_t i = 0; i < 12 * (Address::kPageSize / size); ++i) {
    MustAllocate(log, epoch_, size);
    // [head, tail) must span at most buffer_pages pages (tail itself may
    // momentarily sit on a page boundary during a transition).
    Address last_used = log.tail_address() - 1;
    EXPECT_LE(last_used.page() - log.head_address().page() + 1,
              log.buffer_pages());
  }
}

TEST_F(HybridLogTest, ShiftReadOnlyToTailFlushesEverything) {
  HybridLog log{SmallLog(8, 0.9), &device_, &epoch_};
  for (int i = 0; i < 1000; ++i) MustAllocate(log, epoch_, 64);
  Address tail = log.ShiftReadOnlyToTail(/*wait=*/true);
  EXPECT_GE(log.flushed_until_address(), tail);
  EXPECT_FALSE(log.io_error());
}

TEST_F(HybridLogTest, ShiftBeginAddressIsMonotonic) {
  HybridLog log{SmallLog(4, 0.9), &device_, &epoch_};
  for (int i = 0; i < 100; ++i) MustAllocate(log, epoch_, 64);
  Address mid{0, 1024};
  EXPECT_TRUE(log.ShiftBeginAddress(mid));
  EXPECT_EQ(log.begin_address(), mid);
  EXPECT_FALSE(log.ShiftBeginAddress(Address{0, 512}));  // backwards: no-op
  EXPECT_EQ(log.begin_address(), mid);
}

TEST_F(HybridLogTest, ConcurrentAllocationsAreDisjoint) {
  HybridLog log{SmallLog(16, 0.5), &device_, &epoch_};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  constexpr uint32_t kSize = 48;
  std::vector<std::vector<uint64_t>> addrs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      epoch_.Protect();
      addrs[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        Address a = MustAllocate(log, epoch_, kSize);
        addrs[t].push_back(a.control());
        if (i % 128 == 0) epoch_.Refresh();
      }
      epoch_.Unprotect();
    });
  }
  for (auto& t : threads) t.join();
  std::vector<uint64_t> all;
  for (auto& v : addrs) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (size_t i = 1; i < all.size(); ++i) {
    ASSERT_NE(all[i], all[i - 1]) << "duplicate address";
    ASSERT_GE(all[i] - all[i - 1], kSize) << "overlapping allocations";
  }
}

TEST_F(HybridLogTest, RecoverToPositionsMarkers) {
  HybridLog log{SmallLog(4, 0.9), &device_, &epoch_};
  Address begin{0, 64};
  Address tail{10, 512};
  log.RecoverTo(begin, tail);
  EXPECT_EQ(log.begin_address(), begin);
  EXPECT_EQ(log.head_address(), tail);
  EXPECT_EQ(log.read_only_address(), tail);
  EXPECT_EQ(log.safe_read_only_address(), tail);
  EXPECT_EQ(log.flushed_until_address(), tail);
  EXPECT_EQ(log.tail_address(), tail);
  // Allocation resumes exactly at the recovered tail.
  Address a = MustAllocate(log, epoch_, 64);
  EXPECT_EQ(a, tail);
}

TEST_F(HybridLogTest, ReadCacheModeEvictsWithoutFlushing) {
  LogConfig cfg = SmallLog(4, 0.5);
  cfg.read_cache_mode = true;
  HybridLog log{cfg, &device_, &epoch_};
  uint32_t size = 4096;
  for (uint64_t i = 0; i < 10 * (Address::kPageSize / size); ++i) {
    MustAllocate(log, epoch_, size);
  }
  device_.Drain();
  EXPECT_EQ(device_.bytes_written(), 0u);
  EXPECT_GT(log.head_address().page(), 0u);
}

}  // namespace
}  // namespace faster
