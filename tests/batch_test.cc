// The batched pipeline's correctness contract (DESIGN.md "Batched
// pipeline"): ExecuteBatch/ReadBatch/UpsertBatch/RmwBatch must be
// observably identical to issuing the same ops one at a time in order —
// across every HybridLog region (mutable in-place, safe-read-only RCU,
// fuzzy deferral, on-storage pending reads), through intra-batch
// dependencies, and across an index Grow. The harness runs every sequence
// against a mirror store using the single-op API and compares statuses,
// outputs, and final state.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"

namespace faster {
namespace {

using Store = FasterKv<CountStoreFunctions>;
using BatchOp = Store::BatchOp;
using Kind = Store::BatchOp::Kind;

Store::Config Cfg() {
  Store::Config cfg;
  cfg.table_size = 1024;
  cfg.log.memory_size_bytes = 16ull << Address::kOffsetBits;
  cfg.log.mutable_fraction = 0.9;
  return cfg;
}

// One op of a test sequence, plus the slots the two executions fill in.
struct TestOp {
  Kind kind = Kind::kRead;
  uint64_t key = 0;
  uint64_t arg = 0;  // rmw delta / upsert value
  uint64_t batch_out = UINT64_MAX;
  uint64_t seq_out = UINT64_MAX;
  Status batch_status = Status::kOk;
  Status seq_status = Status::kOk;
};

// Executes `ops` against `batch_store` via ExecuteBatch (in batches of
// `batch_size`) and against `mirror` via the single-op API, then asserts
// statuses and (post-CompletePending) outputs are identical.
void RunBoth(Store& batch_store, Store& mirror, std::vector<TestOp>& ops,
             size_t batch_size) {
  std::vector<BatchOp> b(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    b[i].kind = ops[i].kind;
    b[i].key = ops[i].key;
    if (ops[i].kind == Kind::kRead) {
      b[i].input = 0;
      b[i].output = &ops[i].batch_out;
    } else if (ops[i].kind == Kind::kUpsert) {
      b[i].value = ops[i].arg;
    } else {
      b[i].input = ops[i].arg;
    }
  }
  for (size_t done = 0; done < ops.size(); done += batch_size) {
    size_t n = std::min(batch_size, ops.size() - done);
    batch_store.ExecuteBatch(b.data() + done, n);
  }
  for (size_t i = 0; i < ops.size(); ++i) ops[i].batch_status = b[i].status;

  for (auto& op : ops) {
    switch (op.kind) {
      case Kind::kRead:
        op.seq_status = mirror.Read(op.key, 0, &op.seq_out);
        break;
      case Kind::kUpsert:
        op.seq_status = mirror.Upsert(op.key, op.arg);
        break;
      case Kind::kRmw:
        op.seq_status = mirror.Rmw(op.key, op.arg);
        break;
    }
  }

  for (size_t i = 0; i < ops.size(); ++i) {
    ASSERT_EQ(ops[i].batch_status, ops[i].seq_status)
        << "op " << i << " key " << ops[i].key;
  }
  ASSERT_TRUE(batch_store.CompletePending(true));
  ASSERT_TRUE(mirror.CompletePending(true));
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == Kind::kRead &&
        ops[i].seq_status != Status::kNotFound) {
      ASSERT_EQ(ops[i].batch_out, ops[i].seq_out)
          << "op " << i << " key " << ops[i].key;
    }
  }
}

// Reads every key in [0, n) from both stores and asserts identical state.
void AssertSameState(Store& a, Store& b, uint64_t n) {
  for (uint64_t k = 0; k < n; ++k) {
    uint64_t va = UINT64_MAX, vb = UINT64_MAX;
    Status sa = a.Read(k, 0, &va);
    Status sb = b.Read(k, 0, &vb);
    if (sa == Status::kPending) {
      ASSERT_TRUE(a.CompletePending(true));
      sa = Status::kOk;
    }
    if (sb == Status::kPending) {
      ASSERT_TRUE(b.CompletePending(true));
      sb = Status::kOk;
    }
    ASSERT_EQ(sa, sb) << "key " << k;
    if (sa == Status::kOk) {
      ASSERT_EQ(va, vb) << "key " << k;
    }
  }
}

std::vector<TestOp> RandomMix(uint64_t key_space, size_t count,
                              uint64_t seed) {
  std::mt19937_64 rng{seed};
  std::vector<TestOp> ops(count);
  for (auto& op : ops) {
    uint64_t p = rng() % 100;
    op.key = rng() % key_space;
    if (p < 50) {
      op.kind = Kind::kRead;
    } else if (p < 75) {
      op.kind = Kind::kUpsert;
      op.arg = rng() % 100000;
    } else {
      op.kind = Kind::kRmw;
      op.arg = rng() % 1000;
    }
  }
  return ops;
}

class BatchTest : public ::testing::Test {
 protected:
  MemoryDevice device_a_, device_b_;
};

// --- Mutable region: fast in-place reads/updates. --------------------------

TEST_F(BatchTest, MutableRegionMatchesSequential) {
  Store batch{Cfg(), &device_a_};
  Store mirror{Cfg(), &device_b_};
  batch.StartSession();
  mirror.StartSession();
  for (uint64_t k = 0; k < 512; ++k) {
    ASSERT_EQ(batch.Upsert(k, k * 3), Status::kOk);
    ASSERT_EQ(mirror.Upsert(k, k * 3), Status::kOk);
  }
  // Key space double the loaded range, so reads/RMWs hit absent keys too.
  auto ops = RandomMix(1024, 512, /*seed=*/42);
  RunBoth(batch, mirror, ops, 32);
  AssertSameState(batch, mirror, 1024);
  batch.StopSession();
  mirror.StopSession();
}

// --- Safe read-only region: reads via SingleReader, updates RCU. -----------

TEST_F(BatchTest, ReadOnlyRegionMatchesSequential) {
  auto cfg = Cfg();
  cfg.refresh_interval = 1u << 30;  // tests drive epochs explicitly
  Store batch{cfg, &device_a_};
  Store mirror{cfg, &device_b_};
  batch.StartSession();
  mirror.StartSession();
  for (uint64_t k = 0; k < 512; ++k) {
    ASSERT_EQ(batch.Upsert(k, k + 7), Status::kOk);
    ASSERT_EQ(mirror.Upsert(k, k + 7), Status::kOk);
  }
  // Make all loaded records read-only *and* safe in both stores.
  for (Store* s : {&batch, &mirror}) {
    s->hlog().ShiftReadOnlyToTail(false);
    s->Refresh();
    s->Refresh();
    ASSERT_EQ(s->hlog().safe_read_only_address(),
              s->hlog().read_only_address());
  }
  auto ops = RandomMix(1024, 512, /*seed=*/43);
  RunBoth(batch, mirror, ops, 64);
  AssertSameState(batch, mirror, 1024);
  batch.StopSession();
  mirror.StopSession();
}

// --- Fuzzy region: batch RMWs must defer exactly like single ops. ----------

TEST_F(BatchTest, FuzzyRegionRmwDefersLikeSequential) {
  auto cfg = Cfg();
  cfg.refresh_interval = 1u << 30;
  Store batch{cfg, &device_a_};
  Store mirror{cfg, &device_b_};
  batch.StartSession();
  mirror.StartSession();
  for (uint64_t k = 0; k < 64; ++k) {
    ASSERT_EQ(batch.Rmw(k, 10), Status::kOk);
    ASSERT_EQ(mirror.Rmw(k, 10), Status::kOk);
  }
  // Shift RO but do NOT refresh: records are observably fuzzy.
  for (Store* s : {&batch, &mirror}) {
    s->hlog().ShiftReadOnlyToTail(false);
    ASSERT_LT(s->hlog().safe_read_only_address(),
              s->hlog().read_only_address());
  }
  std::vector<TestOp> ops(64);
  for (uint64_t k = 0; k < 64; ++k) {
    ops[k] = TestOp{Kind::kRmw, k, 5};
  }
  RunBoth(batch, mirror, ops, 32);
  // Both paths must have deferred (fuzzy RMW => kPending, Sec. 6.2)...
  EXPECT_EQ(batch.GetStats().fuzzy_rmws, mirror.GetStats().fuzzy_rmws);
  EXPECT_GT(batch.GetStats().fuzzy_rmws, 0u);
  // ...and no increment may be lost after completion.
  AssertSameState(batch, mirror, 64);
  uint64_t out = 0;
  ASSERT_EQ(batch.Read(0, 0, &out), Status::kOk);
  EXPECT_EQ(out, 15u);
  batch.StopSession();
  mirror.StopSession();
}

// --- On storage: batch reads coalesce into pending I/O. --------------------

TEST_F(BatchTest, OnDiskReadsMatchSequential) {
  auto cfg = Cfg();
  cfg.log.memory_size_bytes = 2ull << Address::kOffsetBits;
  cfg.log.mutable_fraction = 0.5;
  cfg.refresh_interval = 256;
  Store batch{cfg, &device_a_};
  Store mirror{cfg, &device_b_};
  batch.StartSession();
  mirror.StartSession();
  for (uint64_t k = 0; k < 400000; ++k) {
    ASSERT_EQ(batch.Upsert(k, k * 2 + 1), Status::kOk);
    ASSERT_EQ(mirror.Upsert(k, k * 2 + 1), Status::kOk);
  }
  ASSERT_GT(batch.hlog().head_address().control(), 64u);
  ASSERT_GT(mirror.hlog().head_address().control(), 64u);

  uint64_t ios_before = batch.GetStats().pending_ios;
  // The oldest keys are on storage now; a batch of reads for them must go
  // pending (issued as one coalesced submission) and complete with the
  // same values the mirror's sequential pending reads produce.
  std::vector<TestOp> ops(64);
  for (uint64_t k = 0; k < 64; ++k) {
    ops[k] = TestOp{Kind::kRead, k};
  }
  RunBoth(batch, mirror, ops, 64);
  EXPECT_GT(batch.GetStats().pending_ios, ios_before);
  for (uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(ops[k].batch_out, k * 2 + 1) << "key " << k;
  }
  batch.StopSession();
  mirror.StopSession();
}

// --- Intra-batch dependencies: later ops see earlier writes. ---------------

TEST_F(BatchTest, IntraBatchDependenciesAreOrdered) {
  Store batch{Cfg(), &device_a_};
  Store mirror{Cfg(), &device_b_};
  batch.StartSession();
  mirror.StartSession();
  // Every pattern that requires issue-order semantics within one chunk:
  // write-then-read, rmw-then-read, write-then-rmw-then-read, duplicate
  // writes (last wins), read-before-write (sees the old value).
  std::vector<TestOp> ops;
  ops.push_back({Kind::kUpsert, 1, 100});
  ops.push_back({Kind::kRead, 1});           // must see 100
  ops.push_back({Kind::kRmw, 1, 11});
  ops.push_back({Kind::kRead, 1});           // must see 111
  ops.push_back({Kind::kUpsert, 2, 5});
  ops.push_back({Kind::kUpsert, 2, 6});      // last write wins
  ops.push_back({Kind::kRead, 2});           // must see 6
  ops.push_back({Kind::kRead, 3});           // absent before the write...
  ops.push_back({Kind::kUpsert, 3, 9});
  ops.push_back({Kind::kRead, 3});           // ...present after
  ops.push_back({Kind::kRmw, 4, 2});         // InitialUpdater on absent
  ops.push_back({Kind::kRead, 4});           // must see 2
  RunBoth(batch, mirror, ops, ops.size());   // all in ONE chunk
  EXPECT_EQ(ops[1].batch_out, 100u);
  EXPECT_EQ(ops[3].batch_out, 111u);
  EXPECT_EQ(ops[6].batch_out, 6u);
  EXPECT_EQ(ops[7].batch_status, Status::kNotFound);
  EXPECT_EQ(ops[9].batch_out, 9u);
  EXPECT_EQ(ops[11].batch_out, 2u);
  batch.StopSession();
  mirror.StopSession();
}

// --- Grow: batches before and after an index doubling. ---------------------

TEST_F(BatchTest, BatchesAcrossGrow) {
  auto cfg = Cfg();
  cfg.table_size = 64;  // heavy chains; Grow doubles twice below
  Store batch{cfg, &device_a_};
  Store mirror{cfg, &device_b_};
  uint64_t initial_size = batch.index().size();
  batch.StartSession();
  mirror.StartSession();
  auto ops1 = RandomMix(2048, 512, /*seed=*/44);
  RunBoth(batch, mirror, ops1, 64);
  batch.GrowIndex();
  batch.GrowIndex();
  ASSERT_EQ(batch.index().size(), initial_size * 4);
  // Every record written pre-Grow must be reachable via the doubled
  // index through the batch path, and new batches must keep matching.
  auto ops2 = RandomMix(2048, 512, /*seed=*/45);
  RunBoth(batch, mirror, ops2, 64);
  AssertSameState(batch, mirror, 2048);
  batch.StopSession();
  mirror.StopSession();
}

// --- Degenerate shapes: empty batches, single-op batches, chunk spans. -----

TEST_F(BatchTest, EmptyAndSingleOpBatches) {
  Store store{Cfg(), &device_a_};
  store.StartSession();
  store.ExecuteBatch(nullptr, 0);  // must be a no-op

  BatchOp one{};
  one.kind = Kind::kUpsert;
  one.key = 7;
  one.value = 70;
  store.ExecuteBatch(&one, 1);
  EXPECT_EQ(one.status, Status::kOk);

  uint64_t out = 0;
  one = BatchOp{};
  one.kind = Kind::kRead;
  one.key = 7;
  one.output = &out;
  store.ExecuteBatch(&one, 1);
  EXPECT_EQ(one.status, Status::kOk);
  EXPECT_EQ(out, 70u);
  store.StopSession();
}

// --- Typed wrappers, including counts that span multiple chunks. -----------

TEST_F(BatchTest, TypedWrappersMatchSequential) {
  Store batch{Cfg(), &device_a_};
  Store mirror{Cfg(), &device_b_};
  batch.StartSession();
  mirror.StartSession();

  constexpr size_t kN = 150;  // spans three kBatchChunk=64 chunks
  std::vector<uint64_t> keys(kN), values(kN), inputs(kN, 3);
  std::vector<uint64_t> outputs(kN, UINT64_MAX);
  std::vector<Status> statuses(kN);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = i % 100;  // duplicates exercise the dependency path
    values[i] = i * 10;
  }

  batch.UpsertBatch(keys.data(), values.data(), statuses.data(), kN);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(statuses[i], mirror.Upsert(keys[i], values[i])) << i;
  }

  batch.RmwBatch(keys.data(), inputs.data(), statuses.data(), kN);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(statuses[i], mirror.Rmw(keys[i], inputs[i])) << i;
  }

  batch.ReadBatch(keys.data(), inputs.data(), outputs.data(),
                  statuses.data(), kN);
  ASSERT_TRUE(batch.CompletePending(true));
  for (size_t i = 0; i < kN; ++i) {
    uint64_t expect = UINT64_MAX;
    ASSERT_EQ(mirror.Read(keys[i], 0, &expect), Status::kOk) << i;
    ASSERT_EQ(outputs[i], expect) << "key " << keys[i];
  }
  AssertSameState(batch, mirror, 100);
  batch.StopSession();
  mirror.StopSession();
}

}  // namespace
}  // namespace faster
