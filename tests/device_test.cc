#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "device/file_device.h"
#include "device/io_thread_pool.h"
#include "device/memory_device.h"

namespace faster {
namespace {

struct SyncIo {
  std::atomic<int> done{0};
  Status status = Status::kOk;
  static void Callback(void* ctx, Status s, uint32_t) {
    auto* self = static_cast<SyncIo*>(ctx);
    self->status = s;
    self->done.store(1, std::memory_order_release);
  }
  Status Wait() {
    while (done.load(std::memory_order_acquire) == 0) {
      std::this_thread::yield();
    }
    return status;
  }
};

TEST(IoThreadPoolTest, ExecutesAllJobs) {
  IoThreadPool pool{2};
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 1000);
}

TEST(IoThreadPoolTest, DrainWaitsForInFlightJob) {
  IoThreadPool pool{1};
  std::atomic<bool> finished{false};
  pool.Submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    finished.store(true);
  });
  pool.Drain();
  EXPECT_TRUE(finished.load());
}

template <class D>
void WriteReadRoundTrip(D& device) {
  std::vector<uint8_t> out(4096);
  for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<uint8_t>(i);
  SyncIo w;
  device.WriteAsync(out.data(), 8192, out.size(), &SyncIo::Callback, &w);
  ASSERT_EQ(w.Wait(), Status::kOk);

  std::vector<uint8_t> in(4096, 0);
  SyncIo r;
  device.ReadAsync(8192, in.data(), in.size(), &SyncIo::Callback, &r);
  ASSERT_EQ(r.Wait(), Status::kOk);
  EXPECT_EQ(std::memcmp(out.data(), in.data(), out.size()), 0);
  EXPECT_EQ(device.bytes_written(), out.size());
}

TEST(MemoryDeviceTest, WriteReadRoundTrip) {
  MemoryDevice device;
  WriteReadRoundTrip(device);
}

TEST(FileDeviceTest, WriteReadRoundTrip) {
  std::string path = "/tmp/faster_device_test.log";
  ::unlink(path.c_str());
  FileDevice device{path};
  WriteReadRoundTrip(device);
  ::unlink(path.c_str());
}

TEST(MemoryDeviceTest, ReadOfUnwrittenRegionFails) {
  MemoryDevice device;
  std::vector<uint8_t> in(64);
  SyncIo r;
  device.ReadAsync(1ull << 30, in.data(), in.size(), &SyncIo::Callback, &r);
  EXPECT_EQ(r.Wait(), Status::kIoError);
}

TEST(MemoryDeviceTest, CrossSegmentWrite) {
  MemoryDevice device;
  // Write spanning the 4 MB segment boundary.
  std::vector<uint8_t> out(1 << 16, 0x5C);
  uint64_t offset = (1ull << 22) - 1000;
  SyncIo w;
  device.WriteAsync(out.data(), offset, out.size(), &SyncIo::Callback, &w);
  ASSERT_EQ(w.Wait(), Status::kOk);
  std::vector<uint8_t> in(out.size());
  ASSERT_EQ(device.ReadSync(offset, in.data(), in.size()), Status::kOk);
  EXPECT_EQ(in, out);
}

TEST(MemoryDeviceTest, ConcurrentWritersToDistinctRegions) {
  MemoryDevice device{4};
  constexpr int kThreads = 4;
  constexpr int kWrites = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<uint8_t> buf(1024, static_cast<uint8_t>(t + 1));
      for (int i = 0; i < kWrites; ++i) {
        SyncIo w;
        uint64_t off = (static_cast<uint64_t>(t) * kWrites + i) * 1024;
        device.WriteAsync(buf.data(), off, buf.size(), &SyncIo::Callback, &w);
        ASSERT_EQ(w.Wait(), Status::kOk);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kWrites; ++i) {
      std::vector<uint8_t> in(1024);
      uint64_t off = (static_cast<uint64_t>(t) * kWrites + i) * 1024;
      ASSERT_EQ(device.ReadSync(off, in.data(), in.size()), Status::kOk);
      EXPECT_EQ(in[0], static_cast<uint8_t>(t + 1));
      EXPECT_EQ(in[1023], static_cast<uint8_t>(t + 1));
    }
  }
}

TEST(NullDeviceTest, DiscardsWritesAndFailsReads) {
  NullDevice device;
  std::vector<uint8_t> buf(64, 1);
  SyncIo w;
  device.WriteAsync(buf.data(), 0, buf.size(), &SyncIo::Callback, &w);
  EXPECT_EQ(w.Wait(), Status::kOk);
  EXPECT_EQ(device.bytes_written(), buf.size());
  SyncIo r;
  device.ReadAsync(0, buf.data(), buf.size(), &SyncIo::Callback, &r);
  EXPECT_EQ(r.Wait(), Status::kIoError);
}

}  // namespace
}  // namespace faster
