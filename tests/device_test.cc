#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "device/file_device.h"
#include "device/io_thread_pool.h"
#include "device/memory_device.h"

namespace faster {
namespace {

struct SyncIo {
  std::atomic<int> done{0};
  Status status = Status::kOk;
  static void Callback(void* ctx, Status s, uint32_t) {
    auto* self = static_cast<SyncIo*>(ctx);
    self->status = s;
    self->done.store(1, std::memory_order_release);
  }
  Status Wait() {
    while (done.load(std::memory_order_acquire) == 0) {
      std::this_thread::yield();
    }
    return status;
  }
};

TEST(IoThreadPoolTest, ExecutesAllJobs) {
  IoThreadPool pool{2};
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 1000);
}

TEST(IoThreadPoolTest, DrainWaitsForInFlightJob) {
  IoThreadPool pool{1};
  std::atomic<bool> finished{false};
  pool.Submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    finished.store(true);
  });
  pool.Drain();
  EXPECT_TRUE(finished.load());
}

template <class D>
void WriteReadRoundTrip(D& device) {
  std::vector<uint8_t> out(4096);
  for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<uint8_t>(i);
  SyncIo w;
  device.WriteAsync(out.data(), 8192, out.size(), &SyncIo::Callback, &w);
  ASSERT_EQ(w.Wait(), Status::kOk);

  std::vector<uint8_t> in(4096, 0);
  SyncIo r;
  device.ReadAsync(8192, in.data(), in.size(), &SyncIo::Callback, &r);
  ASSERT_EQ(r.Wait(), Status::kOk);
  EXPECT_EQ(std::memcmp(out.data(), in.data(), out.size()), 0);
  EXPECT_EQ(device.bytes_written(), out.size());
}

TEST(MemoryDeviceTest, WriteReadRoundTrip) {
  MemoryDevice device;
  WriteReadRoundTrip(device);
}

TEST(FileDeviceTest, WriteReadRoundTrip) {
  std::string path = "/tmp/faster_device_test.log";
  ::unlink(path.c_str());
  FileDevice device{path};
  WriteReadRoundTrip(device);
  ::unlink(path.c_str());
}

TEST(MemoryDeviceTest, ReadOfUnwrittenRegionFails) {
  MemoryDevice device;
  std::vector<uint8_t> in(64);
  SyncIo r;
  device.ReadAsync(1ull << 30, in.data(), in.size(), &SyncIo::Callback, &r);
  EXPECT_EQ(r.Wait(), Status::kIoError);
}

TEST(MemoryDeviceTest, CrossSegmentWrite) {
  MemoryDevice device;
  // Write spanning the 4 MB segment boundary.
  std::vector<uint8_t> out(1 << 16, 0x5C);
  uint64_t offset = (1ull << 22) - 1000;
  SyncIo w;
  device.WriteAsync(out.data(), offset, out.size(), &SyncIo::Callback, &w);
  ASSERT_EQ(w.Wait(), Status::kOk);
  std::vector<uint8_t> in(out.size());
  ASSERT_EQ(device.ReadSync(offset, in.data(), in.size()), Status::kOk);
  EXPECT_EQ(in, out);
}

TEST(MemoryDeviceTest, ConcurrentWritersToDistinctRegions) {
  MemoryDevice device{4};
  constexpr int kThreads = 4;
  constexpr int kWrites = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<uint8_t> buf(1024, static_cast<uint8_t>(t + 1));
      for (int i = 0; i < kWrites; ++i) {
        SyncIo w;
        uint64_t off = (static_cast<uint64_t>(t) * kWrites + i) * 1024;
        device.WriteAsync(buf.data(), off, buf.size(), &SyncIo::Callback, &w);
        ASSERT_EQ(w.Wait(), Status::kOk);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kWrites; ++i) {
      std::vector<uint8_t> in(1024);
      uint64_t off = (static_cast<uint64_t>(t) * kWrites + i) * 1024;
      ASSERT_EQ(device.ReadSync(off, in.data(), in.size()), Status::kOk);
      EXPECT_EQ(in[0], static_cast<uint8_t>(t + 1));
      EXPECT_EQ(in[1023], static_cast<uint8_t>(t + 1));
    }
  }
}

// ---------------------------------------------------------------------
// ReadBatchAsync partial failure: the accepted set must be a reported
// prefix, and rejected requests must never fire callbacks.
// ---------------------------------------------------------------------

/// Accepts the first `limit` reads (completing them inline) and rejects
/// the rest — a stand-in for a device hitting queue exhaustion mid-batch.
class RejectAfterDevice : public IDevice {
 public:
  explicit RejectAfterDevice(uint32_t limit) : limit_{limit} {}
  Status WriteAsync(const void*, uint64_t, uint32_t len, IoCallback callback,
                    void* context) override {
    callback(context, Status::kOk, len);
    return Status::kOk;
  }
  Status ReadAsync(uint64_t, void*, uint32_t len, IoCallback callback,
                   void* context) override {
    if (issued_ >= limit_) return Status::kIoError;
    ++issued_;
    callback(context, Status::kOk, len);
    return Status::kOk;
  }
  void Drain() override {}
  uint64_t bytes_written() const override { return 0; }

 private:
  uint32_t limit_;
  uint32_t issued_ = 0;
};

TEST(DeviceBatchTest, PartialBatchFailureReportsAcceptedPrefix) {
  RejectAfterDevice device{3};
  constexpr uint32_t kN = 5;
  int fired[kN] = {};
  uint8_t dst[kN][8];
  IoReadRequest reqs[kN];
  for (uint32_t i = 0; i < kN; ++i) {
    reqs[i] = IoReadRequest{
        i * 8, dst[i], 8,
        [](void* ctx, Status s, uint32_t) {
          ASSERT_EQ(s, Status::kOk);
          ++*static_cast<int*>(ctx);
        },
        &fired[i]};
  }
  uint32_t accepted = 99;
  EXPECT_EQ(device.ReadBatchAsync(reqs, kN, &accepted), Status::kIoError);
  EXPECT_EQ(accepted, 3u);
  for (uint32_t i = 0; i < 3; ++i) EXPECT_EQ(fired[i], 1) << i;
  for (uint32_t i = 3; i < kN; ++i) EXPECT_EQ(fired[i], 0) << i;
}

TEST(DeviceBatchTest, FullAcceptanceReportsN) {
  RejectAfterDevice device{8};
  constexpr uint32_t kN = 4;
  int fired[kN] = {};
  uint8_t dst[kN][8];
  IoReadRequest reqs[kN];
  for (uint32_t i = 0; i < kN; ++i) {
    reqs[i] = IoReadRequest{
        i * 8, dst[i], 8,
        [](void* ctx, Status, uint32_t) { ++*static_cast<int*>(ctx); },
        &fired[i]};
  }
  uint32_t accepted = 0;
  EXPECT_EQ(device.ReadBatchAsync(reqs, kN, &accepted), Status::kOk);
  EXPECT_EQ(accepted, kN);
  for (uint32_t i = 0; i < kN; ++i) EXPECT_EQ(fired[i], 1) << i;
}

// ---------------------------------------------------------------------
// Completion-polling path (IoPathMode::kPolling, DESIGN.md §13).
// ---------------------------------------------------------------------

/// Spin-waits on a SyncIo while driving the device's poll loop (polling
/// devices complete I/O on the polling thread, never in the background).
template <class D>
Status PollWait(D& device, SyncIo& io) {
  while (io.done.load(std::memory_order_acquire) == 0) {
    device.Poll();
    std::this_thread::yield();
  }
  return io.status;
}

TEST(PollingDeviceTest, WriteReadRoundTrip) {
  MemoryDevice device{0, 0, IoPathMode::kPolling};
  EXPECT_EQ(device.mode(), IoPathMode::kPolling);
  std::vector<uint8_t> out(4096);
  for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<uint8_t>(i);
  SyncIo w;
  device.WriteAsync(out.data(), 8192, out.size(), &SyncIo::Callback, &w);
  ASSERT_EQ(PollWait(device, w), Status::kOk);
  std::vector<uint8_t> in(4096, 0);
  SyncIo r;
  device.ReadAsync(8192, in.data(), in.size(), &SyncIo::Callback, &r);
  ASSERT_EQ(PollWait(device, r), Status::kOk);
  EXPECT_EQ(in, out);
}

TEST(PollingDeviceTest, CompletionsArriveOnlyWhenPolled) {
  MemoryDevice device{0, 0, IoPathMode::kPolling};
  std::vector<uint8_t> page(4096, 0x7E);
  SyncIo w;
  device.WriteAsync(page.data(), 0, page.size(), &SyncIo::Callback, &w);
  ASSERT_EQ(PollWait(device, w), Status::kOk);

  SyncIo r;
  std::vector<uint8_t> in(64);
  device.ReadAsync(0, in.data(), in.size(), &SyncIo::Callback, &r);
  // No poll yet: the op sits in this thread's submission ring.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(r.done.load(std::memory_order_acquire), 0);
  EXPECT_EQ(device.Poll(), 1u);
  EXPECT_EQ(r.done.load(std::memory_order_acquire), 1);
  EXPECT_EQ(r.status, Status::kOk);
}

TEST(PollingDeviceTest, QueueFullBackpressureExecutesInline) {
  MemoryDevice device{0, 0, IoPathMode::kPolling};
  std::vector<uint8_t> page(4096, 0x11);
  SyncIo w;
  device.WriteAsync(page.data(), 0, page.size(), &SyncIo::Callback, &w);
  ASSERT_EQ(PollWait(device, w), Status::kOk);

  constexpr uint32_t kRing = IoQueuePair::kSubmissionEntries;
  constexpr uint32_t kOps = kRing + 40;
  static std::atomic<uint32_t> completed;
  completed.store(0);
  std::vector<std::vector<uint8_t>> bufs(kOps, std::vector<uint8_t>(16));
  for (uint32_t i = 0; i < kOps; ++i) {
    device.ReadAsync(
        (i % 256) * 16, bufs[i].data(), 16,
        [](void*, Status s, uint32_t) {
          ASSERT_EQ(s, Status::kOk);
          completed.fetch_add(1, std::memory_order_relaxed);
        },
        nullptr);
  }
  // The ring holds kRing ops; the overflow executed inline at submit.
  EXPECT_EQ(completed.load(std::memory_order_relaxed), kOps - kRing);
  EXPECT_EQ(device.Poll(), kRing);
  EXPECT_EQ(completed.load(std::memory_order_relaxed), kOps);
}

TEST(PollingDeviceTest, ExactOnceAcrossConcurrentPollers) {
  MemoryDevice device{0, 0, IoPathMode::kPolling};
  std::vector<uint8_t> page(4096, 0x3A);
  SyncIo w;
  device.WriteAsync(page.data(), 0, page.size(), &SyncIo::Callback, &w);
  ASSERT_EQ(PollWait(device, w), Status::kOk);

  // > ring capacity so the submitter also exercises the inline path.
  constexpr uint32_t kOps = IoQueuePair::kSubmissionEntries + 100;
  constexpr uint32_t kPollers = 4;
  struct OpState {
    std::atomic<uint32_t> count{0};
  };
  std::vector<OpState> ops(kOps);
  static std::atomic<uint32_t> total;
  total.store(0);
  std::vector<std::vector<uint8_t>> bufs(kOps, std::vector<uint8_t>(16));

  // Submit from a dedicated thread, so every poller consumes foreign work
  // (the submitter exits with its ring still full — the abandoned-queue
  // case PollAll exists for).
  std::thread submitter([&] {
    for (uint32_t i = 0; i < kOps; ++i) {
      device.ReadAsync(
          (i % 256) * 16, bufs[i].data(), 16,
          [](void* ctx, Status s, uint32_t) {
            ASSERT_EQ(s, Status::kOk);
            static_cast<OpState*>(ctx)->count.fetch_add(
                1, std::memory_order_relaxed);
            total.fetch_add(1, std::memory_order_relaxed);
          },
          &ops[i]);
    }
  });
  submitter.join();

  std::vector<std::thread> pollers;
  for (uint32_t p = 0; p < kPollers; ++p) {
    pollers.emplace_back([&] {
      while (total.load(std::memory_order_relaxed) < kOps) {
        device.PollAll();
      }
    });
  }
  for (auto& t : pollers) t.join();

  EXPECT_EQ(total.load(std::memory_order_relaxed), kOps);
  for (uint32_t i = 0; i < kOps; ++i) {
    EXPECT_EQ(ops[i].count.load(std::memory_order_relaxed), 1u) << i;
  }
}

TEST(PollingDeviceTest, DrainWhilePollingDeliversExactlyOnce) {
  MemoryDevice device{0, 0, IoPathMode::kPolling};
  std::vector<uint8_t> page(4096, 0x99);
  SyncIo w;
  device.WriteAsync(page.data(), 0, page.size(), &SyncIo::Callback, &w);
  ASSERT_EQ(PollWait(device, w), Status::kOk);

  constexpr uint32_t kOps = 200;
  struct OpState {
    std::atomic<uint32_t> count{0};
  };
  std::vector<OpState> ops(kOps);
  static std::atomic<uint32_t> total2;
  total2.store(0);
  std::vector<std::vector<uint8_t>> bufs(kOps, std::vector<uint8_t>(16));
  std::atomic<bool> stop{false};
  // A concurrent foreign poller races Drain for the same queue pairs
  // (consumer-exclusion path).
  std::thread poller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      device.PollAll();
    }
  });
  for (uint32_t i = 0; i < kOps; ++i) {
    device.ReadAsync(
        (i % 256) * 16, bufs[i].data(), 16,
        [](void* ctx, Status s, uint32_t) {
          ASSERT_EQ(s, Status::kOk);
          static_cast<OpState*>(ctx)->count.fetch_add(
              1, std::memory_order_relaxed);
          total2.fetch_add(1, std::memory_order_relaxed);
        },
        &ops[i]);
  }
  device.Drain();
  EXPECT_EQ(total2.load(std::memory_order_relaxed), kOps);
  stop.store(true, std::memory_order_release);
  poller.join();
  for (uint32_t i = 0; i < kOps; ++i) {
    EXPECT_EQ(ops[i].count.load(std::memory_order_relaxed), 1u) << i;
  }
}

TEST(PollingDeviceTest, BatchSubmissionCompletesViaPoll) {
  MemoryDevice device{0, 0, IoPathMode::kPolling};
  std::vector<uint8_t> page(4096, 0xC4);
  SyncIo w;
  device.WriteAsync(page.data(), 0, page.size(), &SyncIo::Callback, &w);
  ASSERT_EQ(PollWait(device, w), Status::kOk);

  constexpr uint32_t kN = 32;
  static std::atomic<uint32_t> batch_done;
  batch_done.store(0);
  std::vector<std::vector<uint8_t>> bufs(kN, std::vector<uint8_t>(32));
  IoReadRequest reqs[kN];
  for (uint32_t i = 0; i < kN; ++i) {
    reqs[i] = IoReadRequest{
        i * 32, bufs[i].data(), 32,
        [](void*, Status s, uint32_t) {
          ASSERT_EQ(s, Status::kOk);
          batch_done.fetch_add(1, std::memory_order_relaxed);
        },
        nullptr};
  }
  uint32_t accepted = 0;
  ASSERT_EQ(device.ReadBatchAsync(reqs, kN, &accepted), Status::kOk);
  EXPECT_EQ(accepted, kN);
  while (batch_done.load(std::memory_order_relaxed) < kN) {
    device.Poll();
  }
  for (uint32_t i = 0; i < kN; ++i) EXPECT_EQ(bufs[i][0], 0xC4);
}

TEST(PollingFileDeviceTest, WriteReadRoundTrip) {
  std::string path = "/tmp/faster_device_poll_test.log";
  ::unlink(path.c_str());
  {
    FileDevice device{path, 0, IoPathMode::kPolling};
    EXPECT_EQ(device.mode(), IoPathMode::kPolling);
    std::vector<uint8_t> out(4096);
    for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<uint8_t>(i);
    SyncIo w;
    device.WriteAsync(out.data(), 8192, out.size(), &SyncIo::Callback, &w);
    ASSERT_EQ(PollWait(device, w), Status::kOk);
    std::vector<uint8_t> in(4096, 0);
    SyncIo r;
    device.ReadAsync(8192, in.data(), in.size(), &SyncIo::Callback, &r);
    ASSERT_EQ(PollWait(device, r), Status::kOk);
    EXPECT_EQ(in, out);
  }
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------
// io_uring backend (kUring): skips when the kernel/build lacks support —
// FileDevice then reports the degraded mode.
// ---------------------------------------------------------------------

TEST(UringDeviceTest, WriteReadRoundTripOrSkip) {
  std::string path = "/tmp/faster_device_uring_test.log";
  ::unlink(path.c_str());
  {
    FileDevice device{path, 0, IoPathMode::kUring};
    if (device.mode() != IoPathMode::kUring) {
      ::unlink(path.c_str());
      GTEST_SKIP() << "io_uring unavailable (build stub or kernel probe "
                      "failed); kUring degraded to kPolling as designed";
    }
    std::vector<uint8_t> out(4096);
    for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<uint8_t>(i);
    SyncIo w;
    device.WriteAsync(out.data(), 0, out.size(), &SyncIo::Callback, &w);
    ASSERT_EQ(PollWait(device, w), Status::kOk);

    std::vector<uint8_t> in(4096, 0);
    SyncIo r;
    device.ReadAsync(0, in.data(), in.size(), &SyncIo::Callback, &r);
    ASSERT_EQ(PollWait(device, r), Status::kOk);
    EXPECT_EQ(in, out);

    // Coalesced batch through the kernel ring.
    constexpr uint32_t kN = 16;
    static std::atomic<uint32_t> uring_done;
    uring_done.store(0);
    std::vector<std::vector<uint8_t>> bufs(kN, std::vector<uint8_t>(64));
    IoReadRequest reqs[kN];
    for (uint32_t i = 0; i < kN; ++i) {
      reqs[i] = IoReadRequest{
          i * 64, bufs[i].data(), 64,
          [](void*, Status s, uint32_t) {
            ASSERT_EQ(s, Status::kOk);
            uring_done.fetch_add(1, std::memory_order_relaxed);
          },
          nullptr};
    }
    uint32_t accepted = 0;
    ASSERT_EQ(device.ReadBatchAsync(reqs, kN, &accepted), Status::kOk);
    EXPECT_EQ(accepted, kN);
    while (uring_done.load(std::memory_order_relaxed) < kN) {
      device.Poll();
      std::this_thread::yield();
    }
    for (uint32_t i = 0; i < kN; ++i) {
      EXPECT_EQ(bufs[i][0], out[i * 64]) << i;
    }
    // Reads past EOF fail like the pread path does.
    SyncIo eof;
    uint8_t tiny[8];
    device.ReadAsync(1ull << 30, tiny, sizeof(tiny), &SyncIo::Callback, &eof);
    EXPECT_EQ(PollWait(device, eof), Status::kIoError);
  }
  ::unlink(path.c_str());
}

TEST(NullDeviceTest, DiscardsWritesAndFailsReads) {
  NullDevice device;
  std::vector<uint8_t> buf(64, 1);
  SyncIo w;
  device.WriteAsync(buf.data(), 0, buf.size(), &SyncIo::Callback, &w);
  EXPECT_EQ(w.Wait(), Status::kOk);
  EXPECT_EQ(device.bytes_written(), buf.size());
  SyncIo r;
  device.ReadAsync(0, buf.data(), buf.size(), &SyncIo::Callback, &r);
  EXPECT_EQ(r.Wait(), Status::kIoError);
}

}  // namespace
}  // namespace faster
