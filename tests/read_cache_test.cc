// Tests for the read cache (Appendix D): a second, never-flushed
// HybridLog instance holding copies of read-hot records, with index
// entries redirected back to the primary log on eviction.

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <thread>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"

namespace faster {
namespace {

using Store = FasterKv<CountStoreFunctions>;

Store::Config CacheConfig(uint64_t rc_pages = 2) {
  Store::Config cfg;
  cfg.table_size = 2048;
  cfg.log.memory_size_bytes = 2ull << Address::kOffsetBits;  // tiny: spills
  cfg.log.mutable_fraction = 0.5;
  cfg.enable_read_cache = true;
  cfg.read_cache.memory_size_bytes = rc_pages << Address::kOffsetBits;
  cfg.read_cache.mutable_fraction = 0.5;
  return cfg;
}

/// Loads enough keys that the early ones are evicted to storage.
void Spill(Store& store, uint64_t keys) {
  for (uint64_t k = 0; k < keys; ++k) {
    ASSERT_EQ(store.Upsert(k, k + 1), Status::kOk);
  }
  ASSERT_GT(store.hlog().head_address().control(), 64u);
}

uint64_t MustRead(Store& store, uint64_t key) {
  uint64_t out = UINT64_MAX;
  Status s = store.Read(key, 0, &out);
  if (s == Status::kPending) {
    EXPECT_TRUE(store.CompletePending(true));
  } else {
    EXPECT_EQ(s, Status::kOk);
  }
  return out;
}

class ReadCacheTest : public ::testing::Test {
 protected:
  MemoryDevice device_;
};

TEST_F(ReadCacheTest, SecondReadIsServedFromCache) {
  Store store{CacheConfig(), &device_};
  store.StartSession();
  Spill(store, 400000);
  // First read of a cold key: storage I/O, populates the cache.
  EXPECT_EQ(MustRead(store, 5), 6u);
  auto stats1 = store.GetStats();
  EXPECT_GT(stats1.pending_ios, 0u);
  // Second read: cache hit, no new I/O, completes synchronously.
  uint64_t out = 0;
  EXPECT_EQ(store.Read(5, 0, &out), Status::kOk);
  EXPECT_EQ(out, 6u);
  auto stats2 = store.GetStats();
  EXPECT_EQ(stats2.pending_ios, stats1.pending_ios);
  EXPECT_GT(stats2.read_cache_hits, 0u);
  store.StopSession();
}

TEST_F(ReadCacheTest, UpsertInvalidatesCachedCopy) {
  Store store{CacheConfig(), &device_};
  store.StartSession();
  Spill(store, 400000);
  EXPECT_EQ(MustRead(store, 7), 8u);       // cache key 7
  ASSERT_EQ(store.Upsert(7, 999), Status::kOk);  // newer version on log
  EXPECT_EQ(MustRead(store, 7), 999u);     // must not see the stale copy
  store.StopSession();
}

TEST_F(ReadCacheTest, RmwUsesCachedValueWithoutIo) {
  Store store{CacheConfig(), &device_};
  store.StartSession();
  Spill(store, 400000);
  EXPECT_EQ(MustRead(store, 9), 10u);  // cache key 9
  auto ios_before = store.GetStats().pending_ios;
  // RMW on the cached key: copy-update from the cache, no storage read.
  ASSERT_EQ(store.Rmw(9, 5), Status::kOk);
  EXPECT_EQ(store.GetStats().pending_ios, ios_before);
  EXPECT_EQ(MustRead(store, 9), 15u);
  store.StopSession();
}

TEST_F(ReadCacheTest, DeleteRemovesCachedKey) {
  Store store{CacheConfig(), &device_};
  store.StartSession();
  Spill(store, 400000);
  EXPECT_EQ(MustRead(store, 11), 12u);
  ASSERT_EQ(store.Delete(11), Status::kOk);
  uint64_t out = 0;
  Status s = store.Read(11, 0, &out);
  if (s == Status::kPending) {
    store.CompletePending(true);
    EXPECT_EQ(out, 0u);  // untouched
  } else {
    EXPECT_EQ(s, Status::kNotFound);
  }
  store.StopSession();
}

TEST_F(ReadCacheTest, EvictionRedirectsBackToPrimaryLog) {
  Store store{CacheConfig(/*rc_pages=*/2), &device_};
  store.StartSession();
  constexpr uint64_t kKeys = 400000;
  Spill(store, kKeys);
  // Read a wave of cold keys far larger than the cache capacity; early
  // cached entries get evicted and their index entries must be redirected
  // so the keys remain readable (from storage).
  for (uint64_t k = 0; k < 300000; k += 3) {
    uint64_t out = 0;
    Status s = store.Read(k, 0, &out);
    ASSERT_TRUE(s == Status::kOk || s == Status::kPending);
    if (k % 999 == 0) store.CompletePending(false);
  }
  store.CompletePending(true);
  // Every key is still readable with the right value.
  for (uint64_t k = 0; k < 300000; k += 2999) {
    EXPECT_EQ(MustRead(store, k), k + 1) << "key " << k;
  }
  store.StopSession();
}

TEST_F(ReadCacheTest, CheckpointWithReadCacheRecovers) {
  std::string dir = "/tmp/faster_rc_ckpt_test";
  std::filesystem::remove_all(dir);
  constexpr uint64_t kKeys = 400000;
  {
    Store store{CacheConfig(), &device_};
    store.StartSession();
    Spill(store, kKeys);
    // Populate the cache with some cold keys, then checkpoint: persisted
    // entries must point at the primary log, not the cache.
    for (uint64_t k = 0; k < 100; ++k) MustRead(store, k);
    ASSERT_EQ(store.Checkpoint(dir), Status::kOk);
    store.StopSession();
  }
  {
    Store store{CacheConfig(), &device_};
    ASSERT_EQ(store.Recover(dir), Status::kOk);
    store.StartSession();
    for (uint64_t k = 0; k < 100; ++k) {
      EXPECT_EQ(MustRead(store, k), k + 1) << "key " << k;
    }
    EXPECT_EQ(MustRead(store, kKeys / 2), kKeys / 2 + 1);
    store.StopSession();
  }
  std::filesystem::remove_all(dir);
}

TEST_F(ReadCacheTest, ConcurrentReadersWithCacheChurn) {
  Store store{CacheConfig(/*rc_pages=*/2), &device_};
  store.StartSession();
  constexpr uint64_t kKeys = 400000;
  Spill(store, kKeys);
  store.StopSession();

  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      store.StartSession();
      std::mt19937_64 rng(t + 1);
      // Outlives the loop: pending reads write here as late as the
      // CompletePending inside StopSession.
      uint64_t out = 0;
      for (int i = 0; i < 20000; ++i) {
        uint64_t k = rng() % kKeys;
        out = 0;
        Status s = store.Read(k, 0, &out);
        if (s == Status::kOk) {
          if (out != k + 1) errors.fetch_add(1);
        } else if (s != Status::kPending) {
          errors.fetch_add(1);
        }
        if (i % 512 == 0) store.CompletePending(false);
      }
      store.StopSession();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_GT(store.GetStats().read_cache_hits, 0u);
}

}  // namespace
}  // namespace faster
