#ifndef FASTER_TESTS_MINI_JSON_H_
#define FASTER_TESTS_MINI_JSON_H_

#include <cstring>
#include <string>

namespace faster {

/// Minimal JSON well-formedness checker (objects, arrays, strings, unsigned
/// and negative integers, optional fractional part, true/false/null) —
/// enough to prove the obs:: expositions emit valid JSON without pulling
/// in a parser dependency. Shared by stats_test, exporter_test, net_test,
/// and slowlog_test.
class MiniJson {
 public:
  static bool Valid(const std::string& s) {
    // Strip whitespace outside strings up front (the trace writer emits
    // newlines between events), keeping the grammar below whitespace-free.
    std::string compact;
    compact.reserve(s.size());
    bool in_string = false;
    for (char c : s) {
      if (c == '"') in_string = !in_string;
      if (!in_string && (c == ' ' || c == '\t' || c == '\n' || c == '\r')) {
        continue;
      }
      compact.push_back(c);
    }
    MiniJson p{compact};
    return p.Value() && p.pos_ == compact.size();
  }

 private:
  explicit MiniJson(const std::string& s) : s_{s} {}

  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Literal(const char* word) {
    size_t len = std::strlen(word);
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  bool Object() {
    ++pos_;  // '{'
    if (Peek('}')) return true;
    while (true) {
      if (!String() || !Eat(':') || !Value()) return false;
      if (Peek('}')) return true;
      if (!Eat(',')) return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    if (Peek(']')) return true;
    while (true) {
      if (!Value()) return false;
      if (Peek(']')) return true;
      if (!Eat(',')) return false;
    }
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    for (++pos_; pos_ < s_.size(); ++pos_) {
      if (s_[pos_] == '"') {
        ++pos_;
        return true;
      }
    }
    return false;
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    if (pos_ > start && pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      size_t frac = pos_;
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
      if (pos_ == frac) return false;
    }
    return pos_ > start && s_[pos_ - 1] >= '0';
  }
  bool Eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace faster

#endif  // FASTER_TESTS_MINI_JSON_H_
