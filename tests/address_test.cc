#include "core/address.h"

#include <gtest/gtest.h>

#include "core/hash_bucket.h"
#include "core/key_hash.h"
#include "core/record.h"

namespace faster {
namespace {

TEST(AddressTest, InvalidIsZero) {
  Address a;
  EXPECT_FALSE(a.IsValid());
  EXPECT_EQ(a.control(), 0u);
  EXPECT_EQ(Address::Invalid(), a);
}

TEST(AddressTest, PageOffsetRoundTrip) {
  Address a{5, 1234};
  EXPECT_EQ(a.page(), 5u);
  EXPECT_EQ(a.offset(), 1234u);
  EXPECT_EQ(a.control(), (5ull << Address::kOffsetBits) + 1234);
}

TEST(AddressTest, PageBoundaries) {
  Address a{7, Address::kMaxOffset};
  EXPECT_EQ(a.PageStart(), (Address{7, 0}));
  EXPECT_EQ(a.NextPageStart(), (Address{8, 0}));
  EXPECT_EQ((a + 1).page(), 8u);
  EXPECT_EQ((a + 1).offset(), 0u);
}

TEST(AddressTest, Ordering) {
  EXPECT_LT(Address(1, 100), Address(1, 101));
  EXPECT_LT(Address(1, Address::kMaxOffset), Address(2, 0));
  EXPECT_GE(Address(3, 0), Address(2, Address::kMaxOffset));
}

TEST(AddressTest, ArithmeticDifference) {
  Address a{2, 100};
  Address b{2, 60};
  EXPECT_EQ(a - b, 40u);
  EXPECT_EQ((b + 40), a);
}

TEST(AddressTest, MaxAddressFitsIn48Bits) {
  Address a{Address::kMaxAddress};
  EXPECT_EQ(a.page(), Address::kMaxPage);
  EXPECT_EQ(a.offset(), Address::kMaxOffset);
}

TEST(HashBucketEntryTest, FieldPacking) {
  Address addr{42, 99};
  HashBucketEntry e{addr, 0x7abc, true};
  EXPECT_EQ(e.address(), addr);
  EXPECT_EQ(e.tag(), 0x7abc);
  EXPECT_TRUE(e.tentative());
  HashBucketEntry f = e.Finalized();
  EXPECT_EQ(f.address(), addr);
  EXPECT_EQ(f.tag(), 0x7abc);
  EXPECT_FALSE(f.tentative());
}

TEST(HashBucketEntryTest, ZeroIsUnused) {
  HashBucketEntry e;
  EXPECT_TRUE(e.IsUnused());
  HashBucketEntry f{Address{1, 0}, 0, false};
  EXPECT_FALSE(f.IsUnused());
}

TEST(KeyHashTest, TagAndBucketAreDisjointBits) {
  KeyHash h{0xFFFF000000000123ull};
  EXPECT_EQ(h.Bucket(1024), 0x123u & 1023u);
  EXPECT_EQ(h.Tag(), 0xFFFF000000000123ull >> 49);
}

TEST(KeyHashTest, Mix64Avalanches) {
  // Neighboring keys should land in different buckets essentially always.
  int same = 0;
  for (uint64_t k = 0; k < 1000; ++k) {
    KeyHash a{Mix64(k)}, b{Mix64(k + 1)};
    if (a.Bucket(1 << 20) == b.Bucket(1 << 20)) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(RecordInfoTest, FieldPacking) {
  RecordInfo info{Address{3, 77}, false, true, true, false};
  EXPECT_EQ(info.previous_address(), (Address{3, 77}));
  EXPECT_FALSE(info.invalid());
  EXPECT_TRUE(info.tombstone());
  EXPECT_TRUE(info.in_use());
  EXPECT_TRUE(info.delta());
  EXPECT_FALSE(info.read_cache());
}

TEST(RecordInfoTest, ZeroHeaderIsNotInUse) {
  RecordInfo info{0};
  EXPECT_FALSE(info.in_use());
}

TEST(RecordTest, SizeIsAligned) {
  using R = Record<uint64_t, uint64_t>;
  EXPECT_EQ(R::size() % 8, 0u);
  EXPECT_EQ(R::size(), 24u);
  struct Value100 {
    uint8_t bytes[100];
  };
  using R100 = Record<uint64_t, Value100>;
  EXPECT_EQ(R100::size() % 8, 0u);
  EXPECT_GE(R100::size(), 8u + 8u + 100u);
}

TEST(RecordTest, InvalidAndTombstoneBits) {
  Record<uint64_t, uint64_t> rec;
  rec.set_info(RecordInfo{Address{1, 0}, false, false});
  EXPECT_FALSE(rec.info().invalid());
  rec.SetInvalid();
  EXPECT_TRUE(rec.info().invalid());
  EXPECT_FALSE(rec.info().tombstone());
  rec.SetTombstone();
  EXPECT_TRUE(rec.info().tombstone());
  EXPECT_EQ(rec.info().previous_address(), (Address{1, 0}));
}

}  // namespace
}  // namespace faster
