// Checkpoint/recovery property tests (Sec. 6.5), parameterized over store
// configurations. A single-threaded history is applied, a checkpoint
// taken, more operations run (which must NOT appear after recovery), and a
// recovered store is compared against the model at checkpoint time.

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>
#include <unordered_map>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"

namespace faster {
namespace {

struct RecoveryParams {
  std::string name;
  uint64_t table_size;
  uint64_t mem_pages;
  double mutable_fraction;
  uint64_t key_space;
  uint64_t ops_before;
  uint64_t ops_after;
};
std::ostream& operator<<(std::ostream& os, const RecoveryParams& p) {
  return os << p.name;
}

using Store = FasterKv<CountStoreFunctions>;

Store::Config MakeConfig(const RecoveryParams& p) {
  Store::Config cfg;
  cfg.table_size = p.table_size;
  cfg.log.memory_size_bytes = p.mem_pages << Address::kOffsetBits;
  cfg.log.mutable_fraction = p.mutable_fraction;
  return cfg;
}

class RecoveryTest : public ::testing::TestWithParam<RecoveryParams> {};

TEST_P(RecoveryTest, RecoveredStateEqualsCheckpointState) {
  const RecoveryParams& p = GetParam();
  std::string dir = "/tmp/faster_recovery_prop_" + p.name;
  std::filesystem::remove_all(dir);
  MemoryDevice device;

  std::unordered_map<uint64_t, uint64_t> model;
  std::mt19937_64 rng(p.ops_before);
  {
    Store store{MakeConfig(p), &device};
    store.StartSession();
    for (uint64_t i = 0; i < p.ops_before; ++i) {
      uint64_t key = rng() % p.key_space;
      switch (rng() % 3) {
        case 0: {
          uint64_t v = rng() % 100000;
          ASSERT_EQ(store.Upsert(key, v), Status::kOk);
          model[key] = v;
          break;
        }
        case 1: {
          uint64_t d = rng() % 100;
          Status s = store.Rmw(key, d);
          ASSERT_TRUE(s == Status::kOk || s == Status::kPending);
          if (s == Status::kPending) {
            ASSERT_TRUE(store.CompletePending(true));
          }
          model[key] += d;  // InitialUpdater(d) on absent == 0 + d
          break;
        }
        case 2: {
          store.Delete(key);
          model.erase(key);
          break;
        }
      }
    }
    ASSERT_TRUE(store.CompletePending(true));
    ASSERT_EQ(store.Checkpoint(dir), Status::kOk);
    // Post-checkpoint writes: all of these must be absent after recovery.
    for (uint64_t i = 0; i < p.ops_after; ++i) {
      uint64_t key = rng() % p.key_space;
      ASSERT_EQ(store.Upsert(key, UINT64_MAX / 2), Status::kOk);
    }
    store.StopSession();
  }
  {
    Store store{MakeConfig(p), &device};
    ASSERT_EQ(store.Recover(dir), Status::kOk);
    store.StartSession();
    uint64_t checked = 0;
    for (const auto& [key, value] : model) {
      uint64_t out = UINT64_MAX;
      Status s = store.Read(key, 0, &out);
      if (s == Status::kPending) {
        ASSERT_TRUE(store.CompletePending(true));
        s = out == UINT64_MAX ? Status::kNotFound : Status::kOk;
      }
      ASSERT_EQ(s, Status::kOk) << "key " << key;
      ASSERT_EQ(out, value) << "key " << key;
      if (++checked >= 4000) break;  // bound test time on big models
    }
    // Deleted / never-written keys stay absent.
    uint64_t absent_checked = 0;
    for (uint64_t key = 0; key < p.key_space && absent_checked < 500; ++key) {
      if (model.count(key) != 0) continue;
      ++absent_checked;
      uint64_t out = UINT64_MAX;
      Status s = store.Read(key, 0, &out);
      if (s == Status::kPending) {
        store.CompletePending(true);
        s = out == UINT64_MAX ? Status::kNotFound : Status::kOk;
      }
      ASSERT_EQ(s, Status::kNotFound) << "key " << key;
    }
    store.StopSession();
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RecoveryTest,
    ::testing::Values(
        RecoveryParams{"small_in_memory", 1024, 16, 0.9, 500, 20000, 100},
        RecoveryParams{"spilled", 1024, 2, 0.5, 200000, 200000, 1000},
        RecoveryParams{"tiny_index", 64, 8, 0.9, 3000, 30000, 100},
        RecoveryParams{"append_like", 2048, 4, 0.1, 20000, 80000, 500}),
    [](const auto& info) { return info.param.name; });

// Checkpoint while another thread keeps writing: recovery must serve every
// key from before the checkpoint began with *some* legitimately written
// value (the fuzzy checkpoint covers a superset of t1-state).
TEST(ConcurrentCheckpointTest, CheckpointDoesNotQuiesceWriters) {
  std::string dir = "/tmp/faster_recovery_concurrent";
  std::filesystem::remove_all(dir);
  MemoryDevice device;
  Store::Config cfg;
  cfg.table_size = 4096;
  cfg.log.memory_size_bytes = 8ull << Address::kOffsetBits;
  constexpr uint64_t kKeys = 50000;
  {
    Store store{cfg, &device};
    store.StartSession();
    for (uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_EQ(store.Upsert(k, k + 1), Status::kOk);
    }
    store.StopSession();

    std::atomic<bool> stop{false};
    std::thread writer([&] {
      store.StartSession();
      std::mt19937_64 rng(9);
      while (!stop.load()) {
        // Writers only rewrite the canonical value, so any recovered
        // prefix still maps key -> key+1.
        uint64_t k = rng() % kKeys;
        store.Upsert(k, k + 1);
      }
      store.StopSession();
    });
    store.StartSession();
    ASSERT_EQ(store.Checkpoint(dir), Status::kOk);
    store.StopSession();
    stop.store(true);
    writer.join();
  }
  {
    Store store{cfg, &device};
    ASSERT_EQ(store.Recover(dir), Status::kOk);
    store.StartSession();
    for (uint64_t k = 0; k < kKeys; k += 503) {
      uint64_t out = UINT64_MAX;
      Status s = store.Read(k, 0, &out);
      if (s == Status::kPending) {
        ASSERT_TRUE(store.CompletePending(true));
        s = out == UINT64_MAX ? Status::kNotFound : Status::kOk;
      }
      ASSERT_EQ(s, Status::kOk) << "key " << k;
      ASSERT_EQ(out, k + 1) << "key " << k;
    }
    store.StopSession();
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace faster
