// Additional model-based sweeps: the variable-length store and the LSM
// baseline against reference maps, and an end-to-end check that
// HybridLog's implicit caching keeps a skewed workload's hot set in
// memory (the Sec. 6.4 behaviour, at store level rather than in the
// simulator).

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>
#include <unordered_map>

#include "baselines/minilsm/db.h"
#include "core/faster.h"
#include "core/functions.h"
#include "core/varlen.h"
#include "device/memory_device.h"
#include "workload/keygen.h"

namespace faster {
namespace {

// ---------------------------------------------------------------------------
// FasterBlobKv vs. reference map under random mixed ops and sizes.
// ---------------------------------------------------------------------------

struct BlobParams {
  std::string name;
  uint64_t mem_pages;
  double mutable_fraction;
  double value_slack;
  uint32_t max_value;
  uint64_t num_ops;
};
std::ostream& operator<<(std::ostream& os, const BlobParams& p) {
  return os << p.name;
}

class BlobModelTest : public ::testing::TestWithParam<BlobParams> {};

TEST_P(BlobModelTest, MatchesReferenceModel) {
  const BlobParams& p = GetParam();
  MemoryDevice device;
  FasterBlobKv::Config cfg;
  cfg.table_size = 2048;
  cfg.log.memory_size_bytes = p.mem_pages << Address::kOffsetBits;
  cfg.log.mutable_fraction = p.mutable_fraction;
  cfg.value_slack = p.value_slack;
  FasterBlobKv store{cfg, &device};
  store.StartSession();

  std::unordered_map<std::string, std::string> model;
  std::mt19937_64 rng(p.num_ops);
  auto make_key = [&](uint64_t i) {
    return "key:" + std::to_string(i % 5000);
  };
  auto read_store = [&](const std::string& key)
      -> std::pair<bool, std::string> {
    std::string out = "\x01UNSET";
    Status s = store.Read(key, &out);
    if (s == Status::kPending) {
      EXPECT_TRUE(store.CompletePending(true));
      return {out != "\x01UNSET", out};
    }
    return {s == Status::kOk, out};
  };

  for (uint64_t i = 0; i < p.num_ops; ++i) {
    std::string key = make_key(rng());
    switch (rng() % 3) {
      case 0: {
        std::string value(1 + rng() % p.max_value,
                          static_cast<char>('a' + rng() % 26));
        ASSERT_EQ(store.Upsert(key, value), Status::kOk);
        model[key] = value;
        break;
      }
      case 1: {
        Status s = store.Delete(key);
        bool existed = model.erase(key) > 0;
        ASSERT_EQ(s == Status::kOk, existed) << key << " op " << i;
        break;
      }
      case 2: {
        auto [found, value] = read_store(key);
        auto it = model.find(key);
        ASSERT_EQ(found, it != model.end()) << key << " op " << i;
        if (found) {
          ASSERT_EQ(value, it->second) << key << " op " << i;
        }
        break;
      }
    }
  }
  for (const auto& [key, value] : model) {
    auto [found, got] = read_store(key);
    ASSERT_TRUE(found) << key;
    ASSERT_EQ(got, value) << key;
  }
  store.StopSession();
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BlobModelTest,
    ::testing::Values(
        BlobParams{"in_memory_small_values", 16, 0.9, 0.0, 32, 40000},
        BlobParams{"spilling_mixed_sizes", 2, 0.5, 0.0, 800, 60000},
        BlobParams{"with_slack", 4, 0.5, 0.5, 200, 50000},
        BlobParams{"append_heavy", 2, 0.0, 0.0, 120, 60000}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// MiniLsm vs. reference map under random mixed ops.
// ---------------------------------------------------------------------------

struct LsmParams {
  std::string name;
  uint64_t memtable_kb;
  uint32_t value_size;
  uint64_t key_space;
  uint64_t num_ops;
};
std::ostream& operator<<(std::ostream& os, const LsmParams& p) {
  return os << p.name;
}

class LsmModelTest : public ::testing::TestWithParam<LsmParams> {};

TEST_P(LsmModelTest, MatchesReferenceModel) {
  const LsmParams& p = GetParam();
  std::string dir = "/tmp/minilsm_model_" + p.name;
  std::filesystem::remove_all(dir);
  minilsm::LsmConfig cfg;
  cfg.dir = dir;
  cfg.value_size = p.value_size;
  cfg.memtable_bytes = p.memtable_kb << 10;
  minilsm::MiniLsm db{cfg};

  std::unordered_map<uint64_t, uint64_t> model;
  std::mt19937_64 rng(p.num_ops ^ 0xF00D);
  std::vector<uint8_t> buf(p.value_size, 0);
  for (uint64_t i = 0; i < p.num_ops; ++i) {
    uint64_t key = rng() % p.key_space;
    switch (rng() % 3) {
      case 0: {
        uint64_t v = rng();
        std::memcpy(buf.data(), &v, 8);
        ASSERT_EQ(db.Put(key, buf.data()), Status::kOk);
        model[key] = v;
        break;
      }
      case 1: {
        ASSERT_EQ(db.Delete(key), Status::kOk);
        model.erase(key);
        break;
      }
      case 2: {
        Status s = db.Get(key, buf.data());
        auto it = model.find(key);
        ASSERT_EQ(s == Status::kOk, it != model.end())
            << "key " << key << " op " << i;
        if (s == Status::kOk) {
          uint64_t v;
          std::memcpy(&v, buf.data(), 8);
          ASSERT_EQ(v, it->second) << "key " << key << " op " << i;
        }
        break;
      }
    }
  }
  for (const auto& [key, value] : model) {
    ASSERT_EQ(db.Get(key, buf.data()), Status::kOk) << key;
    uint64_t v;
    std::memcpy(&v, buf.data(), 8);
    ASSERT_EQ(v, value) << key;
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, LsmModelTest,
    ::testing::Values(LsmParams{"tiny_memtable", 32, 8, 2000, 40000},
                      LsmParams{"wide_values", 64, 100, 1000, 25000},
                      LsmParams{"churny", 16, 8, 300, 50000}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// End-to-end HybridLog caching behaviour (Sec. 6.4): under a skewed
// workload over a larger-than-memory dataset, the hot set stays in memory
// — the storage-read rate must be far below the cold-key access rate and
// far below the uniform workload's.
// ---------------------------------------------------------------------------

TEST(HybridLogCachingTest, SkewKeepsHotSetInMemory) {
  using Store = FasterKv<CountStoreFunctions>;
  auto run = [](Distribution dist) {
    MemoryDevice device;
    Store::Config cfg;
    cfg.table_size = 1 << 16;
    cfg.log.memory_size_bytes = 2ull << Address::kOffsetBits;  // 8 MB
    cfg.log.mutable_fraction = 0.9;
    Store store{cfg, &device};
    store.StartSession();
    constexpr uint64_t kKeys = 1 << 20;  // 24 MB of records: 3x memory
    for (uint64_t k = 0; k < kKeys; ++k) store.Upsert(k, 1);
    auto keys = MakeKeyGenerator(dist, kKeys, 99);
    uint64_t before_ios = store.GetStats().pending_ios;
    constexpr uint64_t kOps = 400000;
    for (uint64_t i = 0; i < kOps; ++i) {
      Status s = store.Rmw(keys->Next(), 1);
      EXPECT_TRUE(s == Status::kOk || s == Status::kPending);
      if (i % 4096 == 0) store.CompletePending(false);
    }
    store.CompletePending(true);
    double miss_rate =
        static_cast<double>(store.GetStats().pending_ios - before_ios) /
        static_cast<double>(kOps);
    store.StopSession();
    return miss_rate;
  };
  double zipf_miss = run(Distribution::kZipfian);
  double uniform_miss = run(Distribution::kUniform);
  // Uniform over 3x-memory data: most accesses miss. Zipf: the hybrid
  // log's shaping keeps the hot set resident, so misses are far rarer.
  EXPECT_GT(uniform_miss, 0.4);
  EXPECT_LT(zipf_miss, uniform_miss / 3);
}

}  // namespace
}  // namespace faster
