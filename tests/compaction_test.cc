// Tests for log garbage collection (Appendix C): expiration-based
// truncation (ShiftBeginAddress) and roll-to-tail compaction (CompactLog),
// including the overwrite-bit fast path.

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <thread>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"

namespace faster {
namespace {

using Store = FasterKv<CountStoreFunctions>;

Store::Config Cfg(uint64_t pages, double mf = 0.5) {
  Store::Config cfg;
  cfg.table_size = 4096;
  cfg.log.memory_size_bytes = pages << Address::kOffsetBits;
  cfg.log.mutable_fraction = mf;
  return cfg;
}

uint64_t MustRead(Store& store, uint64_t key, Status* status = nullptr) {
  uint64_t out = UINT64_MAX;
  Status s = store.Read(key, 0, &out);
  if (s == Status::kPending) {
    store.CompletePending(true);
    s = out == UINT64_MAX ? Status::kNotFound : Status::kOk;
  }
  if (status != nullptr) *status = s;
  return out;
}

class CompactionTest : public ::testing::Test {
 protected:
  MemoryDevice device_;
};

TEST_F(CompactionTest, CompactionPreservesLiveKeys) {
  Store store{Cfg(2), &device_};
  store.StartSession();
  constexpr uint64_t kKeys = 200000;
  // Two rounds of upserts with the log pushed stable in between, so the
  // round-1 records are dead garbage in the stable region.
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_EQ(store.Upsert(k, 1), Status::kOk);
  store.hlog().ShiftReadOnlyToTail(true);
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_EQ(store.Upsert(k, 2), Status::kOk);
  store.hlog().ShiftReadOnlyToTail(true);

  // Compact the first half of the stable region.
  Address until{store.hlog().safe_read_only_address().control() / 2};
  Store::CompactionStats stats;
  ASSERT_EQ(store.CompactLog(until, &stats), Status::kOk);
  EXPECT_GT(stats.scanned, 0u);
  EXPECT_GE(store.hlog().begin_address(), until);

  // Every key still readable with the newest value.
  for (uint64_t k = 0; k < kKeys; k += 997) {
    Status s;
    EXPECT_EQ(MustRead(store, k, &s), 2u) << "key " << k;
    EXPECT_EQ(s, Status::kOk);
  }
  store.StopSession();
}

TEST_F(CompactionTest, OverwriteBitSkipsLivenessChecks) {
  Store store{Cfg(8, 0.9), &device_};
  store.StartSession();
  constexpr uint64_t kKeys = 50000;
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_EQ(store.Upsert(k, 1), Status::kOk);
  // Force everything below the read-only offset so the second round
  // appends (RCU) and marks the old records overwritten.
  store.hlog().ShiftReadOnlyToTail(true);
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_EQ(store.Upsert(k, 2), Status::kOk);
  store.hlog().ShiftReadOnlyToTail(true);

  Store::CompactionStats stats;
  ASSERT_EQ(store.CompactLog(store.hlog().safe_read_only_address(), &stats),
            Status::kOk);
  // Round-1 records were superseded while in memory: the overwrite bit
  // fast path must have caught (nearly) all of them.
  EXPECT_GT(stats.dead_by_overwrite_bit, kKeys / 2);
  for (uint64_t k = 0; k < kKeys; k += 991) {
    EXPECT_EQ(MustRead(store, k), 2u);
  }
  store.StopSession();
}

TEST_F(CompactionTest, DeletedKeysAreNotResurrected) {
  Store store{Cfg(8, 0.5), &device_};
  store.StartSession();
  constexpr uint64_t kKeys = 20000;
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_EQ(store.Upsert(k, 5), Status::kOk);
  store.hlog().ShiftReadOnlyToTail(true);
  // Delete every third key (tombstones append).
  for (uint64_t k = 0; k < kKeys; k += 3) ASSERT_EQ(store.Delete(k), Status::kOk);
  store.hlog().ShiftReadOnlyToTail(true);

  ASSERT_EQ(store.CompactLog(store.hlog().safe_read_only_address(), nullptr),
            Status::kOk);
  for (uint64_t k = 0; k < kKeys; k += 331) {
    Status s;
    uint64_t v = MustRead(store, k, &s);
    if (k % 3 == 0) {
      EXPECT_NE(s, Status::kOk) << "deleted key " << k << " resurrected";
    } else {
      EXPECT_EQ(s, Status::kOk);
      EXPECT_EQ(v, 5u);
    }
  }
  store.StopSession();
}

TEST_F(CompactionTest, CompactionShrinksLiveLog) {
  auto cfg = Cfg(2, 0.5);
  cfg.force_rcu = true;  // append-only: heavy churn creates dead versions
  Store store{cfg, &device_};
  store.StartSession();
  constexpr uint64_t kKeys = 20000;
  // Heavy churn on a small key set: most of the log is dead versions.
  std::mt19937_64 rng(3);
  for (uint64_t i = 0; i < 400000; ++i) {
    ASSERT_EQ(store.Upsert(rng() % kKeys, i), Status::kOk);
  }
  store.hlog().ShiftReadOnlyToTail(true);
  Address until = store.hlog().safe_read_only_address();
  uint64_t log_size_before =
      store.hlog().tail_address() - store.hlog().begin_address();
  Store::CompactionStats stats;
  ASSERT_EQ(store.CompactLog(until, &stats), Status::kOk);
  // The copied set is bounded by the number of live keys, which is tiny
  // compared to the scanned dead versions.
  EXPECT_LE(stats.copied, kKeys);
  EXPECT_GT(stats.scanned, stats.copied * 4);
  uint64_t live_after =
      store.hlog().tail_address() - store.hlog().begin_address();
  EXPECT_LT(live_after, log_size_before);
  store.StopSession();
}

TEST_F(CompactionTest, ConcurrentUpdatesDuringCompaction) {
  Store store{Cfg(4, 0.5), &device_};
  store.StartSession();
  constexpr uint64_t kKeys = 100000;
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_EQ(store.Upsert(k, 1), Status::kOk);
  store.StopSession();

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    store.StartSession();
    std::mt19937_64 rng(11);
    while (!stop.load()) {
      store.Upsert(rng() % kKeys, 7);
      store.CompletePending(false);
    }
    store.StopSession();
  });

  store.StartSession();
  Address until{store.hlog().safe_read_only_address().control() / 2};
  ASSERT_EQ(store.CompactLog(until, nullptr), Status::kOk);
  store.StopSession();
  stop.store(true);
  mutator.join();

  store.StartSession();
  for (uint64_t k = 0; k < kKeys; k += 1009) {
    Status s;
    uint64_t v = MustRead(store, k, &s);
    ASSERT_EQ(s, Status::kOk) << "key " << k;
    ASSERT_TRUE(v == 1 || v == 7) << "key " << k << " value " << v;
  }
  store.StopSession();
}

TEST_F(CompactionTest, ExpirationTruncationDropsPrefix) {
  Store store{Cfg(8, 0.5), &device_};
  store.StartSession();
  for (uint64_t k = 0; k < 1000; ++k) ASSERT_EQ(store.Upsert(k, k), Status::kOk);
  Address cut = store.hlog().tail_address();
  for (uint64_t k = 1000; k < 2000; ++k) ASSERT_EQ(store.Upsert(k, k), Status::kOk);
  ASSERT_TRUE(store.ShiftBeginAddress(cut));
  // Expired prefix: gone. Suffix: intact.
  Status s;
  MustRead(store, 5, &s);
  EXPECT_EQ(s, Status::kNotFound);
  EXPECT_EQ(MustRead(store, 1500, &s), 1500u);
  EXPECT_EQ(s, Status::kOk);
  store.StopSession();
}

}  // namespace
}  // namespace faster
