#include "memstore/inmem_kv.h"

#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

#include "core/functions.h"

namespace faster {
namespace {

using Store = InMemKv<CountStoreFunctions>;

TEST(InMemKvTest, UpsertReadRoundTrip) {
  Store store{1024};
  store.StartSession();
  EXPECT_EQ(store.Upsert(1, 10), Status::kOk);
  uint64_t out = 0;
  EXPECT_EQ(store.Read(1, 0, &out), Status::kOk);
  EXPECT_EQ(out, 10u);
  store.StopSession();
}

TEST(InMemKvTest, ReadMissing) {
  Store store{1024};
  store.StartSession();
  uint64_t out = 0;
  EXPECT_EQ(store.Read(99, 0, &out), Status::kNotFound);
  store.StopSession();
}

TEST(InMemKvTest, UpsertIsInPlace) {
  Store store{1024};
  store.StartSession();
  ASSERT_EQ(store.Upsert(1, 10), Status::kOk);
  ASSERT_EQ(store.Upsert(1, 20), Status::kOk);
  uint64_t out = 0;
  ASSERT_EQ(store.Read(1, 0, &out), Status::kOk);
  EXPECT_EQ(out, 20u);
  store.StopSession();
}

TEST(InMemKvTest, RmwIncrements) {
  Store store{1024};
  store.StartSession();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(store.Rmw(5, 2), Status::kOk);
  }
  uint64_t out = 0;
  ASSERT_EQ(store.Read(5, 0, &out), Status::kOk);
  EXPECT_EQ(out, 200u);
  store.StopSession();
}

TEST(InMemKvTest, DeleteRemovesKey) {
  Store store{1024};
  store.StartSession();
  ASSERT_EQ(store.Upsert(1, 10), Status::kOk);
  EXPECT_EQ(store.Delete(1), Status::kOk);
  uint64_t out = 0;
  EXPECT_EQ(store.Read(1, 0, &out), Status::kNotFound);
  EXPECT_EQ(store.Delete(1), Status::kNotFound);
  store.StopSession();
}

TEST(InMemKvTest, DeletedMemoryIsReclaimedAfterEpochSafety) {
  Store store{1024};
  store.StartSession();
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_EQ(store.Upsert(k, k), Status::kOk);
  }
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_EQ(store.Delete(k), Status::kOk);
  }
  EXPECT_GT(store.RetiredCount(), 0u);
  // Refresh cycles make the retirement epochs safe and drain free lists.
  for (int i = 0; i < 4; ++i) store.Refresh();
  EXPECT_EQ(store.RetiredCount(), 0u);
  store.StopSession();
}

TEST(InMemKvTest, ManyKeysWithCollisions) {
  Store store{64};  // tiny table: long chains + overflow buckets
  store.StartSession();
  constexpr uint64_t kKeys = 20000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(store.Upsert(k, k + 1), Status::kOk);
  }
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t out = 0;
    ASSERT_EQ(store.Read(k, 0, &out), Status::kOk);
    ASSERT_EQ(out, k + 1);
  }
  store.StopSession();
}

TEST(InMemKvTest, ConcurrentRmwSum) {
  Store store{4096};
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 25000;
  constexpr uint64_t kKeys = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      store.StartSession();
      std::mt19937_64 rng(t);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        ASSERT_EQ(store.Rmw(rng() % kKeys, 1), Status::kOk);
      }
      store.StopSession();
    });
  }
  for (auto& t : threads) t.join();
  store.StartSession();
  uint64_t total = 0;
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t out = 0;
    if (store.Read(k, 0, &out) == Status::kOk) total += out;
  }
  EXPECT_EQ(total, kThreads * kPerThread);
  store.StopSession();
}

TEST(InMemKvTest, ConcurrentUpsertDelete) {
  Store store{4096};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      store.StartSession();
      std::mt19937_64 rng(t * 17 + 1);
      for (int i = 0; i < 20000; ++i) {
        uint64_t k = rng() % 64;
        if (rng() % 3 == 0) {
          store.Delete(k);
        } else {
          store.Upsert(k, k * 10);
        }
      }
      store.StopSession();
    });
  }
  for (auto& t : threads) t.join();
  // Every surviving key must read its canonical value.
  store.StartSession();
  for (uint64_t k = 0; k < 64; ++k) {
    uint64_t out = 0;
    Status s = store.Read(k, 0, &out);
    if (s == Status::kOk) {
      EXPECT_EQ(out, k * 10);
    }
  }
  store.StopSession();
}

}  // namespace
}  // namespace faster
