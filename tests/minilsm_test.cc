#include "baselines/minilsm/db.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <random>
#include <thread>
#include <vector>

#include "baselines/minilsm/bloom.h"
#include "baselines/minilsm/sstable.h"
#include "core/key_hash.h"

namespace faster {
namespace minilsm {
namespace {

class MiniLsmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/minilsm_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  LsmConfig Config(uint32_t value_size = 8,
                   uint64_t memtable_bytes = 64 << 10) {
    LsmConfig cfg;
    cfg.dir = dir_;
    cfg.value_size = value_size;
    cfg.memtable_bytes = memtable_bytes;
    return cfg;
  }

  std::string dir_;
};

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bloom{1000};
  for (uint64_t k = 0; k < 1000; ++k) bloom.Add(Mix64(k));
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_TRUE(bloom.MayContain(Mix64(k)));
  }
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  BloomFilter bloom{10000};
  for (uint64_t k = 0; k < 10000; ++k) bloom.Add(Mix64(k));
  int fp = 0;
  for (uint64_t k = 10000; k < 20000; ++k) {
    if (bloom.MayContain(Mix64(k))) ++fp;
  }
  EXPECT_LT(fp, 300);  // ~1% expected at 10 bits/key
}

TEST(BloomFilterTest, SerializationRoundTrip) {
  BloomFilter a{100};
  for (uint64_t k = 0; k < 100; ++k) a.Add(Mix64(k));
  BloomFilter b{std::vector<uint8_t>(a.bytes()), a.num_probes()};
  for (uint64_t k = 0; k < 100; ++k) EXPECT_TRUE(b.MayContain(Mix64(k)));
}

TEST(MemTableTest, PutGetDelete) {
  MemTable mem;
  uint64_t v = 42;
  mem.Put(1, &v, 8);
  LsmEntry e;
  ASSERT_TRUE(mem.Get(1, &e));
  EXPECT_FALSE(e.tombstone);
  uint64_t got;
  std::memcpy(&got, e.value.data(), 8);
  EXPECT_EQ(got, 42u);
  mem.Delete(1);
  ASSERT_TRUE(mem.Get(1, &e));
  EXPECT_TRUE(e.tombstone);
  EXPECT_FALSE(mem.Get(2, &e));
}

TEST(MemTableTest, SnapshotIsSorted) {
  MemTable mem;
  for (uint64_t k : {5, 1, 9, 3, 7}) {
    uint64_t v = k * 10;
    mem.Put(k, &v, 8);
  }
  auto snap = mem.Snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].first, snap[i].first);
  }
}

TEST_F(MiniLsmTest, SsTableWriteOpenGet) {
  std::filesystem::create_directories(dir_);
  std::vector<std::pair<uint64_t, LsmEntry>> entries;
  for (uint64_t k = 0; k < 1000; k += 2) {
    LsmEntry e;
    uint64_t v = k + 1;
    e.value.assign(reinterpret_cast<char*>(&v), 8);
    entries.emplace_back(k, e);
  }
  std::unique_ptr<SsTable> table;
  ASSERT_EQ(SsTable::Write(dir_ + "/t.tbl", entries, 8, &table), Status::kOk);
  EXPECT_EQ(table->count(), entries.size());

  // Reopen from disk and verify.
  std::unique_ptr<SsTable> reopened;
  ASSERT_EQ(SsTable::Open(dir_ + "/t.tbl", &reopened), Status::kOk);
  for (uint64_t k = 0; k < 1000; ++k) {
    LsmEntry e;
    Status s = reopened->Get(k, &e);
    if (k % 2 == 0) {
      ASSERT_EQ(s, Status::kOk) << k;
      uint64_t v;
      std::memcpy(&v, e.value.data(), 8);
      EXPECT_EQ(v, k + 1);
    } else {
      EXPECT_EQ(s, Status::kNotFound) << k;
    }
  }
  reopened->Destroy();
}

TEST_F(MiniLsmTest, PutGetBeforeAnyFlush) {
  MiniLsm db{Config()};
  uint64_t v = 7;
  ASSERT_EQ(db.Put(1, &v), Status::kOk);
  uint64_t out = 0;
  ASSERT_EQ(db.Get(1, &out), Status::kOk);
  EXPECT_EQ(out, 7u);
  EXPECT_EQ(db.Get(2, &out), Status::kNotFound);
}

TEST_F(MiniLsmTest, DataSurvivesFlushesAndCompactions) {
  MiniLsm db{Config()};
  constexpr uint64_t kKeys = 20000;  // forces several flushes + compaction
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t v = k * 2;
    ASSERT_EQ(db.Put(k, &v), Status::kOk);
  }
  auto stats = db.GetStats();
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_GT(stats.compactions, 0u);
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t out = 0;
    ASSERT_EQ(db.Get(k, &out), Status::kOk) << k;
    ASSERT_EQ(out, k * 2);
  }
}

TEST_F(MiniLsmTest, NewerVersionsWin) {
  MiniLsm db{Config()};
  for (int round = 0; round < 5; ++round) {
    for (uint64_t k = 0; k < 5000; ++k) {
      uint64_t v = k + round * 1000000;
      ASSERT_EQ(db.Put(k, &v), Status::kOk);
    }
  }
  for (uint64_t k = 0; k < 5000; ++k) {
    uint64_t out = 0;
    ASSERT_EQ(db.Get(k, &out), Status::kOk);
    ASSERT_EQ(out, k + 4 * 1000000);
  }
}

TEST_F(MiniLsmTest, DeleteTombstonesAcrossLevels) {
  MiniLsm db{Config()};
  uint64_t v = 9;
  ASSERT_EQ(db.Put(42, &v), Status::kOk);
  // Push key 42 into an SSTable.
  for (uint64_t k = 1000; k < 12000; ++k) {
    ASSERT_EQ(db.Put(k, &k), Status::kOk);
  }
  ASSERT_EQ(db.Delete(42), Status::kOk);
  uint64_t out = 0;
  EXPECT_EQ(db.Get(42, &out), Status::kNotFound);
  // More churn (tombstone also flushes + compacts).
  for (uint64_t k = 20000; k < 32000; ++k) {
    ASSERT_EQ(db.Put(k, &k), Status::kOk);
  }
  EXPECT_EQ(db.Get(42, &out), Status::kNotFound);
}

TEST_F(MiniLsmTest, RmwAccumulates) {
  MiniLsm db{Config()};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(db.Rmw(3,
                     [](void* v, bool fresh) {
                       uint64_t c = 0;
                       if (!fresh) std::memcpy(&c, v, 8);
                       ++c;
                       std::memcpy(v, &c, 8);
                     }),
              Status::kOk);
  }
  uint64_t out = 0;
  ASSERT_EQ(db.Get(3, &out), Status::kOk);
  EXPECT_EQ(out, 1000u);
}

TEST_F(MiniLsmTest, HundredByteValues) {
  MiniLsm db{Config(100, 256 << 10)};
  std::vector<uint8_t> value(100);
  for (uint64_t k = 0; k < 5000; ++k) {
    std::fill(value.begin(), value.end(), static_cast<uint8_t>(k & 0xff));
    ASSERT_EQ(db.Put(k, value.data()), Status::kOk);
  }
  std::vector<uint8_t> out(100);
  for (uint64_t k = 0; k < 5000; ++k) {
    ASSERT_EQ(db.Get(k, out.data()), Status::kOk);
    ASSERT_EQ(out[0], static_cast<uint8_t>(k & 0xff));
    ASSERT_EQ(out[99], static_cast<uint8_t>(k & 0xff));
  }
}

TEST_F(MiniLsmTest, WalRecoversUnflushedWrites) {
  auto cfg = Config();
  cfg.enable_wal = true;
  {
    MiniLsm db{cfg};
    for (uint64_t k = 0; k < 100; ++k) {
      uint64_t v = k + 5;
      ASSERT_EQ(db.Put(k, &v), Status::kOk);
    }
    // No flush happened (small data); "crash" by dropping the instance.
  }
  {
    MiniLsm db{cfg};
    for (uint64_t k = 0; k < 100; ++k) {
      uint64_t out = 0;
      ASSERT_EQ(db.Get(k, &out), Status::kOk) << k;
      ASSERT_EQ(out, k + 5);
    }
  }
}

TEST_F(MiniLsmTest, ConcurrentReadersAndWriters) {
  MiniLsm db{Config()};
  constexpr uint64_t kKeys = 4000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t v = 1;
    ASSERT_EQ(db.Put(k, &v), Status::kOk);
  }
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::thread writer([&] {
    std::mt19937_64 rng(7);
    while (!stop.load()) {
      uint64_t k = rng() % kKeys;
      uint64_t v = 1;
      if (db.Put(k, &v) != Status::kOk) errors.fetch_add(1);
    }
  });
  std::thread reader([&] {
    std::mt19937_64 rng(13);
    for (int i = 0; i < 50000; ++i) {
      uint64_t k = rng() % kKeys;
      uint64_t out = 0;
      Status s = db.Get(k, &out);
      if (s != Status::kOk || out != 1) errors.fetch_add(1);
    }
    stop.store(true);
  });
  reader.join();
  writer.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace minilsm
}  // namespace faster
