// Model-based property tests: a randomized operation stream is applied to
// both FasterKv and a reference std::unordered_map; after every batch the
// observable state must agree. Parameterized (TEST_P) over store
// configurations spanning all the paper's operating regimes: in-memory,
// larger-than-memory, append-only (Sec. 5), tiny index with long chains,
// read cache (Appendix D), and the CRDT store (Sec. 6.3).

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <unordered_map>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"

namespace faster {
namespace {

struct StoreParams {
  std::string name;
  uint64_t table_size;
  uint64_t mem_pages;
  double mutable_fraction;
  bool force_rcu;
  bool read_cache;
  uint64_t key_space;
  uint64_t num_ops;
};

std::ostream& operator<<(std::ostream& os, const StoreParams& p) {
  return os << p.name;
}

class ModelCheckTest : public ::testing::TestWithParam<StoreParams> {};

TEST_P(ModelCheckTest, MatchesReferenceModel) {
  const StoreParams& p = GetParam();
  MemoryDevice device;
  FasterKv<CountStoreFunctions>::Config cfg;
  cfg.table_size = p.table_size;
  cfg.log.memory_size_bytes = p.mem_pages << Address::kOffsetBits;
  cfg.log.mutable_fraction = p.mutable_fraction;
  cfg.force_rcu = p.force_rcu;
  cfg.enable_read_cache = p.read_cache;
  cfg.read_cache.memory_size_bytes = 2ull << Address::kOffsetBits;
  FasterKv<CountStoreFunctions> store{cfg, &device};
  store.StartSession();

  std::unordered_map<uint64_t, uint64_t> model;
  std::mt19937_64 rng(0xC0FFEE);

  auto read_store = [&](uint64_t key) -> std::pair<bool, uint64_t> {
    uint64_t out = UINT64_MAX;
    Status s = store.Read(key, 0, &out);
    if (s == Status::kPending) {
      EXPECT_TRUE(store.CompletePending(true));
      return {out != UINT64_MAX, out};
    }
    return {s == Status::kOk, out};
  };

  for (uint64_t i = 0; i < p.num_ops; ++i) {
    uint64_t key = rng() % p.key_space;
    switch (rng() % 4) {
      case 0: {  // upsert
        uint64_t v = rng();
        ASSERT_EQ(store.Upsert(key, v), Status::kOk);
        model[key] = v;
        break;
      }
      case 1: {  // rmw (+delta)
        uint64_t delta = rng() % 1000;
        Status s = store.Rmw(key, delta);
        ASSERT_TRUE(s == Status::kOk || s == Status::kPending);
        if (s == Status::kPending) {
          ASSERT_TRUE(store.CompletePending(true));
        }
        auto it = model.find(key);
        if (it == model.end()) {
          model[key] = delta;
        } else {
          it->second += delta;
        }
        break;
      }
      case 2: {  // delete
        Status s = store.Delete(key);
        bool existed = model.erase(key) > 0;
        ASSERT_EQ(s == Status::kOk, existed) << "key " << key << " op " << i;
        break;
      }
      case 3: {  // read
        auto [found, value] = read_store(key);
        auto it = model.find(key);
        ASSERT_EQ(found, it != model.end()) << "key " << key << " op " << i;
        if (found) {
          ASSERT_EQ(value, it->second) << "key " << key << " op " << i;
        }
        break;
      }
    }
  }

  // Full sweep: every model key readable with the right value; a sample of
  // absent keys reads NotFound.
  for (const auto& [key, value] : model) {
    auto [found, got] = read_store(key);
    ASSERT_TRUE(found) << "key " << key;
    ASSERT_EQ(got, value) << "key " << key;
  }
  for (uint64_t probe = p.key_space; probe < p.key_space + 100; ++probe) {
    auto [found, got] = read_store(probe);
    ASSERT_FALSE(found) << "phantom key " << probe;
  }
  store.StopSession();
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ModelCheckTest,
    ::testing::Values(
        StoreParams{"in_memory", 4096, 16, 0.9, false, false, 2000, 60000},
        StoreParams{"spilling", 1024, 2, 0.5, false, false, 300000, 250000},
        StoreParams{"append_only", 4096, 8, 0.0, true, false, 2000, 60000},
        StoreParams{"tiny_index_long_chains", 64, 16, 0.9, false, false,
                    5000, 60000},
        StoreParams{"tiny_mutable_region", 1024, 4, 0.1, false, false, 50000,
                    150000},
        StoreParams{"with_read_cache", 1024, 2, 0.5, false, true, 300000,
                    250000},
        StoreParams{"single_page_buffer_floor", 1024, 1, 0.5, false, false,
                    100000, 120000}),
    [](const auto& info) { return info.param.name; });

// The CRDT store must agree with a summing model under RMW + read (its
// supported operation mix), across region churn.
struct CrdtParams {
  std::string name;
  uint64_t mem_pages;
  double mutable_fraction;
  uint64_t key_space;
  uint64_t num_ops;
};
std::ostream& operator<<(std::ostream& os, const CrdtParams& p) {
  return os << p.name;
}

class CrdtModelTest : public ::testing::TestWithParam<CrdtParams> {};

TEST_P(CrdtModelTest, SumsMatchModel) {
  const CrdtParams& p = GetParam();
  MemoryDevice device;
  FasterKv<MergeableCountFunctions>::Config cfg;
  cfg.table_size = 4096;
  cfg.log.memory_size_bytes = p.mem_pages << Address::kOffsetBits;
  cfg.log.mutable_fraction = p.mutable_fraction;
  FasterKv<MergeableCountFunctions> store{cfg, &device};
  store.StartSession();

  std::unordered_map<uint64_t, uint64_t> model;
  std::mt19937_64 rng(42);
  for (uint64_t i = 0; i < p.num_ops; ++i) {
    uint64_t key = rng() % p.key_space;
    uint64_t delta = rng() % 100;
    ASSERT_EQ(store.Rmw(key, delta), Status::kOk);
    model[key] += delta;
  }
  for (const auto& [key, sum] : model) {
    uint64_t out = 0;
    Status s = store.Read(key, 0, &out);
    if (s == Status::kPending) {
      ASSERT_TRUE(store.CompletePending(true));
    } else {
      ASSERT_EQ(s, Status::kOk);
    }
    ASSERT_EQ(out, sum) << "key " << key;
  }
  store.StopSession();
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CrdtModelTest,
    ::testing::Values(CrdtParams{"in_memory", 16, 0.9, 500, 60000},
                      CrdtParams{"spilling_deltas", 2, 0.3, 20000, 200000},
                      CrdtParams{"append_heavy", 4, 0.05, 2000, 120000}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace faster
