#include "core/faster.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <thread>
#include <vector>

#include "core/functions.h"
#include "device/memory_device.h"

namespace faster {
namespace {

using Store = FasterKv<CountStoreFunctions>;

Store::Config SmallConfig(uint64_t mem_pages = 16, double mutable_frac = 0.9) {
  Store::Config cfg;
  cfg.table_size = 2048;
  cfg.log.memory_size_bytes = mem_pages << Address::kOffsetBits;
  cfg.log.mutable_fraction = mutable_frac;
  return cfg;
}

class FasterTest : public ::testing::Test {
 protected:
  MemoryDevice device_;
};

TEST_F(FasterTest, UpsertThenRead) {
  Store store{SmallConfig(), &device_};
  store.StartSession();
  EXPECT_EQ(store.Upsert(1, 100), Status::kOk);
  uint64_t out = 0;
  EXPECT_EQ(store.Read(1, 0, &out), Status::kOk);
  EXPECT_EQ(out, 100u);
  store.StopSession();
}

TEST_F(FasterTest, ReadMissingKey) {
  Store store{SmallConfig(), &device_};
  store.StartSession();
  uint64_t out = 0;
  EXPECT_EQ(store.Read(42, 0, &out), Status::kNotFound);
  store.StopSession();
}

TEST_F(FasterTest, UpsertOverwritesInPlace) {
  Store store{SmallConfig(), &device_};
  store.StartSession();
  ASSERT_EQ(store.Upsert(7, 1), Status::kOk);
  auto appended_before = store.GetStats().appended_records;
  ASSERT_EQ(store.Upsert(7, 2), Status::kOk);
  // Second upsert hits the mutable region: no new record.
  EXPECT_EQ(store.GetStats().appended_records, appended_before);
  uint64_t out = 0;
  ASSERT_EQ(store.Read(7, 0, &out), Status::kOk);
  EXPECT_EQ(out, 2u);
  store.StopSession();
}

TEST_F(FasterTest, RmwCreatesThenIncrements) {
  Store store{SmallConfig(), &device_};
  store.StartSession();
  EXPECT_EQ(store.Rmw(9, 5), Status::kOk);   // initial value = input
  EXPECT_EQ(store.Rmw(9, 3), Status::kOk);   // in-place add
  uint64_t out = 0;
  ASSERT_EQ(store.Read(9, 0, &out), Status::kOk);
  EXPECT_EQ(out, 8u);
  store.StopSession();
}

TEST_F(FasterTest, DeleteInMutableRegion) {
  Store store{SmallConfig(), &device_};
  store.StartSession();
  ASSERT_EQ(store.Upsert(5, 55), Status::kOk);
  EXPECT_EQ(store.Delete(5), Status::kOk);
  uint64_t out = 0;
  EXPECT_EQ(store.Read(5, 0, &out), Status::kNotFound);
  EXPECT_EQ(store.Delete(5), Status::kNotFound);  // already deleted
  store.StopSession();
}

TEST_F(FasterTest, DeleteMissingKey) {
  Store store{SmallConfig(), &device_};
  store.StartSession();
  EXPECT_EQ(store.Delete(12345), Status::kNotFound);
  store.StopSession();
}

TEST_F(FasterTest, UpsertAfterDeleteRevivesKey) {
  Store store{SmallConfig(), &device_};
  store.StartSession();
  ASSERT_EQ(store.Upsert(5, 1), Status::kOk);
  ASSERT_EQ(store.Delete(5), Status::kOk);
  ASSERT_EQ(store.Upsert(5, 2), Status::kOk);
  uint64_t out = 0;
  ASSERT_EQ(store.Read(5, 0, &out), Status::kOk);
  EXPECT_EQ(out, 2u);
  store.StopSession();
}

TEST_F(FasterTest, RmwAfterDeleteStartsFresh) {
  Store store{SmallConfig(), &device_};
  store.StartSession();
  ASSERT_EQ(store.Rmw(6, 10), Status::kOk);
  ASSERT_EQ(store.Delete(6), Status::kOk);
  ASSERT_EQ(store.Rmw(6, 7), Status::kOk);  // initial again, not 17
  uint64_t out = 0;
  ASSERT_EQ(store.Read(6, 0, &out), Status::kOk);
  EXPECT_EQ(out, 7u);
  store.StopSession();
}

TEST_F(FasterTest, ManyKeysAllReadable) {
  // Large memory: stays fully in memory.
  Store store{SmallConfig(64), &device_};
  store.StartSession();
  constexpr uint64_t kKeys = 50000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(store.Upsert(k, k * 2 + 1), Status::kOk);
  }
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t out = 0;
    ASSERT_EQ(store.Read(k, 0, &out), Status::kOk) << "key " << k;
    ASSERT_EQ(out, k * 2 + 1);
  }
  store.StopSession();
}

// Larger-than-memory: a small buffer forces eviction; reads of cold keys
// must go pending and complete through the async I/O path (Sec. 5.3).
TEST_F(FasterTest, LargerThanMemoryReads) {
  Store store{SmallConfig(2, 0.5), &device_};
  store.StartSession();
  constexpr uint64_t kKeys = 400000;  // ~9.6 MB of records >> 4 pages
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(store.Upsert(k, k + 7), Status::kOk);
  }
  ASSERT_GT(store.hlog().head_address().control(), 64u)
      << "dataset should have spilled";
  // Cold keys (early inserts) are on storage now.
  uint64_t pending = 0;
  std::vector<uint64_t> outs(100, 0);
  for (uint64_t k = 0; k < 100; ++k) {
    Status s = store.Read(k, 0, &outs[k]);
    if (s == Status::kPending) {
      ++pending;
    } else {
      ASSERT_EQ(s, Status::kOk);
      ASSERT_EQ(outs[k], k + 7);
    }
  }
  EXPECT_GT(pending, 0u);
  ASSERT_TRUE(store.CompletePending(/*wait=*/true));
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(outs[k], k + 7) << "key " << k;
  }
  store.StopSession();
}

TEST_F(FasterTest, RmwOnSpilledRecordReadsThroughStorage) {
  Store store{SmallConfig(2, 0.5), &device_};
  store.StartSession();
  ASSERT_EQ(store.Rmw(0, 100), Status::kOk);
  // Push key 0 out of memory.
  for (uint64_t k = 1; k < 400000; ++k) {
    ASSERT_EQ(store.Upsert(k, k), Status::kOk);
  }
  ASSERT_GT(store.hlog().head_address().control(), 64u);
  Status s = store.Rmw(0, 11);
  if (s == Status::kPending) {
    ASSERT_TRUE(store.CompletePending(/*wait=*/true));
  } else {
    ASSERT_EQ(s, Status::kOk);
  }
  uint64_t out = 0;
  s = store.Read(0, 0, &out);
  if (s == Status::kPending) {
    ASSERT_TRUE(store.CompletePending(/*wait=*/true));
  } else {
    ASSERT_EQ(s, Status::kOk);
  }
  EXPECT_EQ(out, 111u);
  store.StopSession();
}

TEST_F(FasterTest, TombstoneSurvivesSpillToStorage) {
  Store store{SmallConfig(2, 0.5), &device_};
  store.StartSession();
  ASSERT_EQ(store.Upsert(0, 99), Status::kOk);
  ASSERT_EQ(store.Delete(0), Status::kOk);
  for (uint64_t k = 1; k < 400000; ++k) {
    ASSERT_EQ(store.Upsert(k, k), Status::kOk);
  }
  uint64_t out = 0;
  Status s = store.Read(0, 0, &out);
  if (s == Status::kPending) {
    store.CompletePending(/*wait=*/true);
    // The pending read must resolve to NotFound; the output is untouched.
    EXPECT_EQ(out, 0u);
  } else {
    EXPECT_EQ(s, Status::kNotFound);
  }
  store.StopSession();
}

// Concurrent RMW: the final value must equal the number of increments
// (linearizability of fetch-and-add style in-place updates + RCU).
TEST_F(FasterTest, ConcurrentRmwSumInvariant) {
  Store store{SmallConfig(16, 0.9), &device_};
  constexpr int kThreads = 4;
  constexpr uint64_t kIncrementsPerThread = 20000;
  constexpr uint64_t kKeys = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      store.StartSession();
      std::mt19937_64 rng(t);
      for (uint64_t i = 0; i < kIncrementsPerThread; ++i) {
        uint64_t key = rng() % kKeys;
        Status s = store.Rmw(key, 1);
        ASSERT_TRUE(s == Status::kOk || s == Status::kPending);
        if (i % 4096 == 0) store.CompletePending(false);
      }
      store.StopSession();
    });
  }
  for (auto& t : threads) t.join();

  store.StartSession();
  uint64_t total = 0;
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t out = 0;
    Status s = store.Read(k, 0, &out);
    if (s == Status::kPending) {
      store.CompletePending(true);
      s = Status::kOk;
    }
    ASSERT_EQ(s, Status::kOk);
    total += out;
  }
  EXPECT_EQ(total, kThreads * kIncrementsPerThread);
  store.StopSession();
}

// Append-only mode (Sec. 5 strawman): correctness must be identical, but
// every update appends.
TEST_F(FasterTest, ForceRcuModeIsCorrect) {
  auto cfg = SmallConfig(16, 0.9);
  cfg.force_rcu = true;
  Store store{cfg, &device_};
  store.StartSession();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(store.Rmw(3, 1), Status::kOk);
  }
  uint64_t out = 0;
  ASSERT_EQ(store.Read(3, 0, &out), Status::kOk);
  EXPECT_EQ(out, 100u);
  // every RMW appended a record
  EXPECT_GE(store.GetStats().appended_records, 100u);
  store.StopSession();
}

// Fuzzy region (Sec. 6.2): RMWs that land between the safe-read-only and
// read-only offsets go pending and complete after epoch propagation.
TEST_F(FasterTest, FuzzyRegionRmwGoesPendingAndCompletes) {
  Store store{SmallConfig(8, 0.5), &device_};
  store.StartSession();
  constexpr uint64_t kKeys = 200000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(store.Upsert(k, 1), Status::kOk);
  }
  // Some RMWs should have hit the fuzzy region across this many page
  // rollovers; regardless, issue RMWs against recently written keys which
  // sit near the read-only boundary.
  uint64_t fuzzy_before = store.GetStats().fuzzy_rmws;
  for (uint64_t k = 0; k < kKeys; ++k) {
    Status s = store.Rmw(k % kKeys, 1);
    ASSERT_TRUE(s == Status::kOk || s == Status::kPending);
  }
  ASSERT_TRUE(store.CompletePending(/*wait=*/true));
  (void)fuzzy_before;
  store.StopSession();
}

TEST_F(FasterTest, StatsAreCounted) {
  Store store{SmallConfig(), &device_};
  store.StartSession();
  store.Upsert(1, 1);
  store.Rmw(1, 1);
  uint64_t out;
  store.Read(1, 0, &out);
  store.Delete(1);
  auto stats = store.GetStats();
  EXPECT_EQ(stats.upserts, 1u);
  EXPECT_EQ(stats.rmws, 1u);
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.deletes, 1u);
  store.StopSession();
}

TEST_F(FasterTest, ScanLogSeesAllLiveRecords) {
  Store store{SmallConfig(16), &device_};
  store.StartSession();
  constexpr uint64_t kKeys = 1000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(store.Upsert(k, k + 1), Status::kOk);
  }
  std::map<uint64_t, uint64_t> seen;
  store.ScanLog(store.hlog().begin_address(), store.hlog().tail_address(),
                [&](Address, const Store::RecordT& rec) {
                  if (!rec.info().invalid() && !rec.info().tombstone()) {
                    seen[rec.key] = rec.value;
                  }
                });
  EXPECT_EQ(seen.size(), kKeys);
  for (uint64_t k = 0; k < kKeys; ++k) EXPECT_EQ(seen[k], k + 1);
  store.StopSession();
}

TEST_F(FasterTest, GrowIndexWhileReading) {
  Store store{SmallConfig(16), &device_};
  store.StartSession();
  constexpr uint64_t kKeys = 10000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(store.Upsert(k, k), Status::kOk);
  }
  uint64_t before = store.index().size();
  store.GrowIndex();
  EXPECT_EQ(store.index().size(), before * 2);
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t out = 0;
    ASSERT_EQ(store.Read(k, 0, &out), Status::kOk);
    ASSERT_EQ(out, k);
  }
  store.StopSession();
}

TEST_F(FasterTest, ShiftBeginAddressExpiresOldRecords) {
  Store store{SmallConfig(16), &device_};
  store.StartSession();
  ASSERT_EQ(store.Upsert(1, 10), Status::kOk);
  Address cut = store.hlog().tail_address();
  ASSERT_EQ(store.Upsert(2, 20), Status::kOk);
  ASSERT_TRUE(store.ShiftBeginAddress(cut));
  uint64_t out = 0;
  EXPECT_EQ(store.Read(1, 0, &out), Status::kNotFound);  // expired
  EXPECT_EQ(store.Read(2, 0, &out), Status::kOk);
  EXPECT_EQ(out, 20u);
  store.StopSession();
}

// Checkpoint/recovery (Sec. 6.5): a recovered store serves every key
// written before the checkpoint started.
TEST_F(FasterTest, CheckpointAndRecover) {
  std::string dir = "/tmp/faster_ckpt_test";
  std::filesystem::remove_all(dir);
  constexpr uint64_t kKeys = 20000;
  {
    Store store{SmallConfig(16), &device_};
    store.StartSession();
    for (uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_EQ(store.Upsert(k, k * 3), Status::kOk);
    }
    ASSERT_EQ(store.Checkpoint(dir), Status::kOk);
    store.StopSession();
  }
  {
    Store store{SmallConfig(16), &device_};
    ASSERT_EQ(store.Recover(dir), Status::kOk);
    store.StartSession();
    uint64_t pending = 0;
    std::vector<uint64_t> outs(kKeys, UINT64_MAX);
    for (uint64_t k = 0; k < kKeys; ++k) {
      Status s = store.Read(k, 0, &outs[k]);
      if (s == Status::kPending) {
        ++pending;
      } else {
        ASSERT_EQ(s, Status::kOk) << "key " << k;
      }
      if (k % 1000 == 0) store.CompletePending(false);
    }
    ASSERT_TRUE(store.CompletePending(true));
    for (uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_EQ(outs[k], k * 3) << "key " << k;
    }
    EXPECT_GT(pending, 0u);  // everything is on storage after recovery
    store.StopSession();
  }
  std::filesystem::remove_all(dir);
}

TEST_F(FasterTest, RecoveryAppliesPostSnapshotRecords) {
  std::string dir = "/tmp/faster_ckpt_test2";
  std::filesystem::remove_all(dir);
  {
    Store store{SmallConfig(16), &device_};
    store.StartSession();
    ASSERT_EQ(store.Upsert(1, 111), Status::kOk);
    ASSERT_EQ(store.Checkpoint(dir), Status::kOk);
    store.StopSession();
  }
  {
    Store store{SmallConfig(16), &device_};
    ASSERT_EQ(store.Recover(dir), Status::kOk);
    store.StartSession();
    uint64_t out = 0;
    Status s = store.Read(1, 0, &out);
    if (s == Status::kPending) {
      store.CompletePending(true);
    } else {
      ASSERT_EQ(s, Status::kOk);
    }
    EXPECT_EQ(out, 111u);
    // Recovery resumes writes at the recovered tail.
    ASSERT_EQ(store.Upsert(2, 222), Status::kOk);
    s = store.Read(2, 0, &out);
    ASSERT_EQ(s, Status::kOk);
    EXPECT_EQ(out, 222u);
    store.StopSession();
  }
  std::filesystem::remove_all(dir);
}

// CRDT / mergeable stores (Sec. 6.3): RMW appends deltas in the fuzzy
// region and on storage misses; reads reconcile.
TEST_F(FasterTest, MergeableStoreSumsDeltas) {
  using CrdtStore = FasterKv<MergeableCountFunctions>;
  CrdtStore::Config cfg;
  cfg.table_size = 2048;
  cfg.log.memory_size_bytes = 4ull << Address::kOffsetBits;
  cfg.log.mutable_fraction = 0.5;
  CrdtStore store{cfg, &device_};
  store.StartSession();
  constexpr uint64_t kIncrements = 300000;  // forces spills mid-stream
  for (uint64_t i = 0; i < kIncrements; ++i) {
    // Interleave a hot key with filler to push pages through regions.
    ASSERT_EQ(store.Rmw(7, 1), Status::kOk);
    ASSERT_EQ(store.Upsert(1000 + (i % 100000), i), Status::kOk);
  }
  uint64_t out = 0;
  Status s = store.Read(7, 0, &out);
  if (s == Status::kPending) {
    ASSERT_TRUE(store.CompletePending(true));
  } else {
    ASSERT_EQ(s, Status::kOk);
  }
  EXPECT_EQ(out, kIncrements);
  store.StopSession();
}


// Appendix E: pending operations report back through the completion
// callback with the user-provided per-operation context.
namespace completion_cb {
std::atomic<int> read_completions{0};
std::atomic<int> rmw_completions{0};
std::atomic<uint64_t> context_sum{0};
void Callback(Store::UserOp op, Status s, void* user_context) {
  if (op == Store::UserOp::kRead && s == Status::kOk) ++read_completions;
  if (op == Store::UserOp::kRmw && s == Status::kOk) ++rmw_completions;
  context_sum += reinterpret_cast<uintptr_t>(user_context);
}
}  // namespace completion_cb

TEST_F(FasterTest, CompletionCallbackReceivesUserContext) {
  auto cfg = SmallConfig(2, 0.5);
  cfg.completion_callback = &completion_cb::Callback;
  Store store{cfg, &device_};
  store.StartSession();
  for (uint64_t k = 0; k < 400000; ++k) {
    ASSERT_EQ(store.Upsert(k, k), Status::kOk);
  }
  ASSERT_GT(store.hlog().head_address().control(), 64u);
  completion_cb::read_completions = 0;
  completion_cb::rmw_completions = 0;
  completion_cb::context_sum = 0;
  uint64_t outs[8];
  uint64_t expected_sum = 0;
  int pending = 0;
  for (uint64_t k = 0; k < 8; ++k) {
    Status s = store.Read(k, 0, &outs[k], reinterpret_cast<void*>(k + 1));
    if (s == Status::kPending) {
      ++pending;
      expected_sum += k + 1;
    }
  }
  Status s = store.Rmw(3, 1, reinterpret_cast<void*>(uintptr_t{100}));
  if (s == Status::kPending) expected_sum += 100;
  ASSERT_TRUE(store.CompletePending(true));
  EXPECT_EQ(completion_cb::read_completions.load(), pending);
  if (s == Status::kPending) {
    EXPECT_EQ(completion_cb::rmw_completions.load(), 1);
  }
  EXPECT_EQ(completion_cb::context_sum.load(), expected_sum);
  store.StopSession();
}

}  // namespace
}  // namespace faster
