// Tests for src/net: the RESP parser (framing, resumption, limits), the
// reply/framing helpers, and a loopback integration test of FasterServer
// (pipelining past kBatchChunk, forced segment splits, INCR exactness,
// clean shutdown). The integration tests run under ASan/TSan via the
// normal `unit` label; they use ephemeral ports only.

#include "net/resp.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "mini_json.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/slowlog.h"

namespace faster {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// RespParser framing.
// ---------------------------------------------------------------------------

std::vector<std::vector<std::string>> ParseAll(RespParser* p) {
  std::vector<std::vector<std::string>> out;
  RespCommand cmd;
  while (p->Next(&cmd) == RespParser::Result::kCommand) {
    out.push_back(cmd.argv);
  }
  return out;
}

TEST(RespParser, InlineCommand) {
  RespParser p{RespLimits{}};
  p.Feed("PING\r\n", 6);
  auto cmds = ParseAll(&p);
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0], (std::vector<std::string>{"PING"}));
}

TEST(RespParser, InlineTokenization) {
  RespParser p{RespLimits{}};
  std::string in = "SET  key   value\r\n\r\nGET key\r\n";
  p.Feed(in.data(), in.size());
  auto cmds = ParseAll(&p);  // blank line skipped
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0], (std::vector<std::string>{"SET", "key", "value"}));
  EXPECT_EQ(cmds[1], (std::vector<std::string>{"GET", "key"}));
}

TEST(RespParser, InlineBareLf) {
  RespParser p{RespLimits{}};
  std::string in = "PING\nGET k\n";
  p.Feed(in.data(), in.size());
  auto cmds = ParseAll(&p);
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[1], (std::vector<std::string>{"GET", "k"}));
}

TEST(RespParser, Multibulk) {
  RespParser p{RespLimits{}};
  std::string in = "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$2\r\n10\r\n";
  p.Feed(in.data(), in.size());
  auto cmds = ParseAll(&p);
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0], (std::vector<std::string>{"SET", "k", "10"}));
}

TEST(RespParser, MultibulkEmptyArgAndBinary) {
  RespParser p{RespLimits{}};
  std::string in = "*2\r\n$0\r\n\r\n$3\r\na\rb\r\n";  // payload contains CR
  p.Feed(in.data(), in.size());
  RespCommand cmd;
  ASSERT_EQ(p.Next(&cmd), RespParser::Result::kCommand);
  ASSERT_EQ(cmd.argv.size(), 2u);
  EXPECT_EQ(cmd.argv[0], "");
  EXPECT_EQ(cmd.argv[1].size(), 3u);
}

TEST(RespParser, ZeroArgArrraySkipped) {
  RespParser p{RespLimits{}};
  std::string in = "*0\r\nPING\r\n";
  p.Feed(in.data(), in.size());
  auto cmds = ParseAll(&p);
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0][0], "PING");
}

// The core resumption property: any split of the byte stream, at every
// byte boundary, yields the identical command sequence.
TEST(RespParser, SplitAtEveryByteBoundary) {
  const std::string stream =
      "*3\r\n$3\r\nSET\r\n$3\r\nkey\r\n$5\r\n12345\r\n"
      "PING\r\n"
      "*2\r\n$4\r\nINCR\r\n$7\r\ncounter\r\n"
      "GET key\r\n";
  const std::vector<std::vector<std::string>> expect = {
      {"SET", "key", "12345"},
      {"PING"},
      {"INCR", "counter"},
      {"GET", "key"},
  };
  for (size_t split = 0; split <= stream.size(); ++split) {
    RespParser p{RespLimits{}};
    std::vector<std::vector<std::string>> got;
    RespCommand cmd;
    p.Feed(stream.data(), split);
    while (p.Next(&cmd) == RespParser::Result::kCommand) {
      got.push_back(cmd.argv);
    }
    p.Feed(stream.data() + split, stream.size() - split);
    while (p.Next(&cmd) == RespParser::Result::kCommand) {
      got.push_back(cmd.argv);
    }
    EXPECT_EQ(got, expect) << "split at byte " << split;
  }
}

// Feeding one byte at a time exercises every kNeedMore path.
TEST(RespParser, ByteAtATime) {
  const std::string stream = "*2\r\n$3\r\nGET\r\n$1\r\nk\r\nPING\r\n";
  RespParser p{RespLimits{}};
  std::vector<std::vector<std::string>> got;
  RespCommand cmd;
  for (char c : stream) {
    p.Feed(&c, 1);
    while (p.Next(&cmd) == RespParser::Result::kCommand) {
      got.push_back(cmd.argv);
    }
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::vector<std::string>{"GET", "k"}));
  EXPECT_EQ(got[1], (std::vector<std::string>{"PING"}));
}

// ---------------------------------------------------------------------------
// RespParser limits / malformed input. Errors must be sticky.
// ---------------------------------------------------------------------------

void ExpectStickyError(const std::string& in, const RespLimits& limits) {
  RespParser p{limits};
  p.Feed(in.data(), in.size());
  RespCommand cmd;
  ASSERT_EQ(p.Next(&cmd), RespParser::Result::kError) << in;
  EXPECT_FALSE(p.error().empty());
  // Sticky: more input cannot resurrect the connection.
  p.Feed("PING\r\n", 6);
  EXPECT_EQ(p.Next(&cmd), RespParser::Result::kError);
}

TEST(RespParser, RejectsOversizedBulk) {
  RespLimits limits;
  limits.max_bulk = 16;
  ExpectStickyError("*2\r\n$3\r\nGET\r\n$17\r\n", limits);
}

TEST(RespParser, RejectsOversizedArgCount) {
  RespLimits limits;
  limits.max_args = 4;
  ExpectStickyError("*5\r\n", limits);
}

TEST(RespParser, RejectsNegativeAndGarbageCounts) {
  ExpectStickyError("*-1\r\n", RespLimits{});
  ExpectStickyError("*abc\r\n", RespLimits{});
  ExpectStickyError("*2\r\n$-5\r\n", RespLimits{});
  ExpectStickyError("*2\r\n$x\r\n", RespLimits{});
}

TEST(RespParser, RejectsMissingBulkMarker) {
  ExpectStickyError("*1\r\nPING\r\n", RespLimits{});
}

TEST(RespParser, RejectsUnterminatedBulkPayload) {
  // Payload present but not CRLF-terminated where the length says.
  ExpectStickyError("*1\r\n$4\r\nPINGxy\r\n", RespLimits{});
}

TEST(RespParser, RejectsOversizedInline) {
  RespLimits limits;
  limits.max_inline = 8;
  std::string in(64, 'A');  // no newline at all, beyond the limit
  ExpectStickyError(in, limits);
}

TEST(RespParser, OversizedMultibulkHeaderWithoutCrlf) {
  // A '*' line that never terminates must fail once past the guard.
  std::string in = "*";
  in.append(64, '1');
  ExpectStickyError(in, RespLimits{});
}

// ---------------------------------------------------------------------------
// Reply builders and client-side framing.
// ---------------------------------------------------------------------------

TEST(RespReplies, Builders) {
  std::string out;
  AppendSimple(&out, "OK");
  AppendError(&out, "ERR boom");
  AppendInteger(&out, -7);
  AppendBulk(&out, "hello");
  AppendNullBulk(&out);
  EXPECT_EQ(out, "+OK\r\n-ERR boom\r\n:-7\r\n$5\r\nhello\r\n$-1\r\n");
}

TEST(RespReplies, SkipReplyFramesEveryType) {
  std::string buf = "+OK\r\n:12\r\n$3\r\nabc\r\n$-1\r\n-ERR x\r\n*2\r\n:1\r\n:2\r\n";
  size_t pos = 0;
  std::vector<char> types;
  while (pos < buf.size()) {
    char t = 0;
    size_t next = SkipReply(buf, pos, &t);
    ASSERT_NE(next, std::string::npos);
    types.push_back(t);
    pos = next;
  }
  EXPECT_EQ(types, (std::vector<char>{'+', ':', '$', '$', '-', '*'}));
  // Partial replies are not framed.
  EXPECT_EQ(SkipReply("$5\r\nab", 0, nullptr), std::string::npos);
  EXPECT_EQ(SkipReply(":12", 0, nullptr), std::string::npos);
  EXPECT_EQ(SkipReply("*2\r\n:1\r\n", 0, nullptr), std::string::npos);
}

TEST(RespKeys, ParseU64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseU64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseU64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(ParseU64("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(ParseU64("", &v));
  EXPECT_FALSE(ParseU64("12a", &v));
  EXPECT_FALSE(ParseU64("-1", &v));
}

TEST(RespKeys, MapKeyDecimalAndHash) {
  EXPECT_EQ(MapKey("42"), 42u);
  EXPECT_EQ(MapKey("0"), 0u);
  // Non-decimal keys hash; equal strings agree, different ones (almost
  // surely) differ.
  EXPECT_EQ(MapKey("user:1"), MapKey("user:1"));
  EXPECT_NE(MapKey("user:1"), MapKey("user:2"));
}

// ---------------------------------------------------------------------------
// Loopback integration: a real server, real sockets.
// ---------------------------------------------------------------------------

class NetServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions opts = {}) {
    opts.port = 0;
    server_ = std::make_unique<FasterServer>(opts);
    ASSERT_TRUE(server_->ok()) << server_->error();
  }

  UniqueFd Connect() {
    UniqueFd fd = ConnectTcp("127.0.0.1", server_->port());
    EXPECT_TRUE(fd.valid());
    return fd;
  }

  // Sends `req`, reads until `n` replies are framed, returns them raw.
  std::string Exchange(int fd, const std::string& req, size_t n) {
    EXPECT_TRUE(WriteAllFd(fd, req.data(), req.size()));
    std::string buf;
    size_t pos = 0, seen = 0;
    char tmp[4096];
    while (seen < n) {
      ssize_t got = ReadSomeFd(fd, tmp, sizeof(tmp));
      if (got <= 0) {
        ADD_FAILURE() << "connection closed after " << seen << "/" << n;
        break;
      }
      buf.append(tmp, static_cast<size_t>(got));
      for (;;) {
        size_t next = SkipReply(buf, pos, nullptr);
        if (next == std::string::npos) break;
        pos = next;
        if (++seen == n) break;
      }
    }
    return buf;
  }

  std::unique_ptr<FasterServer> server_;
};

TEST_F(NetServerTest, BasicCommands) {
  StartServer();
  UniqueFd fd = Connect();
  std::string replies = Exchange(
      fd.get(),
      "PING\r\nSET 7 41\r\nINCR 7\r\nGET 7\r\nGET 9999\r\nDEL 7\r\nGET 7\r\n",
      7);
  EXPECT_EQ(replies,
            "+PONG\r\n+OK\r\n:42\r\n$2\r\n42\r\n$-1\r\n:1\r\n$-1\r\n");
}

TEST_F(NetServerTest, MultibulkAndStringKeys) {
  StartServer();
  UniqueFd fd = Connect();
  std::string req =
      "*3\r\n$3\r\nSET\r\n$5\r\nhello\r\n$2\r\n10\r\n"
      "*2\r\n$3\r\nGET\r\n$5\r\nhello\r\n";
  std::string replies = Exchange(fd.get(), req, 2);
  EXPECT_EQ(replies, "+OK\r\n$2\r\n10\r\n");
}

// A pipeline much deeper than kBatchChunk (64) forces chunked execution;
// replies must still come back exact and in order.
TEST_F(NetServerTest, DeepPipelineOrdering) {
  StartServer();
  UniqueFd fd = Connect();
  constexpr int kOps = 500;  // > 7 chunks
  std::string req;
  std::string expect;
  for (int i = 1; i <= kOps; ++i) {
    req += "INCR deep\r\n";
    expect += ":" + std::to_string(i) + "\r\n";
  }
  std::string replies = Exchange(fd.get(), req, kOps);
  EXPECT_EQ(replies, expect);
}

// DEL forces a segment split mid-pipeline; ordering must survive, and the
// post-DEL INCR restarts from 1.
TEST_F(NetServerTest, SegmentSplitsPreserveOrder) {
  StartServer();
  UniqueFd fd = Connect();
  std::string req =
      "INCR s\r\nINCR s\r\nDEL s\r\nINCR s\r\nGET s\r\n"
      "SET s 100\r\nINCR s\r\nDEL s nosuch\r\nGET s\r\n";
  std::string replies = Exchange(fd.get(), req, 9);
  EXPECT_EQ(replies,
            ":1\r\n:2\r\n:1\r\n:1\r\n$1\r\n1\r\n"
            "+OK\r\n:101\r\n:1\r\n$-1\r\n");
}

// Interleaved INCR/GET on the same key within one pipeline: every GET
// must observe exactly the preceding INCRs (the segment-split rule).
TEST_F(NetServerTest, IncrReadInterleavingIsExact) {
  StartServer();
  UniqueFd fd = Connect();
  std::string req, expect;
  for (int i = 1; i <= 10; ++i) {
    req += "INCR x\r\nGET x\r\n";
    std::string v = std::to_string(i);
    expect += ":" + v + "\r\n$" + std::to_string(v.size()) + "\r\n" + v +
              "\r\n";
  }
  std::string replies = Exchange(fd.get(), req, 20);
  EXPECT_EQ(replies, expect);
}

TEST_F(NetServerTest, ErrorRepliesKeepPosition) {
  StartServer();
  UniqueFd fd = Connect();
  std::string req =
      "SET k notanumber\r\nBOGUS\r\nGET nope\r\nSET k 3\r\nGET k\r\n";
  std::string replies = Exchange(fd.get(), req, 5);
  EXPECT_EQ(replies,
            "-ERR value is not an integer or out of range\r\n"
            "-ERR unknown command 'BOGUS', or wrong number of arguments\r\n"
            "$-1\r\n+OK\r\n$1\r\n3\r\n");
}

TEST_F(NetServerTest, ProtocolErrorClosesConnection) {
  StartServer();
  UniqueFd fd = Connect();
  std::string req = "*2\r\n$3\r\nGET\r\n$1\r\nk\r\n*bogus\r\n";
  EXPECT_TRUE(WriteAllFd(fd.get(), req.data(), req.size()));
  // The valid command is answered, the error is reported, then EOF.
  std::string buf;
  char tmp[4096];
  for (;;) {
    ssize_t got = ReadSomeFd(fd.get(), tmp, sizeof(tmp));
    if (got <= 0) break;
    buf.append(tmp, static_cast<size_t>(got));
  }
  EXPECT_EQ(buf,
            "$-1\r\n-ERR Protocol error: invalid multibulk length\r\n");
}

TEST_F(NetServerTest, PipelineBeyondMaxCarriesOver) {
  ServerOptions opts;
  opts.max_pipeline = 8;  // force multi-turn carry-over
  StartServer(opts);
  UniqueFd fd = Connect();
  constexpr int kOps = 50;
  std::string req, expect;
  for (int i = 1; i <= kOps; ++i) {
    req += "INCR c\r\n";
    expect += ":" + std::to_string(i) + "\r\n";
  }
  std::string replies = Exchange(fd.get(), req, kOps);
  EXPECT_EQ(replies, expect);
}

TEST_F(NetServerTest, TwoConnectionsShareTheStore) {
  StartServer();
  UniqueFd a = Connect();
  UniqueFd b = Connect();
  EXPECT_EQ(Exchange(a.get(), "SET shared 5\r\n", 1), "+OK\r\n");
  EXPECT_EQ(Exchange(b.get(), "GET shared\r\n", 1), "$1\r\n5\r\n");
  EXPECT_EQ(Exchange(b.get(), "INCR shared\r\n", 1), ":6\r\n");
  EXPECT_EQ(Exchange(a.get(), "GET shared\r\n", 1), "$1\r\n6\r\n");
}

TEST_F(NetServerTest, CommandsProcessedCountsAllBuilds) {
  StartServer();
  UniqueFd fd = Connect();
  Exchange(fd.get(), "PING\r\nSET 1 1\r\nGET 1\r\n", 3);
  EXPECT_GE(server_->commands_processed(), 3u);
}

// Tiny memory budget: reads can go kPending through the I/O path; the
// completion-callback plumbing must still produce exact replies.
TEST_F(NetServerTest, SmallMemoryPendingReads) {
  ServerOptions opts;
  opts.table_size = 1 << 10;
  opts.log_memory_bytes = 1 << 16;  // two pages: most of the log is cold
  StartServer(opts);
  UniqueFd fd = Connect();
  constexpr int kKeys = 300;
  std::string req;
  for (int i = 0; i < kKeys; ++i) {
    req += "SET " + std::to_string(i) + " " + std::to_string(i + 1000) +
           "\r\n";
  }
  Exchange(fd.get(), req, kKeys);
  // Read them all back (early keys now live on "disk").
  req.clear();
  std::string expect;
  for (int i = 0; i < kKeys; ++i) {
    req += "GET " + std::to_string(i) + "\r\n";
    std::string v = std::to_string(i + 1000);
    expect += "$" + std::to_string(v.size()) + "\r\n" + v + "\r\n";
  }
  std::string replies = Exchange(fd.get(), req, kKeys);
  EXPECT_EQ(replies, expect);
}

TEST_F(NetServerTest, ShutdownClosesConnectionsAndIsIdempotent) {
  StartServer();
  UniqueFd fd = Connect();
  EXPECT_EQ(Exchange(fd.get(), "PING\r\n", 1), "+PONG\r\n");
  server_->Shutdown();
  server_->Shutdown();  // idempotent
  // The drained server has closed the connection: EOF (or reset).
  char tmp[16];
  ssize_t got = ReadSomeFd(fd.get(), tmp, sizeof(tmp));
  EXPECT_LE(got, 0);
  // And nothing is listening anymore.
  UniqueFd again = ConnectTcp("127.0.0.1", server_->port());
  EXPECT_FALSE(again.valid());
}

// SLOWLOG speaks in every build (the ring is always compiled; without
// FASTER_STATS the instrumentation just never feeds it).
TEST_F(NetServerTest, SlowlogCommands) {
  ServerOptions opts;
  opts.slowlog_threshold_us = 1000000;  // armed, nothing should trip it
  StartServer(opts);
  UniqueFd fd = Connect();

  EXPECT_EQ(Exchange(fd.get(), "SLOWLOG RESET\r\n", 1), "+OK\r\n");
  EXPECT_EQ(Exchange(fd.get(), "SLOWLOG LEN\r\n", 1), ":0\r\n");
  EXPECT_EQ(Exchange(fd.get(), "SLOWLOG GET\r\n", 1), "*0\r\n");
  std::string err = Exchange(fd.get(), "SLOWLOG BOGUS\r\n", 1);
  EXPECT_EQ(err.rfind("-ERR", 0), 0u) << err;

  if constexpr (obs::kStatsEnabled) {
    // Drop the threshold to zero (shared process: the server reads the
    // same global ring) — now every command's store ops are "slow".
    obs::GlobalSlowLog().set_threshold_ns(0);
    Exchange(fd.get(), "SET 5 1\r\nGET 5\r\nINCR 5\r\n", 3);
    std::string len = Exchange(fd.get(), "SLOWLOG LEN\r\n", 1);
    ASSERT_EQ(len[0], ':');
    EXPECT_NE(len, ":0\r\n");
    // GET returns id / timestamp / duration / details per entry.
    std::string got = Exchange(fd.get(), "SLOWLOG GET 1\r\n", 1);
    EXPECT_EQ(got.rfind("*1\r\n*4\r\n:", 0), 0u) << got;
    EXPECT_NE(got.find("op="), std::string::npos);
    EXPECT_NE(got.find("execute_us="), std::string::npos);
    EXPECT_EQ(Exchange(fd.get(), "SLOWLOG RESET\r\n", 1), "+OK\r\n");
    EXPECT_EQ(Exchange(fd.get(), "SLOWLOG LEN\r\n", 1), ":0\r\n");
  }
  obs::GlobalSlowLog().set_threshold_ns(obs::SlowLog::kDisabled);
}

TEST_F(NetServerTest, InfoIsSectioned) {
  StartServer();
  UniqueFd fd = Connect();
  Exchange(fd.get(), "SET 1 1\r\n", 1);
  std::string info = Exchange(fd.get(), "INFO\r\n", 1);
  for (const char* needle :
       {"# Server", "# Clients", "# Stats", "# Log", "# Index", "# Epoch",
        "# Slowlog", "connected_clients:", "total_commands_processed:",
        "log_tail_address:", "epoch_current:", "slowlog_enabled:"}) {
    EXPECT_NE(info.find(needle), std::string::npos) << needle;
  }
}

TEST_F(NetServerTest, DebugConnectionsTracksLiveConnections) {
  StartServer();
  std::string empty = server_->DebugConnectionsJson();
  EXPECT_TRUE(MiniJson::Valid(empty)) << empty;
  EXPECT_NE(empty.find("\"open\":0"), std::string::npos) << empty;

  UniqueFd a = Connect();
  UniqueFd b = Connect();
  // Traffic both proves liveness and populates the per-slot counters.
  EXPECT_EQ(Exchange(a.get(), "PING\r\n", 1), "+PONG\r\n");
  EXPECT_EQ(Exchange(b.get(), "PING\r\nPING\r\n", 2), "+PONG\r\n+PONG\r\n");
  std::string body = server_->DebugConnectionsJson();
  EXPECT_TRUE(MiniJson::Valid(body)) << body;
  EXPECT_NE(body.find("\"open\":2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"bytes_in\":"), std::string::npos);
  EXPECT_NE(body.find("\"commands\":"), std::string::npos);

  a.reset();
  b.reset();
  // Slot release happens on the worker's next event-loop turn; poll.
  for (int i = 0; i < 200; ++i) {
    body = server_->DebugConnectionsJson();
    if (body.find("\"open\":0") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(body.find("\"open\":0"), std::string::npos) << body;
}

TEST_F(NetServerTest, ConcurrentClients) {
  ServerOptions opts;
  opts.threads = 2;
  StartServer(opts);
  constexpr int kClients = 4;
  constexpr int kRounds = 50;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};  // order: relaxed — test-local tally
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      UniqueFd fd = ConnectTcp("127.0.0.1", server_->port());
      if (!fd.valid()) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      std::string key = "k" + std::to_string(c);  // private per client
      for (int r = 1; r <= kRounds; ++r) {
        std::string req = "INCR " + key + "\r\n";
        if (!WriteAllFd(fd.get(), req.data(), req.size())) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        std::string buf;
        char tmp[256];
        while (SkipReply(buf, 0, nullptr) == std::string::npos) {
          ssize_t got = ReadSomeFd(fd.get(), tmp, sizeof(tmp));
          if (got <= 0) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          buf.append(tmp, static_cast<size_t>(got));
        }
        if (buf != ":" + std::to_string(r) + "\r\n") {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(std::memory_order_relaxed), 0);
  EXPECT_GE(server_->commands_processed(),
            static_cast<uint64_t>(kClients * kRounds));
}

}  // namespace
}  // namespace net
}  // namespace faster
