#include "workload/ycsb.h"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "workload/zipf.h"

namespace faster {
namespace {

TEST(ZipfTest, RanksAreInRange) {
  ZipfianGenerator gen{1000, 0.99, 1};
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(gen.Next(), 1000u);
  }
}

TEST(ZipfTest, LowRanksAreMostPopular) {
  ZipfianGenerator gen{100000, 0.99, 2};
  std::map<uint64_t, uint64_t> counts;
  constexpr int kSamples = 500000;
  for (int i = 0; i < kSamples; ++i) ++counts[gen.Next()];
  // Rank 0 should dominate: with theta=0.99 and n=1e5, p(0) ~ 8%.
  EXPECT_GT(counts[0], kSamples / 25);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[1000]);
}

TEST(ZipfTest, ScrambledPreservesSkewButSpreadsKeys) {
  ScrambledZipfianGenerator gen{100000, 0.99, 3};
  std::map<uint64_t, uint64_t> counts;
  constexpr int kSamples = 500000;
  for (int i = 0; i < kSamples; ++i) ++counts[gen.Next()];
  // The hottest key must not be key 0 deterministically; find the max.
  uint64_t max_count = 0, hot_key = 0;
  for (auto& [k, c] : counts) {
    if (c > max_count) {
      max_count = c;
      hot_key = k;
    }
  }
  EXPECT_GT(max_count, kSamples / 25);  // skew preserved
  // Hot keys spread across the space (scrambling): the hottest key is
  // essentially never in the first 100 slots by chance.
  EXPECT_GT(hot_key, 100u);
}

TEST(UniformTest, RoughlyUniform) {
  UniformKeyGenerator gen{100, 4};
  std::vector<uint64_t> counts(100, 0);
  constexpr int kSamples = 1000000;
  for (int i = 0; i < kSamples; ++i) ++counts[gen.Next()];
  for (uint64_t c : counts) {
    EXPECT_GT(c, kSamples / 100 * 0.9);
    EXPECT_LT(c, kSamples / 100 * 1.1);
  }
}

TEST(HotSetTest, HotSetGetsNinetyPercent) {
  constexpr uint64_t kKeys = 10000;
  HotSetKeyGenerator gen{kKeys, 5, 0.2, 0.9, /*shift_every=*/1u << 30};
  // No shifting: the hot set is [0, 2000).
  uint64_t hot = 0, total = 200000;
  for (uint64_t i = 0; i < total; ++i) {
    if (gen.Next() < kKeys / 5) ++hot;
  }
  double hot_fraction = static_cast<double>(hot) / total;
  EXPECT_GT(hot_fraction, 0.87);
  EXPECT_LT(hot_fraction, 0.93);
}

TEST(HotSetTest, HotSetDriftsOverTime) {
  constexpr uint64_t kKeys = 10000;
  HotSetKeyGenerator gen{kKeys, 6, 0.2, 0.9, /*shift_every=*/1000};
  // After many shifts the original hot window should no longer dominate.
  for (int i = 0; i < 2000000; ++i) gen.Next();
  uint64_t in_original_window = 0, total = 100000;
  for (uint64_t i = 0; i < total; ++i) {
    if (gen.Next() < kKeys / 5) ++in_original_window;
  }
  EXPECT_LT(static_cast<double>(in_original_window) / total, 0.5);
}

TEST(WorkloadSpecTest, MixFractionsAreRespected) {
  auto spec = WorkloadSpec::Ycsb(0.5, 0.0, Distribution::kUniform, 1000);
  auto counts = CountMix(spec, 100000, 7);
  EXPECT_NEAR(static_cast<double>(counts.reads) / 100000, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(counts.upserts) / 100000, 0.5, 0.02);
  EXPECT_EQ(counts.rmws, 0u);
}

TEST(WorkloadSpecTest, RmwMix) {
  auto spec = WorkloadSpec::Ycsb(0.0, 1.0, Distribution::kZipfian, 1000);
  auto counts = CountMix(spec, 50000, 8);
  EXPECT_EQ(counts.rmws, 50000u);
  EXPECT_EQ(spec.Name(), "0:100RMW/zipf");
}

TEST(WorkloadSpecTest, Names) {
  EXPECT_EQ(
      WorkloadSpec::Ycsb(0.5, 0.0, Distribution::kUniform, 1).Name(),
      "50:50/uniform");
  EXPECT_EQ(
      WorkloadSpec::Ycsb(1.0, 0.0, Distribution::kHotSet, 1).Name(),
      "100:0/hotset");
}

TEST(RunWorkloadTest, DrivesAdapter) {
  struct CountingAdapter {
    std::atomic<uint64_t> reads{0}, upserts{0}, rmws{0}, idles{0};
    void Begin() {}
    void End() {}
    void DoRead(uint64_t) { reads.fetch_add(1, std::memory_order_relaxed); }
    void DoUpsert(uint64_t, uint64_t) {
      upserts.fetch_add(1, std::memory_order_relaxed);
    }
    void DoRmw(uint64_t) { rmws.fetch_add(1, std::memory_order_relaxed); }
    void Idle() { idles.fetch_add(1, std::memory_order_relaxed); }
  };
  CountingAdapter adapter;
  auto spec = WorkloadSpec::Ycsb(0.5, 0.25, Distribution::kUniform, 1000);
  auto result = RunWorkload(adapter, spec, 2, 0.2);
  EXPECT_GT(result.total_ops, 0u);
  EXPECT_EQ(result.total_ops,
            adapter.reads + adapter.upserts + adapter.rmws);
  EXPECT_GT(adapter.idles.load(), 0u);
  EXPECT_GT(result.mops, 0.0);
}

}  // namespace
}  // namespace faster
