// Heavier concurrency tests: index growth racing with writers, store-level
// mixed workloads racing with growth and checkpoints, and parameterized
// (TEST_P) invariant sweeps over HybridLog configurations.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "core/hash_index.h"
#include "core/hybrid_log.h"
#include "device/memory_device.h"

namespace faster {
namespace {

// --------------------------------------------------------------------------
// Index growth with concurrent writers (Appendix B): no entry may be lost
// and the (bucket, tag) invariant must hold across the migration.
// --------------------------------------------------------------------------

TEST(GrowUnderWritersTest, NoEntryLostDuringGrow) {
  LightEpoch epoch;
  HashIndex index{64, &epoch};
  constexpr uint64_t kKeys = 4000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> inserted{0};

  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      epoch.Protect();
      std::mt19937_64 rng(t + 1);
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t k = rng() % kKeys;
        KeyHash h{Mix64(k)};
        HashIndex::OpScope scope{index, h};
        HashIndex::FindResult fr;
        index.FindOrCreateEntry(scope, h, &fr);
        if (!fr.entry.address().IsValid()) {
          if (index.TryUpdateEntry(&fr, Address{k + 1, 0})) {
            inserted.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (++i % 128 == 0) epoch.Refresh();
      }
      epoch.Unprotect();
    });
  }

  // Grow twice while the writers churn.
  epoch.Protect();
  index.Grow();
  index.Grow();
  epoch.Unprotect();
  stop.store(true);
  for (auto& t : writers) t.join();

  // Every key that was ever inserted must be findable afterwards, with a
  // valid address.
  epoch.Protect();
  uint64_t found = 0;
  for (uint64_t k = 0; k < kKeys; ++k) {
    KeyHash h{Mix64(k)};
    HashIndex::OpScope scope{index, h};
    HashIndex::FindResult fr;
    if (index.FindEntry(scope, h, &fr) && fr.entry.address().IsValid()) {
      ++found;
    }
  }
  epoch.Unprotect();
  EXPECT_EQ(index.size(), 64u * 4);
  EXPECT_GE(found, inserted.load());  // grow duplicates chains, never drops
}

// --------------------------------------------------------------------------
// Store-level hammer: concurrent mixed ops + GrowIndex + checkpoint on a
// spilling store. Verified by per-key value classes (every write to key k
// writes k*2+1 or via RMW +0), so any torn/lost state shows up as a wrong
// value.
// --------------------------------------------------------------------------

TEST(StoreHammerTest, MixedOpsWithGrowAndCheckpoint) {
  using Store = FasterKv<CountStoreFunctions>;
  MemoryDevice device;
  Store::Config cfg;
  cfg.table_size = 1024;
  cfg.log.memory_size_bytes = 2ull << Address::kOffsetBits;
  cfg.log.mutable_fraction = 0.5;
  Store store{cfg, &device};
  constexpr uint64_t kKeys = 100000;

  store.StartSession();
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(store.Upsert(k, k * 2 + 1), Status::kOk);
  }
  store.StopSession();

  std::atomic<uint64_t> errors{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      store.StartSession();
      std::mt19937_64 rng(t + 7);
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t k = rng() % kKeys;
        switch (rng() % 3) {
          case 0:
            if (store.Upsert(k, k * 2 + 1) != Status::kOk) {
              errors.fetch_add(1);
            }
            break;
          case 1: {
            Status s = store.Rmw(k, 0);  // +0 keeps the value class
            if (s != Status::kOk && s != Status::kPending) {
              errors.fetch_add(1);
            }
            break;
          }
          case 2: {
            thread_local uint64_t out;
            Status s = store.Read(k, 0, &out);
            if (s == Status::kOk && out != k * 2 + 1) errors.fetch_add(1);
            if (s == Status::kNotFound) errors.fetch_add(1);
            break;
          }
        }
        if (++i % 512 == 0) store.CompletePending(false);
      }
      store.CompletePending(true);
      store.StopSession();
    });
  }

  store.StartSession();
  store.GrowIndex();
  ASSERT_EQ(store.Checkpoint("/tmp/faster_hammer_ckpt"), Status::kOk);
  store.StopSession();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : workers) t.join();
  EXPECT_EQ(errors.load(), 0u);

  // Post-hammer validation pass.
  store.StartSession();
  for (uint64_t k = 0; k < kKeys; k += 977) {
    uint64_t out = UINT64_MAX;
    Status s = store.Read(k, 0, &out);
    if (s == Status::kPending) {
      ASSERT_TRUE(store.CompletePending(true));
      s = Status::kOk;
    }
    ASSERT_EQ(s, Status::kOk) << "key " << k;
    ASSERT_EQ(out, k * 2 + 1) << "key " << k;
  }
  store.StopSession();
  std::filesystem::remove_all("/tmp/faster_hammer_ckpt");
}

// --------------------------------------------------------------------------
// HybridLog invariants under concurrent allocation, parameterized over
// buffer geometry (property sweep).
// --------------------------------------------------------------------------

struct LogGeometry {
  std::string name;
  uint64_t pages;
  double mutable_fraction;
  uint32_t alloc_size;
};
std::ostream& operator<<(std::ostream& os, const LogGeometry& g) {
  return os << g.name;
}

class HybridLogSweepTest : public ::testing::TestWithParam<LogGeometry> {};

TEST_P(HybridLogSweepTest, InvariantsHoldUnderConcurrentAllocation) {
  const LogGeometry& g = GetParam();
  LightEpoch epoch;
  MemoryDevice device;
  LogConfig cfg;
  cfg.memory_size_bytes = g.pages << Address::kOffsetBits;
  cfg.mutable_fraction = g.mutable_fraction;
  HybridLog log{cfg, &device, &epoch};

  constexpr int kThreads = 3;
  const uint64_t per_thread = (6 * Address::kPageSize) / g.alloc_size;
  std::atomic<uint64_t> violations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      epoch.Protect();
      for (uint64_t i = 0; i < per_thread; ++i) {
        uint64_t closed = 0;
        Address a = log.Allocate(g.alloc_size, &closed);
        if (!a.IsValid()) {
          while (!log.NewPage(closed)) {
            epoch.Refresh();
            std::this_thread::yield();
          }
          epoch.Refresh();
          continue;
        }
        // Region-order invariants (Sec. 6.1) must hold at all times.
        Address begin = log.begin_address();
        Address head = log.head_address();
        Address safe_ro = log.safe_read_only_address();
        Address ro = log.read_only_address();
        if (!(begin <= head && head <= safe_ro && safe_ro <= ro)) {
          violations.fetch_add(1);
        }
        if (i % 64 == 0) epoch.Refresh();
      }
      epoch.Unprotect();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_LE(log.head_address(), log.flushed_until_address());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HybridLogSweepTest,
    ::testing::Values(LogGeometry{"tiny_append_only", 2, 0.0, 64},
                      LogGeometry{"tiny_mostly_mutable", 2, 0.9, 64},
                      LogGeometry{"small_balanced", 4, 0.5, 48},
                      LogGeometry{"large_records", 2, 0.5, 4096},
                      LogGeometry{"page_sized_records", 2, 0.5,
                                  1u << Address::kOffsetBits},
                      LogGeometry{"big_buffer", 16, 0.9, 24}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace faster
