// Stress: on-line index Grow (Appendix B) racing with store operations on
// a spilling log. The index starts tiny (64 buckets) and doubles twice
// while writer threads upsert/RMW/read, so the prepare/pin/migrate state
// machine runs with real contention: OpScopes pinning chunks, operations
// helping migration, and entries installed into both table versions.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"
#include "stress_common.h"

namespace faster {
namespace {

using Store = FasterKv<CountStoreFunctions>;

TEST(StressGrowTest, GrowUnderStoreLoad) {
  constexpr int kWriters = 3;
  constexpr uint64_t kKeySpace = 4096;
  const uint64_t kOpsPerThread = stress::ScaleOps(40000);

  MemoryDevice device;
  Store::Config cfg;
  cfg.table_size = 64;  // forces heavy bucket chains, then two doublings
  cfg.log.memory_size_bytes = 4ull << Address::kOffsetBits;
  cfg.log.mutable_fraction = 0.5;
  Store store{cfg, &device};

  const uint64_t initial_size = store.index().size();
  std::vector<std::unordered_map<uint64_t, uint64_t>> models(kWriters);
  std::atomic<int> writers_done{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng = stress::ThreadRng(static_cast<uint64_t>(t));
      auto& model = models[t];
      store.StartSession();
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        uint64_t k = (rng() % (kKeySpace / kWriters)) * kWriters +
                     static_cast<uint64_t>(t);
        if (rng() % 2 == 0) {
          ASSERT_EQ(store.Upsert(k, k + 1), Status::kOk);
          model[k] = k + 1;
        } else {
          uint64_t d = rng() % 100;
          Status s = store.Rmw(k, d);
          if (s == Status::kPending) {
            ASSERT_TRUE(store.CompletePending(true));
            s = Status::kOk;
          }
          ASSERT_EQ(s, Status::kOk);
          model[k] += d;
        }
        if (i % 256 == 0) store.CompletePending(false);
      }
      store.StopSession();
      writers_done.fetch_add(1);
    });
  }

  // Grow twice while writers churn. Grow requires every protected session
  // to keep refreshing, which the writers do via their operations.
  store.StartSession();
  store.GrowIndex();
  store.GrowIndex();
  store.StopSession();
  for (auto& t : threads) t.join();
  ASSERT_EQ(writers_done.load(), kWriters);
  EXPECT_EQ(store.index().size(), initial_size * 4);
  EXPECT_FALSE(store.index().IsResizing());

  // No entry may be lost across the migrations: every model key must read
  // back its exact value through the doubled index.
  store.StartSession();
  for (int t = 0; t < kWriters; ++t) {
    for (const auto& [k, v] : models[t]) {
      uint64_t out = UINT64_MAX;
      Status s = store.Read(k, 0, &out);
      if (s == Status::kPending) {
        ASSERT_TRUE(store.CompletePending(true));
        s = Status::kOk;
      }
      ASSERT_EQ(s, Status::kOk) << "key " << k;
      ASSERT_EQ(out, v) << "key " << k;
    }
  }
  store.StopSession();
}

}  // namespace
}  // namespace faster
