// Stress: concurrent Upsert/Read/RMW/Delete across HybridLog region
// boundaries. The log buffer is tiny (4 pages, half mutable) so records
// constantly migrate mutable -> fuzzy -> read-only -> disk while the
// threads hammer them, exercising in-place updates, RCU appends, fuzzy
// RMW deferral, tombstones, and pending storage reads together.
//
// Verification: keys are sharded by owner thread (key % kThreads), so each
// owner can track an exact model of its keys while every thread reads all
// keys. Any lost update, torn address, or stale-entry bug surfaces as a
// model mismatch after the join; any memory-order bug surfaces under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"
#include "stress_common.h"

namespace faster {
namespace {

using Store = FasterKv<CountStoreFunctions>;

TEST(StressOpsTest, MixedOpsAcrossRegionBoundaries) {
  constexpr int kThreads = 4;
  constexpr uint64_t kKeySpace = 8192;
  const uint64_t kOpsPerThread = stress::ScaleOps(60000);

  MemoryDevice device;
  Store::Config cfg;
  cfg.table_size = 4096;
  cfg.log.memory_size_bytes = 4ull << Address::kOffsetBits;  // 4 pages
  cfg.log.mutable_fraction = 0.5;  // frequent fuzzy/read-only crossings
  Store store{cfg, &device};

  std::vector<std::unordered_map<uint64_t, uint64_t>> models(kThreads);
  std::atomic<uint64_t> read_errors{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng = stress::ThreadRng(static_cast<uint64_t>(t));
      auto& model = models[t];
      store.StartSession();
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        uint64_t op = rng() % 100;
        if (op < 30) {
          // Upsert an owned key (blind write; resets the counter).
          uint64_t k = (rng() % (kKeySpace / kThreads)) * kThreads +
                       static_cast<uint64_t>(t);
          uint64_t v = rng() % 100000;
          ASSERT_EQ(store.Upsert(k, v), Status::kOk);
          model[k] = v;
        } else if (op < 60) {
          // RMW an owned key (+delta; InitialUpdater on absent).
          uint64_t k = (rng() % (kKeySpace / kThreads)) * kThreads +
                       static_cast<uint64_t>(t);
          uint64_t d = rng() % 1000;
          Status s = store.Rmw(k, d);
          if (s == Status::kPending) {
            // Fuzzy-region deferral or storage read; wait so the model
            // stays exact (the RMW applies before our next op on k).
            ASSERT_TRUE(store.CompletePending(true));
            s = Status::kOk;
          }
          ASSERT_EQ(s, Status::kOk);
          model[k] += d;
        } else if (op < 70) {
          // Delete an owned key.
          uint64_t k = (rng() % (kKeySpace / kThreads)) * kThreads +
                       static_cast<uint64_t>(t);
          Status s = store.Delete(k);
          ASSERT_TRUE(s == Status::kOk || s == Status::kNotFound);
          model.erase(k);
        } else if (op < 85) {
          // Read an owned key: must match the model exactly (session
          // consistency — no other thread writes this key).
          uint64_t k = (rng() % (kKeySpace / kThreads)) * kThreads +
                       static_cast<uint64_t>(t);
          uint64_t out = UINT64_MAX;
          Status s = store.Read(k, 0, &out);
          if (s == Status::kPending) {
            ASSERT_TRUE(store.CompletePending(true));
            s = Status::kOk;
          }
          auto it = model.find(k);
          if (it == model.end()) {
            ASSERT_EQ(s, Status::kNotFound) << "key " << k;
          } else {
            ASSERT_EQ(s, Status::kOk) << "key " << k;
            ASSERT_EQ(out, it->second) << "key " << k;
          }
        } else {
          // Read a foreign key: value races with its owner, but the status
          // must be valid and the read must not crash or tear.
          uint64_t k = rng() % kKeySpace;
          // The output must stay live until completion, so keep it
          // per-thread static for fire-and-forget foreign reads.
          thread_local uint64_t foreign_out;
          Status s = store.Read(k, 0, &foreign_out);
          if (!(s == Status::kOk || s == Status::kNotFound ||
                s == Status::kPending)) {
            read_errors.fetch_add(1);
          }
        }
        if (i % 256 == 0) store.CompletePending(false);
      }
      store.StopSession();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(read_errors.load(), 0u);

  // Final validation: every owner's model must be byte-exact in the store.
  store.StartSession();
  for (int t = 0; t < kThreads; ++t) {
    for (const auto& [k, v] : models[t]) {
      uint64_t out = UINT64_MAX;
      Status s = store.Read(k, 0, &out);
      if (s == Status::kPending) {
        ASSERT_TRUE(store.CompletePending(true));
        s = Status::kOk;
      }
      ASSERT_EQ(s, Status::kOk) << "key " << k;
      ASSERT_EQ(out, v) << "key " << k;
    }
  }
  store.StopSession();

  Store::Stats stats = store.GetStats();
  // The tiny buffer must actually have pushed work through every region:
  // records appended (RCU/initial) and operations gone pending.
  EXPECT_GT(stats.appended_records, 0u);
  EXPECT_GT(stats.upserts + stats.rmws + stats.deletes, 0u);
}

}  // namespace
}  // namespace faster
