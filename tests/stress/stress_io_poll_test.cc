// Stress: the completion-polling I/O path (IoPathMode::kPolling,
// DESIGN.md §13) under churn. Worker threads run a spilling-log workload
// whose CompletePending calls poll the device — executing their own cold
// reads and stealing other threads' queued flush writes — while the main
// thread races index Grow, checkpoints, and log GC (ShiftBeginAddress)
// against them. TSan target: the SPSC/MPSC rings, the consumer-exclusion
// flag, and PollAll stealing inside NewPage/ShiftReadOnlyToTail stalls
// all run with real contention here.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"
#include "stress_common.h"

namespace faster {
namespace {

using Store = FasterKv<CountStoreFunctions>;

// pthread_create can fail transiently (EAGAIN) while the parallel ctest
// run fork-storms the box. If std::thread's constructor throws out of the
// test body, unwinding destroys the already-spawned joinable writers and
// std::terminate fires ("terminate called without an active exception"),
// turning a resource blip into a SIGABRT. Retry briefly instead; `fn` is
// copied per attempt because a failed construction may consume it.
template <typename Fn>
std::thread SpawnWithRetry(const Fn& fn) {
  for (int attempt = 0;; ++attempt) {
    try {
      return std::thread{fn};
    } catch (const std::system_error&) {
      if (attempt >= 16) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

TEST(StressIoPollTest, PollRacesGrowCheckpointAndGc) {
  constexpr int kWriters = 3;
  constexpr uint64_t kKeySpace = 4096;
  const uint64_t kOpsPerThread = stress::ScaleOps(30000);

  // Polling device: no I/O threads at all — every flush write and cold
  // read below executes inside some worker's poll loop.
  MemoryDevice device{0, 0, IoPathMode::kPolling};
  Store::Config cfg;
  cfg.table_size = 64;  // heavy chains + two doublings
  cfg.log.memory_size_bytes = 4ull << Address::kOffsetBits;
  cfg.log.mutable_fraction = 0.5;
  Store store{cfg, &device};

  const uint64_t initial_size = store.index().size();
  std::vector<std::unordered_map<uint64_t, uint64_t>> models(kWriters);
  std::atomic<int> writers_done{0};

  std::vector<std::thread> threads;
  // Joins on every exit path: if anything below throws (gtest unwinds the
  // test body), a joinable writer must not reach ~thread().
  struct JoinGuard {
    std::vector<std::thread>& ts;
    ~JoinGuard() {
      for (auto& t : ts) {
        if (t.joinable()) t.join();
      }
    }
  } join_guard{threads};
  for (int t = 0; t < kWriters; ++t) {
    threads.push_back(SpawnWithRetry([&, t] {
      // Signal completion even if a fatal ASSERT returns early, so the
      // main thread's churn loop below can never spin forever (gtest
      // still records the writer's failure).
      struct DoneGuard {
        std::atomic<int>& done;
        ~DoneGuard() { done.fetch_add(1); }
      } done_guard{writers_done};
      std::mt19937_64 rng = stress::ThreadRng(static_cast<uint64_t>(t));
      auto& model = models[t];
      store.StartSession();
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        uint64_t k = (rng() % (kKeySpace / kWriters)) * kWriters +
                     static_cast<uint64_t>(t);
        uint64_t roll = rng() % 4;
        if (roll == 0) {
          ASSERT_EQ(store.Upsert(k, k + 1), Status::kOk);
          model[k] = k + 1;
        } else if (roll == 1 && model.count(k) != 0) {
          // Cold reads of spilled keys drive the pending-I/O poll loop.
          // kNotFound is possible once GC truncates the key's record.
          uint64_t out = UINT64_MAX;
          Status s = store.Read(k, 0, &out);
          if (s == Status::kPending) {
            ASSERT_TRUE(store.CompletePending(true));
          } else {
            ASSERT_TRUE(s == Status::kOk || s == Status::kNotFound);
          }
        } else {
          uint64_t d = rng() % 100;
          Status s = store.Rmw(k, d);
          if (s == Status::kPending) {
            ASSERT_TRUE(store.CompletePending(true));
            s = Status::kOk;
          }
          ASSERT_EQ(s, Status::kOk);
          model[k] += d;
        }
        if (i % 128 == 0) store.CompletePending(false);
      }
      store.StopSession();
    }));
  }

  // Churn from the main thread: grow twice, checkpoint (flush-to-tail
  // waits poll foreign queues), and GC the log prefix.
  std::string dir =
      "/tmp/faster_stress_io_poll_" + std::to_string(::getpid());
  bool gc_shifted = false;
  store.StartSession();
  store.GrowIndex();
  (void)store.Checkpoint(dir);
  store.GrowIndex();
  while (writers_done.load() < kWriters) {
    Address begin = store.hlog().begin_address();
    Address safe = store.hlog().safe_read_only_address();
    if (safe > begin && safe.control() - begin.control() > (2u << 16)) {
      gc_shifted |=
          store.ShiftBeginAddress(Address{begin.control() + (1u << 14)});
    }
    store.CompletePending(false);
    store.Refresh();
    std::this_thread::yield();
  }
  store.StopSession();
  for (auto& t : threads) t.join();
  std::filesystem::remove_all(dir);

  EXPECT_EQ(store.index().size(), initial_size * 4);
  EXPECT_FALSE(store.index().IsResizing());

  // Exact-once completion accounting end to end. GC complicates exact
  // equality: an Rmw on a truncated key re-initializes it, so the store
  // can hold *less* than the model (pre-truncation accumulation lost) —
  // but never more. A doubled I/O completion double-applies an RMW delta
  // and overshoots the model; a lost completion hangs CompletePending
  // above. So: out == v without GC, out <= v with it.
  store.StartSession();
  for (int t = 0; t < kWriters; ++t) {
    for (const auto& [k, v] : models[t]) {
      uint64_t out = UINT64_MAX;
      Status s = store.Read(k, 0, &out);
      if (s == Status::kPending) {
        ASSERT_TRUE(store.CompletePending(true));
        s = out != UINT64_MAX ? Status::kOk : Status::kNotFound;
      }
      if (s == Status::kNotFound && gc_shifted) {
        continue;  // truncated below the GC'd begin address
      }
      ASSERT_EQ(s, Status::kOk) << "key " << k;
      if (gc_shifted) {
        ASSERT_LE(out, v) << "key " << k;
      } else {
        ASSERT_EQ(out, v) << "key " << k;
      }
    }
  }
  store.StopSession();
}

}  // namespace
}  // namespace faster
