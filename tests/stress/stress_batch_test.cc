// Stress: the batched pipeline racing single-op threads, fuzzy
// checkpoints, log GC, and an index Grow on a tiny spilling log. The
// batch fast path elides per-op epoch work and reuses one stable-table
// snapshot per chunk, so the hazards to hunt are: stale index snapshots
// surviving a refresh (BatchScope), extent records colliding with
// page-close flushes, batch reads racing RCU appends, and the kStable
// check racing Grow's migration.
//
// Verification mirrors stress_ops_test: keys are owner-sharded, each
// owner keeps an exact model (keys within one batch are distinct, and
// any kPending completes before the next batch, so models stay exact
// despite concurrent foreign readers). Any lost update, torn value, or
// stale-snapshot bug surfaces as a model mismatch; memory-order bugs
// surface under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"
#include "stress_common.h"

namespace faster {
namespace {

using Store = FasterKv<CountStoreFunctions>;

TEST(StressBatchTest, BatchedOpsUnderChurn) {
  constexpr int kBatchThreads = 2;
  constexpr int kSingleThreads = 1;
  constexpr int kThreads = kBatchThreads + kSingleThreads;
  constexpr uint64_t kKeySpace = 4096;
  constexpr size_t kBatch = 32;
  const uint64_t kBatchesPerThread = stress::ScaleOps(60000);
  const std::string ckpt_dir = "/tmp/faster_stress_batch_ckpt";
  std::filesystem::remove_all(ckpt_dir);

  MemoryDevice device;
  Store::Config cfg;
  cfg.table_size = 2048;
  cfg.log.memory_size_bytes = 4ull << Address::kOffsetBits;  // 4 pages
  cfg.log.mutable_fraction = 0.5;  // constant region crossings
  Store store{cfg, &device};

  std::vector<std::unordered_map<uint64_t, uint64_t>> models(kThreads);
  std::atomic<uint64_t> read_errors{0};
  std::atomic<bool> churn_stop{false};
  std::atomic<int> checkpoints_done{0};

  auto owned_key = [&](std::mt19937_64& rng, int t) {
    return (rng() % (kKeySpace / kThreads)) * kThreads +
           static_cast<uint64_t>(t);
  };

  std::vector<std::thread> threads;
  // Batched workers: mixed chunks of distinct owned keys + one foreign
  // read per batch (its value races, but it must not crash or tear).
  for (int t = 0; t < kBatchThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng = stress::ThreadRng(static_cast<uint64_t>(t));
      auto& model = models[t];
      std::vector<uint64_t> outs(kBatch);
      // Foreign-read sink; thread_local so a pending read completing in a
      // later CompletePending still has a live destination.
      thread_local uint64_t foreign_out;
      store.StartSession();
      for (uint64_t i = 0; i < kBatchesPerThread; ++i) {
        Store::BatchOp ops[kBatch];
        uint64_t keys[kBatch];
        uint64_t args[kBatch];
        // Distinct owned keys within the batch keep the model exact.
        uint64_t base = rng() % (kKeySpace / kThreads);
        for (size_t j = 0; j + 1 < kBatch; ++j) {
          keys[j] = ((base + j) % (kKeySpace / kThreads)) * kThreads +
                    static_cast<uint64_t>(t);
          uint64_t p = rng() % 100;
          ops[j] = Store::BatchOp{};
          ops[j].key = keys[j];
          if (p < 35) {
            ops[j].kind = Store::BatchOp::Kind::kUpsert;
            args[j] = rng() % 100000;
            ops[j].value = args[j];
          } else if (p < 70) {
            ops[j].kind = Store::BatchOp::Kind::kRmw;
            args[j] = rng() % 1000;
            ops[j].input = args[j];
          } else {
            ops[j].kind = Store::BatchOp::Kind::kRead;
            ops[j].input = 0;
            outs[j] = UINT64_MAX;
            ops[j].output = &outs[j];
          }
        }
        ops[kBatch - 1] = Store::BatchOp{};
        ops[kBatch - 1].kind = Store::BatchOp::Kind::kRead;
        ops[kBatch - 1].key = rng() % kKeySpace;  // foreign
        ops[kBatch - 1].output = &foreign_out;

        store.ExecuteBatch(ops, kBatch);

        bool any_pending = false;
        for (size_t j = 0; j < kBatch; ++j) {
          if (ops[j].status == Status::kPending) any_pending = true;
        }
        if (any_pending) {
          ASSERT_TRUE(store.CompletePending(true));
        }

        for (size_t j = 0; j + 1 < kBatch; ++j) {
          switch (ops[j].kind) {
            case Store::BatchOp::Kind::kUpsert:
              ASSERT_EQ(ops[j].status, Status::kOk);
              model[keys[j]] = args[j];
              break;
            case Store::BatchOp::Kind::kRmw:
              ASSERT_TRUE(ops[j].status == Status::kOk ||
                          ops[j].status == Status::kPending);
              model[keys[j]] += args[j];
              break;
            case Store::BatchOp::Kind::kRead: {
              Status s = ops[j].status;
              auto it = model.find(keys[j]);
              if (it == model.end()) {
                if (s != Status::kNotFound) {
                  read_errors.fetch_add(1);
                }
              } else if (s == Status::kOk || s == Status::kPending) {
                // Owned key: after completion the out must be exact.
                if (outs[j] != it->second) read_errors.fetch_add(1);
              } else {
                read_errors.fetch_add(1);
              }
              break;
            }
          }
        }
      }
      store.StopSession();
    });
  }
  // Single-op workers on their own shards, interleaving with the batches.
  for (int t = kBatchThreads; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng = stress::ThreadRng(static_cast<uint64_t>(t));
      auto& model = models[t];
      store.StartSession();
      for (uint64_t i = 0; i < kBatchesPerThread * kBatch / 2; ++i) {
        uint64_t k = owned_key(rng, t);
        if (rng() % 2 == 0) {
          uint64_t v = rng() % 100000;
          ASSERT_EQ(store.Upsert(k, v), Status::kOk);
          model[k] = v;
        } else {
          uint64_t d = rng() % 1000;
          Status s = store.Rmw(k, d);
          if (s == Status::kPending) {
            ASSERT_TRUE(store.CompletePending(true));
            s = Status::kOk;
          }
          ASSERT_EQ(s, Status::kOk);
          model[k] += d;
        }
        if (i % 256 == 0) store.CompletePending(false);
      }
      store.StopSession();
    });
  }
  // Churn: fuzzy checkpoints, log GC (compaction + begin shift), and one
  // index Grow — each forces the batch path's fallbacks (interrupted
  // BatchScope, non-kStable index) while the workers hammer the store.
  std::thread churn([&] {
    store.StartSession();
    int c = 0;
    bool grown = false;
    while (!churn_stop.load(std::memory_order_acquire)) {
      std::string dir = ckpt_dir + "/" + std::to_string(c++);
      ASSERT_EQ(store.Checkpoint(dir), Status::kOk);
      checkpoints_done.fetch_add(1, std::memory_order_relaxed);
      if (!grown) {
        store.GrowIndex();
        grown = true;
      }
      Address safe_ro = store.hlog().safe_read_only_address();
      Address head = store.hlog().head_address();
      if (head > store.hlog().begin_address()) {
        // GC everything below head (records already on storage).
        store.CompactLog(head < safe_ro ? head : safe_ro);
      }
      store.Refresh();
    }
    store.StopSession();
  });

  for (auto& t : threads) t.join();
  // The churn must genuinely have overlapped the workload.
  EXPECT_GT(checkpoints_done.load(), 0);
  churn_stop.store(true, std::memory_order_release);
  churn.join();
  EXPECT_EQ(read_errors.load(), 0u);

  // Final validation: every owner's model must be byte-exact.
  store.StartSession();
  for (int t = 0; t < kThreads; ++t) {
    for (const auto& [k, v] : models[t]) {
      uint64_t out = UINT64_MAX;
      Status s = store.Read(k, 0, &out);
      if (s == Status::kPending) {
        ASSERT_TRUE(store.CompletePending(true));
        s = Status::kOk;
      }
      ASSERT_EQ(s, Status::kOk) << "key " << k;
      ASSERT_EQ(out, v) << "key " << k;
    }
  }
  store.StopSession();

  // The run must actually have exercised the fast path and the log:
  Store::Stats stats = store.GetStats();
  EXPECT_GT(stats.appended_records, 0u);
  std::filesystem::remove_all(ckpt_dir);
}

}  // namespace
}  // namespace faster
