// Stress: per-thread sharded metrics must be exact after all writers join,
// and aggregating concurrently with writers must be race-free (TSan-clean)
// and never observe a torn or impossible value.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/stats.h"
#include "stress_common.h"

namespace faster {
namespace {

TEST(StressStatsTest, CountersExactUnderConcurrencyWithAggregator) {
  constexpr uint32_t kThreads = 8;
  const uint64_t kOpsPerThread = stress::ScaleOps(200000);

  obs::Counter counter;
  obs::Gauge gauge;
  obs::Histogram histogram;

  std::atomic<bool> stop{false};
  // Aggregator races with the writers: sums must be monotone for the
  // counter and never exceed the final total (writers only add).
  std::thread aggregator([&] {
    uint64_t last_sum = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t sum = counter.Sum();
      EXPECT_GE(sum, last_sum);
      EXPECT_LE(sum, kOpsPerThread * kThreads);
      last_sum = sum;
      // Gauge can be transiently anything in [-total, total]; just read it.
      (void)gauge.Value();
      (void)histogram.Percentile(0.99);
    }
  });

  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto rng = stress::ThreadRng(t);
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        counter.Inc();
        gauge.Inc();
        histogram.Record(rng() & 0xFFFF);
        gauge.Dec();
      }
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_relaxed);
  aggregator.join();

  // After join, totals are exact (no lost updates despite plain
  // load+store increments: each shard has a single writer).
  EXPECT_EQ(counter.Sum(), kOpsPerThread * kThreads);
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(histogram.Count(), kOpsPerThread * kThreads);
}

// Threads exiting mid-run release their slot for reuse; totals must still
// be exact across generations of tenants on the same shard.
TEST(StressStatsTest, ExactAcrossThreadChurn) {
  constexpr uint32_t kGenerations = 16;
  constexpr uint32_t kThreads = 4;
  const uint64_t kOpsPerThread = stress::ScaleOps(20000);

  obs::Counter counter;
  for (uint32_t g = 0; g < kGenerations; ++g) {
    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (uint64_t i = 0; i < kOpsPerThread; ++i) counter.Inc();
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(counter.Sum(), kOpsPerThread * kThreads * kGenerations);
}

}  // namespace
}  // namespace faster
