// Stress: fuzzy checkpoints (Sec. 6.5) taken while writer threads keep
// updating, then recovery of every checkpoint into a fresh store. With
// monotonically increasing per-key counters (RMW +delta, owner-sharded),
// any recovered value must satisfy pre-checkpoint <= recovered <= final:
// the fuzzy snapshot plus the [t1, t2) repair scan must restore a
// consistent prefix of each key's history, never a torn or future value.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"
#include "stress_common.h"

namespace faster {
namespace {

using Store = FasterKv<CountStoreFunctions>;
using Model = std::unordered_map<uint64_t, uint64_t>;

Store::Config MakeConfig() {
  Store::Config cfg;
  cfg.table_size = 2048;
  cfg.log.memory_size_bytes = 4ull << Address::kOffsetBits;
  cfg.log.mutable_fraction = 0.5;
  return cfg;
}

TEST(StressCheckpointTest, FuzzyCheckpointsUnderConcurrentWriters) {
  constexpr int kWriters = 3;
  constexpr int kCheckpoints = 3;
  constexpr uint64_t kKeySpace = 2048;
  const uint64_t kOpsPerThread = stress::ScaleOps(30000);
  const std::string base_dir = "/tmp/faster_stress_ckpt";
  for (int c = 0; c < kCheckpoints; ++c) {
    std::filesystem::remove_all(base_dir + std::to_string(c));
  }

  MemoryDevice device;
  Store store{MakeConfig(), &device};

  // Lower-bound snapshots: before checkpoint c records its t1, every
  // writer publishes a copy of its model (or its final model at exit).
  // All records reflected in a published snapshot were already applied,
  // so they sit below the t1 read afterwards and recovery must keep them.
  std::vector<Model> models(kWriters);
  std::vector<std::vector<Model>> pre_ckpt(
      kWriters, std::vector<Model>(kCheckpoints));
  std::atomic<int> announced{-1};  // highest checkpoint index announced
  std::vector<std::atomic<bool>> snapshot_taken(kWriters * kCheckpoints);
  for (auto& f : snapshot_taken) f.store(false);
  auto flag_at = [&](int t, int c) -> std::atomic<bool>& {
    return snapshot_taken[static_cast<size_t>(t * kCheckpoints + c)];
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng = stress::ThreadRng(static_cast<uint64_t>(t));
      auto& model = models[t];
      store.StartSession();
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        int a = announced.load(std::memory_order_acquire);
        for (int c = 0; c <= a; ++c) {
          if (!flag_at(t, c).load(std::memory_order_relaxed)) {
            pre_ckpt[t][static_cast<size_t>(c)] = model;
            flag_at(t, c).store(true, std::memory_order_release);
          }
        }
        uint64_t k = (rng() % (kKeySpace / kWriters)) * kWriters +
                     static_cast<uint64_t>(t);
        uint64_t d = rng() % 100 + 1;
        Status s = store.Rmw(k, d);
        if (s == Status::kPending) {
          ASSERT_TRUE(store.CompletePending(true));
          s = Status::kOk;
        }
        ASSERT_EQ(s, Status::kOk);
        model[k] += d;
        if (i % 256 == 0) store.CompletePending(false);
      }
      // Publish the final model as the snapshot for any checkpoint this
      // writer did not get to see announced: every record is applied by
      // now, so it is a valid lower bound for all later checkpoints too.
      for (int c = 0; c < kCheckpoints; ++c) {
        if (!flag_at(t, c).load(std::memory_order_relaxed)) {
          pre_ckpt[t][static_cast<size_t>(c)] = model;
          flag_at(t, c).store(true, std::memory_order_release);
        }
      }
      store.StopSession();
    });
  }

  // Take fuzzy checkpoints while the writers hammer away. Each checkpoint
  // is announced first, and t1 is only recorded once every writer has
  // published its lower-bound snapshot. The wait loop must keep refreshing
  // this thread's epoch: a stalled session would block safe-read-only
  // propagation and deadlock the writers' fuzzy-region RMWs.
  store.StartSession();
  for (int c = 0; c < kCheckpoints; ++c) {
    announced.store(c, std::memory_order_release);
    for (int t = 0; t < kWriters; ++t) {
      while (!flag_at(t, c).load(std::memory_order_acquire)) {
        store.Refresh();
        std::this_thread::yield();
      }
    }
    ASSERT_EQ(store.Checkpoint(base_dir + std::to_string(c)), Status::kOk);
  }
  store.StopSession();
  for (auto& t : threads) t.join();

  // Recover every checkpoint into a fresh store over the same device and
  // check bounds: pre-checkpoint model <= recovered <= final model.
  for (int c = 0; c < kCheckpoints; ++c) {
    Store recovered{MakeConfig(), &device};
    ASSERT_EQ(recovered.Recover(base_dir + std::to_string(c)), Status::kOk);
    recovered.StartSession();
    for (int t = 0; t < kWriters; ++t) {
      const auto& lower = pre_ckpt[t][static_cast<size_t>(c)];
      for (const auto& [k, final_v] : models[t]) {
        uint64_t out = 0;
        Status s = recovered.Read(k, 0, &out);
        if (s == Status::kPending) {
          ASSERT_TRUE(recovered.CompletePending(true));
          s = Status::kOk;
        }
        if (s == Status::kNotFound) {
          out = 0;  // key not yet created at checkpoint time
        } else {
          ASSERT_EQ(s, Status::kOk) << "key " << k;
        }
        ASSERT_LE(out, final_v) << "key " << k << " ckpt " << c;
        auto it = lower.find(k);
        if (it != lower.end()) {
          ASSERT_GE(out, it->second) << "key " << k << " ckpt " << c;
        }
      }
    }
    recovered.StopSession();
  }
  for (int c = 0; c < kCheckpoints; ++c) {
    std::filesystem::remove_all(base_dir + std::to_string(c));
  }
}

}  // namespace
}  // namespace faster
