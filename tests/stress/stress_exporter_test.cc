// Stress: live scraping must be race-free against a store under load.
// Scraper threads hammer the HTTP exporter (/metrics, /vars, and the
// /debug/{slowlog,index,log,epochs} inspectors) and a snapshot thread
// dumps the Chrome trace, all while worker threads run sampled
// operations — every read on the dump path is a relaxed load on sharded
// state or an epoch-protected walk, so the whole arrangement must be
// TSan-clean. The /debug/log scrape additionally asserts the region
// marker ordering (begin <= head <= read_only <= tail) holds in every
// reply while the log is moving.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"
#include "obs/exporter.h"
#include "obs/slowlog.h"
#include "obs/span.h"
#include "stress_common.h"

namespace faster {
namespace {

/// Extracts the number following `"key":` in a JSON body; UINT64_MAX if
/// the key is absent (keeps the assertion sites simple).
uint64_t JsonU64(const std::string& body, const std::string& key) {
  size_t at = body.find("\"" + key + "\":");
  if (at == std::string::npos) return UINT64_MAX;
  at += key.size() + 3;
  uint64_t v = 0;
  bool any = false;
  while (at < body.size() && body[at] >= '0' && body[at] <= '9') {
    v = v * 10 + static_cast<uint64_t>(body[at] - '0');
    ++at;
    any = true;
  }
  return any ? v : UINT64_MAX;
}

std::string HttpBody(const std::string& response) {
  size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  std::string req = "GET " + path +
                    " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(StressExporterTest, ScrapesAndTraceDumpsRaceStoreOperations) {
  constexpr uint32_t kWorkers = 4;
  const uint64_t kOpsPerThread = stress::ScaleOps(100000);

  MemoryDevice device;
  FasterKv<CountStoreFunctions>::Config cfg;
  cfg.table_size = 4096;
  cfg.log.memory_size_bytes = 64 << 20;
  FasterKv<CountStoreFunctions> store{cfg, &device};

  // Sample aggressively so span recording races the snapshotters, and
  // arm the slowlog at zero so every op publishes an entry under load.
  uint32_t saved_every = obs::SpanSampleEvery();
  obs::SetSpanSampleEvery(4);
  obs::GlobalSlowLog().Reset();
  obs::GlobalSlowLog().set_threshold_ns(0);

  obs::ExporterOptions options;
  options.port = 0;
  obs::MetricsExporter::Handlers handlers{
      [&store] { return store.DumpPrometheus(); },
      [&store] { return store.DumpStats(/*json=*/true); }};
  handlers
      .AddRoute("/debug/slowlog",
                [] { return obs::GlobalSlowLog().Json(); })
      .AddRoute("/debug/index", [&store] { return store.DebugIndexJson(); })
      .AddRoute("/debug/log", [&store] { return store.DebugLogJson(); })
      .AddRoute("/debug/epochs",
                [&store] { return store.DebugEpochsJson(); });
  obs::MetricsExporter exporter{options, std::move(handlers)};
  ASSERT_TRUE(exporter.ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scrapes{0};

  std::thread metrics_scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::string response = HttpGet(exporter.port(), "/metrics");
      if (response.rfind("HTTP/1.1 200", 0) == 0) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread vars_scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::string response = HttpGet(exporter.port(), "/vars");
      if (response.rfind("HTTP/1.1 200", 0) == 0) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread trace_snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::ostringstream os;
      store.DumpTrace(os);
      EXPECT_FALSE(os.str().empty());
    }
  });
  std::thread debug_scraper([&] {
    const char* paths[] = {"/debug/slowlog", "/debug/index", "/debug/log",
                           "/debug/epochs"};
    size_t turn = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const char* path = paths[turn++ % 4];
      std::string response = HttpGet(exporter.port(), path);
      if (response.rfind("HTTP/1.1 200", 0) != 0) continue;
      scrapes.fetch_add(1, std::memory_order_relaxed);
      std::string body = HttpBody(response);
      ASSERT_FALSE(body.empty()) << path;
      if (std::string{path} == "/debug/log") {
        // Region markers must be internally consistent in every reply,
        // even while workers advance the tail concurrently.
        uint64_t head = JsonU64(body, "head");
        uint64_t ro = JsonU64(body, "read_only");
        uint64_t tail = JsonU64(body, "tail");
        ASSERT_NE(head, UINT64_MAX) << body;
        EXPECT_LE(JsonU64(body, "begin"), head) << body;
        EXPECT_LE(head, JsonU64(body, "safe_read_only")) << body;
        EXPECT_LE(JsonU64(body, "safe_read_only"), ro) << body;
        EXPECT_LE(ro, tail) << body;
      } else if (std::string{path} == "/debug/epochs") {
        EXPECT_LE(JsonU64(body, "safe_epoch"),
                  JsonU64(body, "current_epoch"))
            << body;
      }
    }
  });

  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&, t] {
      auto rng = stress::ThreadRng(t);
      store.StartSession();
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        uint64_t key = rng() % 10000;
        switch (rng() % 3) {
          case 0:
            ASSERT_EQ(store.Upsert(key, key), Status::kOk);
            break;
          case 1: {
            uint64_t out = 0;
            Status s = store.Read(key, 0, &out);
            ASSERT_TRUE(s == Status::kOk || s == Status::kNotFound);
            break;
          }
          case 2:
            ASSERT_EQ(store.Rmw(key, 1), Status::kOk);
            break;
        }
        if ((i & 1023) == 0) store.Refresh();
      }
      store.CompletePending(true);
      store.StopSession();
    });
  }
  for (auto& th : workers) th.join();
  stop.store(true, std::memory_order_relaxed);
  metrics_scraper.join();
  vars_scraper.join();
  trace_snapshotter.join();
  debug_scraper.join();
  obs::SetSpanSampleEvery(saved_every);
  obs::GlobalSlowLog().set_threshold_ns(obs::SlowLog::kDisabled);

  EXPECT_GT(scrapes.load(std::memory_order_relaxed), 0u);
  if constexpr (obs::kStatsEnabled) {
    // A zero threshold under load must have captured slow ops.
    EXPECT_GT(obs::GlobalSlowLog().TotalRecorded(), 0u);
  }
  // A final scrape after the run still serves coherent output.
  std::string response = HttpGet(exporter.port(), "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u);
  if constexpr (obs::kStatsEnabled) {
    EXPECT_NE(response.find("faster_store_"), std::string::npos);
  }
}

}  // namespace
}  // namespace faster
