// Stress: live scraping must be race-free against a store under load.
// Scraper threads hammer the HTTP exporter (/metrics and /vars) and a
// snapshot thread dumps the Chrome trace, all while worker threads run
// sampled operations — every read on the dump path is a relaxed load on
// sharded state, so the whole arrangement must be TSan-clean.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"
#include "obs/exporter.h"
#include "obs/span.h"
#include "stress_common.h"

namespace faster {
namespace {

std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  std::string req = "GET " + path +
                    " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(StressExporterTest, ScrapesAndTraceDumpsRaceStoreOperations) {
  constexpr uint32_t kWorkers = 4;
  const uint64_t kOpsPerThread = stress::ScaleOps(100000);

  MemoryDevice device;
  FasterKv<CountStoreFunctions>::Config cfg;
  cfg.table_size = 4096;
  cfg.log.memory_size_bytes = 64 << 20;
  FasterKv<CountStoreFunctions> store{cfg, &device};

  // Sample aggressively so span recording races the snapshotters.
  uint32_t saved_every = obs::SpanSampleEvery();
  obs::SetSpanSampleEvery(4);

  obs::ExporterOptions options;
  options.port = 0;
  obs::MetricsExporter exporter{
      options,
      obs::MetricsExporter::Handlers{
          [&store] { return store.DumpPrometheus(); },
          [&store] { return store.DumpStats(/*json=*/true); }}};
  ASSERT_TRUE(exporter.ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scrapes{0};

  std::thread metrics_scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::string response = HttpGet(exporter.port(), "/metrics");
      if (response.rfind("HTTP/1.1 200", 0) == 0) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread vars_scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::string response = HttpGet(exporter.port(), "/vars");
      if (response.rfind("HTTP/1.1 200", 0) == 0) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread trace_snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::ostringstream os;
      store.DumpTrace(os);
      EXPECT_FALSE(os.str().empty());
    }
  });

  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&, t] {
      auto rng = stress::ThreadRng(t);
      store.StartSession();
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        uint64_t key = rng() % 10000;
        switch (rng() % 3) {
          case 0:
            ASSERT_EQ(store.Upsert(key, key), Status::kOk);
            break;
          case 1: {
            uint64_t out = 0;
            Status s = store.Read(key, 0, &out);
            ASSERT_TRUE(s == Status::kOk || s == Status::kNotFound);
            break;
          }
          case 2:
            ASSERT_EQ(store.Rmw(key, 1), Status::kOk);
            break;
        }
        if ((i & 1023) == 0) store.Refresh();
      }
      store.CompletePending(true);
      store.StopSession();
    });
  }
  for (auto& th : workers) th.join();
  stop.store(true, std::memory_order_relaxed);
  metrics_scraper.join();
  vars_scraper.join();
  trace_snapshotter.join();
  obs::SetSpanSampleEvery(saved_every);

  EXPECT_GT(scrapes.load(std::memory_order_relaxed), 0u);
  // A final scrape after the run still serves coherent output.
  std::string response = HttpGet(exporter.port(), "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u);
  if constexpr (obs::kStatsEnabled) {
    EXPECT_NE(response.find("faster_store_"), std::string::npos);
  }
}

}  // namespace
}  // namespace faster
