#ifndef FASTER_TESTS_STRESS_STRESS_COMMON_H_
#define FASTER_TESTS_STRESS_STRESS_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <random>

#include "core/key_hash.h"

namespace faster {
namespace stress {

/// Deterministic base seed for every stress test; override with
/// FASTER_STRESS_SEED (any strtoull-parseable value) to explore other
/// schedules, e.g. FASTER_STRESS_SEED=$RANDOM ctest -L stress.
inline uint64_t BaseSeed() {
  if (const char* env = std::getenv("FASTER_STRESS_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xFA57EEDull;
}

/// Per-thread RNG stream: decorrelated from the base seed via Mix64 so
/// thread t's schedule changes completely when the seed changes.
inline std::mt19937_64 ThreadRng(uint64_t thread_ordinal) {
  return std::mt19937_64{Mix64(BaseSeed() ^ (thread_ordinal + 1))};
}

/// Sanitized builds run 5-15x slower; scale iteration counts so every
/// stress test stays well under its ctest timeout (<60 s under TSan).
inline uint64_t ScaleOps(uint64_t n) {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  return n / 4 + 1;
#else
  return n;
#endif
}

}  // namespace stress
}  // namespace faster

#endif  // FASTER_TESTS_STRESS_STRESS_COMMON_H_
