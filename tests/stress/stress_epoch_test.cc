// Stress: the epoch protection framework (Sec. 2.3-2.4) under thread
// churn. Worker threads continuously enter/leave protection (including
// whole OS threads coming and going, which recycles dense thread ids and
// epoch-table slots) while other threads register BumpCurrentEpoch trigger
// actions. Every action must run exactly once, and the safe epoch must
// never pass a protected thread's local epoch.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/epoch.h"
#include "core/thread.h"
#include "stress_common.h"

namespace faster {
namespace {

TEST(StressEpochTest, TriggerActionsUnderProtectionChurn) {
  LightEpoch epoch;
  constexpr int kChurners = 3;
  constexpr int kBumpers = 2;
  const uint64_t kItersPerThread = stress::ScaleOps(40000);

  std::atomic<uint64_t> actions_run{0};
  std::atomic<uint64_t> actions_registered{0};
  std::atomic<uint64_t> invariant_violations{0};

  std::vector<std::thread> threads;
  // Churners: rapid Protect/Refresh/Unprotect cycles, checking the
  // invariant E_s < E_T <= E from Sec. 2.3 while protected.
  for (int t = 0; t < kChurners; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng = stress::ThreadRng(static_cast<uint64_t>(t));
      for (uint64_t i = 0; i < kItersPerThread; ++i) {
        uint64_t local = epoch.Protect();
        uint64_t refreshes = rng() % 4;
        for (uint64_t r = 0; r < refreshes; ++r) {
          local = epoch.Refresh();
        }
        if (epoch.SafeToReclaimEpoch() >= local ||
            local > epoch.CurrentEpoch()) {
          invariant_violations.fetch_add(1);
        }
        epoch.Unprotect();
      }
    });
  }
  // Bumpers: register trigger actions while protected, occasionally
  // draining via Refresh.
  for (int t = 0; t < kBumpers; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng =
          stress::ThreadRng(static_cast<uint64_t>(kChurners + t));
      epoch.Protect();
      for (uint64_t i = 0; i < kItersPerThread / 8; ++i) {
        epoch.BumpCurrentEpoch([&] { actions_run.fetch_add(1); });
        actions_registered.fetch_add(1);
        if (rng() % 4 == 0) epoch.Refresh();
      }
      epoch.Unprotect();
    });
  }
  for (auto& t : threads) t.join();

  // Drain the tail of the list from a fresh protected thread.
  epoch.Protect();
  epoch.SpinWaitForSafety(epoch.CurrentEpoch() - 1);
  epoch.Unprotect();

  EXPECT_EQ(actions_run.load(), actions_registered.load());
  EXPECT_EQ(epoch.NumOutstandingActions(), 0u);
  EXPECT_EQ(invariant_violations.load(), 0u);
}

TEST(StressEpochTest, OsThreadChurnRecyclesEpochSlots) {
  LightEpoch epoch;
  const uint64_t kRounds = stress::ScaleOps(300);
  constexpr int kThreadsPerRound = 8;

  std::atomic<uint64_t> actions_run{0};
  uint64_t actions_registered = 0;

  // A long-lived protected thread ensures the epoch table is never empty
  // (so safety always depends on the table scan seeing live entries).
  std::atomic<bool> stop{false};
  std::thread anchor([&] {
    epoch.Protect();
    while (!stop.load(std::memory_order_acquire)) {
      epoch.Refresh();
      std::this_thread::yield();
    }
    epoch.Unprotect();
  });

  for (uint64_t round = 0; round < kRounds; ++round) {
    // Fresh OS threads acquire (and at exit release) dense thread ids,
    // so epoch-table slots are recycled across rounds while actions fire.
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreadsPerRound; ++t) {
      workers.emplace_back([&] {
        epoch.Protect();
        epoch.BumpCurrentEpoch([&] { actions_run.fetch_add(1); });
        epoch.Refresh();
        epoch.Unprotect();
      });
    }
    actions_registered += kThreadsPerRound;
    for (auto& w : workers) w.join();
    EXPECT_LE(Thread::HighWaterMark(), Thread::kMaxThreads);
  }

  stop.store(true, std::memory_order_release);
  anchor.join();

  epoch.Protect();
  epoch.SpinWaitForSafety(epoch.CurrentEpoch() - 1);
  epoch.Unprotect();
  EXPECT_EQ(actions_run.load(), actions_registered);
}

}  // namespace
}  // namespace faster
