#include "obs/slowlog.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"
#include "mini_json.h"
#include "obs/log.h"

namespace faster {
namespace {

using obs::kNumSlowStages;
using obs::SlowLog;
using obs::SlowOpKind;

uint64_t StageSum(const SlowLog::Entry& e) {
  uint64_t sum = 0;
  for (uint32_t s = 0; s < kNumSlowStages; ++s) sum += e.stage_ns[s];
  return sum;
}

/// Records one entry with total_ns spread across the execute stage.
void Record(SlowLog& log, uint64_t total_ns,
            SlowOpKind kind = SlowOpKind::kRead, uint64_t key_hash = 0) {
  uint64_t stages[kNumSlowStages] = {0, 0, total_ns, 0, 0, 0};
  log.MaybeRecord(kind, key_hash, total_ns, stages, /*pending=*/false,
                  /*tid=*/1);
}

// ---------------------------------------------------------------------------
// Threshold filtering
// ---------------------------------------------------------------------------

TEST(SlowLogTest, DisabledByDefaultRecordsNothing) {
  SlowLog log;
  EXPECT_FALSE(log.armed());
  Record(log, UINT64_MAX - 1);  // huge latency, still below kDisabled
  EXPECT_EQ(log.Len(), 0u);
  EXPECT_EQ(log.TotalRecorded(), 0u);
}

TEST(SlowLogTest, ThresholdFiltersExactly) {
  SlowLog log;
  log.set_threshold_ns(1000);
  EXPECT_TRUE(log.armed());
  Record(log, 999);   // below: dropped
  Record(log, 1000);  // at threshold: recorded (>=, Redis semantics)
  Record(log, 1001);  // above: recorded
  EXPECT_EQ(log.Len(), 2u);
  std::vector<SlowLog::Entry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].total_ns, 1001u);  // newest first
  EXPECT_EQ(entries[1].total_ns, 1000u);
}

TEST(SlowLogTest, ZeroThresholdRecordsEverything) {
  SlowLog log;
  log.set_threshold_ns(0);
  Record(log, 0);
  Record(log, 1);
  EXPECT_EQ(log.Len(), 2u);
}

// ---------------------------------------------------------------------------
// Ring eviction
// ---------------------------------------------------------------------------

TEST(SlowLogTest, RingEvictsOldestKeepsNewestFirstOrder) {
  SlowLog log;
  log.set_threshold_ns(0);
  constexpr uint64_t kOverfill = SlowLog::kCapacity + 37;
  for (uint64_t i = 0; i < kOverfill; ++i) {
    Record(log, /*total_ns=*/i + 1, SlowOpKind::kUpsert, /*key_hash=*/i);
  }
  EXPECT_EQ(log.Len(), SlowLog::kCapacity);
  EXPECT_EQ(log.TotalRecorded(), kOverfill);
  std::vector<SlowLog::Entry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), SlowLog::kCapacity);
  // Newest first; ids strictly descending; the oldest 37 are gone.
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].id, kOverfill - 1 - i);
    EXPECT_EQ(entries[i].key_hash, kOverfill - 1 - i);
  }
}

TEST(SlowLogTest, SnapshotHonorsMaxEntries) {
  SlowLog log;
  log.set_threshold_ns(0);
  for (uint64_t i = 0; i < 20; ++i) Record(log, i + 1);
  std::vector<SlowLog::Entry> entries = log.Snapshot(/*max_entries=*/5);
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_EQ(entries[0].id, 19u);
  EXPECT_EQ(entries[4].id, 15u);
}

TEST(SlowLogTest, ResetHidesEntriesButIdsKeepGrowing) {
  SlowLog log;
  log.set_threshold_ns(0);
  for (uint64_t i = 0; i < 10; ++i) Record(log, i + 1);
  EXPECT_EQ(log.Len(), 10u);
  log.Reset();
  EXPECT_EQ(log.Len(), 0u);
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.TotalRecorded(), 10u);
  Record(log, 42);
  std::vector<SlowLog::Entry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].id, 10u);  // ids are monotone across Reset
}

// ---------------------------------------------------------------------------
// Stage attribution
// ---------------------------------------------------------------------------

TEST(SlowLogTest, SyncScopeStagesSumToTotal) {
  // SlowOpScope writes through the global slowlog; arm it for the test
  // and restore the disabled default after.
  obs::SlowLog& global = obs::GlobalSlowLog();
  global.Reset();
  global.set_threshold_ns(0);
  {
    obs::SlowOpScope scope{SlowOpKind::kRmw};
    scope.set_key_hash(0xabcdef);
  }
  global.set_threshold_ns(SlowLog::kDisabled);
  std::vector<SlowLog::Entry> entries = global.Snapshot(1);
  ASSERT_EQ(entries.size(), 1u);
  const SlowLog::Entry& e = entries[0];
  EXPECT_EQ(e.kind, SlowOpKind::kRmw);
  EXPECT_EQ(e.key_hash, 0xabcdefu);
  EXPECT_FALSE(e.pending);
  EXPECT_EQ(StageSum(e), e.total_ns);
  // A sync op has no I/O stages.
  EXPECT_EQ(e.stage_ns[static_cast<uint32_t>(obs::SlowStage::kIoQueue)], 0u);
  EXPECT_EQ(e.stage_ns[static_cast<uint32_t>(obs::SlowStage::kIoExec)], 0u);
  EXPECT_EQ(
      e.stage_ns[static_cast<uint32_t>(obs::SlowStage::kIoComplete)], 0u);
}

TEST(SlowLogTest, PendingCaptureAndRecordPartitionTheWindow) {
  obs::SlowLog& global = obs::GlobalSlowLog();
  global.Reset();
  global.set_threshold_ns(0);

  // An op starts synchronously (ambient state), goes pending
  // (CaptureSlowOp), sees one I/O completion, and finishes on the owner
  // (RecordSlowPending). The recorded stages must partition the window.
  obs::SlowOpState state;
  state.kind = SlowOpKind::kRead;
  state.key_hash = 77;
  state.start_ns = obs::NowNs();
  state.hash_ns = 120;     // amortized batch shares
  state.resolve_ns = 80;
  obs::CurrentSlowOp() = &state;

  obs::PendingSlowOp slow;
  obs::CaptureSlowOp(&slow);
  obs::CurrentSlowOp() = nullptr;
  EXPECT_TRUE(state.transferred);
  ASSERT_NE(slow.start_ns, 0u);
  EXPECT_EQ(slow.hash_ns, 120u);
  EXPECT_EQ(slow.resolve_ns, 80u);

  // I/O callback: harvest pool timing, restart the owner-wait window.
  slow.io_queue_ns = 300;
  slow.io_exec_ns = 500;
  uint64_t callback_at = obs::NowNs();
  slow.io_complete_ns += callback_at - slow.callback_ns;
  slow.callback_ns = callback_at;

  obs::RecordSlowPending(&slow, obs::NowNs());
  global.set_threshold_ns(SlowLog::kDisabled);
  EXPECT_EQ(slow.start_ns, 0u);  // consumed

  std::vector<SlowLog::Entry> entries = global.Snapshot(1);
  ASSERT_EQ(entries.size(), 1u);
  const SlowLog::Entry& e = entries[0];
  EXPECT_TRUE(e.pending);
  EXPECT_EQ(e.kind, SlowOpKind::kRead);
  EXPECT_EQ(e.key_hash, 77u);
  EXPECT_EQ(StageSum(e), e.total_ns);
  EXPECT_EQ(e.stage_ns[static_cast<uint32_t>(obs::SlowStage::kHash)], 120u);
  EXPECT_EQ(
      e.stage_ns[static_cast<uint32_t>(obs::SlowStage::kResolve)], 80u);
  EXPECT_EQ(
      e.stage_ns[static_cast<uint32_t>(obs::SlowStage::kIoQueue)], 300u);
  EXPECT_EQ(e.stage_ns[static_cast<uint32_t>(obs::SlowStage::kIoExec)], 500u);
}

TEST(SlowLogTest, RecordSlowPendingIgnoresUntrackedContexts) {
  obs::SlowLog& global = obs::GlobalSlowLog();
  global.Reset();
  global.set_threshold_ns(0);
  obs::PendingSlowOp slow;  // start_ns == 0: slowlog was disarmed at issue
  obs::RecordSlowPending(&slow, obs::NowNs());
  global.set_threshold_ns(SlowLog::kDisabled);
  EXPECT_EQ(global.Len(), 0u);
}

// Store-level: with a zero threshold every operation lands in the
// slowlog, including ops that cross the async I/O boundary, and stage
// sums reconstruct each reported total exactly. Instrumented call sites
// compile away without FASTER_STATS, so this only runs in stats builds.
// Shared by the thread-pool and polling I/O-path variants below: the
// partition invariant must hold regardless of which thread executes the
// I/O and delivers the callback (DESIGN.md §13).
void RunStoreStageSumCheck(MemoryDevice& device) {
  obs::SlowLog& global = obs::GlobalSlowLog();
  global.Reset();
  global.set_threshold_ns(0);

  using Store = FasterKv<CountStoreFunctions>;
  Store::Config cfg;
  cfg.table_size = 2048;
  cfg.log.memory_size_bytes = 2ull << Address::kOffsetBits;
  cfg.log.mutable_fraction = 0.5;
  {
    Store store{cfg, &device};
    store.StartSession();
    constexpr uint64_t kKeys = 400000;  // >> 2 pages: forces spill
    for (uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_EQ(store.Upsert(k, k + 3), Status::kOk);
    }
    uint64_t pending = 0;
    std::vector<uint64_t> outs(64, 0);
    for (uint64_t k = 0; k < 64; ++k) {
      Status s = store.Read(k, 0, &outs[k]);
      if (s == Status::kPending) ++pending;
    }
    ASSERT_TRUE(store.CompletePending(/*wait=*/true));
    EXPECT_GT(pending, 0u) << "cold reads should cross the I/O boundary";
    store.StopSession();
  }
  global.set_threshold_ns(SlowLog::kDisabled);

  std::vector<SlowLog::Entry> entries = obs::GlobalSlowLog().Snapshot();
  ASSERT_FALSE(entries.empty());
  uint64_t pending_entries = 0;
  for (const SlowLog::Entry& e : entries) {
    EXPECT_EQ(StageSum(e), e.total_ns) << "entry " << e.id;
    if (e.pending) ++pending_entries;
  }
  EXPECT_GT(pending_entries, 0u);
  EXPECT_TRUE(MiniJson::Valid(obs::GlobalSlowLog().Json()));
}

TEST(SlowLogTest, StoreOpsRecordWithExactStageSums) {
  if (!obs::kStatsEnabled) {
    GTEST_SKIP() << "store instrumentation requires FASTER_STATS";
  }
  MemoryDevice device;
  RunStoreStageSumCheck(device);
}

// Same invariant on the completion-polling path: io_exec/io_complete are
// harvested on the *polling* thread (no pool workers exist at all here),
// and the stage sums must still partition each total exactly.
TEST(SlowLogTest, PollingPathStageSumsStillPartitionTotal) {
  if (!obs::kStatsEnabled) {
    GTEST_SKIP() << "store instrumentation requires FASTER_STATS";
  }
  MemoryDevice device{0, 0, IoPathMode::kPolling};
  RunStoreStageSumCheck(device);
}

// ---------------------------------------------------------------------------
// Concurrency (run under TSan in the sanitizer matrix)
// ---------------------------------------------------------------------------

TEST(SlowLogTest, ConcurrentWritersAndReadersAreClean) {
  SlowLog log;
  log.set_threshold_ns(0);
  constexpr uint32_t kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (uint32_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&log, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        uint64_t stages[kNumSlowStages] = {i, i, i, 0, 0, 0};
        log.MaybeRecord(SlowOpKind::kUpsert, (uint64_t{w} << 32) | i,
                        3 * i, stages, /*pending=*/false, w);
      }
    });
  }
  std::thread reader{[&log, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<SlowLog::Entry> entries = log.Snapshot();
      EXPECT_LE(entries.size(), SlowLog::kCapacity);
      for (const SlowLog::Entry& e : entries) {
        // Committed slots are internally consistent even mid-storm.
        EXPECT_EQ(StageSum(e), e.total_ns);
      }
      (void)log.Len();
      EXPECT_TRUE(MiniJson::Valid(log.Json()));
    }
  }};
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(log.TotalRecorded(), uint64_t{kWriters} * kPerWriter);
  EXPECT_EQ(log.Len(), SlowLog::kCapacity);
}

// ---------------------------------------------------------------------------
// Json exposition
// ---------------------------------------------------------------------------

TEST(SlowLogTest, JsonShape) {
  SlowLog log;
  EXPECT_TRUE(MiniJson::Valid(log.Json()));
  EXPECT_NE(log.Json().find("\"threshold_ns\":null"), std::string::npos);
  log.set_threshold_ns(5000);
  Record(log, 6000, SlowOpKind::kDelete, /*key_hash=*/0x1234);
  std::string json = log.Json();
  EXPECT_TRUE(MiniJson::Valid(json));
  EXPECT_NE(json.find("\"threshold_ns\":5000"), std::string::npos);
  EXPECT_NE(json.find("\"len\":1"), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"delete\""), std::string::npos);
  EXPECT_NE(json.find("\"key_hash\":\"0000000000001234\""),
            std::string::npos);
  EXPECT_NE(json.find("\"io_complete\":0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Log ring / logger unit coverage
// ---------------------------------------------------------------------------

TEST(LogRingTest, CommitPublishesAndRawReadsSee) {
  obs::Logger logger;
  logger.set_stderr(false);
  logger.set_level(obs::LogLevel::kDebug);
  logger.Write(obs::LogLevel::kInfo, "test", "hello",
               obs::LogField{"k", uint64_t{42}});
  uint32_t tid = Thread::Id();
  const obs::LogRing& ring = logger.ring();
  ASSERT_GE(ring.CommittedEnd(tid), 1u);
  obs::LogRing::Record rec;
  ASSERT_TRUE(ring.ReadEntryRaw(tid, ring.CommittedEnd(tid) - 1, &rec));
  std::string text{rec.text, rec.len};
  EXPECT_NE(text.find("test: hello"), std::string::npos);
  EXPECT_NE(text.find("k=42"), std::string::npos);
  EXPECT_EQ(rec.tid, tid);
  EXPECT_EQ(rec.level, static_cast<uint8_t>(obs::LogLevel::kInfo));
}

TEST(LogRingTest, LevelGateFiltersBelow) {
  obs::Logger logger;
  logger.set_stderr(false);
  logger.set_level(obs::LogLevel::kWarn);
  uint32_t tid = Thread::Id();
  uint64_t before = logger.ring().CommittedEnd(tid);
  logger.Write(obs::LogLevel::kDebug, "test", "dropped");
  logger.Write(obs::LogLevel::kInfo, "test", "dropped");
  EXPECT_EQ(logger.ring().CommittedEnd(tid), before);
  logger.Write(obs::LogLevel::kError, "test", "kept");
  EXPECT_EQ(logger.ring().CommittedEnd(tid), before + 1);
}

TEST(LogRingTest, OverflowDropsAndAccountsForEveryWrite) {
  obs::Logger logger;
  logger.set_stderr(false);
  logger.set_level(obs::LogLevel::kDebug);
  // Far more writes than one ring can hold. The concurrent drainer may
  // free slots mid-loop, so assert the conservation law rather than an
  // exact split: every enabled write is either committed or counted as
  // dropped, and at least one full ring must have committed.
  constexpr uint64_t kWrites = 8 * obs::LogRing::kEntriesPerThread;
  for (uint64_t i = 0; i < kWrites; ++i) {
    logger.Write(obs::LogLevel::kInfo, "test", "spam",
                 obs::LogField{"i", i});
  }
  uint64_t committed = logger.ring().CommittedEnd(Thread::Id());
  EXPECT_EQ(committed + logger.Dropped(), kWrites);
  EXPECT_GE(committed, uint64_t{obs::LogRing::kEntriesPerThread});
  // Flush drains everything committed to the sinks.
  logger.Flush();
  EXPECT_EQ(logger.Emitted(), committed);
  logger.Write(obs::LogLevel::kInfo, "test", "after-drain");
  logger.Flush();
  EXPECT_EQ(logger.Emitted(), committed + 1);
}

TEST(LogRingTest, FileSinkReceivesStructuredLines) {
  std::string path = ::testing::TempDir() + "/slowlog_test_log.txt";
  std::remove(path.c_str());
  {
    obs::Logger logger;
    logger.set_stderr(false);
    logger.set_level(obs::LogLevel::kDebug);
    ASSERT_TRUE(logger.OpenFile(path));
    logger.Write(obs::LogLevel::kWarn, "unit", "file sink works",
                 obs::LogField{"answer", uint64_t{42}},
                 obs::LogField{"name", "faster"});
    logger.Flush();
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  std::string content{buf, n};
  EXPECT_NE(content.find("unit: file sink works"), std::string::npos);
  EXPECT_NE(content.find("answer=42"), std::string::npos);
  EXPECT_NE(content.find("name=faster"), std::string::npos);
  EXPECT_NE(content.find("warn"), std::string::npos);
}

TEST(LogRateLimitTest, AllowsOncePerWindowAndCountsSuppressed) {
  obs::LogRateLimit limit{uint64_t{60} * 1000000000ull};  // one per minute
  uint64_t suppressed = 123;
  EXPECT_TRUE(limit.Allow(&suppressed));
  EXPECT_EQ(suppressed, 0u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(limit.Allow(&suppressed));
  }
}

}  // namespace
}  // namespace faster
