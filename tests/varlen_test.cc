// Tests for the variable-length key/value store (Sec. 2.1 capability).

#include "core/varlen.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "device/memory_device.h"

namespace faster {
namespace {

FasterBlobKv::Config SmallConfig(uint64_t pages = 16, double slack = 0.0) {
  FasterBlobKv::Config cfg;
  cfg.table_size = 4096;
  cfg.log.memory_size_bytes = pages << Address::kOffsetBits;
  cfg.log.mutable_fraction = 0.5;
  cfg.value_slack = slack;
  return cfg;
}

std::string ReadOrDie(FasterBlobKv& store, std::string_view key, Status* s) {
  std::string out = "\x01UNSET";
  Status st = store.Read(key, &out);
  if (st == Status::kPending) {
    store.CompletePending(true);
    st = (out == "\x01UNSET") ? Status::kNotFound : Status::kOk;
  }
  *s = st;
  return out;
}

class VarlenTest : public ::testing::Test {
 protected:
  MemoryDevice device_;
};

TEST_F(VarlenTest, UpsertReadStrings) {
  FasterBlobKv store{SmallConfig(), &device_};
  store.StartSession();
  ASSERT_EQ(store.Upsert("user:1", "alice"), Status::kOk);
  ASSERT_EQ(store.Upsert("user:2", "bob"), Status::kOk);
  Status s;
  EXPECT_EQ(ReadOrDie(store, "user:1", &s), "alice");
  EXPECT_EQ(s, Status::kOk);
  EXPECT_EQ(ReadOrDie(store, "user:2", &s), "bob");
  ReadOrDie(store, "user:3", &s);
  EXPECT_EQ(s, Status::kNotFound);
  store.StopSession();
}

TEST_F(VarlenTest, EmptyValueIsValid) {
  FasterBlobKv store{SmallConfig(), &device_};
  store.StartSession();
  ASSERT_EQ(store.Upsert("k", ""), Status::kOk);
  Status s;
  EXPECT_EQ(ReadOrDie(store, "k", &s), "");
  EXPECT_EQ(s, Status::kOk);
  store.StopSession();
}

TEST_F(VarlenTest, ShrinkingValueUpdatesInPlace) {
  FasterBlobKv store{SmallConfig(), &device_};
  store.StartSession();
  ASSERT_EQ(store.Upsert("k", "a-rather-long-value"), Status::kOk);
  ASSERT_EQ(store.Upsert("k", "tiny"), Status::kOk);  // fits capacity
  Status s;
  EXPECT_EQ(ReadOrDie(store, "k", &s), "tiny");
  ASSERT_EQ(store.Upsert("k", "mid-sized-value"), Status::kOk);  // regrow
  EXPECT_EQ(ReadOrDie(store, "k", &s), "mid-sized-value");
  store.StopSession();
}

TEST_F(VarlenTest, GrowingBeyondCapacityAppends) {
  FasterBlobKv store{SmallConfig(16, /*slack=*/0.0), &device_};
  store.StartSession();
  ASSERT_EQ(store.Upsert("k", "ab"), Status::kOk);
  std::string big(1000, 'x');
  ASSERT_EQ(store.Upsert("k", big), Status::kOk);
  Status s;
  EXPECT_EQ(ReadOrDie(store, "k", &s), big);
  store.StopSession();
}

TEST_F(VarlenTest, ValueSlackKeepsGrowingUpdatesInPlace) {
  FasterBlobKv store{SmallConfig(16, /*slack=*/0.5), &device_};
  store.StartSession();
  ASSERT_EQ(store.Upsert("k", std::string(100, 'a')), Status::kOk);
  Address tail_before = store.hlog().tail_address();
  // 120 bytes fits in 100 * 1.5 = 150 capacity: in place, no append.
  ASSERT_EQ(store.Upsert("k", std::string(120, 'b')), Status::kOk);
  EXPECT_EQ(store.hlog().tail_address(), tail_before);
  Status s;
  EXPECT_EQ(ReadOrDie(store, "k", &s), std::string(120, 'b'));
  store.StopSession();
}

TEST_F(VarlenTest, DeleteAndReinsert) {
  FasterBlobKv store{SmallConfig(), &device_};
  store.StartSession();
  ASSERT_EQ(store.Upsert("k", "v1"), Status::kOk);
  ASSERT_EQ(store.Delete("k"), Status::kOk);
  Status s;
  ReadOrDie(store, "k", &s);
  EXPECT_EQ(s, Status::kNotFound);
  EXPECT_EQ(store.Delete("k"), Status::kNotFound);
  ASSERT_EQ(store.Upsert("k", "v2"), Status::kOk);
  EXPECT_EQ(ReadOrDie(store, "k", &s), "v2");
  store.StopSession();
}

TEST_F(VarlenTest, MixedSizesLargerThanMemory) {
  FasterBlobKv store{SmallConfig(/*pages=*/2), &device_};
  store.StartSession();
  // Values of size 10..500, ~50k keys -> tens of MB >> 8 MB buffer.
  constexpr uint64_t kKeys = 50000;
  std::mt19937_64 rng(5);
  std::unordered_map<std::string, std::string> expected;
  for (uint64_t k = 0; k < kKeys; ++k) {
    std::string key = "key-" + std::to_string(k);
    std::string value(10 + rng() % 491, static_cast<char>('a' + k % 26));
    ASSERT_EQ(store.Upsert(key, value), Status::kOk);
    if (k % 197 == 0) expected[key] = value;
  }
  ASSERT_GT(store.hlog().head_address().control(), 64u) << "must spill";
  for (const auto& [key, value] : expected) {
    Status s;
    EXPECT_EQ(ReadOrDie(store, key, &s), value) << key;
    EXPECT_EQ(s, Status::kOk);
  }
  store.StopSession();
}

TEST_F(VarlenTest, LongKeysAndHashChainsOnStorage) {
  FasterBlobKv store{SmallConfig(/*pages=*/2), &device_};
  store.StartSession();
  // Long keys stress the byte-comparison path and the two-phase I/O
  // (prefix read then full read), and a tiny table forces chain chasing.
  constexpr uint64_t kKeys = 30000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    std::string key(64 + k % 64, 'k');
    key += std::to_string(k);
    ASSERT_EQ(store.Upsert(key, "v" + std::to_string(k)), Status::kOk);
  }
  for (uint64_t k = 0; k < kKeys; k += 499) {
    std::string key(64 + k % 64, 'k');
    key += std::to_string(k);
    Status s;
    EXPECT_EQ(ReadOrDie(store, key, &s), "v" + std::to_string(k)) << k;
  }
  store.StopSession();
}

TEST_F(VarlenTest, ConcurrentDisjointWriters) {
  FasterBlobKv store{SmallConfig(8), &device_};
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      store.StartSession();
      for (uint64_t i = 0; i < kPerThread; ++i) {
        std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_EQ(store.Upsert(key, key + key), Status::kOk);
      }
      store.StopSession();
    });
  }
  for (auto& t : threads) t.join();
  store.StartSession();
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; i += 1013) {
      std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
      Status s;
      EXPECT_EQ(ReadOrDie(store, key, &s), key + key);
    }
  }
  store.StopSession();
}

}  // namespace
}  // namespace faster
