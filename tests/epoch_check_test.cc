// Death tests for the FASTER_EPOCH_CHECK runtime verifier: each test
// commits one class of epoch/region violation and proves the verifier
// aborts with a report naming that class. In default builds (verifier
// compiled out) every test GTEST_SKIPs, so the binary is safe to run in
// all configurations; CI exercises it in the FASTER_EPOCH_CHECK=ON lane.
//
// Violation classes (ISSUE 4 satellite 4):
//   1. bucket read without epoch protection (OpScope / FindEntry),
//   2. log dereference without epoch protection,
//   3. log dereference below the head address (recycled frame),
//   4. in-place write below the safe read-only offset (torn flush).

#include <gtest/gtest.h>

#include <cstdint>

#include <string>

#include "core/epoch_check.h"
#include "core/faster.h"
#include "core/functions.h"
#include "core/hash_index.h"
#include "core/hybrid_log.h"
#include "device/memory_device.h"
#include "obs/flight_recorder.h"

namespace faster {
namespace {

using Store = FasterKv<CountStoreFunctions>;

// Every verifier abort must also leave a flight-recorder dump in the
// death output (the verifier's fatal hook fires before abort()).
const char kDumpMarkers[] =
    ".*FASTER FLIGHT RECORDER BEGIN.*FASTER FLIGHT RECORDER END";

Store::Config SmallCfg(uint64_t pages) {
  Store::Config cfg;
  cfg.table_size = 1024;
  cfg.log.memory_size_bytes = pages << Address::kOffsetBits;
  cfg.log.mutable_fraction = 0.9;
  cfg.refresh_interval = 1u << 30;  // tests drive epochs explicitly
  return cfg;
}

class EpochCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kEpochCheckEnabled) {
      GTEST_SKIP() << "FASTER_EPOCH_CHECK is off; verifier compiled out";
    }
    // The stores and devices below own threads; re-execute the test binary
    // for the death statement instead of forking a threaded process.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // Arm the crash black box: the death-test child re-runs SetUp, so the
    // verifier's fatal hook dumps the recorder before each abort below.
    obs::FlightRecorder::Instance().Install();
  }
  MemoryDevice device_;
};

// Each violation lives in its own function: EXPECT_DEATH is a macro, so
// top-level commas (brace-init, multi-arg calls) in an inline statement
// would be parsed as extra macro arguments.

// Class 1a: pinning a hash chunk without epoch protection.
void UnprotectedOpScope() {
  LightEpoch epoch;
  HashIndex index{64, &epoch};
  KeyHash hash{0xdeadbeefull};
  HashIndex::OpScope scope{index, hash};  // BAD: never Protect()ed
}

TEST_F(EpochCheckTest, UnprotectedOpScopeAborts) {
  EXPECT_DEATH(
      UnprotectedOpScope(),
      std::string{"FASTER_EPOCH_CHECK violation: index operation "
                  "\\(OpScope\\) without epoch protection"} +
          kDumpMarkers);
}

// Class 1b: traversing a bucket after the session dropped protection.
void UnprotectedFindEntry() {
  LightEpoch epoch;
  HashIndex index{64, &epoch};
  KeyHash hash{0xdeadbeefull};
  epoch.Protect();
  HashIndex::OpScope scope{index, hash};
  epoch.Unprotect();  // BAD: scope outlives the protection
  HashIndex::FindResult result;
  index.FindEntry(scope, hash, &result);
}

TEST_F(EpochCheckTest, UnprotectedFindEntryAborts) {
  EXPECT_DEATH(
      UnprotectedFindEntry(),
      std::string{"FASTER_EPOCH_CHECK violation: bucket read "
                  "\\(FindEntry\\) without epoch protection"} +
          kDumpMarkers);
}

// Class 2: dereferencing a log address without epoch protection — the
// page frame may be concurrently reclaimed.
void UnprotectedLogGet() {
  LightEpoch epoch;
  MemoryDevice device;
  LogConfig cfg;
  cfg.memory_size_bytes = 4ull << Address::kOffsetBits;
  HybridLog log{cfg, &device, &epoch};
  epoch.Protect();
  uint64_t closed_page = 0;
  Address a = log.Allocate(64, &closed_page);
  ASSERT_TRUE(a.IsValid());
  epoch.Unprotect();
  log.Get(a);  // BAD: no longer protected
}

TEST_F(EpochCheckTest, UnprotectedLogGetAborts) {
  EXPECT_DEATH(
      UnprotectedLogGet(),
      std::string{"FASTER_EPOCH_CHECK violation: log dereference \\(Get\\) "
                  "without epoch protection"} +
          kDumpMarkers);
}

// Class 3: dereferencing an address below the head — the frame may hold a
// newer page's bytes. Head advancement is manufactured by overflowing a
// two-page in-memory buffer.
TEST_F(EpochCheckTest, BelowHeadLogGetAborts) {
  auto cfg = SmallCfg(2);
  cfg.log.mutable_fraction = 0.5;
  cfg.refresh_interval = 256;
  Store store{cfg, &device_};
  store.StartSession();
  for (uint64_t k = 0; k < 400000; ++k) {
    ASSERT_EQ(store.Upsert(k, k), Status::kOk);
  }
  ASSERT_GT(store.hlog().head_address().control(), 64u);
  // With the store's rings attached, the dump must carry its recent
  // EventRing entries (page lifecycle events from the fill) — when stats
  // are compiled in; the markers alone otherwise.
  store.AttachFlightRecorder();
  std::string dump_re = ".*FASTER FLIGHT RECORDER BEGIN";
  if (obs::kStatsEnabled) dump_re += ".*-- events\\[store\\]";
  dump_re += ".*FASTER FLIGHT RECORDER END";
  EXPECT_DEATH(
      store.hlog().Get(Address{64}),
      std::string{"FASTER_EPOCH_CHECK violation: log dereference \\(Get\\) "
                  "below the head address"} +
          dump_re);
  store.StopSession();
}

// Class 4: in-place mutation below the safe read-only offset — those
// bytes may be mid-flush, so a write would tear the on-storage image.
// VerifyMutableAddress is the hook every in-place mutation site
// (Upsert/RMW/tombstone) calls before touching record bytes.
TEST_F(EpochCheckTest, InPlaceWriteBelowSafeReadOnlyAborts) {
  Store store{SmallCfg(16), &device_};
  store.StartSession();
  ASSERT_EQ(store.Upsert(1, 10), Status::kOk);  // record at address 64
  store.hlog().ShiftReadOnlyToTail(false);
  store.Refresh();  // trigger runs: safe read-only reaches the tail
  store.Refresh();
  ASSERT_GT(store.hlog().safe_read_only_address().control(), 64u);
  EXPECT_DEATH(
      store.hlog().VerifyMutableAddress(Address{64}),
      std::string{"FASTER_EPOCH_CHECK violation: in-place update below the "
                  "safe read-only offset"} +
          kDumpMarkers);
  store.StopSession();
}

// Sanity: the legal paths do NOT trip the verifier — a store exercised
// across all regions with correct bracketing runs to completion.
TEST_F(EpochCheckTest, ProtectedOperationsPass) {
  Store store{SmallCfg(16), &device_};
  store.StartSession();
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_EQ(store.Upsert(k, k), Status::kOk);
  }
  store.hlog().ShiftReadOnlyToTail(false);
  store.Refresh();
  store.Refresh();
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_EQ(store.Rmw(k, 1), Status::kOk);  // RCU from the RO region
    uint64_t out = 0;
    ASSERT_EQ(store.Read(k, 0, &out), Status::kOk);
    ASSERT_EQ(out, k + 1);
  }
  store.StopSession();
}

}  // namespace
}  // namespace faster
