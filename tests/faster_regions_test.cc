// Direct verification of the paper's update schemes:
//   Table 1 — upsert behaviour per region (in-place vs. RCU vs. async),
//   Table 2 — RMW / CRDT / blind behaviour per region, including the fuzzy
//             region's deferred RMWs (Sec. 6.2) and CRDT deltas (Sec. 6.3).
//
// The fuzzy region is manufactured deterministically: shifting the
// read-only offset registers an epoch trigger for the safe-read-only
// offset, which does not run until the (single) session thread refreshes —
// so records between the two offsets are observably fuzzy.

#include <gtest/gtest.h>

#include "core/faster.h"
#include "core/functions.h"
#include "device/memory_device.h"

namespace faster {
namespace {

using Store = FasterKv<CountStoreFunctions>;
using CrdtStore = FasterKv<MergeableCountFunctions>;

template <class S>
typename S::Config Cfg() {
  typename S::Config cfg;
  cfg.table_size = 1024;
  cfg.log.memory_size_bytes = 16ull << Address::kOffsetBits;
  cfg.log.mutable_fraction = 0.9;
  cfg.refresh_interval = 1u << 30;  // never auto-refresh: tests drive epochs
  return cfg;
}

class RegionsTest : public ::testing::Test {
 protected:
  MemoryDevice device_;
};

// --- Mutable region (Table 1 & 2 bottom rows): in place. -----------------

TEST_F(RegionsTest, MutableRegionUpsertIsInPlace) {
  Store store{Cfg<Store>(), &device_};
  store.StartSession();
  ASSERT_EQ(store.Upsert(1, 10), Status::kOk);
  uint64_t appended = store.GetStats().appended_records;
  ASSERT_EQ(store.Upsert(1, 20), Status::kOk);
  EXPECT_EQ(store.GetStats().appended_records, appended);  // no new record
  store.StopSession();
}

TEST_F(RegionsTest, MutableRegionRmwIsInPlace) {
  Store store{Cfg<Store>(), &device_};
  store.StartSession();
  ASSERT_EQ(store.Rmw(1, 10), Status::kOk);
  uint64_t appended = store.GetStats().appended_records;
  ASSERT_EQ(store.Rmw(1, 5), Status::kOk);
  EXPECT_EQ(store.GetStats().appended_records, appended);
  EXPECT_EQ(store.GetStats().fuzzy_rmws, 0u);
  store.StopSession();
}

// --- Safe read-only region (Table 2 "< SafeReadOnlyAddress"): RCU. -------

TEST_F(RegionsTest, ReadOnlyRegionRmwCopiesToTail) {
  Store store{Cfg<Store>(), &device_};
  store.StartSession();
  ASSERT_EQ(store.Rmw(1, 10), Status::kOk);
  // Make the record read-only *and* safe (trigger runs at our refresh).
  store.hlog().ShiftReadOnlyToTail(false);
  store.Refresh();
  store.Refresh();
  ASSERT_EQ(store.hlog().safe_read_only_address(),
            store.hlog().read_only_address());
  uint64_t appended = store.GetStats().appended_records;
  ASSERT_EQ(store.Rmw(1, 5), Status::kOk);  // must RCU, not defer
  EXPECT_EQ(store.GetStats().appended_records, appended + 1);
  EXPECT_EQ(store.GetStats().fuzzy_rmws, 0u);
  uint64_t out = 0;
  ASSERT_EQ(store.Read(1, 0, &out), Status::kOk);
  EXPECT_EQ(out, 15u);
  store.StopSession();
}

TEST_F(RegionsTest, ReadOnlyRegionUpsertAppends) {
  Store store{Cfg<Store>(), &device_};
  store.StartSession();
  ASSERT_EQ(store.Upsert(1, 10), Status::kOk);
  store.hlog().ShiftReadOnlyToTail(false);
  store.Refresh();
  store.Refresh();
  uint64_t appended = store.GetStats().appended_records;
  ASSERT_EQ(store.Upsert(1, 20), Status::kOk);
  EXPECT_EQ(store.GetStats().appended_records, appended + 1);
  store.StopSession();
}

// --- Fuzzy region (Sec. 6.2; Table 2): RMW defers, blind appends. ---------

TEST_F(RegionsTest, FuzzyRegionRmwIsDeferred) {
  Store store{Cfg<Store>(), &device_};
  store.StartSession();
  ASSERT_EQ(store.Rmw(1, 10), Status::kOk);
  // Shift RO but do NOT refresh: safe-RO lags, so the record is fuzzy.
  store.hlog().ShiftReadOnlyToTail(false);
  ASSERT_LT(store.hlog().safe_read_only_address(),
            store.hlog().read_only_address());
  Status s = store.Rmw(1, 5);
  EXPECT_EQ(s, Status::kPending);  // deferred to the pending list
  EXPECT_EQ(store.GetStats().fuzzy_rmws, 1u);
  // CompletePending refreshes, the trigger runs, the retry succeeds.
  ASSERT_TRUE(store.CompletePending(/*wait=*/true));
  uint64_t out = 0;
  ASSERT_EQ(store.Read(1, 0, &out), Status::kOk);
  EXPECT_EQ(out, 15u);  // the increment was not lost (Sec. 6.2 anomaly)
  store.StopSession();
}

TEST_F(RegionsTest, FuzzyRegionBlindUpsertProceeds) {
  Store store{Cfg<Store>(), &device_};
  store.StartSession();
  ASSERT_EQ(store.Upsert(1, 10), Status::kOk);
  store.hlog().ShiftReadOnlyToTail(false);
  ASSERT_LT(store.hlog().safe_read_only_address(),
            store.hlog().read_only_address());
  // Blind updates need not wait (Table 2): they create a new record.
  EXPECT_EQ(store.Upsert(1, 20), Status::kOk);
  uint64_t out = 0;
  ASSERT_EQ(store.Read(1, 0, &out), Status::kOk);
  EXPECT_EQ(out, 20u);
  store.StopSession();
}

TEST_F(RegionsTest, FuzzyRegionCrdtAppendsDelta) {
  CrdtStore store{Cfg<CrdtStore>(), &device_};
  store.StartSession();
  ASSERT_EQ(store.Rmw(1, 10), Status::kOk);
  store.hlog().ShiftReadOnlyToTail(false);
  ASSERT_LT(store.hlog().safe_read_only_address(),
            store.hlog().read_only_address());
  // CRDT RMW completes immediately with a delta record (Sec. 6.3).
  uint64_t appended = store.GetStats().appended_records;
  EXPECT_EQ(store.Rmw(1, 5), Status::kOk);
  EXPECT_EQ(store.GetStats().appended_records, appended + 1);
  EXPECT_EQ(store.GetStats().fuzzy_rmws, 0u);
  uint64_t out = 0;
  ASSERT_EQ(store.Read(1, 0, &out), Status::kOk);
  EXPECT_EQ(out, 15u);  // reads reconcile deltas
  store.StopSession();
}

// --- Stable region / on storage (Table 2 "< HeadAddress"). ----------------

TEST_F(RegionsTest, OnDiskRmwIssuesIo) {
  auto cfg = Cfg<Store>();
  cfg.log.memory_size_bytes = 2ull << Address::kOffsetBits;
  cfg.log.mutable_fraction = 0.5;
  cfg.refresh_interval = 256;
  Store store{cfg, &device_};
  store.StartSession();
  ASSERT_EQ(store.Rmw(0, 100), Status::kOk);
  for (uint64_t k = 1; k < 400000; ++k) {
    ASSERT_EQ(store.Upsert(k, k), Status::kOk);
  }
  ASSERT_GT(store.hlog().head_address().control(), 64u);
  uint64_t ios = store.GetStats().pending_ios;
  Status s = store.Rmw(0, 1);
  EXPECT_EQ(s, Status::kPending);
  EXPECT_EQ(store.GetStats().pending_ios, ios + 1);
  ASSERT_TRUE(store.CompletePending(true));
  uint64_t out = 0;
  s = store.Read(0, 0, &out);
  if (s == Status::kPending) {
    store.CompletePending(true);
  }
  EXPECT_EQ(out, 101u);
  store.StopSession();
}

TEST_F(RegionsTest, OnDiskBlindUpsertAvoidsIo) {
  auto cfg = Cfg<Store>();
  cfg.log.memory_size_bytes = 2ull << Address::kOffsetBits;
  cfg.log.mutable_fraction = 0.5;
  cfg.refresh_interval = 256;
  Store store{cfg, &device_};
  store.StartSession();
  ASSERT_EQ(store.Upsert(0, 100), Status::kOk);
  for (uint64_t k = 1; k < 400000; ++k) {
    ASSERT_EQ(store.Upsert(k, k), Status::kOk);
  }
  ASSERT_GT(store.hlog().head_address().control(), 64u);
  uint64_t ios = store.GetStats().pending_ios;
  // Blind update of an on-storage key: Table 2 — no storage read needed.
  EXPECT_EQ(store.Upsert(0, 200), Status::kOk);
  EXPECT_EQ(store.GetStats().pending_ios, ios);
  uint64_t out = 0;
  ASSERT_EQ(store.Read(0, 0, &out), Status::kOk);  // now at the tail
  EXPECT_EQ(out, 200u);
  store.StopSession();
}

TEST_F(RegionsTest, OnDiskCrdtRmwAvoidsIo) {
  typename CrdtStore::Config cfg = Cfg<CrdtStore>();
  cfg.log.memory_size_bytes = 2ull << Address::kOffsetBits;
  cfg.log.mutable_fraction = 0.5;
  cfg.refresh_interval = 256;
  CrdtStore store{cfg, &device_};
  store.StartSession();
  ASSERT_EQ(store.Rmw(0, 100), Status::kOk);
  for (uint64_t k = 1; k < 400000; ++k) {
    ASSERT_EQ(store.Upsert(k, k), Status::kOk);
  }
  ASSERT_GT(store.hlog().head_address().control(), 64u);
  uint64_t ios = store.GetStats().pending_ios;
  // CRDT RMW on an on-storage key appends a delta without reading.
  EXPECT_EQ(store.Rmw(0, 5), Status::kOk);
  EXPECT_EQ(store.GetStats().pending_ios, ios);
  // The read reconciles across memory and storage.
  uint64_t out = 0;
  Status s = store.Read(0, 0, &out);
  if (s == Status::kPending) {
    ASSERT_TRUE(store.CompletePending(true));
  }
  EXPECT_EQ(out, 105u);
  store.StopSession();
}

// --- Region invariants. ----------------------------------------------------

TEST_F(RegionsTest, MarkerOrderInvariantHolds) {
  auto cfg = Cfg<Store>();
  cfg.log.memory_size_bytes = 2ull << Address::kOffsetBits;
  cfg.log.mutable_fraction = 0.5;
  cfg.refresh_interval = 64;
  Store store{cfg, &device_};
  store.StartSession();
  for (uint64_t k = 0; k < 300000; ++k) {
    ASSERT_EQ(store.Upsert(k % 1000, k), Status::kOk);
    if (k % 10000 == 0) {
      auto& log = store.hlog();
      ASSERT_LE(log.begin_address(), log.head_address());
      ASSERT_LE(log.head_address(), log.safe_read_only_address());
      ASSERT_LE(log.safe_read_only_address(), log.read_only_address());
      ASSERT_LE(log.read_only_address(), log.tail_address());
      ASSERT_LE(log.head_address(), log.flushed_until_address());
    }
  }
  store.StopSession();
}

}  // namespace
}  // namespace faster
