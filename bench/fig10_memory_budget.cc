// Reproduces Fig. 10 (and the Sec. 7.3 text results): larger-than-memory
// throughput as the memory budget shrinks, FASTER vs. the RocksDB-like
// LSM baseline, 100-byte values.
//
//   * 50:50 Zipf — FASTER degrades as random reads hit storage and
//     approaches in-memory performance once the dataset fits.
//   * 0:100 (blind updates) — throughput degrades far less: updates never
//     read storage, and log writes are bulk-sequential.
//   * log_bw — sequential log write bandwidth with an 80% read-only
//     region and a uniform 0:100 workload (Sec. 7.3's 1.74 GB/s result,
//     scaled to this substrate).
//
// The budget axis is the HybridLog in-memory buffer (the paper's budget
// additionally includes the index, reported separately here as
// index_bytes).

#include "common.h"

namespace faster {
namespace bench {
namespace {

using Funcs = BlobStoreFunctions<100>;

uint64_t DatasetKeys() { return BenchKeys() / 2; }

void BM_FasterBudget(benchmark::State& state) {
  uint64_t keys = DatasetKeys();
  uint64_t budget_mb = static_cast<uint64_t>(state.range(0));
  bool mixed = state.range(1) == 0;  // 0 = 50:50 zipf, 1 = 0:100 zipf
  auto spec = mixed
                  ? WorkloadSpec::Ycsb(0.5, 0.0, Distribution::kZipfian, keys)
                  : WorkloadSpec::Ycsb(0.0, 0.0, Distribution::kZipfian, keys);
  for (auto _ : state) {
    auto cfg = FasterConfig<Funcs>(keys, budget_mb << 20, 0.9);
    // The paper's Fig. 10 sizes the index at #keys/8 buckets.
    cfg.table_size = std::max<uint64_t>(keys / 8, 1024);
    FasterStoreHolder<Funcs> holder{cfg};
    holder.Load(keys);
    FasterAdapter<Funcs> adapter{*holder.store};
    auto r = RunWorkload(adapter, spec, 2, BenchSeconds());
    Report(state, r);
    state.counters["index_bytes"] = benchmark::Counter(
        static_cast<double>(holder.store->index().size() * 64));
    state.counters["dataset_mb"] = benchmark::Counter(
        static_cast<double>(keys * FasterKv<Funcs>::RecordT::size()) /
        (1 << 20));
  }
}

void BM_LsmBudget(benchmark::State& state) {
  uint64_t keys = DatasetKeys() / 4;
  uint64_t budget_mb = static_cast<uint64_t>(state.range(0));
  bool mixed = state.range(1) == 0;
  auto spec = mixed
                  ? WorkloadSpec::Ycsb(0.5, 0.0, Distribution::kZipfian, keys)
                  : WorkloadSpec::Ycsb(0.0, 0.0, Distribution::kZipfian, keys);
  for (auto _ : state) {
    minilsm::LsmConfig cfg;
    cfg.dir = "/tmp/faster_bench_lsm_fig10";
    std::filesystem::remove_all(cfg.dir);
    cfg.value_size = 100;
    cfg.memtable_bytes = std::max<uint64_t>(budget_mb, 4) << 20;
    minilsm::MiniLsm db{cfg};
    std::vector<uint8_t> v(100, 1);
    for (uint64_t k = 0; k < keys; ++k) db.Put(k, v.data());
    LsmAdapter adapter{db, 100};
    Report(state, RunWorkload(adapter, spec, 2, BenchSeconds()));
    std::filesystem::remove_all(cfg.dir);
  }
}

// Sec. 7.3 text: sequential log write bandwidth, 0:100 uniform, 80%
// read-only region.
void BM_FasterLogBandwidth(benchmark::State& state) {
  uint64_t keys = DatasetKeys();
  auto spec = WorkloadSpec::Ycsb(0.0, 0.0, Distribution::kUniform, keys);
  for (auto _ : state) {
    auto cfg = FasterConfig<Funcs>(keys, 32ull << 20, /*mutable=*/0.2);
    FasterStoreHolder<Funcs> holder{cfg};
    holder.Load(keys);
    uint64_t written_before = holder.device->bytes_written();
    FasterAdapter<Funcs> adapter{*holder.store};
    auto r = RunWorkload(adapter, spec, 2, BenchSeconds());
    Report(state, r);
    double mb = static_cast<double>(holder.device->bytes_written() -
                                    written_before) /
                (1 << 20);
    state.counters["log_bw_MBps"] = benchmark::Counter(mb / r.seconds);
  }
}

void RegisterAll() {
  for (int w = 0; w < 2; ++w) {
    const char* mix = w == 0 ? "50:50zipf" : "0:100zipf";
    for (int64_t budget : {16, 32, 64, 128, 256}) {
      benchmark::RegisterBenchmark(
          (std::string("fig10/FASTER/") + mix + "/budgetMB:" +
           std::to_string(budget))
              .c_str(),
          BM_FasterBudget)
          ->Args({budget, w})->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    for (int64_t budget : {16, 64, 256}) {
      benchmark::RegisterBenchmark(
          (std::string("fig10/RocksDB-like/") + mix + "/budgetMB:" +
           std::to_string(budget))
              .c_str(),
          BM_LsmBudget)
          ->Args({budget, w})->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RegisterBenchmark("fig10/FASTER/log_bandwidth_0:100uniform",
                               BM_FasterLogBandwidth)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace
}  // namespace bench
}  // namespace faster

int main(int argc, char** argv) {
  faster::bench::RegisterAll();
  return faster::bench::RunBenchmarks(argc, argv);
}
